package algorithms

import (
	"math"
	"math/rand"
	"runtime/debug"
	"testing"

	"pushpull/graphblas"
)

// TestBFSRepeatedRunsBitIdentical runs BFS several times back to back —
// the pooled workspaces make later runs reuse every buffer the first run
// dirtied — and asserts the depths are bit-identical to the first run and
// to the plain reference traversal. Stale workspace state (SPA presence
// bits, mask bitmaps, gather residue) would show up here.
func TestBFSRepeatedRunsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := randUndirected(rng, 120, 0.05)
	want := refBFS(a, 3)
	for _, opt := range []BFSOptions{{}, {ForcePull: true}, {DisableDirectionOpt: true}} {
		var first []int32
		for run := 0; run < 3; run++ {
			res, err := BFS(a, 3, opt)
			if err != nil {
				t.Fatal(err)
			}
			if run == 0 {
				first = res.Depths
				for i := range want {
					if want[i] != first[i] {
						t.Fatalf("opt %+v: depth[%d] = %d, reference %d", opt, i, first[i], want[i])
					}
				}
				continue
			}
			for i := range first {
				if res.Depths[i] != first[i] {
					t.Fatalf("opt %+v run %d: depth[%d] = %d, first run had %d", opt, run, i, res.Depths[i], first[i])
				}
			}
		}
	}
}

// TestPageRankRepeatedRunsBitIdentical asserts float-exact reproducibility
// of PageRank across runs sharing pooled workspaces: identical inputs must
// give identical bits, or workspace state leaked between runs.
func TestPageRankRepeatedRunsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randUndirected(rng, 90, 0.06)
	firstRes, err := PageRank(a, PageRankOptions{MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		res, err := PageRank(a, PageRankOptions{MaxIter: 30})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Ranks {
			if math.Float64bits(res.Ranks[i]) != math.Float64bits(firstRes.Ranks[i]) {
				t.Fatalf("run %d: rank[%d] = %x, first run had %x", run, i,
					math.Float64bits(res.Ranks[i]), math.Float64bits(firstRes.Ranks[i]))
			}
		}
	}
}

// TestBFSIterationSteadyStateAllocs drives one full direction-optimized
// BFS iteration — direction decision, masked matvec (push or pull with the
// amortized allow-list), depth bookkeeping, visited assign, unvisited
// compaction — with a pinned workspace, and asserts the warmed-up steady
// state allocates nothing. The iteration is arranged to be idempotent
// (re-discovering an already-final frontier) so it can run repeatedly
// under testing.AllocsPerRun.
func TestBFSIterationSteadyStateAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	rng := rand.New(rand.NewSource(31))
	n := 300
	a := randUndirected(rng, n, 0.03)
	sr := graphblas.OrAndBool()

	// Mid-traversal state: level-1 frontier, source+level-1 visited.
	res, err := BFS(a, 0, BFSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := graphblas.NewVector[bool](n)
	visited := graphblas.NewVector[bool](n)
	visited.ToBitmap()
	_ = visited.SetElement(0, true)
	for v, d := range res.Depths {
		if d == 1 {
			_ = f.SetElement(v, true)
			_ = visited.SetElement(v, true)
		}
	}
	depths := make([]int32, n)
	unvisited := make([]uint32, 0, n)
	_, visBits := visited.DenseView()
	for i := 0; i < n; i++ {
		if !visBits[i] {
			unvisited = append(unvisited, uint32(i))
		}
	}

	ws := graphblas.AcquireWorkspace(n, n)
	defer ws.Release()
	desc := &graphblas.Descriptor{Transpose: true, StructureOnly: true, StructuralComplement: true, Workspace: ws}
	out := graphblas.NewVector[bool](n)
	planner := graphblas.NewPlanner(a, true, 0)

	for _, dirCase := range []struct {
		name string
		dir  graphblas.Direction
	}{{"push", graphblas.ForcePush}, {"pull", graphblas.ForcePull}} {
		iteration := func() {
			frontierInd, _ := f.SparseIndices()
			planner.Plan(frontierInd, f.NVals(), len(unvisited))
			desc.Direction = dirCase.dir
			if dirCase.dir == graphblas.ForcePull {
				desc.MaskAllowList = unvisited
			} else {
				desc.MaskAllowList = nil
			}
			input := f
			if dirCase.dir == graphblas.ForcePull {
				input = visited
			}
			if _, err := graphblas.MxV(out, visited, nil, sr, a, input, desc); err != nil {
				t.Fatal(err)
			}
			out.Iterate(func(i int, _ bool) bool {
				if depths[i] < 0 {
					depths[i] = 2
				}
				return true
			})
			if err := graphblas.AssignVector(visited, out); err != nil {
				t.Fatal(err)
			}
			w := 0
			for _, u := range unvisited {
				if !visBits[u] {
					unvisited[w] = u
					w++
				}
			}
			unvisited = unvisited[:w]
		}
		iteration() // warm buffers; also settles visited/unvisited to a fixpoint
		iteration()
		if avg := testing.AllocsPerRun(20, iteration); avg != 0 {
			t.Errorf("%s iteration: %v allocs in steady state, want 0", dirCase.name, avg)
		}
	}
}

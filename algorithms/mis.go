package algorithms

import (
	"fmt"
	"math/rand"

	"pushpull/graphblas"
	"pushpull/internal/sparse"
)

// MIS computes a maximal independent set with Luby's algorithm expressed
// in GraphBLAS operations — one of the paper's Section 5.6 masking
// beneficiaries: each round's neighbour-max matvec is masked to the
// still-undecided candidate set, whose shrinkage is known a priori.
//
// Per round: every candidate draws a random weight; a candidate whose
// weight beats the maximum over its candidate neighbours joins the set;
// winners and their neighbours leave the candidate pool. Expected O(log n)
// rounds. The rng seed makes runs reproducible.
func MIS(a *graphblas.Matrix[bool], seed int64) ([]bool, error) {
	n := a.NRows()
	if a.NCols() != n {
		return nil, fmt.Errorf("algorithms: MIS needs a square matrix, got %d×%d", a.NRows(), a.NCols())
	}
	rng := rand.New(rand.NewSource(seed))
	// (max, second) semiring: propagate each candidate's weight to its
	// neighbours, keep the largest.
	sr := graphblas.Semiring[float64]{
		Add: graphblas.Monoid[float64]{
			Op: func(x, y float64) float64 {
				if x > y {
					return x
				}
				return y
			},
			Identity: 0,
		},
		Mul: func(_, y float64) float64 { return y },
		One: 1,
	}
	weighted := graphblas.NewMatrixFromCSR(sparse.Scale(a.CSR(), func(bool) float64 { return 1 }))

	inSet := make([]bool, n)
	candidate := make([]bool, n)
	for i := range candidate {
		candidate[i] = true
	}
	remaining := n
	weights := graphblas.NewVector[float64](n)
	nbrMax := graphblas.NewVector[float64](n)
	candMask := graphblas.NewVector[bool](n)
	csr := a.CSR()

	// One workspace and descriptor across the rounds; the candidate mask
	// vector is likewise reused rather than rebuilt.
	ws := graphblas.AcquireWorkspace(n, n)
	defer ws.Release()
	desc := &graphblas.Descriptor{Transpose: true, Workspace: ws}

	for remaining > 0 {
		// Draw weights for candidates; isolated candidates always win.
		weights.Clear()
		candMask.Clear()
		for i := 0; i < n; i++ {
			if candidate[i] {
				_ = weights.SetElement(i, 1+rng.Float64()) // strictly > identity
				_ = candMask.SetElement(i, true)
			}
		}
		// nbrMax⟨candidates⟩ = max over candidate neighbours' weights.
		if _, err := graphblas.Into(nbrMax).Mask(candMask).With(desc).MxV(sr, weighted, weights); err != nil {
			return nil, err
		}
		// Winners: weight strictly greater than every candidate
		// neighbour's weight (ties impossible w.p. 1; break by index).
		var winners []int
		for i := 0; i < n; i++ {
			if !candidate[i] {
				continue
			}
			w, _ := weights.ExtractElement(i)
			m, err := nbrMax.ExtractElement(i)
			if err != nil || w > m {
				winners = append(winners, i)
			}
		}
		if len(winners) == 0 {
			// Degenerate tie round (vanishingly rare): deterministically
			// promote the lowest-indexed candidate to guarantee progress.
			for i := 0; i < n; i++ {
				if candidate[i] {
					winners = append(winners, i)
					break
				}
			}
		}
		for _, i := range winners {
			if !candidate[i] {
				continue // removed as a neighbour of an earlier winner
			}
			inSet[i] = true
			candidate[i] = false
			remaining--
			ind, _ := csr.RowSpan(i)
			for _, j := range ind {
				if candidate[j] {
					candidate[j] = false
					remaining--
				}
			}
		}
	}
	return inSet, nil
}

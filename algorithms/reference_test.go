package algorithms

import (
	"container/heap"
	"math"

	"pushpull/graphblas"
)

// This file holds simple, obviously-correct reference implementations the
// algorithm tests compare against: queue BFS, Dijkstra, brute-force
// triangle counting, and a dense Brandes BC.

func refBFS(a *graphblas.Matrix[bool], source int) []int32 {
	n := a.NRows()
	depths := make([]int32, n)
	for i := range depths {
		depths[i] = -1
	}
	depths[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		ind, _ := a.RowView(u)
		for _, v := range ind {
			if depths[v] < 0 {
				depths[v] = depths[u] + 1
				queue = append(queue, int(v))
			}
		}
	}
	return depths
}

type pqItem struct {
	v    int
	dist float64
}
type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; n := len(old); x := old[n-1]; *p = old[:n-1]; return x }

func refDijkstra(a *graphblas.Matrix[float64], source int) []float64 {
	n := a.NRows()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	q := &pq{{source, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.v] {
			continue
		}
		ind, val := a.RowView(it.v)
		for k, w := range ind {
			nd := it.dist + val[k]
			if nd < dist[w] {
				dist[w] = nd
				heap.Push(q, pqItem{int(w), nd})
			}
		}
	}
	return dist
}

func refTriangles(a *graphblas.Matrix[bool]) int64 {
	n := a.NRows()
	adj := make([]map[int]bool, n)
	for i := 0; i < n; i++ {
		adj[i] = map[int]bool{}
		ind, _ := a.RowView(i)
		for _, j := range ind {
			adj[i][int(j)] = true
		}
	}
	var count int64
	for i := 0; i < n; i++ {
		for j := range adj[i] {
			if j <= i {
				continue
			}
			for k := range adj[j] {
				if k > j && adj[i][k] {
					count++
				}
			}
		}
	}
	return count
}

// refBC is dense Brandes over the given sources.
func refBC(a *graphblas.Matrix[bool], sources []int) []float64 {
	n := a.NRows()
	bc := make([]float64, n)
	for _, s := range sources {
		sigma := make([]float64, n)
		depth := make([]int32, n)
		for i := range depth {
			depth[i] = -1
		}
		sigma[s] = 1
		depth[s] = 0
		var order []int
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			ind, _ := a.RowView(u)
			for _, vv := range ind {
				v := int(vv)
				if depth[v] < 0 {
					depth[v] = depth[u] + 1
					queue = append(queue, v)
				}
				if depth[v] == depth[u]+1 {
					sigma[v] += sigma[u]
				}
			}
		}
		delta := make([]float64, n)
		for i := len(order) - 1; i >= 0; i-- {
			u := order[i]
			ind, _ := a.RowView(u)
			for _, vv := range ind {
				v := int(vv)
				if depth[v] == depth[u]+1 {
					delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
				}
			}
			if u != s {
				bc[u] += delta[u]
			}
		}
	}
	return bc
}

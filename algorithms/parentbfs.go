package algorithms

import (
	"context"
	"fmt"

	"pushpull/graphblas"
	"pushpull/internal/core"
	"pushpull/internal/sparse"
)

// ParentBFS runs a Graph500-style BFS that records, for every reached
// vertex, the parent through which it was first discovered. It uses the
// (min, second) semiring over vertex ids: each frontier vertex carries its
// own id, the multiply forwards the carrier's id to its neighbours, and
// min picks a deterministic winner among competing parents.
//
// Returned parents[i] is the parent of i, parents[source] == source, and
// -1 marks unreached vertices.
func ParentBFS(a *graphblas.Matrix[bool], source int) ([]int64, error) {
	return ParentBFSWithContext(nil, a, source, nil)
}

// ParentBFSTuned is ParentBFS under a calibrated cost model. Unlike BFS,
// ParentBFS plans nothing itself — its matvec runs with Direction == Auto
// — so the model and the feedback corrector ride the descriptor into the
// MxV pipeline's own planner, which times every kernel it schedules.
// model == nil keeps the unit model.
func ParentBFSTuned(a *graphblas.Matrix[bool], source int, model *core.CostModel) ([]int64, error) {
	return ParentBFSWithContext(nil, a, source, model)
}

// ParentBFSOptions configures ParentBFSRun, the options form of the
// ParentBFS family.
type ParentBFSOptions struct {
	// Model prices the matvec pipeline's direction planner with calibrated
	// coefficients (see ParentBFSTuned). Nil keeps the unit model.
	Model *core.CostModel
	// Shards, when > 1, range-shards each level's matvec with per-shard
	// direction decisions (see BFSOptions.Shards).
	Shards int
	// Workspace, when non-nil, pins the caller's scratch arena for the run
	// instead of acquiring a pooled one (see BFSOptions.Workspace): not
	// released by ParentBFS, not shareable between concurrent operations.
	Workspace *graphblas.Workspace
	// Context makes the traversal abortable (see ParentBFSWithContext).
	Context context.Context
}

// ParentBFSRun is ParentBFS with the full option set.
func ParentBFSRun(a *graphblas.Matrix[bool], source int, opt ParentBFSOptions) ([]int64, error) {
	return parentBFS(opt.Context, a, source, opt.Model, opt.Shards, opt.Workspace)
}

// ParentBFSWithContext is ParentBFSTuned with cooperative cancellation: the
// pipeline checks ctx between kernel phases, the parallel kernels stop
// claiming chunks once it is done, and the traversal checks it at each
// level boundary. A cancelled run returns a wrapped graphblas.ErrCancelled
// along with the partial parent array discovered so far (unreached vertices
// stay -1). ctx == nil means never cancelled.
func ParentBFSWithContext(ctx context.Context, a *graphblas.Matrix[bool], source int, model *core.CostModel) ([]int64, error) {
	return parentBFS(ctx, a, source, model, 0, nil)
}

func parentBFS(ctx context.Context, a *graphblas.Matrix[bool], source int, model *core.CostModel, shards int, pinned *graphblas.Workspace) ([]int64, error) {
	n := a.NRows()
	if a.NCols() != n {
		return nil, fmt.Errorf("algorithms: ParentBFS needs a square matrix, got %d×%d", a.NRows(), a.NCols())
	}
	if source < 0 || source >= n {
		return nil, fmt.Errorf("algorithms: ParentBFS source %d out of range [0,%d)", source, n)
	}
	// The traversal multiplies over uint32 ids, so re-type the pattern.
	ids := graphblas.NewMatrixFromCSR(boolToIDCSR(a))
	sr := graphblas.MinSecondUint32()

	parents := make([]int64, n)
	for i := range parents {
		parents[i] = -1
	}
	parents[source] = int64(source)

	visited := graphblas.NewVector[bool](n)
	// Word-packed visited set: the masked matvec reads it as packed words
	// zero-copy and the per-level scalar assign flips single bits in place.
	visited.ToBitset()
	if err := visited.SetElement(source, true); err != nil {
		return nil, err
	}
	f := graphblas.NewVector[uint32](n)
	if err := f.SetElement(source, uint32(source)); err != nil {
		return nil, err
	}

	// One workspace and descriptor across the traversal; the f ← Aᵀf
	// aliased matvec bounces through the workspace scratch vector.
	ws := pinned
	if ws == nil {
		ws = graphblas.AcquireWorkspace(n, n)
		defer ws.Release()
	}
	desc := &graphblas.Descriptor{Transpose: true, StructuralComplement: true, Workspace: ws, Context: ctx}
	if model != nil {
		desc.CostModel = model
		desc.Corrector = &core.Corrector{}
	}
	if shards > 1 {
		// Range-sharded levels: per-shard direction decisions with
		// per-shard corrector feedback replacing the pipeline planner's
		// hysteresis.
		desc.Shards = shards
		if desc.Corrector == nil {
			desc.Corrector = &core.Corrector{}
		}
	}
	assignDesc := &graphblas.Descriptor{Workspace: ws, Context: ctx}

	stamp := func(i int, _ uint32) uint32 { return uint32(i) }
	for f.NVals() > 0 {
		// Level boundary: a cancelled context aborts within one iteration,
		// returning the parents discovered so far.
		if err := graphblas.CheckContext(ctx); err != nil {
			return parents, err
		}
		if _, err := graphblas.Into(f).Mask(visited).With(desc).MxV(sr, ids, f); err != nil {
			return parents, err
		}
		f.Iterate(func(i int, parent uint32) bool {
			parents[i] = int64(parent)
			return true
		})
		// visited⟨f⟩ = true: masks are structural, so the uint32 frontier
		// masks the Boolean visited vector directly — no pattern copy.
		if err := graphblas.Into(visited).Mask(f).With(assignDesc).AssignScalar(true); err != nil {
			return parents, err
		}
		// Re-stamp each newly discovered vertex with its own id so the
		// next hop forwards the right parent (in place: same pattern).
		if err := graphblas.Into(f).ApplyIndexed(stamp, f); err != nil {
			return parents, err
		}
	}
	return parents, nil
}

// boolToIDCSR converts a Boolean pattern matrix into a uint32-valued one
// (values unused by the min-second semiring's Mul, but the type must
// match). Pointer and index arrays are shared with the source.
func boolToIDCSR(a *graphblas.Matrix[bool]) *sparse.CSR[uint32] {
	src := a.CSR()
	return &sparse.CSR[uint32]{
		Rows: src.Rows,
		Cols: src.Cols,
		Ptr:  src.Ptr,
		Ind:  src.Ind,
		Val:  make([]uint32, len(src.Ind)),
	}
}

package algorithms

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pushpull/graphblas"
)

func TestMultiBFSMatchesSingleSource(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	graphs := []*graphblas.Matrix[bool]{
		randUndirected(rng, 90, 0.06),
		randDirected(rng, 70, 0.08),
		pathGraph(60),
		starPlusClique(50, 8),
	}
	for gi, g := range graphs {
		n := g.NRows()
		var sources []int
		for s := 0; s < n && len(sources) < 7; s += 1 + n/8 {
			sources = append(sources, s)
		}
		got, err := MultiBFS(g, sources)
		if err != nil {
			t.Fatal(err)
		}
		for si, src := range sources {
			want := refBFS(g, src)
			for v := range want {
				if got[si][v] != want[v] {
					t.Fatalf("graph %d source %d: depth[%d]=%d want %d", gi, src, v, got[si][v], want[v])
				}
			}
		}
	}
}

func TestMultiBFSFull64Lanes(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	g := randUndirected(rng, 128, 0.05)
	sources := make([]int, 64)
	for i := range sources {
		sources[i] = i * 2
	}
	got, err := MultiBFS(g, sources)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 64 {
		t.Fatalf("want 64 depth arrays, got %d", len(got))
	}
	// Spot-check a handful of lanes.
	for _, si := range []int{0, 31, 63} {
		want := refBFS(g, sources[si])
		for v := range want {
			if got[si][v] != want[v] {
				t.Fatalf("lane %d: depth[%d]=%d want %d", si, v, got[si][v], want[v])
			}
		}
	}
}

func TestMultiBFSErrors(t *testing.T) {
	g := pathGraph(10)
	if out, err := MultiBFS(g, nil); err != nil || out != nil {
		t.Fatal("empty source list should return nil, nil")
	}
	if _, err := MultiBFS(g, make([]int, 65)); err == nil {
		t.Fatal(">64 sources accepted")
	}
	if _, err := MultiBFS(g, []int{99}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	rect, err := graphblas.NewMatrixFromCOO(2, 3, []uint32{0}, []uint32{1}, []bool{true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MultiBFS(rect, []int{0}); err == nil {
		t.Fatal("rectangular accepted")
	}
}

func TestMultiBFSProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(80)
		g := randUndirected(rng, n, 0.03+rng.Float64()*0.1)
		k := 1 + rng.Intn(10)
		sources := make([]int, k)
		for i := range sources {
			sources[i] = rng.Intn(n)
		}
		got, err := MultiBFS(g, sources)
		if err != nil {
			return false
		}
		for si, src := range sources {
			want := refBFS(g, src)
			for v := range want {
				if got[si][v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package algorithms

import (
	"math"
	"math/rand"
	"testing"

	"pushpull/internal/core"
)

// equalDepths fails the test if two BFS results disagree anywhere.
func equalDepths(t *testing.T, got, want []int32) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("depth[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestBFSShardedMatchesUnsharded: sharding is an execution strategy, so
// sharded traversals must produce identical depths across shard counts and
// forced-direction modes.
func TestBFSShardedMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 4; trial++ {
		a := randUndirected(rng, 800, 0.004)
		ref, err := BFS(a, 0, BFSOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 5, 16} {
			for _, mode := range []BFSOptions{
				{Shards: shards},
				{Shards: shards, ForcePull: true},
				{Shards: shards, DisableDirectionOpt: true},
			} {
				res, err := BFS(a, 0, mode)
				if err != nil {
					t.Fatalf("trial %d shards=%d %+v: %v", trial, shards, mode, err)
				}
				equalDepths(t, res.Depths, ref.Depths)
				if res.Visited != ref.Visited || res.EdgesTraversed != ref.EdgesTraversed {
					t.Fatalf("trial %d shards=%d: bookkeeping diverged (%d/%d visited, %d/%d edges)",
						trial, shards, res.Visited, ref.Visited, res.EdgesTraversed, ref.EdgesTraversed)
				}
			}
		}
	}
}

// TestBFSShardedTrace checks the per-level shard records surface through
// IterStats: every auto level carries one entry per shard, tiling the
// output range, with measured times filled in.
func TestBFSShardedTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n := 1000
	a := randUndirected(rng, n, 0.005)
	var traces []IterStats
	_, err := BFS(a, 0, BFSOptions{Shards: 4, Trace: func(s IterStats) { traces = append(traces, s) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("no trace records")
	}
	for _, s := range traces {
		if len(s.Shards) != 4 {
			t.Fatalf("iteration %d: %d shard records, want 4", s.Iteration, len(s.Shards))
		}
		prev := 0
		pulls := 0
		for i, sp := range s.Shards {
			if sp.Lo != prev {
				t.Fatalf("iteration %d shard %d: range starts at %d, want %d", s.Iteration, i, sp.Lo, prev)
			}
			prev = sp.Hi
			if sp.MeasuredNs <= 0 {
				t.Fatalf("iteration %d shard %d: MeasuredNs %v, want > 0", s.Iteration, i, sp.MeasuredNs)
			}
			if sp.Dir == core.Pull {
				pulls++
			}
		}
		if prev != n {
			t.Fatalf("iteration %d: shards end at %d, want %d", s.Iteration, prev, n)
		}
		if wantHybrid := pulls > 0 && pulls < len(s.Shards); s.Hybrid != wantHybrid {
			t.Fatalf("iteration %d: Hybrid=%v with %d/%d pull shards", s.Iteration, s.Hybrid, pulls, len(s.Shards))
		}
	}
}

// TestParentBFSSharded: sharded parent discovery yields a valid BFS tree
// (min-second picks deterministic parents, but shard-concurrent discovery
// keeps the same semiring semantics, so parents must be identical).
func TestParentBFSSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	a := randUndirected(rng, 400, 0.01)
	ref, err := ParentBFS(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParentBFSRun(a, 0, ParentBFSOptions{Shards: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("parent[%d] = %d sharded, %d unsharded", i, got[i], ref[i])
		}
	}
}

// TestSSSPSharded: sharded relaxation converges to the same distances.
func TestSSSPSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	ab := randUndirected(rng, 300, 0.015)
	a := weightedFromBool(rng, ab)
	ref, err := SSSP(a, 0, SSSPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var traces []IterStats
	got, err := SSSP(a, 0, SSSPOptions{Shards: 5, Trace: func(s IterStats) { traces = append(traces, s) }})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("dist[%d] = %v sharded, %v unsharded", i, got[i], ref[i])
		}
	}
	sawShards := false
	for _, s := range traces {
		if len(s.Shards) > 0 {
			sawShards = true
		}
	}
	if !sawShards {
		t.Fatal("no SSSP trace carried shard records")
	}
}

// TestPageRankSharded: the pull-pinned power iteration under sharding
// converges to the same ranks.
func TestPageRankSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	a := randUndirected(rng, 250, 0.02)
	ref, err := PageRank(a, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := PageRank(a, PageRankOptions{Shards: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != ref.Iterations {
		t.Fatalf("sharded converged in %d iterations, unsharded in %d", got.Iterations, ref.Iterations)
	}
	for i := range ref.Ranks {
		if math.Abs(got.Ranks[i]-ref.Ranks[i]) > 1e-12 {
			t.Fatalf("rank[%d] = %v sharded, %v unsharded", i, got.Ranks[i], ref.Ranks[i])
		}
	}
}

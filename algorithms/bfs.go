// Package algorithms implements graph algorithms on top of the graphblas
// package: direction-optimized BFS (the paper's headline algorithm,
// Algorithm 1, with each of the five optimizations individually
// toggleable), parent-tracking BFS, SSSP, PageRank and its masked adaptive
// variant, triangle counting via masked MxM, maximal independent set, and
// betweenness centrality — the Section 5.6 generality set.
package algorithms

import (
	"context"
	"fmt"
	"time"

	"pushpull/graphblas"
	"pushpull/internal/core"
)

// BFSOptions selects which of the paper's optimizations a BFS run uses.
// The zero value is the full direction-optimized configuration (everything
// on); the Table 2 experiment builds the cumulative stack by starting from
// AllOff and enabling one field at a time.
type BFSOptions struct {
	// DisableDirectionOpt pins the traversal to push-only (the baseline
	// behaviour of SuiteSparse '17 and the Yang-2015 GPU BFS).
	DisableDirectionOpt bool
	// ForcePull pins the traversal to pull-only (used by the Figure 6
	// experiment's pull-only series). Takes precedence over
	// DisableDirectionOpt.
	ForcePull bool
	// DisableMasking drops the ¬v mask from the mxv and filters the new
	// frontier against the visited set afterwards, as a separate eWise
	// step — Optimization 2 off.
	DisableMasking bool
	// DisableEarlyExit forbids the pull kernel's first-parent break —
	// Optimization 3 off.
	DisableEarlyExit bool
	// DisableOperandReuse uses the frontier f (converted sparse→dense) as
	// the pull input instead of the visited pattern — Optimization 4 off.
	DisableOperandReuse bool
	// DisableStructureOnly makes kernels read matrix/vector values —
	// Optimization 5 off.
	DisableStructureOnly bool
	// DisableMaskAmortize stops maintaining the unvisited allow-list, so
	// the masked pull pays an O(M) bitmap scan per iteration (the
	// Section 3.2 amortization off).
	DisableMaskAmortize bool
	// SwitchPoint, when positive, selects the paper's legacy nnz/n ratio
	// rule at that crossover instead of the default edge-based cost model
	// (the direction planner). Zero means plan by cost.
	SwitchPoint float64
	// Shards, when > 1, runs each level's matvec range-sharded: the
	// destination space splits into that many edge-balanced ranges and the
	// direction decision happens per shard, so a mixed-density frontier
	// can pull its hub ranges while pushing the tail concurrently
	// (Descriptor.Shards). Forced modes (ForcePull/DisableDirectionOpt)
	// still shard the execution but pin every shard to the one direction.
	// The whole-operation planner is bypassed on auto levels — per-shard
	// corrector feedback replaces its hysteresis — and per-level shard
	// records surface through IterStats.Shards.
	Shards int
	// Model, when non-nil, prices the planner's estimates with calibrated
	// per-machine nanosecond coefficients (ppbench calibrate / -tune)
	// instead of unit RAM costs; each level's matvec is then timed and fed
	// back into the planner's corrector, so a mis-fitted profile converges
	// mid-traversal. Nil keeps the unit model.
	Model *core.CostModel
	// Workspace, when non-nil, pins the caller's scratch arena for the
	// traversal instead of acquiring a pooled one — the seam long-lived
	// serving workers use to keep one warm arena per worker across queries
	// (internal/serve). The caller owns its lifecycle: BFS does not
	// Release it, and it must not be used by concurrent operations. Nil
	// keeps the acquire/release-per-run behaviour.
	Workspace *graphblas.Workspace
	// Merge selects the push-phase merge strategy.
	Merge graphblas.MergeStrategy
	// Trace, when non-nil, receives one record per BFS iteration.
	Trace func(IterStats)
	// Context, when non-nil, makes the traversal abortable: the pipeline
	// checks it between kernel phases, the parallel kernels stop claiming
	// chunks once it is done, and BFS itself checks it at each level
	// boundary. A cancelled run returns a wrapped graphblas.ErrCancelled
	// along with the partial result — depths discovered so far (unreached
	// vertices stay -1) and the per-level stats. The live-path check is
	// allocation-free, so setting a Context does not disturb the
	// zero-allocation steady state.
	Context context.Context
}

// AllOff returns options with every optimization disabled — the Table 2
// baseline: push-only, unmasked, value-carrying, no early exit.
func AllOff() BFSOptions {
	return BFSOptions{
		DisableDirectionOpt:  true,
		DisableMasking:       true,
		DisableEarlyExit:     true,
		DisableOperandReuse:  true,
		DisableStructureOnly: true,
		DisableMaskAmortize:  true,
	}
}

// IterStats records one BFS iteration for tracing and the Figure 5/6
// experiments. PushCost/PullCost are the direction planner's estimates for
// the iteration (zero when the direction was forced rather than planned)
// and FrontierFormat is the storage format the produced frontier landed
// in, so traces witness both the decision evidence and the bitmap
// frontiers it yields.
type IterStats struct {
	Iteration    int
	Direction    core.Direction
	FrontierNNZ  int
	UnvisitedNNZ int
	Duration     time.Duration
	PushCost     float64
	PullCost     float64
	// MaskDensity is the effective ¬visited mask density the planner
	// discounted the pull cost by (exact, read off the bitset visited set;
	// zero when the direction was forced rather than planned).
	MaskDensity    float64
	FrontierFormat graphblas.Format
	// PredictedNs is the calibrated model's wall-clock estimate for the
	// chosen kernel — zero under the unit model (whose costs are not
	// nanoseconds) and on forced iterations, which plan nothing.
	// MeasuredNs is the matvec's measured time, recorded on every
	// iteration (forced ones included); the measured/predicted ratio is
	// the prediction error the feedback corrector folds into the next
	// decision.
	PredictedNs float64
	MeasuredNs  float64
	// Shards holds the level's per-shard plan records on sharded runs
	// (BFSOptions.Shards > 1): each destination range's direction, cost
	// pair and measured time. The slice is copied per trace call, so
	// records stay valid after the traversal moves on. Hybrid reports
	// that the level genuinely mixed directions across ranges. Direction
	// is then the shard-majority direction.
	Shards []core.ShardPlan
	Hybrid bool
}

// BFSResult carries the outputs of a traversal.
type BFSResult struct {
	// Depths[i] is the BFS level of vertex i (source = 0), or -1 if
	// unreached.
	Depths []int32
	// Visited is the number of reached vertices (including the source).
	Visited int
	// EdgesTraversed is the sum of out-degrees of reached vertices — the
	// TEPS denominator's numerator, matching Gunrock's convention.
	EdgesTraversed int64
	// Iterations is the number of frontier expansions performed.
	Iterations int
}

// MTEPS returns millions of traversed edges per second for the given
// wall-clock duration.
func (r BFSResult) MTEPS(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(r.EdgesTraversed) / d.Seconds() / 1e6
}

// BFS runs Algorithm 1 — the single-formula direction-optimized BFS
// f ← Aᵀf .* ¬v over the Boolean semiring — from the given source.
//
// The traversal keeps three pieces of state: the frontier f (a
// three-format Boolean vector: sparse while pushing, bitmap once the
// planner pulls), the depth vector v (updated with masked scalar assign,
// Algorithm 1 Line 7), and the visited pattern kept in bitmap form as the
// mask and, with operand reuse, as the pull input. Direction choice comes
// from the graphblas.Planner: the edge-based cost model by default
// (frontier out-degrees vs masked pull rows, hysteresis on the frontier
// trend), or the legacy ratio rule when opt.SwitchPoint is set.
func BFS(a *graphblas.Matrix[bool], source int, opt BFSOptions) (BFSResult, error) {
	n := a.NRows()
	if a.NCols() != n {
		return BFSResult{}, fmt.Errorf("algorithms: BFS needs a square matrix, got %d×%d", a.NRows(), a.NCols())
	}
	if source < 0 || source >= n {
		return BFSResult{}, fmt.Errorf("algorithms: BFS source %d out of range [0,%d)", source, n)
	}
	sr := graphblas.OrAndBool()

	f := graphblas.NewVector[bool](n)
	if err := f.SetElement(source, true); err != nil {
		return BFSResult{}, err
	}
	visited := graphblas.NewVector[bool](n) // mask + operand-reuse input
	// The visited set lives word-packed: the ¬visited mask probe, the
	// operand-reuse pull input and the unvisited-list compaction all read
	// single bits of an n/8-byte pattern instead of n presence bytes.
	visited.ToBitset()
	if err := visited.SetElement(source, true); err != nil {
		return BFSResult{}, err
	}
	depths := make([]int32, n)
	for i := range depths {
		depths[i] = -1
	}
	depths[source] = 0

	// Amortized unvisited list (Section 3.2): built once, shrunk in place
	// each iteration as vertices get visited.
	var unvisited []uint32
	if !opt.DisableMaskAmortize && !opt.DisableMasking {
		unvisited = make([]uint32, 0, n-1)
		for i := 0; i < n; i++ {
			if i != source {
				unvisited = append(unvisited, uint32(i))
			}
		}
	}

	planner := graphblas.NewPlanner(a, true, opt.SwitchPoint).WithModel(opt.Model)
	if !opt.DisableOperandReuse {
		// With operand reuse the pull kernel probes the word-packed visited
		// set, so a calibrated model prices pull probes at the bitset rate.
		planner.SetPullProbeKind(core.KindBitset)
	}
	dir := core.Push
	depth := int32(0)
	// Depths shares its backing array with the depth bookkeeping below, so
	// error returns mid-traversal carry the partial depths discovered so far.
	res := BFSResult{Visited: 1, EdgesTraversed: int64(len(firstRow(a, source))), Depths: depths}

	// One workspace and one descriptor serve the whole traversal: after
	// the first couple of levels every buffer in the stack is warm and an
	// iteration allocates nothing. A caller-pinned workspace outlives the
	// run (serving workers reuse theirs query over query).
	ws := opt.Workspace
	if ws == nil {
		ws = graphblas.AcquireWorkspace(n, n)
		defer ws.Release()
	}
	desc := &graphblas.Descriptor{
		Transpose:     true,
		StructureOnly: !opt.DisableStructureOnly,
		NoEarlyExit:   opt.DisableEarlyExit,
		Merge:         opt.Merge,
		Workspace:     ws,
		Context:       opt.Context,
	}
	// Sharded execution: per-level matvecs split into edge-balanced
	// destination ranges, each planned (and corrected) independently. The
	// plan sink and corrector live for the traversal, so the per-shard
	// EWMA keys converge level over level.
	sharded := opt.Shards > 1
	var shardPlan core.Plan
	var shardCorr core.Corrector
	if sharded {
		desc.Shards = opt.Shards
		desc.CostModel = opt.Model
		desc.Corrector = &shardCorr
		desc.Plan = &shardPlan
	}
	// Post-filter for the unmasked configuration: f⟨¬visited⟩ = f as a
	// masked identity apply through the same pipeline.
	filterDesc := &graphblas.Descriptor{StructuralComplement: true, Workspace: ws, Context: opt.Context}
	keep := func(x bool) bool { return x }

	for f.NVals() > 0 {
		// Level boundary: a cancelled context aborts within one iteration,
		// returning the depths discovered so far.
		if err := graphblas.CheckContext(opt.Context); err != nil {
			return res, err
		}
		iterStart := time.Now()
		depth++
		res.Iterations++

		var plan core.Plan
		var measured time.Duration
		planned := false
		// On sharded auto levels the direction decision moves inside the
		// pipeline — one decision per destination range — so the whole-
		// operation planner (and its hysteresis) is bypassed entirely.
		autoShard := sharded && !opt.ForcePull && !opt.DisableDirectionOpt
		switch {
		case opt.ForcePull:
			dir = core.Pull
		case opt.DisableDirectionOpt:
			dir = core.Push
		case autoShard:
		default:
			planned = true
			// Plan the direction: exact frontier out-degrees when f is
			// sparse (read off CSC.Ptr in O(nnz(f))), the nnz·d̄ estimate
			// otherwise, against pull's unvisited-row count.
			frontierInd, _ := f.SparseIndices()
			maskAllowed := -1
			if !opt.DisableMasking {
				maskAllowed = n - res.Visited
			}
			plan = planner.Plan(frontierInd, f.NVals(), maskAllowed)
			dir = plan.Dir
		}

		switch {
		case autoShard:
			desc.Direction = graphblas.Auto
		case dir == core.Push:
			desc.Direction = graphblas.ForcePush
		default:
			desc.Direction = graphblas.ForcePull
		}

		input := f
		if dir == core.Pull && !autoShard && !opt.DisableOperandReuse {
			// Optimization 4: the visited set is a superset of the
			// frontier, and with the ¬v mask the extra discoveries filter
			// out — so the already-dense visited pattern replaces f,
			// making the sparse→dense conversion of f unnecessary.
			// (Sharded auto levels keep f: the per-shard planner wants the
			// frontier's sparse indices for exact cut-table edge counts,
			// and push shards need the true frontier, not its superset.)
			input = visited
		}

		// The matvec itself is timed (monotonic clock, no allocations) so
		// the planner's corrector can compare prediction against reality
		// each level.
		var err error
		mxvStart := time.Now()
		if opt.DisableMasking {
			// Unmasked mxv, then filter out already-visited vertices as a
			// separate masked-identity step (the pre-masking formulation).
			if _, err = graphblas.Into(f).With(desc).MxV(sr, a, input); err != nil {
				return res, err
			}
			measured = time.Since(mxvStart)
			if err = graphblas.Into(f).Mask(visited).With(filterDesc).Apply(keep, f); err != nil {
				return res, err
			}
		} else {
			if unvisited != nil && (dir == core.Pull || autoShard) {
				desc.MaskAllowList = unvisited
			} else {
				desc.MaskAllowList = nil
			}
			desc.StructuralComplement = true
			if _, err = graphblas.Into(f).Mask(visited).With(desc).MxV(sr, a, input); err != nil {
				return res, err
			}
			measured = time.Since(mxvStart)
		}
		if planned {
			planner.Observe(plan, measured)
		}
		if autoShard {
			// The per-shard records double as the level's plan evidence;
			// Direction becomes the shard-majority choice.
			plan = shardPlan
			dir = shardPlan.Dir
		}

		// Bookkeeping: v⟨f⟩ = depth (Algorithm 1 Line 7, split across the
		// depth array and the visited pattern).
		newly := 0
		f.Iterate(func(i int, _ bool) bool {
			if depths[i] < 0 {
				depths[i] = depth
				newly++
				res.EdgesTraversed += int64(a.CSR().RowLen(i))
			}
			return true
		})
		if err := graphblas.Into(visited).AssignVector(f); err != nil {
			return res, err
		}
		res.Visited += newly

		if unvisited != nil && newly > 0 {
			_, visWords := visited.BitsetView()
			w := 0
			for _, u := range unvisited {
				if !core.BitsetGet(visWords, int(u)) {
					unvisited[w] = u
					w++
				}
			}
			unvisited = unvisited[:w]
		}

		if opt.Trace != nil {
			stats := IterStats{
				Iteration:      res.Iterations,
				Direction:      dir,
				FrontierNNZ:    f.NVals(),
				UnvisitedNNZ:   n - res.Visited,
				Duration:       time.Since(iterStart),
				PushCost:       plan.PushCost,
				PullCost:       plan.PullCost,
				MaskDensity:    plan.MaskAllowFrac,
				FrontierFormat: f.Format(),
				PredictedNs:    plan.PredictedNs,
				MeasuredNs:     float64(measured.Nanoseconds()),
			}
			if sharded && len(shardPlan.Shards) > 0 {
				// The backing array is workspace scratch the next matvec
				// overwrites; trace mode copies (it allocates anyway).
				stats.Shards = append([]core.ShardPlan(nil), shardPlan.Shards...)
				stats.Hybrid = shardPlan.Hybrid
			}
			opt.Trace(stats)
		}
	}
	res.Depths = depths
	return res, nil
}

// firstRow returns the source row's indices (edge count seed for TEPS).
func firstRow(a *graphblas.Matrix[bool], i int) []uint32 {
	ind, _ := a.RowView(i)
	return ind
}

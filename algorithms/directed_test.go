package algorithms

import (
	"math"
	"math/rand"
	"testing"

	"pushpull/graphblas"
)

// Directed-graph coverage: asymmetric adjacency matrices exercise the
// separate CSR/CSC paths (Matrix.Symmetric() == false), which undirected
// tests never touch.

func randDirected(rng *rand.Rand, n int, p float64) *graphblas.Matrix[bool] {
	var r, c []uint32
	var v []bool
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				r = append(r, uint32(i))
				c = append(c, uint32(j))
				v = append(v, true)
			}
		}
	}
	m, err := graphblas.NewMatrixFromCOO(n, n, r, c, v, nil)
	if err != nil {
		panic(err)
	}
	return m
}

func TestBFSDirectedFollowsOutEdges(t *testing.T) {
	// 0→1→2, 2→0 (cycle), 3→0 (3 unreachable from 0).
	g, err := graphblas.NewMatrixFromCOO(4, 4,
		[]uint32{0, 1, 2, 3}, []uint32{1, 2, 0, 0},
		[]bool{true, true, true, true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Symmetric() {
		t.Fatal("directed test graph must be asymmetric")
	}
	res, err := BFS(g, 0, BFSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 2, -1}
	for i := range want {
		if res.Depths[i] != want[i] {
			t.Fatalf("depth[%d]=%d want %d", i, res.Depths[i], want[i])
		}
	}
}

func TestBFSDirectedMatchesReferenceAllOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(60)
		g := randDirected(rng, n, 0.08)
		src := rng.Intn(n)
		want := refBFS(g, src)
		for oname, opt := range optionMatrix() {
			res, err := BFS(g, src, opt)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, oname, err)
			}
			for v := range want {
				if res.Depths[v] != want[v] {
					t.Fatalf("trial %d %s: depth[%d]=%d want %d", trial, oname, v, res.Depths[v], want[v])
				}
			}
		}
	}
}

func TestParentBFSDirected(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(40)
		g := randDirected(rng, n, 0.1)
		src := rng.Intn(n)
		want := refBFS(g, src)
		parents, err := ParentBFS(g, src)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if (want[v] >= 0) != (parents[v] >= 0) {
				t.Fatalf("trial %d: reachability of %d differs", trial, v)
			}
			if v != src && parents[v] >= 0 {
				p := int(parents[v])
				if want[p] != want[v]-1 {
					t.Fatalf("trial %d: parent %d of %d at wrong level", trial, p, v)
				}
				// Parent must have a directed edge p→v.
				if _, err := g.ExtractElement(p, v); err != nil {
					t.Fatalf("trial %d: no edge %d→%d", trial, p, v)
				}
			}
		}
	}
}

func TestSSSPDirected(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(40)
		gb := randDirected(rng, n, 0.12)
		// Deterministic positive weights per directed edge.
		var r, c []uint32
		var v []float64
		csr := gb.CSR()
		for i := 0; i < n; i++ {
			ind, _ := csr.RowSpan(i)
			for _, j := range ind {
				r = append(r, uint32(i))
				c = append(c, j)
				v = append(v, 1+float64((i*7+int(j)*13)%10))
			}
		}
		g, err := graphblas.NewMatrixFromCOO(n, n, r, c, v, nil)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.Intn(n)
		want := refDijkstra(g, src)
		got, err := SSSP(g, src, SSSPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.IsInf(want[i], 1) != math.IsInf(got[i], 1) {
				t.Fatalf("trial %d: reachability of %d differs", trial, i)
			}
			if !math.IsInf(want[i], 1) && math.Abs(want[i]-got[i]) > 1e-9 {
				t.Fatalf("trial %d: dist[%d]=%g want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestBetweennessCentralityDirectedSmoke(t *testing.T) {
	// Directed path 0→1→2→3: vertex 1 lies on paths 0→2, 0→3 (2 paths);
	// vertex 2 on 0→3, 1→3 (2 paths). Brandes BC counts per ordered pair.
	g, err := graphblas.NewMatrixFromCOO(4, 4,
		[]uint32{0, 1, 2}, []uint32{1, 2, 3}, []bool{true, true, true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := BetweennessCentrality(g, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if bc[0] != 0 || bc[3] != 0 {
		t.Fatalf("endpoints should be 0: %v", bc)
	}
	if bc[1] != 2 || bc[2] != 2 {
		t.Fatalf("middle vertices should be 2: %v", bc)
	}
}

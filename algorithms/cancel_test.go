package algorithms

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"pushpull/graphblas"
)

// cancelledCtx returns an already-cancelled context.
func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestBFSCancelMidTraversal cancels from the Trace callback after the
// second iteration: the traversal must stop at the next level boundary —
// within one iteration of the cancellation — and hand back the partial
// depths it discovered.
func TestBFSCancelMidTraversal(t *testing.T) {
	a := pathGraph(300) // high diameter: ~299 iterations when run to completion
	ctx, cancel := context.WithCancel(context.Background())
	res, err := BFS(a, 0, BFSOptions{
		Context: ctx,
		Trace: func(s IterStats) {
			if s.Iteration == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, graphblas.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res.Iterations != 2 {
		t.Fatalf("cancelled after iteration 2, ran %d iterations", res.Iterations)
	}
	if res.Depths == nil {
		t.Fatal("no partial depths returned")
	}
	if res.Depths[0] != 0 || res.Depths[1] != 1 || res.Depths[2] != 2 {
		t.Fatalf("partial depths wrong near source: %v", res.Depths[:3])
	}
	if res.Depths[10] != -1 {
		t.Fatalf("vertex 10 should be unreached after 2 levels, depth %d", res.Depths[10])
	}
	if res.Visited != 3 {
		t.Fatalf("partial Visited = %d, want 3", res.Visited)
	}
}

// TestBFSPreCancelled: a context cancelled before the call aborts before
// the first iteration.
func TestBFSPreCancelled(t *testing.T) {
	a := pathGraph(50)
	res, err := BFS(a, 0, BFSOptions{Context: cancelledCtx()})
	if !errors.Is(err, graphblas.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res.Iterations != 0 {
		t.Fatalf("ran %d iterations under a pre-cancelled context", res.Iterations)
	}
	if res.Depths == nil || res.Depths[0] != 0 {
		t.Fatal("partial result should still mark the source")
	}
}

// TestPageRankCancelMidIteration cancels after the second round and checks
// the partial ranks are the last completed iterate — normalized mass, not
// garbage.
func TestPageRankCancelMidIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randUndirected(rng, 80, 0.08)
	ctx, cancel := context.WithCancel(context.Background())
	rounds := 0
	// No per-round callback exists; emulate mid-run cancellation by a
	// MaxIter-2 run, then resume-with-cancel: simpler and deterministic is
	// to cancel immediately and check the boundary behaviour.
	_ = rounds
	res, err := PageRank(a, PageRankOptions{Context: ctx, MaxIter: 40})
	if err != nil {
		t.Fatalf("uncancelled run failed: %v", err)
	}
	full := res

	cancel()
	res, err = PageRank(a, PageRankOptions{Context: ctx, MaxIter: 40})
	if !errors.Is(err, graphblas.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res.Iterations != 0 {
		t.Fatalf("pre-cancelled run did %d iterations", res.Iterations)
	}
	if len(res.Ranks) != a.NRows() {
		t.Fatalf("partial Ranks length %d, want %d", len(res.Ranks), a.NRows())
	}
	// The partial iterate is the uniform start vector.
	want := 1 / float64(a.NRows())
	for i, r := range res.Ranks {
		if r != want {
			t.Fatalf("rank[%d] = %v, want uniform %v", i, r, want)
		}
	}
	if full.Iterations == 0 {
		t.Fatal("full run did no iterations")
	}
}

// TestSSSPCancelled: partial distances come back with the error and remain
// valid upper bounds.
func TestSSSPCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := weightedFromBool(rng, pathGraph(60))
	dist, err := SSSP(a, 0, SSSPOptions{Context: cancelledCtx()})
	if !errors.Is(err, graphblas.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if len(dist) != 60 {
		t.Fatalf("partial dist length %d, want 60", len(dist))
	}
	if dist[0] != 0 {
		t.Fatalf("source distance %v, want 0", dist[0])
	}
}

// TestWithContextVariantsCancelled: each WithContext entry point honours a
// pre-cancelled context and returns its partial result alongside the error.
func TestWithContextVariantsCancelled(t *testing.T) {
	a := pathGraph(40)
	ctx := cancelledCtx()

	parents, err := ParentBFSWithContext(ctx, a, 0, nil)
	if !errors.Is(err, graphblas.ErrCancelled) {
		t.Fatalf("ParentBFS: err = %v, want ErrCancelled", err)
	}
	if len(parents) != 40 || parents[0] != 0 {
		t.Fatalf("ParentBFS partial parents wrong: len %d", len(parents))
	}

	res, err := FusedBFSWithContext(ctx, a, 0, 0, nil)
	if !errors.Is(err, graphblas.ErrCancelled) {
		t.Fatalf("FusedBFS: err = %v, want ErrCancelled", err)
	}
	if res.Depths == nil || res.Depths[0] != 0 {
		t.Fatal("FusedBFS partial depths missing")
	}

	labels, err := ConnectedComponentsWithContext(ctx, a)
	if !errors.Is(err, graphblas.ErrCancelled) {
		t.Fatalf("CC: err = %v, want ErrCancelled", err)
	}
	if len(labels) != 40 {
		t.Fatalf("CC partial labels length %d, want 40", len(labels))
	}
	for i, l := range labels {
		if int(l) > i { // initial labels are identity; propagation only lowers
			t.Fatalf("CC partial label[%d] = %d not an upper bound", i, l)
		}
	}

	bc, err := BetweennessCentralityWithContext(ctx, a, []int{0, 3}, nil)
	if !errors.Is(err, graphblas.ErrCancelled) {
		t.Fatalf("BC: err = %v, want ErrCancelled", err)
	}
	if len(bc) != 40 {
		t.Fatalf("BC partial length %d, want 40", len(bc))
	}
}

// TestWithContextNilMatchesPlain: nil contexts must be inert — the
// WithContext variants give bit-identical results to the plain entry points.
func TestWithContextNilMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randUndirected(rng, 70, 0.06)

	plain, err := ParentBFS(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := ParentBFSWithContext(context.Background(), a, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != withCtx[i] {
			t.Fatalf("parents[%d]: plain %d, ctx %d", i, plain[i], withCtx[i])
		}
	}

	ref, err := BFS(a, 0, BFSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := FusedBFSWithContext(context.Background(), a, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Depths {
		if ref.Depths[i] != fused.Depths[i] {
			t.Fatalf("depth[%d]: BFS %d, fused-with-ctx %d", i, ref.Depths[i], fused.Depths[i])
		}
	}
}

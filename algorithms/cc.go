package algorithms

import (
	"fmt"

	"pushpull/graphblas"
	"pushpull/internal/sparse"
)

// ConnectedComponents labels the weakly connected components of a graph
// with frontier-driven label propagation over the (min, second) semiring —
// another instance of the paper's generality claim: the active set (labels
// that changed last round) is the frontier, propagation is a matvec, and
// the same push-pull machinery applies through MxV's automatic direction
// choice.
//
// Returns labels[i] = the smallest vertex id in i's component. For
// directed inputs, edges are treated as bidirectional (weak connectivity).
func ConnectedComponents(a *graphblas.Matrix[bool]) ([]uint32, error) {
	n := a.NRows()
	if a.NCols() != n {
		return nil, fmt.Errorf("algorithms: ConnectedComponents needs a square matrix, got %d×%d", a.NRows(), a.NCols())
	}
	// Weak connectivity: propagate along both edge orientations (the
	// matrix holds both views, so the reverse pass just multiplies by A
	// instead of Aᵀ). For symmetric graphs one pass suffices.
	ids := graphblas.NewMatrixFromCSR(idValuedCopy(a.CSR()))
	sr := graphblas.MinSecondUint32()

	labels := make([]uint32, n)
	active := graphblas.NewVector[uint32](n)
	for i := range labels {
		labels[i] = uint32(i)
		_ = active.SetElement(i, uint32(i))
	}
	cand := graphblas.NewVector[uint32](n)

	// One workspace serves both propagation passes for the whole run; the
	// reverse pass's accumulate target is the workspace scratch vector.
	ws := graphblas.AcquireWorkspace(n, n)
	defer ws.Release()
	fwdDesc := &graphblas.Descriptor{Transpose: true, Workspace: ws}
	revDesc := &graphblas.Descriptor{Workspace: ws}

	for round := 0; round < n && active.NVals() > 0; round++ {
		// cand = min over in-neighbours' labels (Aᵀ), then folded with the
		// out-neighbour pass (A) for asymmetric graphs.
		if _, err := graphblas.MxV(cand, (*graphblas.Vector[bool])(nil), nil, sr, ids, active, fwdDesc); err != nil {
			return nil, err
		}
		if !a.Symmetric() {
			if _, err := graphblas.MxV(cand, (*graphblas.Vector[bool])(nil), sr.Add.Op, sr, ids, active, revDesc); err != nil {
				return nil, err
			}
		}
		active.Clear()
		cand.Iterate(func(i int, l uint32) bool {
			if l < labels[i] {
				labels[i] = l
				_ = active.SetElement(i, l)
			}
			return true
		})
	}
	return labels, nil
}

// idValuedCopy re-types a Boolean pattern with uint32 values (unused by
// min-second's Mul, which forwards the vector operand).
func idValuedCopy(p *sparse.CSR[bool]) *sparse.CSR[uint32] {
	return &sparse.CSR[uint32]{
		Rows: p.Rows,
		Cols: p.Cols,
		Ptr:  p.Ptr,
		Ind:  p.Ind,
		Val:  make([]uint32, len(p.Ind)),
	}
}

package algorithms

import (
	"context"
	"fmt"

	"pushpull/graphblas"
	"pushpull/internal/sparse"
)

// ConnectedComponents labels the weakly connected components of a graph
// with frontier-driven label propagation over the (min, second) semiring —
// another instance of the paper's generality claim: the active set (labels
// that changed last round) is the frontier, propagation is a matvec, and
// the same push-pull machinery applies through MxV's automatic direction
// choice.
//
// Returns labels[i] = the smallest vertex id in i's component. For
// directed inputs, edges are treated as bidirectional (weak connectivity).
func ConnectedComponents(a *graphblas.Matrix[bool]) ([]uint32, error) {
	return ConnectedComponentsWithContext(nil, a)
}

// CCOptions configures ConnectedComponentsRun, the options form of the
// ConnectedComponents family.
type CCOptions struct {
	// Workspace, when non-nil, pins the caller's scratch arena for the run
	// instead of acquiring a pooled one (see BFSOptions.Workspace): not
	// released by the run, not shareable between concurrent operations.
	Workspace *graphblas.Workspace
	// Context makes the propagation abortable (see
	// ConnectedComponentsWithContext).
	Context context.Context
}

// ConnectedComponentsRun is ConnectedComponents with the full option set.
func ConnectedComponentsRun(a *graphblas.Matrix[bool], opt CCOptions) ([]uint32, error) {
	return connectedComponents(opt.Context, a, opt.Workspace)
}

// ConnectedComponentsWithContext is ConnectedComponents with cooperative
// cancellation: the pipeline checks ctx between kernel phases, the parallel
// kernels stop claiming chunks once it is done, and the propagation loop
// checks it at each round boundary. A cancelled run returns a wrapped
// graphblas.ErrCancelled along with the partial labels — upper bounds on
// the final labels, since propagation only ever lowers them. ctx == nil
// means never cancelled.
func ConnectedComponentsWithContext(ctx context.Context, a *graphblas.Matrix[bool]) ([]uint32, error) {
	return connectedComponents(ctx, a, nil)
}

func connectedComponents(ctx context.Context, a *graphblas.Matrix[bool], pinned *graphblas.Workspace) ([]uint32, error) {
	n := a.NRows()
	if a.NCols() != n {
		return nil, fmt.Errorf("algorithms: ConnectedComponents needs a square matrix, got %d×%d", a.NRows(), a.NCols())
	}
	// Weak connectivity: propagate along both edge orientations (the
	// matrix holds both views, so the reverse pass just multiplies by A
	// instead of Aᵀ). For symmetric graphs one pass suffices.
	ids := graphblas.NewMatrixFromCSR(idValuedCopy(a.CSR()))
	sr := graphblas.MinSecondUint32()

	// Labels live in a Dense vector (labels(i) = i initially, stamped by an
	// in-place indexed apply) so the improvement select probes the value
	// array and the fold is a format-preserving in-place min-merge.
	labels := graphblas.NewVector[uint32](n)
	labels.Fill(0)
	if err := graphblas.Into(labels).ApplyIndexed(func(i int, _ uint32) uint32 { return uint32(i) }, labels); err != nil {
		return nil, err
	}
	labVal, _ := labels.DenseView()
	active := labels.Dup()
	cand := graphblas.NewVector[uint32](n)

	// One workspace serves both propagation passes for the whole run; the
	// reverse pass's accumulate target is the workspace scratch vector.
	ws := pinned
	if ws == nil {
		ws = graphblas.AcquireWorkspace(n, n)
		defer ws.Release()
	}
	fwdDesc := &graphblas.Descriptor{Transpose: true, Workspace: ws, Context: ctx}
	revDesc := &graphblas.Descriptor{Workspace: ws, Context: ctx}
	improves := func(i int, l uint32) bool { return l < labVal[i] }
	minOp := sr.Add.Op
	// Partial result for aborted runs: every label is an upper bound on the
	// final component id (propagation only ever lowers labels).
	snapshot := func() []uint32 {
		out := make([]uint32, n)
		copy(out, labVal)
		return out
	}

	for round := 0; round < n && active.NVals() > 0; round++ {
		// Round boundary: a cancelled context aborts within one round,
		// returning the partial labels.
		if err := graphblas.CheckContext(ctx); err != nil {
			return snapshot(), err
		}
		// cand = min over in-neighbours' labels (Aᵀ), then folded with the
		// out-neighbour pass (A) for asymmetric graphs.
		if _, err := graphblas.Into(cand).With(fwdDesc).MxV(sr, ids, active); err != nil {
			return snapshot(), err
		}
		if !a.Symmetric() {
			if _, err := graphblas.Into(cand).Accum(minOp).With(revDesc).MxV(sr, ids, active); err != nil {
				return snapshot(), err
			}
		}
		// Relax: the next active set is the candidates that improve, and
		// the fold is a min-accumulating assign — labels min= active.
		if err := graphblas.Into(active).With(fwdDesc).Select(improves, cand); err != nil {
			return snapshot(), err
		}
		if err := graphblas.Into(labels).Accum(minOp).With(fwdDesc).AssignVector(active); err != nil {
			return snapshot(), err
		}
	}
	return snapshot(), nil
}

// idValuedCopy re-types a Boolean pattern with uint32 values (unused by
// min-second's Mul, which forwards the vector operand).
func idValuedCopy(p *sparse.CSR[bool]) *sparse.CSR[uint32] {
	return &sparse.CSR[uint32]{
		Rows: p.Rows,
		Cols: p.Cols,
		Ptr:  p.Ptr,
		Ind:  p.Ind,
		Val:  make([]uint32, len(p.Ind)),
	}
}

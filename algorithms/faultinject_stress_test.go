//go:build faultinject

// The fault-injection stress suite: runs only under `-tags faultinject`,
// where internal/faultinject compiles its real registry into the par chunk
// loop and the MxV kernel entry. Each test arms one fault — a panic on a
// dispatched chunk, a panic inside the matvec kernel, a cancellation mid
// iteration — and asserts the hardened substrate's contract: the fault
// surfaces as an error on the calling goroutine, nothing deadlocks or
// leaks, and the pools come back clean. Every potentially-wedging test runs
// under a watchdog that dumps all goroutine stacks instead of hanging CI.
package algorithms

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"pushpull/graphblas"
	"pushpull/internal/faultinject"
	"pushpull/internal/par"
)

// watchdog panics with a full goroutine dump if stop is not called within
// d — a deadlock becomes a diagnosable stack dump instead of a hung job.
func watchdog(t *testing.T, d time.Duration) (stop func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
		case <-time.After(d):
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			panic("watchdog: " + t.Name() + " wedged\n" + string(buf[:n]))
		}
	}()
	return func() { close(done) }
}

// sameDepths fails the test if two BFS results disagree anywhere.
func sameDepths(t *testing.T, got, want []int32) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("depth[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestInjectedChunkPanic arms a panic on the first chunk claimed by the
// par dispatch loop and runs a direction-optimized BFS large enough that
// its kernels go through chunked dispatch. The panic must come back as an
// error matching ErrKernelPanic — carrying the injected value and a stack —
// with no worker death, and the very next traversal must be correct.
func TestInjectedChunkPanic(t *testing.T) {
	defer watchdog(t, 60*time.Second)()
	prev := par.SetMaxWorkers(4)
	defer par.SetMaxWorkers(prev)

	// A 6000-vertex expander: mid-traversal levels are thousands wide while
	// thousands of vertices are still unvisited, so the pull kernel's
	// allow-list loop exceeds its chunk grain and takes the dispatch path
	// with 4 workers. (Smaller or hub-shaped graphs stay inline: frontier
	// and unvisited loops never outgrow one chunk.)
	rng := rand.New(rand.NewSource(61))
	a := randUndirected(rng, 6000, 0.002)
	ref, err := BFS(a, 0, BFSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base := par.ParkedWorkers()

	disarm := faultinject.Arm(faultinject.SiteParChunk, 1, func() {
		panic("injected chunk fault")
	})
	defer disarm()
	_, err = BFS(a, 0, BFSOptions{})
	if !errors.Is(err, graphblas.ErrKernelPanic) {
		t.Fatalf("err = %v, want ErrKernelPanic", err)
	}
	var pe *graphblas.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, not a *PanicError", err)
	}
	if pe.Value != "injected chunk fault" {
		t.Fatalf("PanicError.Value = %v, want the injected value", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError carries no stack")
	}
	disarm()

	if got := par.ParkedWorkers(); got != base {
		t.Fatalf("ParkedWorkers = %d after injected panic, was %d", got, base)
	}
	res, err := BFS(a, 0, BFSOptions{})
	if err != nil {
		t.Fatalf("BFS after fault: %v", err)
	}
	sameDepths(t, res.Depths, ref.Depths)
}

// TestInjectedMxVPanic arms the kernel-entry site instead: the panic fires
// inside mxvInto, under the operation's capture scope, and must surface the
// same way.
func TestInjectedMxVPanic(t *testing.T) {
	defer watchdog(t, 60*time.Second)()
	rng := rand.New(rand.NewSource(41))
	a := randUndirected(rng, 150, 0.05)
	ref, err := BFS(a, 0, BFSOptions{})
	if err != nil {
		t.Fatal(err)
	}

	disarm := faultinject.Arm(faultinject.SiteMxVKernel, 1, func() {
		panic("injected mxv fault")
	})
	defer disarm()
	_, err = BFS(a, 0, BFSOptions{})
	if !errors.Is(err, graphblas.ErrKernelPanic) {
		t.Fatalf("err = %v, want ErrKernelPanic", err)
	}
	var pe *graphblas.PanicError
	if !errors.As(err, &pe) || pe.Value != "injected mxv fault" {
		t.Fatalf("wrong panic payload: %v", err)
	}
	disarm()

	res, err := BFS(a, 0, BFSOptions{})
	if err != nil {
		t.Fatalf("BFS after fault: %v", err)
	}
	sameDepths(t, res.Depths, ref.Depths)
}

// TestCancelMidIteration injects a context cancellation from inside the
// third matvec of a high-diameter BFS: the traversal must abort within one
// iteration of the cancellation and hand back coherent partial depths.
func TestCancelMidIteration(t *testing.T) {
	defer watchdog(t, 60*time.Second)()
	n := 300
	a := pathGraph(n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	disarm := faultinject.Arm(faultinject.SiteMxVKernel, 3, cancel)
	defer disarm()

	res, err := BFS(a, 0, BFSOptions{Context: ctx})
	if !errors.Is(err, graphblas.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	// One masked matvec per level: the cancel lands in level 3, so the loop
	// stops during level 3 or at the head of level 4.
	if res.Iterations < 1 || res.Iterations > 4 {
		t.Fatalf("cancelled at the 3rd matvec but ran %d iterations", res.Iterations)
	}
	if res.Depths[0] != 0 {
		t.Fatalf("source depth %d, want 0", res.Depths[0])
	}
	if res.Depths[n-1] != -1 {
		t.Fatalf("far end reached (depth %d) despite cancellation", res.Depths[n-1])
	}
	if res.Visited >= n {
		t.Fatalf("Visited = %d of %d despite cancellation", res.Visited, n)
	}
}

// TestPageRankCancelInjected: same shape for the iterative solver — cancel
// from inside the second matvec, get ErrCancelled plus the last completed
// iterate (mass still normalized, not a torn vector).
func TestPageRankCancelInjected(t *testing.T) {
	defer watchdog(t, 60*time.Second)()
	rng := rand.New(rand.NewSource(43))
	a := randUndirected(rng, 120, 0.06)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	disarm := faultinject.Arm(faultinject.SiteMxVKernel, 2, cancel)
	defer disarm()

	res, err := PageRank(a, PageRankOptions{Context: ctx, MaxIter: 50})
	if !errors.Is(err, graphblas.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res.Iterations > 3 {
		t.Fatalf("cancelled at the 2nd matvec but ran %d iterations", res.Iterations)
	}
	if len(res.Ranks) != a.NRows() {
		t.Fatalf("partial Ranks length %d, want %d", len(res.Ranks), a.NRows())
	}
	sum := 0.0
	for i, r := range res.Ranks {
		if math.IsNaN(r) || r < 0 {
			t.Fatalf("partial rank[%d] = %v is torn", i, r)
		}
		sum += r
	}
	if sum < 0.5 || sum > 1.5 {
		t.Fatalf("partial iterate mass %v, want ≈1 (last completed iterate)", sum)
	}
}

// TestConcurrentAlgorithmsUnderFaults runs three algorithms concurrently on
// the shared worker substrate with one panic armed: at most the one that
// draws the fault errors, the others finish correctly, and afterwards the
// substrate is intact — stable worker count across further clean runs.
func TestConcurrentAlgorithmsUnderFaults(t *testing.T) {
	defer watchdog(t, 120*time.Second)()
	prev := par.SetMaxWorkers(4)
	defer par.SetMaxWorkers(prev)

	rng := rand.New(rand.NewSource(47))
	ab := randUndirected(rng, 400, 0.02)
	aw := weightedFromBool(rng, ab)
	refBFSRes, err := BFS(ab, 0, BFSOptions{})
	if err != nil {
		t.Fatal(err)
	}

	disarm := faultinject.Arm(faultinject.SiteMxVKernel, 5, func() {
		panic("concurrent storm")
	})
	defer disarm()

	var wg sync.WaitGroup
	errs := make([]error, 3)
	wg.Add(3)
	go func() { defer wg.Done(); _, errs[0] = BFS(ab, 0, BFSOptions{}) }()
	go func() { defer wg.Done(); _, errs[1] = ConnectedComponents(ab) }()
	go func() { defer wg.Done(); _, errs[2] = SSSP(aw, 0, SSSPOptions{}) }()
	wg.Wait()
	disarm()

	faulted := 0
	for i, e := range errs {
		if e == nil {
			continue
		}
		faulted++
		if !errors.Is(e, graphblas.ErrKernelPanic) {
			t.Fatalf("algorithm %d failed with %v, want ErrKernelPanic", i, e)
		}
	}
	if faulted > 1 {
		t.Fatalf("%d algorithms errored from one armed fault", faulted)
	}

	// The substrate must be fully serviceable: clean runs are correct and
	// the parked-worker count stays flat across them (no leak, no respawn
	// churn).
	w1 := par.ParkedWorkers()
	for run := 0; run < 3; run++ {
		res, err := BFS(ab, 0, BFSOptions{})
		if err != nil {
			t.Fatalf("clean run %d after storm: %v", run, err)
		}
		sameDepths(t, res.Depths, refBFSRes.Depths)
	}
	if w2 := par.ParkedWorkers(); w2 != w1 {
		t.Fatalf("ParkedWorkers drifted %d → %d across clean runs after the storm", w1, w2)
	}
}

// TestZeroAllocAfterFault: a kernel panic under a pinned workspace taints
// and drops that arena — but must not poison the pools. A fresh pinned
// workspace reaches the allocation-free steady state again.
func TestZeroAllocAfterFault(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; alloc guard is meaningless")
	}
	defer watchdog(t, 60*time.Second)()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	rng := rand.New(rand.NewSource(53))
	n := 300
	a := randUndirected(rng, n, 0.03)
	sr := graphblas.OrAndBool()
	u := graphblas.NewVector[bool](n)
	for i := 0; i < n; i += 7 {
		_ = u.SetElement(i, true)
	}
	w := graphblas.NewVector[bool](n)

	// Inject a kernel panic under a pinned workspace: the arena is tainted
	// and dropped on Release.
	ws := graphblas.AcquireWorkspace(n, n)
	desc := &graphblas.Descriptor{Workspace: ws}
	disarm := faultinject.Arm(faultinject.SiteMxVKernel, 1, func() {
		panic("alloc-path fault")
	})
	defer disarm()
	if _, err := graphblas.Into(w).With(desc).MxV(sr, a, u); !errors.Is(err, graphblas.ErrKernelPanic) {
		t.Fatalf("err = %v, want ErrKernelPanic", err)
	}
	disarm()
	ws.Release()

	// A fresh pinned workspace must warm up to zero allocations per matvec,
	// exactly as if no fault had ever happened.
	ws2 := graphblas.AcquireWorkspace(n, n)
	defer ws2.Release()
	desc2 := &graphblas.Descriptor{Workspace: ws2}
	run := func() {
		if _, err := graphblas.Into(w).With(desc2).MxV(sr, a, u); err != nil {
			t.Fatal(err)
		}
	}
	run()
	run()
	if avg := testing.AllocsPerRun(20, run); avg != 0 {
		t.Errorf("MxV after fault: %v allocs/op in steady state, want 0", avg)
	}
}

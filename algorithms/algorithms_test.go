package algorithms

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pushpull/graphblas"
	"pushpull/internal/core"
)

func TestSSSPMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(50)
		g := randUndirected(rng, n, 0.1)
		w := weightedFromBool(rng, g)
		src := rng.Intn(n)
		want := refDijkstra(w, src)
		for _, opt := range []SSSPOptions{{}, {PushOnly: true}, {SwitchPoint: 0.2}} {
			got, err := SSSP(w, src, opt)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.IsInf(want[i], 1) != math.IsInf(got[i], 1) {
					t.Fatalf("trial %d: reachability of %d differs", trial, i)
				}
				if !math.IsInf(want[i], 1) && math.Abs(want[i]-got[i]) > 1e-9 {
					t.Fatalf("trial %d opt %+v: dist[%d]=%g want %g", trial, opt, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSSSPTwoPhaseDirection(t *testing.T) {
	// On a graph with an exploding workfront SSSP should switch to pull
	// and stay there (2-phase, Section 5.6).
	g := starPlusClique(300, 15)
	w := weightedFromBool(rand.New(rand.NewSource(71)), g)
	var dirs []core.Direction
	_, err := SSSP(w, 0, SSSPOptions{SwitchPoint: 0.05, Trace: func(s IterStats) { dirs = append(dirs, s.Direction) }})
	if err != nil {
		t.Fatal(err)
	}
	sawPull := false
	for _, d := range dirs {
		if d == core.Pull {
			sawPull = true
		} else if sawPull {
			t.Fatalf("SSSP returned to push after pulling: %v", dirs)
		}
	}
	if !sawPull {
		t.Fatalf("SSSP never pulled: %v", dirs)
	}
}

func TestSSSPErrors(t *testing.T) {
	g := weightedFromBool(rand.New(rand.NewSource(72)), pathGraph(4))
	if _, err := SSSP(g, 9, SSSPOptions{}); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestPageRankUniformOnRegularGraph(t *testing.T) {
	// On a cycle (2-regular), PageRank is uniform.
	n := 20
	edges := make([][2]int, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int{i, (i + 1) % n}
	}
	g := undirectedFromEdges(n, edges)
	res, err := PageRank(g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Ranks {
		if math.Abs(r-1/float64(n)) > 1e-6 {
			t.Fatalf("rank[%d]=%g want %g", i, r, 1/float64(n))
		}
	}
}

func TestPageRankSumsToOneAndRanksHubs(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := starPlusClique(30, 5)
	res, err := PageRank(g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range res.Ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %g", sum)
	}
	// The hub (vertex 0) must outrank every leaf.
	for i := 1; i <= 30; i++ {
		if res.Ranks[i] >= res.Ranks[0] {
			t.Fatalf("leaf %d outranks hub: %g >= %g", i, res.Ranks[i], res.Ranks[0])
		}
	}
	_ = rng
}

func TestAdaptivePageRankMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(60)
		g := randUndirected(rng, n, 0.1)
		exact, err := PageRank(g, PageRankOptions{Tol: 1e-10, MaxIter: 200})
		if err != nil {
			t.Fatal(err)
		}
		adaptive, err := AdaptivePageRank(g, PageRankOptions{Tol: 1e-10, MaxIter: 200, AdaptiveTol: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		for i := range exact.Ranks {
			if math.Abs(exact.Ranks[i]-adaptive.Ranks[i]) > 1e-4 {
				t.Fatalf("trial %d: adaptive rank[%d]=%g exact %g", trial, i, adaptive.Ranks[i], exact.Ranks[i])
			}
		}
		if adaptive.MaskedMatvecRows > exact.MaskedMatvecRows {
			t.Fatalf("trial %d: adaptive did more row work (%d) than exact (%d)",
				trial, adaptive.MaskedMatvecRows, exact.MaskedMatvecRows)
		}
	}
}

func TestPageRankDanglingMass(t *testing.T) {
	// Directed graph with a sink: 0→1, 1→2, 2 is dangling. Ranks must
	// still sum to 1.
	r := []uint32{0, 1}
	c := []uint32{1, 2}
	v := []bool{true, true}
	g, err := graphblas.NewMatrixFromCOO(3, 3, r, c, v, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PageRank(g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range res.Ranks {
		sum += x
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("dangling ranks sum to %g", sum)
	}
	if !(res.Ranks[2] > res.Ranks[1] && res.Ranks[1] > res.Ranks[0]) {
		t.Fatalf("chain ranks not increasing: %v", res.Ranks)
	}
}

func TestTriangleCountKnownGraphs(t *testing.T) {
	cases := []struct {
		name  string
		g     *graphblas.Matrix[bool]
		count int64
	}{
		{"triangle", undirectedFromEdges(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}), 1},
		{"4-clique", undirectedFromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}), 4},
		{"path", pathGraph(10), 0},
		{"two-triangles", undirectedFromEdges(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}), 2},
	}
	for _, tc := range cases {
		got, err := TriangleCount(tc.g)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.count {
			t.Fatalf("%s: count=%d want %d", tc.name, got, tc.count)
		}
	}
}

func TestTriangleCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		g := randUndirected(rng, n, 0.2)
		got, err := TriangleCount(g)
		if err != nil {
			return false
		}
		return got == refTriangles(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMISIsIndependentAndMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(60)
		g := randUndirected(rng, n, 0.1)
		inSet, err := MIS(g, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		// Independence: no two set members adjacent.
		for i := 0; i < n; i++ {
			if !inSet[i] {
				continue
			}
			ind, _ := g.RowView(i)
			for _, j := range ind {
				if inSet[j] {
					t.Fatalf("trial %d: adjacent members %d,%d", trial, i, j)
				}
			}
		}
		// Maximality: every non-member has a member neighbour.
		for i := 0; i < n; i++ {
			if inSet[i] {
				continue
			}
			ind, _ := g.RowView(i)
			ok := false
			for _, j := range ind {
				if inSet[j] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("trial %d: vertex %d could join the set", trial, i)
			}
		}
	}
}

func TestMISDeterministicForSeed(t *testing.T) {
	g := randUndirected(rand.New(rand.NewSource(76)), 40, 0.15)
	a, _ := MIS(g, 7)
	b, _ := MIS(g, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MIS not reproducible for fixed seed")
		}
	}
}

func TestBetweennessCentralityMatchesBrandes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(30)
		g := randUndirected(rng, n, 0.15)
		var sources []int
		for s := 0; s < n; s++ {
			sources = append(sources, s)
		}
		got, err := BetweennessCentrality(g, sources)
		if err != nil {
			t.Fatal(err)
		}
		want := refBC(g, sources)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				t.Fatalf("trial %d: bc[%d]=%g want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestBetweennessCentralityPathCenter(t *testing.T) {
	// On a path, the middle vertex lies on the most shortest paths.
	n := 9
	g := pathGraph(n)
	var sources []int
	for s := 0; s < n; s++ {
		sources = append(sources, s)
	}
	bc, err := BetweennessCentrality(g, sources)
	if err != nil {
		t.Fatal(err)
	}
	mid := n / 2
	for i := 0; i < n; i++ {
		if i != mid && bc[i] > bc[mid] {
			t.Fatalf("bc[%d]=%g exceeds centre bc[%d]=%g", i, bc[i], mid, bc[mid])
		}
	}
	if bc[0] != 0 || bc[n-1] != 0 {
		t.Fatal("path endpoints must have zero BC")
	}
}

func TestBCErrors(t *testing.T) {
	g := pathGraph(4)
	if _, err := BetweennessCentrality(g, []int{9}); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := MIS(g, 0); err != nil {
		t.Fatal(err)
	}
	rect, err := graphblas.NewMatrixFromCOO(2, 3, []uint32{0}, []uint32{1}, []bool{true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TriangleCount(rect); err == nil {
		t.Fatal("rectangular TC accepted")
	}
	if _, err := BetweennessCentrality(rect, []int{0}); err == nil {
		t.Fatal("rectangular BC accepted")
	}
	if _, err := MIS(rect, 0); err == nil {
		t.Fatal("rectangular MIS accepted")
	}
	if _, err := ParentBFS(rect, 0); err == nil {
		t.Fatal("rectangular ParentBFS accepted")
	}
	if _, err := ParentBFS(g, -2); err == nil {
		t.Fatal("bad ParentBFS source accepted")
	}
	rectF, err := graphblas.NewMatrixFromCOO(2, 3, []uint32{0}, []uint32{1}, []float64{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SSSP(rectF, 0, SSSPOptions{}); err == nil {
		t.Fatal("rectangular SSSP accepted")
	}
	if _, err := PageRank(rect, PageRankOptions{}); err == nil {
		t.Fatal("rectangular PageRank accepted")
	}
}

//go:build !race

package algorithms

// raceEnabled: see race_on_test.go.
const raceEnabled = false

package algorithms

import (
	"fmt"

	"pushpull/graphblas"
	"pushpull/internal/sparse"
)

// BetweennessCentrality computes Brandes-style betweenness centrality
// accumulated over the given source vertices (batched BC, the paper's
// Section 5.6 masking example from the GraphBLAS API paper). Pass all
// vertices for exact BC or a sample for approximate BC.
//
// The forward sweep is a BFS over the plus-times semiring — the frontier
// carries shortest-path *counts* and the ¬visited mask supplies output
// sparsity exactly as in Algorithm 1. The backward sweep pushes dependency
// contributions level by level, masked to the preceding level's pattern,
// so every matvec in both sweeps benefits from masking.
func BetweennessCentrality(a *graphblas.Matrix[bool], sources []int) ([]float64, error) {
	n := a.NRows()
	if a.NCols() != n {
		return nil, fmt.Errorf("algorithms: BC needs a square matrix, got %d×%d", a.NRows(), a.NCols())
	}
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("algorithms: BC source %d out of range [0,%d)", s, n)
		}
	}
	counts := graphblas.NewMatrixFromCSR(sparse.Scale(a.CSR(), func(bool) float64 { return 1 }))
	sr := graphblas.PlusTimesFloat64()
	bc := make([]float64, n)

	// One workspace serves every matvec of every source's two sweeps.
	ws := graphblas.AcquireWorkspace(n, n)
	defer ws.Release()
	fwdDesc := &graphblas.Descriptor{Transpose: true, StructuralComplement: true, Workspace: ws}
	backDesc := &graphblas.Descriptor{Workspace: ws}

	for _, s := range sources {
		// Forward: level frontiers carrying σ (shortest-path counts).
		var levels []*graphblas.Vector[float64]
		sigma := make([]float64, n)
		visited := graphblas.NewVector[bool](n)
		visited.ToBitmap()
		_ = visited.SetElement(s, true)
		sigma[s] = 1

		f := graphblas.NewVector[float64](n)
		_ = f.SetElement(s, 1)
		for f.NVals() > 0 {
			next := graphblas.NewVector[float64](n)
			if _, err := graphblas.MxV(next, visited, nil, sr, counts, f, fwdDesc); err != nil {
				return nil, err
			}
			if next.NVals() == 0 {
				break
			}
			next.Iterate(func(i int, x float64) bool {
				sigma[i] = x
				return true
			})
			if err := graphblas.AssignScalar(visited, next, true, nil); err != nil {
				return nil, err
			}
			levels = append(levels, next)
			f = next
		}

		// Backward: dependency accumulation δ(u) = σ(u)·Σ_{v∈succ(u)} (1+δ(v))/σ(v).
		delta := make([]float64, n)
		for t := len(levels) - 1; t >= 0; t-- {
			// c(v) = (1+δ(v))/σ(v) over level t's pattern.
			c := graphblas.NewVector[float64](n)
			levels[t].Iterate(func(i int, _ float64) bool {
				_ = c.SetElement(i, (1+delta[i])/sigma[i])
				return true
			})
			// Contributions flow backwards along edges: u→v contributes
			// c(v) to u, i.e. contrib = A·c, restricted to the previous
			// level (or the source at t == 0).
			prevMask := graphblas.NewVector[bool](n)
			if t == 0 {
				_ = prevMask.SetElement(s, true)
			} else {
				levels[t-1].Iterate(func(i int, _ float64) bool {
					_ = prevMask.SetElement(i, true)
					return true
				})
			}
			contrib := graphblas.NewVector[float64](n)
			if _, err := graphblas.MxV(contrib, prevMask, nil, sr, counts, c, backDesc); err != nil {
				return nil, err
			}
			contrib.Iterate(func(i int, x float64) bool {
				delta[i] += sigma[i] * x
				return true
			})
		}
		for i := 0; i < n; i++ {
			if i != s {
				bc[i] += delta[i]
			}
		}
	}
	return bc, nil
}

package algorithms

import (
	"context"
	"fmt"

	"pushpull/graphblas"
	"pushpull/internal/core"
	"pushpull/internal/sparse"
)

// BetweennessCentrality computes Brandes-style betweenness centrality
// accumulated over the given source vertices (batched BC, the paper's
// Section 5.6 masking example from the GraphBLAS API paper). Pass all
// vertices for exact BC or a sample for approximate BC.
//
// The forward sweep is a BFS over the plus-times semiring — the frontier
// carries shortest-path *counts* and the ¬visited mask supplies output
// sparsity exactly as in Algorithm 1. The backward sweep pushes dependency
// contributions level by level, masked to the preceding level's pattern,
// so every matvec in both sweeps benefits from masking.
func BetweennessCentrality(a *graphblas.Matrix[bool], sources []int) ([]float64, error) {
	return BetweennessCentralityWithContext(nil, a, sources, nil)
}

// BetweennessCentralityTuned is BetweennessCentrality under a calibrated
// cost model: both sweeps' matvecs run with Direction == Auto, so the
// model and a shared feedback corrector ride the descriptors into the MxV
// pipeline's planner. model == nil keeps the unit model.
func BetweennessCentralityTuned(a *graphblas.Matrix[bool], sources []int, model *core.CostModel) ([]float64, error) {
	return BetweennessCentralityWithContext(nil, a, sources, model)
}

// BetweennessCentralityWithContext is BetweennessCentralityTuned with
// cooperative cancellation: the pipeline checks ctx between kernel phases,
// the parallel kernels stop claiming chunks once it is done, and the
// per-source loop checks it at each sweep-level boundary. A cancelled run
// returns a wrapped graphblas.ErrCancelled along with the centrality
// accumulated over the sources completed so far (a partial batch — exact
// for those sources, missing the rest). ctx == nil means never cancelled.
func BetweennessCentralityWithContext(ctx context.Context, a *graphblas.Matrix[bool], sources []int, model *core.CostModel) ([]float64, error) {
	n := a.NRows()
	if a.NCols() != n {
		return nil, fmt.Errorf("algorithms: BC needs a square matrix, got %d×%d", a.NRows(), a.NCols())
	}
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("algorithms: BC source %d out of range [0,%d)", s, n)
		}
	}
	counts := graphblas.NewMatrixFromCSR(sparse.Scale(a.CSR(), func(bool) float64 { return 1 }))
	sr := graphblas.PlusTimesFloat64()
	bc := make([]float64, n)

	// One workspace serves every matvec of every source's two sweeps.
	ws := graphblas.AcquireWorkspace(n, n)
	defer ws.Release()
	fwdDesc := &graphblas.Descriptor{Transpose: true, StructuralComplement: true, Workspace: ws, Context: ctx}
	backDesc := &graphblas.Descriptor{Workspace: ws, Context: ctx}
	if model != nil {
		corr := &core.Corrector{}
		fwdDesc.CostModel, fwdDesc.Corrector = model, corr
		backDesc.CostModel, backDesc.Corrector = model, corr
	}

	// The c and contrib vectors are rebuilt each backward level, so one
	// pair serves every source.
	c := graphblas.NewVector[float64](n)
	contrib := graphblas.NewVector[float64](n)

	for _, s := range sources {
		// Forward: level frontiers carrying σ (shortest-path counts).
		var levels []*graphblas.Vector[float64]
		sigma := make([]float64, n)
		visited := graphblas.NewVector[bool](n)
		visited.ToBitmap()
		_ = visited.SetElement(s, true)
		sigma[s] = 1

		f := graphblas.NewVector[float64](n)
		_ = f.SetElement(s, 1)
		for f.NVals() > 0 {
			// Sweep-level boundary: a cancelled context aborts with the
			// centrality accumulated over the sources completed so far.
			if err := graphblas.CheckContext(ctx); err != nil {
				return bc, err
			}
			next := graphblas.NewVector[float64](n)
			if _, err := graphblas.Into(next).Mask(visited).With(fwdDesc).MxV(sr, counts, f); err != nil {
				return bc, err
			}
			if next.NVals() == 0 {
				break
			}
			next.Iterate(func(i int, x float64) bool {
				sigma[i] = x
				return true
			})
			// visited⟨next⟩ = true: the float64 frontier masks the Boolean
			// visited vector directly (masks are structural).
			if err := graphblas.Into(visited).Mask(next).With(backDesc).AssignScalar(true); err != nil {
				return bc, err
			}
			levels = append(levels, next)
			f = next
		}

		// Backward: dependency accumulation δ(u) = σ(u)·Σ_{v∈succ(u)} (1+δ(v))/σ(v).
		delta := make([]float64, n)
		weight := func(i int, _ float64) float64 { return (1 + delta[i]) / sigma[i] }
		srcMask := graphblas.NewVector[bool](n)
		_ = srcMask.SetElement(s, true)
		for t := len(levels) - 1; t >= 0; t-- {
			// Sweep-level boundary, as in the forward sweep.
			if err := graphblas.CheckContext(ctx); err != nil {
				return bc, err
			}
			// c(v) = (1+δ(v))/σ(v) over level t's pattern — an indexed
			// apply instead of a hand-rolled rebuild loop.
			if err := graphblas.Into(c).With(backDesc).ApplyIndexed(weight, levels[t]); err != nil {
				return bc, err
			}
			// Contributions flow backwards along edges: u→v contributes
			// c(v) to u, i.e. contrib = A·c, restricted to the previous
			// level (or the source at t == 0) — the level vector itself is
			// the mask, no Boolean copy.
			var prevMask graphblas.MaskVector = srcMask
			if t > 0 {
				prevMask = levels[t-1]
			}
			if _, err := graphblas.Into(contrib).Mask(prevMask).With(backDesc).MxV(sr, counts, c); err != nil {
				return bc, err
			}
			contrib.Iterate(func(i int, x float64) bool {
				delta[i] += sigma[i] * x
				return true
			})
		}
		for i := 0; i < n; i++ {
			if i != s {
				bc[i] += delta[i]
			}
		}
	}
	return bc, nil
}

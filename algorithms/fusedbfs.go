package algorithms

import (
	"context"
	"fmt"
	"time"

	"pushpull/graphblas"
	"pushpull/internal/core"
)

// kernelFault converts a panic unwinding out of a directly driven core
// kernel into a graphblas.ErrKernelPanic-wrapped error (stack preserved),
// tainting the kernel workspace so its arenas are dropped instead of
// pooled. FusedBFS bypasses the graphblas pipeline — it calls the fused
// core kernels itself — so it needs this algorithm-level counterpart of the
// pipeline's own panic isolation. Must be invoked directly by defer.
func kernelFault(ws *core.Workspace, errp *error) {
	if r := recover(); r != nil {
		ws.Taint()
		*errp = graphblas.NewPanicError(r)
	}
}

// FusedBFS is the kernel-fusion extension of Section 7.3: the same
// direction-optimized traversal as BFS with default options, but each
// level's matvec, mask application, depth assign and visited update run as
// one fused pass (no intermediate GraphBLAS vector is materialized). The
// paper notes this optimization "may be a good fit for a non-blocking
// implementation of GraphBLAS, which would construct a task graph and fuse
// tasks"; this function stands in for that execution mode, and the
// ablation benchmark quantifies what fusion is worth on top of Algorithm 1.
//
// Results are identical to BFS; only the execution schedule differs.
//
// switchPoint == 0 plans directions with the edge-based cost model (the
// same rule BFS defaults to); a positive value selects the legacy nnz/n
// ratio rule at that crossover.
func FusedBFS(a *graphblas.Matrix[bool], source int, switchPoint float64) (BFSResult, error) {
	return FusedBFSWithContext(nil, a, source, switchPoint, nil)
}

// FusedBFSTuned is FusedBFS under a calibrated cost model: the planner
// prices each level in nanoseconds, every fused step is timed, and the
// measured/predicted ratio feeds the corrector that scales the next
// level's estimates. model == nil keeps the unit model (plain FusedBFS).
func FusedBFSTuned(a *graphblas.Matrix[bool], source int, switchPoint float64, model *core.CostModel) (BFSResult, error) {
	return FusedBFSWithContext(nil, a, source, switchPoint, model)
}

// FusedBFSWithContext is FusedBFSTuned with fault isolation and cooperative
// cancellation. A cancelled ctx aborts the traversal at the next level
// boundary with a wrapped graphblas.ErrCancelled; a panic inside a fused
// kernel surfaces as a wrapped graphblas.ErrKernelPanic with the kernel
// workspace tainted (dropped, not pooled). Either way the partial result —
// depths discovered so far, per-level stats — comes back with the error.
// ctx == nil means never cancelled.
func FusedBFSWithContext(ctx context.Context, a *graphblas.Matrix[bool], source int, switchPoint float64, model *core.CostModel) (res BFSResult, err error) {
	n := a.NRows()
	if a.NCols() != n {
		return BFSResult{}, fmt.Errorf("algorithms: FusedBFS needs a square matrix, got %d×%d", a.NRows(), a.NCols())
	}
	if source < 0 || source >= n {
		return BFSResult{}, fmt.Errorf("algorithms: FusedBFS source %d out of range [0,%d)", source, n)
	}
	// CSR(Aᵀ) for pull, CSC(Aᵀ)=CSR(A) for push.
	pullG := a.CSC()
	pushG := a.CSR()

	depths := make([]int32, n)
	for i := range depths {
		depths[i] = -1
	}
	depths[source] = 0
	// Word-packed visited set: 1/8 the bitmap's footprint, which is most of
	// what the fused pull probe touches once the frontier is wide.
	visited := make([]uint64, core.BitsetWords(n))
	core.BitsetSet(visited, source)
	unvisited := make([]uint32, 0, n-1)
	for v := 0; v < n; v++ {
		if v != source {
			unvisited = append(unvisited, uint32(v))
		}
	}
	frontier := []uint32{uint32(source)}

	// Pin one kernel workspace for the whole traversal: the fused steps'
	// per-worker lists and ping-pong frontier buffers live in it, so every
	// level after the first allocates nothing.
	ws := core.AcquireWorkspace(pullG.Rows, pullG.Cols)
	defer ws.Release()
	// Panic isolation for the directly driven kernels. Registered after the
	// Release defer so it runs first: taint, then Release drops the arena.
	defer kernelFault(ws, &err)

	var state core.PlanState
	var corr core.Corrector
	avgDeg := core.AvgRowDegree(pullG.NNZ(), pullG.Rows)
	dir := core.Push
	// Depths shares its backing array with the per-level stamping below, so
	// error returns mid-traversal carry the partial depths discovered so far.
	res = BFSResult{Visited: 1, EdgesTraversed: int64(pushG.RowLen(source)), Depths: depths}
	for depth := int32(1); len(frontier) > 0; depth++ {
		// Level boundary: a cancelled context aborts within one iteration.
		if err = graphblas.CheckContext(ctx); err != nil {
			return res, err
		}
		res.Iterations++
		pushEdges := 0
		for _, v := range frontier {
			pushEdges += pushG.RowLen(int(v))
		}
		in := core.PlanInput{
			NNZ:           len(frontier),
			N:             n,
			OutRows:       n,
			PushEdges:     float64(pushEdges),
			AvgDeg:        avgDeg,
			MaskAllowFrac: float64(n-res.Visited) / float64(n),
			SwitchPoint:   switchPoint,
			// The fused pull probes the word-packed visited set.
			InKind: core.KindBitset,
		}
		if model != nil {
			in.Model = *model
			in.Correct = &corr
		}
		plan := core.DecideDirection(in, &state)
		dir = plan.Dir
		stepStart := time.Now()
		if dir == core.Pull {
			frontier, unvisited = core.FusedPullStep(pullG, visited, unvisited, depths, depth, ws)
		} else {
			frontier = core.FusedPushStep(pushG, visited, frontier, depths, depth, ws)
			if len(frontier) > 0 && len(frontier) > n/256 {
				w := 0
				for _, v := range unvisited {
					if !core.BitsetGet(visited, int(v)) {
						unvisited[w] = v
						w++
					}
				}
				unvisited = unvisited[:w]
			}
		}
		// Feed the measured step time back (the pull step compacts the
		// unvisited list internally, so push's compaction above is part of
		// the comparable work).
		corr.Observe(dir, plan.PredictedNs, float64(time.Since(stepStart).Nanoseconds()))
		for _, v := range frontier {
			res.EdgesTraversed += int64(pushG.RowLen(int(v)))
		}
		res.Visited += len(frontier)
	}
	res.Depths = depths
	return res, nil
}

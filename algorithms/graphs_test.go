package algorithms

import (
	"math/rand"

	"pushpull/graphblas"
)

// Test-graph builders shared by the algorithm tests.

// undirectedFromEdges builds a symmetric Boolean matrix from an edge list.
func undirectedFromEdges(n int, edges [][2]int) *graphblas.Matrix[bool] {
	var r, c []uint32
	var v []bool
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		r = append(r, uint32(e[0]), uint32(e[1]))
		c = append(c, uint32(e[1]), uint32(e[0]))
		v = append(v, true, true)
	}
	m, err := graphblas.NewMatrixFromCOO(n, n, r, c, v, func(a, b bool) bool { return a })
	if err != nil {
		panic(err)
	}
	return m
}

// randUndirected builds a G(n, p) undirected simple graph.
func randUndirected(rng *rand.Rand, n int, p float64) *graphblas.Matrix[bool] {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return undirectedFromEdges(n, edges)
}

// weightedFromBool re-types a Boolean graph with random positive weights.
func weightedFromBool(rng *rand.Rand, a *graphblas.Matrix[bool]) *graphblas.Matrix[float64] {
	n := a.NRows()
	var r, c []uint32
	var v []float64
	for i := 0; i < n; i++ {
		ind, _ := a.RowView(i)
		for _, j := range ind {
			// Symmetric weights: derive deterministically from the edge.
			lo, hi := i, int(j)
			if lo > hi {
				lo, hi = hi, lo
			}
			w := 0.5 + float64((lo*31+hi*17)%100)/50
			r = append(r, uint32(i))
			c = append(c, j)
			v = append(v, w)
		}
	}
	_ = rng
	m, err := graphblas.NewMatrixFromCOO(n, n, r, c, v, nil)
	if err != nil {
		panic(err)
	}
	return m
}

// pathGraph builds a path 0-1-2-...-n-1 (high diameter: forces many BFS
// iterations and the pull→push return).
func pathGraph(n int) *graphblas.Matrix[bool] {
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return undirectedFromEdges(n, edges)
}

// starPlusClique: a hub with many leaves plus an attached clique — the
// frontier explodes at iteration 1 (push→pull) and collapses after
// (pull→push), exercising all three DOBFS phases.
func starPlusClique(leaves, clique int) *graphblas.Matrix[bool] {
	n := 1 + leaves + clique
	var edges [][2]int
	for i := 1; i <= leaves; i++ {
		edges = append(edges, [2]int{0, i})
	}
	base := 1 + leaves
	for i := 0; i < clique; i++ {
		for j := i + 1; j < clique; j++ {
			edges = append(edges, [2]int{base + i, base + j})
		}
	}
	edges = append(edges, [2]int{0, base})
	return undirectedFromEdges(n, edges)
}

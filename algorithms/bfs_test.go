package algorithms

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pushpull/graphblas"
	"pushpull/internal/core"
)

// optionMatrix enumerates meaningful optimization combinations: the full
// stack, the Table 2 cumulative stack, and each optimization disabled
// alone.
func optionMatrix() map[string]BFSOptions {
	return map[string]BFSOptions{
		"all-on":            {},
		"all-off":           AllOff(),
		"push-only":         {DisableDirectionOpt: true},
		"no-masking":        {DisableMasking: true},
		"no-early-exit":     {DisableEarlyExit: true},
		"no-operand-reuse":  {DisableOperandReuse: true},
		"no-structure-only": {DisableStructureOnly: true},
		"no-mask-amortize":  {DisableMaskAmortize: true},
		"heap-merge":        {Merge: graphblas.MergeHeap},
		"spa-merge":         {Merge: graphblas.MergeSPA},
	}
}

func checkDepths(t *testing.T, ctx string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d depths, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: depth[%d]=%d want %d", ctx, i, got[i], want[i])
		}
	}
}

func TestBFSAllOptionCombosMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	graphs := map[string]*graphblas.Matrix[bool]{
		"random":     randUndirected(rng, 80, 0.06),
		"path":       pathGraph(50),
		"star":       starPlusClique(40, 10),
		"disconnect": undirectedFromEdges(10, [][2]int{{0, 1}, {1, 2}, {4, 5}}),
	}
	for gname, g := range graphs {
		for src := 0; src < g.NRows(); src += 7 {
			want := refBFS(g, src)
			for oname, opt := range optionMatrix() {
				res, err := BFS(g, src, opt)
				if err != nil {
					t.Fatalf("%s/%s src=%d: %v", gname, oname, src, err)
				}
				checkDepths(t, gname+"/"+oname, res.Depths, want)
			}
		}
	}
}

func TestBFSVisitedAndEdgesTraversed(t *testing.T) {
	g := undirectedFromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}})
	res, err := BFS(g, 0, BFSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 4 {
		t.Fatalf("Visited=%d want 4", res.Visited)
	}
	// Component {0,1,2,3} has degrees 1,2,2,1 → 6 directed edges.
	if res.EdgesTraversed != 6 {
		t.Fatalf("EdgesTraversed=%d want 6", res.EdgesTraversed)
	}
	if res.Iterations < 3 {
		t.Fatalf("Iterations=%d want >=3", res.Iterations)
	}
	if res.MTEPS(0) != 0 {
		t.Fatal("MTEPS of zero duration should be 0")
	}
}

func TestBFSDirectionSwitching(t *testing.T) {
	// Star-plus-clique with a low switch-point: iteration 1 pushes (tiny
	// frontier), iteration 2 sees the exploded frontier and pulls, and the
	// shrunken tail returns to push — the three phases of Section 5.1.
	g := starPlusClique(400, 20)
	var dirs []core.Direction
	opt := BFSOptions{
		SwitchPoint: 0.05,
		Trace: func(s IterStats) {
			dirs = append(dirs, s.Direction)
		},
	}
	res, err := BFS(g, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != g.NRows() {
		t.Fatalf("Visited=%d want %d", res.Visited, g.NRows())
	}
	if len(dirs) < 2 {
		t.Fatalf("expected >=2 iterations, got %v", dirs)
	}
	if dirs[0] != core.Push {
		t.Fatalf("iteration 1 should push: %v", dirs)
	}
	sawPull := false
	for _, d := range dirs {
		if d == core.Pull {
			sawPull = true
		}
	}
	if !sawPull {
		t.Fatalf("star explosion should trigger pull: %v", dirs)
	}
	// Push-only never pulls.
	dirs = dirs[:0]
	_, err = BFS(g, 0, BFSOptions{DisableDirectionOpt: true, Trace: func(s IterStats) { dirs = append(dirs, s.Direction) }})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if d != core.Push {
			t.Fatalf("push-only BFS pulled: %v", dirs)
		}
	}
}

func TestBFSErrors(t *testing.T) {
	g := pathGraph(5)
	if _, err := BFS(g, -1, BFSOptions{}); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := BFS(g, 5, BFSOptions{}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	rect, err := graphblas.NewMatrixFromCOO(2, 3, []uint32{0}, []uint32{2}, []bool{true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BFS(rect, 0, BFSOptions{}); err == nil {
		t.Fatal("rectangular matrix accepted")
	}
}

func TestBFSSingleVertexAndIsolatedSource(t *testing.T) {
	g := undirectedFromEdges(3, [][2]int{{1, 2}})
	res, err := BFS(g, 0, BFSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 1 || res.Depths[0] != 0 || res.Depths[1] != -1 {
		t.Fatalf("isolated source: %+v", res)
	}
}

func TestBFSPropertyRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		g := randUndirected(rng, n, 0.05+rng.Float64()*0.15)
		src := rng.Intn(n)
		want := refBFS(g, src)
		res, err := BFS(g, src, BFSOptions{SwitchPoint: 0.001 + rng.Float64()*0.3})
		if err != nil {
			return false
		}
		for i := range want {
			if res.Depths[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestParentBFSValidTree(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(50)
		g := randUndirected(rng, n, 0.1)
		src := rng.Intn(n)
		parents, err := ParentBFS(g, src)
		if err != nil {
			t.Fatal(err)
		}
		want := refBFS(g, src)
		if parents[src] != int64(src) {
			t.Fatalf("trial %d: source parent = %d", trial, parents[src])
		}
		for v := 0; v < n; v++ {
			if want[v] < 0 {
				if parents[v] != -1 {
					t.Fatalf("trial %d: unreachable %d has parent %d", trial, v, parents[v])
				}
				continue
			}
			if parents[v] == -1 {
				t.Fatalf("trial %d: reachable %d has no parent", trial, v)
			}
			if v == src {
				continue
			}
			p := int(parents[v])
			// Parent must be exactly one level shallower and adjacent.
			if want[p] != want[v]-1 {
				t.Fatalf("trial %d: parent %d of %d at depth %d, child at %d", trial, p, v, want[p], want[v])
			}
			if _, err := g.ExtractElement(p, v); err != nil {
				t.Fatalf("trial %d: parent %d not adjacent to %d", trial, p, v)
			}
		}
	}
}

package algorithms

import (
	"context"
	"fmt"
	"math"
	"time"

	"pushpull/graphblas"
	"pushpull/internal/core"
)

// SSSPOptions configures the Bellman-Ford traversal.
type SSSPOptions struct {
	// PushOnly pins the relaxation to the column-based kernel, disabling
	// the 2-phase direction optimization of Section 5.6.
	PushOnly bool
	// SwitchPoint, when positive, selects the legacy active-fraction ratio
	// rule at that crossover (DefaultSSSPSwitchPoint is the historical
	// value). Zero selects the edge-based cost model, which prices SSSP's
	// *unmasked* pull phase at the full M·d̄ — no a-priori output sparsity
	// exists for relaxation — so the break-even naturally sits near
	// nnz(f)·d̄·log nnz(f) ≈ M·d̄ rather than the 1% that masked BFS pull
	// enjoys.
	SwitchPoint float64
	// Model, when non-nil, prices the direction decision with calibrated
	// nanosecond coefficients and feeds each relaxation matvec's measured
	// time back into the planner's corrector (see BFSOptions.Model).
	Model *core.CostModel
	// Shards, when > 1, range-shards each relaxation matvec: the 2-phase
	// direction choice still decides push vs pull for the round, but the
	// kernel executes as that many edge-balanced destination ranges
	// concurrently, and traces carry the per-shard records.
	Shards int
	// Workspace, when non-nil, pins the caller's scratch arena for the run
	// instead of acquiring a pooled one (see BFSOptions.Workspace): not
	// released by SSSP, not shareable between concurrent operations.
	Workspace *graphblas.Workspace
	// Trace, when non-nil, receives one record per relaxation round.
	Trace func(IterStats)
	// Context, when non-nil, makes the relaxation abortable: the pipeline
	// checks it between kernel phases, the parallel kernels stop claiming
	// chunks once it is done, and the round loop checks it at each round
	// boundary. A cancelled run returns a wrapped graphblas.ErrCancelled
	// along with the partial distances relaxed so far (unreached vertices
	// stay +Inf). The live-path check is allocation-free.
	Context context.Context
}

// DefaultSSSPSwitchPoint is the active-fraction threshold for the 2-phase
// SSSP direction switch.
const DefaultSSSPSwitchPoint = 0.10

// SSSP computes single-source shortest paths on a non-negatively weighted
// graph with frontier-driven Bellman-Ford over the (min, +) semiring.
// Each round relaxes only the *active* vertices — those whose distance
// improved last round — so the active set plays the role of the BFS
// frontier and the same push-pull machinery applies. Following the
// paper's Section 5.6, SSSP uses the 2-phase direction scheme: start
// column-based, switch to row-based when the active set grows large (the
// workfront of SSSP does not shrink back the way BFS's does, so there is
// no third phase).
//
// Unreachable vertices get +Inf.
func SSSP(a *graphblas.Matrix[float64], source int, opt SSSPOptions) ([]float64, error) {
	n := a.NRows()
	if a.NCols() != n {
		return nil, fmt.Errorf("algorithms: SSSP needs a square matrix, got %d×%d", a.NRows(), a.NCols())
	}
	if source < 0 || source >= n {
		return nil, fmt.Errorf("algorithms: SSSP source %d out of range [0,%d)", source, n)
	}
	sr := graphblas.MinPlusFloat64()

	// Distances live in a true Dense vector (every position stored, +Inf =
	// unreached) so the relax fold is a format-preserving in-place merge
	// and the improvement test probes the value array directly.
	dist := graphblas.NewVector[float64](n)
	dist.Fill(math.Inf(1))
	if err := dist.SetElement(source, 0); err != nil {
		return nil, err
	}
	distVal, _ := dist.DenseView()

	active := graphblas.NewVector[float64](n)
	if err := active.SetElement(source, 0); err != nil {
		return nil, err
	}
	cand := graphblas.NewVector[float64](n)

	planner := graphblas.NewPlanner(a, true, opt.SwitchPoint).WithModel(opt.Model)
	dir := core.Push

	// One workspace and descriptor for the whole relaxation loop; the
	// improvement predicate reads dist's stable dense storage.
	ws := opt.Workspace
	if ws == nil {
		ws = graphblas.AcquireWorkspace(n, n)
		defer ws.Release()
	}
	desc := &graphblas.Descriptor{Transpose: true, Workspace: ws, Context: opt.Context}
	var shardPlan core.Plan
	if opt.Shards > 1 {
		desc.Shards = opt.Shards
		desc.CostModel = opt.Model
		desc.Corrector = &core.Corrector{}
		desc.Plan = &shardPlan
	}
	improves := func(i int, d float64) bool { return d < distVal[i] }
	minOp := sr.Add.Op
	// Partial result for aborted runs: the distances relaxed so far, valid
	// upper bounds on the true distances (Bellman-Ford only ever improves).
	snapshot := func() []float64 {
		out := make([]float64, n)
		copy(out, distVal)
		return out
	}

	for round := 0; round < n && active.NVals() > 0; round++ {
		// Round boundary: a cancelled context aborts within one round,
		// returning the partial distances.
		if err := graphblas.CheckContext(opt.Context); err != nil {
			return snapshot(), err
		}
		start := time.Now()
		var plan core.Plan
		planned := false
		if opt.PushOnly {
			dir = core.Push
		} else if dir == core.Push {
			// 2-phase: once pull, stay pull (the SSSP workfront does not
			// shrink back the way BFS's does).
			activeInd, _ := active.SparseIndices()
			plan = planner.Plan(activeInd, active.NVals(), -1)
			dir = plan.Dir
			planned = true
		}
		if dir == core.Push {
			desc.Direction = graphblas.ForcePush
		} else {
			desc.Direction = graphblas.ForcePull
		}
		// cand = Aᵀ min.+ active: tentative distances through last round's
		// improvements.
		mxvStart := time.Now()
		if _, err := graphblas.Into(cand).With(desc).MxV(sr, a, active); err != nil {
			return snapshot(), err
		}
		measured := time.Since(mxvStart)
		if planned {
			planner.Observe(plan, measured)
		}
		// Snapshot the matvec's shard records before the Select/Assign calls
		// below overwrite the shared plan sink.
		mxvShards := shardPlan.Shards
		mxvHybrid := shardPlan.Hybrid
		// Relax, as two pipeline calls: the new active set is the
		// candidates that improve (a select against dist), and the fold is
		// a min-accumulating assign — dist min= active — in place of the
		// hand-rolled merge loop.
		if err := graphblas.Into(active).With(desc).Select(improves, cand); err != nil {
			return snapshot(), err
		}
		if err := graphblas.Into(dist).Accum(minOp).With(desc).AssignVector(active); err != nil {
			return snapshot(), err
		}
		if opt.Trace != nil {
			stats := IterStats{
				Iteration:   round + 1,
				Direction:   dir,
				FrontierNNZ: active.NVals(),
				Duration:    time.Since(start),
				PushCost:    plan.PushCost,
				PullCost:    plan.PullCost,
				PredictedNs: plan.PredictedNs,
				MeasuredNs:  float64(measured.Nanoseconds()),
			}
			if len(mxvShards) > 0 {
				stats.Shards = append([]core.ShardPlan(nil), mxvShards...)
				stats.Hybrid = mxvHybrid
			}
			opt.Trace(stats)
		}
	}
	return snapshot(), nil
}

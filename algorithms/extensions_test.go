package algorithms

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pushpull/graphblas"
)

// refComponents labels components with union-find.
func refComponents(a *graphblas.Matrix[bool]) []uint32 {
	n := a.NRows()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[rx] = ry
		}
	}
	csr := a.CSR()
	for i := 0; i < n; i++ {
		ind, _ := csr.RowSpan(i)
		for _, j := range ind {
			union(i, int(j))
		}
	}
	// Canonical label: smallest member id.
	smallest := make([]uint32, n)
	for i := range smallest {
		smallest[i] = ^uint32(0)
	}
	for i := 0; i < n; i++ {
		r := find(i)
		if uint32(i) < smallest[r] {
			smallest[r] = uint32(i)
		}
	}
	labels := make([]uint32, n)
	for i := 0; i < n; i++ {
		labels[i] = smallest[find(i)]
	}
	return labels
}

func TestConnectedComponentsMatchesUnionFind(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(80)
		g := randUndirected(rng, n, 0.03+rng.Float64()*0.05)
		got, err := ConnectedComponents(g)
		if err != nil {
			t.Fatal(err)
		}
		want := refComponents(g)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: label[%d]=%d want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestConnectedComponentsDirectedWeak(t *testing.T) {
	// 0→1, 2→1: weakly one component {0,1,2}; 3 isolated.
	g, err := graphblas.NewMatrixFromCOO(4, 4,
		[]uint32{0, 2}, []uint32{1, 1}, []bool{true, true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := ConnectedComponents(g)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != 0 || labels[1] != 0 || labels[2] != 0 {
		t.Fatalf("weak component broken: %v", labels)
	}
	if labels[3] != 3 {
		t.Fatalf("isolated vertex mislabelled: %v", labels)
	}
	rect, err := graphblas.NewMatrixFromCOO(2, 3, []uint32{0}, []uint32{1}, []bool{true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectedComponents(rect); err == nil {
		t.Fatal("rectangular CC accepted")
	}
}

func TestConnectedComponentsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		g := randUndirected(rng, n, 0.08)
		got, err := ConnectedComponents(g)
		if err != nil {
			return false
		}
		want := refComponents(g)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFusedBFSMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	graphs := []*graphblas.Matrix[bool]{
		randUndirected(rng, 120, 0.05),
		pathGraph(80),
		starPlusClique(100, 12),
		randDirected(rng, 60, 0.08),
	}
	for gi, g := range graphs {
		for src := 0; src < g.NRows(); src += 17 {
			want, err := BFS(g, src, BFSOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := FusedBFS(g, src, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got.Visited != want.Visited {
				t.Fatalf("graph %d src %d: visited %d want %d", gi, src, got.Visited, want.Visited)
			}
			if got.EdgesTraversed != want.EdgesTraversed {
				t.Fatalf("graph %d src %d: edges %d want %d", gi, src, got.EdgesTraversed, want.EdgesTraversed)
			}
			for v := range want.Depths {
				if got.Depths[v] != want.Depths[v] {
					t.Fatalf("graph %d src %d: depth[%d]=%d want %d", gi, src, v, got.Depths[v], want.Depths[v])
				}
			}
		}
	}
}

func TestFusedBFSErrors(t *testing.T) {
	g := pathGraph(5)
	if _, err := FusedBFS(g, -1, 0); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := FusedBFS(g, 99, 0); err == nil {
		t.Fatal("bad source accepted")
	}
	rect, err := graphblas.NewMatrixFromCOO(2, 3, []uint32{0}, []uint32{1}, []bool{true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FusedBFS(rect, 0, 0); err == nil {
		t.Fatal("rectangular accepted")
	}
}

func TestFusedBFSPropertySwitchPoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		g := randUndirected(rng, n, 0.04+rng.Float64()*0.1)
		src := rng.Intn(n)
		want := refBFS(g, src)
		got, err := FusedBFS(g, src, 0.001+rng.Float64()*0.3)
		if err != nil {
			return false
		}
		for i := range want {
			if got.Depths[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package algorithms

import (
	"fmt"

	"pushpull/graphblas"
	"pushpull/internal/sparse"
)

// TriangleCount returns the number of triangles in an undirected simple
// graph given as a symmetric Boolean adjacency matrix. It is the masked-
// SpGEMM formulation the paper cites as a masking beneficiary (Azad,
// Buluç, Gilbert): with L the strictly-lower-triangular part of A,
// count = Σ (L·Lᵀ) ⟨L⟩ — the output mask L means only wedge closures that
// are actual edges are ever computed, the a-priori output sparsity that
// makes masking asymptotically profitable.
func TriangleCount(a *graphblas.Matrix[bool]) (int64, error) {
	n := a.NRows()
	if a.NCols() != n {
		return 0, fmt.Errorf("algorithms: TriangleCount needs a square matrix, got %d×%d", a.NRows(), a.NCols())
	}
	l := lowerTriangle(a.CSR())
	lm := graphblas.NewMatrixFromCSR(l)
	// C⟨L⟩ = L·Lᵀ counts, for each edge (i,j) with j<i, the common lower
	// neighbours — multiply L by its transpose via the CSC view. The pinned
	// workspace supplies the SpGEMM's per-worker accumulators.
	lt := graphblas.NewMatrixFromCSR(sparse.Transpose(l))
	ws := graphblas.AcquireWorkspace(n, n)
	defer ws.Release()
	prod, err := graphblas.MxM(lm, countSemiring(), lm, lt, &graphblas.Descriptor{Workspace: ws})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, v := range prod.CSR().Val {
		total += v
	}
	return total, nil
}

// countSemiring is plus-times over int64 with One=1: each matched wedge
// contributes exactly 1.
func countSemiring() graphblas.Semiring[int64] {
	return graphblas.PlusTimesInt64()
}

// lowerTriangle extracts the strictly lower triangular pattern of A as an
// int64 matrix with unit values.
func lowerTriangle(a *sparse.CSR[bool]) *sparse.CSR[int64] {
	out := &sparse.CSR[int64]{Rows: a.Rows, Cols: a.Cols, Ptr: make([]int, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		out.Ptr[i] = len(out.Ind)
		ind, _ := a.RowSpan(i)
		for _, j := range ind {
			if int(j) < i {
				out.Ind = append(out.Ind, j)
				out.Val = append(out.Val, 1)
			}
		}
	}
	out.Ptr[a.Rows] = len(out.Ind)
	return out
}

package algorithms

import (
	"fmt"
	"math/bits"

	"pushpull/graphblas"
)

// MultiBFS runs up to 64 BFS traversals simultaneously using bit-parallel
// frontiers (MS-BFS): each vertex carries a 64-bit word whose bit b means
// "reached by source b", and one sweep over the adjacency advances all
// traversals at once. This serves the paper's batched-betweenness-
// centrality motivation (Section 5.6): batching amortizes every matrix
// access across sources, and the per-vertex "seen" word is exactly an
// output mask — a vertex whose seen-word saturates drops out of all
// remaining work, the masking idea applied bitwise.
//
// Semiring view: this is BFS over the (OR, AND) semiring lifted from bool
// to uint64 lanes. The returned depths[s][v] is the level of v from
// sources[s], or -1 if unreached.
func MultiBFS(a *graphblas.Matrix[bool], sources []int) ([][]int32, error) {
	n := a.NRows()
	if a.NCols() != n {
		return nil, fmt.Errorf("algorithms: MultiBFS needs a square matrix, got %d×%d", a.NRows(), a.NCols())
	}
	if len(sources) == 0 {
		return nil, nil
	}
	if len(sources) > 64 {
		return nil, fmt.Errorf("algorithms: MultiBFS supports at most 64 sources, got %d", len(sources))
	}
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("algorithms: MultiBFS source %d out of range [0,%d)", s, n)
		}
	}
	depths := make([][]int32, len(sources))
	for s := range depths {
		depths[s] = make([]int32, n)
		for v := range depths[s] {
			depths[s][v] = -1
		}
		depths[s][sources[s]] = 0
	}

	seen := make([]uint64, n)     // union of frontiers so far (visited mask)
	frontier := make([]uint64, n) // lanes active this level
	next := make([]uint64, n)
	var active []uint32 // vertices with any frontier bit, sparse driver
	for s, src := range sources {
		bit := uint64(1) << uint(s)
		if frontier[src] == 0 {
			active = append(active, uint32(src))
		}
		frontier[src] |= bit
		seen[src] |= bit
	}

	// The traversal multiplies by Aᵀ (column i of Aᵀ = out-edges of i),
	// matching single-source BFS; CSR(A) provides those columns.
	csr := a.CSR()
	// Double-buffer the active lists: the level that was just consumed
	// becomes the next level's append target, so the driver arrays reach a
	// zero-allocation steady state like the matvec stack's workspaces.
	var spare []uint32
	for depth := int32(1); len(active) > 0; depth++ {
		nextActive := spare[:0]
		for _, u := range active {
			lanes := frontier[u]
			lo, hi := csr.Ptr[u], csr.Ptr[u+1]
			for k := lo; k < hi; k++ {
				v := csr.Ind[k]
				newLanes := lanes &^ seen[v] // bitwise output mask: drop already-reached lanes
				if newLanes == 0 {
					continue // early exit per edge: nothing new to deliver
				}
				if next[v] == 0 {
					nextActive = append(nextActive, v)
				}
				next[v] |= newLanes
				seen[v] |= newLanes
			}
		}
		for _, v := range nextActive {
			lanes := next[v]
			for lanes != 0 {
				s := bits.TrailingZeros64(lanes)
				lanes &= lanes - 1
				depths[s][v] = depth
			}
		}
		// Swap frontiers; clear the consumed one lazily via active list.
		for _, u := range active {
			frontier[u] = 0
		}
		frontier, next = next, frontier
		spare = active
		active = nextActive
	}
	return depths, nil
}

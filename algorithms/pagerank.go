package algorithms

import (
	"context"
	"fmt"
	"math"

	"pushpull/graphblas"
	"pushpull/internal/core"
	"pushpull/internal/sparse"
)

// PageRankOptions configures both PageRank variants.
type PageRankOptions struct {
	// Damping is the teleport factor α (default 0.85).
	Damping float64
	// Tol is the per-iteration L1 convergence threshold (default 1e-7).
	Tol float64
	// MaxIter bounds the number of power iterations (default 100).
	MaxIter int
	// AdaptiveTol is the per-vertex freeze threshold for AdaptivePageRank
	// (default Tol): a vertex whose rank moved less than this is
	// considered converged and masked out of later matvecs.
	AdaptiveTol float64
	// FreezeAfter is how many *consecutive* sub-threshold deltas a vertex
	// needs before it is frozen (default 2). Early power iterations move
	// mass in waves, so a single small delta can be transient; requiring a
	// streak keeps the adaptive result close to the exact one.
	FreezeAfter int
	// Model, when non-nil, rides the descriptor into the matvec pipeline
	// so plan records price the (pull-pinned) iteration in calibrated
	// nanoseconds; PageRank never switches direction, so the model only
	// affects the trace, not the schedule.
	Model *core.CostModel
	// Shards, when > 1, range-shards each power-iteration matvec into
	// that many edge-balanced destination ranges executed concurrently.
	// PageRank pins ForcePull, so every shard pulls — the benefit is the
	// edge-balanced split itself (hub rows no longer serialize a chunk).
	Shards int
	// Workspace, when non-nil, pins the caller's scratch arena for the run
	// instead of acquiring a pooled one (see BFSOptions.Workspace): not
	// released by PageRank, not shareable between concurrent operations.
	Workspace *graphblas.Workspace
	// Context, when non-nil, makes the power iteration abortable: the
	// pipeline checks it between kernel phases, the parallel kernels stop
	// claiming chunks once it is done, and the iteration loop checks it at
	// each round boundary. A cancelled run returns a wrapped
	// graphblas.ErrCancelled along with the partial result — the last
	// completed iterate's ranks and the rounds finished so far. The
	// live-path check is allocation-free.
	Context context.Context
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping <= 0 || o.Damping >= 1 {
		o.Damping = 0.85
	}
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.AdaptiveTol <= 0 {
		o.AdaptiveTol = o.Tol
	}
	if o.FreezeAfter <= 0 {
		o.FreezeAfter = 2
	}
	return o
}

// PageRankResult reports the ranks and convergence behaviour.
type PageRankResult struct {
	Ranks      []float64
	Iterations int
	// MaskedMatvecRows counts, summed over iterations, how many output
	// rows the (masked) matvec actually computed — the work-saving metric
	// the adaptive variant improves.
	MaskedMatvecRows int64
}

// PageRank runs the standard dense power iteration
// r ← α·Pᵀr + (1-α)/n + dangling mass, where P is the row-stochastic walk
// matrix, until the L1 delta drops below Tol.
func PageRank(a *graphblas.Matrix[bool], opt PageRankOptions) (PageRankResult, error) {
	return pageRank(a, opt, false)
}

// AdaptivePageRank is the masked variant after Kamvar et al. (the paper's
// Section 5.6 masking example): once a vertex's rank stops moving it is
// frozen, and the matvec runs masked to the still-active rows only —
// output sparsity known a priori, an asymptotic saving proportional to
// the converged fraction. Results match PageRank to within the freeze
// threshold.
func AdaptivePageRank(a *graphblas.Matrix[bool], opt PageRankOptions) (PageRankResult, error) {
	return pageRank(a, opt, true)
}

func pageRank(a *graphblas.Matrix[bool], opt PageRankOptions, adaptive bool) (res PageRankResult, err error) {
	n := a.NRows()
	if a.NCols() != n {
		return PageRankResult{}, fmt.Errorf("algorithms: PageRank needs a square matrix, got %d×%d", a.NRows(), a.NCols())
	}
	if n == 0 {
		return PageRankResult{}, nil
	}
	opt = opt.withDefaults()

	// Build the weighted walk matrix W(i,j) = 1/outdeg(j) for edge j→i —
	// i.e. the transpose of A normalized by out-degree, so ranks flow
	// along Wᵀ... we store W = A with each entry (i,j) weighted by
	// 1/outdeg(i), and multiply by Wᵀ (Transpose descriptor), which sums
	// over in-neighbours exactly the standard PageRank update.
	pat := a.CSR()
	weighted := sparse.Scale(pat, func(bool) float64 { return 0 })
	for i := 0; i < n; i++ {
		lo, hi := pat.Ptr[i], pat.Ptr[i+1]
		if hi == lo {
			continue
		}
		w := 1 / float64(hi-lo)
		for k := lo; k < hi; k++ {
			weighted.Val[k] = w
		}
	}
	wm := graphblas.NewMatrixFromCSR(weighted)
	sr := graphblas.PlusTimesFloat64()

	// The ranks vector is value-complete, so it lives in the true Dense
	// format: the pull kernel consumes it through a presence-free view and
	// its inner loop skips the probe entirely; the eWise teleport update
	// below loops over the value arrays with no presence probes either.
	ranks := graphblas.NewVector[float64](n)
	ranks.Fill(1 / float64(n))

	next := graphblas.NewVector[float64](n)
	tele := graphblas.NewVector[float64](n)     // teleport + dangling mass, value-complete
	newRanks := graphblas.NewVector[float64](n) // next iterate, swapped with ranks
	newRanks.Fill(0)
	active := graphblas.NewVector[bool](n) // adaptive mask: still-moving rows
	active.Fill(true)
	// The carry mask is word-packed: the masked matvec and the ¬active
	// carry-assign read it zero-copy as bitset words, freezing a vertex is
	// one bit clear, and the planner popcounts its density exactly.
	active.ToBitset()
	_, aw := active.BitsetView()
	activeRows := n
	streak := make([]int, n) // consecutive sub-threshold deltas per vertex

	res = PageRankResult{}
	danglingBase := (1 - opt.Damping) / float64(n)
	// Every return — normal, cancelled, or faulted — reports the last
	// completed iterate, so an aborted run still yields usable partial ranks.
	defer func() {
		out := make([]float64, n)
		rv, _ := ranks.DenseView()
		copy(out, rv)
		res.Ranks = out
	}()
	// Pin one workspace and descriptor across the power iteration so the
	// steady state allocates nothing.
	ws := opt.Workspace
	if ws == nil {
		ws = graphblas.AcquireWorkspace(n, n)
		defer ws.Release()
	}
	desc := &graphblas.Descriptor{Transpose: true, Direction: graphblas.ForcePull, Workspace: ws, CostModel: opt.Model, Context: opt.Context, Shards: opt.Shards}
	// Frozen rows carry their old rank: newRanks⟨¬active⟩ = ranks.
	carryDesc := &graphblas.Descriptor{StructuralComplement: true, Workspace: ws, Context: opt.Context}
	scale := func(x float64) float64 { return opt.Damping * x }
	plus := func(a, b float64) float64 { return a + b }
	for iter := 0; iter < opt.MaxIter; iter++ {
		// Round boundary: a cancelled context aborts within one iteration,
		// leaving the last completed iterate as the partial result.
		if err = graphblas.CheckContext(opt.Context); err != nil {
			return res, err
		}
		res.Iterations++
		rv, _ := ranks.DenseView()
		// Dangling mass: ranks parked on sink vertices redistribute
		// uniformly.
		dangling := 0.0
		for i := 0; i < n; i++ {
			if pat.Ptr[i+1] == pat.Ptr[i] {
				dangling += rv[i]
			}
		}
		teleport := danglingBase + opt.Damping*dangling/float64(n)

		var err error
		if adaptive {
			res.MaskedMatvecRows += int64(activeRows)
			_, err = graphblas.Into(next).Mask(active).With(desc).MxV(sr, wm, ranks)
		} else {
			res.MaskedMatvecRows += int64(n)
			_, err = graphblas.Into(next).With(desc).MxV(sr, wm, ranks)
		}
		if err != nil {
			return res, err
		}

		// The teleport/accumulate step as masked eWise pipeline calls:
		// next ← α·next in place (pattern unchanged), then
		// newRanks = tele ⊕ next — a dense∘bitmap union that lands dense,
		// giving every row teleport plus its (possibly absent) pull
		// contribution without a sparse round-trip.
		tele.Fill(teleport)
		if err := graphblas.Into(next).With(desc).Apply(scale, next); err != nil {
			return res, err
		}
		if err := graphblas.Into(newRanks).With(desc).EWiseAdd(plus, tele, next); err != nil {
			return res, err
		}
		if adaptive {
			// newRanks⟨¬active⟩ = ranks: frozen rows keep their old rank.
			if err := graphblas.Into(newRanks).Mask(active).With(carryDesc).AssignVector(ranks); err != nil {
				return res, err
			}
		}

		// Convergence and freeze bookkeeping on the old/new pair.
		nv, _ := newRanks.DenseView()
		delta := 0.0
		for i := 0; i < n; i++ {
			if adaptive && !core.BitsetGet(aw, i) {
				continue // frozen: rank carries over unchanged
			}
			d := math.Abs(nv[i] - rv[i])
			delta += d
			if adaptive {
				if d < opt.AdaptiveTol {
					streak[i]++
					if streak[i] >= opt.FreezeAfter {
						core.BitsetUnset(aw, i)
						activeRows--
					}
				} else {
					streak[i] = 0
				}
			}
		}
		ranks, newRanks = newRanks, ranks
		if delta < opt.Tol || (adaptive && activeRows == 0) {
			break
		}
	}
	refreshNVals(active)
	return res, nil // Ranks copied out by the deferred snapshot
}

// refreshNVals recounts a vector's stored elements after its raw arrays
// were written directly through DenseView or BitsetView (a popcount for
// bitset vectors).
func refreshNVals[T comparable](v *graphblas.Vector[T]) {
	v.RecountDense()
}

package algorithms

import (
	"math/rand"
	"testing"

	"pushpull/graphblas"
	"pushpull/internal/core"
)

// TestBFSPlannerTraceShowsBitmapFrontiers is the end-to-end acceptance
// check for the three-format engine: a default (cost-planned) BFS on a
// scale-free-ish graph must pull at least once, its pulled frontiers must
// land in bitmap (or promoted dense) form, the planner's cost estimates
// must be recorded on every planned iteration, and the depths must match
// the reference traversal.
func TestBFSPlannerTraceShowsBitmapFrontiers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 400
	a := randUndirected(rng, n, 0.04)
	want := refBFS(a, 1)

	var stats []IterStats
	res, err := BFS(a, 1, BFSOptions{Trace: func(s IterStats) { stats = append(stats, s) }})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Depths[i] != want[i] {
			t.Fatalf("depth[%d] = %d, reference %d", i, res.Depths[i], want[i])
		}
	}
	if len(stats) == 0 {
		t.Fatal("no trace records")
	}
	sawPull, sawBitmap := false, false
	for _, s := range stats {
		if s.Direction == core.Pull {
			sawPull = true
			if s.FrontierFormat == graphblas.Sparse {
				t.Fatalf("iter %d: pulled frontier left sparse", s.Iteration)
			}
		}
		if s.FrontierFormat != graphblas.Sparse {
			sawBitmap = true
		}
		if s.PushCost <= 0 {
			t.Fatalf("iter %d: planner push cost missing from trace: %+v", s.Iteration, s)
		}
		if s.PullCost <= 0 && s.UnvisitedNNZ > 0 {
			t.Fatalf("iter %d: planner pull cost missing from trace: %+v", s.Iteration, s)
		}
	}
	if !sawPull {
		t.Fatalf("cost planner never pulled on a dense-ish graph: %+v", stats)
	}
	if !sawBitmap {
		t.Fatal("no bitmap frontier ever appeared in the trace")
	}
}

// TestBFSLegacySwitchPointStillHonored pins the override: an explicit
// SwitchPoint must route through the legacy ratio rule and still produce
// correct depths, for crossovers on both extremes.
func TestBFSLegacySwitchPointStillHonored(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 200
	a := randUndirected(rng, n, 0.05)
	want := refBFS(a, 0)
	for _, sp := range []float64{0.001, 0.01, 0.9} {
		res, err := BFS(a, 0, BFSOptions{SwitchPoint: sp})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if res.Depths[i] != want[i] {
				t.Fatalf("sp=%g: depth[%d] = %d, reference %d", sp, i, res.Depths[i], want[i])
			}
		}
	}
}

// TestBFSCalibratedModelEndToEnd runs BFS under a plausible calibrated
// cost model: depths must match the reference, every planned iteration
// must carry a nanosecond prediction and a kernel measurement, and the
// variants that thread the model through descriptors (ParentBFS, BC,
// FusedBFS, SSSP) must keep producing reference results.
func TestBFSCalibratedModelEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 300
	a := randUndirected(rng, n, 0.04)
	want := refBFS(a, 2)
	model := &core.CostModel{
		GatherNs: 2.6, ProbeBoolNs: 0.45, ProbeWordNs: 0.56, ProbeDenseNs: 0.1,
		RowNs: 7.6, ScatterNs: 1.7, SortNs: 0.85, SetupNs: 250,
	}

	var stats []IterStats
	res, err := BFS(a, 2, BFSOptions{Model: model, Trace: func(s IterStats) { stats = append(stats, s) }})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Depths[i] != want[i] {
			t.Fatalf("tuned depth[%d] = %d, reference %d", i, res.Depths[i], want[i])
		}
	}
	for _, s := range stats {
		if s.PredictedNs <= 0 {
			t.Fatalf("iter %d: calibrated model set no ns prediction: %+v", s.Iteration, s)
		}
		if s.MeasuredNs <= 0 {
			t.Fatalf("iter %d: kernel timing missing: %+v", s.Iteration, s)
		}
	}

	parents, err := ParentBFSTuned(a, 2, model)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parents {
		if (want[i] < 0) != (p < 0) {
			t.Fatalf("tuned ParentBFS reachability mismatch at %d: parent %d, depth %d", i, p, want[i])
		}
	}

	fused, err := FusedBFSTuned(a, 2, 0, model)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if fused.Depths[i] != want[i] {
			t.Fatalf("tuned FusedBFS depth[%d] = %d, reference %d", i, fused.Depths[i], want[i])
		}
	}

	// Untuned vs tuned must agree exactly for the result-deterministic
	// algorithms (only the schedule may differ).
	bcPlain, err := BetweennessCentrality(a, []int{0, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	bcTuned, err := BetweennessCentralityTuned(a, []int{0, 2, 5}, model)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bcPlain {
		if diff := bcPlain[i] - bcTuned[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("tuned BC diverged at %d: %g vs %g", i, bcTuned[i], bcPlain[i])
		}
	}
}

// TestMxVPlanDescriptorSink checks that Descriptor.Plan surfaces the
// planner's record through a real matvec.
func TestMxVPlanDescriptorSink(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 150
	a := randUndirected(rng, n, 0.05)
	sr := graphblas.OrAndBool()
	f := graphblas.NewVector[bool](n)
	_ = f.SetElement(0, true)
	var plan core.Plan
	desc := &graphblas.Descriptor{Transpose: true, Plan: &plan}
	w := graphblas.NewVector[bool](n)
	dir, err := graphblas.MxV(w, (*graphblas.Vector[bool])(nil), nil, sr, a, f, desc)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Dir != dir {
		t.Fatalf("plan sink direction %v, returned %v", plan.Dir, dir)
	}
	if plan.Rule != core.RuleCostModel || plan.PushCost <= 0 || plan.PullCost <= 0 {
		t.Fatalf("plan sink incomplete: %+v", plan)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"pushpull/internal/serve"
)

// newHandler wires the service's HTTP surface:
//
//	GET/POST /query         run one query (params or JSON body; class=
//	                        interactive|batch picks the scheduling class,
//	                        client_id or X-Client-ID names the client for
//	                        per-client quotas)
//	GET      /graphs        registered graphs: status, generation, sizes, last error
//	GET      /metrics       live counters, latency histograms, planner quality,
//	                        lifecycle (snapshots, reloads, worker self-healing)
//	GET      /debug/queries in-flight and recently completed queries
//	GET      /healthz       liveness (200 while the process runs, even degraded)
//	GET      /readyz        readiness (503 while any graph has no serving snapshot)
//	POST     /admin/reload  re-read every -graph spec: load, validate, swap or roll back
func newHandler(srv *serve.Server, logger *log.Logger) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(srv, logger, w, r)
	})
	mux.HandleFunc("/graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"graphs":     srv.GraphInfos(),
			"algorithms": serve.AlgorithmNames(),
			"degraded":   srv.Degraded(),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Metrics().Snapshot())
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Queries())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness: the process is up and can answer — a degraded server
		// is alive (it serves its valid subset); only readiness flips.
		mode := "serving"
		if srv.Degraded() {
			mode = "degraded"
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "mode": mode})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if srv.Ready() {
			writeJSON(w, http.StatusOK, map[string]any{"ready": true})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready":  false,
			"graphs": srv.GraphInfos(),
		})
	})
	mux.HandleFunc("/admin/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
			return
		}
		rep := srv.Reload(r.Context())
		logReload(logger, "admin reload", rep)
		status := http.StatusOK
		if rep.Failed > 0 {
			// Partial or total rollback: the report carries per-graph
			// reasons; 207 signals "look inside".
			status = http.StatusMultiStatus
		}
		writeJSON(w, status, rep)
	})
	return mux
}

// logReload prints one line per reloaded graph so the startup log is the
// audit trail for swaps and rollbacks.
func logReload(logger *log.Logger, what string, rep serve.ReloadReport) {
	for _, res := range rep.Results {
		if res.Error != "" {
			logger.Printf("%s: graph %q ROLLED BACK (%s, gen stays %d): %s",
				what, res.Graph, res.Status, res.Gen, res.Error)
		} else {
			logger.Printf("%s: graph %q swapped to gen %d (%.1fms)",
				what, res.Graph, res.Gen, res.DurationMS)
		}
	}
}

// parseRequest accepts the query either as URL parameters (GET-friendly:
// ?graph=kron&algo=bfs&source=0&timeout=2s&class=batch&full=1) or as a
// JSON body. The X-Client-ID header names the client for per-client
// quotas on either form; an explicit client_id in the params or body
// wins over the header.
func parseRequest(r *http.Request) (serve.Request, error) {
	var req serve.Request
	if r.Method == http.MethodPost && r.Header.Get("Content-Type") == "application/json" {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return req, fmt.Errorf("%w: body: %v", serve.ErrBadRequest, err)
		}
		if req.ClientID == "" {
			req.ClientID = r.Header.Get("X-Client-ID")
		}
		return req, nil
	}
	q := r.URL.Query()
	req.Graph = q.Get("graph")
	req.Algo = q.Get("algo")
	req.Class = q.Get("class")
	req.ClientID = q.Get("client_id")
	if req.ClientID == "" {
		req.ClientID = r.Header.Get("X-Client-ID")
	}
	if s := q.Get("source"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			return req, fmt.Errorf("%w: source %q", serve.ErrBadRequest, s)
		}
		req.Source = v
	}
	if s := q.Get("timeout"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			return req, fmt.Errorf("%w: timeout %q", serve.ErrBadRequest, s)
		}
		req.Timeout = d
	}
	if s := q.Get("full"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			return req, fmt.Errorf("%w: full %q", serve.ErrBadRequest, s)
		}
		req.Full = v
	}
	return req, nil
}

func handleQuery(srv *serve.Server, logger *log.Logger, w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(r)
	if err != nil {
		writeError(srv, w, logger, serve.Result{}, req, err)
		return
	}
	res, err := srv.Do(r.Context(), req)
	if err != nil {
		writeError(srv, w, logger, res, req, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// writeError maps the error taxonomy to transport codes. The response
// body carries only the public message — kernel panic stacks go to the
// server log keyed by query id, never on the wire. 429 sheds add
// Retry-After: the shed-specific prediction-derived hint when the error
// carries one (infeasible-deadline and quota sheds), otherwise the
// queue's estimated drain time (queue depth × the algorithm's recent p50
// run latency) — so well-behaved clients back off proportionally to the
// actual overload. Budget trips (598) additionally ship the query's
// partial result, marked partial, alongside the error.
func writeError(srv *serve.Server, w http.ResponseWriter, logger *log.Logger, res serve.Result, req serve.Request, err error) {
	status := serve.HTTPStatus(err)
	switch status {
	case http.StatusTooManyRequests:
		secs, ok := serve.RetryAfterHint(err)
		if !ok {
			secs = srv.RetryAfterSeconds(req.Algo)
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	case http.StatusInternalServerError:
		logger.Printf("query %d failed: %v", res.ID, err)
	}
	body := map[string]any{"error": serve.PublicErrorMessage(err)}
	if res.ID != 0 {
		body["id"] = res.ID
	}
	if res.Partial {
		body["partial"] = true
		body["gen"] = res.Gen
		body["result"] = res.Payload
	}
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"time"

	"pushpull/internal/serve"
)

// newHandler wires the service's HTTP surface:
//
//	GET/POST /query         run one query (params or JSON body)
//	GET      /graphs        loaded graphs and their sizes
//	GET      /metrics       live counters, latency histograms, planner quality
//	GET      /debug/queries in-flight and recently completed queries
//	GET      /healthz       liveness
func newHandler(srv *serve.Server, logger *log.Logger) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(srv, logger, w, r)
	})
	mux.HandleFunc("/graphs", func(w http.ResponseWriter, r *http.Request) {
		type gi struct {
			Name     string `json:"name"`
			Vertices int    `json:"vertices"`
			Edges    int    `json:"edges"`
		}
		names := srv.GraphNames()
		sort.Strings(names)
		out := make([]gi, 0, len(names))
		for _, name := range names {
			g, _ := srv.Graph(name)
			out = append(out, gi{Name: name, Vertices: g.Mat.NRows(), Edges: g.Mat.NVals()})
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"graphs":     out,
			"algorithms": serve.AlgorithmNames(),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Metrics().Snapshot())
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Queries())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// parseRequest accepts the query either as URL parameters (GET-friendly:
// ?graph=kron&algo=bfs&source=0&timeout=2s&full=1) or as a JSON body.
func parseRequest(r *http.Request) (serve.Request, error) {
	var req serve.Request
	if r.Method == http.MethodPost && r.Header.Get("Content-Type") == "application/json" {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return req, fmt.Errorf("%w: body: %v", serve.ErrBadRequest, err)
		}
		return req, nil
	}
	q := r.URL.Query()
	req.Graph = q.Get("graph")
	req.Algo = q.Get("algo")
	if s := q.Get("source"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			return req, fmt.Errorf("%w: source %q", serve.ErrBadRequest, s)
		}
		req.Source = v
	}
	if s := q.Get("timeout"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			return req, fmt.Errorf("%w: timeout %q", serve.ErrBadRequest, s)
		}
		req.Timeout = d
	}
	if s := q.Get("full"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			return req, fmt.Errorf("%w: full %q", serve.ErrBadRequest, s)
		}
		req.Full = v
	}
	return req, nil
}

func handleQuery(srv *serve.Server, logger *log.Logger, w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(r)
	if err != nil {
		writeError(w, logger, 0, err)
		return
	}
	res, err := srv.Do(r.Context(), req)
	if err != nil {
		writeError(w, logger, res.ID, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// writeError maps the error taxonomy to transport codes. The response
// body carries only the public message — kernel panic stacks go to the
// server log keyed by query id, never on the wire. Queue rejections add
// Retry-After so well-behaved clients back off.
func writeError(w http.ResponseWriter, logger *log.Logger, id uint64, err error) {
	status := serve.HTTPStatus(err)
	switch status {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", "1")
	case http.StatusInternalServerError:
		logger.Printf("query %d failed: %v", id, err)
	}
	body := map[string]any{"error": serve.PublicErrorMessage(err)}
	if id != 0 {
		body["id"] = id
	}
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pushpull/graphblas"
	"pushpull/internal/harness"
	"pushpull/internal/serve"
)

func newTestServer(t *testing.T, cfg serve.Config, graphs ...*serve.Graph) (*httptest.Server, *serve.Server) {
	t.Helper()
	srv, err := serve.New(cfg, graphs...)
	if err != nil {
		t.Fatal(err)
	}
	logger := log.New(io.Discard, "", 0)
	hs := httptest.NewServer(newHandler(srv, logger))
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return hs, srv
}

func kronGraph(t *testing.T, scale int) *serve.Graph {
	t.Helper()
	m, err := harness.LoadGraph("", "kron", scale)
	if err != nil {
		t.Fatal(err)
	}
	return serve.NewGraph("kron", m)
}

func pathGraph(t *testing.T, n int) *serve.Graph {
	t.Helper()
	rows := make([]uint32, n-1)
	cols := make([]uint32, n-1)
	vals := make([]bool, n-1)
	for i := 0; i < n-1; i++ {
		rows[i], cols[i], vals[i] = uint32(i), uint32(i + 1), true
	}
	m, err := graphblas.NewMatrixFromCOO(n, n, rows, cols, vals, nil)
	if err != nil {
		t.Fatal(err)
	}
	return serve.NewGraph("path", m)
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d (body %s)", url, resp.StatusCode, wantStatus, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v (body %s)", url, err, body)
		}
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	hs, _ := newTestServer(t, serve.Config{Workers: 4}, kronGraph(t, 8))

	getJSON(t, hs.URL+"/healthz", http.StatusOK, nil)

	var graphs struct {
		Graphs []struct {
			Name     string `json:"name"`
			Vertices int    `json:"vertices"`
		} `json:"graphs"`
		Algorithms []string `json:"algorithms"`
	}
	getJSON(t, hs.URL+"/graphs", http.StatusOK, &graphs)
	if len(graphs.Graphs) != 1 || graphs.Graphs[0].Name != "kron" || graphs.Graphs[0].Vertices != 256 {
		t.Fatalf("graphs listing: %+v", graphs)
	}
	if len(graphs.Algorithms) != 5 {
		t.Fatalf("algorithms listing: %v", graphs.Algorithms)
	}

	// Repeat GET queries are deterministic: same checksum both times.
	var first, second serve.Result
	getJSON(t, hs.URL+"/query?graph=kron&algo=bfs&source=0", http.StatusOK, &first)
	getJSON(t, hs.URL+"/query?graph=kron&algo=bfs&source=0", http.StatusOK, &second)
	if first.Payload.Checksum == 0 || first.Payload.Checksum != second.Payload.Checksum {
		t.Fatalf("GET checksums %x then %x, want equal and non-zero", first.Payload.Checksum, second.Payload.Checksum)
	}

	// POST body form produces the identical result.
	body, _ := json.Marshal(serve.Request{Graph: "kron", Algo: "bfs", Source: 0})
	resp, err := http.Post(hs.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var posted serve.Result
	if err := json.NewDecoder(resp.Body).Decode(&posted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || posted.Payload.Checksum != first.Payload.Checksum {
		t.Fatalf("POST: status %d checksum %x, want 200 / %x", resp.StatusCode, posted.Payload.Checksum, first.Payload.Checksum)
	}

	// Every algorithm serves over HTTP.
	for _, algo := range graphs.Algorithms {
		var res serve.Result
		getJSON(t, fmt.Sprintf("%s/query?graph=kron&algo=%s&source=1", hs.URL, algo), http.StatusOK, &res)
		if res.Payload.Checksum == 0 {
			t.Errorf("%s: zero checksum", algo)
		}
	}

	// Error taxonomy over the wire.
	getJSON(t, hs.URL+"/query?graph=nope&algo=bfs", http.StatusNotFound, nil)
	getJSON(t, hs.URL+"/query?graph=kron&algo=dijkstra", http.StatusNotFound, nil)
	getJSON(t, hs.URL+"/query?graph=kron&algo=bfs&source=notanumber", http.StatusBadRequest, nil)
	getJSON(t, hs.URL+"/query?graph=kron&algo=bfs&source=99999", http.StatusBadRequest, nil)
	getJSON(t, hs.URL+"/query?graph=kron&algo=bfs&timeout=bogus", http.StatusBadRequest, nil)

	var metrics serve.MetricsSnapshot
	getJSON(t, hs.URL+"/metrics", http.StatusOK, &metrics)
	if metrics.Submitted == 0 || metrics.Algorithms["bfs"].OK == 0 {
		t.Fatalf("metrics: %+v", metrics)
	}
	var queries []serve.QueryInfo
	getJSON(t, hs.URL+"/debug/queries", http.StatusOK, &queries)
	if len(queries) == 0 {
		t.Fatal("debug/queries: empty")
	}
}

// TestHTTPCancelledQuery abandons an in-flight HTTP query client-side and
// asserts the service sheds it and keeps serving.
func TestHTTPCancelledQuery(t *testing.T) {
	hs, srv := newTestServer(t, serve.Config{Workers: 1}, pathGraph(t, 100_000))

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, hs.URL+"/query?graph=path&algo=bfs", nil)
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()

	waitRunning := time.Now().Add(10 * time.Second)
	for {
		hasRunning := false
		for _, q := range srv.Queries() {
			if q.State == "running" {
				hasRunning = true
			}
		}
		if hasRunning {
			break
		}
		if time.Now().After(waitRunning) {
			t.Fatal("query never started running")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("abandoned request returned %v, want context cancellation", err)
	}

	// The pool sheds the traversal and the next (cheap) query succeeds.
	var res serve.Result
	getJSON(t, hs.URL+"/query?graph=path&algo=bfs&source=99998", http.StatusOK, &res)
	if res.Payload.Reached != 2 {
		t.Fatalf("post-cancel query reached %d vertices, want 2", res.Payload.Reached)
	}
}

// TestHTTPAdmissionSheds fills the one-worker, one-slot service and
// asserts the third query is shed with 429 + Retry-After.
func TestHTTPAdmissionSheds(t *testing.T) {
	hs, srv := newTestServer(t, serve.Config{Workers: 1, QueueDepth: 1}, pathGraph(t, 100_000))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slow := func() {
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, hs.URL+"/query?graph=path&algo=bfs", nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}
	go slow()
	deadline := time.Now().Add(10 * time.Second)
	for {
		running := false
		for _, q := range srv.Queries() {
			running = running || q.State == "running"
		}
		if running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first query never started")
		}
		time.Sleep(time.Millisecond)
	}
	go slow()
	for srv.Metrics().Snapshot().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second query never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(hs.URL + "/query?graph=path&algo=bfs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
}

// TestHTTPBudgetPartial: a query tripping its execution budget answers
// with the dedicated budget status and ships its partial result in the
// body — clients get the progress they paid for, clearly marked.
func TestHTTPBudgetPartial(t *testing.T) {
	hs, _ := newTestServer(t, serve.Config{
		Workers: 1, BudgetFactor: 1, MinBudget: time.Millisecond,
	}, pathGraph(t, 100_000))

	// A near-leaf source completes in microseconds and seeds the
	// predictor's EWMA; the full traversal then gets a ~1ms budget it
	// cannot meet.
	getJSON(t, hs.URL+"/query?graph=path&algo=bfs&source=99998", http.StatusOK, nil)

	var body struct {
		Error   string        `json:"error"`
		Partial bool          `json:"partial"`
		Result  serve.Payload `json:"result"`
	}
	getJSON(t, hs.URL+"/query?graph=path&algo=bfs&source=0", serve.StatusBudgetExceeded, &body)
	if !body.Partial {
		t.Error("budget response not marked partial")
	}
	if body.Result.Reached == 0 {
		t.Error("budget response carries no partial progress")
	}
	if !strings.Contains(body.Error, "budget") {
		t.Errorf("budget response error %q does not name the budget", body.Error)
	}
}

// TestHTTPClientQuota: the X-Client-ID header keys per-client quotas; an
// over-quota client sheds with 429 and a refill-derived Retry-After while
// anonymous traffic keeps serving.
func TestHTTPClientQuota(t *testing.T) {
	hs, _ := newTestServer(t, serve.Config{
		Workers: 1, QuotaRate: 0.001, QuotaBurst: 1,
	}, pathGraph(t, 1000))

	ask := func(clientID string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, hs.URL+"/query?graph=path&algo=bfs", nil)
		if clientID != "" {
			req.Header.Set("X-Client-ID", clientID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := ask("dave"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first query: %d, want 200", resp.StatusCode)
	}
	resp := ask("dave")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota query: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("quota 429 missing Retry-After")
	}
	if resp := ask(""); resp.StatusCode != http.StatusOK {
		t.Errorf("anonymous query after quota shed: %d, want 200", resp.StatusCode)
	}
}

func TestParseRequestForms(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/query?graph=kron&algo=sssp&source=7&timeout=2s&full=true", nil)
	req, err := parseRequest(r)
	if err != nil {
		t.Fatal(err)
	}
	want := serve.Request{Graph: "kron", Algo: "sssp", Source: 7, Timeout: 2 * time.Second, Full: true}
	if req != want {
		t.Fatalf("parseRequest = %+v, want %+v", req, want)
	}

	body, _ := json.Marshal(want)
	r = httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	r.Header.Set("Content-Type", "application/json")
	req, err = parseRequest(r)
	if err != nil {
		t.Fatal(err)
	}
	if req != want {
		t.Fatalf("parseRequest POST = %+v, want %+v", req, want)
	}

	r = httptest.NewRequest(http.MethodPost, "/query", strings.NewReader("{not json"))
	r.Header.Set("Content-Type", "application/json")
	if _, err := parseRequest(r); err == nil {
		t.Fatal("malformed body accepted")
	}
}

// TestHTTPLifecycleEndpoints drives the serving lifecycle over the wire:
// degraded start with a failing source, liveness vs readiness split,
// per-graph status in /graphs, admin reload (method-gated, 207 on
// rollback, 200 on recovery), and the /metrics lifecycle counters.
func TestHTTPLifecycleEndpoints(t *testing.T) {
	var loadErr atomic.Pointer[string]
	msg := "fixture corrupt"
	loadErr.Store(&msg)
	sources := []serve.GraphSource{
		{Name: "good", Load: func() (*serve.Graph, error) {
			m, err := harness.LoadGraph("", "kron", 6)
			if err != nil {
				return nil, err
			}
			return serve.NewGraph("good", m), nil
		}},
		{Name: "flaky", Load: func() (*serve.Graph, error) {
			if e := loadErr.Load(); e != nil {
				return nil, errors.New(*e)
			}
			m, err := harness.LoadGraph("", "kron", 7)
			if err != nil {
				return nil, err
			}
			return serve.NewGraph("flaky", m), nil
		}},
	}
	srv, err := serve.NewFromSources(serve.Config{Workers: 2, DegradedStart: true}, sources)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(newHandler(srv, log.New(io.Discard, "", 0)))
	defer func() {
		hs.Close()
		srv.Close()
	}()

	// Liveness holds while degraded; readiness does not.
	var health struct{ Mode string }
	getJSON(t, hs.URL+"/healthz", http.StatusOK, &health)
	if health.Mode != "degraded" {
		t.Errorf("healthz mode %q, want degraded", health.Mode)
	}
	var ready struct {
		Ready  bool
		Graphs []serve.GraphInfo
	}
	getJSON(t, hs.URL+"/readyz", http.StatusServiceUnavailable, &ready)
	if ready.Ready || len(ready.Graphs) != 2 {
		t.Errorf("readyz while degraded: %+v", ready)
	}

	// The valid subset serves; the failed graph answers 503.
	getJSON(t, hs.URL+"/query?graph=good&algo=bfs", http.StatusOK, nil)
	getJSON(t, hs.URL+"/query?graph=flaky&algo=bfs", http.StatusServiceUnavailable, nil)

	var graphs struct {
		Degraded bool
		Graphs   []serve.GraphInfo
	}
	getJSON(t, hs.URL+"/graphs", http.StatusOK, &graphs)
	if !graphs.Degraded {
		t.Error("graphs listing does not report degraded")
	}
	for _, gi := range graphs.Graphs {
		if gi.Name == "flaky" && (gi.Status != serve.GraphFailed || !strings.Contains(gi.Error, "fixture corrupt")) {
			t.Errorf("flaky graph info %+v, want failed with reason", gi)
		}
	}

	// Reload is POST-only; while the source stays broken it reports 207.
	resp, err := http.Get(hs.URL + "/admin/reload")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/reload: %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(hs.URL+"/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep serve.ReloadReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMultiStatus || rep.Failed != 1 || rep.OK != 1 {
		t.Fatalf("broken reload: status %d report %+v, want 207 with 1 ok / 1 failed", resp.StatusCode, rep)
	}

	// Fix the source: reload recovers, readiness flips, mode returns.
	loadErr.Store(nil)
	resp, err = http.Post(hs.URL+"/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	rep = serve.ReloadReport{}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Failed != 0 || rep.OK != 2 {
		t.Fatalf("recovery reload: status %d report %+v, want 200 with 2 ok", resp.StatusCode, rep)
	}
	getJSON(t, hs.URL+"/readyz", http.StatusOK, &ready)
	getJSON(t, hs.URL+"/healthz", http.StatusOK, &health)
	if health.Mode != "serving" {
		t.Errorf("healthz mode after recovery %q, want serving", health.Mode)
	}
	getJSON(t, hs.URL+"/query?graph=flaky&algo=bfs", http.StatusOK, nil)

	var metrics serve.MetricsSnapshot
	getJSON(t, hs.URL+"/metrics", http.StatusOK, &metrics)
	lc := metrics.Lifecycle
	if lc.Degraded || lc.Reloads != 3 || lc.ReloadFailures != 1 {
		t.Errorf("lifecycle counters %+v, want healthy with 3 reloads / 1 failure", lc)
	}
	if lc.SnapshotsInstalled == 0 || len(lc.Graphs) != 2 {
		t.Errorf("lifecycle snapshot surface %+v", lc)
	}
}

func TestResolveModelDegrades(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	m, err := resolveModel(logger, "", false)
	if err != nil || m != nil {
		t.Fatalf("no profile: model %v err %v, want nil/nil", m, err)
	}
	m, err = resolveModel(logger, t.TempDir()+"/missing.json", false)
	if err != nil || m != nil {
		t.Fatalf("missing profile: model %v err %v, want nil/nil (lenient)", m, err)
	}
}

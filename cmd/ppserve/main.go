// Command ppserve is the long-lived push-pull graph-query service: it
// loads one or more graphs, loads (or fits) the host-keyed PPTUNE
// cost-model profile, and serves concurrent BFS / ParentBFS / SSSP /
// PageRank / CC queries over HTTP+JSON from a self-healing worker pool
// with cost-aware admission (deadline-feasibility sheds, per-client
// quotas, class-based earliest-deadline-first scheduling, per-query
// execution budgets), refcounted graph snapshots, validated hot reload,
// and live metrics.
//
// Usage:
//
//	ppserve -graph kron:12 -graph web=file:web.mtx \
//	        -tune PPTUNE_linux_amd64.json -workers 8 -addr :8080
//
// Query it:
//
//	curl 'localhost:8080/query?graph=kron&algo=bfs&source=0'
//	curl 'localhost:8080/metrics'
//
// Reload the -graph specs without restarting (file-backed graphs re-read
// from disk; a graph that fails to load or validate rolls back to its
// old snapshot while the rest swap):
//
//	kill -HUP $(pidof ppserve)          # or:
//	curl -X POST localhost:8080/admin/reload
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pushpull/internal/calibrate"
	"pushpull/internal/core"
	"pushpull/internal/harness"
	"pushpull/internal/serve"
)

// graphFlags collects repeatable -graph specs.
type graphFlags []string

func (g *graphFlags) String() string { return strings.Join(*g, ",") }
func (g *graphFlags) Set(s string) error {
	*g = append(*g, s)
	return nil
}

func main() {
	var specs graphFlags
	flag.Var(&specs, "graph", "graph to serve: name=file:path.mtx | name=dataset:scale | dataset[:scale] (repeatable; default kron:-scale)")
	scale := flag.Int("scale", 12, "default log2 vertex count for dataset graph specs")
	addr := flag.String("addr", ":8080", "listen address")
	tune := flag.String("tune", "", "cost-model profile to load (PPTUNE_<os>_<arch>.json); missing/invalid profiles degrade to untuned")
	calib := flag.Bool("calibrate", false, "fit a quick cost model at startup instead of loading -tune (writes to -tune when set)")
	workers := flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (default 4x workers)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query deadline")
	degraded := flag.Bool("degraded-start", true, "start serving the valid subset when some -graph specs fail to load (failures report via /graphs and /readyz); off = any failure aborts startup")
	batchAging := flag.Duration("batch-aging", 0, "anti-starvation bound for batch-class queries: one batch claim per bound even under interactive load (default 3s)")
	budgetFactor := flag.Float64("budget-factor", 0, "execution budget as a multiple of each query's predicted run time (default 8; negative disables budgets)")
	minBudget := flag.Duration("min-budget", 0, "floor on per-query execution budgets (default 1s)")
	maxBudget := flag.Duration("max-budget", 0, "server-wide cap on per-query execution budgets (default the max timeout)")
	quotaRate := flag.Float64("quota-rate", 0, "per-client admission rate in queries/s for requests carrying X-Client-ID (0 disables)")
	quotaBurst := flag.Float64("quota-burst", 0, "per-client admission burst (token bucket capacity; default 2x rate)")
	quotaInflight := flag.Int("quota-inflight", 0, "max concurrently admitted queries per client id (0 disables)")
	flag.Parse()

	cfg := serve.Config{
		Workers:              *workers,
		QueueDepth:           *queue,
		DefaultTimeout:       *timeout,
		DegradedStart:        *degraded,
		BatchAgingBound:      *batchAging,
		BudgetFactor:         *budgetFactor,
		MinBudget:            *minBudget,
		MaxBudget:            *maxBudget,
		QuotaRate:            *quotaRate,
		QuotaBurst:           *quotaBurst,
		MaxInflightPerClient: *quotaInflight,
	}
	logger := log.New(os.Stderr, "ppserve: ", log.LstdFlags)
	if err := run(logger, specs, *scale, *addr, *tune, *calib, cfg); err != nil {
		logger.Fatal(err)
	}
}

// graphSources turns the -graph specs into reloadable sources: each
// source's Load re-resolves the spec, so file-backed graphs pick up new
// on-disk data at every reload.
func graphSources(logger *log.Logger, specs []string, scale int) ([]serve.GraphSource, error) {
	sources := make([]serve.GraphSource, 0, len(specs))
	for _, spec := range specs {
		gs, err := harness.ParseGraphSpec(spec, scale)
		if err != nil {
			return nil, err
		}
		spec := spec // the closure logs the original flag text
		sources = append(sources, serve.GraphSource{
			Name: gs.Name,
			Load: func() (*serve.Graph, error) {
				start := time.Now()
				m, err := gs.Load()
				if err != nil {
					return nil, fmt.Errorf("-graph %s: %w", spec, err)
				}
				logger.Printf("loaded graph %q: %d vertices, %d edges (%.1fs)",
					gs.Name, m.NRows(), m.NVals(), time.Since(start).Seconds())
				return serve.NewGraph(gs.Name, m), nil
			},
		})
	}
	return sources, nil
}

func run(logger *log.Logger, specs []string, scale int, addr, tune string, calib bool, cfg serve.Config) error {
	if len(specs) == 0 {
		specs = []string{"kron"}
	}
	sources, err := graphSources(logger, specs, scale)
	if err != nil {
		return err
	}

	model, err := resolveModel(logger, tune, calib)
	if err != nil {
		return err
	}
	cfg.Model = model

	srv, err := serve.NewFromSources(cfg, sources)
	if err != nil {
		return err
	}
	for _, gi := range srv.GraphInfos() {
		if gi.Status != serve.GraphServing {
			logger.Printf("graph %q FAILED to load (serving degraded; fix and SIGHUP to retry): %s", gi.Name, gi.Error)
		}
	}
	if srv.Degraded() {
		logger.Printf("started DEGRADED: readiness (/readyz) reports 503 until every graph serves")
	}

	hs := &http.Server{Addr: addr, Handler: newHandler(srv, logger)}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Printf("serving on %s (%d graphs, algorithms: %s)",
		ln.Addr(), len(sources), strings.Join(serve.AlgorithmNames(), " "))

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
loop:
	for {
		select {
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				logger.Printf("received SIGHUP, reloading graph specs")
				logReload(logger, "sighup reload", srv.Reload(context.Background()))
				continue
			}
			logger.Printf("received %s, shutting down", sig)
			break loop
		case err := <-errc:
			srv.Close()
			return err
		}
	}

	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	srv.Close()
	logger.Printf("drained; bye")
	return nil
}

// resolveModel produces the planner's cost model: a quick startup
// calibration when -calibrate is set, otherwise a lenient load of -tune
// (missing or corrupt profiles degrade to the untuned unit model rather
// than refusing to start — serving beats tuning).
func resolveModel(logger *log.Logger, tune string, calib bool) (*core.CostModel, error) {
	if calib {
		logger.Printf("calibrating cost model (quick)...")
		prof, err := calibrate.Run(calibrate.Options{Quick: true})
		if err != nil {
			return nil, fmt.Errorf("calibrate: %w", err)
		}
		if tune != "" {
			if err := calibrate.Save(tune, prof); err != nil {
				logger.Printf("could not save profile to %s: %v", tune, err)
			} else {
				logger.Printf("saved profile to %s", tune)
			}
		}
		return &prof.Model, nil
	}
	if tune == "" {
		logger.Printf("running untuned (no -tune profile; planner uses unit RAM costs)")
		return nil, nil
	}
	prof := calibrate.LoadLenient(tune, func(format string, args ...any) {
		logger.Printf("-tune: "+format, args...)
	})
	if prof == nil {
		return nil, nil
	}
	logger.Printf("loaded cost-model profile %s", tune)
	return &prof.Model, nil
}

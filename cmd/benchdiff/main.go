// Command benchdiff compares two perf snapshots produced by
// `ppbench -json` (BENCH_<experiment>.json) and fails when a benchmark
// regressed: CI runs it against the previous main build's artifact so the
// perf trajectory is a gate, not just a graph.
//
// Usage:
//
//	benchdiff [-threshold 0.10] [-col ns/op] <baseline> <current>
//
// Baseline and current are either two BENCH_*.json files or two
// directories holding them (matched by file name). Every table with the
// named column is compared row by row, keyed on the row's first cell
// (the benchmark name); a current value exceeding baseline·(1+threshold)
// is a regression. Rows or tables present on only one side are reported
// but never fail the run, and a missing baseline (first build, expired
// artifact) exits 0 so the gate cannot wedge CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

type snapshot struct {
	Experiment string  `json:"experiment"`
	Scale      int     `json:"scale"`
	Tables     []table `json:"tables"`
}

type table struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "allowed relative increase before a row fails")
	col := flag.String("col", "ns/op", "metric column to compare")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] [-col ns/op] <baseline> <current>")
		os.Exit(2)
	}
	base, cur := flag.Arg(0), flag.Arg(1)

	pairs, err := pairFiles(base, cur)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	if len(pairs) == 0 {
		// First build of the trajectory (or an expired artifact): there is
		// nothing to gate on yet. Exit 0 so CI proceeds to upload the fresh
		// snapshot — this run IS the baseline the next run diffs against.
		fmt.Println("benchdiff: seeding baseline — no prior snapshots to compare against; exit 0")
		return
	}
	regressions := 0
	for _, p := range pairs {
		r, err := diffSnapshots(p[0], p[1], *col, *threshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		regressions += r
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

// pairFiles resolves (baseline, current) into matched file pairs. A
// baseline path that does not exist yields no pairs (first run).
func pairFiles(base, cur string) ([][2]string, error) {
	bi, err := os.Stat(base)
	if err != nil {
		// The baseline path not existing is the normal first-build state
		// (the artifact download step warns and continues), not an error.
		fmt.Printf("benchdiff: no baseline at %s\n", base)
		return nil, nil
	}
	ci, err := os.Stat(cur)
	if err != nil {
		return nil, fmt.Errorf("current %s: %w", cur, err)
	}
	if !bi.IsDir() && !ci.IsDir() {
		return [][2]string{{base, cur}}, nil
	}
	if !bi.IsDir() || !ci.IsDir() {
		return nil, fmt.Errorf("baseline and current must both be files or both directories")
	}
	curFiles, err := filepath.Glob(filepath.Join(cur, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var pairs [][2]string
	for _, cf := range curFiles {
		bf := filepath.Join(base, filepath.Base(cf))
		if _, err := os.Stat(bf); err != nil {
			fmt.Printf("benchdiff: %s has no baseline; skipping\n", filepath.Base(cf))
			continue
		}
		pairs = append(pairs, [2]string{bf, cf})
	}
	return pairs, nil
}

func load(path string) (snapshot, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// diffSnapshots compares the metric column of every shared table and
// returns the number of regressed rows.
func diffSnapshots(basePath, curPath, col string, threshold float64) (int, error) {
	base, err := load(basePath)
	if err != nil {
		return 0, err
	}
	cur, err := load(curPath)
	if err != nil {
		return 0, err
	}
	if base.Scale != cur.Scale {
		fmt.Printf("benchdiff: %s: scale changed %d → %d; skipping (not comparable)\n",
			filepath.Base(curPath), base.Scale, cur.Scale)
		return 0, nil
	}
	baseTables := map[string]table{}
	for _, t := range base.Tables {
		baseTables[t.Title] = t
	}
	regressions := 0
	for _, ct := range cur.Tables {
		ci := columnIndex(ct.Headers, col)
		if ci < 0 {
			continue
		}
		bt, ok := baseTables[ct.Title]
		if !ok {
			fmt.Printf("benchdiff: new table %q (no baseline)\n", ct.Title)
			continue
		}
		bi := columnIndex(bt.Headers, col)
		if bi < 0 {
			continue
		}
		baseRows := map[string]float64{}
		for _, r := range bt.Rows {
			if len(r) > bi {
				if v, err := strconv.ParseFloat(strings.TrimSpace(r[bi]), 64); err == nil {
					baseRows[r[0]] = v
				}
			}
		}
		for _, r := range ct.Rows {
			if len(r) <= ci {
				continue
			}
			curV, err := strconv.ParseFloat(strings.TrimSpace(r[ci]), 64)
			if err != nil {
				continue
			}
			baseV, ok := baseRows[r[0]]
			if !ok {
				fmt.Printf("  %s: new row (no baseline), %s %s=%.0f\n", r[0], filepath.Base(curPath), col, curV)
				continue
			}
			if baseV > 0 && curV > baseV*(1+threshold) {
				fmt.Printf("  REGRESSION %s: %s %.0f → %.0f (%+.1f%%)\n",
					r[0], col, baseV, curV, 100*(curV/baseV-1))
				regressions++
			} else {
				fmt.Printf("  %s: %s %.0f → %.0f (%+.1f%%)\n",
					r[0], col, baseV, curV, pctChange(baseV, curV))
			}
		}
	}
	return regressions, nil
}

func pctChange(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (cur/base - 1)
}

func columnIndex(headers []string, col string) int {
	for i, h := range headers {
		if h == col {
			return i
		}
	}
	return -1
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeSnap(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

const baseSnap = `{"experiment":"bench","scale":11,"tables":[
  {"title":"Benchmark","headers":["name","ns/op","B/op","allocs/op"],
   "rows":[["row-nomask","1000","0","0"],["col-nomask","2000","0","0"]]}]}`

func TestDiffDetectsRegression(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	writeSnap(t, dirA, "BENCH_bench.json", baseSnap)
	writeSnap(t, dirB, "BENCH_bench.json",
		`{"experiment":"bench","scale":11,"tables":[
		  {"title":"Benchmark","headers":["name","ns/op","B/op","allocs/op"],
		   "rows":[["row-nomask","1200","0","0"],["col-nomask","2000","0","0"]]}]}`)
	pairs, err := pairFiles(dirA, dirB)
	if err != nil || len(pairs) != 1 {
		t.Fatalf("pairs=%v err=%v", pairs, err)
	}
	n, err := diffSnapshots(pairs[0][0], pairs[0][1], "ns/op", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("regressions=%d want 1 (row-nomask +20%%)", n)
	}
}

func TestDiffWithinThreshold(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	writeSnap(t, dirA, "BENCH_bench.json", baseSnap)
	writeSnap(t, dirB, "BENCH_bench.json",
		`{"experiment":"bench","scale":11,"tables":[
		  {"title":"Benchmark","headers":["name","ns/op","B/op","allocs/op"],
		   "rows":[["row-nomask","1050","0","0"],["col-nomask","1500","0","0"],["new-op","9","0","0"]]}]}`)
	pairs, _ := pairFiles(dirA, dirB)
	n, err := diffSnapshots(pairs[0][0], pairs[0][1], "ns/op", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("regressions=%d want 0 (+5%% is within threshold; new rows never fail)", n)
	}
}

func TestDiffScaleMismatchSkips(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	writeSnap(t, dirA, "BENCH_bench.json", baseSnap)
	writeSnap(t, dirB, "BENCH_bench.json",
		`{"experiment":"bench","scale":12,"tables":[
		  {"title":"Benchmark","headers":["name","ns/op"],"rows":[["row-nomask","99999"]]}]}`)
	pairs, _ := pairFiles(dirA, dirB)
	n, err := diffSnapshots(pairs[0][0], pairs[0][1], "ns/op", 0.10)
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v; scale mismatch must not gate", n, err)
	}
}

func TestMissingBaselineYieldsNoPairs(t *testing.T) {
	dirB := t.TempDir()
	writeSnap(t, dirB, "BENCH_bench.json", baseSnap)
	pairs, err := pairFiles(filepath.Join(dirB, "nonexistent"), dirB)
	if err != nil || pairs != nil {
		t.Fatalf("pairs=%v err=%v; missing baseline must be a clean skip", pairs, err)
	}
}

func TestEmptyBaselineDirSeedsCleanly(t *testing.T) {
	// The artifact download step can leave an existing-but-empty baseline
	// directory (if_no_artifact_found: warn); that is the same seeding
	// state as no directory at all, not a gate failure.
	dirA, dirB := t.TempDir(), t.TempDir()
	writeSnap(t, dirB, "BENCH_bench.json", baseSnap)
	pairs, err := pairFiles(dirA, dirB)
	if err != nil || len(pairs) != 0 {
		t.Fatalf("pairs=%v err=%v; empty baseline dir must yield no pairs and no error", pairs, err)
	}
}

func TestNewExperimentFileHasNoBaselinePair(t *testing.T) {
	// A brand-new experiment (fresh BENCH_*.json name) must not wedge the
	// gate when the baseline predates it; it pairs nothing and seeds on
	// upload.
	dirA, dirB := t.TempDir(), t.TempDir()
	writeSnap(t, dirA, "BENCH_bench.json", baseSnap)
	writeSnap(t, dirB, "BENCH_bench.json", baseSnap)
	writeSnap(t, dirB, "BENCH_newexp.json", baseSnap)
	pairs, err := pairFiles(dirA, dirB)
	if err != nil || len(pairs) != 1 {
		t.Fatalf("pairs=%v err=%v; only the shared file should pair", pairs, err)
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// End-to-end CLI driver tests at a tiny scale: every experiment must
// produce non-empty, well-formed output.

func tinyConfig(buf *bytes.Buffer) config {
	return config{scale: 9, sources: 1, runs: 1, points: 3, out: buf}
}

func TestRunAllExperiments(t *testing.T) {
	for _, exp := range []string{"table1", "fig2", "table2", "table3", "fig5", "fig6", "ablation"} {
		var buf bytes.Buffer
		cfg := tinyConfig(&buf)
		if err := run(exp, cfg); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: empty output", exp)
		}
	}
}

func TestRunComparisonSubset(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.only = []string{"kron"}
	if err := run("table4", cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, col := range []string{"SuiteSparse", "CuSha", "Baseline", "Ligra", "Gunrock", "This Work"} {
		if !strings.Contains(out, col) {
			t.Fatalf("missing column %s in:\n%s", col, out)
		}
	}
	buf.Reset()
	if err := run("fig7", cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "slowdown") {
		t.Fatalf("fig7 output:\n%s", buf.String())
	}
}

func TestRunCSVMode(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.csv = true
	if err := run("table2", cfg); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.Contains(first, ",") {
		t.Fatalf("csv header missing commas: %q", first)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run("nope", tinyConfig(&buf)); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pushpull/internal/calibrate"
)

// End-to-end CLI driver tests at a tiny scale: every experiment must
// produce non-empty, well-formed output.

func tinyConfig(buf *bytes.Buffer) config {
	return config{scale: 9, sources: 1, runs: 1, points: 3, out: buf}
}

func TestRunAllExperiments(t *testing.T) {
	for _, exp := range []string{"table1", "fig2", "table2", "table3", "fig5", "fig6", "ablation"} {
		var buf bytes.Buffer
		cfg := tinyConfig(&buf)
		if err := run(exp, cfg); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: empty output", exp)
		}
	}
}

func TestRunComparisonSubset(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.only = []string{"kron"}
	if err := run("table4", cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, col := range []string{"SuiteSparse", "CuSha", "Baseline", "Ligra", "Gunrock", "This Work"} {
		if !strings.Contains(out, col) {
			t.Fatalf("missing column %s in:\n%s", col, out)
		}
	}
	buf.Reset()
	if err := run("fig7", cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "slowdown") {
		t.Fatalf("fig7 output:\n%s", buf.String())
	}
}

func TestRunCSVMode(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.csv = true
	if err := run("table2", cfg); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.Contains(first, ",") {
		t.Fatalf("csv header missing commas: %q", first)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run("nope", tinyConfig(&buf)); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBenchEmitsJSON(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.scale = 8
	cfg.quick = true // keep the shard sweep at this scale instead of its crossover floor
	cfg.jsonDir = t.TempDir()
	if err := run("bench", cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(cfg.jsonDir, "BENCH_bench.json"))
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Experiment string `json:"experiment"`
		Tables     []struct {
			Title   string     `json:"title"`
			Headers []string   `json:"headers"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatalf("BENCH_bench.json is not valid JSON: %v", err)
	}
	// Bench table, footprint table, direction trace, one decision-quality
	// detail table per graph (kron + uniform), the accuracy summary, then
	// the shard sweep: a sweep table and a per-shard decisions table per
	// graph plus the hybrid-vs-uniform summary.
	if payload.Experiment != "bench" || len(payload.Tables) != 11 {
		t.Fatalf("unexpected payload: experiment=%q tables=%d", payload.Experiment, len(payload.Tables))
	}
	if got := payload.Tables[0].Headers; len(got) != 4 || got[1] != "ns/op" || got[2] != "B/op" {
		t.Fatalf("bench table headers = %v", got)
	}
	// The bitset rows must be present so BENCH_bench.json gates the
	// word-packed paths.
	seen := map[string]bool{}
	for _, row := range payload.Tables[0].Rows {
		seen[row[0]] = true
	}
	for _, name := range []string{"row-mask-bitset-scmp", "col-mask-bitset", "ewise-bool-bitset", "apply-bool-bitset"} {
		if !seen[name] {
			t.Fatalf("bench table is missing the %q row", name)
		}
	}
	// The footprint table records the ≥4× (here 8×) mask shrink.
	if got := payload.Tables[1].Title; !strings.Contains(got, "footprint") {
		t.Fatalf("second table = %q, want the mask footprint table", got)
	}
	if len(payload.Tables[2].Rows) == 0 {
		t.Fatal("direction trace is empty")
	}
	// The trace must carry the planner's evidence: direction and format
	// columns populated on every row.
	for _, row := range payload.Tables[2].Rows {
		if row[1] != "push" && row[1] != "pull" {
			t.Fatalf("bad direction %q in trace", row[1])
		}
		if row[3] != "sparse" && row[3] != "bitmap" && row[3] != "bitset" && row[3] != "dense" {
			t.Fatalf("bad format %q in trace", row[3])
		}
	}
}

func TestRunJSONForTableExperiments(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.jsonDir = t.TempDir()
	if err := run("table2", cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(cfg.jsonDir, "BENCH_table2.json")); err != nil {
		t.Fatalf("table experiment did not write JSON: %v", err)
	}
}

// TestRunCalibrateThenTunedBench drives the whole calibrate → -tune
// workflow through the CLI layer: the calibrate experiment must write a
// loadable profile, and a bench run with the loaded model must emit
// calibrated decision rows (cal-dir populated, accuracy rows present for
// both models).
func TestRunCalibrateThenTunedBench(t *testing.T) {
	dir := t.TempDir()
	profile := filepath.Join(dir, "PPTUNE_test.json")
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.scale = 8
	cfg.quick = true
	cfg.tunePath = profile
	if err := run("calibrate", cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Calibrated cost model") {
		t.Fatalf("calibrate output:\n%s", buf.String())
	}
	prof, err := calibrate.Load(profile)
	if err != nil {
		t.Fatalf("calibrate experiment wrote an unloadable profile: %v", err)
	}

	buf.Reset()
	cfg = tinyConfig(&buf)
	cfg.scale = 8
	cfg.jsonDir = t.TempDir()
	cfg.model = &prof.Model
	if err := run("bench", cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(cfg.jsonDir, "BENCH_bench.json"))
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Tables []struct {
			Title string     `json:"title"`
			Rows  [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatal(err)
	}
	var accuracy map[string]bool
	for _, tbl := range payload.Tables {
		if strings.HasPrefix(tbl.Title, "Decision accuracy") {
			accuracy = map[string]bool{}
			for _, row := range tbl.Rows {
				accuracy[row[0]] = true
			}
		}
		if strings.HasPrefix(tbl.Title, "Decision quality") {
			for _, row := range tbl.Rows {
				if dir := row[6]; dir != "push" && dir != "pull" {
					t.Fatalf("tuned run left cal-dir unpopulated: %v", row)
				}
			}
		}
	}
	for _, key := range []string{"kron/unit", "kron/calibrated", "uniform/unit", "uniform/calibrated"} {
		if !accuracy[key] {
			t.Fatalf("accuracy summary missing %q: %v", key, accuracy)
		}
	}
}

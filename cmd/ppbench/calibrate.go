package main

import (
	"fmt"

	"pushpull/internal/calibrate"
	"pushpull/internal/harness"
)

// calibrateExperiment fits the host's cost-model coefficients from the
// microbenchmark suite and writes the PPTUNE profile the other
// experiments load with -tune. The fitted per-term nanoseconds are also
// emitted as a table (and into BENCH_calibrate.json under -json), so the
// CI trajectory records how the host's coefficients drift across runners.
func calibrateExperiment(cfg config) error {
	scale := cfg.scale
	if scale > 12 {
		// Calibration only needs the kernels past cache effects; the fit
		// quality saturates well before benchmark-sized graphs.
		scale = 12
	}
	prof, err := calibrate.Run(calibrate.Options{Scale: scale, Quick: cfg.quick})
	if err != nil {
		return err
	}
	path := cfg.tunePath
	if path == "" {
		path = calibrate.DefaultName()
	}
	if err := calibrate.Save(path, prof); err != nil {
		return err
	}

	m := prof.Model
	mode := "full"
	if cfg.quick {
		mode = "quick"
	}
	title := fmt.Sprintf("Calibrated cost model — %s/%s, scale=%d (%s, %d observations, rms residual %.2f) → %s",
		prof.OS, prof.Arch, prof.Scale, mode, prof.Observations, prof.ResidualFrac, path)
	return emit(cfg, title,
		[]string{"term", "ns"},
		[][]string{
			{"setup (per op)", harness.F(m.SetupNs)},
			{"scanned row (pull)", harness.F(m.RowNs)},
			{"probed edge, bitmap input", harness.F(m.ProbeBoolNs)},
			{"probed edge, bitset input", harness.F(m.ProbeWordNs)},
			{"probed edge, dense input", harness.F(m.ProbeDenseNs)},
			{"gathered edge (push)", harness.F(m.GatherNs)},
			{"sorted pair unit (push, ×log₂nnz)", harness.F(m.SortNs)},
			{"scattered output (push bitmap-out)", harness.F(m.ScatterNs)},
			{"cleared output slot (push bitmap-out)", harness.F(m.ClearNs)},
		})
}

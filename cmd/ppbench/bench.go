package main

import (
	"fmt"
	"sort"
	"testing"

	"pushpull/algorithms"
	"pushpull/graphblas"
	"pushpull/internal/harness"
)

// benchExperiment is the machine-trackable perf snapshot: ns/op, B/op and
// allocs/op for the four matvec variants and a full direction-optimized
// BFS (via testing.Benchmark, so the numbers are directly comparable with
// `go test -bench`), plus one traced BFS run showing the direction
// planner's per-iteration decisions — chosen direction, frontier size and
// storage format, and the push/pull cost estimates the decision was made
// on. With -json set this lands in BENCH_bench.json, giving CI a perf
// trajectory across PRs.
func benchExperiment(cfg config) error {
	g, err := harness.KronDataset(cfg.scale).Build()
	if err != nil {
		return err
	}
	n := g.NRows()
	sr := graphblas.OrAndBool()

	// Mid-sweep operands, mirroring the Figure 2 setup: frontier at n/8,
	// mask at n/12.
	u := graphblas.NewVector[bool](n)
	for i := 0; i < n; i += 8 {
		_ = u.SetElement(i, true)
	}
	denseU := u.Dup()
	denseU.ToBitmap()
	mask := graphblas.NewVector[bool](n)
	for i := 0; i < n; i += 12 {
		_ = mask.SetElement(i, true)
	}
	mask.ToBitmap()
	// Word-packed twin of the mask, plus a visited-style bitset (dense-ish,
	// the BFS mid-traversal shape) for the complemented-mask pull row.
	bsMask := mask.Dup()
	bsMask.ToBitset()
	visited := graphblas.NewVector[bool](n)
	for i := 0; i < n; i++ {
		if i%3 != 0 {
			_ = visited.SetElement(i, true)
		}
	}
	visited.ToBitset()
	ws := graphblas.NewWorkspace(n, n)
	w := graphblas.NewVector[bool](n)

	type variant struct {
		name string
		run  func() error
	}
	pullDesc := &graphblas.Descriptor{NoAutoConvert: true, Direction: graphblas.ForcePull, Workspace: ws}
	pushDesc := &graphblas.Descriptor{NoAutoConvert: true, Direction: graphblas.ForcePush, Workspace: ws}
	scmpPullDesc := &graphblas.Descriptor{NoAutoConvert: true, Direction: graphblas.ForcePull,
		StructuralComplement: true, StructureOnly: true, Workspace: ws}

	// Unified-pipeline operands: the masked eWise/apply steady state the
	// OpSpec pipeline is responsible for keeping allocation-free.
	ewDesc := &graphblas.Descriptor{Workspace: ws}
	scmpDesc := &graphblas.Descriptor{StructuralComplement: true, Workspace: ws}
	ranks := graphblas.NewVector[float64](n)
	ranks.Fill(1)
	tele := graphblas.NewVector[float64](n)
	tele.Fill(0.15)
	sums := graphblas.NewVector[float64](n)
	fvals := graphblas.NewVector[float64](n)
	for i := 0; i < n; i += 8 {
		_ = fvals.SetElement(i, float64(i))
	}
	fout := graphblas.NewVector[float64](n)
	orOp := func(a, b bool) bool { return a || b }
	andOp := func(a, b bool) bool { return a && b }
	plus := func(a, b float64) float64 { return a + b }
	scale := func(x float64) float64 { return 0.85 * x }
	notOp := func(x bool) bool { return !x }

	// Boolean eWise operand pairs in both dense-pattern layouts, so the
	// bitset rows gate the word-parallel kernels against the []bool
	// baseline.
	boolA := graphblas.NewVector[bool](n)
	boolB := graphblas.NewVector[bool](n)
	for i := 0; i < n; i++ {
		_ = boolA.SetElement(i, i%2 == 0)
		_ = boolB.SetElement(i, i%3 == 0)
	}
	boolABitmap, boolBBitmap := boolA.Dup(), boolB.Dup()
	boolABitmap.ToBitmap()
	boolBBitmap.ToBitmap()
	boolABitset, boolBBitset := boolA.Dup(), boolB.Dup()
	boolABitset.ToBitset()
	boolBBitset.ToBitset()
	boolOut := graphblas.NewVector[bool](n)
	variants := []variant{
		{"row-nomask", func() error {
			_, err := graphblas.MxV(w, (*graphblas.Vector[bool])(nil), nil, sr, g, denseU, pullDesc)
			return err
		}},
		{"row-mask", func() error {
			_, err := graphblas.MxV(w, mask, nil, sr, g, denseU, pullDesc)
			return err
		}},
		{"col-nomask", func() error {
			_, err := graphblas.MxV(w, (*graphblas.Vector[bool])(nil), nil, sr, g, u, pushDesc)
			return err
		}},
		{"col-mask", func() error {
			_, err := graphblas.MxV(w, mask, nil, sr, g, u, pushDesc)
			return err
		}},
		{"ewise-add-masked", func() error {
			// w⟨m⟩ = u ⊕ f: sparse∘sparse union under a bitmap mask.
			return graphblas.Into(w).Mask(mask).With(ewDesc).EWiseAdd(orOp, u, u)
		}},
		{"ewise-add-dense", func() error {
			// Dense∘dense union: the probe-free value-array loop.
			return graphblas.Into(sums).With(ewDesc).EWiseAdd(plus, tele, ranks)
		}},
		{"apply-dense", func() error {
			// Apply over a PageRank-style dense vector: bitmap-out path,
			// no sparse round-trip.
			return graphblas.Into(sums).With(ewDesc).Apply(scale, ranks)
		}},
		{"apply-masked-scmp", func() error {
			// f⟨¬m⟩ = f: the BFS post-filter as a masked identity apply.
			return graphblas.Into(fout).Mask(mask).With(scmpDesc).Apply(scale, fvals)
		}},
		{"row-mask-bitset-scmp", func() error {
			// The paper's headline masked pull against a word-packed
			// ¬visited mask: scmp flips 64 rows per word.
			_, err := graphblas.MxV(w, visited, nil, sr, g, denseU, scmpPullDesc)
			return err
		}},
		{"col-mask-bitset", func() error {
			// Push with the bitset mask applied as the post-merge filter.
			_, err := graphblas.MxV(w, bsMask, nil, sr, g, u, pushDesc)
			return err
		}},
		{"ewise-bool-dense", func() error {
			// Baseline: dense∘dense Boolean AND, one op call per element.
			return graphblas.Into(boolOut).With(ewDesc).EWiseMult(andOp, boolABitmap, boolBBitmap)
		}},
		{"ewise-bool-bitset", func() error {
			// Word-parallel twin: truth-tabled AND over packed words, 64
			// elements per step.
			return graphblas.Into(boolOut).With(ewDesc).EWiseMult(andOp, boolABitset, boolBBitset)
		}},
		{"ewise-bool-bitset-or", func() error {
			return graphblas.Into(boolOut).With(ewDesc).EWiseAdd(orOp, boolABitset, boolBBitset)
		}},
		{"apply-bool-bitset", func() error {
			// Truth-tabled NOT over packed words.
			return graphblas.Into(boolOut).With(ewDesc).Apply(notOp, boolABitset)
		}},
		{"bfs-full", func() error {
			// Runs under -tune's calibrated model when one is loaded, so
			// the CI regression gate tracks the calibrated planner.
			_, err := algorithms.BFS(g, 0, algorithms.BFSOptions{Model: cfg.model})
			return err
		}},
	}
	// Each variant runs -count times and reports the run with the median
	// ns/op, de-flaking the CI regression gate without raising the floor a
	// best-of-N would hide behind.
	count := cfg.count
	if count < 1 {
		count = 1
	}
	rows := make([][]string, 0, len(variants))
	for _, v := range variants {
		v := v
		results := make([]testing.BenchmarkResult, 0, count)
		for rep := 0; rep < count; rep++ {
			results = append(results, testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := v.run(); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
		sort.Slice(results, func(i, j int) bool { return results[i].NsPerOp() < results[j].NsPerOp() })
		r := results[len(results)/2]
		rows = append(rows, []string{
			v.name,
			harness.I(int(r.NsPerOp())),
			harness.I(int(r.AllocedBytesPerOp())),
			harness.I(int(r.AllocsPerOp())),
		})
	}
	title := fmt.Sprintf("Benchmark — matvec variants and BFS (kron scale=%d, median of %d)", cfg.scale, count)
	if err := emit(cfg, title, []string{"name", "ns/op", "B/op", "allocs/op"}, rows); err != nil {
		return err
	}

	// Mask storage footprint: the visited-mask bytes a masked pull probes,
	// per representation (the ≥4× claim is 8× here — one bit vs one byte).
	bitmapBytes := n
	bitsetBytes := 8 * ((n + 63) / 64)
	if err := emit(cfg, "Visited-mask storage footprint (bytes)",
		[]string{"representation", "bytes", "ratio"},
		[][]string{
			{"bitmap ([]bool)", harness.I(bitmapBytes), "1.0"},
			{"bitset ([]uint64)", harness.I(bitsetBytes), harness.F(float64(bitmapBytes) / float64(bitsetBytes))},
		}); err != nil {
		return err
	}

	// Per-iteration direction trace of one planned BFS: the planner's cost
	// estimates next to what it chose and what format the frontier landed
	// in. Under -tune the costs are the calibrated model's ns estimates
	// and predicted-ns/measured-ns witness the feedback loop's error.
	var trace [][]string
	if _, err := algorithms.BFS(g, 0, algorithms.BFSOptions{Model: cfg.model, Trace: func(s algorithms.IterStats) {
		trace = append(trace, []string{
			harness.I(s.Iteration),
			s.Direction.String(),
			harness.I(s.FrontierNNZ),
			s.FrontierFormat.String(),
			harness.F(s.PushCost),
			harness.F(s.PullCost),
			harness.F(s.MaskDensity),
			harness.F(s.PredictedNs),
			harness.F(s.MeasuredNs),
			harness.F(float64(s.Duration.Nanoseconds()) / 1e6),
		})
	}}); err != nil {
		return err
	}
	if err := emit(cfg, "Direction trace — planned BFS iterations",
		[]string{"iter", "direction", "frontier", "format", "push-cost", "pull-cost", "mask-density", "predicted-ns", "measured-ns", "ms"}, trace); err != nil {
		return err
	}
	if err := decisionQualityTables(cfg); err != nil {
		return err
	}
	return shardSweepTables(cfg)
}

// decisionQualityTables replays a small-scale BFS per graph with *both*
// kernels measured at every level and reports how often each cost model
// scheduled the measured-faster one — the planner's accuracy, tracked in
// BENCH_bench.json next to the ns/op rows.
func decisionQualityTables(cfg config) error {
	scale := cfg.scale
	if scale > 12 {
		// Both kernels run at every level; keep the replay small.
		scale = 12
	}
	reports, err := harness.DecisionQuality(scale, cfg.model)
	if err != nil {
		return err
	}
	summary := make([][]string, 0, 2*len(reports))
	for _, rep := range reports {
		var detail [][]string
		for _, r := range rep.Rows {
			calDir, calGood := "—", "—"
			if cfg.model != nil {
				calDir, calGood = r.CalDir.String(), boolMark(r.CalGood)
			}
			detail = append(detail, []string{
				harness.I(r.Iteration), harness.I(r.FrontierNNZ),
				harness.F(r.PushMS), harness.F(r.PullMS),
				r.UnitDir.String(), boolMark(r.UnitGood), calDir, calGood,
			})
		}
		if err := emit(cfg, fmt.Sprintf("Decision quality — %s (scale=%d, both kernels measured per iteration)", rep.Graph, scale),
			[]string{"iter", "frontier", "push-ms", "pull-ms", "unit-dir", "unit-good", "cal-dir", "cal-good"}, detail); err != nil {
			return err
		}
		summary = append(summary, []string{rep.Graph + "/unit", harness.F(rep.UnitAccuracy)})
		if cfg.model != nil {
			summary = append(summary, []string{rep.Graph + "/calibrated", harness.F(rep.CalAccuracy)})
		}
	}
	return emit(cfg, "Decision accuracy — fraction of iterations scheduled on the measured-faster kernel",
		[]string{"graph/model", "accuracy"}, summary)
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

package main

import (
	"fmt"
	"testing"

	"pushpull/algorithms"
	"pushpull/graphblas"
	"pushpull/internal/harness"
)

// benchExperiment is the machine-trackable perf snapshot: ns/op, B/op and
// allocs/op for the four matvec variants and a full direction-optimized
// BFS (via testing.Benchmark, so the numbers are directly comparable with
// `go test -bench`), plus one traced BFS run showing the direction
// planner's per-iteration decisions — chosen direction, frontier size and
// storage format, and the push/pull cost estimates the decision was made
// on. With -json set this lands in BENCH_bench.json, giving CI a perf
// trajectory across PRs.
func benchExperiment(cfg config) error {
	g, err := harness.KronDataset(cfg.scale).Build()
	if err != nil {
		return err
	}
	n := g.NRows()
	sr := graphblas.OrAndBool()

	// Mid-sweep operands, mirroring the Figure 2 setup: frontier at n/8,
	// mask at n/12.
	u := graphblas.NewVector[bool](n)
	for i := 0; i < n; i += 8 {
		_ = u.SetElement(i, true)
	}
	denseU := u.Dup()
	denseU.ToBitmap()
	mask := graphblas.NewVector[bool](n)
	for i := 0; i < n; i += 12 {
		_ = mask.SetElement(i, true)
	}
	mask.ToBitmap()
	ws := graphblas.NewWorkspace(n, n)
	w := graphblas.NewVector[bool](n)

	type variant struct {
		name string
		run  func() error
	}
	pullDesc := &graphblas.Descriptor{NoAutoConvert: true, Direction: graphblas.ForcePull, Workspace: ws}
	pushDesc := &graphblas.Descriptor{NoAutoConvert: true, Direction: graphblas.ForcePush, Workspace: ws}

	// Unified-pipeline operands: the masked eWise/apply steady state the
	// OpSpec pipeline is responsible for keeping allocation-free.
	ewDesc := &graphblas.Descriptor{Workspace: ws}
	scmpDesc := &graphblas.Descriptor{StructuralComplement: true, Workspace: ws}
	ranks := graphblas.NewVector[float64](n)
	ranks.Fill(1)
	tele := graphblas.NewVector[float64](n)
	tele.Fill(0.15)
	sums := graphblas.NewVector[float64](n)
	fvals := graphblas.NewVector[float64](n)
	for i := 0; i < n; i += 8 {
		_ = fvals.SetElement(i, float64(i))
	}
	fout := graphblas.NewVector[float64](n)
	orOp := func(a, b bool) bool { return a || b }
	plus := func(a, b float64) float64 { return a + b }
	scale := func(x float64) float64 { return 0.85 * x }
	variants := []variant{
		{"row-nomask", func() error {
			_, err := graphblas.MxV(w, (*graphblas.Vector[bool])(nil), nil, sr, g, denseU, pullDesc)
			return err
		}},
		{"row-mask", func() error {
			_, err := graphblas.MxV(w, mask, nil, sr, g, denseU, pullDesc)
			return err
		}},
		{"col-nomask", func() error {
			_, err := graphblas.MxV(w, (*graphblas.Vector[bool])(nil), nil, sr, g, u, pushDesc)
			return err
		}},
		{"col-mask", func() error {
			_, err := graphblas.MxV(w, mask, nil, sr, g, u, pushDesc)
			return err
		}},
		{"ewise-add-masked", func() error {
			// w⟨m⟩ = u ⊕ f: sparse∘sparse union under a bitmap mask.
			return graphblas.Into(w).Mask(mask).With(ewDesc).EWiseAdd(orOp, u, u)
		}},
		{"ewise-add-dense", func() error {
			// Dense∘dense union: the probe-free value-array loop.
			return graphblas.Into(sums).With(ewDesc).EWiseAdd(plus, tele, ranks)
		}},
		{"apply-dense", func() error {
			// Apply over a PageRank-style dense vector: bitmap-out path,
			// no sparse round-trip.
			return graphblas.Into(sums).With(ewDesc).Apply(scale, ranks)
		}},
		{"apply-masked-scmp", func() error {
			// f⟨¬m⟩ = f: the BFS post-filter as a masked identity apply.
			return graphblas.Into(fout).Mask(mask).With(scmpDesc).Apply(scale, fvals)
		}},
		{"bfs-full", func() error {
			_, err := algorithms.BFS(g, 0, algorithms.BFSOptions{})
			return err
		}},
	}
	rows := make([][]string, 0, len(variants))
	for _, v := range variants {
		v := v
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := v.run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		rows = append(rows, []string{
			v.name,
			harness.I(int(r.NsPerOp())),
			harness.I(int(r.AllocedBytesPerOp())),
			harness.I(int(r.AllocsPerOp())),
		})
	}
	title := fmt.Sprintf("Benchmark — matvec variants and BFS (kron scale=%d)", cfg.scale)
	if err := emit(cfg, title, []string{"name", "ns/op", "B/op", "allocs/op"}, rows); err != nil {
		return err
	}

	// Per-iteration direction trace of one planned BFS: the planner's cost
	// estimates next to what it chose and what format the frontier landed
	// in.
	var trace [][]string
	if _, err := algorithms.BFS(g, 0, algorithms.BFSOptions{Trace: func(s algorithms.IterStats) {
		trace = append(trace, []string{
			harness.I(s.Iteration),
			s.Direction.String(),
			harness.I(s.FrontierNNZ),
			s.FrontierFormat.String(),
			harness.F(s.PushCost),
			harness.F(s.PullCost),
			harness.F(float64(s.Duration.Nanoseconds()) / 1e6),
		})
	}}); err != nil {
		return err
	}
	return emit(cfg, "Direction trace — planned BFS iterations",
		[]string{"iter", "direction", "frontier", "format", "push-cost", "pull-cost", "ms"}, trace)
}

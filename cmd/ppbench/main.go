// Command ppbench regenerates every table and figure of the paper's
// evaluation from the synthetic stand-in datasets.
//
// Usage:
//
//	ppbench [flags] <experiment>
//
// Experiments:
//
//	table1    RAM-model access counts of the 4 matvec variants (validates Table 1)
//	fig2      runtime sweep of the 4 matvec variants, random vectors (Figure 2)
//	table2    cumulative optimization impact on kron (Table 2)
//	table3    dataset description table (Table 3)
//	fig5      per-iteration frontier counts and push/pull runtimes (Figure 5)
//	fig6      per-iteration runtime vs size from many sources (Figure 6)
//	table4    framework comparison: runtime and MTEPS (the table in Figure 7)
//	fig7      slowdown vs Gunrock, derived from table4 (Figure 7 chart)
//	ablation  design-choice ablation: merge strategy, mask amortization, α sweep
//	bench     ns/op, B/op, allocs/op for the matvec variants and BFS, a
//	          per-iteration direction trace (planner costs, frontier format)
//	          and the decision-quality table (fraction of BFS iterations
//	          where each cost model picked the measured-faster kernel)
//	calibrate fit the host's per-term cost coefficients (ns per gathered
//	          edge, probed edge, scanned row, …) from microbenchmarks and
//	          write the PPTUNE_<os>_<arch>.json profile -tune loads
//	all       everything above in order (bench and calibrate excluded; run
//	          them explicitly)
//
// Flags:
//
//	-scale N    log2 of the base vertex count (default 14)
//	-sources N  BFS roots per measurement (default 10, paper uses 10-1000)
//	-runs N     timed repetitions per root (default 3)
//	-count N    bench experiment: repetitions per variant, median reported
//	            (default 1; CI uses 3 to de-flake the regression gate)
//	-points N   sweep points for table1/fig2 (default 8)
//	-datasets s comma-separated dataset subset for table4/fig7
//	-tune PATH  calibrate: where to write the fitted profile; every other
//	            experiment: load the profile and run the planner on its
//	            calibrated cost model instead of unit RAM weights
//	-quick      calibrate: fewer densities/repetitions (the CI smoke mode)
//	-csv        emit CSV instead of aligned tables
//	-json DIR   additionally write each experiment's tables as
//	            machine-readable DIR/BENCH_<experiment>.json, so CI tracks
//	            the perf trajectory across PRs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pushpull/internal/calibrate"
	"pushpull/internal/core"
	"pushpull/internal/harness"
)

func main() {
	var (
		scale    = flag.Int("scale", 14, "log2 of the base vertex count")
		sources  = flag.Int("sources", 10, "BFS roots per measurement")
		runs     = flag.Int("runs", 3, "timed repetitions per root")
		count    = flag.Int("count", 1, "bench experiment: median-of-N repetitions per variant")
		points   = flag.Int("points", 8, "sweep points for table1/fig2")
		datasets = flag.String("datasets", "", "comma-separated dataset subset for table4/fig7")
		tune     = flag.String("tune", "", "cost-model profile path: written by calibrate, loaded by every other experiment")
		quick    = flag.Bool("quick", false, "calibrate: fewer densities/repetitions")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonDir  = flag.String("json", "", "directory to write BENCH_<experiment>.json files into")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ppbench [flags] <table1|fig2|table2|table3|fig5|fig6|table4|fig7|ablation|bench|calibrate|all>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	cfg := config{
		scale:    *scale,
		sources:  *sources,
		runs:     *runs,
		points:   *points,
		count:    *count,
		quick:    *quick,
		tunePath: *tune,
		csv:      *csv,
		jsonDir:  *jsonDir,
		out:      os.Stdout,
	}
	if *datasets != "" {
		cfg.only = strings.Split(*datasets, ",")
	}
	if *tune != "" && flag.Arg(0) != "calibrate" {
		// Lenient load: a missing or corrupted profile downgrades the run to
		// the unit cost model (with a diagnostic) instead of aborting —
		// tuning is an optimization, not a prerequisite.
		logf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ppbench: -tune: "+format+"\n", args...)
		}
		if prof := calibrate.LoadLenient(*tune, logf); prof != nil {
			cfg.model = &prof.Model
		}
	}
	if err := run(flag.Arg(0), cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ppbench: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	scale, sources, runs, points int
	// count is the bench experiment's median-of-N repetition count.
	count int
	// quick selects the calibrate experiment's smoke mode.
	quick bool
	// tunePath is where calibrate writes its profile (and where -tune
	// loaded the model in cfg.model from for the other experiments).
	tunePath string
	// model is the calibrated cost model loaded via -tune; nil runs the
	// planner on unit RAM weights.
	model   *core.CostModel
	only    []string
	csv     bool
	jsonDir string
	out     io.Writer
	// tables accumulates every emitted table of the current experiment for
	// the -json sink.
	tables *[]jsonTable
}

// jsonTable is one emitted table in the machine-readable BENCH_*.json
// output.
type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

func run(experiment string, cfg config) error {
	if experiment == "all" {
		for _, e := range []string{"table1", "fig2", "table2", "table3", "fig5", "fig6", "table4", "fig7", "ablation"} {
			if err := run(e, cfg); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
		return nil
	}
	if cfg.jsonDir != "" {
		cfg.tables = &[]jsonTable{}
	}
	var err error
	switch experiment {
	case "table1":
		err = table1(cfg)
	case "fig2":
		err = fig2(cfg)
	case "table2":
		err = table2(cfg)
	case "table3":
		err = table3(cfg)
	case "fig5":
		err = fig5(cfg)
	case "fig6":
		err = fig6(cfg)
	case "table4":
		err = table4(cfg)
	case "fig7":
		err = fig7(cfg)
	case "ablation":
		err = ablation(cfg)
	case "bench":
		err = benchExperiment(cfg)
	case "calibrate":
		err = calibrateExperiment(cfg)
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	if err == nil && cfg.tables != nil {
		err = writeJSON(cfg, experiment)
	}
	return err
}

// writeJSON persists the experiment's accumulated tables as
// BENCH_<experiment>.json under cfg.jsonDir.
func writeJSON(cfg config, experiment string) error {
	payload := struct {
		Experiment string      `json:"experiment"`
		Scale      int         `json:"scale"`
		Tables     []jsonTable `json:"tables"`
	}{Experiment: experiment, Scale: cfg.scale, Tables: *cfg.tables}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(cfg.jsonDir, "BENCH_"+experiment+".json")
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func emit(cfg config, title string, headers []string, rows [][]string) error {
	if cfg.tables != nil {
		*cfg.tables = append(*cfg.tables, jsonTable{Title: title, Headers: headers, Rows: rows})
	}
	if cfg.csv {
		return harness.RenderCSV(cfg.out, headers, rows)
	}
	return harness.RenderTable(cfg.out, title, headers, rows)
}

func microRows(rep *harness.MicroReport) [][]string {
	rows := make([][]string, 0, len(rep.Points))
	for _, p := range rep.Points {
		rows = append(rows, []string{
			harness.I(p.NNZ),
			harness.F(p.RowNoMask), harness.F(p.RowMask),
			harness.F(p.ColNoMask), harness.F(p.ColMask),
		})
	}
	return rows
}

func table1(cfg config) error {
	rep, err := harness.MicroSweep(cfg.scale, cfg.points, true)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Table 1 validation — RAM-model accesses on %s\n"+
		"(expected: row-nomask flat O(dM); row-mask O(d·nnz(m)); col O(d·nnz(f)·log nnz(f)))", rep.Matrix)
	headers := []string{"nnz", "row-nomask", "row-mask", "col-nomask", "col-mask"}
	if err := emit(cfg, title, headers, microRows(rep)); err != nil {
		return err
	}
	growth := [][]string{}
	for _, k := range []string{"row-nomask", "row-mask", "col-nomask", "col-mask"} {
		growth = append(growth, []string{k, harness.F(rep.Growth[k])})
	}
	return emit(cfg, "Endpoint growth ratios (≈1 = flat)", []string{"variant", "growth"}, growth)
}

func fig2(cfg config) error {
	rep, err := harness.MicroSweep(cfg.scale, cfg.points, false)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Figure 2 — matvec runtime (ms) vs nnz, random vectors, %s", rep.Matrix)
	headers := []string{"nnz", "row-nomask-ms", "row-mask-ms", "col-nomask-ms", "col-mask-ms"}
	return emit(cfg, title, headers, microRows(rep))
}

func table2(cfg config) error {
	rows, err := harness.Table2(cfg.scale, cfg.sources, cfg.runs)
	if err != nil {
		return err
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		speedup := "—"
		if r.Speedup > 0 {
			speedup = harness.F(r.Speedup) + "x"
		}
		out = append(out, []string{r.Optimization, harness.F(r.GTEPS), harness.F(r.MeanMS), speedup})
	}
	return emit(cfg, fmt.Sprintf("Table 2 — cumulative optimization impact (kron scale=%d, %d sources)", cfg.scale, cfg.sources),
		[]string{"Optimization", "GTEPS", "mean ms", "speedup"}, out)
}

func table3(cfg config) error {
	rows, err := harness.Table3(cfg.scale)
	if err != nil {
		return err
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Name, harness.I(r.Vertices), harness.I(r.Edges),
			harness.I(r.MaxDegree), harness.F(r.AvgDegree), harness.I(r.Diameter), r.Kind,
		})
	}
	return emit(cfg, fmt.Sprintf("Table 3 — dataset stand-ins (scale=%d)", cfg.scale),
		[]string{"Dataset", "Vertices", "Edges", "MaxDeg", "AvgDeg", "Diameter", "Type"}, out)
}

func fig5(cfg config) error {
	rows, err := harness.Fig5(cfg.scale)
	if err != nil {
		return err
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			harness.I(r.Iteration), harness.I(r.FrontierNNZ), harness.I(r.UnvisitedNNZ),
			harness.F(r.PushMS), harness.F(r.PullMS),
		})
	}
	return emit(cfg, fmt.Sprintf("Figure 5 — per-iteration frontier counts and kernel runtimes (kron scale=%d)", cfg.scale),
		[]string{"iter", "frontier", "unvisited", "push-ms", "pull-ms"}, out)
}

func fig6(cfg config) error {
	pts, err := harness.Fig6(cfg.scale, cfg.sources)
	if err != nil {
		return err
	}
	out := make([][]string, 0, len(pts))
	for _, p := range pts {
		out = append(out, []string{p.Mode, harness.I(p.Source), harness.I(p.Iteration), harness.I(p.NNZ), harness.F(p.MS)})
	}
	return emit(cfg, fmt.Sprintf("Figure 6 — per-iteration (size, runtime) scatter (kron scale=%d, %d sources)", cfg.scale, cfg.sources),
		[]string{"mode", "source", "iter", "nnz", "ms"}, out)
}

func table4(cfg config) error {
	rows, err := harness.Compare(cfg.scale, cfg.sources, cfg.runs, cfg.only)
	if err != nil {
		return err
	}
	headers := append([]string{"Dataset"}, harness.FrameworkOrder...)
	msRows := [][]string{}
	tepsRows := [][]string{}
	for _, r := range rows {
		msRow := []string{r.Dataset}
		tepsRow := []string{r.Dataset}
		for _, name := range harness.FrameworkOrder {
			msRow = append(msRow, harness.F(r.Cells[name].RuntimeMS))
			tepsRow = append(tepsRow, harness.F(r.Cells[name].MTEPS))
		}
		msRows = append(msRows, msRow)
		tepsRows = append(tepsRows, tepsRow)
	}
	if err := emit(cfg, fmt.Sprintf("Figure 7 table — runtime ms, lower is better (scale=%d, %d sources)", cfg.scale, cfg.sources), headers, msRows); err != nil {
		return err
	}
	if err := emit(cfg, "Figure 7 table — edge throughput MTEPS, higher is better", headers, tepsRows); err != nil {
		return err
	}
	gm := harness.GeomeanSpeedups(rows)
	var gmRows [][]string
	for _, name := range harness.FrameworkOrder {
		if name == "This Work" {
			continue
		}
		gmRows = append(gmRows, []string{name, harness.F(gm[name]) + "x"})
	}
	return emit(cfg, "Geomean speedup of This Work over:", []string{"framework", "speedup"}, gmRows)
}

func fig7(cfg config) error {
	rows, err := harness.Compare(cfg.scale, cfg.sources, cfg.runs, cfg.only)
	if err != nil {
		return err
	}
	slow := harness.Fig7(rows)
	headers := append([]string{"Dataset"}, harness.FrameworkOrder...)
	out := [][]string{}
	for _, s := range slow {
		row := []string{s.Dataset}
		for _, name := range harness.FrameworkOrder {
			row = append(row, harness.F(s.Slowdowns[name]))
		}
		out = append(out, row)
	}
	return emit(cfg, "Figure 7 chart — slowdown vs Gunrock (1.0 = Gunrock)", headers, out)
}

func ablation(cfg config) error {
	rows, err := harness.Ablation(cfg.scale, cfg.sources, cfg.runs)
	if err != nil {
		return err
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Config, harness.F(r.MeanMS)})
	}
	return emit(cfg, fmt.Sprintf("Ablation — design choices (kron scale=%d)", cfg.scale),
		[]string{"config", "mean ms"}, out)
}

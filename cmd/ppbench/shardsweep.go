package main

import (
	"fmt"
	"math"
	"testing"
	"time"

	"pushpull/algorithms"
	"pushpull/generate"
	"pushpull/graphblas"
	"pushpull/internal/calibrate"
	"pushpull/internal/core"
	"pushpull/internal/harness"
)

// shardSweepTables benchmarks the range-sharded hybrid matvec against the
// best whole-operation single-direction plan, on the operands where
// sharding is supposed to win: a mid-BFS frontier (neither the sparse
// start nor the saturated tail) under a ¬visited mask, on one skewed and
// one degree-uniform graph. Rows sweep the shard count so BENCH_bench.json
// tracks both the hybrid-vs-uniform speedup and how it scales with shards,
// and a per-shard table from the 8-shard run records what the planner
// decided shard by shard — the decision-quality witness for hybrid
// execution (hub shards pulling while tail shards push).
func shardSweepTables(cfg config) error {
	type dataset struct {
		name  string
		scale int
		build func() (*graphblas.Matrix[bool], error)
	}
	// The skewed scenario needs a frontier near the push/pull crossover,
	// and kron frontiers explode so fast that below scale 16 no integer
	// BFS level lands between the two uniform regimes (level n is decided
	// push, level n+1 decided pull, with the contested mix falling in the
	// gap). Floor the kron shard sweep at 16 so the experiment measures
	// the regime it exists for, whatever -scale the rest of the run uses.
	// Quick mode keeps the requested scale — smoke runs only need the
	// tables to be well-formed, not the crossover to exist.
	kronScale := cfg.scale
	if kronScale < 16 && !cfg.quick {
		kronScale = 16
	}
	sets := []dataset{
		{"kron", kronScale, harness.KronDataset(kronScale).Build},
		{"uniform", cfg.scale, func() (*graphblas.Matrix[bool], error) {
			n := 1 << cfg.scale
			return generate.ErdosRenyi(n, 8/float64(n), 404)
		}},
	}
	count := cfg.count
	if count < 1 {
		count = 1
	}
	// Per-shard decisions need priced estimates: the unit model has no
	// early-exit discount, so it cannot see that an unvisited hub range
	// pulls in a handful of probes — and the measured-time corrector only
	// engages when PredictedNs is set. Use the -tune profile when loaded;
	// otherwise fit a quick one inline for the sweep.
	model := cfg.model
	if model == nil {
		if prof, err := calibrate.Run(calibrate.Options{Quick: true}); err == nil {
			model = &prof.Model
		}
	}
	var summary [][]string
	for _, ds := range sets {
		g, err := ds.build()
		if err != nil {
			return err
		}
		n := g.NRows()
		f, fBitset, visited, allow, depth, err := midBFSOperands(g)
		if err != nil {
			return err
		}
		sr := graphblas.OrAndBool()
		ws := graphblas.NewWorkspace(n, n)
		w := graphblas.NewVector[bool](n)
		mkDesc := func(dir graphblas.Direction, shards int, withAllow bool) *graphblas.Descriptor {
			d := &graphblas.Descriptor{
				Transpose: true, StructuralComplement: true, StructureOnly: true,
				Direction: dir, Shards: shards, Workspace: ws, CostModel: model,
			}
			if shards > 1 {
				// Shard-keyed measured-time feedback: mispriced shards flip
				// direction within a few iterations (warmed up below).
				d.Corrector = &core.Corrector{}
			}
			if withAllow {
				d.MaskAllowList = allow
			}
			return d
		}
		type variant struct {
			name string
			desc *graphblas.Descriptor
			in   *graphblas.Vector[bool]
		}
		// The two uniform rows are the whole-operation plans the planner
		// could have picked: masked push off the sparse frontier, masked
		// allow-list pull off the word-packed twin. The hybrid rows shard
		// the same operation with per-shard decisions.
		// Each variant owns a private copy of the frontier: the pipeline
		// settles the input's storage format in place (a pull decision
		// word-packs a sparse frontier), and a shared vector would let one
		// variant's settling change what the next variant is benchmarked on.
		variants := []variant{
			{"push-uniform", mkDesc(graphblas.ForcePush, 0, false), f.Dup()},
			{"pull-uniform", mkDesc(graphblas.ForcePull, 0, true), fBitset.Dup()},
		}
		for _, s := range []int{1, 2, 4, 8, 16} {
			variants = append(variants, variant{
				fmt.Sprintf("hybrid-s%d", s), mkDesc(graphblas.Auto, s, true), f.Dup(),
			})
		}
		rows := make([][]string, 0, len(variants))
		bestUniform, bestHybrid := 0, 0
		for _, v := range variants {
			v := v
			// Warm the workspace and converge the per-shard correctors
			// before timing, so the measured rows reflect the feedback
			// loop's steady state, not its first guesses (the pooled prior
			// needs a few calls of both directions before cold shards read
			// realistic scales).
			for i := 0; i < 16; i++ {
				if _, err := graphblas.MxV(w, visited, nil, sr, g, v.in, v.desc); err != nil {
					return err
				}
			}
			// The allocation guard comes from one testing.Benchmark pass; the
			// ns statistic is the minimum over single-call walls. A mean
			// over a ~1s benchmark loop folds every preemption and cache
			// eviction into the estimate, and this host's jitter is larger
			// than the effects being measured — the noise is strictly
			// additive, so the fastest observed call is the closest
			// observation of the kernel's true cost.
			ar := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := graphblas.MxV(w, visited, nil, sr, g, v.in, v.desc); err != nil {
						b.Fatal(err)
					}
				}
			})
			walls := 10 * count
			best := math.Inf(1)
			for rep := 0; rep < walls; rep++ {
				t0 := time.Now()
				if _, err := graphblas.MxV(w, visited, nil, sr, g, v.in, v.desc); err != nil {
					return err
				}
				if ns := float64(time.Since(t0).Nanoseconds()); ns < best {
					best = ns
				}
			}
			ns := int(best)
			switch {
			case v.desc.Shards == 0 && (bestUniform == 0 || ns < bestUniform):
				bestUniform = ns
			case v.desc.Shards > 1 && (bestHybrid == 0 || ns < bestHybrid):
				bestHybrid = ns
			}
			rows = append(rows, []string{v.name, harness.I(ns), harness.I(int(ar.AllocsPerOp()))})
		}
		if err := emit(cfg, fmt.Sprintf("Shard sweep — %s (scale=%d, BFS level %d frontier, min of %d walls)", ds.name, ds.scale, depth, 10*count),
			[]string{"variant", "ns/op", "allocs/op"}, rows); err != nil {
			return err
		}
		speedup := "—"
		if bestHybrid > 0 && bestUniform > 0 {
			speedup = harness.F(float64(bestUniform) / float64(bestHybrid))
		}
		summary = append(summary, []string{ds.name, harness.I(bestUniform), harness.I(bestHybrid), speedup})

		// Per-shard decision record off a traced 8-shard run, warmed first
		// so the table shows the corrector-converged schedule: which
		// direction each destination range settled on, on what evidence.
		var plan core.Plan
		desc8 := mkDesc(graphblas.Auto, 8, true)
		desc8.Plan = &plan
		fTrace := f.Dup()
		for i := 0; i < 9; i++ {
			if _, err := graphblas.MxV(w, visited, nil, sr, g, fTrace, desc8); err != nil {
				return err
			}
		}
		shardRows := make([][]string, 0, len(plan.Shards))
		for i, sp := range plan.Shards {
			shardRows = append(shardRows, []string{
				harness.I(i), harness.I(sp.Lo), harness.I(sp.Hi), sp.Dir.String(),
				harness.F(sp.Edges), harness.F(sp.MaskAllowFrac),
				harness.F(sp.PushCost), harness.F(sp.PullCost),
				harness.F(sp.PredictedNs), harness.F(sp.MeasuredNs), sp.Rule,
			})
		}
		if err := emit(cfg, fmt.Sprintf("Per-shard decisions — %s, 8 shards (hybrid=%v)", ds.name, plan.Hybrid),
			[]string{"shard", "lo", "hi", "dir", "edges", "allow-frac", "push-cost", "pull-cost", "predicted-ns", "measured-ns", "rule"}, shardRows); err != nil {
			return err
		}
	}
	return emit(cfg, "Shard sweep summary — best hybrid vs best single-direction plan",
		[]string{"graph", "best-uniform-ns", "best-hybrid-ns", "speedup"}, summary)
}

// midBFSOperands reconstructs the most direction-contested mid-traversal
// BFS level of g: the sparse frontier, its word-packed twin, the visited
// bitset (the ¬mask), and the sorted unvisited allow-list. Candidate
// levels keep enough unvisited mass to matter (≥30%, or a masked pull
// touches a handful of rows and every strategy collapses to it) and stay
// below 30% density (beyond that pull dominates every range trivially);
// among them, a quick forced-direction probe picks the level where the
// whole-operation push and pull costs are closest. That contested level is
// exactly the mixed regime sharding exists for — where one whole-operation
// decision must be wrong for part of the index range — whereas a fixed
// density target lands on whichever side of the crossover the graph's
// frontier explosion happens to sample, measuring a regime where a single
// direction already wins everywhere.
func midBFSOperands(g *graphblas.Matrix[bool]) (f, fBitset *graphblas.Vector[bool], visited *graphblas.Vector[bool], allow []uint32, depth int, err error) {
	n := g.NRows()
	// Start from a minimum-degree vertex: a peripheral source leaves the
	// hub rows unvisited when the wave reaches the crossover, which is
	// what makes the level genuinely mixed (a hub source swallows the hubs
	// into the visited set at level one, leaving nothing worth pulling).
	csr := g.CSR()
	src, srcDeg := 0, 1<<62
	for i := 0; i < n; i++ {
		if d := csr.Ptr[i+1] - csr.Ptr[i]; d >= 1 && d < srcDeg {
			src, srcDeg = i, d
		}
	}
	res, err := algorithms.BFS(g, src, algorithms.BFSOptions{})
	if err != nil {
		return nil, nil, nil, nil, 0, err
	}
	counts := map[int32]int{}
	maxDepth := int32(0)
	for _, d := range res.Depths {
		if d >= 0 {
			counts[d]++
			if d > maxDepth {
				maxDepth = d
			}
		}
	}
	var cands []int32
	peak := int32(0)
	seen := counts[0]
	for d := int32(1); d <= maxDepth; d++ {
		density := float64(counts[d]) / float64(n)
		unvisited := 1 - float64(seen)/float64(n)
		if counts[d] >= 2 && density <= 0.3 && unvisited >= 0.3 {
			cands = append(cands, d)
		}
		if counts[d] > counts[peak] {
			peak = d
		}
		seen += counts[d]
	}
	if len(cands) == 0 {
		cands = []int32{peak}
	}
	pick := cands[0]
	if len(cands) > 1 {
		ws := graphblas.NewWorkspace(n, n)
		w := graphblas.NewVector[bool](n)
		sr := graphblas.OrAndBool()
		best := math.Inf(1)
		for _, d := range cands {
			lf, lfb, lvis, lallow := levelOperands(n, res.Depths, d)
			pushNs := probeUniformNs(w, lvis, sr, g, lf, &graphblas.Descriptor{
				Transpose: true, StructuralComplement: true, StructureOnly: true,
				Direction: graphblas.ForcePush, Workspace: ws,
			})
			pullNs := probeUniformNs(w, lvis, sr, g, lfb, &graphblas.Descriptor{
				Transpose: true, StructuralComplement: true, StructureOnly: true,
				Direction: graphblas.ForcePull, Workspace: ws, MaskAllowList: lallow,
			})
			if pushNs <= 0 || pullNs <= 0 {
				continue
			}
			if c := math.Abs(math.Log(pushNs / pullNs)); c < best {
				best, pick = c, d
			}
		}
	}
	f, fBitset, visited, allow = levelOperands(n, res.Depths, pick)
	return f, fBitset, visited, allow, int(pick), nil
}

// levelOperands materializes the four operands of one BFS level: the
// sparse frontier (depth == pick), its word-packed twin, the visited
// bitset covering depths ≤ pick, and the ascending unvisited allow-list.
func levelOperands(n int, depths []int32, pick int32) (f, fBitset, visited *graphblas.Vector[bool], allow []uint32) {
	f = graphblas.NewVector[bool](n)
	visited = graphblas.NewVector[bool](n)
	visited.ToBitset()
	for v, d := range depths {
		if d == pick {
			_ = f.SetElement(v, true)
		}
		if d >= 0 && d <= pick {
			_ = visited.SetElement(v, true)
		} else {
			allow = append(allow, uint32(v))
		}
	}
	fBitset = f.Dup()
	fBitset.ToBitset()
	return f, fBitset, visited, allow
}

// probeUniformNs is the contest measurement behind midBFSOperands' level
// choice: two warmups, then the fastest of three timed calls (the same
// min-of-reps statistic the sweep itself reports).
func probeUniformNs(w, visited *graphblas.Vector[bool], sr graphblas.Semiring[bool], g *graphblas.Matrix[bool], in *graphblas.Vector[bool], desc *graphblas.Descriptor) float64 {
	for i := 0; i < 2; i++ {
		if _, err := graphblas.MxV(w, visited, nil, sr, g, in, desc); err != nil {
			return 0
		}
	}
	best := math.Inf(1)
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		if _, err := graphblas.MxV(w, visited, nil, sr, g, in, desc); err != nil {
			return 0
		}
		if ns := float64(time.Since(t0).Nanoseconds()); ns < best {
			best = ns
		}
	}
	return best
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"pushpull/generate/mmio"
)

func TestGenerateSingleDataset(t *testing.T) {
	dir := t.TempDir()
	if err := run(9, dir, "kron", false); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "kron_s9.mtx")
	g, err := mmio.ReadPatternFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NRows() != 512 {
		t.Fatalf("NRows=%d want 512", g.NRows())
	}
}

func TestStatsOnlyWritesNothing(t *testing.T) {
	dir := t.TempDir()
	if err := run(9, dir, "roadnet", true); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("stats-only run wrote %d files", len(entries))
	}
}

func TestUnknownDataset(t *testing.T) {
	if err := run(9, t.TempDir(), "nope", true); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

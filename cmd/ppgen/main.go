// Command ppgen generates the synthetic stand-in datasets and writes them
// as MatrixMarket files, so external tools (or repeated benchmark runs)
// can reuse identical graphs.
//
// Usage:
//
//	ppgen -scale 14 -out /tmp/graphs            # all 11 datasets
//	ppgen -scale 16 -dataset kron -out /tmp     # one dataset
//	ppgen -stats -scale 14                      # print Table 3, write nothing
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pushpull/generate"
	"pushpull/generate/mmio"
	"pushpull/internal/harness"
)

func main() {
	var (
		scale   = flag.Int("scale", 14, "log2 of the base vertex count")
		out     = flag.String("out", ".", "output directory")
		dataset = flag.String("dataset", "", "single dataset name (default: all)")
		stats   = flag.Bool("stats", false, "print stats only, write nothing")
	)
	flag.Parse()
	if err := run(*scale, *out, *dataset, *stats); err != nil {
		fmt.Fprintf(os.Stderr, "ppgen: %v\n", err)
		os.Exit(1)
	}
}

func run(scale int, out, only string, statsOnly bool) error {
	datasets := harness.Datasets(scale)
	if only != "" {
		ds, err := harness.FindDataset(scale, only)
		if err != nil {
			return err
		}
		datasets = []harness.Dataset{ds}
	}
	for _, ds := range datasets {
		g, err := ds.Build()
		if err != nil {
			return fmt.Errorf("build %s: %w", ds.Name, err)
		}
		st, err := generate.Stats(ds.Name, g, ds.Kind, 2)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %9d vertices %10d edges  maxdeg %7d  avgdeg %6.1f  diam %5d  (%s; paper: %s)\n",
			st.Name, st.Vertices, st.Edges, st.MaxDegree, st.AvgDegree, st.Diameter, st.Kind, ds.Paper)
		if statsOnly {
			continue
		}
		path := filepath.Join(out, fmt.Sprintf("%s_s%d.mtx", ds.Name, scale))
		if err := mmio.WritePatternFile(path, g); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		fmt.Printf("  wrote %s\n", path)
	}
	return nil
}

package main

import (
	"path/filepath"
	"testing"

	"pushpull/generate"
	"pushpull/generate/mmio"
)

func TestRunGeneratedDatasetAllFrameworks(t *testing.T) {
	if err := run("", "kron", 9, 0, 1, "all", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceAndAutoSource(t *testing.T) {
	if err := run("", "kron", 9, -1, 1, "thiswork", true); err != nil {
		t.Fatal(err)
	}
	if err := run("", "roadnet", 9, 0, 3, "gunrock", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	g, err := generate.Grid2D(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.mtx")
	if err := mmio.WritePatternFile(path, g); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", 0, 0, 1, "ligra", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "nope", 9, 0, 1, "thiswork", false); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run("", "kron", 9, 0, 1, "warp9", false); err == nil {
		t.Fatal("unknown framework accepted")
	}
	if err := run("/does/not/exist.mtx", "", 0, 0, 1, "thiswork", false); err == nil {
		t.Fatal("missing file accepted")
	}
}

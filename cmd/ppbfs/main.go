// Command ppbfs runs one BFS on a graph — from a MatrixMarket file or a
// generated stand-in — with any framework, printing per-iteration traces
// and the MTEPS summary. It is the quickest way to watch the direction
// optimizer switch push↔pull.
//
// Usage:
//
//	ppbfs -dataset kron -scale 16 -source 0 -trace
//	ppbfs -file graph.mtx -framework ligra -sources 10
//	ppbfs -dataset roadnet -framework all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pushpull/algorithms"
	"pushpull/internal/frameworks"
	"pushpull/internal/harness"
	"pushpull/internal/perf"
)

func main() {
	var (
		file      = flag.String("file", "", "MatrixMarket graph file")
		dataset   = flag.String("dataset", "kron", "generated dataset name (ignored with -file)")
		scale     = flag.Int("scale", 14, "generated dataset scale")
		source    = flag.Int("source", 0, "BFS root (-1 = highest-degree vertex)")
		sources   = flag.Int("sources", 1, "number of random roots (overrides -source when > 1)")
		framework = flag.String("framework", "thiswork", "thiswork|suitesparse|cusha|baseline|ligra|gunrock|all")
		trace     = flag.Bool("trace", false, "print per-iteration direction/frontier trace (thiswork only)")
	)
	flag.Parse()
	if err := run(*file, *dataset, *scale, *source, *sources, *framework, *trace); err != nil {
		fmt.Fprintf(os.Stderr, "ppbfs: %v\n", err)
		os.Exit(1)
	}
}

func run(file, dataset string, scale, source, nsources int, framework string, trace bool) error {
	// Graph loading goes through the shared harness seam (the same path
	// ppserve resolves its -graph specs with).
	g, err := harness.LoadGraph(file, dataset, scale)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges, max degree %d\n", g.NRows(), g.NVals(), g.MaxDegree())

	roots := []int{source}
	if nsources > 1 {
		roots = nil
		csr := g.CSR()
		for v := 0; v < g.NRows() && len(roots) < nsources; v += 1 + g.NRows()/(nsources*2+1) {
			if csr.RowLen(v) > 0 {
				roots = append(roots, v)
			}
		}
	} else if source < 0 {
		best, bestDeg := 0, -1
		csr := g.CSR()
		for v := 0; v < g.NRows(); v++ {
			if d := csr.RowLen(v); d > bestDeg {
				bestDeg = d
				best = v
			}
		}
		roots = []int{best}
	}

	runners := map[string]func(src int) (int64, time.Duration, error){
		"thiswork": func(src int) (int64, time.Duration, error) {
			opt := algorithms.BFSOptions{}
			if trace {
				opt.Trace = func(s algorithms.IterStats) {
					fmt.Printf("  iter %2d  %-4s  frontier %8d  unvisited %8d  %8.3f ms\n",
						s.Iteration, s.Direction, s.FrontierNNZ, s.UnvisitedNNZ,
						float64(s.Duration.Nanoseconds())/1e6)
				}
			}
			var res algorithms.BFSResult
			d := perf.Time(func() {
				r, err := algorithms.BFS(g, src, opt)
				if err != nil {
					panic(err)
				}
				res = r
			})
			fmt.Printf("  visited %d vertices in %d iterations\n", res.Visited, res.Iterations)
			return res.EdgesTraversed, d, nil
		},
	}
	fg := frameworks.FromMatrix(g)
	for _, r := range frameworks.All() {
		runner := r
		key := map[string]string{
			"SuiteSparse": "suitesparse", "CuSha": "cusha", "Baseline": "baseline",
			"Ligra": "ligra", "Gunrock": "gunrock",
		}[runner.Name]
		runners[key] = func(src int) (int64, time.Duration, error) {
			var depths []int32
			d := perf.Time(func() { depths = runner.BFS(fg, src) })
			var edges int64
			for v, dep := range depths {
				if dep >= 0 {
					edges += int64(fg.Out.RowLen(v))
				}
			}
			return edges, d, nil
		}
	}

	names := []string{framework}
	if framework == "all" {
		names = []string{"suitesparse", "cusha", "baseline", "ligra", "gunrock", "thiswork"}
	}
	for _, name := range names {
		fn, ok := runners[name]
		if !ok {
			return fmt.Errorf("unknown framework %q", name)
		}
		var totalEdges int64
		var totalDur time.Duration
		for _, src := range roots {
			fmt.Printf("%s: source %d\n", name, src)
			edges, d, err := fn(src)
			if err != nil {
				return err
			}
			totalEdges += edges
			totalDur += d
		}
		mean := totalDur / time.Duration(len(roots))
		fmt.Printf("%s: mean %.3f ms, %.1f MTEPS over %d root(s)\n",
			name, float64(mean.Nanoseconds())/1e6,
			perf.MTEPS(totalEdges/int64(len(roots)), mean), len(roots))
	}
	return nil
}

// Package generate builds the synthetic graphs the experiments run on.
// The paper's datasets (Table 3) fall into two classes — scale-free graphs
// with supervertices (soc-*, hollywood, indochina, kron_g500, rmat_*) and
// bounded-degree high-diameter meshes (rgg, roadNet, road_usa) — and this
// package provides a generator for each: RMAT/Kronecker (the same family
// as kron_g500 and the rmat_* graphs), random geometric graphs, 2-D grids
// (road stand-ins), and Erdős–Rényi for tests.
//
// All generators are deterministic for a given seed, remove self-loops,
// fold duplicate edges, and (when undirected) store both edge directions,
// matching the paper's dataset preparation.
package generate

import (
	"fmt"
	"math"
	"math/rand"

	"pushpull/graphblas"
)

// PatternMatrix is the Boolean adjacency matrix type every generator
// returns, aliased for readability in caller signatures.
type PatternMatrix = *graphblas.Matrix[bool]

// Graph500 RMAT partition probabilities (a, b, c; d is the remainder) —
// the parameters behind kron_g500-logn21.
const (
	Graph500A = 0.57
	Graph500B = 0.19
	Graph500C = 0.19
)

// RMATConfig parameterizes the recursive-matrix generator.
type RMATConfig struct {
	// Scale gives 2^Scale vertices.
	Scale int
	// EdgeFactor is the number of generated edges per vertex (before
	// dedup); Graph500 uses 16.
	EdgeFactor int
	// A, B, C are the quadrant probabilities (D = 1-A-B-C). Zero values
	// default to the Graph500 constants.
	A, B, C float64
	// Undirected mirrors every edge, producing a symmetric matrix.
	Undirected bool
	// Seed fixes the random stream.
	Seed int64
}

func (c RMATConfig) withDefaults() RMATConfig {
	if c.A == 0 && c.B == 0 && c.C == 0 {
		c.A, c.B, c.C = Graph500A, Graph500B, Graph500C
	}
	if c.EdgeFactor <= 0 {
		c.EdgeFactor = 16
	}
	return c
}

// RMAT generates a Kronecker/RMAT graph: each edge picks one of four
// quadrants per scale level with probabilities (A, B, C, D), producing the
// power-law degree distribution with supervertices that drives the paper's
// Figure 6 analysis. Self-loops are dropped and duplicates folded.
func RMAT(cfg RMATConfig) (*graphblas.Matrix[bool], error) {
	cfg = cfg.withDefaults()
	if cfg.Scale < 1 || cfg.Scale > 30 {
		return nil, fmt.Errorf("generate: RMAT scale %d out of range [1,30]", cfg.Scale)
	}
	if cfg.A < 0 || cfg.B < 0 || cfg.C < 0 || cfg.A+cfg.B+cfg.C >= 1 {
		return nil, fmt.Errorf("generate: RMAT probabilities (%g,%g,%g) invalid", cfg.A, cfg.B, cfg.C)
	}
	n := 1 << cfg.Scale
	m := n * cfg.EdgeFactor
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := make([]uint32, 0, 2*m)
	cols := make([]uint32, 0, 2*m)
	ab := cfg.A + cfg.B
	abc := ab + cfg.C
	for e := 0; e < m; e++ {
		var r, c uint32
		for level := 0; level < cfg.Scale; level++ {
			p := rng.Float64()
			switch {
			case p < cfg.A:
				// top-left: no bits set
			case p < ab:
				c |= 1 << level
			case p < abc:
				r |= 1 << level
			default:
				r |= 1 << level
				c |= 1 << level
			}
		}
		if r == c {
			continue // self-loop
		}
		rows = append(rows, r)
		cols = append(cols, c)
		if cfg.Undirected {
			rows = append(rows, c)
			cols = append(cols, r)
		}
	}
	return patternMatrix(n, n, rows, cols)
}

// RGG generates a random geometric graph: n points uniform in the unit
// square, edges between pairs within the given radius — the rgg_n_24
// stand-in: bounded degree, huge diameter. Always undirected.
func RGG(n int, radius float64, seed int64) (*graphblas.Matrix[bool], error) {
	if n < 1 {
		return nil, fmt.Errorf("generate: RGG size %d invalid", n)
	}
	if radius <= 0 || radius > 1 {
		return nil, fmt.Errorf("generate: RGG radius %g out of (0,1]", radius)
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	// Bucket points into radius-sized cells; only neighbouring cells can
	// hold edges.
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	grid := make(map[int][]int)
	cellOf := func(i int) int {
		cx := int(xs[i] * float64(cells))
		cy := int(ys[i] * float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cy*cells + cx
	}
	for i := 0; i < n; i++ {
		grid[cellOf(i)] = append(grid[cellOf(i)], i)
	}
	r2 := radius * radius
	var rows, cols []uint32
	for i := 0; i < n; i++ {
		cx := int(xs[i] * float64(cells))
		cy := int(ys[i] * float64(cells))
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
					continue
				}
				for _, j := range grid[ny*cells+nx] {
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						rows = append(rows, uint32(i), uint32(j))
						cols = append(cols, uint32(j), uint32(i))
					}
				}
			}
		}
	}
	return patternMatrix(n, n, rows, cols)
}

// Grid2D generates a rows×cols 4-neighbour mesh — the road-network
// stand-in (roadNet_CA, road_usa): degree ≤ 4, diameter rows+cols.
func Grid2D(rows, cols int) (*graphblas.Matrix[bool], error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("generate: grid %d×%d invalid", rows, cols)
	}
	n := rows * cols
	var r, c []uint32
	id := func(y, x int) uint32 { return uint32(y*cols + x) }
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			if x+1 < cols {
				r = append(r, id(y, x), id(y, x+1))
				c = append(c, id(y, x+1), id(y, x))
			}
			if y+1 < rows {
				r = append(r, id(y, x), id(y+1, x))
				c = append(c, id(y+1, x), id(y, x))
			}
		}
	}
	return patternMatrix(n, n, r, c)
}

// ErdosRenyi generates G(n, p) as an undirected simple graph using the
// geometric skipping method, O(E) regardless of p.
func ErdosRenyi(n int, p float64, seed int64) (*graphblas.Matrix[bool], error) {
	if n < 1 {
		return nil, fmt.Errorf("generate: ER size %d invalid", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("generate: ER probability %g out of [0,1]", p)
	}
	rng := rand.New(rand.NewSource(seed))
	var rows, cols []uint32
	if p > 0 {
		logq := math.Log(1 - p)
		// Iterate potential edges (i<j) with geometric jumps.
		v, w := 1, -1
		for v < n {
			step := 1
			if p < 1 {
				step = 1 + int(math.Log(1-rng.Float64())/logq)
			}
			w += step
			for w >= v && v < n {
				w -= v
				v++
			}
			if v < n {
				rows = append(rows, uint32(v), uint32(w))
				cols = append(cols, uint32(w), uint32(v))
			}
		}
	}
	return patternMatrix(n, n, rows, cols)
}

// Path generates the path graph 0-1-…-n-1 (maximum diameter; exercises
// push-only regimes).
func Path(n int) (*graphblas.Matrix[bool], error) {
	if n < 1 {
		return nil, fmt.Errorf("generate: path size %d invalid", n)
	}
	var r, c []uint32
	for i := 0; i+1 < n; i++ {
		r = append(r, uint32(i), uint32(i+1))
		c = append(c, uint32(i+1), uint32(i))
	}
	return patternMatrix(n, n, r, c)
}

// Star generates a hub-and-leaves star with n vertices (vertex 0 is the
// hub) — the minimal frontier-explosion graph.
func Star(n int) (*graphblas.Matrix[bool], error) {
	if n < 1 {
		return nil, fmt.Errorf("generate: star size %d invalid", n)
	}
	var r, c []uint32
	for i := 1; i < n; i++ {
		r = append(r, 0, uint32(i))
		c = append(c, uint32(i), 0)
	}
	return patternMatrix(n, n, r, c)
}

// WeightedCopy re-types a Boolean pattern as a float64 matrix with
// deterministic pseudo-random edge weights in [minW, maxW), symmetric for
// symmetric patterns (the SSSP experiment input).
func WeightedCopy(a *graphblas.Matrix[bool], minW, maxW float64, seed int64) (*graphblas.Matrix[float64], error) {
	if maxW <= minW {
		return nil, fmt.Errorf("generate: weight range [%g,%g) empty", minW, maxW)
	}
	n := a.NRows()
	csr := a.CSR()
	var r, c []uint32
	var v []float64
	span := maxW - minW
	for i := 0; i < n; i++ {
		ind, _ := csr.RowSpan(i)
		for _, j := range ind {
			lo, hi := uint32(i), j
			if lo > hi {
				lo, hi = hi, lo
			}
			// Hash the undirected edge with the seed so both directions
			// agree.
			h := uint64(lo)*0x9E3779B97F4A7C15 ^ uint64(hi)*0xC2B2AE3D27D4EB4F ^ uint64(seed)
			h ^= h >> 33
			h *= 0xFF51AFD7ED558CCD
			h ^= h >> 33
			w := minW + span*float64(h%(1<<52))/float64(int64(1)<<52)
			r = append(r, uint32(i))
			c = append(c, j)
			v = append(v, w)
		}
	}
	m, err := graphblas.NewMatrixFromCOO(a.NRows(), a.NCols(), r, c, v, nil)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// patternMatrix builds a Boolean matrix from parallel index slices.
func patternMatrix(nr, nc int, rows, cols []uint32) (*graphblas.Matrix[bool], error) {
	vals := make([]bool, len(rows))
	for i := range vals {
		vals[i] = true
	}
	return graphblas.NewMatrixFromCOO(nr, nc, rows, cols, vals, func(a, b bool) bool { return a })
}

package generate

import (
	"math"
	"testing"

	"pushpull/graphblas"
)

func TestRMATDeterministicAndSimple(t *testing.T) {
	cfg := RMATConfig{Scale: 10, EdgeFactor: 8, Undirected: true, Seed: 1}
	a, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NVals() != b.NVals() {
		t.Fatalf("same seed, different graphs: %d vs %d", a.NVals(), b.NVals())
	}
	if a.NRows() != 1024 {
		t.Fatalf("NRows=%d want 1024", a.NRows())
	}
	if !a.Symmetric() {
		t.Fatal("undirected RMAT must be symmetric")
	}
	// No self-loops.
	for i := 0; i < a.NRows(); i++ {
		if _, err := a.ExtractElement(i, i); err == nil {
			t.Fatalf("self-loop at %d", i)
		}
	}
	// Different seeds differ.
	c, err := RMAT(RMATConfig{Scale: 10, EdgeFactor: 8, Undirected: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.NVals() == a.NVals() {
		// Equal counts alone are possible; compare a few rows too.
		same := true
		for i := 0; i < 20 && same; i++ {
			ai, _ := a.RowView(i)
			ci, _ := c.RowView(i)
			if len(ai) != len(ci) {
				same = false
			}
		}
		if same {
			t.Log("warning: seeds 1 and 2 produced suspiciously similar graphs")
		}
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	// Power-law: the max degree must dwarf the average — the supervertex
	// phenomenon of Figure 6.
	a, err := RMAT(RMATConfig{Scale: 12, EdgeFactor: 16, Undirected: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(a.MaxDegree()) / a.AvgDegree(); ratio < 10 {
		t.Fatalf("max/avg degree = %.1f; RMAT should be heavily skewed", ratio)
	}
}

func TestRMATErrors(t *testing.T) {
	if _, err := RMAT(RMATConfig{Scale: 0}); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, err := RMAT(RMATConfig{Scale: 5, A: 0.5, B: 0.4, C: 0.2}); err == nil {
		t.Fatal("probabilities >= 1 accepted")
	}
}

func TestGrid2D(t *testing.T) {
	a, err := Grid2D(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.NRows() != 20 {
		t.Fatalf("NRows=%d", a.NRows())
	}
	// Interior vertex has degree 4, corner 2.
	if deg := rowDeg(a, 0); deg != 2 {
		t.Fatalf("corner degree=%d want 2", deg)
	}
	if deg := rowDeg(a, 6); deg != 4 { // (1,1)
		t.Fatalf("interior degree=%d want 4", deg)
	}
	if a.MaxDegree() != 4 {
		t.Fatalf("MaxDegree=%d want 4", a.MaxDegree())
	}
	if _, err := Grid2D(0, 5); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func rowDeg(a *graphblas.Matrix[bool], i int) int {
	ind, _ := a.RowView(i)
	return len(ind)
}

func TestRGGEdgesRespectRadius(t *testing.T) {
	a, err := RGG(500, 0.08, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Symmetric() {
		t.Fatal("RGG must be symmetric")
	}
	if a.NVals() == 0 {
		t.Fatal("RGG produced no edges")
	}
	if _, err := RGG(10, 0, 0); err == nil {
		t.Fatal("zero radius accepted")
	}
	if _, err := RGG(0, 0.1, 0); err == nil {
		t.Fatal("empty RGG accepted")
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	n, p := 400, 0.05
	a, err := ErdosRenyi(n, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	expected := p * float64(n) * float64(n-1) // both directions
	if got := float64(a.NVals()); math.Abs(got-expected) > expected/3 {
		t.Fatalf("ER edges=%g expected ~%g", got, expected)
	}
	empty, err := ErdosRenyi(10, 0, 0)
	if err != nil || empty.NVals() != 0 {
		t.Fatalf("ER p=0: %v nnz=%d", err, empty.NVals())
	}
	if _, err := ErdosRenyi(5, 1.5, 0); err == nil {
		t.Fatal("p>1 accepted")
	}
}

func TestPathAndStar(t *testing.T) {
	p, err := Path(10)
	if err != nil {
		t.Fatal(err)
	}
	if p.NVals() != 18 {
		t.Fatalf("path nnz=%d want 18", p.NVals())
	}
	s, err := Star(10)
	if err != nil {
		t.Fatal(err)
	}
	if rowDeg(s, 0) != 9 {
		t.Fatalf("hub degree=%d want 9", rowDeg(s, 0))
	}
	if _, err := Path(0); err == nil {
		t.Fatal("empty path accepted")
	}
	if _, err := Star(0); err == nil {
		t.Fatal("empty star accepted")
	}
}

func TestWeightedCopySymmetricWeights(t *testing.T) {
	g, err := RMAT(RMATConfig{Scale: 8, EdgeFactor: 4, Undirected: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	w, err := WeightedCopy(g, 1, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if w.NVals() != g.NVals() {
		t.Fatalf("weighted copy changed nnz: %d vs %d", w.NVals(), g.NVals())
	}
	// Spot-check symmetry of weights.
	checked := 0
	csr := w.CSR()
	for i := 0; i < w.NRows() && checked < 200; i++ {
		ind, val := csr.RowSpan(i)
		for k, j := range ind {
			back, err := w.ExtractElement(int(j), i)
			if err != nil {
				t.Fatalf("missing reverse edge (%d,%d)", j, i)
			}
			if back != val[k] {
				t.Fatalf("asymmetric weight (%d,%d): %g vs %g", i, j, val[k], back)
			}
			if val[k] < 1 || val[k] >= 5 {
				t.Fatalf("weight %g outside [1,5)", val[k])
			}
			checked++
		}
	}
	if _, err := WeightedCopy(g, 5, 5, 0); err == nil {
		t.Fatal("empty weight range accepted")
	}
}

func TestStatsPathDiameter(t *testing.T) {
	p, err := Path(50)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Stats("path", p, "m", 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Diameter != 49 {
		t.Fatalf("path diameter=%d want 49", st.Diameter)
	}
	if st.Vertices != 50 || st.Edges != 98 || st.MaxDegree != 2 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.AvgDegree < 1.9 || st.AvgDegree > 2 {
		t.Fatalf("avg degree %g", st.AvgDegree)
	}
}

func TestStatsGridDiameter(t *testing.T) {
	g, err := Grid2D(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Stats("grid", g, "gm", 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Diameter != 18 { // (10-1)+(10-1)
		t.Fatalf("grid diameter=%d want 18", st.Diameter)
	}
}

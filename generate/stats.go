package generate

import (
	"fmt"

	"pushpull/algorithms"
	"pushpull/graphblas"
)

// GraphStats is the Table 3 row for a dataset: vertex/edge counts, degree
// extremes, and an estimated diameter.
type GraphStats struct {
	Name string
	// Vertices is the number of rows.
	Vertices int
	// Edges is the number of stored entries (both directions counted for
	// undirected graphs, matching the paper's edge counts).
	Edges int
	// MaxDegree is the largest row population.
	MaxDegree int
	// AvgDegree is Edges/Vertices.
	AvgDegree float64
	// Diameter is a pseudo-diameter estimate (double-sweep BFS lower
	// bound).
	Diameter int
	// Kind is the paper's type tag: r/g (real/generated) + s/m
	// (scale-free/mesh-like).
	Kind string
}

// Stats computes a GraphStats row. The diameter estimate runs `sweeps`
// rounds of the double-sweep heuristic (2 is the usual choice): BFS from a
// start vertex, restart from the deepest vertex found, keep the maximum
// depth seen.
func Stats(name string, a *graphblas.Matrix[bool], kind string, sweeps int) (GraphStats, error) {
	if sweeps < 1 {
		sweeps = 2
	}
	s := GraphStats{
		Name:      name,
		Vertices:  a.NRows(),
		Edges:     a.NVals(),
		MaxDegree: a.MaxDegree(),
		AvgDegree: a.AvgDegree(),
		Kind:      kind,
	}
	// Start from the highest-degree vertex (certain to sit in the big
	// component of our generators).
	start, best := 0, -1
	csr := a.CSR()
	for i := 0; i < a.NRows(); i++ {
		if d := csr.RowLen(i); d > best {
			best = d
			start = i
		}
	}
	for sweep := 0; sweep < sweeps; sweep++ {
		res, err := algorithms.BFS(a, start, algorithms.BFSOptions{})
		if err != nil {
			return s, fmt.Errorf("generate: diameter sweep: %w", err)
		}
		deepest, depth := start, int32(-1)
		for v, d := range res.Depths {
			if d > depth {
				depth = d
				deepest = v
			}
		}
		if int(depth) > s.Diameter {
			s.Diameter = int(depth)
		}
		start = deepest
	}
	return s, nil
}

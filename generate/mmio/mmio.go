// Package mmio reads and writes Matrix Market coordinate files — the
// interchange format of the UF/SuiteSparse collection the paper's real
// datasets come from. Pattern and real fields, general and symmetric
// symmetry are supported; symmetric files are expanded to both triangles
// on read, matching the paper's "converted to undirected" preparation.
package mmio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pushpull/graphblas"
)

// WritePattern writes a Boolean matrix in MatrixMarket coordinate pattern
// format. Symmetric matrices are written as their lower triangle with the
// symmetric header.
func WritePattern(w io.Writer, a *graphblas.Matrix[bool]) error {
	bw := bufio.NewWriter(w)
	sym := a.Symmetric()
	header := "general"
	if sym {
		header = "symmetric"
	}
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate pattern %s\n", header); err != nil {
		return err
	}
	csr := a.CSR()
	count := 0
	for i := 0; i < csr.Rows; i++ {
		ind, _ := csr.RowSpan(i)
		for _, j := range ind {
			if !sym || int(j) <= i {
				count++
			}
		}
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.NRows(), a.NCols(), count); err != nil {
		return err
	}
	for i := 0; i < csr.Rows; i++ {
		ind, _ := csr.RowSpan(i)
		for _, j := range ind {
			if !sym || int(j) <= i {
				if _, err := fmt.Fprintf(bw, "%d %d\n", i+1, j+1); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadPattern parses a MatrixMarket coordinate file into a Boolean matrix.
// Real/integer files are accepted with values treated as presence;
// symmetric files are mirrored.
func ReadPattern(r io.Reader) (*graphblas.Matrix[bool], error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("mmio: empty input")
	}
	head := strings.Fields(strings.ToLower(sc.Text()))
	if len(head) < 5 || head[0] != "%%matrixmarket" || head[1] != "matrix" || head[2] != "coordinate" {
		return nil, fmt.Errorf("mmio: unsupported header %q", sc.Text())
	}
	field, symmetry := head[3], head[4]
	switch field {
	case "pattern", "real", "integer":
	default:
		return nil, fmt.Errorf("mmio: unsupported field %q", field)
	}
	var symmetric bool
	switch symmetry {
	case "general":
	case "symmetric":
		symmetric = true
	default:
		return nil, fmt.Errorf("mmio: unsupported symmetry %q", symmetry)
	}
	// Skip comments, read the size line.
	var nr, nc, nnz int
	haveSize := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d %d", &nr, &nc, &nnz); err != nil {
			return nil, fmt.Errorf("mmio: bad size line %q: %v", line, err)
		}
		haveSize = true
		break
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mmio: %w", err)
	}
	if !haveSize {
		return nil, fmt.Errorf("mmio: truncated input: no size line after header")
	}
	if nr <= 0 || nc <= 0 {
		return nil, fmt.Errorf("mmio: invalid dimensions %d×%d (rows and cols must be positive)", nr, nc)
	}
	const maxDim = int64(1) << 32 // indices are stored as uint32
	if int64(nr) > maxDim || int64(nc) > maxDim {
		return nil, fmt.Errorf("mmio: dimensions %d×%d exceed the uint32 index limit", nr, nc)
	}
	if nnz < 0 {
		return nil, fmt.Errorf("mmio: negative entry count %d", nnz)
	}
	if capacity := int64(nr) * int64(nc); int64(nnz) > capacity {
		return nil, fmt.Errorf("mmio: entry count %d exceeds %d×%d capacity", nnz, nr, nc)
	}
	// Cap the preallocation: a lying header ("declare 4e9 entries, supply
	// three lines") must fail with a truncation error, not an OOM.
	prealloc := nnz
	if prealloc > 1<<24 {
		prealloc = 1 << 24
	}
	rows := make([]uint32, 0, prealloc)
	cols := make([]uint32, 0, prealloc)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("mmio: bad entry %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("mmio: bad row in %q", line)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("mmio: bad col in %q", line)
		}
		if i < 1 || i > nr || j < 1 || j > nc {
			return nil, fmt.Errorf("mmio: entry (%d,%d) outside %d×%d", i, j, nr, nc)
		}
		rows = append(rows, uint32(i-1))
		cols = append(cols, uint32(j-1))
		if symmetric && i != j {
			rows = append(rows, uint32(j-1))
			cols = append(cols, uint32(i-1))
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mmio: %w", err)
	}
	if read < nnz {
		return nil, fmt.Errorf("mmio: truncated input: header declares %d entries, found %d", nnz, read)
	}
	vals := make([]bool, len(rows))
	for i := range vals {
		vals[i] = true
	}
	return graphblas.NewMatrixFromCOO(nr, nc, rows, cols, vals, func(a, b bool) bool { return a })
}

// WritePatternFile writes a pattern matrix to the named file.
func WritePatternFile(path string, a *graphblas.Matrix[bool]) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePattern(f, a); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPatternFile reads a pattern matrix from the named file.
func ReadPatternFile(path string) (*graphblas.Matrix[bool], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPattern(f)
}

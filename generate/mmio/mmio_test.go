package mmio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"pushpull/generate"
	"pushpull/graphblas"
)

func TestRoundTripSymmetric(t *testing.T) {
	g, err := generate.RMAT(generate.RMATConfig{Scale: 8, EdgeFactor: 4, Undirected: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePattern(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "symmetric") {
		t.Fatal("symmetric header missing")
	}
	back, err := ReadPattern(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatrix(t, g, back)
}

func TestRoundTripGeneral(t *testing.T) {
	m, err := graphblas.NewMatrixFromCOO(3, 4, []uint32{0, 2, 1}, []uint32{3, 0, 1}, []bool{true, true, true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePattern(&buf, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "general") {
		t.Fatal("general header missing")
	}
	back, err := ReadPattern(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatrix(t, m, back)
}

func assertSameMatrix(t *testing.T, a, b *graphblas.Matrix[bool]) {
	t.Helper()
	if a.NRows() != b.NRows() || a.NCols() != b.NCols() || a.NVals() != b.NVals() {
		t.Fatalf("shape mismatch: %dx%d/%d vs %dx%d/%d",
			a.NRows(), a.NCols(), a.NVals(), b.NRows(), b.NCols(), b.NVals())
	}
	ac, bc := a.CSR(), b.CSR()
	for i := range ac.Ptr {
		if ac.Ptr[i] != bc.Ptr[i] {
			t.Fatalf("Ptr differs at %d", i)
		}
	}
	for i := range ac.Ind {
		if ac.Ind[i] != bc.Ind[i] {
			t.Fatalf("Ind differs at %d", i)
		}
	}
}

func TestReadRealField(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 3 2
1 2 1.5
3 1 -2.0
`
	m, err := ReadPattern(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NVals() != 2 {
		t.Fatalf("nnz=%d want 2", m.NVals())
	}
	if _, err := m.ExtractElement(0, 1); err != nil {
		t.Fatal("missing entry (0,1)")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "%%MatrixMarket vector coordinate real general\n1 1 0\n",
		"bad field":   "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
		"bad symm":    "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
		"short file":  "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n",
		"bad entry":   "%%MatrixMarket matrix coordinate pattern general\n3 3 1\nxx yy\n",
		"out of rng":  "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n5 1\n",
		"bad size ln": "%%MatrixMarket matrix coordinate pattern general\nnope\n",
	}
	for name, in := range cases {
		if _, err := ReadPattern(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	g, err := generate.Grid2D(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "grid.mtx")
	if err := WritePatternFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPatternFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatrix(t, g, back)
	if _, err := ReadPatternFile(filepath.Join(t.TempDir(), "missing.mtx")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Triangle counting with masked SpGEMM: the output pattern of L·Lᵀ is
// known a priori (it is the edge set itself), so the masked multiply
// computes only wedge closures that can be triangles — output-sparsity
// masking applied to matrix-matrix multiplication (paper Section 5.6).
// Clustering coefficients fall out for free.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"pushpull/algorithms"
	"pushpull/generate"
)

func main() {
	scale := flag.Int("scale", 13, "log2 of the vertex count")
	flag.Parse()

	// A scale-free graph has many triangles around its hubs; a grid has
	// none; a random geometric graph sits in between.
	graphs := []struct {
		name  string
		build func() (g generate.PatternMatrix, err error)
	}{
		{"rmat (social)", func() (generate.PatternMatrix, error) {
			return generate.RMAT(generate.RMATConfig{Scale: *scale, EdgeFactor: 8, Undirected: true, Seed: 9})
		}},
		{"rgg (mesh-ish)", func() (generate.PatternMatrix, error) {
			return generate.RGG(1<<*scale, 0.004*32, 10)
		}},
		{"grid (roads)", func() (generate.PatternMatrix, error) {
			side := 1 << (*scale / 2)
			return generate.Grid2D(side, side)
		}},
	}
	for _, spec := range graphs {
		g, err := spec.build()
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		count, err := algorithms.TriangleCount(g)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		edges := int64(g.NVals()) / 2 // undirected edges stored twice
		// Global clustering coefficient: 3·triangles / #wedges.
		wedges := int64(0)
		for i := 0; i < g.NRows(); i++ {
			ind, _ := g.RowView(i)
			d := int64(len(ind))
			wedges += d * (d - 1) / 2
		}
		cc := 0.0
		if wedges > 0 {
			cc = 3 * float64(count) / float64(wedges)
		}
		fmt.Printf("%-15s %8d vertices %9d edges: %9d triangles, clustering %.4f  (%v)\n",
			spec.name, g.NRows(), edges, count, cc, elapsed.Round(time.Microsecond))
	}
}

// Social-network analysis on a scale-free graph: watch the direction
// optimizer switch push→pull→push across BFS levels (the three phases of
// the paper's Section 5.1), then compare against push-only.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"pushpull/algorithms"
	"pushpull/generate"
)

func main() {
	scale := flag.Int("scale", 15, "log2 of the vertex count")
	flag.Parse()

	// An RMAT graph stands in for a social network: power-law degrees,
	// a handful of celebrity supervertices, tiny diameter.
	g, err := generate.RMAT(generate.RMATConfig{
		Scale: *scale, EdgeFactor: 16, Undirected: true, Seed: 2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %d users, %d follows, max degree %d (avg %.1f)\n\n",
		g.NRows(), g.NVals(), g.MaxDegree(), g.AvgDegree())

	// Trace the direction decisions of a full DOBFS.
	fmt.Println("direction-optimized BFS from user 0:")
	fmt.Println("  iter  dir   frontier  unvisited       ms")
	var start time.Time
	start = time.Now()
	res, err := algorithms.BFS(g, 0, algorithms.BFSOptions{
		Trace: func(s algorithms.IterStats) {
			fmt.Printf("  %4d  %-4s  %8d  %9d  %7.3f\n",
				s.Iteration, s.Direction, s.FrontierNNZ, s.UnvisitedNNZ,
				float64(s.Duration.Nanoseconds())/1e6)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	doTime := time.Since(start)
	fmt.Printf("reached %d of %d users in %v (%.0f MTEPS)\n\n",
		res.Visited, g.NRows(), doTime.Round(time.Microsecond), res.MTEPS(doTime))

	// The same traversal, push-only (what SuiteSparse '17 would do).
	start = time.Now()
	pres, err := algorithms.BFS(g, 0, algorithms.BFSOptions{DisableDirectionOpt: true})
	if err != nil {
		log.Fatal(err)
	}
	pushTime := time.Since(start)
	fmt.Printf("push-only BFS: %v (%.0f MTEPS) — direction optimization won %.1fx\n",
		pushTime.Round(time.Microsecond), pres.MTEPS(pushTime),
		float64(pushTime)/float64(doTime))

	// Who are the celebrities? Parent BFS gives each user's discoverer;
	// counting children approximates influence reach.
	parents, err := algorithms.ParentBFS(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	children := map[int64]int{}
	for _, p := range parents {
		if p >= 0 {
			children[p]++
		}
	}
	bestParent, bestCount := int64(0), 0
	for p, c := range children {
		if c > bestCount {
			bestParent, bestCount = p, c
		}
	}
	fmt.Printf("\nBFS-tree hub: user %d discovered %d users directly\n", bestParent, bestCount)
}

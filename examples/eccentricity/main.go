// Graph eccentricity estimation with bit-parallel multi-source BFS
// (MS-BFS): 64 traversals share every matrix access, the batched execution
// the paper's Section 5.6 motivates for betweenness centrality. Estimates
// the diameter and radius of a scale-free graph from a 64-source sample
// and compares the batched runtime against 64 sequential traversals.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"pushpull/algorithms"
	"pushpull/generate"
)

func main() {
	scale := flag.Int("scale", 14, "log2 of the vertex count")
	flag.Parse()

	g, err := generate.RMAT(generate.RMATConfig{
		Scale: *scale, EdgeFactor: 16, Undirected: true, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := g.NRows()
	fmt.Printf("graph: %d vertices, %d edges\n\n", n, g.NVals())

	sources := make([]int, 0, 64)
	for v := 0; len(sources) < 64 && v < n; v += 1 + n/97 {
		ind, _ := g.RowView(v)
		if len(ind) > 0 {
			sources = append(sources, v)
		}
	}

	start := time.Now()
	batched, err := algorithms.MultiBFS(g, sources)
	if err != nil {
		log.Fatal(err)
	}
	batchedTime := time.Since(start)

	start = time.Now()
	for _, s := range sources {
		if _, err := algorithms.BFS(g, s, algorithms.BFSOptions{}); err != nil {
			log.Fatal(err)
		}
	}
	sequentialTime := time.Since(start)

	// Eccentricity of s = max finite depth; diameter ≥ max ecc, radius ≤
	// min ecc over the sample.
	maxEcc, minEcc := int32(0), int32(1<<30)
	for si := range sources {
		ecc := int32(0)
		for _, d := range batched[si] {
			if d > ecc {
				ecc = d
			}
		}
		if ecc > maxEcc {
			maxEcc = ecc
		}
		if ecc < minEcc {
			minEcc = ecc
		}
	}
	fmt.Printf("64-source sample: diameter >= %d, radius <= %d\n\n", maxEcc, minEcc)
	fmt.Printf("batched MS-BFS:      %v\n", batchedTime.Round(time.Microsecond))
	fmt.Printf("64 sequential BFS:   %v\n", sequentialTime.Round(time.Microsecond))
	fmt.Printf("batching speedup:    %.1fx (every matrix access amortized across 64 lanes)\n",
		float64(sequentialTime)/float64(batchedTime))
}

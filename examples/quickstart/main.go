// Quickstart: build a small graph, run one masked matvec by hand, then a
// full direction-optimized BFS — the 60-second tour of the API.
package main

import (
	"fmt"
	"log"

	"pushpull/algorithms"
	"pushpull/graphblas"
)

func main() {
	// The paper's Figure 3 example graph: 8 vertices A..H.
	//    A-B, A-C, B-D, C-D, C-E, D-F, E-F, E-G, F-H, G-H
	names := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	edges := [][2]uint32{
		{0, 1}, {0, 2}, {1, 3}, {2, 3}, {2, 4},
		{3, 5}, {4, 5}, {4, 6}, {5, 7}, {6, 7},
	}
	var rows, cols []uint32
	var vals []bool
	for _, e := range edges {
		rows = append(rows, e[0], e[1])
		cols = append(cols, e[1], e[0])
		vals = append(vals, true, true)
	}
	a, err := graphblas.NewMatrixFromCOO(8, 8, rows, cols, vals, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adjacency matrix: %d×%d, %d stored edges, symmetric=%v\n\n",
		a.NRows(), a.NCols(), a.NVals(), a.Symmetric())

	// One BFS step by hand: f' = Aᵀf .* ¬v over the Boolean semiring —
	// the single formula that is both push and pull (paper Section 4).
	f := graphblas.NewVector[bool](8)
	_ = f.SetElement(0, true) // frontier = {A}
	v := graphblas.NewVector[bool](8)
	_ = v.SetElement(0, true) // visited = {A}
	desc := &graphblas.Descriptor{Transpose: true, StructuralComplement: true}
	dir, err := graphblas.MxV(f, v, nil, graphblas.OrAndBool(), a, f, desc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one masked matvec from {A} ran as %s and discovered:", dir)
	f.Iterate(func(i int, _ bool) bool {
		fmt.Printf(" %s", names[i])
		return true
	})
	fmt.Println()

	// The full Algorithm 1 with all five optimizations.
	res, err := algorithms.BFS(a, 0, algorithms.BFSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBFS levels from A:")
	for i, d := range res.Depths {
		fmt.Printf("  %s: level %d\n", names[i], d)
	}
	fmt.Printf("visited %d vertices in %d iterations, %d edges traversed\n",
		res.Visited, res.Iterations, res.EdgesTraversed)
}

// Road-network routing: SSSP over the (min, +) semiring on a weighted
// grid. High-diameter meshes are where direction optimization does NOT
// pay (the paper's Section 7.3 finding) — the workfront stays tiny, so
// the traversal stays push-only; compare against a scale-free graph where
// the 2-phase switch kicks in.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"pushpull/algorithms"
	"pushpull/generate"
	"pushpull/graphblas"
)

func main() {
	side := flag.Int("side", 200, "grid side length")
	flag.Parse()

	grid, err := generate.Grid2D(*side, *side)
	if err != nil {
		log.Fatal(err)
	}
	// Edge weights model segment travel times.
	roads, err := generate.WeightedCopy(grid, 1, 5, 7)
	if err != nil {
		log.Fatal(err)
	}
	n := roads.NRows()
	fmt.Printf("road network: %d intersections, %d segments (grid %dx%d)\n\n",
		n, roads.NVals(), *side, *side)

	pulls := 0
	start := time.Now()
	dist, err := algorithms.SSSP(roads, 0, algorithms.SSSPOptions{
		Trace: func(s algorithms.IterStats) {
			if s.Direction == graphblas.PullDirection {
				pulls++
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// On a large mesh the diagonal wavefront never exceeds ~1/side of the
	// vertices, so it stays below the 1% switch-point and the traversal
	// remains push-only — the paper's "DOBFS does not help road networks".
	// Small grids (wavefront > 1%) do trigger the switch.
	fmt.Printf("SSSP from the northwest corner: %v, %d pull rounds (wavefront peaks at %.2f%% of vertices)\n",
		time.Since(start).Round(time.Millisecond), pulls, 100/float64(*side))

	corner := n - 1
	fmt.Printf("shortest travel time to the southeast corner: %.1f\n", dist[corner])
	reached := 0
	for _, d := range dist {
		if !math.IsInf(d, 1) {
			reached++
		}
	}
	fmt.Printf("reached %d/%d intersections\n\n", reached, n)

	// Contrast: the same algorithm on a scale-free graph switches to pull
	// once the workfront explodes (the paper's 2-phase SSSP).
	social, err := generate.RMAT(generate.RMATConfig{Scale: 14, EdgeFactor: 16, Undirected: true, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	wsocial, err := generate.WeightedCopy(social, 1, 5, 8)
	if err != nil {
		log.Fatal(err)
	}
	pulls = 0
	rounds := 0
	if _, err := algorithms.SSSP(wsocial, 0, algorithms.SSSPOptions{
		Trace: func(s algorithms.IterStats) {
			rounds++
			if s.Direction == graphblas.PullDirection {
				pulls++
			}
		},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scale-free contrast: %d of %d SSSP rounds ran as pull (2-phase direction optimization)\n",
		pulls, rounds)
}

// Adaptive PageRank: masking beyond BFS. Once a vertex's rank converges,
// the masked matvec skips its row entirely — the paper's Section 5.6
// "masking generalizes to any algorithm where output sparsity is known
// a priori" claim, measured.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"pushpull/algorithms"
	"pushpull/generate"
)

func main() {
	scale := flag.Int("scale", 14, "log2 of the vertex count")
	flag.Parse()

	g, err := generate.RMAT(generate.RMATConfig{
		Scale: *scale, EdgeFactor: 16, Undirected: true, Seed: 77,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web graph: %d pages, %d links\n\n", g.NRows(), g.NVals())

	opt := algorithms.PageRankOptions{Tol: 1e-9, MaxIter: 200, AdaptiveTol: 1e-10}

	start := time.Now()
	exact, err := algorithms.PageRank(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	exactTime := time.Since(start)

	start = time.Now()
	adaptive, err := algorithms.AdaptivePageRank(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	adaptiveTime := time.Since(start)

	fmt.Printf("standard PageRank:  %d iterations, %12d row-computations, %v\n",
		exact.Iterations, exact.MaskedMatvecRows, exactTime.Round(time.Microsecond))
	fmt.Printf("adaptive (masked):  %d iterations, %12d row-computations, %v\n",
		adaptive.Iterations, adaptive.MaskedMatvecRows, adaptiveTime.Round(time.Microsecond))
	fmt.Printf("masking skipped %.1f%% of the row work\n\n",
		100*(1-float64(adaptive.MaskedMatvecRows)/float64(exact.MaskedMatvecRows)))

	// The two variants must agree on the ranking.
	maxDiff := 0.0
	for i := range exact.Ranks {
		d := exact.Ranks[i] - adaptive.Ranks[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max |exact - adaptive| rank difference: %.2e\n\n", maxDiff)

	type ranked struct {
		page int
		rank float64
	}
	top := make([]ranked, len(exact.Ranks))
	for i, r := range exact.Ranks {
		top[i] = ranked{i, r}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Println("top 5 pages:")
	for _, t := range top[:5] {
		fmt.Printf("  page %6d  rank %.6f  degree %d\n", t.page, t.rank, rowDeg(g, t.page))
	}
}

func rowDeg(g interface{ RowView(int) ([]uint32, []bool) }, i int) int {
	ind, _ := g.RowView(i)
	return len(ind)
}

// Package pushpull is a Go reproduction of "Implementing Push-Pull
// Efficiently in GraphBLAS" (Yang, Buluç, Owens — ICPP 2018).
//
// The importable library lives in the subpackages:
//
//	graphblas   GraphBLAS-style sparse linear algebra with automatic
//	            push-pull direction optimization in MxV: a four-format
//	            vector engine (sparse / bitset / bitmap / dense, the
//	            bitset packing presence 64-to-a-word for 8×-smaller
//	            masks, popcount density and word-parallel Boolean eWise)
//	            behind format-agnostic kernel views, driven by an
//	            edge-based cost-model direction planner (see the package
//	            docs' "Storage formats and the direction planner"). Every
//	            vector operation — MxV/VxM, eWise, apply, select,
//	            assign, extract — takes masks, accumulators and
//	            descriptors through one declarative OpSpec builder:
//	            Into(w).Mask(m).Accum(op).With(desc).Op(...) (see "The
//	            OpSpec operation pipeline")
//	algorithms  BFS (Algorithm 1), SSSP, PageRank, triangle counting,
//	            MIS, betweenness centrality
//	generate    RMAT/Kronecker, RGG, grid and Erdős–Rényi generators,
//	            MatrixMarket I/O (generate/mmio)
//
// Iterative algorithms reach a zero-allocation steady state: every kernel
// transient (gather buffers, sort scratch, SPA arrays, mask word buffers)
// lives in a reusable Workspace that algorithms pin across their run — and
// that operations auto-acquire from a dimension-keyed pool when none is
// pinned.
// See graphblas.Workspace for the lifecycle and internal/core.Workspace for
// the kernel-level arena.
//
// This root package only anchors the module and the top-level benchmark
// suite (bench_test.go), which regenerates every table and figure of the
// paper's evaluation; see also cmd/ppbench.
package pushpull

module pushpull

go 1.22

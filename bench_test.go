// Top-level benchmarks: one testing.B family per paper table/figure, thin
// wrappers over internal/harness so `go test -bench=.` regenerates every
// experiment's numbers at a laptop-friendly scale. cmd/ppbench runs the
// same drivers with configurable scale and pretty tables.
package pushpull_test

import (
	"fmt"
	"testing"

	"pushpull/algorithms"
	"pushpull/graphblas"
	"pushpull/internal/frameworks"
	"pushpull/internal/harness"
)

// benchScale keeps each bench iteration in the low milliseconds.
const benchScale = 13

// benchGraph caches the kron stand-in across benchmarks.
var benchGraph *graphblas.Matrix[bool]

func kron() *graphblas.Matrix[bool] {
	if benchGraph == nil {
		g, err := harness.KronDataset(benchScale).Build()
		if err != nil {
			panic(err)
		}
		benchGraph = g
	}
	return benchGraph
}

// BenchmarkTable1 runs the instrumented four-variant sweep (Table 1
// validation). The interesting output is the access counts, which the
// harness prints via ppbench; here we benchmark the counted kernels'
// throughput as a regression guard.
func BenchmarkTable1CountedSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := harness.MicroSweep(benchScale-2, 3, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2 times each matvec variant at a mid-sweep point — the
// Figure 2 series, one sub-benchmark per curve.
func BenchmarkFig2(b *testing.B) {
	for _, variant := range []string{"row-nomask", "row-mask", "col-nomask", "col-mask"} {
		b.Run(variant, func(b *testing.B) {
			g := kron()
			n := g.NRows()
			sr := graphblas.OrAndBool()
			// Mid-sweep supports: frontier at n/8, mask at n/12.
			u := graphblas.NewVector[bool](n)
			for i := 0; i < n; i += 8 {
				_ = u.SetElement(i, true)
			}
			mask := graphblas.NewVector[bool](n)
			for i := 0; i < n; i += 12 {
				_ = mask.SetElement(i, true)
			}
			mask.ToDense()
			desc := &graphblas.Descriptor{NoAutoConvert: true}
			switch variant {
			case "row-nomask", "row-mask":
				desc.Direction = graphblas.ForcePull
				u.ToDense()
			default:
				desc.Direction = graphblas.ForcePush
			}
			masked := variant == "row-mask" || variant == "col-mask"
			w := graphblas.NewVector[bool](n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if masked {
					_, err = graphblas.MxV(w, mask, nil, sr, g, u, desc)
				} else {
					_, err = graphblas.MxV(w, (*graphblas.Vector[bool])(nil), nil, sr, g, u, desc)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2 runs BFS under each cumulative optimization
// configuration — the Table 2 rows.
func BenchmarkTable2(b *testing.B) {
	configs := []struct {
		name string
		opt  algorithms.BFSOptions
	}{
		{"baseline", algorithms.AllOff()},
		{"structure-only", func() algorithms.BFSOptions {
			o := algorithms.AllOff()
			o.DisableStructureOnly = false
			return o
		}()},
		{"change-of-direction", func() algorithms.BFSOptions {
			o := algorithms.AllOff()
			o.DisableStructureOnly = false
			o.DisableDirectionOpt = false
			return o
		}()},
		{"masking", func() algorithms.BFSOptions {
			o := algorithms.AllOff()
			o.DisableStructureOnly = false
			o.DisableDirectionOpt = false
			o.DisableMasking = false
			o.DisableMaskAmortize = false
			return o
		}()},
		{"early-exit", func() algorithms.BFSOptions {
			o := algorithms.AllOff()
			o.DisableStructureOnly = false
			o.DisableDirectionOpt = false
			o.DisableMasking = false
			o.DisableMaskAmortize = false
			o.DisableEarlyExit = false
			return o
		}()},
		{"operand-reuse-full", algorithms.BFSOptions{}},
	}
	g := kron()
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			var edges int64
			for i := 0; i < b.N; i++ {
				res, err := algorithms.BFS(g, 0, cfg.opt)
				if err != nil {
					b.Fatal(err)
				}
				edges = res.EdgesTraversed
			}
			b.ReportMetric(float64(edges)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MTEPS")
		})
	}
}

// BenchmarkFig5Kernels times the two masked kernels on a realistic
// mid-BFS frontier — the Figure 5b series.
func BenchmarkFig5Kernels(b *testing.B) {
	g := kron()
	n := g.NRows()
	// Build the level-2 frontier of a real BFS.
	res, err := algorithms.BFS(g, 0, algorithms.BFSOptions{})
	if err != nil {
		b.Fatal(err)
	}
	frontier := graphblas.NewVector[bool](n)
	visited := graphblas.NewVector[bool](n)
	visited.ToDense()
	for v, d := range res.Depths {
		if d == 1 {
			_ = frontier.SetElement(v, true)
		}
		if d >= 0 && d <= 1 {
			_ = visited.SetElement(v, true)
		}
	}
	sr := graphblas.OrAndBool()
	b.Run("push-masked", func(b *testing.B) {
		desc := &graphblas.Descriptor{Transpose: true, StructuralComplement: true,
			Direction: graphblas.ForcePush, StructureOnly: true}
		w := graphblas.NewVector[bool](n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fc := frontier.Dup()
			if _, err := graphblas.MxV(w, visited, nil, sr, g, fc, desc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pull-masked", func(b *testing.B) {
		desc := &graphblas.Descriptor{Transpose: true, StructuralComplement: true,
			Direction: graphblas.ForcePull, StructureOnly: true}
		w := graphblas.NewVector[bool](n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := graphblas.MxV(w, visited, nil, sr, g, visited, desc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig6Traversals runs the push-only and pull-only whole
// traversals whose per-iteration samples make up Figure 6.
func BenchmarkFig6Traversals(b *testing.B) {
	g := kron()
	b.Run("push-only", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algorithms.BFS(g, 0, algorithms.BFSOptions{DisableDirectionOpt: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pull-only", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algorithms.BFS(g, 0, algorithms.BFSOptions{ForcePull: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFrameworks is the Figure 7 comparison: every framework on the
// kron (scale-free) and roadnet (mesh) stand-ins.
func BenchmarkFrameworks(b *testing.B) {
	for _, dsName := range []string{"kron", "roadnet"} {
		ds, err := harness.FindDataset(benchScale, dsName)
		if err != nil {
			b.Fatal(err)
		}
		g, err := ds.Build()
		if err != nil {
			b.Fatal(err)
		}
		fg := frameworks.FromMatrix(g)
		for _, r := range frameworks.All() {
			runner := r
			b.Run(fmt.Sprintf("%s/%s", dsName, runner.Name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					runner.BFS(fg, 0)
				}
			})
		}
		b.Run(fmt.Sprintf("%s/ThisWork", dsName), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := algorithms.BFS(g, 0, algorithms.BFSOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMerge races the three push-phase merge strategies —
// the Section 6.2 design choice.
func BenchmarkAblationMerge(b *testing.B) {
	g := kron()
	for _, m := range []struct {
		name string
		kind graphblas.MergeStrategy
	}{{"radix", graphblas.MergeRadix}, {"heap", graphblas.MergeHeap}, {"spa", graphblas.MergeSPA}} {
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := algorithms.BFS(g, 0, algorithms.BFSOptions{Merge: m.kind}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFusedBFS quantifies the Section 7.3 kernel-fusion extension
// against the unfused Algorithm 1 (compare with
// BenchmarkTable2/operand-reuse-full).
func BenchmarkFusedBFS(b *testing.B) {
	g := kron()
	b.ReportAllocs()
	var edges int64
	for i := 0; i < b.N; i++ {
		res, err := algorithms.FusedBFS(g, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		edges = res.EdgesTraversed
	}
	b.ReportMetric(float64(edges)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MTEPS")
}

// BenchmarkMultiBFS measures the bit-parallel 64-source traversal against
// 64 sequential BFS runs (the batched-BC motivation of Section 5.6).
func BenchmarkMultiBFS(b *testing.B) {
	g := kron()
	sources := make([]int, 64)
	for i := range sources {
		sources[i] = (i * 131) % g.NRows()
	}
	b.Run("batched-64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algorithms.MultiBFS(g, sources); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential-64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range sources {
				if _, err := algorithms.BFS(g, s, algorithms.BFSOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkGeneralityAlgorithms covers the Section 5.6 generality set.
func BenchmarkGeneralityAlgorithms(b *testing.B) {
	g := kron()
	b.Run("sssp", func(b *testing.B) {
		w, err := harness.WeightedKron(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := algorithms.SSSP(w, 0, algorithms.SSSPOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pagerank", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algorithms.PageRank(g, algorithms.PageRankOptions{MaxIter: 20}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("adaptive-pagerank", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algorithms.AdaptivePageRank(g, algorithms.PageRankOptions{MaxIter: 20}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("triangle-count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algorithms.TriangleCount(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mis", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algorithms.MIS(g, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

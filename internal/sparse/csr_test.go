package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustFromCOO[T any](t *testing.T, nr, nc int, rows, cols []uint32, vals []T, dup func(T, T) T) *CSR[T] {
	t.Helper()
	a, err := FromCOO(nr, nc, rows, cols, vals, dup)
	if err != nil {
		t.Fatalf("FromCOO: %v", err)
	}
	if err := Validate(a); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return a
}

func TestFromCOOBasic(t *testing.T) {
	//   [ .  1  . ]
	//   [ 2  .  3 ]
	//   [ .  .  4 ]
	rows := []uint32{1, 0, 2, 1}
	cols := []uint32{0, 1, 2, 2}
	vals := []float64{2, 1, 4, 3}
	a := mustFromCOO(t, 3, 3, rows, cols, vals, nil)
	if a.NNZ() != 4 {
		t.Fatalf("nnz=%d want 4", a.NNZ())
	}
	ind, val := a.RowSpan(1)
	if len(ind) != 2 || ind[0] != 0 || ind[1] != 2 || val[0] != 2 || val[1] != 3 {
		t.Fatalf("row 1 = %v %v", ind, val)
	}
	if a.RowLen(0) != 1 || a.RowLen(2) != 1 {
		t.Fatal("wrong row lengths")
	}
}

func TestFromCOODuplicateFolding(t *testing.T) {
	rows := []uint32{0, 0, 0, 1, 0}
	cols := []uint32{1, 1, 2, 0, 1}
	vals := []int{5, 7, 1, 9, 3}
	sum := func(a, b int) int { return a + b }
	a := mustFromCOO(t, 2, 3, rows, cols, vals, sum)
	if a.NNZ() != 3 {
		t.Fatalf("nnz=%d want 3", a.NNZ())
	}
	ind, val := a.RowSpan(0)
	if ind[0] != 1 || val[0] != 15 {
		t.Fatalf("folded (0,1)=%d want 15", val[0])
	}
	// nil dup keeps last write (input order is not guaranteed among equal
	// keys after the radix sorts, but our sorts are stable so the last
	// original triple wins).
	b := mustFromCOO(t, 2, 3, rows, cols, vals, nil)
	ind, val = b.RowSpan(0)
	if ind[0] != 1 || val[0] != 3 {
		t.Fatalf("last-write (0,1)=%d want 3", val[0])
	}
}

func TestFromCOOErrors(t *testing.T) {
	if _, err := FromCOO(2, 2, []uint32{5}, []uint32{0}, []int{1}, nil); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, err := FromCOO(2, 2, []uint32{0}, []uint32{9}, []int{1}, nil); err == nil {
		t.Fatal("out-of-range col accepted")
	}
	if _, err := FromCOO(2, 2, []uint32{0, 1}, []uint32{0}, []int{1}, nil); err == nil {
		t.Fatal("mismatched slices accepted")
	}
	if _, err := FromCOO(-1, 2, nil, nil, []int{}, nil); err == nil {
		t.Fatal("negative dimension accepted")
	}
	if a, err := FromCOO(0, 0, nil, nil, []int{}, nil); err != nil || a.NNZ() != 0 {
		t.Fatalf("empty matrix: %v", err)
	}
}

func randomCOO(rng *rand.Rand, nr, nc, n int) ([]uint32, []uint32, []float64) {
	rows := make([]uint32, n)
	cols := make([]uint32, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = uint32(rng.Intn(nr))
		cols[i] = uint32(rng.Intn(nc))
		vals[i] = rng.Float64()
	}
	return rows, cols, vals
}

func TestFromCOOAgainstDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nr, nc := 1+rng.Intn(20), 1+rng.Intn(20)
		n := rng.Intn(4 * nr * nc / 3)
		rows, cols, vals := randomCOO(rng, nr, nc, n)
		sum := func(a, b float64) float64 { return a + b }
		a := mustFromCOO(t, nr, nc, rows, cols, vals, sum)
		dense := make([][]float64, nr)
		present := make([][]bool, nr)
		for i := range dense {
			dense[i] = make([]float64, nc)
			present[i] = make([]bool, nc)
		}
		for i := 0; i < n; i++ {
			dense[rows[i]][cols[i]] += vals[i]
			present[rows[i]][cols[i]] = true
		}
		got := 0
		for r := 0; r < nr; r++ {
			ind, val := a.RowSpan(r)
			for k := range ind {
				c := ind[k]
				if !present[r][c] {
					t.Fatalf("trial %d: spurious entry (%d,%d)", trial, r, c)
				}
				if diff := dense[r][c] - val[k]; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("trial %d: (%d,%d)=%g want %g", trial, r, c, val[k], dense[r][c])
				}
				got++
			}
		}
		want := 0
		for r := range present {
			for c := range present[r] {
				if present[r][c] {
					want++
				}
			}
		}
		if got != want {
			t.Fatalf("trial %d: nnz=%d want %d", trial, got, want)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr, nc := 1+rng.Intn(30), 1+rng.Intn(30)
		rows, cols, vals := randomCOO(rng, nr, nc, rng.Intn(200))
		a, err := FromCOO(nr, nc, rows, cols, vals, func(x, y float64) float64 { return x + y })
		if err != nil {
			return false
		}
		tt := Transpose(Transpose(a))
		if tt.Rows != a.Rows || tt.Cols != a.Cols || tt.NNZ() != a.NNZ() {
			return false
		}
		for i := range a.Ptr {
			if a.Ptr[i] != tt.Ptr[i] {
				return false
			}
		}
		for i := range a.Ind {
			if a.Ind[i] != tt.Ind[i] || a.Val[i] != tt.Val[i] {
				return false
			}
		}
		return Validate(Transpose(a)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeMovesEntries(t *testing.T) {
	rows := []uint32{0, 1, 2}
	cols := []uint32{2, 0, 1}
	vals := []int{10, 20, 30}
	a := mustFromCOO(t, 3, 3, rows, cols, vals, nil)
	at := Transpose(a)
	ind, val := at.RowSpan(2)
	if len(ind) != 1 || ind[0] != 0 || val[0] != 10 {
		t.Fatalf("transpose row 2 = %v %v", ind, val)
	}
}

func TestPatternSymmetric(t *testing.T) {
	// Symmetric pattern (values may differ).
	rows := []uint32{0, 1, 1, 2}
	cols := []uint32{1, 0, 2, 1}
	vals := []int{1, 2, 3, 4}
	a := mustFromCOO(t, 3, 3, rows, cols, vals, nil)
	if !PatternSymmetric(a) {
		t.Fatal("symmetric pattern not detected")
	}
	b := mustFromCOO(t, 3, 3, []uint32{0}, []uint32{1}, []int{1}, nil)
	if PatternSymmetric(b) {
		t.Fatal("asymmetric pattern reported symmetric")
	}
	c := mustFromCOO(t, 2, 3, []uint32{0}, []uint32{1}, []int{1}, nil)
	if PatternSymmetric(c) {
		t.Fatal("non-square matrix reported symmetric")
	}
}

func TestDegreeStats(t *testing.T) {
	rows := []uint32{0, 0, 0, 1}
	cols := []uint32{0, 1, 2, 0}
	vals := []bool{true, true, true, true}
	a := mustFromCOO(t, 3, 3, rows, cols, vals, nil)
	if MaxRowLen(a) != 3 {
		t.Fatalf("MaxRowLen=%d want 3", MaxRowLen(a))
	}
	if avg := AvgRowLen(a); avg < 1.33 || avg > 1.34 {
		t.Fatalf("AvgRowLen=%g want 4/3", avg)
	}
	var empty CSR[bool]
	if AvgRowLen(&empty) != 0 {
		t.Fatal("empty matrix should have zero average degree")
	}
}

func TestScale(t *testing.T) {
	rows := []uint32{0, 1}
	cols := []uint32{1, 0}
	vals := []bool{true, true}
	a := mustFromCOO(t, 2, 2, rows, cols, vals, nil)
	w := Scale(a, func(bool) float64 { return 2.5 })
	if w.Val[0] != 2.5 || w.Val[1] != 2.5 {
		t.Fatalf("Scale values = %v", w.Val)
	}
	if w.NNZ() != a.NNZ() || w.Rows != a.Rows {
		t.Fatal("Scale changed shape")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	a := mustFromCOO(t, 2, 2, []uint32{0, 1}, []uint32{1, 0}, []int{1, 2}, nil)
	a.Ind[0] = 7
	if Validate(a) == nil {
		t.Fatal("out-of-range index not caught")
	}
	b := mustFromCOO(t, 2, 2, []uint32{0, 0}, []uint32{0, 1}, []int{1, 2}, nil)
	b.Ind[1] = 0
	if Validate(b) == nil {
		t.Fatal("unsorted row not caught")
	}
	c := mustFromCOO(t, 2, 2, []uint32{0}, []uint32{1}, []int{1}, nil)
	c.Ptr[2] = 5
	if Validate(c) == nil {
		t.Fatal("bad Ptr endpoint not caught")
	}
}

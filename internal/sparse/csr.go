// Package sparse provides the compressed sparse matrix substrate: COO→CSR
// construction with duplicate folding, CSR↔CSC transposition, and the
// degree statistics the experiment harness reports (Table 3).
//
// Conventions: a CSR stores one sorted, duplicate-free index run per row.
// Column indices are uint32 (the paper's graphs top out well under 2³²
// vertices); row pointers are int so nnz may exceed 2³¹ on 64-bit hosts.
package sparse

import (
	"errors"
	"fmt"

	"pushpull/internal/merge"
	"pushpull/internal/par"
)

// CSR is a compressed-sparse-row matrix with values of type T. The zero
// value is an empty 0×0 matrix. A CSR with Rows=r and Cols=c viewed as CSC
// of its transpose is the same bytes, so the pull kernels take "CSR of Aᵀ".
type CSR[T any] struct {
	Rows, Cols int
	// Ptr has Rows+1 entries; row i occupies Ind[Ptr[i]:Ptr[i+1]].
	Ptr []int
	// Ind holds column indices, sorted ascending within each row.
	Ind []uint32
	// Val holds the value for each stored index. Kernels running in
	// structure-only mode never read it.
	Val []T
}

// NNZ reports the number of stored entries.
func (a *CSR[T]) NNZ() int { return len(a.Ind) }

// RowSpan returns the column indices and values of row i.
func (a *CSR[T]) RowSpan(i int) ([]uint32, []T) {
	lo, hi := a.Ptr[i], a.Ptr[i+1]
	return a.Ind[lo:hi], a.Val[lo:hi]
}

// RowLen reports the number of stored entries in row i.
func (a *CSR[T]) RowLen(i int) int { return a.Ptr[i+1] - a.Ptr[i] }

// FromCOO builds a CSR from unordered coordinate triples, folding duplicate
// (row, col) entries with dup (pass nil to keep the last write). Inputs are
// not modified.
func FromCOO[T any](nrows, ncols int, rows, cols []uint32, vals []T, dup func(T, T) T) (*CSR[T], error) {
	if nrows < 0 || ncols < 0 {
		return nil, fmt.Errorf("sparse: negative dimension %d×%d", nrows, ncols)
	}
	if len(rows) != len(cols) || len(rows) != len(vals) {
		return nil, fmt.Errorf("sparse: triple slices disagree: %d rows, %d cols, %d vals",
			len(rows), len(cols), len(vals))
	}
	for i := range rows {
		if int(rows[i]) >= nrows || int(cols[i]) >= ncols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %d×%d", rows[i], cols[i], nrows, ncols)
		}
	}
	n := len(rows)
	// Two stable LSD sorts give (row, col) order: sort the permutation by
	// column, then by row; stability preserves column order within rows.
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	if n > 0 {
		colKeys := append([]uint32(nil), cols...)
		merge.SortPairs(colKeys, perm, uint32(ncols-1))
		rowKeys := make([]uint32, n)
		for i, p := range perm {
			rowKeys[i] = rows[p]
		}
		merge.SortPairs(rowKeys, perm, uint32(nrows-1))
	}
	a := &CSR[T]{
		Rows: nrows,
		Cols: ncols,
		Ptr:  make([]int, nrows+1),
		Ind:  make([]uint32, 0, n),
		Val:  make([]T, 0, n),
	}
	counts := make([]int, nrows)
	for _, p := range perm {
		r, c, v := rows[p], cols[p], vals[p]
		// Triples arrive (row, col)-sorted, so a duplicate of (r, c) can
		// only be the immediately preceding stored entry, and counts[r] > 0
		// guarantees that entry belongs to row r rather than a previous row
		// that happened to end at column c.
		if m := len(a.Ind); counts[r] > 0 && a.Ind[m-1] == c {
			if dup != nil {
				a.Val[m-1] = dup(a.Val[m-1], v)
			} else {
				a.Val[m-1] = v
			}
			continue
		}
		a.Ind = append(a.Ind, c)
		a.Val = append(a.Val, v)
		counts[r]++
	}
	sum := 0
	for i, c := range counts {
		a.Ptr[i] = sum
		sum += c
	}
	a.Ptr[nrows] = sum
	return a, nil
}

// Transpose returns Aᵀ as a new CSR (equivalently: the CSC view of A). It
// uses a counting sort over columns, so row runs in the result are sorted
// and duplicate-free whenever the input's are.
func Transpose[T any](a *CSR[T]) *CSR[T] {
	t := &CSR[T]{
		Rows: a.Cols,
		Cols: a.Rows,
		Ptr:  make([]int, a.Cols+1),
		Ind:  make([]uint32, a.NNZ()),
		Val:  make([]T, a.NNZ()),
	}
	counts := make([]int, a.Cols)
	for _, c := range a.Ind {
		counts[c]++
	}
	sum := 0
	for c := 0; c < a.Cols; c++ {
		t.Ptr[c] = sum
		sum += counts[c]
	}
	t.Ptr[a.Cols] = sum
	next := append([]int(nil), t.Ptr[:a.Cols]...)
	for r := 0; r < a.Rows; r++ {
		for k := a.Ptr[r]; k < a.Ptr[r+1]; k++ {
			c := a.Ind[k]
			pos := next[c]
			t.Ind[pos] = uint32(r)
			t.Val[pos] = a.Val[k]
			next[c]++
		}
	}
	return t
}

// PatternSymmetric reports whether A's sparsity pattern equals its
// transpose's. Undirected graphs are pattern-symmetric, which lets the
// matrix layer share one structure for CSR and CSC.
func PatternSymmetric[T any](a *CSR[T]) bool {
	if a.Rows != a.Cols {
		return false
	}
	t := Transpose(a)
	for i := range a.Ptr {
		if a.Ptr[i] != t.Ptr[i] {
			return false
		}
	}
	for i := range a.Ind {
		if a.Ind[i] != t.Ind[i] {
			return false
		}
	}
	return true
}

// MaxRowLen returns the largest row population — the "max degree" column of
// Table 3 when A is an adjacency matrix.
func MaxRowLen[T any](a *CSR[T]) int {
	maxLen := 0
	for i := 0; i < a.Rows; i++ {
		if l := a.RowLen(i); l > maxLen {
			maxLen = l
		}
	}
	return maxLen
}

// AvgRowLen returns the mean row population d, the quantity the paper's
// cost model (Table 1) and direction heuristic (Section 6.3) call the
// average number of nonzeroes per row.
func AvgRowLen[T any](a *CSR[T]) float64 {
	if a.Rows == 0 {
		return 0
	}
	return float64(a.NNZ()) / float64(a.Rows)
}

// Validate checks CSR structural invariants: monotone Ptr, sorted
// duplicate-free rows, in-range indices. It is used by tests and by the
// Matrix Market loader.
func Validate[T any](a *CSR[T]) error {
	if len(a.Ptr) != a.Rows+1 {
		return fmt.Errorf("sparse: Ptr length %d, want %d", len(a.Ptr), a.Rows+1)
	}
	if a.Ptr[0] != 0 || a.Ptr[a.Rows] != len(a.Ind) {
		return errors.New("sparse: Ptr endpoints disagree with Ind length")
	}
	if len(a.Ind) != len(a.Val) {
		return fmt.Errorf("sparse: %d indices but %d values", len(a.Ind), len(a.Val))
	}
	for r := 0; r < a.Rows; r++ {
		if a.Ptr[r] > a.Ptr[r+1] {
			return fmt.Errorf("sparse: Ptr not monotone at row %d", r)
		}
		for k := a.Ptr[r]; k < a.Ptr[r+1]; k++ {
			if int(a.Ind[k]) >= a.Cols {
				return fmt.Errorf("sparse: column %d out of range in row %d", a.Ind[k], r)
			}
			if k > a.Ptr[r] && a.Ind[k-1] >= a.Ind[k] {
				return fmt.Errorf("sparse: row %d not strictly sorted at offset %d", r, k)
			}
		}
	}
	return nil
}

// Scale returns a copy of A with every stored value replaced by f(value).
// The experiment harness uses it to re-weight pattern graphs for SSSP.
func Scale[T, U any](a *CSR[T], f func(T) U) *CSR[U] {
	out := &CSR[U]{
		Rows: a.Rows,
		Cols: a.Cols,
		Ptr:  append([]int(nil), a.Ptr...),
		Ind:  append([]uint32(nil), a.Ind...),
		Val:  make([]U, len(a.Val)),
	}
	par.For(len(a.Val), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Val[i] = f(a.Val[i])
		}
	})
	return out
}

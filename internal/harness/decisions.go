package harness

import (
	"pushpull/algorithms"
	"pushpull/generate"
	"pushpull/graphblas"
	"pushpull/internal/core"
	"pushpull/internal/perf"
)

// This file grades the direction planner against the machine: for every
// iteration of a BFS it reruns *both* kernels on the iteration's actual
// frontier, then asks each cost model — unit RAM weights and, when a
// profile is loaded, the calibrated nanosecond model — which kernel it
// would have scheduled. The decision-quality table in `ppbench bench`
// reports the fraction of iterations where each model picked the
// measured-faster kernel, so the perf trajectory in CI tracks decision
// accuracy, not just ns/op.

// DecisionRow is one BFS iteration of the decision-quality replay.
type DecisionRow struct {
	Iteration   int
	FrontierNNZ int
	PushMS      float64
	PullMS      float64
	// UnitDir and CalDir are the directions the unit and calibrated
	// models would schedule (CalDir meaningless when no model was given).
	UnitDir core.Direction
	CalDir  core.Direction
	// UnitGood/CalGood report whether the scheduled kernel was measured
	// faster-or-equal (within the noise tolerance) than the alternative.
	UnitGood bool
	CalGood  bool
}

// DecisionReport is one graph's replay plus the headline accuracies.
type DecisionReport struct {
	Graph string
	Rows  []DecisionRow
	// UnitAccuracy and CalAccuracy are the fraction of iterations whose
	// scheduled kernel was measured faster-or-equal. CalAccuracy is -1
	// when no calibrated model was supplied.
	UnitAccuracy float64
	CalAccuracy  float64
}

// decisionTolerance treats a decision as correct when its kernel is
// within 10% of the faster one: both directions measure equal up to
// timing noise near the crossover, and either choice is right there.
const decisionTolerance = 1.10

// DecisionQuality replays a BFS per graph — the skewed kron stand-in and
// a uniform Erdős–Rényi — timing both kernels at every level and grading
// both models' choices. model == nil grades only the unit model.
func DecisionQuality(scale int, model *core.CostModel) ([]DecisionReport, error) {
	var reports []DecisionReport
	for _, ds := range decisionDatasets(scale) {
		g, err := ds.Build()
		if err != nil {
			return nil, err
		}
		rep, err := decisionReplay(ds.Name, g, model)
		if err != nil {
			return nil, err
		}
		reports = append(reports, *rep)
	}
	return reports, nil
}

// decisionDatasets pairs the scale-free kron stand-in with a uniform
// random graph of similar size: the two regimes whose crossovers differ
// the most (Besta et al.'s machine- and workload-dependence).
func decisionDatasets(scale int) []Dataset {
	kron := KronDataset(scale)
	return []Dataset{
		{Name: "kron", Build: kron.Build},
		{Name: "uniform", Build: uniformDataset(scale)},
	}
}

func uniformDataset(scale int) func() (*graphblas.Matrix[bool], error) {
	return func() (*graphblas.Matrix[bool], error) {
		n := 1 << scale
		return generate.ErdosRenyi(n, 8/float64(n), 404)
	}
}

// decisionReplay reconstructs every BFS level of one traversal and times
// both kernels on it, mirroring the Fig5 replay; each level is then
// planned independently under both models (separate hysteresis states, so
// each model's trajectory is the one it would really produce).
func decisionReplay(name string, g *graphblas.Matrix[bool], model *core.CostModel) (*DecisionReport, error) {
	n := g.NRows()
	src := pickSources(g, 1, 3)[0]
	res, err := algorithms.BFS(g, src, algorithms.BFSOptions{})
	if err != nil {
		return nil, err
	}
	maxDepth := int32(0)
	for _, d := range res.Depths {
		if d > maxDepth {
			maxDepth = d
		}
	}
	sr := graphblas.OrAndBool()
	avgDeg := core.AvgRowDegree(g.CSR().NNZ(), n)
	csc := g.CSC()

	rep := &DecisionReport{Graph: name, CalAccuracy: -1}
	var unitState, calState core.PlanState
	unitGood, calGood := 0, 0
	for depth := int32(1); depth <= maxDepth; depth++ {
		frontier := graphblas.NewVector[bool](n)
		visited := graphblas.NewVector[bool](n)
		visited.ToBitset()
		visitedCount := 0
		for v, d := range res.Depths {
			if d == depth-1 {
				_ = frontier.SetElement(v, true)
			}
			if d >= 0 && d < depth {
				_ = visited.SetElement(v, true)
				visitedCount++
			}
		}
		frontierInd, _ := frontier.SparseIndices()
		pushEdges := 0.0
		for _, i := range frontierInd {
			pushEdges += float64(csc.RowLen(int(i)))
		}
		row := DecisionRow{Iteration: int(depth), FrontierNNZ: frontier.NVals()}

		// Measure both kernels on this level's real operands, the way BFS
		// would run them: masked push on the sparse frontier, masked pull
		// with operand reuse and the unvisited allow-list.
		// No NoAutoConvert: a forced push still takes the planner's
		// sort-free bitmap scatter on dense frontiers, exactly like the
		// kernel BFS would schedule.
		pushDesc := &graphblas.Descriptor{
			Transpose: true, StructuralComplement: true,
			Direction: graphblas.ForcePush, StructureOnly: true,
		}
		row.PushMS = ms(perf.TimeN(1, 3, func() {
			out := graphblas.NewVector[bool](n)
			if _, err := graphblas.MxV(out, visited, nil, sr, g, frontier, pushDesc); err != nil {
				panic(err)
			}
		}))
		var allow []uint32
		_, visWords := visited.BitsetView()
		for i := 0; i < n; i++ {
			if !core.BitsetGet(visWords, i) {
				allow = append(allow, uint32(i))
			}
		}
		pullDesc := &graphblas.Descriptor{
			Transpose: true, StructuralComplement: true,
			Direction: graphblas.ForcePull, StructureOnly: true,
			MaskAllowList: allow,
		}
		row.PullMS = ms(perf.TimeN(1, 3, func() {
			out := graphblas.NewVector[bool](n)
			if _, err := graphblas.MxV(out, visited, nil, sr, g, visited, pullDesc); err != nil {
				panic(err)
			}
		}))

		in := core.PlanInput{
			NNZ: frontier.NVals(), N: n, OutRows: n,
			PushEdges: pushEdges, AvgDeg: avgDeg,
			MaskAllowFrac: float64(n-visitedCount) / float64(n),
			InKind:        core.KindBitset,
		}
		row.UnitDir = core.DecideDirection(in, &unitState).Dir
		row.UnitGood = decisionGood(row.UnitDir, row.PushMS, row.PullMS)
		if row.UnitGood {
			unitGood++
		}
		if model != nil {
			in.Model = *model
			row.CalDir = core.DecideDirection(in, &calState).Dir
			row.CalGood = decisionGood(row.CalDir, row.PushMS, row.PullMS)
			if row.CalGood {
				calGood++
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	if len(rep.Rows) > 0 {
		rep.UnitAccuracy = float64(unitGood) / float64(len(rep.Rows))
		if model != nil {
			rep.CalAccuracy = float64(calGood) / float64(len(rep.Rows))
		}
	}
	return rep, nil
}

// decisionGood grades one choice against the two measurements.
func decisionGood(dir core.Direction, pushMS, pullMS float64) bool {
	if dir == core.Push {
		return pushMS <= pullMS*decisionTolerance
	}
	return pullMS <= pushMS*decisionTolerance
}

package harness

import (
	"math/rand"
	"time"

	"pushpull/algorithms"
	"pushpull/graphblas"
	"pushpull/internal/perf"
)

// Table2Row is one line of the optimization-impact table: a configuration,
// its throughput, and the speedup over the previous (cumulative) step.
type Table2Row struct {
	Optimization string
	GTEPS        float64
	MeanMS       float64
	Speedup      float64
}

// Table2 reproduces the cumulative optimization stack of the paper's
// Table 2 on the kron stand-in: baseline → +structure-only → +change of
// direction → +masking → +early-exit → +operand-reuse, averaged over
// `sources` random BFS roots, `runs` timed repetitions each.
func Table2(scale, sources, runs int) ([]Table2Row, error) {
	g, err := KronDataset(scale).Build()
	if err != nil {
		return nil, err
	}
	steps := []struct {
		name string
		opt  algorithms.BFSOptions
	}{
		{"Baseline", algorithms.AllOff()},
		{"Structure only", func() algorithms.BFSOptions {
			o := algorithms.AllOff()
			o.DisableStructureOnly = false
			return o
		}()},
		{"Change of direction", func() algorithms.BFSOptions {
			o := algorithms.AllOff()
			o.DisableStructureOnly = false
			o.DisableDirectionOpt = false
			return o
		}()},
		{"Masking", func() algorithms.BFSOptions {
			o := algorithms.AllOff()
			o.DisableStructureOnly = false
			o.DisableDirectionOpt = false
			o.DisableMasking = false
			o.DisableMaskAmortize = false
			return o
		}()},
		{"Early exit", func() algorithms.BFSOptions {
			o := algorithms.AllOff()
			o.DisableStructureOnly = false
			o.DisableDirectionOpt = false
			o.DisableMasking = false
			o.DisableMaskAmortize = false
			o.DisableEarlyExit = false
			return o
		}()},
		{"Operand reuse", algorithms.BFSOptions{}},
	}
	roots := pickSources(g, sources, 7)
	var rows []Table2Row
	prevMS := 0.0
	for _, step := range steps {
		var totalDur time.Duration
		var totalEdges int64
		for _, src := range roots {
			var res algorithms.BFSResult
			d := perf.TimeN(1, runs, func() {
				r, err := algorithms.BFS(g, src, step.opt)
				if err != nil {
					panic(err)
				}
				res = r
			})
			totalDur += d
			totalEdges += res.EdgesTraversed
		}
		meanDur := totalDur / time.Duration(len(roots))
		meanEdges := totalEdges / int64(len(roots))
		row := Table2Row{
			Optimization: step.name,
			GTEPS:        perf.GTEPS(meanEdges, meanDur),
			MeanMS:       ms(meanDur),
		}
		if prevMS > 0 {
			row.Speedup = prevMS / row.MeanMS
		}
		prevMS = row.MeanMS
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig5Row is one BFS iteration of the Figure 5 experiment: the frontier
// and unvisited sizes, and the runtime of the masked pull and masked push
// kernels on that iteration's actual frontier.
type Fig5Row struct {
	Iteration    int
	FrontierNNZ  int
	UnvisitedNNZ int
	PushMS       float64
	PullMS       float64
}

// Fig5 reproduces Figure 5: per-iteration frontier/unvisited counts and
// the runtime of both masked kernels at each level of a kron BFS.
func Fig5(scale int) ([]Fig5Row, error) {
	g, err := KronDataset(scale).Build()
	if err != nil {
		return nil, err
	}
	n := g.NRows()
	src := pickSources(g, 1, 3)[0]
	res, err := algorithms.BFS(g, src, algorithms.BFSOptions{})
	if err != nil {
		return nil, err
	}
	maxDepth := int32(0)
	for _, d := range res.Depths {
		if d > maxDepth {
			maxDepth = d
		}
	}
	sr := graphblas.OrAndBool()
	var rows []Fig5Row
	visitedCount := 1
	for depth := int32(1); depth <= maxDepth; depth++ {
		// Reconstruct the level-(depth-1) frontier and the visited set
		// before this iteration.
		frontier := graphblas.NewVector[bool](n)
		visited := graphblas.NewVector[bool](n)
		visited.ToBitmap()
		for v, d := range res.Depths {
			if d == depth-1 {
				_ = frontier.SetElement(v, true)
			}
			if d >= 0 && d < depth {
				_ = visited.SetElement(v, true)
			}
		}
		fNNZ := frontier.NVals()
		row := Fig5Row{
			Iteration:    int(depth),
			FrontierNNZ:  fNNZ,
			UnvisitedNNZ: n - visitedCount,
		}
		visitedCount += countDepth(res.Depths, depth)

		// Push: masked column kernel on the sparse frontier.
		pushDesc := &graphblas.Descriptor{
			Transpose: true, StructuralComplement: true,
			Direction: graphblas.ForcePush, StructureOnly: true,
		}
		row.PushMS = ms(perf.TimeN(1, 3, func() {
			out := graphblas.NewVector[bool](n)
			fc := frontier.Dup()
			if _, err := graphblas.MxV(out, visited, nil, sr, g, fc, pushDesc); err != nil {
				panic(err)
			}
		}))
		// Pull: masked row kernel with the unvisited allow-list, operand
		// reuse input.
		var allow []uint32
		_, visBits := visited.DenseView()
		for i := 0; i < n; i++ {
			if !visBits[i] {
				allow = append(allow, uint32(i))
			}
		}
		pullDesc := &graphblas.Descriptor{
			Transpose: true, StructuralComplement: true,
			Direction: graphblas.ForcePull, StructureOnly: true,
			MaskAllowList: allow,
		}
		row.PullMS = ms(perf.TimeN(1, 3, func() {
			out := graphblas.NewVector[bool](n)
			if _, err := graphblas.MxV(out, visited, nil, sr, g, visited, pullDesc); err != nil {
				panic(err)
			}
		}))
		rows = append(rows, row)
	}
	return rows, nil
}

func countDepth(depths []int32, d int32) int {
	c := 0
	for _, x := range depths {
		if x == d {
			c++
		}
	}
	return c
}

// Fig6Point is one (iteration, size, runtime) sample of the Figure 6
// scatter: Mode is "push" or "pull", NNZ is the frontier size for push
// series and the unvisited count for pull series.
type Fig6Point struct {
	Mode      string
	Source    int
	Iteration int
	NNZ       int
	MS        float64
}

// Fig6 reproduces Figure 6: BFS from `sources` random roots on kron, once
// push-only and once pull-only, recording each iteration's size and
// runtime. The push series traces the supervertex oval; the pull series
// traces the backwards-L.
func Fig6(scale, sources int) ([]Fig6Point, error) {
	g, err := KronDataset(scale).Build()
	if err != nil {
		return nil, err
	}
	n := g.NRows()
	roots := pickSources(g, sources, 11)
	var pts []Fig6Point
	for _, src := range roots {
		visited := 1
		trace := func(mode string) func(algorithms.IterStats) {
			return func(s algorithms.IterStats) {
				nnz := s.FrontierNNZ
				if mode == "pull" {
					nnz = n - visited
				}
				visited += s.FrontierNNZ
				pts = append(pts, Fig6Point{
					Mode: mode, Source: src, Iteration: s.Iteration,
					NNZ: nnz, MS: ms(s.Duration),
				})
			}
		}
		if _, err := algorithms.BFS(g, src, algorithms.BFSOptions{
			DisableDirectionOpt: true, Trace: trace("push"),
		}); err != nil {
			return nil, err
		}
		visited = 1
		if _, err := algorithms.BFS(g, src, algorithms.BFSOptions{
			ForcePull: true, Trace: trace("pull"),
		}); err != nil {
			return nil, err
		}
	}
	return pts, nil
}

// AblationRow is one configuration of the design-choice ablation.
type AblationRow struct {
	Config string
	MeanMS float64
}

// Ablation races the design choices DESIGN.md calls out: the three
// push-phase merge strategies, the mask-amortization list, operand reuse,
// and a switch-point sensitivity sweep around the paper's α = β = 0.01.
func Ablation(scale, sources, runs int) ([]AblationRow, error) {
	g, err := KronDataset(scale).Build()
	if err != nil {
		return nil, err
	}
	roots := pickSources(g, sources, 13)
	configs := []struct {
		name string
		opt  algorithms.BFSOptions
	}{
		{"merge=radix (paper)", algorithms.BFSOptions{Merge: graphblas.MergeRadix}},
		{"merge=heap", algorithms.BFSOptions{Merge: graphblas.MergeHeap}},
		{"merge=spa", algorithms.BFSOptions{Merge: graphblas.MergeSPA}},
		{"no-mask-amortize (O(M) scan)", algorithms.BFSOptions{DisableMaskAmortize: true}},
		{"no-operand-reuse", algorithms.BFSOptions{DisableOperandReuse: true}},
		{"switchpoint=0.001", algorithms.BFSOptions{SwitchPoint: 0.001}},
		{"switchpoint=0.003", algorithms.BFSOptions{SwitchPoint: 0.003}},
		{"switchpoint=0.01 (paper)", algorithms.BFSOptions{SwitchPoint: 0.01}},
		{"switchpoint=0.03", algorithms.BFSOptions{SwitchPoint: 0.03}},
		{"switchpoint=0.1", algorithms.BFSOptions{SwitchPoint: 0.1}},
	}
	var rows []AblationRow
	for _, cfg := range configs {
		var total time.Duration
		for _, src := range roots {
			total += perf.TimeN(1, runs, func() {
				if _, err := algorithms.BFS(g, src, cfg.opt); err != nil {
					panic(err)
				}
			})
		}
		rows = append(rows, AblationRow{
			Config: cfg.name,
			MeanMS: ms(total / time.Duration(len(roots))),
		})
	}
	// Kernel fusion (Section 7.3 extension): Algorithm 1 with the matvec,
	// mask, assign and visited update fused into one pass per level.
	var fusedTotal time.Duration
	for _, src := range roots {
		fusedTotal += perf.TimeN(1, runs, func() {
			if _, err := algorithms.FusedBFS(g, src, 0); err != nil {
				panic(err)
			}
		})
	}
	rows = append(rows, AblationRow{
		Config: "kernel-fusion (FusedBFS)",
		MeanMS: ms(fusedTotal / time.Duration(len(roots))),
	})
	return rows, nil
}

// pickSources chooses up to k distinct non-isolated vertices,
// deterministically for a seed.
func pickSources(g *graphblas.Matrix[bool], k int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	csr := g.CSR()
	var roots []int
	seen := map[int]bool{}
	for attempts := 0; len(roots) < k && attempts < 100*k+1000; attempts++ {
		v := rng.Intn(g.NRows())
		if seen[v] || csr.RowLen(v) == 0 {
			continue
		}
		seen[v] = true
		roots = append(roots, v)
	}
	if len(roots) == 0 {
		roots = []int{0}
	}
	return roots
}

package harness

import (
	"fmt"
	"io"
	"strings"
)

// RenderTable writes an aligned plain-text table.
func RenderTable(w io.Writer, title string, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := line(headers); err != nil {
		return err
	}
	rule := make([]string, len(headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderCSV writes rows as comma-separated values with a header line.
func RenderCSV(w io.Writer, headers []string, rows [][]string) error {
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// F formats a float with sensible precision for tables.
func F(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1000:
		return fmt.Sprintf("%.0f", x)
	case x >= 10:
		return fmt.Sprintf("%.1f", x)
	case x >= 0.01:
		return fmt.Sprintf("%.3f", x)
	default:
		return fmt.Sprintf("%.2e", x)
	}
}

// I formats an int.
func I(x int) string { return fmt.Sprintf("%d", x) }

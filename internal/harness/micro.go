package harness

import (
	"fmt"
	"math/rand"
	"time"

	"pushpull/internal/core"
	"pushpull/internal/perf"
	"pushpull/internal/sparse"
)

// MicroPoint is one sweep sample of the four matvec variants: the x-axis
// value (nnz of the swept vector/mask) and one measurement per variant.
type MicroPoint struct {
	NNZ       int
	RowNoMask float64
	RowMask   float64
	ColNoMask float64
	ColMask   float64
}

// MicroReport is the Table 1 / Figure 2 output: sweep samples plus the
// classification derived from the endpoints.
type MicroReport struct {
	// Unit is "accesses" (Table 1 validation) or "ms" (Figure 2).
	Unit string
	// Matrix identifies the graph and its dimensions.
	Matrix string
	Points []MicroPoint
	// Growth[variant] = measurement(max sweep)/measurement(min sweep),
	// the empirical scaling class: ~1 means flat (O(dM)); large means the
	// cost tracks the swept quantity.
	Growth map[string]float64
}

// microSR is the generic arithmetic semiring the microbenchmarks sweep
// (matching the paper's use of plain matvec rather than BFS here).
func microSR() core.SR[float64] {
	return core.SR[float64]{
		Add: func(a, b float64) float64 { return a + b },
		Id:  0,
		Mul: func(a, b float64) float64 { return a * b },
		One: 1,
	}
}

// buildMicroMatrix materializes the kron stand-in as float64 CSR/CSC.
func buildMicroMatrix(scale int) (*sparse.CSR[float64], *sparse.CSR[float64], int, error) {
	g, err := KronDataset(scale).Build()
	if err != nil {
		return nil, nil, 0, err
	}
	csr := sparse.Scale(g.CSR(), func(bool) float64 { return 1 })
	var csc *sparse.CSR[float64]
	if g.Symmetric() {
		csc = csr
	} else {
		csc = sparse.Transpose(csr)
	}
	return csr, csc, g.NRows(), nil
}

// randomPick fills a dense float vector and its sparse view with k random
// distinct nonzeroes.
func randomPick(rng *rand.Rand, perm []uint32, k int) (ind []uint32, val []float64) {
	n := len(perm)
	if k > n {
		k = n
	}
	// Partial Fisher-Yates over the shared permutation buffer.
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	ind = append([]uint32(nil), perm[:k]...)
	val = make([]float64, k)
	for i := range val {
		val[i] = 1
	}
	return ind, val
}

// MicroSweep runs the four-variant sweep of Figure 2 (counted=false,
// wall-clock ms) or the Table 1 validation (counted=true, RAM-model
// accesses via the instrumented kernels). The sweep follows the paper's
// microbenchmark setup: random input vectors and masks, the column-based
// masked variant's mask at ⅔·nnz(f), row-based unmasked measured against a
// full-size input with the row-masked variant sweeping nnz(m).
func MicroSweep(scale, points int, counted bool) (*MicroReport, error) {
	if points < 2 {
		points = 8
	}
	csr, csc, n, err := buildMicroMatrix(scale)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(42))
	sr := microSR()
	rep := &MicroReport{
		Matrix: fmt.Sprintf("kron scale=%d (%d vertices, %d edges)", scale, n, csr.NNZ()),
		Growth: map[string]float64{},
	}
	if counted {
		rep.Unit = "accesses"
	} else {
		rep.Unit = "ms"
	}

	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	denseVal := make([]float64, n)
	densePresent := make([]bool, n)
	w := make([]float64, n)
	wp := make([]bool, n)
	fullVal := make([]float64, n)
	fullPresent := make([]bool, n)
	for i := range fullVal {
		fullVal[i] = 1
		fullPresent[i] = true
	}

	runs := 3
	if counted {
		runs = 1
	}
	for p := 0; p < points; p++ {
		frac := float64(p+1) / float64(points)
		k := int(frac * float64(n))
		if k < 1 {
			k = 1
		}
		pt := MicroPoint{NNZ: k}

		// Shared random supports for this sweep point.
		ind, val := randomPick(rng, perm, k)
		for i := range densePresent {
			densePresent[i] = false
		}
		for i, idx := range ind {
			denseVal[idx] = val[i]
			densePresent[idx] = true
		}
		maskBits := make([]bool, n)
		maskList := make([]uint32, 0, k)
		mInd, _ := randomPick(rng, perm, k)
		for _, idx := range mInd {
			maskBits[idx] = true
		}
		for i := 0; i < n; i++ {
			if maskBits[i] {
				maskList = append(maskList, uint32(i))
			}
		}
		colMaskBits := make([]bool, n)
		cmInd, _ := randomPick(rng, perm, 2*k/3+1)
		for _, idx := range cmInd {
			colMaskBits[idx] = true
		}

		if counted {
			var c core.Counter
			core.RowMxvCounted(w, wp, csr, denseVal, densePresent, sr, core.Opts{}, &c)
			pt.RowNoMask = float64(c.Total())
			c = core.Counter{}
			core.RowMaskedMxvCounted(w, wp, csr, fullVal, fullPresent,
				core.MaskView{Bits: maskBits, List: maskList}, sr, core.Opts{}, &c)
			pt.RowMask = float64(c.Total())
			c = core.Counter{}
			core.ColMxvCounted(csc, ind, val, sr, core.Opts{}, &c)
			pt.ColNoMask = float64(c.Total())
			c = core.Counter{}
			core.ColMaskedMxvCounted(csc, ind, val, core.MaskView{Bits: colMaskBits}, sr, core.Opts{}, &c)
			pt.ColMask = float64(c.Total())
		} else {
			uView := core.BitmapVec(denseVal, densePresent, k)
			fullView := core.DenseVec(fullVal)
			sparseView := core.SparseVec(n, ind, val)
			pt.RowNoMask = ms(perf.TimeN(1, runs, func() {
				core.RowMxv(w, wp, csr, uView, sr, core.Opts{})
			}))
			pt.RowMask = ms(perf.TimeN(1, runs, func() {
				core.RowMaskedMxv(w, wp, csr, fullView,
					core.MaskView{Bits: maskBits, List: maskList}, sr, core.Opts{})
			}))
			pt.ColNoMask = ms(perf.TimeN(1, runs, func() {
				core.ColMxv(csc, sparseView, sr, core.Opts{})
			}))
			pt.ColMask = ms(perf.TimeN(1, runs, func() {
				core.ColMaskedMxv(csc, sparseView, core.MaskView{Bits: colMaskBits}, sr, core.Opts{})
			}))
		}
		rep.Points = append(rep.Points, pt)
	}

	first, last := rep.Points[0], rep.Points[len(rep.Points)-1]
	ratio := func(a, b float64) float64 {
		if a <= 0 {
			return 0
		}
		return b / a
	}
	rep.Growth["row-nomask"] = ratio(first.RowNoMask, last.RowNoMask)
	rep.Growth["row-mask"] = ratio(first.RowMask, last.RowMask)
	rep.Growth["col-nomask"] = ratio(first.ColNoMask, last.ColNoMask)
	rep.Growth["col-mask"] = ratio(first.ColMask, last.ColMask)
	return rep, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

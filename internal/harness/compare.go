package harness

import (
	"fmt"
	"time"

	"pushpull/algorithms"
	"pushpull/generate"
	"pushpull/internal/frameworks"
	"pushpull/internal/perf"
)

// Table3 regenerates the dataset-description table from the stand-in
// graphs' measured statistics.
func Table3(scale int) ([]generate.GraphStats, error) {
	var rows []generate.GraphStats
	for _, ds := range Datasets(scale) {
		g, err := ds.Build()
		if err != nil {
			return nil, fmt.Errorf("harness: build %s: %w", ds.Name, err)
		}
		st, err := generate.Stats(ds.Name, g, ds.Kind, 2)
		if err != nil {
			return nil, err
		}
		rows = append(rows, st)
	}
	return rows, nil
}

// CompareCell is one framework's result on one dataset.
type CompareCell struct {
	RuntimeMS float64
	MTEPS     float64
}

// CompareRow is one dataset's row of the Figure 7 comparison table.
type CompareRow struct {
	Dataset string
	// Cells is keyed by framework name, in FrameworkOrder.
	Cells map[string]CompareCell
}

// FrameworkOrder is the paper's column order for the comparison table.
var FrameworkOrder = []string{"SuiteSparse", "CuSha", "Baseline", "Ligra", "Gunrock", "This Work"}

// Compare runs the full framework comparison (the table in Figure 7):
// every dataset × every framework, averaged over `sources` random roots.
// Restrict to a subset of dataset names by passing them; nil means all.
func Compare(scale, sources, runs int, only []string) ([]CompareRow, error) {
	want := map[string]bool{}
	for _, n := range only {
		want[n] = true
	}
	var rows []CompareRow
	for _, ds := range Datasets(scale) {
		if len(want) > 0 && !want[ds.Name] {
			continue
		}
		g, err := ds.Build()
		if err != nil {
			return nil, fmt.Errorf("harness: build %s: %w", ds.Name, err)
		}
		fg := frameworks.FromMatrix(g)
		roots := pickSources(g, sources, 17)
		row := CompareRow{Dataset: ds.Name, Cells: map[string]CompareCell{}}

		for _, r := range frameworks.All() {
			var total time.Duration
			var edges int64
			for _, src := range roots {
				var depths []int32
				total += perf.TimeN(1, runs, func() { depths = r.BFS(fg, src) })
				edges += traversedEdges(fg, depths)
			}
			mean := total / time.Duration(len(roots))
			row.Cells[r.Name] = CompareCell{
				RuntimeMS: ms(mean),
				MTEPS:     perf.MTEPS(edges/int64(len(roots)), mean),
			}
		}
		// This work: the full direction-optimized GraphBLAS BFS.
		var total time.Duration
		var edges int64
		for _, src := range roots {
			var res algorithms.BFSResult
			total += perf.TimeN(1, runs, func() {
				r, err := algorithms.BFS(g, src, algorithms.BFSOptions{})
				if err != nil {
					panic(err)
				}
				res = r
			})
			edges += res.EdgesTraversed
		}
		mean := total / time.Duration(len(roots))
		row.Cells["This Work"] = CompareCell{
			RuntimeMS: ms(mean),
			MTEPS:     perf.MTEPS(edges/int64(len(roots)), mean),
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// traversedEdges sums the out-degrees of reached vertices — the TEPS
// numerator, consistent with algorithms.BFSResult.EdgesTraversed.
func traversedEdges(g *frameworks.Graph, depths []int32) int64 {
	var edges int64
	for v, d := range depths {
		if d >= 0 {
			edges += int64(g.Out.RowLen(v))
		}
	}
	return edges
}

// SlowdownRow is one dataset's bars in the Figure 7 chart: each
// framework's runtime normalized to Gunrock's.
type SlowdownRow struct {
	Dataset   string
	Slowdowns map[string]float64
}

// Fig7 derives the slowdown-vs-Gunrock chart from comparison rows.
func Fig7(rows []CompareRow) []SlowdownRow {
	var out []SlowdownRow
	for _, row := range rows {
		base := row.Cells["Gunrock"].RuntimeMS
		sr := SlowdownRow{Dataset: row.Dataset, Slowdowns: map[string]float64{}}
		for name, cell := range row.Cells {
			if base > 0 {
				sr.Slowdowns[name] = cell.RuntimeMS / base
			}
		}
		out = append(out, sr)
	}
	return out
}

// GeomeanSpeedups reports this work's geometric-mean runtime ratio against
// each other framework (values > 1 mean this work is faster), the
// Section 7.3 summary numbers.
func GeomeanSpeedups(rows []CompareRow) map[string]float64 {
	out := map[string]float64{}
	for _, name := range FrameworkOrder {
		if name == "This Work" {
			continue
		}
		var ratios []float64
		for _, row := range rows {
			mine := row.Cells["This Work"].RuntimeMS
			theirs := row.Cells[name].RuntimeMS
			if mine > 0 && theirs > 0 {
				ratios = append(ratios, theirs/mine)
			}
		}
		out[name] = perf.GeoMean(ratios)
	}
	return out
}

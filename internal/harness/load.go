package harness

import (
	"fmt"
	"strconv"
	"strings"

	"pushpull/generate/mmio"
	"pushpull/graphblas"
)

// This file is the shared graph-loading seam: every command that needs a
// graph — ppbfs's one-shot traversal, ppserve's long-lived registry —
// resolves it through LoadGraph/GraphSpec instead of duplicating the
// file-vs-generator branching. ppbench reaches the same generators through
// the Dataset registry directly (its experiments iterate whole dataset
// families, not single graphs).

// LoadGraph loads a graph from a MatrixMarket file when file is non-empty,
// or builds the named generated dataset (see Datasets) at the given scale
// otherwise. This is the one loading path shared by ppbfs and ppserve.
// Malformed input — truncated files, out-of-range indices, zero-dimension
// headers — returns a descriptive error naming the file, never a panic or
// a silently mis-shaped matrix (the serving layer turns these into
// degraded-mode entries and reload rollbacks).
func LoadGraph(file, dataset string, scale int) (*graphblas.Matrix[bool], error) {
	if file != "" {
		m, err := mmio.ReadPatternFile(file)
		if err != nil {
			return nil, fmt.Errorf("harness: load %s: %w", file, err)
		}
		return m, nil
	}
	ds, err := FindDataset(scale, dataset)
	if err != nil {
		return nil, err
	}
	return ds.Build()
}

// GraphSpec is one parsed -graph argument of a serving command: either a
// generated dataset at a scale, or a MatrixMarket file, under a name the
// query API addresses it by.
type GraphSpec struct {
	// Name is the handle queries use (?graph=<name>).
	Name string
	// File is the MatrixMarket path, empty for generated datasets.
	File string
	// Dataset and Scale select a generated stand-in when File is empty.
	Dataset string
	Scale   int
}

// ParseGraphSpec parses a -graph argument. Accepted forms:
//
//	kron            generated dataset at the default scale
//	kron:12         generated dataset at scale 12
//	file:g.mtx      MatrixMarket file, named by its basename
//	web=file:g.mtx  MatrixMarket file under an explicit name
//	web=kron:12     generated dataset under an explicit name
//
// Anything ending in .mtx is treated as a file path even without the
// file: prefix.
func ParseGraphSpec(s string, defaultScale int) (GraphSpec, error) {
	spec := GraphSpec{Scale: defaultScale}
	rest := s
	if eq := strings.IndexByte(rest, '='); eq >= 0 {
		spec.Name = rest[:eq]
		rest = rest[eq+1:]
	}
	if rest == "" {
		return GraphSpec{}, fmt.Errorf("harness: empty graph spec %q", s)
	}
	switch {
	case strings.HasPrefix(rest, "file:"):
		spec.File = strings.TrimPrefix(rest, "file:")
	case strings.HasSuffix(rest, ".mtx"):
		spec.File = rest
	default:
		spec.Dataset = rest
		if c := strings.LastIndexByte(rest, ':'); c >= 0 {
			scale, err := strconv.Atoi(rest[c+1:])
			if err != nil || scale <= 0 {
				return GraphSpec{}, fmt.Errorf("harness: bad scale in graph spec %q", s)
			}
			spec.Dataset = rest[:c]
			spec.Scale = scale
		}
	}
	if spec.Name == "" && spec.File != "" {
		base := spec.File
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		spec.Name = strings.TrimSuffix(base, ".mtx")
	}
	if spec.Name == "" {
		spec.Name = spec.Dataset
	}
	if spec.Name == "" {
		return GraphSpec{}, fmt.Errorf("harness: graph spec %q has no name", s)
	}
	return spec, nil
}

// Load builds the spec's graph through the shared loading path.
func (s GraphSpec) Load() (*graphblas.Matrix[bool], error) {
	return LoadGraph(s.File, s.Dataset, s.Scale)
}

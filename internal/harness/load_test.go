package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseGraphSpec(t *testing.T) {
	cases := []struct {
		in   string
		want GraphSpec
	}{
		{"kron", GraphSpec{Name: "kron", Dataset: "kron", Scale: 14}},
		{"kron:12", GraphSpec{Name: "kron", Dataset: "kron", Scale: 12}},
		{"web=kron:10", GraphSpec{Name: "web", Dataset: "kron", Scale: 10}},
		{"file:graphs/g.mtx", GraphSpec{Name: "g", File: "graphs/g.mtx", Scale: 14}},
		{"g.mtx", GraphSpec{Name: "g", File: "g.mtx", Scale: 14}},
		{"web=file:any.bin", GraphSpec{Name: "web", File: "any.bin", Scale: 14}},
	}
	for _, c := range cases {
		got, err := ParseGraphSpec(c.in, 14)
		if err != nil {
			t.Errorf("ParseGraphSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseGraphSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "web=", "kron:zero", "kron:-3"} {
		if _, err := ParseGraphSpec(bad, 14); err == nil {
			t.Errorf("ParseGraphSpec(%q) accepted, want error", bad)
		}
	}
}

// TestLoadGraphCorruptFiles is the malformed-input table: every corrupt
// fixture must come back as a descriptive error naming the file — no
// panic, no silently mis-loaded matrix. These are exactly the inputs the
// serving layer's reload path must survive by rolling back.
func TestLoadGraphCorruptFiles(t *testing.T) {
	const header = "%%MatrixMarket matrix coordinate pattern general\n"
	cases := []struct {
		name    string
		content string
		wantSub string // substring the error must carry
	}{
		{"empty file", "", "empty input"},
		{"garbage header", "not a matrix market file\n1 1 1\n1 1\n", "unsupported header"},
		{"missing size line", header + "% only comments follow\n", "no size line"},
		{"zero dimensions", header + "0 0 0\n", "dimensions"},
		{"negative rows", header + "-3 4 1\n1 1\n", "dimensions"},
		{"negative entry count", header + "4 4 -2\n", "negative entry count"},
		{"entry count over capacity", header + "2 2 9\n1 1\n1 2\n2 1\n2 2\n1 1\n1 2\n2 1\n2 2\n1 1\n", "capacity"},
		{"truncated entries", header + "4 4 5\n1 1\n2 2\n", "truncated"},
		{"row index out of range", header + "4 4 1\n9 1\n", "outside"},
		{"col index out of range", header + "4 4 1\n1 9\n", "outside"},
		{"zero-based index", header + "4 4 1\n0 1\n", "outside"},
		{"non-numeric entry", header + "4 4 1\nx y\n", "bad row"},
		{"one-field entry", header + "4 4 1\n3\n", "bad entry"},
		{"bad size line", header + "four by four\n", "bad size line"},
		{"unsupported field", "%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 1\n", "unsupported field"},
		{"unsupported symmetry", "%%MatrixMarket matrix coordinate pattern hermitian\n2 2 1\n1 1\n", "unsupported symmetry"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "corrupt.mtx")
			if err := os.WriteFile(path, []byte(c.content), 0o644); err != nil {
				t.Fatal(err)
			}
			m, err := LoadGraph(path, "", 0)
			if err == nil {
				t.Fatalf("corrupt input accepted: got %d×%d matrix", m.NRows(), m.NCols())
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error %q does not name the file", err)
			}
		})
	}

	if _, err := LoadGraph(filepath.Join(t.TempDir(), "missing.mtx"), "", 0); err == nil {
		t.Error("missing file accepted")
	}
}

// TestLoadGraphValidFile pins the happy path the corrupt table gates:
// a well-formed file round-trips with the declared shape.
func TestLoadGraphValidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ok.mtx")
	content := "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n3 1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadGraph(path, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NRows() != 3 || m.NCols() != 3 || m.NVals() != 2 {
		t.Fatalf("loaded %d×%d with %d entries, want 3×3 with 2", m.NRows(), m.NCols(), m.NVals())
	}
}

func TestLoadGraphDataset(t *testing.T) {
	g, err := LoadGraph("", "kron", 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.NRows() != 1<<6 {
		t.Fatalf("kron scale 6: %d rows, want %d", g.NRows(), 1<<6)
	}
	if _, err := LoadGraph("", "nosuch", 6); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

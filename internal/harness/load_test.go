package harness

import "testing"

func TestParseGraphSpec(t *testing.T) {
	cases := []struct {
		in   string
		want GraphSpec
	}{
		{"kron", GraphSpec{Name: "kron", Dataset: "kron", Scale: 14}},
		{"kron:12", GraphSpec{Name: "kron", Dataset: "kron", Scale: 12}},
		{"web=kron:10", GraphSpec{Name: "web", Dataset: "kron", Scale: 10}},
		{"file:graphs/g.mtx", GraphSpec{Name: "g", File: "graphs/g.mtx", Scale: 14}},
		{"g.mtx", GraphSpec{Name: "g", File: "g.mtx", Scale: 14}},
		{"web=file:any.bin", GraphSpec{Name: "web", File: "any.bin", Scale: 14}},
	}
	for _, c := range cases {
		got, err := ParseGraphSpec(c.in, 14)
		if err != nil {
			t.Errorf("ParseGraphSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseGraphSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "web=", "kron:zero", "kron:-3"} {
		if _, err := ParseGraphSpec(bad, 14); err == nil {
			t.Errorf("ParseGraphSpec(%q) accepted, want error", bad)
		}
	}
}

func TestLoadGraphDataset(t *testing.T) {
	g, err := LoadGraph("", "kron", 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.NRows() != 1<<6 {
		t.Fatalf("kron scale 6: %d rows, want %d", g.NRows(), 1<<6)
	}
	if _, err := LoadGraph("", "nosuch", 6); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

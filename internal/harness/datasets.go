// Package harness drives the experiments: it owns the dataset registry
// (synthetic stand-ins for the paper's Table 3 graphs), one driver per
// table/figure, and plain-text/CSV renderers. cmd/ppbench and the
// top-level benchmarks are thin wrappers over this package.
package harness

import (
	"fmt"
	"math"

	"pushpull/generate"
	"pushpull/graphblas"
)

// Dataset is one Table 3 row: a named generator with the paper-matching
// shape class. Build is deterministic for a dataset at a given scale.
type Dataset struct {
	// Name matches the paper's dataset naming.
	Name string
	// Kind is the paper's type tag (rs/gs/gm/rm).
	Kind string
	// Paper records the original graph's size for the substitution table.
	Paper string
	// Build generates the stand-in graph.
	Build func() (*graphblas.Matrix[bool], error)
}

// Datasets returns stand-ins for all 11 paper datasets, sized by scale
// (vertex counts are powers of two around 2^scale; the default CLI scale
// of 14 keeps every experiment in seconds on a laptop, and larger scales
// approach the paper's sizes). Degree and skew classes match Table 3:
// the four "real" scale-free graphs use RMAT with matched average degree,
// i04 gets extra skew (its optimal BFS is push-only, as the paper notes),
// kron/rmat use Graph500 parameters, and rgg/road use geometric and mesh
// generators.
func Datasets(scale int) []Dataset {
	if scale < 4 {
		scale = 4
	}
	rmat := func(s, ef int, a float64, seed int64) func() (*graphblas.Matrix[bool], error) {
		return func() (*graphblas.Matrix[bool], error) {
			cfg := generate.RMATConfig{Scale: s, EdgeFactor: ef, Undirected: true, Seed: seed}
			if a > 0 {
				cfg.A = a
				cfg.B = (1 - a) / 3
				cfg.C = (1 - a) / 3
			}
			return generate.RMAT(cfg)
		}
	}
	return []Dataset{
		{
			Name: "soc-orkut", Kind: "rs", Paper: "3M V, 212.7M E",
			Build: rmat(scale, 32, 0, 101),
		},
		{
			Name: "soc-lj", Kind: "rs", Paper: "4.8M V, 85.7M E",
			Build: rmat(scale+1, 8, 0, 102),
		},
		{
			Name: "h09", Kind: "rs", Paper: "1.1M V, 112.8M E",
			Build: rmat(scale-1, 48, 0, 103),
		},
		{
			Name: "i04", Kind: "rs", Paper: "7.4M V, 302M E",
			// Extra-skewed: indochina-2004 is a web crawl whose optimal
			// BFS is push-only for all iterations (Section 6.3).
			Build: rmat(scale+1, 20, 0.65, 104),
		},
		{
			Name: "kron", Kind: "gs", Paper: "2.1M V, 182.1M E",
			Build: rmat(scale, 16, 0, 105),
		},
		{
			Name: "rmat22", Kind: "gs", Paper: "4.2M V, 483M E",
			Build: rmat(scale+1, 32, 0, 106),
		},
		{
			Name: "rmat23", Kind: "gs", Paper: "8.4M V, 505.6M E",
			Build: rmat(scale+2, 16, 0, 107),
		},
		{
			Name: "rmat24", Kind: "gs", Paper: "16.8M V, 519.7M E",
			Build: rmat(scale+3, 8, 0, 108),
		},
		{
			Name: "rgg", Kind: "gm", Paper: "16.8M V, 265.1M E",
			Build: func() (*graphblas.Matrix[bool], error) {
				n := 1 << (scale + 1)
				// Expected degree nπr² ≈ 15, matching rgg_n_24's bounded
				// degree (max 40 in the paper).
				r := math.Sqrt(15 / (math.Pi * float64(n)))
				return generate.RGG(n, r, 109)
			},
		},
		{
			Name: "roadnet", Kind: "rm", Paper: "2M V, 5.5M E",
			Build: func() (*graphblas.Matrix[bool], error) {
				side := 1 << (scale / 2)
				return generate.Grid2D(side, side)
			},
		},
		{
			Name: "road_usa", Kind: "rm", Paper: "23.9M V, 577.1M E",
			Build: func() (*graphblas.Matrix[bool], error) {
				side := 1 << ((scale + 2) / 2)
				return generate.Grid2D(side, side*2)
			},
		},
	}
}

// FindDataset returns the named dataset or an error listing valid names.
func FindDataset(scale int, name string) (Dataset, error) {
	all := Datasets(scale)
	for _, d := range all {
		if d.Name == name {
			return d, nil
		}
	}
	names := make([]string, len(all))
	for i, d := range all {
		names[i] = d.Name
	}
	return Dataset{}, fmt.Errorf("harness: unknown dataset %q (have %v)", name, names)
}

// WeightedKron builds the kron stand-in with deterministic positive edge
// weights — the SSSP experiment input.
func WeightedKron(scale int) (*graphblas.Matrix[float64], error) {
	g, err := KronDataset(scale).Build()
	if err != nil {
		return nil, err
	}
	return generate.WeightedCopy(g, 1, 10, 99)
}

// KronDataset returns the 'kron' stand-in, the matrix every
// microbenchmark experiment (Table 1, Figure 2, Table 2, Figures 5-6)
// runs on, matching the paper's use of kron_g500-logn21.
func KronDataset(scale int) Dataset {
	d, err := FindDataset(scale, "kron")
	if err != nil {
		panic(err) // unreachable: "kron" is always registered
	}
	return d
}

package harness

import (
	"bytes"
	"strings"
	"testing"
)

// testScale keeps harness tests fast: 2^10 vertices.
const testScale = 10

func TestDatasetsBuildAndAreDistinct(t *testing.T) {
	all := Datasets(testScale)
	if len(all) != 11 {
		t.Fatalf("want 11 datasets, got %d", len(all))
	}
	names := map[string]bool{}
	for _, ds := range all {
		if names[ds.Name] {
			t.Fatalf("duplicate dataset %s", ds.Name)
		}
		names[ds.Name] = true
		g, err := ds.Build()
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		if g.NRows() == 0 || g.NVals() == 0 {
			t.Fatalf("%s: empty graph", ds.Name)
		}
	}
}

func TestDatasetClasses(t *testing.T) {
	// Scale-free stand-ins must be skewed; mesh stand-ins bounded-degree.
	for _, ds := range Datasets(testScale) {
		g, err := ds.Build()
		if err != nil {
			t.Fatal(err)
		}
		skew := float64(g.MaxDegree()) / g.AvgDegree()
		switch ds.Kind {
		case "rs", "gs":
			if skew < 5 {
				t.Errorf("%s: scale-free stand-in not skewed (max/avg=%.1f)", ds.Name, skew)
			}
		case "rm", "gm":
			if g.MaxDegree() > 64 {
				t.Errorf("%s: mesh stand-in has max degree %d", ds.Name, g.MaxDegree())
			}
		default:
			t.Errorf("%s: unknown kind %q", ds.Name, ds.Kind)
		}
	}
}

func TestFindDataset(t *testing.T) {
	if _, err := FindDataset(testScale, "kron"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindDataset(testScale, "nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestMicroSweepCountedReproducesTable1(t *testing.T) {
	rep, err := MicroSweep(testScale, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unit != "accesses" || len(rep.Points) != 4 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	// Table 1 shape: row-unmasked flat; the others grow with the sweep.
	if g := rep.Growth["row-nomask"]; g < 0.99 || g > 1.01 {
		t.Fatalf("row-nomask growth %.3f, want flat", g)
	}
	if g := rep.Growth["row-mask"]; g < 2 {
		t.Fatalf("row-mask growth %.3f, want linear-ish", g)
	}
	if g := rep.Growth["col-nomask"]; g < 2 {
		t.Fatalf("col-nomask growth %.3f, want linear-ish", g)
	}
	if g := rep.Growth["col-mask"]; g < 2 {
		t.Fatalf("col-mask growth %.3f, want linear-ish", g)
	}
	// Masked column never does less work than unmasked (Table 1 rows 3-4).
	for i, pt := range rep.Points {
		if pt.ColMask < pt.ColNoMask {
			t.Fatalf("point %d: masked col (%.0f) cheaper than unmasked (%.0f)", i, pt.ColMask, pt.ColNoMask)
		}
	}
}

func TestMicroSweepTimed(t *testing.T) {
	rep, err := MicroSweep(testScale, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unit != "ms" || len(rep.Points) != 3 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	for _, pt := range rep.Points {
		if pt.RowNoMask <= 0 || pt.RowMask <= 0 || pt.ColNoMask <= 0 || pt.ColMask <= 0 {
			t.Fatalf("non-positive timing: %+v", pt)
		}
	}
}

func TestTable2ShapesHold(t *testing.T) {
	rows, err := Table2(testScale, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
	if rows[0].Optimization != "Baseline" || rows[5].Optimization != "Operand reuse" {
		t.Fatalf("row order wrong: %+v", rows)
	}
	for i, r := range rows {
		if r.GTEPS <= 0 || r.MeanMS <= 0 {
			t.Fatalf("row %d: non-positive measurement %+v", i, r)
		}
	}
	// The full stack must beat the baseline (the paper's 48× end-to-end;
	// any margin > 1 validates the shape at CPU scale).
	if rows[5].MeanMS >= rows[0].MeanMS {
		t.Fatalf("full stack (%.2fms) not faster than baseline (%.2fms)", rows[5].MeanMS, rows[0].MeanMS)
	}
}

func TestFig5RowsConsistent(t *testing.T) {
	rows, err := Fig5(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("BFS too shallow for Fig5: %d rows", len(rows))
	}
	for i, r := range rows {
		if r.FrontierNNZ <= 0 {
			t.Fatalf("row %d: empty frontier", i)
		}
		if r.UnvisitedNNZ < 0 {
			t.Fatalf("row %d: negative unvisited", i)
		}
		if r.PushMS <= 0 || r.PullMS <= 0 {
			t.Fatalf("row %d: non-positive timings %+v", i, r)
		}
		if i > 0 && r.UnvisitedNNZ > rows[i-1].UnvisitedNNZ {
			t.Fatalf("unvisited grew between iterations %d and %d", i-1, i)
		}
	}
}

func TestFig6SeriesCoverBothModes(t *testing.T) {
	pts, err := Fig6(testScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	modes := map[string]int{}
	for _, p := range pts {
		modes[p.Mode]++
		if p.NNZ < 0 || p.MS < 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
	if modes["push"] == 0 || modes["pull"] == 0 {
		t.Fatalf("missing series: %v", modes)
	}
}

func TestCompareAndFig7(t *testing.T) {
	rows, err := Compare(testScale, 1, 1, []string{"kron", "roadnet"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, row := range rows {
		for _, name := range FrameworkOrder {
			cell, ok := row.Cells[name]
			if !ok {
				t.Fatalf("%s: missing column %s", row.Dataset, name)
			}
			if cell.RuntimeMS <= 0 || cell.MTEPS <= 0 {
				t.Fatalf("%s/%s: non-positive cell %+v", row.Dataset, name, cell)
			}
		}
	}
	slow := Fig7(rows)
	for _, s := range slow {
		if s.Slowdowns["Gunrock"] < 0.99 || s.Slowdowns["Gunrock"] > 1.01 {
			t.Fatalf("Gunrock slowdown vs itself = %g", s.Slowdowns["Gunrock"])
		}
	}
	gm := GeomeanSpeedups(rows)
	if gm["SuiteSparse"] <= 0 {
		t.Fatalf("geomean speedups: %v", gm)
	}
}

func TestTable3Runs(t *testing.T) {
	rows, err := Table3(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("want 11 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Vertices <= 0 || r.Edges <= 0 || r.Diameter <= 0 {
			t.Fatalf("degenerate stats: %+v", r)
		}
	}
	// Mesh stand-ins must have much larger diameter than scale-free ones.
	var kronDiam, roadDiam int
	for _, r := range rows {
		if r.Name == "kron" {
			kronDiam = r.Diameter
		}
		if r.Name == "roadnet" {
			roadDiam = r.Diameter
		}
	}
	if roadDiam <= kronDiam {
		t.Fatalf("road diameter (%d) should exceed kron's (%d)", roadDiam, kronDiam)
	}
}

func TestAblationRuns(t *testing.T) {
	rows, err := Ablation(testScale, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("want 11 ablation rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanMS <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
	}
}

func TestRenderers(t *testing.T) {
	var buf bytes.Buffer
	err := RenderTable(&buf, "Title", []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "333") {
		t.Fatalf("render output:\n%s", out)
	}
	buf.Reset()
	if err := RenderCSV(&buf, []string{"x", "y"}, [][]string{{"1", "2"}}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "x,y\n1,2\n" {
		t.Fatalf("csv output %q", buf.String())
	}
	if F(0) != "0" || F(12345) != "12345" || F(12.3) != "12.3" || F(0.5) != "0.500" || F(1e-5) != "1.00e-05" {
		t.Fatalf("F formatting: %s %s %s %s %s", F(0), F(12345), F(12.3), F(0.5), F(1e-5))
	}
	if I(7) != "7" {
		t.Fatal("I formatting")
	}
}

// Package pool provides the dimension-keyed object pooling shared by the
// kernel and object-model workspace layers: objects are interchangeable
// exactly when they serve the same operator shape, which keeps every pooled
// buffer at its steady-state size instead of thrashing between
// differently-sized graphs.
package pool

import "sync"

type dims struct{ rows, cols int }

// Dim is a set of sync.Pools keyed by (rows, cols). The zero value is not
// usable; construct with NewDim.
type Dim[T any] struct {
	mu    sync.RWMutex
	pools map[dims]*sync.Pool
	newFn func(rows, cols int) T
}

// NewDim returns a dimension-keyed pool whose dry-pool misses are filled by
// newFn.
func NewDim[T any](newFn func(rows, cols int) T) *Dim[T] {
	return &Dim[T]{pools: make(map[dims]*sync.Pool), newFn: newFn}
}

func (d *Dim[T]) poolFor(rows, cols int) *sync.Pool {
	key := dims{rows, cols}
	d.mu.RLock()
	p := d.pools[key]
	d.mu.RUnlock()
	if p == nil {
		d.mu.Lock()
		if p = d.pools[key]; p == nil {
			p = &sync.Pool{New: func() any { return d.newFn(rows, cols) }}
			d.pools[key] = p
		}
		d.mu.Unlock()
	}
	return p
}

// Acquire takes an object for the given shape, creating one if the pool is
// dry. Pair with Put.
func (d *Dim[T]) Acquire(rows, cols int) T {
	return d.poolFor(rows, cols).Get().(T)
}

// Put returns an object to its shape's pool; the caller must not use it
// afterwards. Objects constructed outside Acquire may be Put too — this is
// how unpooled workspaces donate their warm buffers on release.
func (d *Dim[T]) Put(rows, cols int, v T) {
	d.poolFor(rows, cols).Put(v)
}

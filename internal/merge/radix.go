// Package merge implements the multiway-merge substrate for the column-based
// (push) matvec. The paper's GPU implementation concatenates the gathered
// neighbour lists and radix-sorts them (Section 6.2), noting that the sort
// "is often the bottleneck" and that the structure-only optimization halves
// it by reducing a key-value sort to a key-only sort. This package provides:
//
//   - LSD radix sort, key-only and key-value, sequential and parallel
//     (per-worker histograms + stable scatter), standing in for CUB's
//     device radix sort;
//   - a classic k-way heap merge (the O(n log k) alternative the paper's
//     complexity analysis in Section 3.1 is phrased in terms of);
//   - segmented reduction over sorted keys (Algorithm 3 Line 15).
//
// Keys are uint32 vertex indices; sorts take the maximum key so only the
// necessary digit passes run — the paper's "logM-bit radix sort".
package merge

import "pushpull/internal/par"

const (
	digitBits = 8
	radix     = 1 << digitBits
	digitMask = radix - 1
)

// passesFor returns how many 8-bit digit passes are needed to sort keys
// bounded by maxKey. This is the ceil(log(M)/8) of the paper's logM-bit
// radix sort: a larger matrix row count forces more passes.
func passesFor(maxKey uint32) int {
	switch {
	case maxKey < 1<<8:
		return 1
	case maxKey < 1<<16:
		return 2
	case maxKey < 1<<24:
		return 3
	default:
		return 4
	}
}

// SortKeys sorts keys ascending with an LSD radix sort (key-only — the
// structure-only fast path). maxKey bounds every element; pass the matrix
// row count minus one.
func SortKeys(keys []uint32, maxKey uint32) {
	n := len(keys)
	if n < 2 {
		return
	}
	if n < parallelSortThreshold || par.MaxWorkers() == 1 {
		sortKeysSeq(keys, maxKey)
		return
	}
	sortKeysPar(keys, maxKey)
}

// SortPairs sorts keys ascending, permuting vals alongside (key-value — the
// path taken when matrix/vector values matter). The sort is stable.
func SortPairs[V any](keys []uint32, vals []V, maxKey uint32) {
	n := len(keys)
	if n != len(vals) {
		panic("merge: keys/vals length mismatch")
	}
	if n < 2 {
		return
	}
	if n < parallelSortThreshold || par.MaxWorkers() == 1 {
		sortPairsSeq(keys, vals, maxKey)
		return
	}
	sortPairsPar(keys, vals, maxKey)
}

// SortKeysSequential is SortKeys pinned to the single-threaded path,
// regardless of the worker bound. Instrumented kernels use it so counted
// runs are deterministic.
func SortKeysSequential(keys []uint32, maxKey uint32) {
	if len(keys) >= 2 {
		sortKeysSeq(keys, maxKey)
	}
}

// SortPairsSequential is SortPairs pinned to the single-threaded path.
func SortPairsSequential[V any](keys []uint32, vals []V, maxKey uint32) {
	if len(keys) != len(vals) {
		panic("merge: keys/vals length mismatch")
	}
	if len(keys) >= 2 {
		sortPairsSeq(keys, vals, maxKey)
	}
}

// parallelSortThreshold is the input size below which the sequential radix
// sort wins over spinning up workers and merging histograms.
const parallelSortThreshold = 1 << 15

func sortKeysSeq(keys []uint32, maxKey uint32) {
	sortKeysSeqInto(keys, make([]uint32, len(keys)), maxKey)
}

// sortKeysSeqInto is the sequential LSD sort with a caller-provided
// ping-pong buffer (len(tmp) == len(keys)); the sorted result always ends
// up in keys.
func sortKeysSeqInto(keys, tmp []uint32, maxKey uint32) {
	passes := passesFor(maxKey)
	src, dst := keys, tmp
	for p := 0; p < passes; p++ {
		shift := uint(p * digitBits)
		var count [radix]int
		for _, k := range src {
			count[(k>>shift)&digitMask]++
		}
		sum := 0
		for d := 0; d < radix; d++ {
			count[d], sum = sum, sum+count[d]
		}
		for _, k := range src {
			d := (k >> shift) & digitMask
			dst[count[d]] = k
			count[d]++
		}
		src, dst = dst, src
	}
	if passes%2 == 1 {
		copy(keys, src)
	}
}

func sortPairsSeq[V any](keys []uint32, vals []V, maxKey uint32) {
	sortPairsSeqInto(keys, vals, make([]uint32, len(keys)), make([]V, len(vals)), maxKey)
}

// sortPairsSeqInto is the sequential key-value LSD sort with caller-provided
// ping-pong buffers; the sorted result always ends up in keys/vals.
func sortPairsSeqInto[V any](keys []uint32, vals []V, tmpK []uint32, tmpV []V, maxKey uint32) {
	passes := passesFor(maxKey)
	srcK, dstK := keys, tmpK
	srcV, dstV := vals, tmpV
	for p := 0; p < passes; p++ {
		shift := uint(p * digitBits)
		var count [radix]int
		for _, k := range srcK {
			count[(k>>shift)&digitMask]++
		}
		sum := 0
		for d := 0; d < radix; d++ {
			count[d], sum = sum, sum+count[d]
		}
		for i, k := range srcK {
			d := (k >> shift) & digitMask
			dstK[count[d]] = k
			dstV[count[d]] = srcV[i]
			count[d]++
		}
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	if passes%2 == 1 {
		copy(keys, srcK)
		copy(vals, srcV)
	}
}

// sortKeysPar runs each digit pass with per-worker histograms: workers
// histogram their span, a digit-major scan over the (digit, worker) grid
// yields stable scatter bases, then workers scatter. This is the standard
// parallel LSD formulation and keeps the sort stable.
func sortKeysPar(keys []uint32, maxKey uint32) {
	n := len(keys)
	passes := passesFor(maxKey)
	tmp := make([]uint32, n)
	src, dst := keys, tmp
	workers := par.MaxWorkers()
	hist := make([][radix]int, workers)
	for p := 0; p < passes; p++ {
		shift := uint(p * digitBits)
		used := par.ForWorker(n, func(w, lo, hi int) {
			h := &hist[w]
			for d := range h {
				h[d] = 0
			}
			for _, k := range src[lo:hi] {
				h[(k>>shift)&digitMask]++
			}
		})
		sum := 0
		for d := 0; d < radix; d++ {
			for w := 0; w < used; w++ {
				hist[w][d], sum = sum, sum+hist[w][d]
			}
		}
		par.ForWorker(n, func(w, lo, hi int) {
			h := &hist[w]
			for _, k := range src[lo:hi] {
				d := (k >> shift) & digitMask
				dst[h[d]] = k
				h[d]++
			}
		})
		src, dst = dst, src
	}
	if passes%2 == 1 {
		copy(keys, src)
	}
}

func sortPairsPar[V any](keys []uint32, vals []V, maxKey uint32) {
	n := len(keys)
	passes := passesFor(maxKey)
	tmpK := make([]uint32, n)
	tmpV := make([]V, n)
	srcK, dstK := keys, tmpK
	srcV, dstV := vals, tmpV
	workers := par.MaxWorkers()
	hist := make([][radix]int, workers)
	for p := 0; p < passes; p++ {
		shift := uint(p * digitBits)
		used := par.ForWorker(n, func(w, lo, hi int) {
			h := &hist[w]
			for d := range h {
				h[d] = 0
			}
			for _, k := range srcK[lo:hi] {
				h[(k>>shift)&digitMask]++
			}
		})
		sum := 0
		for d := 0; d < radix; d++ {
			for w := 0; w < used; w++ {
				hist[w][d], sum = sum, sum+hist[w][d]
			}
		}
		par.ForWorker(n, func(w, lo, hi int) {
			h := &hist[w]
			for i := lo; i < hi; i++ {
				k := srcK[i]
				d := (k >> shift) & digitMask
				dstK[h[d]] = k
				dstV[h[d]] = srcV[i]
				h[d]++
			}
		})
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	if passes%2 == 1 {
		copy(keys, srcK)
		copy(vals, srcV)
	}
}

package merge

// This file holds the two alternatives to the radix-sort pipeline that the
// paper's complexity analysis and Gunrock comparison discuss:
//
//   - a k-way heap merge, the textbook O(n log k) multiway merge the
//     Section 3.1 cost model is stated in terms of;
//   - segmented reduction and in-place deduplication over already-sorted
//     keys, used after the radix sort (Algorithm 3 Line 15).
//
// The ablation benchmark (ppbench ablation) races heap merge vs radix sort
// vs an SPA-style dense accumulator for the push-phase merge.

// MultiwayMergeKeys merges k sorted index runs into one sorted,
// deduplicated slice. Runs are described by offsets into keys: run i is
// keys[offsets[i]:offsets[i+1]]. This is the structure-only variant —
// duplicates are discarded rather than combined.
func MultiwayMergeKeys(keys []uint32, offsets []int) []uint32 {
	k := len(offsets) - 1
	switch {
	case k <= 0:
		return nil
	case k == 1:
		return DedupeSortedKeys(append([]uint32(nil), keys[offsets[0]:offsets[1]]...))
	}
	h := newRunHeap(k)
	for r := 0; r < k; r++ {
		if offsets[r] < offsets[r+1] {
			h.push(runCursor{key: keys[offsets[r]], pos: offsets[r], end: offsets[r+1]})
		}
	}
	out := make([]uint32, 0, offsets[k]-offsets[0])
	for h.len() > 0 {
		c := h.pop()
		if len(out) == 0 || out[len(out)-1] != c.key {
			out = append(out, c.key)
		}
		if c.pos+1 < c.end {
			h.push(runCursor{key: keys[c.pos+1], pos: c.pos + 1, end: c.end})
		}
	}
	return out
}

// MultiwayMergePairs merges k sorted (key, value) runs, combining values of
// equal keys with combine. Runs are described as in MultiwayMergeKeys.
func MultiwayMergePairs[V any](keys []uint32, vals []V, offsets []int, combine func(V, V) V) ([]uint32, []V) {
	k := len(offsets) - 1
	if k <= 0 {
		return nil, nil
	}
	total := offsets[k] - offsets[0]
	return MultiwayMergePairsInto(make([]uint32, 0, total), make([]V, 0, total), keys, vals, offsets, combine)
}

// MultiwayMergePairsInto is MultiwayMergePairs appending into
// caller-provided output slices (truncated first), letting workspace-backed
// kernels reuse output storage across calls. outK/outV should have capacity
// for the merged size to avoid growth.
func MultiwayMergePairsInto[V any](outK []uint32, outV []V, keys []uint32, vals []V, offsets []int, combine func(V, V) V) ([]uint32, []V) {
	k := len(offsets) - 1
	if k <= 0 {
		return outK[:0], outV[:0]
	}
	h := newRunHeap(k)
	for r := 0; r < k; r++ {
		if offsets[r] < offsets[r+1] {
			h.push(runCursor{key: keys[offsets[r]], pos: offsets[r], end: offsets[r+1]})
		}
	}
	outK = outK[:0]
	outV = outV[:0]
	for h.len() > 0 {
		c := h.pop()
		if n := len(outK); n > 0 && outK[n-1] == c.key {
			outV[n-1] = combine(outV[n-1], vals[c.pos])
		} else {
			outK = append(outK, c.key)
			outV = append(outV, vals[c.pos])
		}
		if c.pos+1 < c.end {
			h.push(runCursor{key: keys[c.pos+1], pos: c.pos + 1, end: c.end})
		}
	}
	return outK, outV
}

// SegmentedReducePairs collapses equal adjacent keys in a sorted (key,
// value) sequence, combining values with combine. It works in place and
// returns the shortened prefixes.
func SegmentedReducePairs[V any](keys []uint32, vals []V, combine func(V, V) V) ([]uint32, []V) {
	if len(keys) == 0 {
		return keys[:0], vals[:0]
	}
	w := 0
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[w] {
			vals[w] = combine(vals[w], vals[i])
		} else {
			w++
			keys[w] = keys[i]
			vals[w] = vals[i]
		}
	}
	return keys[:w+1], vals[:w+1]
}

// DedupeSortedKeys removes adjacent duplicates from a sorted key slice in
// place and returns the shortened prefix.
func DedupeSortedKeys(keys []uint32) []uint32 {
	if len(keys) == 0 {
		return keys
	}
	w := 0
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[w] {
			w++
			keys[w] = keys[i]
		}
	}
	return keys[:w+1]
}

// runCursor tracks one input run's head during the heap merge.
type runCursor struct {
	key uint32
	pos int
	end int
}

// runHeap is a minimal binary min-heap over run cursors keyed by the head
// element. A hand-rolled heap avoids container/heap's interface boxing in
// this hot loop.
type runHeap struct {
	items []runCursor
}

func newRunHeap(capacity int) *runHeap {
	return &runHeap{items: make([]runCursor, 0, capacity)}
}

func (h *runHeap) len() int { return len(h.items) }

func (h *runHeap) push(c runCursor) {
	h.items = append(h.items, c)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].key <= h.items[i].key {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *runHeap) pop() runCursor {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.items[l].key < h.items[smallest].key {
			smallest = l
		}
		if r < last && h.items[r].key < h.items[smallest].key {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

package merge

import "pushpull/internal/par"

// Scratch is the merge substrate's reusable workspace: the radix sort's
// ping-pong buffers, the per-worker digit histograms of the parallel sort,
// and the pinned per-pass loop bodies that let the parallel passes run
// through par without allocating closures. One Scratch serves one kernel
// call at a time; internal/core's Workspace embeds one per element type so
// iterative algorithms (BFS, PageRank) pay the buffers once per run instead
// of once per matvec.
//
// The zero value is ready to use; buffers grow to the high-water mark and
// stay there.
type Scratch[V any] struct {
	keyTmp []uint32
	valTmp []V
	hist   [][radix]int

	pass passState[V]
}

// passState carries one radix pass's inputs to the pinned loop bodies.
// The func fields are created once and reused: they read their operands
// from the struct, so per-pass setup is plain field assignment and the
// par dispatch allocates nothing.
type passState[V any] struct {
	srcK, dstK []uint32
	srcV, dstV []V
	shift      uint
	hist       [][radix]int

	histBody  func(w, lo, hi int)
	scatKBody func(w, lo, hi int)
	scatPBody func(w, lo, hi int)
}

// KeyBuf returns a length-n key buffer, growing the retained one if needed.
func (s *Scratch[V]) KeyBuf(n int) []uint32 {
	if cap(s.keyTmp) < n {
		s.keyTmp = make([]uint32, n)
	}
	return s.keyTmp[:n]
}

// ValBuf returns a length-n value buffer, growing the retained one if needed.
func (s *Scratch[V]) ValBuf(n int) []V {
	if cap(s.valTmp) < n {
		s.valTmp = make([]V, n)
	}
	return s.valTmp[:n]
}

// histograms returns at least `workers` per-worker digit histograms.
func (s *Scratch[V]) histograms(workers int) [][radix]int {
	if len(s.hist) < workers {
		s.hist = make([][radix]int, workers)
	}
	return s.hist
}

func (s *Scratch[V]) ensurePassBodies() {
	st := &s.pass
	if st.histBody != nil {
		return
	}
	// Bodies hoist the pass state into locals so the element loops run on
	// registers rather than through the struct pointer.
	st.histBody = func(w, lo, hi int) {
		h := &st.hist[w]
		srcK, shift := st.srcK, st.shift
		for d := range h {
			h[d] = 0
		}
		for _, k := range srcK[lo:hi] {
			h[(k>>shift)&digitMask]++
		}
	}
	st.scatKBody = func(w, lo, hi int) {
		h := &st.hist[w]
		srcK, dstK, shift := st.srcK, st.dstK, st.shift
		for _, k := range srcK[lo:hi] {
			d := (k >> shift) & digitMask
			dstK[h[d]] = k
			h[d]++
		}
	}
	st.scatPBody = func(w, lo, hi int) {
		h := &st.hist[w]
		srcK, dstK, shift := st.srcK, st.dstK, st.shift
		srcV, dstV := st.srcV, st.dstV
		for i := lo; i < hi; i++ {
			k := srcK[i]
			d := (k >> shift) & digitMask
			dstK[h[d]] = k
			dstV[h[d]] = srcV[i]
			h[d]++
		}
	}
}

// SortKeysWith is SortKeys backed by reusable scratch storage: the ping-pong
// buffer and (for the parallel path) the histograms and loop bodies come
// from s, so steady-state calls allocate nothing. A nil s falls back to
// SortKeys.
func SortKeysWith[V any](keys []uint32, maxKey uint32, s *Scratch[V]) {
	if s == nil {
		SortKeys(keys, maxKey)
		return
	}
	n := len(keys)
	if n < 2 {
		return
	}
	tmp := s.KeyBuf(n)
	if n < parallelSortThreshold || par.MaxWorkers() == 1 {
		sortKeysSeqInto(keys, tmp, maxKey)
		return
	}
	sortKeysParWith(keys, tmp, maxKey, s)
}

// SortPairsWith is SortPairs backed by reusable scratch storage. A nil s
// falls back to SortPairs.
func SortPairsWith[V any](keys []uint32, vals []V, maxKey uint32, s *Scratch[V]) {
	if s == nil {
		SortPairs(keys, vals, maxKey)
		return
	}
	n := len(keys)
	if n != len(vals) {
		panic("merge: keys/vals length mismatch")
	}
	if n < 2 {
		return
	}
	tmpK := s.KeyBuf(n)
	tmpV := s.ValBuf(n)
	if n < parallelSortThreshold || par.MaxWorkers() == 1 {
		sortPairsSeqInto(keys, vals, tmpK, tmpV, maxKey)
		return
	}
	sortPairsParWith(keys, vals, tmpK, tmpV, maxKey, s)
}

// SortKeysSequentialWith is SortKeysSequential backed by scratch storage:
// the single-threaded path regardless of the worker bound, for instrumented
// or deterministic runs. A nil s falls back to SortKeysSequential.
func SortKeysSequentialWith[V any](keys []uint32, maxKey uint32, s *Scratch[V]) {
	if s == nil {
		SortKeysSequential(keys, maxKey)
		return
	}
	if n := len(keys); n >= 2 {
		sortKeysSeqInto(keys, s.KeyBuf(n), maxKey)
	}
}

// SortPairsSequentialWith is SortPairsSequential backed by scratch storage.
// A nil s falls back to SortPairsSequential.
func SortPairsSequentialWith[V any](keys []uint32, vals []V, maxKey uint32, s *Scratch[V]) {
	if s == nil {
		SortPairsSequential(keys, vals, maxKey)
		return
	}
	if len(keys) != len(vals) {
		panic("merge: keys/vals length mismatch")
	}
	if n := len(keys); n >= 2 {
		sortPairsSeqInto(keys, vals, s.KeyBuf(n), s.ValBuf(n), maxKey)
	}
}

func sortKeysParWith[V any](keys, tmp []uint32, maxKey uint32, s *Scratch[V]) {
	n := len(keys)
	passes := passesFor(maxKey)
	workers := par.MaxWorkers()
	s.ensurePassBodies()
	st := &s.pass
	st.hist = s.histograms(workers)
	src, dst := keys, tmp
	for p := 0; p < passes; p++ {
		st.shift = uint(p * digitBits)
		st.srcK, st.dstK = src, dst
		used := par.ForWorker(n, st.histBody)
		sum := 0
		for d := 0; d < radix; d++ {
			for w := 0; w < used; w++ {
				st.hist[w][d], sum = sum, sum+st.hist[w][d]
			}
		}
		st.srcK, st.dstK = src, dst
		par.ForWorker(n, st.scatKBody)
		src, dst = dst, src
	}
	if passes%2 == 1 {
		copy(keys, src)
	}
	st.srcK, st.dstK = nil, nil
}

func sortPairsParWith[V any](keys []uint32, vals []V, tmpK []uint32, tmpV []V, maxKey uint32, s *Scratch[V]) {
	n := len(keys)
	passes := passesFor(maxKey)
	workers := par.MaxWorkers()
	s.ensurePassBodies()
	st := &s.pass
	st.hist = s.histograms(workers)
	srcK, dstK := keys, tmpK
	srcV, dstV := vals, tmpV
	for p := 0; p < passes; p++ {
		st.shift = uint(p * digitBits)
		st.srcK, st.dstK = srcK, dstK
		used := par.ForWorker(n, st.histBody)
		sum := 0
		for d := 0; d < radix; d++ {
			for w := 0; w < used; w++ {
				st.hist[w][d], sum = sum, sum+st.hist[w][d]
			}
		}
		st.srcK, st.dstK = srcK, dstK
		st.srcV, st.dstV = srcV, dstV
		par.ForWorker(n, st.scatPBody)
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	if passes%2 == 1 {
		copy(keys, srcK)
		copy(vals, srcV)
	}
	st.srcK, st.dstK = nil, nil
	st.srcV, st.dstV = nil, nil
}

package merge

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pushpull/internal/par"
)

func randKeys(rng *rand.Rand, n int, maxKey uint32) []uint32 {
	keys := make([]uint32, n)
	for i := range keys {
		if maxKey == ^uint32(0) {
			keys[i] = rng.Uint32()
		} else {
			keys[i] = rng.Uint32() % (maxKey + 1)
		}
	}
	return keys
}

func TestSortKeysMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 2, 100, parallelSortThreshold - 1, parallelSortThreshold + 1, 1 << 17} {
		for _, maxKey := range []uint32{0, 255, 65535, 1 << 20, 1<<32 - 1} {
			keys := randKeys(rng, n, maxKey)
			want := append([]uint32(nil), keys...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			SortKeys(keys, maxKey)
			for i := range keys {
				if keys[i] != want[i] {
					t.Fatalf("n=%d maxKey=%d: keys[%d]=%d want %d", n, maxKey, i, keys[i], want[i])
				}
			}
		}
	}
}

func TestSortPairsStable(t *testing.T) {
	// Payload carries the original position; for equal keys, positions must
	// remain ascending (LSD radix is stable).
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{100, 1 << 16} {
		keys := randKeys(rng, n, 50) // few distinct keys → many ties
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i
		}
		SortPairs(keys, vals, 50)
		for i := 1; i < n; i++ {
			if keys[i-1] > keys[i] {
				t.Fatalf("n=%d: unsorted at %d", n, i)
			}
			if keys[i-1] == keys[i] && vals[i-1] >= vals[i] {
				t.Fatalf("n=%d: stability violated at %d (%d,%d)", n, i, vals[i-1], vals[i])
			}
		}
	}
}

func TestSortPairsPermutesValuesConsistently(t *testing.T) {
	f := func(raw []uint16) bool {
		keys := make([]uint32, len(raw))
		vals := make([]uint32, len(raw))
		for i, r := range raw {
			keys[i] = uint32(r)
			vals[i] = uint32(r) * 3 // value derivable from key
		}
		SortPairs(keys, vals, 1<<16-1)
		for i := range keys {
			if vals[i] != keys[i]*3 {
				return false
			}
		}
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortSingleWorker(t *testing.T) {
	prev := par.SetMaxWorkers(1)
	defer par.SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(4))
	keys := randKeys(rng, 1<<16, 1<<30)
	want := append([]uint32(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	SortKeys(keys, 1<<30)
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("keys[%d]=%d want %d", i, keys[i], want[i])
		}
	}
}

func buildRuns(rng *rand.Rand, k, runLen int, maxKey uint32) ([]uint32, []int) {
	var keys []uint32
	offsets := []int{0}
	for r := 0; r < k; r++ {
		n := rng.Intn(runLen)
		run := randKeys(rng, n, maxKey)
		sort.Slice(run, func(i, j int) bool { return run[i] < run[j] })
		keys = append(keys, run...)
		offsets = append(offsets, len(keys))
	}
	return keys, offsets
}

func TestMultiwayMergeKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{0, 1, 2, 7, 64} {
		keys, offsets := buildRuns(rng, k, 50, 200)
		got := MultiwayMergeKeys(keys, offsets)
		seen := map[uint32]bool{}
		for _, x := range keys {
			seen[x] = true
		}
		var want []uint32
		for x := range seen {
			want = append(want, x)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d keys, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d: got[%d]=%d want %d", k, i, got[i], want[i])
			}
		}
	}
}

func TestMultiwayMergePairsCombines(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	keys, offsets := buildRuns(rng, 16, 40, 100)
	vals := make([]int, len(keys))
	for i := range vals {
		vals[i] = 1
	}
	gotK, gotV := MultiwayMergePairs(keys, vals, offsets, func(a, b int) int { return a + b })
	counts := map[uint32]int{}
	for _, k := range keys {
		counts[k]++
	}
	if len(gotK) != len(counts) {
		t.Fatalf("got %d unique keys, want %d", len(gotK), len(counts))
	}
	for i, k := range gotK {
		if gotV[i] != counts[k] {
			t.Fatalf("key %d: combined=%d want %d", k, gotV[i], counts[k])
		}
		if i > 0 && gotK[i-1] >= k {
			t.Fatalf("output unsorted at %d", i)
		}
	}
}

func TestSegmentedReducePairs(t *testing.T) {
	keys := []uint32{1, 1, 2, 5, 5, 5, 9}
	vals := []int{1, 2, 3, 4, 5, 6, 7}
	k, v := SegmentedReducePairs(keys, vals, func(a, b int) int { return a + b })
	wantK := []uint32{1, 2, 5, 9}
	wantV := []int{3, 3, 15, 7}
	if len(k) != len(wantK) {
		t.Fatalf("len=%d want %d", len(k), len(wantK))
	}
	for i := range k {
		if k[i] != wantK[i] || v[i] != wantV[i] {
			t.Fatalf("at %d: (%d,%d) want (%d,%d)", i, k[i], v[i], wantK[i], wantV[i])
		}
	}
	if k, v := SegmentedReducePairs([]uint32{}, []int{}, func(a, b int) int { return a + b }); len(k) != 0 || len(v) != 0 {
		t.Fatal("empty input should stay empty")
	}
}

func TestDedupeSortedKeys(t *testing.T) {
	got := DedupeSortedKeys([]uint32{0, 0, 1, 3, 3, 3, 8})
	want := []uint32{0, 1, 3, 8}
	if len(got) != len(want) {
		t.Fatalf("len=%d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got[%d]=%d want %d", i, got[i], want[i])
		}
	}
	if out := DedupeSortedKeys(nil); len(out) != 0 {
		t.Fatal("nil input should return empty")
	}
}

func TestHeapMergeAgainstRadixProperty(t *testing.T) {
	// The heap merge and the radix+segmented-reduce pipeline must agree:
	// they are the two implementations the ablation bench compares.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		keys, offsets := buildRuns(rng, 1+rng.Intn(20), 30, 500)
		vals := make([]float64, len(keys))
		for i := range vals {
			vals[i] = float64(keys[i]) + 0.5
		}
		combine := func(a, b float64) float64 { return a + b }

		hk, hv := MultiwayMergePairs(keys, vals, offsets, combine)

		rk := append([]uint32(nil), keys...)
		rv := append([]float64(nil), vals...)
		SortPairs(rk, rv, 500)
		rk, rv = SegmentedReducePairs(rk, rv, combine)

		if len(hk) != len(rk) {
			return false
		}
		for i := range hk {
			if hk[i] != rk[i] || hv[i] != rv[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSortKeys(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	keys := randKeys(rng, 1<<20, 1<<21)
	work := make([]uint32, len(keys))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, keys)
		SortKeys(work, 1<<21)
	}
}

func BenchmarkSortPairs(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	keys := randKeys(rng, 1<<20, 1<<21)
	vals := make([]uint32, len(keys))
	workK := make([]uint32, len(keys))
	workV := make([]uint32, len(keys))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(workK, keys)
		copy(workV, vals)
		SortPairs(workK, workV, 1<<21)
	}
}

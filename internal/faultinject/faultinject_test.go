//go:build faultinject

package faultinject

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestArmNthSemantics: an arm at nth=2 ignores the first Fire, runs exactly
// once on the second, and is silent forever after.
func TestArmNthSemantics(t *testing.T) {
	var fired atomic.Int64
	disarm := Arm("test.site", 2, func() { fired.Add(1) })
	defer disarm()

	Fire("test.site")
	if fired.Load() != 0 {
		t.Fatal("nth=2 arm fired on the first call")
	}
	Fire("test.site")
	if fired.Load() != 1 {
		t.Fatalf("nth=2 arm fired %d times on the second call, want 1", fired.Load())
	}
	for i := 0; i < 10; i++ {
		Fire("test.site")
	}
	if fired.Load() != 1 {
		t.Fatalf("arm re-fired: %d total", fired.Load())
	}
}

// TestDisarmRemoves: after disarm, the pending action never runs.
func TestDisarmRemoves(t *testing.T) {
	var fired atomic.Int64
	disarm := Arm("test.disarm", 1, func() { fired.Add(1) })
	disarm()
	Fire("test.disarm")
	if fired.Load() != 0 {
		t.Fatal("disarmed action still fired")
	}
	// Disarming twice is safe.
	disarm()
}

// TestRearmReplaces: arming a site again replaces the previous arm, and the
// stale disarm must not remove the replacement.
func TestRearmReplaces(t *testing.T) {
	var first, second atomic.Int64
	disarm1 := Arm("test.rearm", 1, func() { first.Add(1) })
	disarm2 := Arm("test.rearm", 1, func() { second.Add(1) })
	defer disarm2()

	disarm1() // stale: must not disturb the live arm
	Fire("test.rearm")
	if first.Load() != 0 {
		t.Fatal("replaced arm fired")
	}
	if second.Load() != 1 {
		t.Fatalf("replacement fired %d times, want 1", second.Load())
	}
}

// TestSitesIndependent: arms on different sites do not interfere.
func TestSitesIndependent(t *testing.T) {
	var a, b atomic.Int64
	da := Arm("test.a", 1, func() { a.Add(1) })
	db := Arm("test.b", 1, func() { b.Add(1) })
	defer da()
	defer db()

	Fire("test.a")
	if a.Load() != 1 || b.Load() != 0 {
		t.Fatalf("cross-site interference: a=%d b=%d", a.Load(), b.Load())
	}
	Fire("test.b")
	if b.Load() != 1 {
		t.Fatalf("site b did not fire: %d", b.Load())
	}
}

// TestConcurrentFire: many goroutines racing through Fire see the action
// exactly once, with no lost or duplicated firings.
func TestConcurrentFire(t *testing.T) {
	var fired atomic.Int64
	disarm := Arm("test.race", 64, func() { fired.Add(1) })
	defer disarm()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Fire("test.race")
			}
		}()
	}
	wg.Wait()
	if fired.Load() != 1 {
		t.Fatalf("action ran %d times under concurrent Fire, want 1", fired.Load())
	}
}

func TestEnabledFlag(t *testing.T) {
	if !Enabled {
		t.Fatal("faultinject build tag set but Enabled is false")
	}
}

// Package faultinject is the test-only fault-injection registry behind the
// robustness stress suite. Production builds compile the no-op variant
// (fire sites inline to nothing); building with `-tags faultinject` swaps in
// the real registry so tests can arm a panic at the Nth dispatched chunk, a
// delay inside a kernel phase, or a context cancellation mid-iteration, and
// then assert the substrate survives: no deadlock, no worker leak, no
// poisoned pool entries.
//
// The registry is deliberately tiny: a site fires at most one armed action,
// exactly once, on the Nth call. Anything richer (sequences, probabilities)
// belongs in the test that arms it.
package faultinject

// Instrumentation sites compiled into the hot paths. Constants exist in both
// build variants so callers never need their own tag-gated references.
const (
	// SiteParChunk fires once per chunk claimed by internal/par's dispatch
	// loop, inside the chunk's recover scope — an armed panic here exercises
	// the first-fault capture and drain path.
	SiteParChunk = "par.chunk"

	// SiteMxVKernel fires once per MxV kernel phase in the graphblas layer,
	// between planning and kernel execution — an armed delay or context
	// cancellation here exercises the between-phase abort path.
	SiteMxVKernel = "graphblas.mxv.kernel"

	// SiteShardKernel fires once per shard body of the range-sharded
	// matvec, on the par worker running that shard — an armed panic here
	// exercises the first-fault capture with sibling shards still in
	// flight: the fault must surface as ErrKernelPanic, taint the
	// workspace, and strand no worker.
	SiteShardKernel = "core.mxv.shard"

	// SiteServeLoad fires once per graph-source load in the serving
	// lifecycle (initial load and every reload attempt), inside the
	// recover scope that converts a panic into a load error — an armed
	// panic here exercises the degraded-start and reload-rollback paths
	// without needing a corrupt file on disk.
	SiteServeLoad = "serve.lifecycle.load"

	// SiteServeValidate fires once per snapshot validation (the
	// dimension/CSR-CSC parity checks plus the smoke traversal that gate
	// every snapshot before it swaps in) — an armed panic here exercises a
	// graph that loads but fails validation: the reload must roll back and
	// the old snapshot must keep serving.
	SiteServeValidate = "serve.lifecycle.validate"
)

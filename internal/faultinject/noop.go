//go:build !faultinject

package faultinject

// Enabled reports whether fault-injection hooks are compiled in.
const Enabled = false

// Arm is inert without the faultinject build tag; the returned disarm is a
// no-op too.
func Arm(site string, nth int, action func()) (disarm func()) { return func() {} }

// Fire is inert without the faultinject build tag. It is empty and
// non-variadic so calls on kernel hot paths inline to nothing.
func Fire(site string) {}

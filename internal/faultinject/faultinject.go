//go:build faultinject

package faultinject

import (
	"sync"
	"sync/atomic"
)

// Enabled reports whether fault-injection hooks are compiled in.
const Enabled = true

// arm is one registered fault: a countdown to the firing call and the action
// to run when it hits zero. The countdown is atomic because Fire runs from
// arbitrary worker goroutines.
type arm struct {
	countdown atomic.Int64
	action    func()
}

var (
	mu   sync.RWMutex
	arms = map[string]*arm{}
)

// Arm registers action to run on the nth Fire at site (1-based: nth == 1
// fires on the next call). The action runs exactly once, on the goroutine
// that made the nth call — so an armed panic unwinds that goroutine's stack
// just like a real kernel bug would. Arming a site replaces any previous
// arm. The returned disarm removes the arm if it has not fired yet; always
// call it (defer) so one test's leftover fault cannot trip another.
func Arm(site string, nth int, action func()) (disarm func()) {
	a := &arm{action: action}
	if nth < 1 {
		nth = 1
	}
	a.countdown.Store(int64(nth))
	mu.Lock()
	arms[site] = a
	mu.Unlock()
	return func() {
		mu.Lock()
		if arms[site] == a {
			delete(arms, site)
		}
		mu.Unlock()
	}
}

// Fire notifies the registry that execution reached site. With nothing
// armed it is a cheap read-locked map probe; with an arm in place it
// decrements the countdown and runs the action when the countdown reaches
// exactly zero (later calls pass through).
func Fire(site string) {
	mu.RLock()
	a := arms[site]
	mu.RUnlock()
	if a == nil {
		return
	}
	if a.countdown.Add(-1) == 0 {
		a.action()
	}
}

package serve

import (
	"math"
	"sort"
	"sync"

	"pushpull/internal/core"
)

// predictorAlpha is the EWMA weight of one measured whole-query runtime:
// the same trade the kernel corrector makes (core.Corrector), scaled to
// query granularity — a handful of completed queries converge a bad seed,
// one outlier cannot flip the admission decision.
const predictorAlpha = 0.25

// predictor estimates whole-query run time per (graph, algo) pair. It
// extends the paper's per-iteration cost model one level up: the
// calibrated core.CostModel prices a full-sweep bound (every edge touched
// once in the less favourable direction) that seeds the estimate before
// any query has completed, and an EWMA over measured run nanoseconds of
// completed queries refines it from live traffic. The admission path
// reads predictions to price queue drain and deadline feasibility; the
// budget path multiplies them into per-query execution budgets; /metrics
// exports each entry with its predicted-vs-measured accuracy ratio.
type predictor struct {
	mu      sync.Mutex
	entries map[predKey]*predEntry
}

type predKey struct {
	graph, algo string
}

// predEntry is one (graph, algo) estimate. Accuracy sums pair each
// completed query's admission-time prediction with its measured run time,
// so the exported ratio compares like with like (queries that ran before
// any prediction existed do not dilute it).
type predEntry struct {
	seedNs  float64
	ewmaNs  float64 // 0 until the first measured sample
	samples uint64
	predSum float64
	measSum float64
}

func newPredictor() *predictor {
	return &predictor{entries: make(map[predKey]*predEntry)}
}

// predict returns the current estimate in nanoseconds for one query,
// creating the entry on first sight with the seed the caller computes
// (invoked only on the miss, under the lock — typically the cost-model
// full-sweep bound). Zero means "no idea yet": an uncalibrated server
// with no completed samples predicts nothing, and the admission path
// treats such queries as always feasible.
func (p *predictor) predict(graph, algo string, seed func() float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[predKey{graph, algo}]
	if e == nil {
		e = &predEntry{}
		if seed != nil {
			e.seedNs = seed()
		}
		p.entries[predKey{graph, algo}] = e
	}
	if e.ewmaNs > 0 {
		return e.ewmaNs
	}
	return e.seedNs
}

// observe folds one completed query's measured run time into the EWMA and,
// when the query carried an admission-time prediction, into the accuracy
// sums. Only successful queries observe: a cancelled or shed query's
// partial runtime says nothing about the full cost.
func (p *predictor) observe(graph, algo string, predictedNs, measuredNs float64) {
	if measuredNs <= 0 || math.IsNaN(measuredNs) || math.IsInf(measuredNs, 0) {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[predKey{graph, algo}]
	if e == nil {
		e = &predEntry{}
		p.entries[predKey{graph, algo}] = e
	}
	if e.ewmaNs == 0 {
		e.ewmaNs = measuredNs
	} else {
		e.ewmaNs += predictorAlpha * (measuredNs - e.ewmaNs)
	}
	e.samples++
	if predictedNs > 0 {
		e.predSum += predictedNs
		e.measSum += measuredNs
	}
}

// PredictionSnapshot is one (graph, algo) entry of the /metrics
// predictions section.
type PredictionSnapshot struct {
	// SeedNs is the cost-model full-sweep bound the entry started from
	// (zero on untuned servers).
	SeedNs float64 `json:"seed_ns"`
	// EwmaNs is the measured-runtime EWMA (zero until a query completes).
	EwmaNs float64 `json:"ewma_ns"`
	// PredictedNs is what the next query would be priced at.
	PredictedNs float64 `json:"predicted_ns"`
	// Samples counts the completed queries folded into the EWMA.
	Samples uint64 `json:"samples"`
	// AccuracyRatio is Σ measured / Σ predicted over completed queries
	// that carried an admission-time prediction: 1.0 is a perfect
	// predictor, 0 means no such query has completed yet.
	AccuracyRatio float64 `json:"accuracy_ratio"`
}

// snapshot exports every entry keyed "graph/algo".
func (p *predictor) snapshot() map[string]PredictionSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.entries) == 0 {
		return nil
	}
	out := make(map[string]PredictionSnapshot, len(p.entries))
	keys := make([]predKey, 0, len(p.entries))
	for k := range p.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].graph != keys[j].graph {
			return keys[i].graph < keys[j].graph
		}
		return keys[i].algo < keys[j].algo
	})
	for _, k := range keys {
		e := p.entries[k]
		ps := PredictionSnapshot{SeedNs: e.seedNs, EwmaNs: e.ewmaNs, Samples: e.samples}
		ps.PredictedNs = ps.EwmaNs
		if ps.PredictedNs == 0 {
			ps.PredictedNs = ps.SeedNs
		}
		if e.predSum > 0 {
			ps.AccuracyRatio = e.measSum / e.predSum
		}
		out[k.graph+"/"+k.algo] = ps
	}
	return out
}

// sweepBoundNs prices one full-graph sweep with the calibrated cost
// model: the worse of a full pull (scan every row, probe every edge at
// the bitmap rate) and a full sorted push (gather and merge every edge) —
// the cost of touching the whole edge set once in the less favourable
// direction. Returns 0 without a calibrated model; the per-algorithm
// sweep factor (runner.sweeps) multiplies this into a whole-query seed.
func sweepBoundNs(m *core.CostModel, rows, nnz int) float64 {
	if m == nil || !m.Calibrated() {
		return 0
	}
	d := core.AvgRowDegree(nnz, rows)
	pull := m.SetupNs + float64(rows)*m.RowNs + float64(rows)*d*m.ProbeBoolNs
	push := m.SetupNs + float64(nnz)*(m.GatherNs+math.Log2(float64(nnz)+2)*m.SortNs)
	return math.Max(pull, push)
}

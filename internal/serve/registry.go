package serve

import (
	"context"
	"hash/fnv"
	"math"
	"sort"

	"pushpull/algorithms"
	"pushpull/graphblas"
)

// runner is one registry entry: how to run a named algorithm on a worker.
// Runners receive the worker so they can pin its per-graph workspace and
// feed its trace records into the shared planner metrics; everything else
// they allocate per query and own exclusively (the graphblas concurrency
// contract). Runners build their payload from whatever per-vertex state
// the algorithm handed back — on cancellation and budget trips that is
// the documented coherent partial progress, returned alongside the error
// so the pool can ship it as a Partial result.
type runner struct {
	name string
	// needsSource marks the traversal algorithms that root at a vertex.
	needsSource bool
	// sweeps scales the cost model's full-sweep bound into the whole-query
	// prediction seed: roughly how many times the algorithm touches the
	// edge set before converging on typical inputs. Deliberately coarse —
	// the seed only has to be the right order of magnitude, the measured
	// EWMA refines it from live traffic.
	sweeps float64
	run    func(ctx context.Context, g *Graph, req Request, w *worker) (Payload, error)
}

// registry is the fixed algorithm set, keyed by query name. Immutable
// after init, so concurrent lookups need no lock.
var registry = map[string]*runner{
	"bfs":       {name: "bfs", needsSource: true, sweeps: 3, run: runBFS},
	"parentbfs": {name: "parentbfs", needsSource: true, sweeps: 3, run: runParentBFS},
	"sssp":      {name: "sssp", needsSource: true, sweeps: 8, run: runSSSP},
	"pagerank":  {name: "pagerank", sweeps: 20, run: runPageRank},
	"cc":        {name: "cc", sweeps: 8, run: runCC},
}

// AlgorithmNames lists the registry's query names, sorted.
func AlgorithmNames() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// plannerTrace adapts an algorithm's per-iteration trace into the shared
// PlannerMetrics, carrying the per-traversal flip-detection state in its
// closure (one closure per query — never shared).
func plannerTrace(m *PlannerMetrics) func(algorithms.IterStats) {
	first := true
	var prev graphblas.TraversalDirection
	return func(s algorithms.IterStats) {
		flipped := !first && s.Direction != prev
		first, prev = false, s.Direction
		m.observe(s.Direction, s.PredictedNs, s.MeasuredNs, flipped)
	}
}

func runBFS(ctx context.Context, g *Graph, req Request, w *worker) (Payload, error) {
	res, err := algorithms.BFS(g.Mat, req.Source, algorithms.BFSOptions{
		Model:     w.model,
		Workspace: w.workspace(g.Mat.NRows(), g.Mat.NCols()),
		Context:   ctx,
		Trace:     plannerTrace(w.planner),
	})
	if res.Depths == nil {
		return Payload{}, err
	}
	p := Payload{Reached: res.Visited, Iterations: res.Iterations}
	h := fnv.New64a()
	var buf [4]byte
	for _, d := range res.Depths {
		if d > p.MaxDepth {
			p.MaxDepth = d
		}
		putU32(&buf, uint32(d))
		h.Write(buf[:])
	}
	p.Checksum = h.Sum64()
	if req.Full {
		p.Depths = res.Depths
	}
	return p, err
}

func runParentBFS(ctx context.Context, g *Graph, req Request, w *worker) (Payload, error) {
	parents, err := algorithms.ParentBFSRun(g.Mat, req.Source, algorithms.ParentBFSOptions{
		Model:     w.model,
		Workspace: w.workspace(g.Mat.NRows(), g.Mat.NCols()),
		Context:   ctx,
	})
	if parents == nil {
		return Payload{}, err
	}
	p := Payload{}
	h := fnv.New64a()
	var buf [8]byte
	for _, par := range parents {
		if par >= 0 {
			p.Reached++
		}
		putU64(&buf, uint64(par))
		h.Write(buf[:])
	}
	p.Checksum = h.Sum64()
	if req.Full {
		p.Parents = parents
	}
	return p, err
}

func runSSSP(ctx context.Context, g *Graph, req Request, w *worker) (Payload, error) {
	wm, err := g.Weighted()
	if err != nil {
		return Payload{}, err
	}
	dist, err := algorithms.SSSP(wm, req.Source, algorithms.SSSPOptions{
		Model:     w.model,
		Workspace: w.workspace(wm.NRows(), wm.NCols()),
		Context:   ctx,
		Trace:     plannerTrace(w.planner),
	})
	if dist == nil {
		return Payload{}, err
	}
	p := Payload{}
	h := fnv.New64a()
	var buf [8]byte
	for _, d := range dist {
		if !math.IsInf(d, 1) {
			p.Reached++
		}
		putU64(&buf, math.Float64bits(d))
		h.Write(buf[:])
	}
	p.Checksum = h.Sum64()
	if req.Full {
		p.Dist = dist
	}
	return p, err
}

func runPageRank(ctx context.Context, g *Graph, req Request, w *worker) (Payload, error) {
	res, err := algorithms.PageRank(g.Mat, algorithms.PageRankOptions{
		Model:     w.model,
		Workspace: w.workspace(g.Mat.NRows(), g.Mat.NCols()),
		Context:   ctx,
	})
	if res.Ranks == nil {
		return Payload{}, err
	}
	p := Payload{Reached: len(res.Ranks), Iterations: res.Iterations}
	h := fnv.New64a()
	var buf [8]byte
	for _, r := range res.Ranks {
		putU64(&buf, math.Float64bits(r))
		h.Write(buf[:])
	}
	p.Checksum = h.Sum64()
	if req.Full {
		p.Ranks = res.Ranks
	}
	return p, err
}

func runCC(ctx context.Context, g *Graph, req Request, w *worker) (Payload, error) {
	labels, err := algorithms.ConnectedComponentsRun(g.Mat, algorithms.CCOptions{
		Workspace: w.workspace(g.Mat.NRows(), g.Mat.NCols()),
		Context:   ctx,
	})
	if labels == nil {
		return Payload{}, err
	}
	p := Payload{Reached: len(labels)}
	h := fnv.New64a()
	var buf [4]byte
	for i, l := range labels {
		if int(l) == i {
			p.Components++
		}
		putU32(&buf, l)
		h.Write(buf[:])
	}
	p.Checksum = h.Sum64()
	if req.Full {
		p.Labels = labels
	}
	return p, err
}

func putU32(buf *[4]byte, v uint32) {
	buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(buf *[8]byte, v uint64) {
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
}

package serve

import (
	"context"
	"runtime/debug"
	"testing"

	"pushpull/graphblas"
)

// TestWarmWorkerKernelPathAllocs pins the serving pool's zero-allocation
// claim: after real queries have warmed a worker's pinned workspace, the
// kernel path a repeat query drives through that same arena — masked
// matvec in both directions plus the visited merge — allocates nothing.
// The per-query envelope (result arrays, channel plumbing) necessarily
// allocates; the guard is that the arena-backed kernel work does not.
func TestWarmWorkerKernelPathAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	g := kronGraph(t, 8)
	n := g.Mat.NRows()
	srv, err := New(Config{Workers: 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Warm the worker's pinned arena with real traffic, keeping one full
	// result to rebuild mid-traversal state from.
	var depths []int32
	for i := 0; i < 3; i++ {
		res, err := srv.Do(context.Background(), Request{Graph: "kron", Algo: "bfs", Full: true})
		if err != nil {
			t.Fatal(err)
		}
		depths = res.Payload.Depths
	}

	// The pool is idle now (Do's completion synchronizes with the worker),
	// so the test may drive the pinned arena directly — the same arena a
	// repeat query would run on.
	w := srv.workers[0]
	ws := w.pinned[[2]int{n, n}]
	if ws == nil {
		t.Fatal("warm worker has no pinned workspace for the served shape")
	}

	// Mid-traversal state: level-1 frontier, source+level-1 visited.
	sr := graphblas.OrAndBool()
	f := graphblas.NewVector[bool](n)
	visited := graphblas.NewVector[bool](n)
	visited.ToBitmap()
	_ = visited.SetElement(0, true)
	for v, d := range depths {
		if d == 1 {
			_ = f.SetElement(v, true)
			_ = visited.SetElement(v, true)
		}
	}
	out := graphblas.NewVector[bool](n)
	desc := &graphblas.Descriptor{
		Transpose:            true,
		StructureOnly:        true,
		StructuralComplement: true,
		Workspace:            ws,
	}

	for _, dirCase := range []struct {
		name string
		dir  graphblas.Direction
	}{{"push", graphblas.ForcePush}, {"pull", graphblas.ForcePull}} {
		iteration := func() {
			desc.Direction = dirCase.dir
			input := f
			if dirCase.dir == graphblas.ForcePull {
				input = visited
			}
			if _, err := graphblas.MxV(out, visited, nil, sr, g.Mat, input, desc); err != nil {
				t.Fatal(err)
			}
			if err := graphblas.AssignVector(visited, out); err != nil {
				t.Fatal(err)
			}
		}
		iteration() // settle visited to its fixpoint for this direction
		iteration()
		if avg := testing.AllocsPerRun(20, iteration); avg != 0 {
			t.Errorf("%s kernel path on warm pinned workspace: %v allocs, want 0", dirCase.name, avg)
		}
	}
}

// TestPostReloadKernelPathAllocs pins the reload half of the zero-alloc
// claim: a reload that swaps in a new snapshot of the same shape must not
// cost the worker its pinned arena — the prune keeps live shapes — so warm
// queries return to the allocation-free kernel path immediately on the new
// generation.
func TestPostReloadKernelPathAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	g := kronGraph(t, 8)
	n := g.Mat.NRows()
	srv, err := NewFromSources(Config{Workers: 1},
		[]GraphSource{{Name: "kron", Load: func() (*Graph, error) { return NewGraph("kron", g.Mat), nil }}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Warm the worker's arena, then swap generations underneath it.
	var depths []int32
	for i := 0; i < 3; i++ {
		res, err := srv.Do(context.Background(), Request{Graph: "kron", Algo: "bfs", Full: true})
		if err != nil {
			t.Fatal(err)
		}
		depths = res.Payload.Depths
	}
	shape := [2]int{n, n}
	warmWS := srv.workers[0].pinned[shape]
	if warmWS == nil {
		t.Fatal("warm worker has no pinned workspace")
	}
	if rep := srv.Reload(context.Background()); rep.Failed != 0 {
		t.Fatalf("reload: %+v", rep)
	}

	// The first post-reload query triggers the worker's stale-shape prune;
	// the shape is still live, so the warm arena must survive it.
	res, err := srv.Do(context.Background(), Request{Graph: "kron", Algo: "bfs", Full: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gen != 2 {
		t.Fatalf("post-reload query ran on gen %d, want 2", res.Gen)
	}
	if srv.workers[0].pinned[shape] != warmWS {
		t.Fatal("same-shape reload dropped the warm pinned workspace")
	}

	// The kernel path through that surviving arena is still allocation-free.
	sr := graphblas.OrAndBool()
	f := graphblas.NewVector[bool](n)
	visited := graphblas.NewVector[bool](n)
	visited.ToBitmap()
	_ = visited.SetElement(0, true)
	for v, d := range depths {
		if d == 1 {
			_ = f.SetElement(v, true)
			_ = visited.SetElement(v, true)
		}
	}
	out := graphblas.NewVector[bool](n)
	desc := &graphblas.Descriptor{
		Transpose:            true,
		StructureOnly:        true,
		StructuralComplement: true,
		Workspace:            warmWS,
	}
	for _, dirCase := range []struct {
		name string
		dir  graphblas.Direction
	}{{"push", graphblas.ForcePush}, {"pull", graphblas.ForcePull}} {
		iteration := func() {
			desc.Direction = dirCase.dir
			input := f
			if dirCase.dir == graphblas.ForcePull {
				input = visited
			}
			if _, err := graphblas.MxV(out, visited, nil, sr, g.Mat, input, desc); err != nil {
				t.Fatal(err)
			}
			if err := graphblas.AssignVector(visited, out); err != nil {
				t.Fatal(err)
			}
		}
		iteration()
		iteration()
		if avg := testing.AllocsPerRun(20, iteration); avg != 0 {
			t.Errorf("post-reload %s kernel path: %v allocs, want 0", dirCase.name, avg)
		}
	}
}

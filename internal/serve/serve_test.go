package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pushpull/graphblas"
	"pushpull/internal/harness"
	"pushpull/internal/par"
)

// kronGraph loads the small Kronecker stand-in every pool test serves.
func kronGraph(t *testing.T, scale int) *Graph {
	t.Helper()
	m, err := harness.LoadGraph("", "kron", scale)
	if err != nil {
		t.Fatal(err)
	}
	return NewGraph("kron", m)
}

// pathGraph builds a directed n-vertex path — a traversal with n levels,
// slow enough that deadline/cancellation/admission tests can interrupt it
// deterministically (each test polls for the state it needs, never sleeps
// and hopes).
func pathGraph(t *testing.T, n int) *Graph {
	t.Helper()
	rows := make([]uint32, n-1)
	cols := make([]uint32, n-1)
	vals := make([]bool, n-1)
	for i := 0; i < n-1; i++ {
		rows[i], cols[i], vals[i] = uint32(i), uint32(i + 1), true
	}
	m, err := graphblas.NewMatrixFromCOO(n, n, rows, cols, vals, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewGraph("path", m)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentMixedQueries is the acceptance stress: 64 concurrent
// in-flight queries mixing every algorithm over one shared Matrix, each
// result checked against a single-worker oracle's checksum, with the
// parallel runtime's parked-worker count stable across the storm and the
// metrics reporting every outcome.
func TestConcurrentMixedQueries(t *testing.T) {
	g := kronGraph(t, 8)
	sources := []int{0, 3, 17, 101}

	// Oracle: the same queries served strictly one at a time.
	oracleSrv, err := New(Config{Workers: 1}, kronGraph(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		algo   string
		source int
	}
	oracle := make(map[key]uint64)
	for _, algo := range AlgorithmNames() {
		for _, s := range sources {
			res, err := oracleSrv.Do(context.Background(), Request{Graph: "kron", Algo: algo, Source: s})
			if err != nil {
				t.Fatalf("oracle %s/%d: %v", algo, s, err)
			}
			if res.Payload.Checksum == 0 {
				t.Fatalf("oracle %s/%d: zero checksum", algo, s)
			}
			oracle[key{algo, s}] = res.Payload.Checksum
		}
	}
	oracleSrv.Close()

	srv, err := New(Config{Workers: 8, QueueDepth: 128}, g)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Warm the parallel runtime, then pin its parked-worker count: the
	// storm must neither leak nor strand persistent workers.
	if _, err := srv.Do(context.Background(), Request{Graph: "kron", Algo: "bfs"}); err != nil {
		t.Fatal(err)
	}
	base := par.ParkedWorkers()

	const clients = 64
	algos := AlgorithmNames()
	var wg sync.WaitGroup
	errs := make(chan error, clients*2)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for run := 0; run < 2; run++ {
				algo := algos[(c+run)%len(algos)]
				s := sources[c%len(sources)]
				res, err := srv.Do(context.Background(), Request{Graph: "kron", Algo: algo, Source: s})
				if err != nil {
					errs <- fmt.Errorf("client %d %s/%d: %v", c, algo, s, err)
					return
				}
				if want := oracle[key{algo, s}]; res.Payload.Checksum != want {
					errs <- fmt.Errorf("client %d %s/%d: checksum %x, oracle %x", c, algo, s, res.Payload.Checksum, want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	waitFor(t, "parked workers to return to baseline", func() bool {
		return par.ParkedWorkers() == base
	})

	snap := srv.Metrics().Snapshot()
	if want := uint64(1 + clients*2); snap.Submitted != want {
		t.Errorf("submitted = %d, want %d", snap.Submitted, want)
	}
	if snap.Rejected != 0 {
		t.Errorf("rejected = %d, want 0 (queue was sized for the storm)", snap.Rejected)
	}
	var totalOK, totalBucketed uint64
	for algo, as := range snap.Algorithms {
		if as.OK == 0 {
			t.Errorf("algorithm %s: zero completed queries", algo)
		}
		if as.MeanMS <= 0 {
			t.Errorf("algorithm %s: mean latency %v, want > 0", algo, as.MeanMS)
		}
		totalOK += as.OK
		for _, b := range as.LatencyBuckets {
			totalBucketed += b
		}
	}
	if totalBucketed != totalOK {
		t.Errorf("latency histogram counts %d queries, %d completed", totalBucketed, totalOK)
	}
	if p := snap.Planner; p.PushIters+p.PullIters == 0 {
		t.Error("planner metrics saw no traced iterations")
	} else if p.MeasuredNs == 0 {
		t.Error("planner metrics measured no kernel time")
	}
}

// TestAdmissionRejection pins the bounded-queue contract: with one worker
// occupied and the one queue slot filled, the next query is rejected
// immediately with ErrQueueFull (HTTP 429), not delayed.
func TestAdmissionRejection(t *testing.T) {
	srv, err := New(Config{Workers: 1, QueueDepth: 1}, pathGraph(t, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	slow := func() {
		defer wg.Done()
		_, _ = srv.Do(ctx, Request{Graph: "path", Algo: "bfs"})
	}
	wg.Add(1)
	go slow() // occupies the worker
	waitFor(t, "first query to start running", func() bool {
		for _, q := range srv.Queries() {
			if q.State == "running" {
				return true
			}
		}
		return false
	})
	wg.Add(1)
	go slow() // fills the queue slot
	waitFor(t, "second query to queue", func() bool {
		return srv.Metrics().Snapshot().QueueDepth == 1
	})

	_, err = srv.Do(context.Background(), Request{Graph: "path", Algo: "bfs"})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overload Do: %v, want ErrQueueFull", err)
	}
	if got := HTTPStatus(err); got != http.StatusTooManyRequests {
		t.Errorf("HTTPStatus = %d, want 429", got)
	}
	if snap := srv.Metrics().Snapshot(); snap.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", snap.Rejected)
	}

	cancel() // release the slow queries
	wg.Wait()
}

// TestDeadlineMapsTo504: a per-query deadline expiring mid-traversal
// surfaces as context.DeadlineExceeded (through the wrapped ErrCancelled)
// and maps to 504, never 499.
func TestDeadlineMapsTo504(t *testing.T) {
	srv, err := New(Config{Workers: 1}, pathGraph(t, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	_, err = srv.Do(context.Background(), Request{Graph: "path", Algo: "bfs", Timeout: 2 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do: %v, want DeadlineExceeded", err)
	}
	if got := HTTPStatus(err); got != http.StatusGatewayTimeout {
		t.Errorf("HTTPStatus = %d, want 504", got)
	}
	if snap := srv.Metrics().Snapshot(); snap.Algorithms["bfs"].Deadline != 1 {
		t.Errorf("deadline count = %d, want 1", snap.Algorithms["bfs"].Deadline)
	}
}

// TestClientGoneMapsTo499: the client abandoning its context mid-query
// returns a wrapped ErrCancelled that does not match DeadlineExceeded —
// the 499 path — and the worker sheds the abandoned traversal.
func TestClientGoneMapsTo499(t *testing.T) {
	srv, err := New(Config{Workers: 1}, pathGraph(t, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := srv.Do(ctx, Request{Graph: "path", Algo: "bfs"})
		done <- err
	}()
	waitFor(t, "query to start running", func() bool {
		for _, q := range srv.Queries() {
			if q.State == "running" {
				return true
			}
		}
		return false
	})
	cancel()
	err = <-done
	if !errors.Is(err, graphblas.ErrCancelled) || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do: %v, want ErrCancelled without DeadlineExceeded", err)
	}
	if got := HTTPStatus(err); got != StatusClientClosedRequest {
		t.Errorf("HTTPStatus = %d, want 499", got)
	}
	// The worker finishes shedding the traversal and records the outcome.
	waitFor(t, "cancelled query to be recorded", func() bool {
		return srv.Metrics().Snapshot().Algorithms["bfs"].Cancelled == 1
	})
}

// TestValidation covers the fast-fail request taxonomy: every structural
// error resolves before a queue slot is consumed.
func TestValidation(t *testing.T) {
	srv, err := New(Config{Workers: 1}, kronGraph(t, 6))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		req    Request
		want   error
		status int
	}{
		{"unknown graph", Request{Graph: "nope", Algo: "bfs"}, ErrUnknownGraph, http.StatusNotFound},
		{"unknown algo", Request{Graph: "kron", Algo: "dijkstra"}, ErrUnknownAlgorithm, http.StatusNotFound},
		{"source out of range", Request{Graph: "kron", Algo: "bfs", Source: 1 << 20}, ErrBadRequest, http.StatusBadRequest},
		{"negative source", Request{Graph: "kron", Algo: "sssp", Source: -1}, ErrBadRequest, http.StatusBadRequest},
		{"negative timeout", Request{Graph: "kron", Algo: "bfs", Timeout: -time.Second}, ErrBadRequest, http.StatusBadRequest},
	}
	for _, c := range cases {
		_, err := srv.Do(context.Background(), c.req)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: Do = %v, want %v", c.name, err, c.want)
		}
		if got := HTTPStatus(err); got != c.status {
			t.Errorf("%s: HTTPStatus = %d, want %d", c.name, got, c.status)
		}
	}

	srv.Close()
	if _, err := srv.Do(context.Background(), Request{Graph: "kron", Algo: "bfs"}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("Do after Close: %v, want ErrShuttingDown", err)
	} else if got := HTTPStatus(err); got != http.StatusServiceUnavailable {
		t.Errorf("HTTPStatus after Close = %d, want 503", got)
	}
}

// TestHTTPStatusMapping is the unit table for the taxonomy→transport map,
// including the ordering subtlety (deadline expiries match both
// ErrCancelled and DeadlineExceeded and must land on 504).
func TestHTTPStatusMapping(t *testing.T) {
	deadlineWrapped := fmt.Errorf("%w: %w", graphblas.ErrCancelled, context.DeadlineExceeded)
	clientGone := fmt.Errorf("%w: %w", graphblas.ErrCancelled, context.Canceled)
	cases := []struct {
		err  error
		want int
	}{
		{nil, http.StatusOK},
		{ErrQueueFull, http.StatusTooManyRequests},
		{ErrShuttingDown, http.StatusServiceUnavailable},
		{ErrUnknownGraph, http.StatusNotFound},
		{ErrUnknownAlgorithm, http.StatusNotFound},
		{ErrBadRequest, http.StatusBadRequest},
		{deadlineWrapped, http.StatusGatewayTimeout},
		{clientGone, StatusClientClosedRequest},
		{graphblas.ErrCancelled, StatusClientClosedRequest},
		{graphblas.NewPanicError("injected"), http.StatusInternalServerError},
		{errors.New("mystery"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.err); got != c.want {
			t.Errorf("HTTPStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestPublicErrorMessageHidesStacks: a kernel panic's Error() carries the
// captured goroutine stack for the server log; the public message must
// collapse to the sentinel text.
func TestPublicErrorMessageHidesStacks(t *testing.T) {
	perr := graphblas.NewPanicError("injected fault")
	if !strings.Contains(perr.Error(), "goroutine") && !strings.Contains(perr.Error(), "injected fault") {
		t.Skip("panic error no longer carries diagnostic detail; nothing to hide")
	}
	pub := PublicErrorMessage(perr)
	if pub != graphblas.ErrKernelPanic.Error() {
		t.Errorf("public message %q, want the bare sentinel %q", pub, graphblas.ErrKernelPanic.Error())
	}
	if strings.Contains(pub, "goroutine") || strings.Contains(pub, "injected fault") {
		t.Errorf("public message leaks diagnostic detail: %q", pub)
	}
	// Non-panic errors pass through untouched.
	if got := PublicErrorMessage(ErrQueueFull); got != ErrQueueFull.Error() {
		t.Errorf("PublicErrorMessage(ErrQueueFull) = %q", got)
	}
}

// TestWeightedSharedAcrossQueries: the lazily derived SSSP weights build
// once and every query shares the same matrix (pointer identity).
func TestWeightedSharedAcrossQueries(t *testing.T) {
	g := kronGraph(t, 6)
	w1, err := g.Weighted()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := g.Weighted()
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Error("Weighted rebuilt the weighted copy")
	}
}

package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pushpull/graphblas"
	"pushpull/internal/faultinject"
)

// This file is the graph lifecycle layer: refcounted snapshots, the
// registry that swaps them atomically on reload, and the validation gate
// every snapshot passes before it serves.
//
// The invariant the refcounts enforce: a query acquires its snapshot at
// admission and releases it at completion, so an in-flight traversal never
// observes a torn or freed graph — a reload installs the new snapshot for
// new queries while old ones drain on the retired snapshot, which frees
// (shard/cut-table caches purged, test sentinel fired) only after its last
// reference drops.

// GraphSource names a graph and knows how to (re)load it. The Load
// function is called at startup and on every reload — for file-backed
// specs it re-reads the file, which is what makes hot reload pick up new
// data. Load must return a fresh or immutable *Graph; the registry never
// mutates it.
type GraphSource struct {
	Name string
	Load func() (*Graph, error)
}

// StaticSource wraps an already-loaded graph as a source whose reloads
// re-validate and re-wrap the same matrix (a new snapshot generation over
// the same data). Used by New and by tests.
func StaticSource(g *Graph) GraphSource {
	return GraphSource{Name: g.Name, Load: func() (*Graph, error) { return g, nil }}
}

// snapshot is one immutable loaded generation of a graph. The registry
// holds one base reference while the snapshot is current; every admitted
// query holds one more for its lifetime. When the count reaches zero —
// only possible after the registry retired it — the snapshot's derived
// caches are purged and the release sentinel fires.
type snapshot struct {
	graph *Graph
	gen   uint64
	refs  atomic.Int64
	// released runs exactly once when refs reaches zero (set by the
	// registry: metrics + optional test hook).
	released func()
}

// acquire takes a reference, failing only if the snapshot already hit
// zero (it was retired and fully drained between the caller loading the
// pointer and incrementing — the caller re-reads the current snapshot).
func (s *snapshot) acquire() bool {
	for {
		n := s.refs.Load()
		if n <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (s *snapshot) release() {
	if n := s.refs.Add(-1); n == 0 {
		// Last reference: free the derived structures eagerly so a retired
		// graph's shard boundaries and cut tables do not outlive it even
		// when the Matrix itself is still referenced by a static source.
		if s.graph != nil && s.graph.Mat != nil {
			s.graph.Mat.PurgeShardCache()
		}
		if s.released != nil {
			s.released()
		}
	} else if n < 0 {
		panic("serve: snapshot over-released")
	}
}

// graphEntry is one named graph's lifecycle state: its source, the
// current snapshot (nil while failed/degraded), and the status fields the
// /graphs and /metrics surfaces report.
type graphEntry struct {
	name   string
	source GraphSource
	cur    atomic.Pointer[snapshot]

	mu             sync.Mutex
	gen            uint64 // last successfully installed generation
	lastErr        string // last load/validate failure ("" after a success)
	reloadFailures uint64
}

// graphRegistry maps graph names to entries and tracks the set of live
// graph shapes so workers can prune pinned workspaces keyed to retired
// shapes.
type graphRegistry struct {
	mu      sync.RWMutex
	entries map[string]*graphEntry

	// shapeEpoch bumps on every install/retire; workers compare it against
	// their cached epoch and prune stale pinned workspaces between tasks.
	shapeEpoch atomic.Uint64

	metrics *Metrics

	// releaseHook, when non-nil, observes every snapshot's final release
	// (the test sentinel for "retired snapshots actually free").
	releaseHook func(name string, gen uint64)
}

func newGraphRegistry(m *Metrics) *graphRegistry {
	return &graphRegistry{entries: make(map[string]*graphEntry), metrics: m}
}

// GraphStatus values reported per graph in /graphs and /metrics.
const (
	GraphServing = "serving"
	GraphFailed  = "failed"
)

// GraphInfo is one graph's lifecycle surface for /graphs.
type GraphInfo struct {
	Name   string `json:"name"`
	Status string `json:"status"`
	// Gen is the serving snapshot's generation (0 while failed).
	Gen      uint64 `json:"gen"`
	Vertices int    `json:"vertices,omitempty"`
	Edges    int    `json:"edges,omitempty"`
	// Error is the most recent load/validate failure; set both for failed
	// graphs and for serving graphs whose last reload rolled back.
	Error string `json:"error,omitempty"`
}

// add registers a source and attempts its initial load. When the load or
// validation fails the entry is still registered — status failed, error
// recorded — so a later reload can bring it up; the returned error lets
// strict callers refuse to start.
func (r *graphRegistry) add(src GraphSource, validateTimeout time.Duration) error {
	if src.Name == "" || src.Load == nil {
		return fmt.Errorf("%w: graph source needs a name and a loader", ErrBadRequest)
	}
	e := &graphEntry{name: src.Name, source: src}
	r.mu.Lock()
	if _, dup := r.entries[src.Name]; dup {
		r.mu.Unlock()
		return fmt.Errorf("%w: duplicate graph %q", ErrBadRequest, src.Name)
	}
	r.entries[src.Name] = e
	r.mu.Unlock()
	return r.install(e, validateTimeout)
}

// install loads the entry's source off to the side, validates the result,
// and — only on success — swaps it in as the current snapshot, retiring
// the previous one. Any failure leaves the previous snapshot serving
// untouched (rollback) and records the reason.
func (r *graphRegistry) install(e *graphEntry, validateTimeout time.Duration) error {
	g, err := loadSource(e.source)
	if err == nil {
		err = validateGraph(g, validateTimeout)
	}
	if err != nil {
		e.mu.Lock()
		e.lastErr = err.Error()
		if e.cur.Load() != nil {
			e.reloadFailures++
		}
		e.mu.Unlock()
		return fmt.Errorf("graph %q: %w", e.name, err)
	}

	s := &snapshot{graph: g}
	e.mu.Lock()
	e.gen++
	s.gen = e.gen
	e.lastErr = ""
	e.mu.Unlock()
	s.refs.Store(1) // the registry's base reference
	name, gen := e.name, s.gen
	s.released = func() {
		r.metrics.snapshotsReleased.Add(1)
		if r.releaseHook != nil {
			r.releaseHook(name, gen)
		}
	}
	r.metrics.snapshotsInstalled.Add(1)

	old := e.cur.Swap(s)
	r.shapeEpoch.Add(1)
	if old != nil {
		r.metrics.snapshotsRetired.Add(1)
		old.release()
	}
	return nil
}

// loadSource runs the source's loader under a recover scope (and the
// faultinject load site), so a panicking loader degrades to a load error
// instead of killing the serving process.
func loadSource(src GraphSource) (g *Graph, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			g, err = nil, fmt.Errorf("load panicked: %v", rec)
		}
	}()
	faultinject.Fire(faultinject.SiteServeLoad)
	g, err = src.Load()
	if err != nil {
		return nil, err
	}
	if g == nil || g.Mat == nil {
		return nil, fmt.Errorf("loader returned a nil graph")
	}
	if g.Name == "" {
		g.Name = src.Name
	}
	return g, nil
}

// validateGraph is the gate every snapshot passes before it can serve:
// structural checks (square, non-empty, CSR and CSC describing the same
// edge set) plus a smoke traversal that runs one matvec in each direction
// and requires identical frontiers — push walks the CSC, pull scans the
// CSR, so agreement is an end-to-end parity check over both orientations.
// Runs under a recover scope (and the faultinject validate site): a panic
// during validation is a validation failure, not a process death.
func validateGraph(g *Graph, timeout time.Duration) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("validate panicked: %v", rec)
		}
	}()
	faultinject.Fire(faultinject.SiteServeValidate)

	m := g.Mat
	n := m.NRows()
	if n <= 0 {
		return fmt.Errorf("validate: empty matrix (%d×%d)", m.NRows(), m.NCols())
	}
	if m.NCols() != n {
		return fmt.Errorf("validate: adjacency matrix must be square, got %d×%d", n, m.NCols())
	}
	csr, csc := m.CSR(), m.CSC()
	if csr.NNZ() != csc.NNZ() {
		return fmt.Errorf("validate: CSR/CSC nnz mismatch: %d vs %d", csr.NNZ(), csc.NNZ())
	}
	// Order-insensitive edge checksum over both orientations: CSR folds
	// (row,col), CSC folds (col,row) — equal sums mean the two views
	// describe the same edge set.
	var hr, hc uint64
	for i := 0; i < csr.Rows; i++ {
		for _, j := range csr.Ind[csr.Ptr[i]:csr.Ptr[i+1]] {
			hr += edgeHash(uint64(i), uint64(j))
		}
	}
	for j := 0; j < csc.Rows; j++ {
		for _, i := range csc.Ind[csc.Ptr[j]:csc.Ptr[j+1]] {
			hc += edgeHash(uint64(i), uint64(j))
		}
	}
	if hr != hc {
		return fmt.Errorf("validate: CSR/CSC edge sets differ (checksums %x vs %x)", hr, hc)
	}

	if m.NVals() == 0 {
		return nil // an empty edge set has nothing to traverse
	}
	// Smoke traversal from the first vertex with out-edges: one push and
	// one pull matvec over the same frontier must agree element-for-element.
	src := -1
	for i := 0; i < csr.Rows; i++ {
		if csr.Ptr[i+1] > csr.Ptr[i] {
			src = i
			break
		}
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	sr := graphblas.OrAndBool()
	f := graphblas.NewVector[bool](n)
	_ = f.SetElement(src, true)
	ws := graphblas.AcquireWorkspace(n, n)
	defer ws.Release()
	sums := [2]uint64{}
	for d, dir := range []graphblas.Direction{graphblas.ForcePush, graphblas.ForcePull} {
		out := graphblas.NewVector[bool](n)
		desc := &graphblas.Descriptor{
			Transpose:     true,
			StructureOnly: true,
			Direction:     dir,
			Workspace:     ws,
			Context:       ctx,
		}
		if _, err := graphblas.MxV[bool, bool](out, nil, nil, sr, m, f, desc); err != nil {
			return fmt.Errorf("validate: smoke %s matvec: %w", []string{"push", "pull"}[d], err)
		}
		out.Iterate(func(i int, v bool) bool {
			if v {
				sums[d] += edgeHash(uint64(src), uint64(i))
			}
			return true
		})
	}
	if sums[0] != sums[1] {
		return fmt.Errorf("validate: smoke traversal push/pull frontiers differ (%x vs %x)", sums[0], sums[1])
	}
	return nil
}

// edgeHash mixes one (i,j) pair into an order-insensitive sum. Fibonacci
// hashing keeps permuted edge lists from colliding by accident.
func edgeHash(i, j uint64) uint64 {
	x := i*0x9e3779b97f4a7c15 ^ j*0xc2b2ae3d27d4eb4f
	x ^= x >> 29
	return x * 0xbf58476d1ce4e5b9
}

// acquire resolves a graph name to a referenced snapshot. The retry loop
// covers the reload race: if the loaded pointer drained to zero between
// the Load and the acquire, the registry has already published a newer
// snapshot (or retired the graph), so re-reading makes progress.
func (r *graphRegistry) acquire(name string) (*snapshot, error) {
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	for {
		s := e.cur.Load()
		if s == nil {
			e.mu.Lock()
			reason := e.lastErr
			e.mu.Unlock()
			return nil, fmt.Errorf("%w: %q (%s)", ErrGraphUnavailable, name, reason)
		}
		if s.acquire() {
			return s, nil
		}
	}
}

// liveShapes is the set of matrix shapes current snapshots serve —
// workers prune pinned workspaces whose shape left this set.
func (r *graphRegistry) liveShapes() map[[2]int]bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	shapes := make(map[[2]int]bool, len(r.entries))
	for _, e := range r.entries {
		if s := e.cur.Load(); s != nil {
			shapes[[2]int{s.graph.Mat.NRows(), s.graph.Mat.NCols()}] = true
		}
	}
	return shapes
}

// names returns the registered graph names (serving and failed).
func (r *graphRegistry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for name := range r.entries {
		out = append(out, name)
	}
	return out
}

// info snapshots one entry's lifecycle surface.
func (e *graphEntry) info() GraphInfo {
	gi := GraphInfo{Name: e.name}
	s := e.cur.Load()
	e.mu.Lock()
	gi.Error = e.lastErr
	e.mu.Unlock()
	if s != nil {
		gi.Status = GraphServing
		gi.Gen = s.gen
		gi.Vertices = s.graph.Mat.NRows()
		gi.Edges = s.graph.Mat.NVals()
	} else {
		gi.Status = GraphFailed
	}
	return gi
}

// infos lists every entry's lifecycle surface.
func (r *graphRegistry) infos() []GraphInfo {
	r.mu.RLock()
	entries := make([]*graphEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	out := make([]GraphInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// degraded reports whether any registered graph has no serving snapshot.
func (r *graphRegistry) degraded() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.entries {
		if e.cur.Load() == nil {
			return true
		}
	}
	return false
}

// close retires every snapshot, releasing the registry's base references
// so fully drained graphs free.
func (r *graphRegistry) close() {
	r.mu.RLock()
	entries := make([]*graphEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	for _, e := range entries {
		if old := e.cur.Swap(nil); old != nil {
			r.metrics.snapshotsRetired.Add(1)
			old.release()
		}
	}
	r.shapeEpoch.Add(1)
}

// ReloadResult is one graph's outcome in a reload pass.
type ReloadResult struct {
	Graph string `json:"graph"`
	// Gen is the serving generation after the attempt: bumped on success,
	// unchanged on rollback, 0 when the graph has never served.
	Gen uint64 `json:"gen"`
	// Status is the graph's post-attempt state (serving | failed).
	Status string `json:"status"`
	// Error is the load/validate failure that rolled this graph back
	// (empty on success).
	Error      string  `json:"error,omitempty"`
	DurationMS float64 `json:"duration_ms"`
}

// ReloadReport summarizes one reload pass over every registered graph.
type ReloadReport struct {
	OK      int            `json:"ok"`
	Failed  int            `json:"failed"`
	Results []ReloadResult `json:"results"`
}

// Reload re-runs every registered source through load → validate → swap.
// Each graph succeeds or rolls back independently: a failure leaves that
// graph's current snapshot serving (or the graph failed if it never
// served) and records the structured reason; old snapshots retire and
// free only after their last in-flight query releases. Reload passes are
// serialized; concurrent calls queue behind the mutex.
func (s *Server) Reload(ctx context.Context) ReloadReport {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	var rep ReloadReport
	s.registry.mu.RLock()
	entries := make([]*graphEntry, 0, len(s.registry.entries))
	for _, e := range s.registry.entries {
		entries = append(entries, e)
	}
	s.registry.mu.RUnlock()
	for _, e := range entries {
		if ctx != nil && ctx.Err() != nil {
			break
		}
		start := time.Now()
		err := s.registry.install(e, s.cfg.ValidateTimeout)
		res := ReloadResult{Graph: e.name, DurationMS: float64(time.Since(start).Nanoseconds()) / 1e6}
		if err != nil {
			s.metrics.reloadFailures.Add(1)
			res.Error = err.Error()
			rep.Failed++
		} else {
			s.metrics.reloads.Add(1)
			rep.OK++
		}
		gi := e.info()
		res.Gen, res.Status = gi.Gen, gi.Status
		rep.Results = append(rep.Results, res)
	}
	return rep
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"pushpull/graphblas"
)

// TestCloseDoHammer is the shutdown-race regression test: clients spinning
// Do while Close runs concurrently. The old channel-based queue could
// panic here (send on closed channel); the scheduler's mutex makes the
// race benign — a racing submission either lands (and drains) or fails
// with ErrShuttingDown. Run under -race.
func TestCloseDoHammer(t *testing.T) {
	for round := 0; round < 4; round++ {
		srv, err := New(Config{Workers: 2, QueueDepth: 8}, kronGraph(t, 6))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					_, err := srv.Do(context.Background(), Request{Graph: "kron", Algo: "bfs"})
					switch {
					case err == nil, errors.Is(err, ErrQueueFull):
						continue
					case errors.Is(err, ErrShuttingDown):
						return
					default:
						errs <- fmt.Errorf("unexpected Do error during shutdown: %w", err)
						return
					}
				}
			}()
		}
		time.Sleep(time.Duration(round) * time.Millisecond)
		srv.Close()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
}

// TestInfeasibleDeadlineShed: once the predictor has evidence that a
// query costs more than the request's deadline allows, admission
// fast-fails with ErrInfeasibleDeadline (429) and an honest
// prediction-derived Retry-After — instead of admitting the query to
// time out in line.
func TestInfeasibleDeadlineShed(t *testing.T) {
	srv, err := New(Config{Workers: 1}, pathGraph(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Prime the predictor: bfs on this graph "costs" 500ms.
	srv.pred.observe("path", "bfs", 0, float64(500*time.Millisecond))

	_, err = srv.Do(context.Background(), Request{Graph: "path", Algo: "bfs", Timeout: 50 * time.Millisecond})
	if !errors.Is(err, ErrInfeasibleDeadline) {
		t.Fatalf("Do: %v, want ErrInfeasibleDeadline", err)
	}
	if got := HTTPStatus(err); got != http.StatusTooManyRequests {
		t.Errorf("HTTPStatus = %d, want 429", got)
	}
	secs, ok := RetryAfterHint(err)
	if !ok || secs < minRetryAfterSeconds || secs > maxRetryAfterSeconds {
		t.Errorf("RetryAfterHint = (%d, %v), want a hint in [1, 60]", secs, ok)
	}
	snap := srv.Metrics().Snapshot()
	if snap.Admission.ShedInfeasible != 1 {
		t.Errorf("shed_infeasible = %d, want 1", snap.Admission.ShedInfeasible)
	}
	if snap.Rejected != 1 {
		t.Errorf("rejected = %d, want 1 (infeasible sheds count)", snap.Rejected)
	}

	// A generous deadline admits the same query.
	if _, err := srv.Do(context.Background(), Request{Graph: "path", Algo: "bfs", Timeout: 10 * time.Second}); err != nil {
		t.Fatalf("feasible deadline: %v", err)
	}
}

// TestQuotaRate: a client over its token bucket sheds with
// ErrQuotaExceeded (429, Retry-After from the refill rate); anonymous
// traffic is exempt.
func TestQuotaRate(t *testing.T) {
	srv, err := New(Config{Workers: 1, QuotaRate: 0.001, QuotaBurst: 1}, kronGraph(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if _, err := srv.Do(context.Background(), Request{Graph: "kron", Algo: "bfs", ClientID: "alice"}); err != nil {
		t.Fatalf("first query: %v", err)
	}
	_, err = srv.Do(context.Background(), Request{Graph: "kron", Algo: "bfs", ClientID: "alice"})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second query: %v, want ErrQuotaExceeded", err)
	}
	if got := HTTPStatus(err); got != http.StatusTooManyRequests {
		t.Errorf("HTTPStatus = %d, want 429", got)
	}
	if secs, ok := RetryAfterHint(err); !ok || secs < 1 {
		t.Errorf("RetryAfterHint = (%d, %v), want a refill-derived hint", secs, ok)
	}
	// A different client and an anonymous query both still admit.
	if _, err := srv.Do(context.Background(), Request{Graph: "kron", Algo: "bfs", ClientID: "bob"}); err != nil {
		t.Errorf("other client: %v", err)
	}
	if _, err := srv.Do(context.Background(), Request{Graph: "kron", Algo: "bfs"}); err != nil {
		t.Errorf("anonymous: %v", err)
	}
	if snap := srv.Metrics().Snapshot(); snap.Admission.ShedQuota != 1 {
		t.Errorf("shed_quota = %d, want 1", snap.Admission.ShedQuota)
	}
}

// TestQuotaInflight: the per-client in-flight cap sheds a client's second
// concurrent query while its first still runs, and releases on completion.
func TestQuotaInflight(t *testing.T) {
	srv, err := New(Config{Workers: 1, MaxInflightPerClient: 1}, pathGraph(t, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = srv.Do(ctx, Request{Graph: "path", Algo: "bfs", ClientID: "carol"})
	}()
	waitFor(t, "first query to start running", func() bool {
		for _, q := range srv.Queries() {
			if q.State == "running" {
				return true
			}
		}
		return false
	})
	_, err = srv.Do(context.Background(), Request{Graph: "path", Algo: "bfs", ClientID: "carol"})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("concurrent same-client query: %v, want ErrQuotaExceeded", err)
	}
	cancel()
	wg.Wait()
	// The slot released with the first query: carol admits again.
	waitFor(t, "carol's slot to release", func() bool {
		_, err := srv.Do(context.Background(), Request{Graph: "path", Algo: "bfs", ClientID: "carol", Timeout: 5 * time.Millisecond})
		return !errors.Is(err, ErrQuotaExceeded)
	})
}

// TestBudgetTrip: a query exceeding its execution budget is cancelled
// with graphblas.ErrBudgetExceeded (598, not 504 — its deadline did not
// pass), ships its coherent partial progress marked Partial, and counts
// in both the per-algo and admission budget counters.
func TestBudgetTrip(t *testing.T) {
	srv, err := New(Config{
		Workers: 1, BudgetFactor: 1, MinBudget: time.Millisecond,
	}, pathGraph(t, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Prime the predictor so the budget has something to scale: "bfs
	// costs 1ms" — the real traversal takes far longer.
	srv.pred.observe("path", "bfs", 0, float64(time.Millisecond))

	res, err := srv.Do(context.Background(), Request{Graph: "path", Algo: "bfs", Timeout: 10 * time.Second})
	if !errors.Is(err, graphblas.ErrBudgetExceeded) {
		t.Fatalf("Do: %v, want ErrBudgetExceeded", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Error("budget trip must not match context.DeadlineExceeded (the query's deadline did not pass)")
	}
	if got := HTTPStatus(err); got != StatusBudgetExceeded {
		t.Errorf("HTTPStatus = %d, want %d", got, StatusBudgetExceeded)
	}
	if !res.Partial {
		t.Error("result not marked Partial")
	}
	if res.Payload.Reached == 0 {
		t.Error("partial payload empty: budget trips must ship the progress paid for")
	}
	snap := srv.Metrics().Snapshot()
	if snap.Admission.BudgetTrips != 1 {
		t.Errorf("budget_trips = %d, want 1", snap.Admission.BudgetTrips)
	}
	if snap.Algorithms["bfs"].Budget != 1 {
		t.Errorf("bfs budget count = %d, want 1", snap.Algorithms["bfs"].Budget)
	}
	if snap.Algorithms["bfs"].Deadline != 0 {
		t.Errorf("bfs deadline count = %d, want 0 (trip must not masquerade as timeout)", snap.Algorithms["bfs"].Deadline)
	}
}

// TestQueueShedSplitFromRunHistogram is the Retry-After skew regression:
// a query whose deadline expires while queued lands in the queue-shed
// outcome and the queue-wait histogram — never in the run histogram the
// drain estimator reads.
func TestQueueShedSplitFromRunHistogram(t *testing.T) {
	srv, err := New(Config{Workers: 1, QueueDepth: 4}, pathGraph(t, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = srv.Do(ctx, Request{Graph: "path", Algo: "bfs"})
	}()
	waitFor(t, "blocker to start running", func() bool {
		for _, q := range srv.Queries() {
			if q.State == "running" {
				return true
			}
		}
		return false
	})

	// Admitted behind the blocker with a deadline shorter than any
	// realistic queue wait: it expires in the queue.
	wg.Add(1)
	var shedErr error
	go func() {
		defer wg.Done()
		_, shedErr = srv.Do(context.Background(), Request{Graph: "path", Algo: "bfs", Timeout: time.Millisecond})
	}()
	waitFor(t, "victim to queue", func() bool {
		return srv.Metrics().Snapshot().QueueDepth == 1
	})
	time.Sleep(5 * time.Millisecond) // let its deadline lapse in the queue
	cancel()                         // unblock the worker; it claims and sheds the victim
	wg.Wait()

	if !errors.Is(shedErr, context.DeadlineExceeded) {
		t.Fatalf("victim error: %v, want DeadlineExceeded", shedErr)
	}
	snap := srv.Metrics().Snapshot()
	bfs := snap.Algorithms["bfs"]
	if bfs.QueueShed != 1 {
		t.Errorf("queue_shed = %d, want 1", bfs.QueueShed)
	}
	if snap.Admission.ShedInQueue != 1 {
		t.Errorf("admission shed_in_queue = %d, want 1", snap.Admission.ShedInQueue)
	}
	var ran, waited uint64
	for _, b := range bfs.LatencyBuckets {
		ran += b
	}
	for _, b := range bfs.QueueWaitBuckets {
		waited += b
	}
	// Only the cancelled blocker ran; the shed victim shows up in the
	// queue-wait histogram but not the run histogram.
	if ran != 1 {
		t.Errorf("run histogram holds %d queries, want 1 (the blocker)", ran)
	}
	if waited != 2 {
		t.Errorf("queue-wait histogram holds %d queries, want 2", waited)
	}
}

// TestBadClassRejected: an unknown scheduling class is a 400 before
// touching the queue.
func TestBadClassRejected(t *testing.T) {
	srv, err := New(Config{Workers: 1}, kronGraph(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, err = srv.Do(context.Background(), Request{Graph: "kron", Algo: "bfs", Class: "bulk"})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("Do: %v, want ErrBadRequest", err)
	}
	if got := HTTPStatus(err); got != http.StatusBadRequest {
		t.Errorf("HTTPStatus = %d, want 400", got)
	}
}

// TestOverloadStressConservation floods a small pool with mixed-class,
// mixed-deadline, quota-bound traffic and then checks outcome
// conservation: every submitted query is accounted for exactly once
// across the shed taxonomy and the per-algorithm outcome counters. Run
// under -race — this is also the scheduler/quota/predictor concurrency
// stress.
func TestOverloadStressConservation(t *testing.T) {
	srv, err := New(Config{
		Workers: 2, QueueDepth: 4,
		QuotaRate: 50, QuotaBurst: 5, MaxInflightPerClient: 3,
	}, kronGraph(t, 7))
	if err != nil {
		t.Fatal(err)
	}

	algos := AlgorithmNames()
	var wg sync.WaitGroup
	for c := 0; c < 24; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				req := Request{
					Graph:    "kron",
					Algo:     algos[(c+i)%len(algos)],
					ClientID: fmt.Sprintf("client-%d", c%4),
				}
				if c%2 == 0 {
					req.Class = ClassBatch
				}
				if i%3 == 0 {
					req.Timeout = 500 * time.Microsecond // tight: deadline/infeasible fodder
				}
				_, _ = srv.Do(context.Background(), req)
			}
		}(c)
	}
	wg.Wait()
	srv.Close() // drains every admitted task before returning

	snap := srv.Metrics().Snapshot()
	var outcomes uint64
	for _, as := range snap.Algorithms {
		outcomes += as.OK + as.Errors + as.Cancelled + as.Deadline + as.Budget + as.Panics + as.QueueShed
	}
	accounted := outcomes + snap.Admission.ShedFull + snap.Admission.ShedInfeasible + snap.Admission.ShedQuota
	if accounted != snap.Submitted {
		t.Errorf("conservation: submitted %d, accounted %d (outcomes %d, sheds full=%d infeasible=%d quota=%d)",
			snap.Submitted, accounted, outcomes,
			snap.Admission.ShedFull, snap.Admission.ShedInfeasible, snap.Admission.ShedQuota)
	}
	if snap.Submitted != 24*6 {
		t.Errorf("submitted = %d, want %d", snap.Submitted, 24*6)
	}
	if snap.Admission.ShedInQueue > 0 {
		// Queue sheds also appear once in the per-algo QueueShed counters.
		var qs uint64
		for _, as := range snap.Algorithms {
			qs += as.QueueShed
		}
		if qs != snap.Admission.ShedInQueue {
			t.Errorf("shed_in_queue %d != per-algo queue_shed sum %d", snap.Admission.ShedInQueue, qs)
		}
	}
}

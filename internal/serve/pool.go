package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pushpull/graphblas"
	"pushpull/internal/core"
)

// Config sizes a Server.
type Config struct {
	// Workers is the fixed worker-goroutine count (default GOMAXPROCS).
	// Each worker owns its pinned workspaces; queries on one worker run
	// serially, concurrency comes from the pool width.
	Workers int
	// QueueDepth bounds the admission queue (default 4×Workers). A full
	// queue rejects with ErrQueueFull instead of building unbounded
	// latency.
	QueueDepth int
	// DefaultTimeout is the per-query deadline when the request does not
	// set one (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied deadlines (default 5m).
	MaxTimeout time.Duration
	// Model, when non-nil, is the calibrated cost model every query's
	// planner prices with (loaded from the host-keyed PPTUNE profile, or
	// fitted at startup). Shared read-only across workers — correctors,
	// which are mutable, stay per-query. The same model seeds the
	// whole-query cost predictor behind deadline-feasibility admission.
	Model *core.CostModel
	// RecentQueries sizes the /debug/queries completed-query ring
	// (default 32).
	RecentQueries int
	// FaultStreakLimit is the consecutive-kernel-fault count at which a
	// worker is retired and replaced with a fresh goroutine and arena
	// (default 3; negative disables self-healing).
	FaultStreakLimit int
	// ValidateTimeout bounds each snapshot validation's smoke traversal
	// (default 30s).
	ValidateTimeout time.Duration
	// DegradedStart lets NewFromSources come up with some graphs failed:
	// the valid subset serves, failed graphs answer 503 until a reload
	// brings them up, and Ready reports false. When off, any initial
	// load/validate failure refuses to start.
	DegradedStart bool
	// BatchAgingBound is the anti-starvation bound for batch-class
	// queries: whenever batch work is waiting, one batch task is claimed
	// per bound even if interactive work keeps arriving (default 3s).
	BatchAgingBound time.Duration
	// BudgetFactor scales each query's predicted run time into its
	// execution budget: a query exceeding factor×prediction is cancelled
	// with graphblas.ErrBudgetExceeded and returns its partial progress
	// (default 8; negative disables budgets; queries without a prediction
	// are never budget-bound).
	BudgetFactor float64
	// MinBudget floors the per-query budget so a fast prediction cannot
	// produce a hair-trigger budget: predictions measured on an idle
	// server understate wall time under contention, and a sub-second
	// budget would cut off queries whose clock is dominated by scheduling
	// noise rather than runaway cost (default 1s).
	MinBudget time.Duration
	// MaxBudget caps the per-query budget server-wide (default MaxTimeout).
	MaxBudget time.Duration
	// QuotaRate and QuotaBurst bound each identified client's admission
	// rate (token bucket: QuotaRate admissions/s sustained, QuotaBurst in
	// a burst). Zero disables rate quotas.
	QuotaRate  float64
	QuotaBurst float64
	// MaxInflightPerClient caps one client's concurrently admitted
	// queries. Zero disables. Clients are identified by Request.ClientID;
	// anonymous (empty-id) traffic is exempt from both bounds.
	MaxInflightPerClient int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.RecentQueries <= 0 {
		c.RecentQueries = 32
	}
	if c.FaultStreakLimit == 0 {
		c.FaultStreakLimit = 3
	}
	if c.ValidateTimeout <= 0 {
		c.ValidateTimeout = 30 * time.Second
	}
	if c.BatchAgingBound <= 0 {
		c.BatchAgingBound = 3 * time.Second
	}
	if c.BudgetFactor == 0 {
		c.BudgetFactor = 8
	}
	if c.MinBudget <= 0 {
		c.MinBudget = time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = c.MaxTimeout
	}
	return c
}

// task is one admitted query traveling from Do to a worker. It owns one
// reference on its snapshot from admission until runTask releases it.
type task struct {
	id      uint64
	req     Request
	snap    *snapshot
	r       *runner
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan outcome // buffered(1): the worker never blocks on delivery
	info    *QueryInfo
	started time.Time

	// class is the scheduling class index; deadline the query's absolute
	// deadline (the EDF key); predictedNs the admission-time whole-query
	// prediction (0 = unknown); seq the scheduler's admission tiebreak.
	class       int
	deadline    time.Time
	predictedNs float64
	seq         uint64
}

type outcome struct {
	res Result
	err error
}

// QueryInfo is one query's lifecycle record for /debug/queries. Fields
// are written by the owning worker and read racily-but-safely via the
// server's query mutex.
type QueryInfo struct {
	ID     uint64 `json:"id"`
	Graph  string `json:"graph"`
	Algo   string `json:"algo"`
	Source int    `json:"source"`
	// Gen is the snapshot generation the query ran on.
	Gen     uint64    `json:"gen,omitempty"`
	Class   string    `json:"class"`
	State   string    `json:"state"` // queued | running | done
	Status  string    `json:"status,omitempty"`
	Worker  int       `json:"worker,omitempty"`
	Started time.Time `json:"started"`
	// QueueMS is the admission-to-claim wait; RunMS the kernel time (zero
	// for queries shed while queued); DurationMS their sum.
	QueueMS    float64 `json:"queue_ms,omitempty"`
	RunMS      float64 `json:"run_ms,omitempty"`
	DurationMS float64 `json:"duration_ms,omitempty"`
}

// worker is one pool goroutine's private state: the pinned workspaces
// (one per graph shape, reused query over query — the zero-alloc kernel
// path), the shared read-only cost model, and the shared metrics sinks.
// Workers self-heal: a streak of consecutive kernel faults retires the
// worker, and the pool replaces it with a fresh goroutine and arena.
type worker struct {
	id      int // unique across the server's lifetime (replacements get new ids)
	slot    int // pool position, stable across replacement
	pinned  map[[2]int]*graphblas.Workspace
	model   *core.CostModel
	planner *PlannerMetrics
	// faultStreak counts consecutive queries that died to a kernel fault;
	// any successful query resets it (cancellations and deadline expiries
	// leave it unchanged — they say nothing about the worker's arena).
	faultStreak int
	// shapeEpoch is the registry epoch the pinned map was last pruned
	// against.
	shapeEpoch uint64
}

// workspace returns the worker's pinned arena for a graph shape, acquiring
// one on first use. Exclusively owned: only this worker's current query
// touches it.
func (w *worker) workspace(rows, cols int) *graphblas.Workspace {
	key := [2]int{rows, cols}
	ws := w.pinned[key]
	if ws == nil {
		ws = graphblas.AcquireWorkspace(rows, cols)
		w.pinned[key] = ws
	}
	return ws
}

// dropWorkspace releases the pinned arena for a shape after a kernel
// fault: Release discards a tainted workspace instead of pooling it, and
// the next query on this shape re-acquires fresh scratch.
func (w *worker) dropWorkspace(rows, cols int) {
	key := [2]int{rows, cols}
	if ws := w.pinned[key]; ws != nil {
		ws.Release()
		delete(w.pinned, key)
	}
}

// releaseAll returns every pinned workspace to the pool on shutdown or
// retirement.
func (w *worker) releaseAll() {
	for key, ws := range w.pinned {
		ws.Release()
		delete(w.pinned, key)
	}
}

// pruneStale drops pinned workspaces whose graph shape no longer belongs
// to any serving snapshot — the seam that frees per-worker arenas keyed to
// a retired shape after a reload changes a graph's dimensions. Runs
// between tasks (the pinned map is never shared), and only when the
// registry's shape set actually changed since the last prune.
func (w *worker) pruneStale(r *graphRegistry) {
	epoch := r.shapeEpoch.Load()
	if epoch == w.shapeEpoch {
		return
	}
	live := r.liveShapes()
	for key, ws := range w.pinned {
		if !live[key] {
			ws.Release()
			delete(w.pinned, key)
		}
	}
	w.shapeEpoch = epoch
}

// Server is the query service: the snapshot registry, the cost-aware
// admission scheduler, and the self-healing worker pool.
type Server struct {
	cfg      Config
	registry *graphRegistry
	reloadMu sync.Mutex // serializes Reload passes
	sched    *scheduler
	quotas   *quotas
	pred     *predictor
	metrics  *Metrics
	nextID   atomic.Uint64
	closed   atomic.Bool
	wg       sync.WaitGroup

	wmu          sync.Mutex
	workers      []*worker // slot-indexed; entries swap on self-heal
	nextWorkerID atomic.Int64

	qmu      sync.Mutex
	inflight map[uint64]*QueryInfo
	recent   []*QueryInfo // ring, newest at len-1
}

// New builds a Server over already-loaded graphs and starts its workers.
// Every graph must validate — New is the strict entry point; use
// NewFromSources with Config.DegradedStart for a server that can come up
// with a partial graph set.
func New(cfg Config, graphs ...*Graph) (*Server, error) {
	sources := make([]GraphSource, 0, len(graphs))
	for _, g := range graphs {
		if g == nil || g.Mat == nil || g.Name == "" {
			return nil, fmt.Errorf("%w: nil or unnamed graph", ErrBadRequest)
		}
		sources = append(sources, StaticSource(g))
	}
	cfg.DegradedStart = false
	return NewFromSources(cfg, sources)
}

// NewFromSources builds a Server over graph sources, loading and
// validating each one. With cfg.DegradedStart, load/validate failures
// leave that graph failed-but-registered (503 until a reload brings it
// up) as long as at least one graph serves; without it, any failure
// refuses to start.
func NewFromSources(cfg Config, sources []GraphSource) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(sources) == 0 {
		return nil, fmt.Errorf("%w: no graphs", ErrBadRequest)
	}
	s := &Server{
		cfg:      cfg,
		sched:    newScheduler(cfg.QueueDepth, cfg.BatchAgingBound),
		quotas:   newQuotas(cfg.QuotaRate, cfg.QuotaBurst, cfg.MaxInflightPerClient),
		pred:     newPredictor(),
		metrics:  newMetrics(AlgorithmNames()),
		inflight: make(map[uint64]*QueryInfo),
	}
	s.registry = newGraphRegistry(s.metrics)
	var firstErr error
	for _, src := range sources {
		if err := s.registry.add(src, cfg.ValidateTimeout); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			if !cfg.DegradedStart {
				s.registry.close()
				return nil, err
			}
		}
	}
	if s.registry.degraded() && len(s.registry.liveShapes()) == 0 {
		s.registry.close()
		return nil, fmt.Errorf("no graph loaded successfully: %w", firstErr)
	}
	s.metrics.queueLen = s.sched.depth
	s.metrics.classLens = s.sched.classDepths
	s.metrics.predictions = s.pred.snapshot
	s.metrics.graphInfos = func() (bool, []GraphInfo) {
		return s.registry.degraded(), s.registry.infos()
	}
	s.workers = make([]*worker, cfg.Workers)
	for i := range s.workers {
		w := s.newWorker(i)
		s.workers[i] = w
		s.wg.Add(1)
		go s.serveLoop(w)
	}
	return s, nil
}

// newWorker builds a fresh worker for a pool slot with a new unique id
// and empty arena map.
func (s *Server) newWorker(slot int) *worker {
	return &worker{
		id:      int(s.nextWorkerID.Add(1)),
		slot:    slot,
		pinned:  make(map[[2]int]*graphblas.Workspace),
		model:   s.cfg.Model,
		planner: &s.metrics.planner,
	}
}

// Metrics exposes the live counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Graph returns a loaded graph's current snapshot matrix by name. The
// returned Graph is a point-in-time read: a concurrent reload may retire
// it, so query execution goes through snapshot acquisition instead.
func (s *Server) Graph(name string) (*Graph, bool) {
	snap, err := s.registry.acquire(name)
	if err != nil {
		return nil, false
	}
	g := snap.graph
	snap.release()
	return g, true
}

// GraphNames lists the registered graphs (serving and failed).
func (s *Server) GraphNames() []string { return s.registry.names() }

// GraphInfos lists every registered graph's lifecycle surface: status,
// serving generation, dimensions, and the last load/validate failure.
func (s *Server) GraphInfos() []GraphInfo { return s.registry.infos() }

// Degraded reports whether any registered graph currently has no serving
// snapshot (failed at startup, or never recovered by a reload).
func (s *Server) Degraded() bool { return s.registry.degraded() }

// Ready is the readiness signal behind /readyz: the server accepts
// queries and every registered graph serves. A degraded server is alive
// (serving its valid subset) but not ready.
func (s *Server) Ready() bool { return !s.closed.Load() && !s.registry.degraded() }

// SetReleaseHook installs a test sentinel observing every snapshot's
// final release (name, generation). Set before traffic; not synchronized
// against in-flight releases.
func (s *Server) SetReleaseHook(hook func(name string, gen uint64)) {
	s.registry.releaseHook = hook
}

// RetryAfterSeconds is the backoff hint for a shed query: the admission
// queue's estimated drain time from the algorithm's recent p50 run
// latency, floored at one second. The HTTP layer puts it in the 429
// Retry-After header; sheds that carry their own prediction-derived hint
// (infeasible deadline, quota) override it via RetryAfterHint.
func (s *Server) RetryAfterSeconds(algo string) int {
	return s.metrics.retryAfterSeconds(algo, s.sched.depth(), s.cfg.Workers)
}

// Close stops admission, drains the queue, waits for in-flight queries to
// finish (each still bounded by its own deadline), and retires every
// snapshot. Safe against concurrent Do: admission goes through the
// scheduler's mutex, so a racing push observes the close and fails with
// ErrShuttingDown instead of racing a channel close.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.sched.close()
	s.wg.Wait()
	s.registry.close()
}

// resolve checks the request against the registry and acquires the
// graph's current snapshot, fast-failing before admission so malformed
// queries never consume a queue slot. On success the caller owns one
// snapshot reference.
func (s *Server) resolve(req Request) (*snapshot, *runner, error) {
	r, ok := registry[req.Algo]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, req.Algo)
	}
	if req.Timeout < 0 {
		return nil, nil, fmt.Errorf("%w: negative timeout", ErrBadRequest)
	}
	snap, err := s.registry.acquire(req.Graph)
	if err != nil {
		return nil, nil, err
	}
	if r.needsSource && (req.Source < 0 || req.Source >= snap.graph.Mat.NRows()) {
		n := snap.graph.Mat.NRows()
		snap.release()
		return nil, nil, fmt.Errorf("%w: source %d out of range [0,%d)", ErrBadRequest, req.Source, n)
	}
	return snap, r, nil
}

// predict prices one query in nanoseconds: the per-(graph, algo) EWMA of
// measured run times when queries have completed, else the calibrated
// cost model's full-sweep bound times the algorithm's sweep factor. Zero
// means unknown (untuned server, cold entry) — such queries are admitted
// unconditionally and run without a budget.
func (s *Server) predict(snap *snapshot, r *runner) float64 {
	g := snap.graph
	return s.pred.predict(g.Name, r.name, func() float64 {
		return sweepBoundNs(s.cfg.Model, g.Mat.NRows(), g.Mat.NVals()) * r.sweeps
	})
}

// budgetFor derives a query's execution budget from its admission-time
// prediction: factor×predicted, clamped to [MinBudget, MaxBudget]. Zero
// means no budget (disabled, or no prediction to scale).
func (s *Server) budgetFor(predictedNs float64) time.Duration {
	if s.cfg.BudgetFactor < 0 || predictedNs <= 0 {
		return 0
	}
	bud := time.Duration(predictedNs * s.cfg.BudgetFactor)
	if bud < s.cfg.MinBudget {
		bud = s.cfg.MinBudget
	}
	if bud > s.cfg.MaxBudget {
		bud = s.cfg.MaxBudget
	}
	return bud
}

// Do admits and runs one query, blocking until it completes, its deadline
// expires, or ctx (the client's context) is done. Admission is
// non-blocking and cost-aware: a structurally invalid query fails before
// touching the queue; a query over its client's quota sheds with
// ErrQuotaExceeded; a query whose deadline the predicted backlog already
// makes unmeetable sheds with ErrInfeasibleDeadline and an honest
// Retry-After instead of being admitted to time out in line; a full queue
// sheds with ErrQueueFull. The admitted query holds a reference on its
// graph snapshot for its whole lifetime, so a concurrent reload can never
// free the graph under it.
func (s *Server) Do(ctx context.Context, req Request) (Result, error) {
	if s.closed.Load() {
		return Result{}, ErrShuttingDown
	}
	class, ok := classIndex(req.Class)
	if !ok {
		return Result{}, fmt.Errorf("%w: unknown class %q", ErrBadRequest, req.Class)
	}
	snap, r, err := s.resolve(req)
	if err != nil {
		return Result{}, err
	}
	s.metrics.submitted.Add(1)
	if err := s.quotas.admit(req.ClientID, time.Now()); err != nil {
		snap.release()
		s.metrics.shedQuota.Add(1)
		return Result{}, err
	}
	// Past this point every exit pairs the quota admission with a release.
	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	predicted := s.predict(snap, r)
	if predicted > 0 {
		// Feasibility: the backlog this query would wait behind (per-class
		// predicted ns over the pool width) plus its own predicted run
		// time must fit its deadline, or admitting it just burns a worker
		// on a guaranteed timeout. The Retry-After hint is the predicted
		// overshoot — when the backlog should have drained enough to fit.
		drain := s.sched.drainNs(class) / float64(s.cfg.Workers)
		if need := drain + predicted; need > float64(timeout.Nanoseconds()) {
			s.quotas.release(req.ClientID)
			snap.release()
			s.metrics.shedInfeasible.Add(1)
			over := (need - float64(timeout.Nanoseconds())) / 1e9
			return Result{}, retryHint(
				fmt.Errorf("%w: predicted %.0fms backlog + %.0fms run exceeds %v deadline",
					ErrInfeasibleDeadline, drain/1e6, predicted/1e6, timeout),
				int(math.Ceil(over)))
		}
	}

	if ctx == nil {
		ctx = context.Background()
	}
	qctx, cancel := context.WithTimeout(ctx, timeout)
	deadline, _ := qctx.Deadline()

	id := s.nextID.Add(1)
	info := &QueryInfo{
		ID: id, Graph: req.Graph, Algo: r.name, Source: req.Source, Gen: snap.gen,
		Class: className(class), State: "queued", Started: time.Now(),
	}
	t := &task{
		id: id, req: req, snap: snap, r: r,
		ctx: qctx, cancel: cancel,
		done: make(chan outcome, 1),
		info: info, started: info.Started,
		class: class, deadline: deadline, predictedNs: predicted,
	}
	if err := s.sched.push(t); err != nil {
		cancel()
		s.quotas.release(req.ClientID)
		snap.release()
		if errors.Is(err, ErrQueueFull) {
			s.metrics.shedFull.Add(1)
		}
		return Result{}, err
	}
	s.trackQueued(info)
	s.metrics.noteQueueDepth(s.sched.depth())

	select {
	case out := <-t.done:
		return out.res, out.err
	case <-ctx.Done():
		// The client is gone; the worker still observes qctx and aborts
		// at the next phase boundary, delivering into the buffered done
		// channel — nothing leaks, the caller just stops waiting, and the
		// worker still releases the snapshot reference.
		return Result{ID: id}, fmt.Errorf("%w: %w", graphblas.ErrCancelled, context.Cause(ctx))
	}
}

// serveLoop is one worker goroutine: claim a task from the scheduler, run
// it under its deadline and budget, deliver the outcome, repeat until the
// scheduler closes and drains — or until the worker's fault streak trips
// the self-healing limit, at which point it retires (releasing its
// arenas) and hands its pool slot to a fresh worker.
func (s *Server) serveLoop(w *worker) {
	defer s.wg.Done()
	for {
		t, ok := s.sched.pop()
		if !ok {
			break
		}
		w.pruneStale(s.registry)
		s.runTask(w, t)
		if s.cfg.FaultStreakLimit > 0 && w.faultStreak >= s.cfg.FaultStreakLimit {
			w.releaseAll()
			s.replaceWorker(w)
			return
		}
	}
	w.releaseAll()
}

// replaceWorker retires w and spawns a fresh worker in its slot. The
// wg.Add happens before this goroutine's deferred Done, so the waitgroup
// never transiently reaches zero mid-replacement.
func (s *Server) replaceWorker(w *worker) {
	s.metrics.workerRetirements.Add(1)
	nw := s.newWorker(w.slot)
	s.wmu.Lock()
	s.workers[w.slot] = nw
	s.wmu.Unlock()
	s.wg.Add(1)
	go s.serveLoop(nw)
}

// workerIDs snapshots the pool's current worker ids by slot (test and
// debug surface; ids change when self-healing replaces a worker).
func (s *Server) workerIDs() []int {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	ids := make([]int, len(s.workers))
	for i, w := range s.workers {
		ids[i] = w.id
	}
	return ids
}

func (s *Server) runTask(w *worker, t *task) {
	defer t.snap.release()
	defer t.cancel()
	defer s.quotas.release(t.req.ClientID)
	claimed := time.Now()
	queueD := claimed.Sub(t.started)

	// A query whose context died while queued (client gone, or a deadline
	// shorter than the queue wait) is shed here: it never reaches a
	// kernel and lands in the dedicated queue-shed outcome, not the run
	// histogram — so an overloaded queue cannot skew the Retry-After
	// drain estimate with its own wait times.
	if err := graphblas.CheckContext(t.ctx); err != nil {
		s.metrics.shedInQueue.Add(1)
		s.metrics.algos[t.r.name].observeQueueShed(queueD)
		s.trackDone(t.info, queueD, 0, err)
		t.done <- outcome{err: err}
		return
	}

	s.trackRunning(t.info, w.id)
	// The execution budget starts at claim time, not admission: queue
	// wait is the scheduler's debt, not the query's. It rides the same
	// Descriptor.Context seam as the deadline, with ErrBudgetExceeded as
	// the cancellation cause so the taxonomy distinguishes "you were cut
	// off for cost" from "your deadline passed".
	runCtx := t.ctx
	if bud := s.budgetFor(t.predictedNs); bud > 0 {
		var budCancel context.CancelFunc
		runCtx, budCancel = context.WithDeadlineCause(t.ctx, claimed.Add(bud), graphblas.ErrBudgetExceeded)
		defer budCancel()
	}
	payload, err := s.invoke(w, t, runCtx)
	runD := time.Since(claimed)

	var out outcome
	out.err = err
	if err == nil || errors.Is(err, graphblas.ErrBudgetExceeded) {
		// A budget trip still ships the algorithm's coherent partial
		// progress (marked Partial) alongside the error — the caller paid
		// for the work done so far.
		out.res = Result{
			ID: t.id, Graph: t.req.Graph, Algo: t.r.name, Source: t.req.Source,
			Gen: t.snap.gen, Worker: w.id, Partial: err != nil, Payload: payload,
		}
	}
	switch {
	case out.err == nil:
		w.faultStreak = 0
		s.pred.observe(t.req.Graph, t.r.name, t.predictedNs, float64(runD.Nanoseconds()))
	case errors.Is(out.err, graphblas.ErrBudgetExceeded):
		s.metrics.budgetTrips.Add(1)
	case isKernelPanic(out.err):
		w.faultStreak++
		s.metrics.noteFaultStreak(w.faultStreak)
	}
	total := queueD + runD
	out.res.Duration = total
	out.res.DurationMS = float64(total.Nanoseconds()) / 1e6
	s.metrics.algos[t.r.name].observeRun(queueD, runD, out.err)
	s.trackDone(t.info, queueD, runD, out.err)
	t.done <- out
}

// invoke runs the registry entry with a defensive recover: kernel panics
// already surface as ErrKernelPanic from the graphblas fault boundary,
// and this backstop converts anything that escapes (a panic in registry
// or algorithm bookkeeping) into the same taxonomy instead of killing the
// worker goroutine. Either way the worker's pinned workspace for that
// graph shape is dropped — Release discards tainted arenas — so corrupted
// scratch never serves a later query. ctx is the run context: the query
// context, possibly tightened by the execution budget.
func (s *Server) invoke(w *worker, t *task, ctx context.Context) (p Payload, err error) {
	g := t.snap.graph
	defer func() {
		if r := recover(); r != nil {
			err = graphblas.NewPanicError(r)
		}
		if err != nil && isKernelPanic(err) {
			w.dropWorkspace(g.Mat.NRows(), g.Mat.NCols())
		}
	}()
	return t.r.run(ctx, g, t.req, w)
}

func (s *Server) trackQueued(info *QueryInfo) {
	s.qmu.Lock()
	s.inflight[info.ID] = info
	s.qmu.Unlock()
}

func (s *Server) trackRunning(info *QueryInfo, workerID int) {
	s.qmu.Lock()
	info.State = "running"
	info.Worker = workerID
	s.qmu.Unlock()
}

func (s *Server) trackDone(info *QueryInfo, queueD, runD time.Duration, err error) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	delete(s.inflight, info.ID)
	info.State = "done"
	info.QueueMS = float64(queueD.Nanoseconds()) / 1e6
	info.RunMS = float64(runD.Nanoseconds()) / 1e6
	info.DurationMS = info.QueueMS + info.RunMS
	if err != nil {
		info.Status = PublicErrorMessage(err)
	} else {
		info.Status = "ok"
	}
	s.recent = append(s.recent, info)
	if over := len(s.recent) - s.cfg.RecentQueries; over > 0 {
		s.recent = append(s.recent[:0], s.recent[over:]...)
	}
}

// Queries snapshots the live and recently completed queries for
// /debug/queries: in-flight first (queued and running), then the
// completed ring, newest last.
func (s *Server) Queries() []QueryInfo {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	out := make([]QueryInfo, 0, len(s.inflight)+len(s.recent))
	for _, info := range s.inflight {
		out = append(out, *info)
	}
	for _, info := range s.recent {
		out = append(out, *info)
	}
	return out
}

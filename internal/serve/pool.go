package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pushpull/graphblas"
	"pushpull/internal/core"
)

// Config sizes a Server.
type Config struct {
	// Workers is the fixed worker-goroutine count (default GOMAXPROCS).
	// Each worker owns its pinned workspaces; queries on one worker run
	// serially, concurrency comes from the pool width.
	Workers int
	// QueueDepth bounds the admission queue (default 4×Workers). A full
	// queue rejects with ErrQueueFull instead of building unbounded
	// latency.
	QueueDepth int
	// DefaultTimeout is the per-query deadline when the request does not
	// set one (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied deadlines (default 5m).
	MaxTimeout time.Duration
	// Model, when non-nil, is the calibrated cost model every query's
	// planner prices with (loaded from the host-keyed PPTUNE profile, or
	// fitted at startup). Shared read-only across workers — correctors,
	// which are mutable, stay per-query.
	Model *core.CostModel
	// RecentQueries sizes the /debug/queries completed-query ring
	// (default 32).
	RecentQueries int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.RecentQueries <= 0 {
		c.RecentQueries = 32
	}
	return c
}

// task is one admitted query traveling from Do to a worker.
type task struct {
	id      uint64
	req     Request
	g       *Graph
	r       *runner
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan outcome // buffered(1): the worker never blocks on delivery
	info    *QueryInfo
	started time.Time
}

type outcome struct {
	res Result
	err error
}

// QueryInfo is one query's lifecycle record for /debug/queries. Fields
// are written by the owning worker and read racily-but-safely via the
// server's query mutex.
type QueryInfo struct {
	ID      uint64    `json:"id"`
	Graph   string    `json:"graph"`
	Algo    string    `json:"algo"`
	Source  int       `json:"source"`
	State   string    `json:"state"` // queued | running | done
	Status  string    `json:"status,omitempty"`
	Worker  int       `json:"worker,omitempty"`
	Started time.Time `json:"started"`
	// DurationMS is the total queue+run wall clock once done.
	DurationMS float64 `json:"duration_ms,omitempty"`
}

// worker is one pool goroutine's private state: the pinned workspaces
// (one per graph shape, reused query over query — the zero-alloc kernel
// path), the shared read-only cost model, and the shared metrics sinks.
type worker struct {
	id      int
	pinned  map[[2]int]*graphblas.Workspace
	model   *core.CostModel
	planner *PlannerMetrics
}

// workspace returns the worker's pinned arena for a graph shape, acquiring
// one on first use. Exclusively owned: only this worker's current query
// touches it.
func (w *worker) workspace(rows, cols int) *graphblas.Workspace {
	key := [2]int{rows, cols}
	ws := w.pinned[key]
	if ws == nil {
		ws = graphblas.AcquireWorkspace(rows, cols)
		w.pinned[key] = ws
	}
	return ws
}

// dropWorkspace releases the pinned arena for a shape after a kernel
// fault: Release discards a tainted workspace instead of pooling it, and
// the next query on this shape re-acquires fresh scratch.
func (w *worker) dropWorkspace(rows, cols int) {
	key := [2]int{rows, cols}
	if ws := w.pinned[key]; ws != nil {
		ws.Release()
		delete(w.pinned, key)
	}
}

// releaseAll returns every pinned workspace to the pool on shutdown.
func (w *worker) releaseAll() {
	for key, ws := range w.pinned {
		ws.Release()
		delete(w.pinned, key)
	}
}

// Server is the query service: loaded graphs, the admission queue, and
// the worker pool.
type Server struct {
	cfg     Config
	graphs  map[string]*Graph // immutable after New
	queue   chan *task
	workers []*worker
	wg      sync.WaitGroup
	metrics *Metrics
	nextID  atomic.Uint64
	closed  atomic.Bool

	qmu      sync.Mutex
	inflight map[uint64]*QueryInfo
	recent   []*QueryInfo // ring, newest at len-1
}

// New builds a Server over the given graphs and starts its workers.
func New(cfg Config, graphs ...*Graph) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(graphs) == 0 {
		return nil, fmt.Errorf("%w: no graphs", ErrBadRequest)
	}
	s := &Server{
		cfg:      cfg,
		graphs:   make(map[string]*Graph, len(graphs)),
		queue:    make(chan *task, cfg.QueueDepth),
		metrics:  newMetrics(AlgorithmNames()),
		inflight: make(map[uint64]*QueryInfo),
	}
	for _, g := range graphs {
		if g == nil || g.Mat == nil || g.Name == "" {
			return nil, fmt.Errorf("%w: nil or unnamed graph", ErrBadRequest)
		}
		if _, dup := s.graphs[g.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate graph %q", ErrBadRequest, g.Name)
		}
		s.graphs[g.Name] = g
	}
	s.metrics.queueLen = func() int { return len(s.queue) }
	s.workers = make([]*worker, cfg.Workers)
	for i := range s.workers {
		w := &worker{
			id:      i,
			pinned:  make(map[[2]int]*graphblas.Workspace),
			model:   cfg.Model,
			planner: &s.metrics.planner,
		}
		s.workers[i] = w
		s.wg.Add(1)
		go s.serveLoop(w)
	}
	return s, nil
}

// Metrics exposes the live counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Graph returns a loaded graph by name.
func (s *Server) Graph(name string) (*Graph, bool) {
	g, ok := s.graphs[name]
	return g, ok
}

// GraphNames lists the loaded graphs.
func (s *Server) GraphNames() []string {
	names := make([]string, 0, len(s.graphs))
	for name := range s.graphs {
		names = append(names, name)
	}
	return names
}

// Close stops admission, drains the queue, and waits for in-flight
// queries to finish (each still bounded by its own deadline).
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	close(s.queue)
	s.wg.Wait()
}

// validate resolves the request against the graph set and registry,
// fast-failing before admission so malformed queries never consume a
// queue slot.
func (s *Server) validate(req Request) (*Graph, *runner, error) {
	g, ok := s.graphs[req.Graph]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownGraph, req.Graph)
	}
	r, ok := registry[req.Algo]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, req.Algo)
	}
	if r.needsSource && (req.Source < 0 || req.Source >= g.Mat.NRows()) {
		return nil, nil, fmt.Errorf("%w: source %d out of range [0,%d)", ErrBadRequest, req.Source, g.Mat.NRows())
	}
	if req.Timeout < 0 {
		return nil, nil, fmt.Errorf("%w: negative timeout", ErrBadRequest)
	}
	return g, r, nil
}

// Do admits and runs one query, blocking until it completes, its deadline
// expires, or ctx (the client's context) is done. Admission is
// non-blocking: a full queue returns ErrQueueFull immediately.
func (s *Server) Do(ctx context.Context, req Request) (Result, error) {
	if s.closed.Load() {
		return Result{}, ErrShuttingDown
	}
	g, r, err := s.validate(req)
	if err != nil {
		return Result{}, err
	}
	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	if ctx == nil {
		ctx = context.Background()
	}
	qctx, cancel := context.WithTimeout(ctx, timeout)

	id := s.nextID.Add(1)
	info := &QueryInfo{
		ID: id, Graph: req.Graph, Algo: r.name, Source: req.Source,
		State: "queued", Started: time.Now(),
	}
	t := &task{
		id: id, req: req, g: g, r: r,
		ctx: qctx, cancel: cancel,
		done: make(chan outcome, 1),
		info: info, started: info.Started,
	}
	s.metrics.submitted.Add(1)
	select {
	case s.queue <- t:
	default:
		cancel()
		s.metrics.rejected.Add(1)
		return Result{}, ErrQueueFull
	}
	s.trackQueued(info)
	s.metrics.noteQueueDepth(len(s.queue))

	select {
	case out := <-t.done:
		return out.res, out.err
	case <-ctx.Done():
		// The client is gone; the worker still observes qctx and aborts
		// at the next phase boundary, delivering into the buffered done
		// channel — nothing leaks, the caller just stops waiting.
		return Result{ID: id}, fmt.Errorf("%w: %w", graphblas.ErrCancelled, context.Cause(ctx))
	}
}

// serveLoop is one worker goroutine: take a task, run it under its
// deadline, deliver the outcome, repeat until the queue closes.
func (s *Server) serveLoop(w *worker) {
	defer s.wg.Done()
	defer w.releaseAll()
	for t := range s.queue {
		s.runTask(w, t)
	}
}

func (s *Server) runTask(w *worker, t *task) {
	defer t.cancel()
	var out outcome
	// A query whose context died while queued (client gone, or a
	// deadline shorter than the queue wait) is cheap to shed here.
	if err := graphblas.CheckContext(t.ctx); err != nil {
		out.err = err
	} else {
		s.trackRunning(t.info, w.id)
		payload, err := s.invoke(w, t)
		if err != nil {
			out.err = err
		} else {
			out.res = Result{
				ID: t.id, Graph: t.req.Graph, Algo: t.r.name, Source: t.req.Source,
				Worker: w.id, Payload: payload,
			}
		}
	}
	d := time.Since(t.started)
	out.res.Duration = d
	out.res.DurationMS = float64(d.Nanoseconds()) / 1e6
	s.metrics.algos[t.r.name].observe(d, out.err)
	s.trackDone(t.info, d, out.err)
	t.done <- out
}

// invoke runs the registry entry with a defensive recover: kernel panics
// already surface as ErrKernelPanic from the graphblas fault boundary,
// and this backstop converts anything that escapes (a panic in registry
// or algorithm bookkeeping) into the same taxonomy instead of killing the
// worker goroutine. Either way the worker's pinned workspace for that
// graph shape is dropped — Release discards tainted arenas — so corrupted
// scratch never serves a later query.
func (s *Server) invoke(w *worker, t *task) (p Payload, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = graphblas.NewPanicError(r)
		}
		if err != nil && isKernelPanic(err) {
			w.dropWorkspace(t.g.Mat.NRows(), t.g.Mat.NCols())
		}
	}()
	return t.r.run(t.ctx, t.g, t.req, w)
}

func (s *Server) trackQueued(info *QueryInfo) {
	s.qmu.Lock()
	s.inflight[info.ID] = info
	s.qmu.Unlock()
}

func (s *Server) trackRunning(info *QueryInfo, workerID int) {
	s.qmu.Lock()
	info.State = "running"
	info.Worker = workerID
	s.qmu.Unlock()
}

func (s *Server) trackDone(info *QueryInfo, d time.Duration, err error) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	delete(s.inflight, info.ID)
	info.State = "done"
	info.DurationMS = float64(d.Nanoseconds()) / 1e6
	if err != nil {
		info.Status = PublicErrorMessage(err)
	} else {
		info.Status = "ok"
	}
	s.recent = append(s.recent, info)
	if over := len(s.recent) - s.cfg.RecentQueries; over > 0 {
		s.recent = append(s.recent[:0], s.recent[over:]...)
	}
}

// Queries snapshots the live and recently completed queries for
// /debug/queries: in-flight first (queued and running), then the
// completed ring, newest last.
func (s *Server) Queries() []QueryInfo {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	out := make([]QueryInfo, 0, len(s.inflight)+len(s.recent))
	for _, info := range s.inflight {
		out = append(out, *info)
	}
	for _, info := range s.recent {
		out = append(out, *info)
	}
	return out
}

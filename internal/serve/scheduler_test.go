package serve

import (
	"errors"
	"testing"
	"time"
)

// mkTask builds the minimal task the scheduler cares about: class,
// deadline, and predicted cost.
func mkTask(class int, deadline time.Time, predictedNs float64) *task {
	return &task{class: class, deadline: deadline, predictedNs: predictedNs}
}

// TestSchedulerEDFWithinClass is the EDF ordering property: however the
// deadlines arrive, each class drains in nondecreasing deadline order,
// ties broken by admission order.
func TestSchedulerEDFWithinClass(t *testing.T) {
	s := newScheduler(256, time.Hour)
	base := time.Now()
	// A deterministic scramble: deadlines visit offsets in multiplicative
	// order (37 is coprime to 101, so all residues appear).
	var pushed []*task
	for i := 0; i < 101; i++ {
		off := (i * 37) % 101
		class := classInteractive
		if i%3 == 0 {
			class = classBatch
		}
		tk := mkTask(class, base.Add(time.Duration(off)*time.Millisecond), 0)
		if err := s.push(tk); err != nil {
			t.Fatal(err)
		}
		pushed = append(pushed, tk)
	}
	// Duplicate-deadline pair: the earlier admission must drain first.
	dupA := mkTask(classInteractive, base, 0)
	dupB := mkTask(classInteractive, base, 0)
	if err := s.push(dupA); err != nil {
		t.Fatal(err)
	}
	if err := s.push(dupB); err != nil {
		t.Fatal(err)
	}
	s.close()

	var last [numClasses]*task
	var count int
	var sawDupA bool
	for {
		tk, ok := s.pop()
		if !ok {
			break
		}
		count++
		if prev := last[tk.class]; prev != nil {
			if tk.deadline.Before(prev.deadline) {
				t.Fatalf("class %d: deadline %v claimed after %v", tk.class, tk.deadline, prev.deadline)
			}
			if tk.deadline.Equal(prev.deadline) && tk.seq < prev.seq {
				t.Fatalf("class %d: tie broken against admission order (seq %d after %d)", tk.class, tk.seq, prev.seq)
			}
		}
		last[tk.class] = tk
		if tk == dupA {
			sawDupA = true
		}
		if tk == dupB && !sawDupA {
			t.Fatal("duplicate deadline: later admission claimed first")
		}
	}
	if want := len(pushed) + 2; count != want {
		t.Fatalf("drained %d tasks, pushed %d", count, want)
	}
}

// TestSchedulerClassPriority: with an effectively infinite aging bound,
// every interactive task is claimed before any batch task.
func TestSchedulerClassPriority(t *testing.T) {
	s := newScheduler(64, time.Hour)
	base := time.Now()
	// Batch tasks carry the earliest deadlines — class priority must still
	// trump EDF across classes.
	for i := 0; i < 10; i++ {
		if err := s.push(mkTask(classBatch, base.Add(time.Duration(i)*time.Millisecond), 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := s.push(mkTask(classInteractive, base.Add(time.Hour+time.Duration(i)*time.Millisecond), 0)); err != nil {
			t.Fatal(err)
		}
	}
	s.close()
	for i := 0; i < 20; i++ {
		tk, ok := s.pop()
		if !ok {
			t.Fatalf("pop %d: drained early", i)
		}
		wantClass := classInteractive
		if i >= 10 {
			wantClass = classBatch
		}
		if tk.class != wantClass {
			t.Fatalf("pop %d: class %d, want %d", i, tk.class, wantClass)
		}
	}
}

// TestSchedulerAgingBound is the anti-starvation property: with a tiny
// aging bound, batch work is claimed even while interactive work keeps
// waiting, and the claim is counted as aged.
func TestSchedulerAgingBound(t *testing.T) {
	s := newScheduler(64, time.Nanosecond)
	base := time.Now()
	if err := s.push(mkTask(classInteractive, base, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.push(mkTask(classBatch, base.Add(time.Hour), 0)); err != nil {
		t.Fatal(err)
	}
	// Well past the 1ns bound since construction: the batch task must jump
	// the waiting interactive one.
	time.Sleep(time.Millisecond)
	s.close()
	tk, ok := s.pop()
	if !ok || tk.class != classBatch {
		t.Fatalf("first claim class %d (ok=%v), want batch via aging", tk.class, ok)
	}
	if _, _, aged := s.classDepths(); aged != 1 {
		t.Fatalf("agedClaims = %d, want 1", aged)
	}
	if tk, ok = s.pop(); !ok || tk.class != classInteractive {
		t.Fatalf("second claim class %d (ok=%v), want interactive", tk.class, ok)
	}
}

// TestSchedulerCapacityAndClose pins the admission failure modes: a full
// queue sheds with ErrQueueFull, a closed one with ErrShuttingDown, and
// close drains already-admitted work before pop reports empty.
func TestSchedulerCapacityAndClose(t *testing.T) {
	s := newScheduler(2, time.Hour)
	base := time.Now()
	for i := 0; i < 2; i++ {
		if err := s.push(mkTask(classInteractive, base, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.push(mkTask(classBatch, base, 0)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push over capacity: %v, want ErrQueueFull", err)
	}
	s.close()
	if err := s.push(mkTask(classInteractive, base, 0)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("push after close: %v, want ErrShuttingDown", err)
	}
	for i := 0; i < 2; i++ {
		if _, ok := s.pop(); !ok {
			t.Fatalf("pop %d: drained early", i)
		}
	}
	if _, ok := s.pop(); ok {
		t.Fatal("pop after drain: got a task, want closed")
	}
}

// TestSchedulerDrainNs pins the feasibility backlog semantics: the
// interactive estimate sees only interactive work (it jumps batch), batch
// sees everything, and claims return their prediction to the pool.
func TestSchedulerDrainNs(t *testing.T) {
	s := newScheduler(16, time.Hour)
	base := time.Now()
	if err := s.push(mkTask(classInteractive, base, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.push(mkTask(classInteractive, base.Add(time.Second), 200)); err != nil {
		t.Fatal(err)
	}
	if err := s.push(mkTask(classBatch, base, 1000)); err != nil {
		t.Fatal(err)
	}
	if got := s.drainNs(classInteractive); got != 300 {
		t.Errorf("interactive drain = %v, want 300 (batch backlog excluded)", got)
	}
	if got := s.drainNs(classBatch); got != 1300 {
		t.Errorf("batch drain = %v, want 1300 (everything)", got)
	}
	s.close()
	if tk, ok := s.pop(); !ok || tk.predictedNs != 100 {
		t.Fatalf("first claim predictedNs %v (ok=%v), want the EDF-min interactive task", tk.predictedNs, ok)
	}
	if got := s.drainNs(classInteractive); got != 200 {
		t.Errorf("interactive drain after claim = %v, want 200", got)
	}
}

// TestClassIndex pins the request-field mapping: empty defaults to
// interactive, the two named classes resolve, anything else is invalid.
func TestClassIndex(t *testing.T) {
	cases := []struct {
		in    string
		class int
		ok    bool
	}{
		{"", classInteractive, true},
		{ClassInteractive, classInteractive, true},
		{ClassBatch, classBatch, true},
		{"bulk", 0, false},
		{"Interactive", 0, false},
	}
	for _, c := range cases {
		class, ok := classIndex(c.in)
		if class != c.class || ok != c.ok {
			t.Errorf("classIndex(%q) = (%d, %v), want (%d, %v)", c.in, class, ok, c.class, c.ok)
		}
	}
}

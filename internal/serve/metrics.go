package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"pushpull/graphblas"
	"pushpull/internal/par"
)

// latBuckets is the number of power-of-two latency histogram buckets:
// bucket b counts queries whose latency is < 2^b microseconds (the last
// bucket absorbs everything slower — 2^23 µs ≈ 8.4 s).
const latBuckets = 24

// latHist is one power-of-two latency histogram.
type latHist struct {
	buckets [latBuckets]atomic.Uint64
	totalNs atomic.Uint64
}

func (h *latHist) observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.totalNs.Add(uint64(ns))
	b := 0
	for us := ns / 1e3; us > 0 && b < latBuckets-1; us >>= 1 {
		b++
	}
	h.buckets[b].Add(1)
}

// read copies the buckets out, returning the population and total ns.
func (h *latHist) read(out *[]uint64) (total, totalNs uint64) {
	*out = make([]uint64, latBuckets)
	for b := range h.buckets {
		(*out)[b] = h.buckets[b].Load()
		total += (*out)[b]
	}
	return total, h.totalNs.Load()
}

// algoMetrics is one algorithm's outcome counters and latency histograms.
// Queue wait and run time are recorded separately: the run histogram is
// what Retry-After's p50 drain estimate reads, and queries shed while
// queued (context dead at claim time) land in the dedicated queueShed
// outcome without ever touching the run histogram — an overloaded queue
// must not teach the drain estimator that queries "run" for exactly one
// queue wait. All fields are atomics: workers record concurrently,
// Snapshot reads without stopping the world.
type algoMetrics struct {
	ok        atomic.Uint64
	errs      atomic.Uint64 // failures outside the taxonomy below
	cancelled atomic.Uint64 // client gone mid-run (ErrCancelled, not deadline)
	deadline  atomic.Uint64 // per-query deadline expired mid-run
	budget    atomic.Uint64 // execution budget tripped mid-run
	panics    atomic.Uint64 // kernel faults (ErrKernelPanic)
	queueShed atomic.Uint64 // context dead at claim time; never ran
	run       latHist       // run time of queries that reached a kernel
	queueWait latHist       // admission-to-claim wait of those same queries
}

// observeRun records a query that actually ran: its queue wait, its run
// time, and its outcome.
func (m *algoMetrics) observeRun(queueD, runD time.Duration, err error) {
	switch {
	case err == nil:
		m.ok.Add(1)
	case errors.Is(err, graphblas.ErrKernelPanic):
		m.panics.Add(1)
	case errors.Is(err, graphblas.ErrBudgetExceeded):
		m.budget.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		m.deadline.Add(1)
	case errors.Is(err, graphblas.ErrCancelled):
		m.cancelled.Add(1)
	default:
		m.errs.Add(1)
	}
	m.queueWait.observe(queueD)
	m.run.observe(runD)
}

// observeQueueShed records a query claimed with a dead context: it waited
// queueD and then never ran. Kept out of the run histogram by design.
func (m *algoMetrics) observeQueueShed(queueD time.Duration) {
	m.queueShed.Add(1)
	m.queueWait.observe(queueD)
}

// PlannerMetrics aggregates the direction planner's decision-quality
// evidence across every traced traversal the pool serves: the push/pull
// iteration mix, how often a traversal flips direction, and — on
// calibrated runs — the predicted-vs-measured nanosecond sums whose ratio
// is the live prediction error.
type PlannerMetrics struct {
	pushIters atomic.Uint64
	pullIters atomic.Uint64
	flips     atomic.Uint64
	// measuredNs sums every traced iteration's kernel time; pricedNs
	// pairs sum only iterations the calibrated model priced
	// (PredictedNs > 0), so predicted/measured compares like with like.
	measuredNs        atomic.Uint64
	pricedIters       atomic.Uint64
	pricedPredictedNs atomic.Uint64
	pricedMeasuredNs  atomic.Uint64
}

// observe folds one traversal iteration's trace record in. prevDir/first
// are the caller's per-traversal flip-detection state.
func (p *PlannerMetrics) observe(dir graphblas.TraversalDirection, predictedNs, measuredNs float64, flipped bool) {
	if dir == graphblas.PullDirection {
		p.pullIters.Add(1)
	} else {
		p.pushIters.Add(1)
	}
	if flipped {
		p.flips.Add(1)
	}
	if measuredNs > 0 {
		p.measuredNs.Add(uint64(measuredNs))
	}
	if predictedNs > 0 {
		p.pricedIters.Add(1)
		p.pricedPredictedNs.Add(uint64(predictedNs))
		if measuredNs > 0 {
			p.pricedMeasuredNs.Add(uint64(measuredNs))
		}
	}
}

// Metrics is the server's live counter set. One instance per Server;
// everything is lock-free on the record path.
type Metrics struct {
	algos     map[string]*algoMetrics // fixed key set after newMetrics
	submitted atomic.Uint64
	queueHigh atomic.Int64
	planner   PlannerMetrics
	queueLen  func() int // bound to the scheduler by New
	// classLens reads the scheduler's per-class depths and aged-claim
	// count (nil-safe for bare Metrics tests).
	classLens func() (interactive, batch int, aged uint64)
	// predictions reads the whole-query predictor's entries for Snapshot.
	predictions func() map[string]PredictionSnapshot
	// graphInfos reads the registry's per-graph lifecycle surface for
	// Snapshot (bound by the Server; nil-safe for bare Metrics tests).
	graphInfos func() (degraded bool, infos []GraphInfo)

	// Admission shed taxonomy. shedFull is the classic bounded-queue
	// rejection; shedInfeasible the deadline-feasibility fast-fail;
	// shedQuota the per-client quota rejection; shedInQueue counts
	// admitted queries whose context died before a worker claimed them.
	shedFull       atomic.Uint64
	shedInfeasible atomic.Uint64
	shedQuota      atomic.Uint64
	shedInQueue    atomic.Uint64
	// budgetTrips counts queries cancelled by their execution budget.
	budgetTrips atomic.Uint64

	// Lifecycle counters: snapshot refcount transitions, reload outcomes,
	// and worker self-healing.
	snapshotsInstalled atomic.Uint64 // snapshots that passed validation and swapped in
	snapshotsRetired   atomic.Uint64 // snapshots replaced or closed out
	snapshotsReleased  atomic.Uint64 // retired snapshots whose last reference dropped
	reloads            atomic.Uint64 // per-graph reload attempts that succeeded
	reloadFailures     atomic.Uint64 // per-graph reload attempts that rolled back
	workerRetirements  atomic.Uint64 // workers retired by the fault-streak limit
	faultStreakHigh    atomic.Int64  // deepest consecutive-fault streak seen
}

func (m *Metrics) noteFaultStreak(streak int) {
	for {
		cur := m.faultStreakHigh.Load()
		if int64(streak) <= cur || m.faultStreakHigh.CompareAndSwap(cur, int64(streak)) {
			return
		}
	}
}

// minRetryAfterSeconds floors the 429 backoff hint: even an empty
// histogram tells a shed client to wait at least this long.
const minRetryAfterSeconds = 1

// maxRetryAfterSeconds caps the hint so one pathological traversal cannot
// tell clients to go away for minutes.
const maxRetryAfterSeconds = 60

// retryAfterSeconds derives the 429 Retry-After hint from live state: the
// queue's estimated drain time, i.e. queued queries × the algorithm's
// recent p50 run latency ÷ pool width, rounded up to whole seconds and
// clamped to [minRetryAfterSeconds, maxRetryAfterSeconds]. The p50 comes
// off the power-of-two run-latency histogram (bucket b counts queries
// under 2^b µs, so the estimate is the upper edge of the median bucket);
// queue-shed queries never enter it, so an overloaded queue cannot skew
// the drain estimate toward its own wait times. With no completed queries
// yet the floor stands in.
func (m *Metrics) retryAfterSeconds(algo string, queueDepth, workers int) int {
	a := m.algos[algo]
	if a == nil {
		return minRetryAfterSeconds
	}
	var counts []uint64
	total, _ := a.run.read(&counts)
	if total == 0 {
		return minRetryAfterSeconds
	}
	half := (total + 1) / 2
	var cum uint64
	p50us := uint64(1) << (latBuckets - 1)
	for b := range counts {
		cum += counts[b]
		if cum >= half {
			p50us = uint64(1) << b
			break
		}
	}
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	drainUs := (uint64(queueDepth) + 1) * p50us / uint64(workers)
	secs := int((drainUs + 999_999) / 1_000_000)
	if secs < minRetryAfterSeconds {
		secs = minRetryAfterSeconds
	}
	if secs > maxRetryAfterSeconds {
		secs = maxRetryAfterSeconds
	}
	return secs
}

func newMetrics(algos []string) *Metrics {
	m := &Metrics{algos: make(map[string]*algoMetrics, len(algos))}
	for _, a := range algos {
		m.algos[a] = &algoMetrics{}
	}
	m.queueLen = func() int { return 0 }
	return m
}

func (m *Metrics) noteQueueDepth(depth int) {
	for {
		cur := m.queueHigh.Load()
		if int64(depth) <= cur || m.queueHigh.CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

// AlgoSnapshot is one algorithm's counters at Snapshot time.
type AlgoSnapshot struct {
	OK        uint64 `json:"ok"`
	Errors    uint64 `json:"errors"`
	Cancelled uint64 `json:"cancelled"`
	Deadline  uint64 `json:"deadline"`
	// Budget counts queries cancelled mid-run by their execution budget.
	Budget uint64 `json:"budget"`
	Panics uint64 `json:"panics"`
	// QueueShed counts admitted queries whose context died while queued —
	// claimed and shed without running. They appear in the queue-wait
	// histogram but never in the run histogram.
	QueueShed uint64 `json:"queue_shed"`
	// MeanMS is the mean run latency (kernel time, not queue wait) of
	// queries that actually ran, in milliseconds.
	MeanMS float64 `json:"mean_ms"`
	// MeanQueueMS is the mean admission-to-claim wait in milliseconds.
	MeanQueueMS float64 `json:"mean_queue_ms"`
	// LatencyBuckets[b] counts ran queries with run latency < 2^b
	// microseconds; the last bucket absorbs the overflow.
	LatencyBuckets []uint64 `json:"latency_buckets_us_pow2"`
	// QueueWaitBuckets is the same power-of-two histogram over queue wait
	// (ran + queue-shed queries) — the evidence the drain-time estimator
	// is validated against.
	QueueWaitBuckets []uint64 `json:"queue_wait_buckets_us_pow2"`
}

// PlannerSnapshot is the decision-quality section of /metrics.
type PlannerSnapshot struct {
	PushIters uint64 `json:"push_iters"`
	PullIters uint64 `json:"pull_iters"`
	Flips     uint64 `json:"flips"`
	// FlipRate is flips per traced iteration.
	FlipRate   float64 `json:"flip_rate"`
	MeasuredNs uint64  `json:"measured_ns"`
	// Priced* cover only iterations the calibrated cost model priced;
	// PredictionRatio = measured/predicted over those (1.0 = perfectly
	// fitted profile, 0 when the pool runs untuned).
	PricedIters       uint64  `json:"priced_iters"`
	PricedPredictedNs uint64  `json:"priced_predicted_ns"`
	PricedMeasuredNs  uint64  `json:"priced_measured_ns"`
	PredictionRatio   float64 `json:"prediction_ratio"`
}

// AdmissionSnapshot is the overload-robustness section of /metrics: the
// shed taxonomy, the per-class queue state, and budget enforcement.
type AdmissionSnapshot struct {
	// ShedFull counts bounded-queue rejections (the queue had no slot).
	ShedFull uint64 `json:"shed_full"`
	// ShedInfeasible counts deadline-feasibility rejections: predicted
	// queue drain plus the query's own predicted run time exceeded its
	// deadline, so it was fast-failed instead of admitted to time out.
	ShedInfeasible uint64 `json:"shed_infeasible"`
	// ShedQuota counts per-client quota rejections.
	ShedQuota uint64 `json:"shed_quota"`
	// ShedInQueue counts admitted queries whose context died while queued
	// (client gone, or a deadline shorter than the queue wait) — shed at
	// claim time without burning a kernel.
	ShedInQueue uint64 `json:"shed_in_queue"`
	// BudgetTrips counts queries cancelled mid-run by their execution
	// budget.
	BudgetTrips uint64 `json:"budget_trips"`
	// QueueInteractive/QueueBatch are the per-class queue populations
	// right now; AgedBatchClaims counts batch tasks claimed through the
	// anti-starvation aging bound while interactive work was waiting.
	QueueInteractive int    `json:"queue_interactive"`
	QueueBatch       int    `json:"queue_batch"`
	AgedBatchClaims  uint64 `json:"aged_batch_claims"`
}

// LifecycleSnapshot is the graph-lifecycle section of /metrics: snapshot
// refcount transitions, reload outcomes (including each graph's
// structured rollback reason), and worker self-healing counters.
type LifecycleSnapshot struct {
	// Degraded is true while any registered graph has no serving snapshot.
	Degraded bool `json:"degraded"`
	// SnapshotsInstalled/Retired/Released trace the refcount lifecycle: a
	// healthy idle server has Installed = Retired + live graphs and
	// Retired = Released (every retired snapshot drained and freed).
	SnapshotsInstalled uint64 `json:"snapshots_installed"`
	SnapshotsRetired   uint64 `json:"snapshots_retired"`
	SnapshotsReleased  uint64 `json:"snapshots_released"`
	// Reloads/ReloadFailures count per-graph reload attempts; each
	// failure's reason is on the graph's entry below.
	Reloads        uint64 `json:"reloads"`
	ReloadFailures uint64 `json:"reload_failures"`
	// WorkerRetirements counts workers replaced by the fault-streak
	// limit; FaultStreakHighWater is the deepest consecutive-fault streak
	// any worker reached.
	WorkerRetirements    uint64 `json:"worker_retirements"`
	FaultStreakHighWater int64  `json:"fault_streak_high_water"`
	// Graphs is each registered graph's lifecycle surface (status,
	// serving generation, last load/validate error).
	Graphs []GraphInfo `json:"graphs"`
}

// MetricsSnapshot is the JSON document /metrics serves.
type MetricsSnapshot struct {
	Submitted uint64 `json:"submitted"`
	// Rejected is the total shed count across every admission-time shed
	// path (full + infeasible + quota); the Admission section splits it.
	Rejected uint64 `json:"rejected"`
	// QueueDepth is the admission queue's population right now;
	// QueueHighWater the deepest it has been.
	QueueDepth     int   `json:"queue_depth"`
	QueueHighWater int64 `json:"queue_high_water"`
	// ParkedWorkers is the parallel runtime's persistent worker count —
	// stable across a healthy run (the no-goroutine-leak invariant).
	ParkedWorkers int                     `json:"parked_workers"`
	Algorithms    map[string]AlgoSnapshot `json:"algorithms"`
	Admission     AdmissionSnapshot       `json:"admission"`
	// Predictions is the whole-query cost predictor, keyed "graph/algo":
	// the cost-model seed, the measured-runtime EWMA, and the
	// predicted-vs-measured accuracy ratio.
	Predictions map[string]PredictionSnapshot `json:"predictions,omitempty"`
	Planner     PlannerSnapshot               `json:"planner"`
	Lifecycle   LifecycleSnapshot             `json:"lifecycle"`
}

// Snapshot captures the counters for /metrics. Safe to call concurrently
// with serving; individual counters are read atomically (the set is not a
// consistent cut, which monitoring does not need).
func (m *Metrics) Snapshot() MetricsSnapshot {
	adm := AdmissionSnapshot{
		ShedFull:       m.shedFull.Load(),
		ShedInfeasible: m.shedInfeasible.Load(),
		ShedQuota:      m.shedQuota.Load(),
		ShedInQueue:    m.shedInQueue.Load(),
		BudgetTrips:    m.budgetTrips.Load(),
	}
	if m.classLens != nil {
		adm.QueueInteractive, adm.QueueBatch, adm.AgedBatchClaims = m.classLens()
	}
	s := MetricsSnapshot{
		Submitted:      m.submitted.Load(),
		Rejected:       adm.ShedFull + adm.ShedInfeasible + adm.ShedQuota,
		QueueDepth:     m.queueLen(),
		QueueHighWater: m.queueHigh.Load(),
		ParkedWorkers:  par.ParkedWorkers(),
		Algorithms:     make(map[string]AlgoSnapshot, len(m.algos)),
		Admission:      adm,
	}
	if m.predictions != nil {
		s.Predictions = m.predictions()
	}
	for name, a := range m.algos {
		as := AlgoSnapshot{
			OK:        a.ok.Load(),
			Errors:    a.errs.Load(),
			Cancelled: a.cancelled.Load(),
			Deadline:  a.deadline.Load(),
			Budget:    a.budget.Load(),
			Panics:    a.panics.Load(),
			QueueShed: a.queueShed.Load(),
		}
		ran, runNs := a.run.read(&as.LatencyBuckets)
		waited, waitNs := a.queueWait.read(&as.QueueWaitBuckets)
		if ran > 0 {
			as.MeanMS = float64(runNs) / float64(ran) / 1e6
		}
		if waited > 0 {
			as.MeanQueueMS = float64(waitNs) / float64(waited) / 1e6
		}
		s.Algorithms[name] = as
	}
	p := &m.planner
	ps := PlannerSnapshot{
		PushIters:         p.pushIters.Load(),
		PullIters:         p.pullIters.Load(),
		Flips:             p.flips.Load(),
		MeasuredNs:        p.measuredNs.Load(),
		PricedIters:       p.pricedIters.Load(),
		PricedPredictedNs: p.pricedPredictedNs.Load(),
		PricedMeasuredNs:  p.pricedMeasuredNs.Load(),
	}
	if iters := ps.PushIters + ps.PullIters; iters > 0 {
		ps.FlipRate = float64(ps.Flips) / float64(iters)
	}
	if ps.PricedPredictedNs > 0 {
		ps.PredictionRatio = float64(ps.PricedMeasuredNs) / float64(ps.PricedPredictedNs)
	}
	s.Planner = ps
	ls := LifecycleSnapshot{
		SnapshotsInstalled:   m.snapshotsInstalled.Load(),
		SnapshotsRetired:     m.snapshotsRetired.Load(),
		SnapshotsReleased:    m.snapshotsReleased.Load(),
		Reloads:              m.reloads.Load(),
		ReloadFailures:       m.reloadFailures.Load(),
		WorkerRetirements:    m.workerRetirements.Load(),
		FaultStreakHighWater: m.faultStreakHigh.Load(),
	}
	if m.graphInfos != nil {
		ls.Degraded, ls.Graphs = m.graphInfos()
	}
	s.Lifecycle = ls
	return s
}

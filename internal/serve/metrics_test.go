package serve

import (
	"testing"
	"time"
)

// fillBucket plants n completed queries into the algorithm's run-latency
// histogram at bucket b (latency < 2^b µs) without running anything. The
// run histogram — not the queue-wait one — is what retryAfterSeconds
// reads.
func fillBucket(m *Metrics, algo string, b int, n uint64) {
	m.algos[algo].run.buckets[b].Store(n)
}

// TestRetryAfterSeconds pins the 429 backoff derivation: drain time =
// (queueDepth+1) × p50 ÷ workers, with the p50 read off the power-of-two
// histogram and the result clamped to [1s, 60s].
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		name    string
		algo    string // queried algo
		bucket  int    // where the synthetic completions land
		count   uint64
		depth   int
		workers int
		want    int
	}{
		// No evidence yet: the constant floor stands in.
		{"unknown algo", "dijkstra", 0, 0, 100, 1, minRetryAfterSeconds},
		{"empty histogram", "bfs", 0, 0, 100, 1, minRetryAfterSeconds},
		// Fast queries (p50 < 2^6 µs): even a deep queue drains in
		// well under a second, so the floor holds.
		{"fast queries floor", "bfs", 6, 50, 1000, 1, minRetryAfterSeconds},
		// p50 ≈ 2^20 µs ≈ 1.05 s; 9 queued + 1 = 10 × 1.05 s ≈ 10.5 s,
		// ceil → 11.
		{"second-long queries", "bfs", 20, 100, 9, 1, 11},
		// Same load spread over 8 workers drains 8× faster: 10.5/8 ≈
		// 1.31 s, ceil → 2.
		{"workers divide drain", "bfs", 20, 100, 9, 8, 2},
		// Pathological tail (p50 ≈ 8.4 s, 100 queued) clamps at the cap
		// instead of telling clients to go away for minutes.
		{"clamped at cap", "bfs", 23, 10, 100, 1, maxRetryAfterSeconds},
		// Empty queue still pays for the query being admitted: one p50.
		{"empty queue one p50", "bfs", 21, 10, 0, 1, 3},
		// Degenerate inputs are sanitized, not divided by.
		{"zero workers", "bfs", 20, 10, 0, 0, 2},
		{"negative depth", "bfs", 20, 10, -5, 1, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := newMetrics([]string{"bfs"})
			if c.count > 0 {
				fillBucket(m, "bfs", c.bucket, c.count)
			}
			if got := m.retryAfterSeconds(c.algo, c.depth, c.workers); got != c.want {
				t.Errorf("retryAfterSeconds(%s, depth=%d, workers=%d) = %d, want %d",
					c.algo, c.depth, c.workers, got, c.want)
			}
		})
	}
}

// TestRetryAfterMedianSelection: with a bimodal histogram the hint follows
// the median bucket, not the mean — a slow tail smaller than half the
// population must not inflate the backoff.
func TestRetryAfterMedianSelection(t *testing.T) {
	m := newMetrics([]string{"bfs"})
	// 60 fast (bucket 5, < 32 µs) vs 40 slow (bucket 22, < 4.2 s):
	// median lands in the fast mode → floor.
	fillBucket(m, "bfs", 5, 60)
	fillBucket(m, "bfs", 22, 40)
	if got := m.retryAfterSeconds("bfs", 50, 1); got != minRetryAfterSeconds {
		t.Errorf("fast-majority: %d, want %d (median must ignore the slow tail)", got, minRetryAfterSeconds)
	}
	// Flip the mix: now the median is the slow mode and the hint scales.
	m2 := newMetrics([]string{"bfs"})
	fillBucket(m2, "bfs", 5, 40)
	fillBucket(m2, "bfs", 22, 60)
	if got := m2.retryAfterSeconds("bfs", 50, 1); got <= minRetryAfterSeconds {
		t.Errorf("slow-majority: %d, want > floor", got)
	}
}

// TestRetryAfterMonotonicInDepth: more queued work never shortens the
// hint (clients backing off must not be told to return sooner as the
// queue grows).
func TestRetryAfterMonotonicInDepth(t *testing.T) {
	m := newMetrics([]string{"bfs"})
	fillBucket(m, "bfs", 19, 25) // p50 ≈ 0.52 s
	prev := 0
	for depth := 0; depth <= 256; depth += 16 {
		got := m.retryAfterSeconds("bfs", depth, 2)
		if got < prev {
			t.Fatalf("depth %d: hint %d < previous %d", depth, got, prev)
		}
		prev = got
	}
	if prev <= minRetryAfterSeconds {
		t.Fatalf("deepest queue still at the floor (%d); histogram too fast for the test", prev)
	}
}

// TestRetryAfterTracksObservedLatency goes through the real observe path:
// recorded durations place the p50, and the server-level accessor clamps
// the same way.
func TestRetryAfterTracksObservedLatency(t *testing.T) {
	m := newMetrics([]string{"bfs"})
	for i := 0; i < 9; i++ {
		m.algos["bfs"].observeRun(0, 900*time.Millisecond, nil)
	}
	// 900 ms lands in the bucket spanning up to 2^20 µs: with 9 queued
	// on 1 worker the drain estimate is ~10 × 1.05 s.
	if got := m.retryAfterSeconds("bfs", 9, 1); got < 10 || got > 11 {
		t.Errorf("observed 900ms p50, depth 9: hint %d, want ~10-11", got)
	}
}

package serve

import (
	"math"
	"testing"

	"pushpull/internal/core"
)

// TestPredictorSeedThenEWMA: before any query completes, predictions come
// from the cost-model seed; the first measured sample replaces the seed
// outright (the seed is an order-of-magnitude bound, not evidence worth
// averaging against), and later samples blend in at the EWMA rate.
func TestPredictorSeedThenEWMA(t *testing.T) {
	p := newPredictor()
	seeded := 0
	seed := func() float64 { seeded++; return 5e6 }

	if got := p.predict("g", "bfs", seed); got != 5e6 {
		t.Fatalf("cold predict = %v, want seed 5e6", got)
	}
	if got := p.predict("g", "bfs", seed); got != 5e6 {
		t.Fatalf("second predict = %v, want cached seed", got)
	}
	if seeded != 1 {
		t.Fatalf("seed computed %d times, want once (cached on the entry)", seeded)
	}

	p.observe("g", "bfs", 5e6, 1e6)
	if got := p.predict("g", "bfs", seed); got != 1e6 {
		t.Fatalf("predict after first sample = %v, want 1e6 (measurement replaces seed)", got)
	}
	p.observe("g", "bfs", 1e6, 2e6)
	want := 1e6 + predictorAlpha*(2e6-1e6)
	if got := p.predict("g", "bfs", seed); math.Abs(got-want) > 1 {
		t.Fatalf("predict after second sample = %v, want EWMA %v", got, want)
	}
}

// TestPredictorConvergence: a level shift in the true cost converges the
// EWMA geometrically — within 2% after 20 samples at alpha 0.25 — so a
// server whose traffic changes shape re-prices admission within tens of
// queries, not thousands.
func TestPredictorConvergence(t *testing.T) {
	p := newPredictor()
	p.observe("g", "pagerank", 0, 1e6) // initial level: 1ms
	for i := 0; i < 20; i++ {
		p.observe("g", "pagerank", 0, 8e6) // true cost jumps to 8ms
	}
	got := p.predict("g", "pagerank", nil)
	if rel := math.Abs(got-8e6) / 8e6; rel > 0.02 {
		t.Fatalf("after 20 samples at 8e6, prediction %v is %.1f%% off", got, rel*100)
	}
}

// TestPredictorAccuracyRatio: the exported ratio pairs each completed
// query's admission-time prediction with its measurement — a predictor
// that consistently halves the true cost reports 2.0.
func TestPredictorAccuracyRatio(t *testing.T) {
	p := newPredictor()
	for i := 0; i < 10; i++ {
		p.observe("g", "sssp", 1e6, 2e6)
	}
	// Unpredicted observations must not dilute the ratio.
	p.observe("g", "sssp", 0, 9e9)

	snap := p.snapshot()
	ps, ok := snap["g/sssp"]
	if !ok {
		t.Fatalf("snapshot missing g/sssp: %v", snap)
	}
	if math.Abs(ps.AccuracyRatio-2.0) > 1e-9 {
		t.Errorf("AccuracyRatio = %v, want 2.0", ps.AccuracyRatio)
	}
	if ps.Samples != 11 {
		t.Errorf("Samples = %d, want 11", ps.Samples)
	}
	if ps.PredictedNs != ps.EwmaNs || ps.PredictedNs == 0 {
		t.Errorf("PredictedNs = %v, want the live EWMA %v", ps.PredictedNs, ps.EwmaNs)
	}
}

// TestPredictorIgnoresGarbage: non-positive and non-finite measurements
// are dropped instead of poisoning the EWMA.
func TestPredictorIgnoresGarbage(t *testing.T) {
	p := newPredictor()
	p.observe("g", "cc", 0, 1e6)
	p.observe("g", "cc", 0, -5)
	p.observe("g", "cc", 0, math.NaN())
	p.observe("g", "cc", 0, math.Inf(1))
	if got := p.predict("g", "cc", nil); got != 1e6 {
		t.Fatalf("prediction after garbage = %v, want untouched 1e6", got)
	}
}

// TestSweepBoundNs: no model (or an uncalibrated one) prices nothing; a
// calibrated model prices a full sweep at > 0 and scales with size.
func TestSweepBoundNs(t *testing.T) {
	if got := sweepBoundNs(nil, 1000, 10000); got != 0 {
		t.Fatalf("nil model: %v, want 0", got)
	}
	if got := sweepBoundNs(&core.CostModel{}, 1000, 10000); got != 0 {
		t.Fatalf("uncalibrated model: %v, want 0", got)
	}
	m := &core.CostModel{
		GatherNs: 2, ProbeBoolNs: 1, RowNs: 4, ScatterNs: 2,
		ClearNs: 0.5, SortNs: 3, SetupNs: 500,
	}
	small := sweepBoundNs(m, 1000, 10000)
	if small <= 0 {
		t.Fatalf("calibrated bound = %v, want > 0", small)
	}
	if big := sweepBoundNs(m, 100_000, 1_000_000); big <= small {
		t.Fatalf("bound must grow with the graph: %v vs %v", big, small)
	}
}

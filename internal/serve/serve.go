// Package serve is the concurrent graph-query service behind cmd/ppserve:
// a fixed pool of worker goroutines serving BFS / ParentBFS / SSSP /
// PageRank / CC queries over a registry of refcounted graph snapshots.
//
// Graphs live in a snapshot registry (lifecycle.go): each loaded graph is
// an immutable snapshot a query acquires at admission and releases at
// completion, so an in-flight traversal never observes a torn or freed
// graph. Reload (Server.Reload — POST /admin/reload or SIGHUP in
// cmd/ppserve) re-runs every source through load → validate → atomic
// swap; validation gates each snapshot with dimension and CSR/CSC parity
// checks plus a push-vs-pull smoke traversal, and any failure rolls back
// to the old snapshot with the reason recorded in /metrics. Retired
// snapshots free — shard/cut-table caches purged, workers' pinned arenas
// for dead shapes pruned — only after the last in-flight query releases
// them. A graph that fails to load marks the process degraded instead of
// killing it: served graphs keep working, the failed graph answers 503,
// and readiness (Server.Ready, /readyz) reports false until a reload
// brings it up. Workers self-heal: a worker whose queries die to kernel
// faults FaultStreakLimit times in a row is retired and replaced with a
// fresh goroutine and arena.
//
// The design leans on the concurrency contract the graphblas package
// documents ("Concurrency contract" in its package docs): a Matrix is
// immutable after construction and shared by every worker, while all
// mutable per-traversal state — vectors, the Descriptor, the Planner's
// hysteresis, the Corrector's EWMAs, and the scratch Workspace — is owned
// by exactly one query at a time. Each worker pins one Workspace per graph
// shape across queries (the algorithms' Workspace option), so a warm
// worker serves repeat queries with an allocation-free kernel path; a
// kernel panic taints the pinned arena, and the worker drops and replaces
// it instead of trusting corrupted scratch.
//
// Admission is bounded and cost-aware. A whole-query predictor prices
// each (graph, algorithm) pair — seeded by the calibrated cost model's
// full-sweep bound, refined by an EWMA of measured run times — and the
// admission path sheds three ways before a query ever queues: ErrQueueFull
// when the shared queue is at capacity, ErrInfeasibleDeadline when the
// predicted backlog plus the query's own predicted run time already
// exceed its deadline, and ErrQuotaExceeded when the client's token-bucket
// rate or in-flight cap is spent. All three map to 429 with an honest
// Retry-After (prediction- or refill-derived where available). Admitted
// queries wait in a class-aware earliest-deadline-first scheduler —
// interactive before batch, batch guaranteed one claim per aging bound —
// and a query whose context dies while queued is shed at claim time
// without burning a kernel. Every query runs under a context with a
// per-query deadline plus an execution budget (a configurable multiple of
// its prediction): overdue, abandoned, or over-budget queries tear down
// mid-traversal through the cancellation substrate (wrapped
// graphblas.ErrCancelled; deadline expiries additionally match
// context.DeadlineExceeded, budget trips graphblas.ErrBudgetExceeded —
// the latter still shipping the algorithm's partial progress marked
// Partial). Metrics counts every outcome, buckets queue-wait and
// run-latency separately per algorithm, exports the predictor's
// per-(graph, algo) estimates with accuracy ratios, and aggregates the
// direction planner's decision-quality numbers (push/pull iteration mix,
// flip counts, predicted-vs-measured nanoseconds) so the calibration
// loop stays observable in production.
package serve

import (
	"errors"
	"sync"
	"time"

	"pushpull/generate"
	"pushpull/graphblas"
)

// Service-level error values. Query execution additionally surfaces the
// graphblas taxonomy (ErrCancelled, ErrKernelPanic) unchanged; HTTPStatus
// maps both families to transport codes.
var (
	// ErrQueueFull reports that the admission queue rejected the query —
	// shed load and retry later (HTTP 429).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrInfeasibleDeadline reports that the query was shed at admission
	// because the predicted queue drain plus its own predicted run time
	// already exceeds its deadline — running it would burn a worker on a
	// guaranteed timeout (HTTP 429 with a prediction-derived Retry-After).
	ErrInfeasibleDeadline = errors.New("serve: deadline infeasible under current backlog")
	// ErrQuotaExceeded reports that the client's per-client quota (token-
	// bucket admission rate or max in-flight) rejected the query (HTTP 429
	// with the quota detail and a refill-derived Retry-After).
	ErrQuotaExceeded = errors.New("serve: client quota exceeded")
	// ErrShuttingDown reports that the server no longer accepts queries.
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrUnknownGraph reports a query against a graph name that was never
	// registered.
	ErrUnknownGraph = errors.New("serve: unknown graph")
	// ErrGraphUnavailable reports a query against a registered graph that
	// currently has no serving snapshot — it failed to load or validate
	// and no reload has brought it up yet (HTTP 503; the process is
	// degraded but other graphs keep serving).
	ErrGraphUnavailable = errors.New("serve: graph unavailable")
	// ErrUnknownAlgorithm reports a query for an algorithm the registry
	// does not carry.
	ErrUnknownAlgorithm = errors.New("serve: unknown algorithm")
	// ErrBadRequest reports a structurally invalid query (source out of
	// range, negative timeout, ...).
	ErrBadRequest = errors.New("serve: bad request")
)

// Graph is one served graph: the immutable Boolean adjacency matrix every
// worker shares, plus lazily derived per-algorithm views. The pattern
// matrix is safe for any number of concurrent readers; the derived views
// are built once under sync.Once and are immutable afterwards.
type Graph struct {
	Name string
	Mat  *graphblas.Matrix[bool]

	// weightedSeed picks the deterministic edge weights SSSP queries run
	// on when the graph itself is unweighted (pattern input). Zero means
	// the default seed.
	weightedSeed int64

	weightedOnce sync.Once
	weighted     *graphblas.Matrix[float64]
	weightedErr  error
}

// NewGraph wraps a loaded pattern matrix for serving.
func NewGraph(name string, m *graphblas.Matrix[bool]) *Graph {
	return &Graph{Name: name, Mat: m}
}

// Weighted returns the graph's deterministic positively-weighted copy —
// the SSSP input — building it on first use. The build is once per graph,
// not per query: concurrent SSSP queries share the result.
func (g *Graph) Weighted() (*graphblas.Matrix[float64], error) {
	g.weightedOnce.Do(func() {
		seed := g.weightedSeed
		if seed == 0 {
			seed = 99
		}
		g.weighted, g.weightedErr = generate.WeightedCopy(g.Mat, 1, 10, seed)
	})
	return g.weighted, g.weightedErr
}

// Request is one graph query.
type Request struct {
	// Graph names a loaded graph.
	Graph string `json:"graph"`
	// Algo is the registry name: bfs, parentbfs, sssp, pagerank, cc.
	Algo string `json:"algo"`
	// Source is the root vertex for the traversal algorithms (ignored by
	// pagerank and cc).
	Source int `json:"source"`
	// Timeout is the per-query deadline; zero means the server default,
	// and values above the server maximum are clamped to it.
	Timeout time.Duration `json:"timeout,omitempty"`
	// Class is the scheduling class: "interactive" (default, claimed
	// first, earliest-deadline-first) or "batch" (claimed when no
	// interactive work waits, plus one anti-starvation claim per aging
	// bound). Any other value is a bad request.
	Class string `json:"class,omitempty"`
	// ClientID names the submitting client for per-client quotas
	// (X-Client-ID on the HTTP surface). Empty is anonymous: admitted
	// through the shared queue with no per-client bound.
	ClientID string `json:"client_id,omitempty"`
	// Full requests the complete per-vertex result arrays in the payload;
	// by default only the summary (counts, iterations, checksum) returns,
	// which is what a serving tier actually ships per query.
	Full bool `json:"full,omitempty"`
}

// Result is one completed query.
type Result struct {
	ID     uint64 `json:"id"`
	Graph  string `json:"graph"`
	Algo   string `json:"algo"`
	Source int    `json:"source"`
	// Gen is the graph snapshot generation the query ran on; it bumps on
	// every successful reload, so clients can correlate results with the
	// data version that produced them.
	Gen      uint64        `json:"gen"`
	Duration time.Duration `json:"-"`
	// DurationMS mirrors Duration for the JSON surface.
	DurationMS float64 `json:"duration_ms"`
	// Worker is the pool worker that served the query.
	Worker int `json:"worker"`
	// Partial marks a payload cut short by the execution budget: the
	// per-vertex state is the algorithm's coherent partial progress
	// (depths discovered so far, distances as valid upper bounds, the
	// last completed PageRank iterate), not the converged answer.
	Partial bool    `json:"partial,omitempty"`
	Payload Payload `json:"result"`
}

// Payload is the algorithm-specific result. Summary fields are always
// set; the per-vertex arrays only under Request.Full. Checksum is an
// FNV-1a fold over the result array, so clients (and the CI smoke test)
// can assert determinism without shipping the array.
type Payload struct {
	// Reached counts vertices with a defined result: BFS/ParentBFS
	// discovered, SSSP finite-distance, CC/PageRank all.
	Reached int `json:"reached"`
	// Iterations is the traversal's level/round/power-iteration count
	// (zero where the algorithm does not report one).
	Iterations int `json:"iterations,omitempty"`
	// MaxDepth is the BFS eccentricity from the source (BFS only).
	MaxDepth int32 `json:"max_depth,omitempty"`
	// Components is the number of weakly connected components (CC only).
	Components int `json:"components,omitempty"`
	// Checksum is the FNV-1a fold over the full result array.
	Checksum uint64 `json:"checksum"`

	Depths  []int32   `json:"depths,omitempty"`
	Parents []int64   `json:"parents,omitempty"`
	Dist    []float64 `json:"dist,omitempty"`
	Ranks   []float64 `json:"ranks,omitempty"`
	Labels  []uint32  `json:"labels,omitempty"`
}

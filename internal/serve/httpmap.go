package serve

import (
	"context"
	"errors"
	"net/http"

	"pushpull/graphblas"
)

// StatusClientClosedRequest is the non-standard status (nginx convention)
// for queries abandoned by the client before completion.
const StatusClientClosedRequest = 499

// StatusBudgetExceeded is the non-standard status for queries cancelled
// by their execution budget. It is deliberately not 504: the deadline the
// client asked for did NOT pass — the server cut the query off for cost —
// and the response body still carries the partial result, which a 5xx
// from the timeout family would invite clients to discard.
const StatusBudgetExceeded = 598

// HTTPStatus maps a query error onto its transport status code. Ordering
// matters: ErrCancelled wraps the context cause, so every mid-run
// cancellation matches ErrCancelled plus its specific cause — the budget
// check runs before the deadline check (a budget trip is a deadline on
// the inner run context) and the deadline check before the generic
// ErrCancelled fallback, so trips surface as 598, timeouts as 504, and
// only genuinely abandoned queries as 499. The three 429 reasons (queue
// full, infeasible deadline, client quota) share the status and differ in
// body detail and Retry-After derivation.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrQueueFull),
		errors.Is(err, ErrInfeasibleDeadline),
		errors.Is(err, ErrQuotaExceeded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown), errors.Is(err, ErrGraphUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownGraph), errors.Is(err, ErrUnknownAlgorithm):
		return http.StatusNotFound
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, graphblas.ErrBudgetExceeded):
		return StatusBudgetExceeded
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, graphblas.ErrCancelled):
		return StatusClientClosedRequest
	default:
		// Kernel faults and anything else unexpected.
		return http.StatusInternalServerError
	}
}

// PublicErrorMessage is the error text safe to put in a response body or
// the /debug/queries listing. Kernel panic errors carry a goroutine stack
// in Error() — that detail belongs in the server log keyed by query id,
// never on the wire — so they collapse to the sentinel's generic text.
func PublicErrorMessage(err error) string {
	if err == nil {
		return ""
	}
	if isKernelPanic(err) {
		return graphblas.ErrKernelPanic.Error()
	}
	return err.Error()
}

func isKernelPanic(err error) bool {
	return errors.Is(err, graphblas.ErrKernelPanic)
}

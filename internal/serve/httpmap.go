package serve

import (
	"context"
	"errors"
	"net/http"

	"pushpull/graphblas"
)

// StatusClientClosedRequest is the non-standard status (nginx convention)
// for queries abandoned by the client before completion.
const StatusClientClosedRequest = 499

// HTTPStatus maps a query error onto its transport status code. Ordering
// matters: ErrCancelled wraps the context cause, so a deadline expiry
// matches both ErrCancelled and context.DeadlineExceeded — the deadline
// check runs first so timeouts surface as 504, not 499.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown), errors.Is(err, ErrGraphUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownGraph), errors.Is(err, ErrUnknownAlgorithm):
		return http.StatusNotFound
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, graphblas.ErrCancelled):
		return StatusClientClosedRequest
	default:
		// Kernel faults and anything else unexpected.
		return http.StatusInternalServerError
	}
}

// PublicErrorMessage is the error text safe to put in a response body or
// the /debug/queries listing. Kernel panic errors carry a goroutine stack
// in Error() — that detail belongs in the server log keyed by query id,
// never on the wire — so they collapse to the sentinel's generic text.
func PublicErrorMessage(err error) string {
	if err == nil {
		return ""
	}
	if isKernelPanic(err) {
		return graphblas.ErrKernelPanic.Error()
	}
	return err.Error()
}

func isKernelPanic(err error) bool {
	return errors.Is(err, graphblas.ErrKernelPanic)
}

package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// quotaEvictLen is the client-map size above which admit opportunistically
// prunes idle buckets (full tokens, nothing in flight) so a churn of
// one-shot client ids cannot grow the map without bound.
const quotaEvictLen = 4096

// quotas is the per-client fairness layer: a token bucket bounding each
// client's admission rate plus a cap on its concurrently admitted
// queries, so one greedy client saturating the queue degrades itself, not
// everyone. Clients are identified by Request.ClientID (the X-Client-ID
// header on the HTTP surface); the empty id is exempt — anonymous traffic
// shares the global admission queue but carries no per-client bound.
type quotas struct {
	rate        float64 // tokens (admissions) per second; <= 0 disables the rate bound
	burst       float64 // bucket capacity
	maxInflight int     // concurrent admitted queries per client; <= 0 disables

	mu      sync.Mutex
	clients map[string]*clientBucket
}

type clientBucket struct {
	tokens   float64
	last     time.Time
	inflight int
}

// newQuotas builds the layer; returns nil (fully disabled, nil-safe
// methods) when neither bound is configured.
func newQuotas(rate, burst float64, maxInflight int) *quotas {
	if rate <= 0 && maxInflight <= 0 {
		return nil
	}
	if rate > 0 && burst < 1 {
		burst = math.Max(2*rate, 2)
	}
	return &quotas{
		rate:        rate,
		burst:       burst,
		maxInflight: maxInflight,
		clients:     make(map[string]*clientBucket),
	}
}

// admit charges one admission against the client's quota, or fails with a
// wrapped ErrQuotaExceeded carrying the quota detail and a Retry-After
// hint. On success the caller must pair it with exactly one release.
func (q *quotas) admit(clientID string, now time.Time) error {
	if q == nil || clientID == "" {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.clients[clientID]
	if b == nil {
		if len(q.clients) >= quotaEvictLen {
			q.evictIdleLocked(now)
		}
		b = &clientBucket{tokens: q.burst, last: now}
		q.clients[clientID] = b
	}
	if q.rate > 0 {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens = math.Min(q.burst, b.tokens+elapsed*q.rate)
			b.last = now
		}
	}
	if q.maxInflight > 0 && b.inflight >= q.maxInflight {
		return retryHint(
			fmt.Errorf("%w: client %q at max in-flight (%d)", ErrQuotaExceeded, clientID, q.maxInflight),
			1)
	}
	if q.rate > 0 {
		if b.tokens < 1 {
			// Honest backoff: the time until the bucket refills one token.
			wait := (1 - b.tokens) / q.rate
			return retryHint(
				fmt.Errorf("%w: client %q over rate limit (%.3g/s, burst %.3g)", ErrQuotaExceeded, clientID, q.rate, q.burst),
				int(math.Ceil(wait)))
		}
		b.tokens--
	}
	b.inflight++
	return nil
}

// release returns one in-flight slot; called when an admitted query
// completes (any outcome).
func (q *quotas) release(clientID string) {
	if q == nil || clientID == "" {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if b := q.clients[clientID]; b != nil && b.inflight > 0 {
		b.inflight--
	}
}

// evictIdleLocked drops buckets that carry no state worth keeping: full
// tokens (or rate disabled) and nothing in flight — readmitting such a
// client recreates an identical bucket.
func (q *quotas) evictIdleLocked(now time.Time) {
	for id, b := range q.clients {
		if b.inflight > 0 {
			continue
		}
		tokens := b.tokens
		if q.rate > 0 {
			tokens = math.Min(q.burst, tokens+now.Sub(b.last).Seconds()*q.rate)
		}
		if q.rate <= 0 || tokens >= q.burst {
			delete(q.clients, id)
		}
	}
}

// retryHintError decorates a shed error with the prediction-derived
// Retry-After seconds the HTTP layer should send. Unwraps to the shed
// reason, so errors.Is taxonomy matching is unaffected.
type retryHintError struct {
	err     error
	seconds int
}

func (e *retryHintError) Error() string { return e.err.Error() }
func (e *retryHintError) Unwrap() error { return e.err }

// retryHint wraps err with a Retry-After hint clamped to the same
// [1s, 60s] window the drain-time estimate uses.
func retryHint(err error, seconds int) error {
	if seconds < minRetryAfterSeconds {
		seconds = minRetryAfterSeconds
	}
	if seconds > maxRetryAfterSeconds {
		seconds = maxRetryAfterSeconds
	}
	return &retryHintError{err: err, seconds: seconds}
}

// RetryAfterHint extracts the shed-specific Retry-After seconds attached
// to an admission error (infeasible-deadline and quota sheds carry one).
// The HTTP layer prefers it over the generic queue-drain estimate.
func RetryAfterHint(err error) (int, bool) {
	var rh *retryHintError
	if errors.As(err, &rh) {
		return rh.seconds, true
	}
	return 0, false
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"pushpull/graphblas"
)

// toggleSource is a GraphSource whose Load alternates or fails on demand:
// the reload tests' stand-in for a file whose on-disk contents change (or
// corrupt) between SIGHUPs.
type toggleSource struct {
	name  string
	mu    sync.Mutex
	next  func(call int) (*Graph, error)
	calls int
}

func (ts *toggleSource) source() GraphSource {
	return GraphSource{Name: ts.name, Load: func() (*Graph, error) {
		ts.mu.Lock()
		ts.calls++
		call := ts.calls
		next := ts.next
		ts.mu.Unlock()
		return next(call)
	}}
}

func (ts *toggleSource) set(next func(call int) (*Graph, error)) {
	ts.mu.Lock()
	ts.next = next
	ts.mu.Unlock()
}

// releaseRecorder collects the registry's final-release sentinel.
type releaseRecorder struct {
	mu   sync.Mutex
	gens map[string][]uint64
}

func newReleaseRecorder() *releaseRecorder {
	return &releaseRecorder{gens: make(map[string][]uint64)}
}

func (rr *releaseRecorder) hook(name string, gen uint64) {
	rr.mu.Lock()
	rr.gens[name] = append(rr.gens[name], gen)
	rr.mu.Unlock()
}

func (rr *releaseRecorder) released(name string, gen uint64) bool {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	for _, g := range rr.gens[name] {
		if g == gen {
			return true
		}
	}
	return false
}

func (rr *releaseRecorder) count(name string) int {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	return len(rr.gens[name])
}

// TestReloadSwapsGeneration: a successful reload installs a new snapshot
// generation, new queries run on it (Result.Gen bumps), and the retired
// generation frees once nothing references it.
func TestReloadSwapsGeneration(t *testing.T) {
	ts := &toggleSource{name: "g"}
	ts.set(func(int) (*Graph, error) { return kronGraph(t, 6), nil })
	srv, err := NewFromSources(Config{Workers: 2}, []GraphSource{ts.source()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rec := newReleaseRecorder()
	srv.SetReleaseHook(rec.hook)

	res, err := srv.Do(context.Background(), Request{Graph: "g", Algo: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gen != 1 {
		t.Fatalf("first query ran on gen %d, want 1", res.Gen)
	}

	rep := srv.Reload(context.Background())
	if rep.OK != 1 || rep.Failed != 0 {
		t.Fatalf("reload report %+v, want 1 ok", rep)
	}
	if rep.Results[0].Gen != 2 || rep.Results[0].Status != GraphServing {
		t.Fatalf("reload result %+v, want gen 2 serving", rep.Results[0])
	}

	res2, err := srv.Do(context.Background(), Request{Graph: "g", Algo: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Gen != 2 {
		t.Fatalf("post-reload query ran on gen %d, want 2", res2.Gen)
	}
	if res2.Payload.Checksum != res.Payload.Checksum {
		t.Fatalf("same data across generations produced checksums %x vs %x", res.Payload.Checksum, res2.Payload.Checksum)
	}

	// Gen 1 was retired with no queries in flight: it must already be free.
	waitFor(t, "retired gen 1 to release", func() bool { return rec.released("g", 1) })
	snap := srv.Metrics().Snapshot()
	lc := snap.Lifecycle
	if lc.SnapshotsInstalled != 2 || lc.SnapshotsRetired != 1 || lc.SnapshotsReleased != 1 {
		t.Errorf("lifecycle counters installed/retired/released = %d/%d/%d, want 2/1/1",
			lc.SnapshotsInstalled, lc.SnapshotsRetired, lc.SnapshotsReleased)
	}
	if lc.Reloads != 1 || lc.ReloadFailures != 0 {
		t.Errorf("reload counters = %d ok / %d failed, want 1/0", lc.Reloads, lc.ReloadFailures)
	}
}

// TestReloadRollback: a reload whose load or validation fails leaves the
// old snapshot serving untouched, records the structured reason on the
// graph's /metrics entry, and a later good reload clears it.
func TestReloadRollback(t *testing.T) {
	ts := &toggleSource{name: "g"}
	good := func(int) (*Graph, error) { return kronGraph(t, 6), nil }
	ts.set(good)
	srv, err := NewFromSources(Config{Workers: 1}, []GraphSource{ts.source()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	before, err := srv.Do(context.Background(), Request{Graph: "g", Algo: "bfs"})
	if err != nil {
		t.Fatal(err)
	}

	ts.set(func(int) (*Graph, error) { return nil, errors.New("disk went missing") })
	rep := srv.Reload(context.Background())
	if rep.Failed != 1 || rep.OK != 0 {
		t.Fatalf("reload report %+v, want 1 failed", rep)
	}
	r0 := rep.Results[0]
	if r0.Status != GraphServing || r0.Gen != 1 {
		t.Fatalf("rollback left %s gen %d, want serving gen 1", r0.Status, r0.Gen)
	}
	if !strings.Contains(r0.Error, "disk went missing") {
		t.Fatalf("rollback reason %q does not carry the load error", r0.Error)
	}

	// The old snapshot keeps serving identical results.
	after, err := srv.Do(context.Background(), Request{Graph: "g", Algo: "bfs"})
	if err != nil {
		t.Fatalf("query after rollback: %v", err)
	}
	if after.Gen != 1 || after.Payload.Checksum != before.Payload.Checksum {
		t.Fatalf("post-rollback query: gen %d checksum %x, want gen 1 checksum %x",
			after.Gen, after.Payload.Checksum, before.Payload.Checksum)
	}

	// The structured reason is on the graph's lifecycle surface.
	lc := srv.Metrics().Snapshot().Lifecycle
	if lc.ReloadFailures != 1 {
		t.Errorf("reload failures = %d, want 1", lc.ReloadFailures)
	}
	gi := srv.GraphInfos()[0]
	if gi.Status != GraphServing || !strings.Contains(gi.Error, "disk went missing") {
		t.Errorf("graph info after rollback: %+v, want serving with the failure reason", gi)
	}
	if srv.Degraded() {
		t.Error("rollback must not degrade a graph that still serves")
	}

	// A validation failure rolls back the same way as a load failure.
	ts.set(func(int) (*Graph, error) {
		rows := []uint32{0}
		cols := []uint32{1}
		m, err := graphblas.NewMatrixFromCOO(2, 3, rows, cols, []bool{true}, nil)
		if err != nil {
			return nil, err
		}
		return NewGraph("g", m), nil
	})
	rep = srv.Reload(context.Background())
	if rep.Failed != 1 || !strings.Contains(rep.Results[0].Error, "square") {
		t.Fatalf("non-square reload report %+v, want validation failure", rep)
	}

	// Fixing the source brings the next reload through and clears the error.
	ts.set(good)
	rep = srv.Reload(context.Background())
	if rep.OK != 1 || rep.Results[0].Gen != 2 {
		t.Fatalf("recovery reload report %+v, want gen 2", rep)
	}
	if gi := srv.GraphInfos()[0]; gi.Error != "" {
		t.Errorf("recovered graph still carries error %q", gi.Error)
	}
}

// TestDegradedStartAndRecovery: with DegradedStart a bad source leaves the
// process alive serving its valid subset — the failed graph answers 503
// and readiness reports false — and a reload that fixes the source flips
// both back.
func TestDegradedStartAndRecovery(t *testing.T) {
	bad := &toggleSource{name: "bad"}
	bad.set(func(int) (*Graph, error) { return nil, errors.New("corrupt fixture") })
	goodSrc := GraphSource{Name: "good", Load: func() (*Graph, error) { return kronGraph(t, 6), nil }}

	// Strict mode refuses to start.
	if _, err := NewFromSources(Config{Workers: 1}, []GraphSource{goodSrc, bad.source()}); err == nil {
		t.Fatal("strict NewFromSources accepted a failing source")
	}
	// Degraded start with zero live graphs still refuses.
	if _, err := NewFromSources(Config{Workers: 1, DegradedStart: true}, []GraphSource{bad.source()}); err == nil {
		t.Fatal("degraded start with no live graph accepted")
	}

	srv, err := NewFromSources(Config{Workers: 1, DegradedStart: true}, []GraphSource{goodSrc, bad.source()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if !srv.Degraded() || srv.Ready() {
		t.Fatalf("degraded=%v ready=%v, want degraded and not ready", srv.Degraded(), srv.Ready())
	}
	if lc := srv.Metrics().Snapshot().Lifecycle; !lc.Degraded {
		t.Error("metrics lifecycle does not report degraded")
	}

	// The valid subset serves; the failed graph answers 503 with the reason.
	if _, err := srv.Do(context.Background(), Request{Graph: "good", Algo: "bfs"}); err != nil {
		t.Fatalf("query on live graph while degraded: %v", err)
	}
	_, err = srv.Do(context.Background(), Request{Graph: "bad", Algo: "bfs"})
	if !errors.Is(err, ErrGraphUnavailable) {
		t.Fatalf("query on failed graph: %v, want ErrGraphUnavailable", err)
	}
	if got := HTTPStatus(err); got != http.StatusServiceUnavailable {
		t.Errorf("HTTPStatus = %d, want 503", got)
	}
	if !strings.Contains(err.Error(), "corrupt fixture") {
		t.Errorf("unavailable error %q does not carry the load failure", err)
	}
	var badInfo GraphInfo
	for _, gi := range srv.GraphInfos() {
		if gi.Name == "bad" {
			badInfo = gi
		}
	}
	if badInfo.Status != GraphFailed || badInfo.Gen != 0 || !strings.Contains(badInfo.Error, "corrupt fixture") {
		t.Errorf("failed graph info %+v", badInfo)
	}

	// Fix the source; reload recovers the graph and readiness flips.
	bad.set(func(int) (*Graph, error) { return pathGraph(t, 64), nil })
	rep := srv.Reload(context.Background())
	if rep.Failed != 0 || rep.OK != 2 {
		t.Fatalf("recovery reload report %+v, want both graphs ok", rep)
	}
	if srv.Degraded() || !srv.Ready() {
		t.Fatalf("after recovery degraded=%v ready=%v", srv.Degraded(), srv.Ready())
	}
	res, err := srv.Do(context.Background(), Request{Graph: "bad", Algo: "bfs"})
	if err != nil {
		t.Fatalf("query on recovered graph: %v", err)
	}
	if res.Gen != 1 {
		t.Errorf("recovered graph serves gen %d, want 1 (first successful install)", res.Gen)
	}
}

// TestLoadPanicsAreLoadErrors: a panicking loader (and a loader returning
// a nil graph) degrade to structured load failures, never a process death.
func TestLoadPanicsAreLoadErrors(t *testing.T) {
	panicSrc := GraphSource{Name: "p", Load: func() (*Graph, error) { panic("loader exploded") }}
	if _, err := NewFromSources(Config{Workers: 1}, []GraphSource{panicSrc}); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking loader: %v, want load-panicked error", err)
	}
	nilSrc := GraphSource{Name: "n", Load: func() (*Graph, error) { return nil, nil }}
	if _, err := NewFromSources(Config{Workers: 1}, []GraphSource{nilSrc}); err == nil || !strings.Contains(err.Error(), "nil graph") {
		t.Fatalf("nil-graph loader: %v, want nil-graph error", err)
	}
}

// TestSnapshotDrainBeforeRelease is the torn-graph guard: a reload while a
// query is mid-traversal retires the old generation but must not free it
// until that query releases its reference; meanwhile new queries already
// run on the new generation.
func TestSnapshotDrainBeforeRelease(t *testing.T) {
	srv, err := NewFromSources(Config{Workers: 2},
		[]GraphSource{{Name: "path", Load: func() (*Graph, error) { return pathGraph(t, 100_000), nil }}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rec := newReleaseRecorder()
	srv.SetReleaseHook(rec.hook)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = srv.Do(ctx, Request{Graph: "path", Algo: "bfs"})
	}()
	waitFor(t, "slow query to start running", func() bool {
		for _, q := range srv.Queries() {
			if q.State == "running" {
				return true
			}
		}
		return false
	})

	rep := srv.Reload(context.Background())
	if rep.OK != 1 {
		t.Fatalf("reload under traffic: %+v", rep)
	}
	// Gen 1 is retired but the slow query still holds it: not released.
	lc := srv.Metrics().Snapshot().Lifecycle
	if lc.SnapshotsRetired != 1 {
		t.Fatalf("retired = %d, want 1", lc.SnapshotsRetired)
	}
	if rec.released("path", 1) || lc.SnapshotsReleased != 0 {
		t.Fatal("retired snapshot released while a query still held it")
	}

	// New queries land on gen 2 while the old one drains.
	res, err := srv.Do(context.Background(), Request{Graph: "path", Algo: "bfs", Source: 99_998})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gen != 2 {
		t.Fatalf("query during drain ran on gen %d, want 2", res.Gen)
	}

	// The in-flight query finishing is what frees the retired snapshot.
	cancel()
	<-done
	waitFor(t, "retired snapshot to release after drain", func() bool { return rec.released("path", 1) })
	if n := rec.count("path"); n != 1 {
		t.Errorf("release sentinel fired %d times, want exactly 1", n)
	}
}

// TestReloadUnderTrafficStress is the acceptance stress (run it with
// -race): clients hammer queries while the main goroutine reloads in a
// loop, alternating the source between two structurally different graphs.
// Every result's checksum must match the oracle for the generation it ran
// on — a query that observed a half-swapped graph cannot do that — and
// after the drain every retired generation must have fired its release
// sentinel exactly once.
func TestReloadUnderTrafficStress(t *testing.T) {
	graphA := pathGraph(t, 64)
	graphB := kronGraph(t, 6)

	// Per-matrix oracle checksums from a strict single-worker server.
	oracle := make(map[*Graph]uint64)
	for _, g := range []*Graph{graphA, graphB} {
		osrv, err := New(Config{Workers: 1}, NewGraph("o", g.Mat))
		if err != nil {
			t.Fatal(err)
		}
		res, err := osrv.Do(context.Background(), Request{Graph: "o", Algo: "bfs"})
		if err != nil {
			t.Fatal(err)
		}
		if res.Payload.Checksum == 0 {
			t.Fatal("oracle produced a zero checksum")
		}
		oracle[g] = res.Payload.Checksum
		osrv.Close()
	}
	if oracle[graphA] == oracle[graphB] {
		t.Fatal("stress graphs are not distinguishable by checksum")
	}

	// Load alternates A, B, A, B... so generation g serves A when g is odd.
	ts := &toggleSource{name: "g"}
	ts.set(func(call int) (*Graph, error) {
		if call%2 == 1 {
			return NewGraph("g", graphA.Mat), nil
		}
		return NewGraph("g", graphB.Mat), nil
	})
	wantChecksum := func(gen uint64) uint64 {
		if gen%2 == 1 {
			return oracle[graphA]
		}
		return oracle[graphB]
	}

	srv, err := NewFromSources(Config{Workers: 4, QueueDepth: 64}, []GraphSource{ts.source()})
	if err != nil {
		t.Fatal(err)
	}
	rec := newReleaseRecorder()
	srv.SetReleaseHook(rec.hook)

	const clients = 8
	const reloads = 25
	stop := make(chan struct{})
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	var served atomic.Uint64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := srv.Do(context.Background(), Request{Graph: "g", Algo: "bfs"})
				if errors.Is(err, ErrQueueFull) {
					continue // shed load is a valid outcome under the storm
				}
				if err != nil {
					errs <- fmt.Errorf("query: %v", err)
					return
				}
				if want := wantChecksum(res.Gen); res.Payload.Checksum != want {
					errs <- fmt.Errorf("gen %d: checksum %x, oracle %x — snapshot torn by reload",
						res.Gen, res.Payload.Checksum, want)
					return
				}
				served.Add(1)
			}
		}()
	}

	lastGen := uint64(1)
	for i := 0; i < reloads; i++ {
		// Let each generation actually serve before swapping it out, so
		// the storm genuinely interleaves queries with every reload.
		before := served.Load()
		waitFor(t, "queries to land on the current generation", func() bool {
			return served.Load() >= before+2
		})
		rep := srv.Reload(context.Background())
		if rep.Failed != 0 {
			t.Errorf("reload %d failed: %+v", i, rep)
		}
		lastGen = rep.Results[0].Gen
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if served.Load() == 0 {
		t.Fatal("stress served no queries")
	}
	if lastGen != uint64(1+reloads) {
		t.Fatalf("final generation %d, want %d", lastGen, 1+reloads)
	}

	// Close drains everything: every generation ever installed must have
	// retired and fired its release sentinel exactly once.
	srv.Close()
	lc := srv.Metrics().Snapshot().Lifecycle
	if lc.SnapshotsInstalled != uint64(1+reloads) {
		t.Errorf("installed = %d, want %d", lc.SnapshotsInstalled, 1+reloads)
	}
	if lc.SnapshotsRetired != lc.SnapshotsInstalled {
		t.Errorf("retired = %d, want %d (close retires the last snapshot)", lc.SnapshotsRetired, lc.SnapshotsInstalled)
	}
	if lc.SnapshotsReleased != lc.SnapshotsRetired {
		t.Errorf("released = %d, retired = %d — a retired snapshot leaked", lc.SnapshotsReleased, lc.SnapshotsRetired)
	}
	for gen := uint64(1); gen <= uint64(1+reloads); gen++ {
		if !rec.released("g", gen) {
			t.Errorf("generation %d never fired its release sentinel", gen)
		}
	}
	if n := rec.count("g"); n != 1+reloads {
		t.Errorf("release sentinel fired %d times, want %d", n, 1+reloads)
	}
}

// TestPruneStaleWorkspaces: a worker's pinned arenas for shapes no serving
// snapshot has anymore are dropped at the next epoch check, while live
// shapes stay pinned (the zero-alloc warm path survives same-shape
// reloads).
func TestPruneStaleWorkspaces(t *testing.T) {
	srv, err := New(Config{Workers: 1}, kronGraph(t, 6)) // live shape 64×64
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	w := srv.newWorker(99) // private worker, never enters the pool
	defer w.releaseAll()
	live := [2]int{64, 64}
	stale := [2]int{128, 128}
	w.pinned[live] = graphblas.AcquireWorkspace(64, 64)
	w.pinned[stale] = graphblas.AcquireWorkspace(128, 128)

	w.pruneStale(srv.registry)
	if w.pinned[stale] != nil {
		t.Error("stale-shape workspace survived the prune")
	}
	if w.pinned[live] == nil {
		t.Error("live-shape workspace was pruned")
	}

	// Same epoch → no rescan: a re-added stale shape stays until the next
	// registry change bumps the epoch.
	w.pinned[stale] = graphblas.AcquireWorkspace(128, 128)
	w.pruneStale(srv.registry)
	if w.pinned[stale] == nil {
		t.Error("prune rescanned without an epoch change")
	}
}

//go:build faultinject

package serve

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"

	"pushpull/graphblas"
	"pushpull/internal/faultinject"
	"pushpull/internal/par"
)

// TestPoolSurvivesKernelPanic injects a kernel panic into one query's
// matvec and pins the serving contract around it: the query fails with
// ErrKernelPanic (HTTP 500, stack kept out of the public message), the
// worker drops its tainted pinned workspace, and the pool keeps serving —
// subsequent queries on every algorithm return oracle-identical checksums
// with no stranded parallel workers.
func TestPoolSurvivesKernelPanic(t *testing.T) {
	g := kronGraph(t, 8)
	srv, err := New(Config{Workers: 2}, g)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Oracle checksums before any fault.
	oracle := make(map[string]uint64)
	for _, algo := range AlgorithmNames() {
		res, err := srv.Do(context.Background(), Request{Graph: "kron", Algo: algo, Source: 3})
		if err != nil {
			t.Fatalf("pre-fault %s: %v", algo, err)
		}
		oracle[algo] = res.Payload.Checksum
	}
	base := par.ParkedWorkers()

	disarm := faultinject.Arm(faultinject.SiteMxVKernel, 2, func() {
		panic("injected serve fault")
	})
	defer disarm()
	_, err = srv.Do(context.Background(), Request{Graph: "kron", Algo: "bfs", Source: 3})
	if !errors.Is(err, graphblas.ErrKernelPanic) {
		t.Fatalf("faulted query: %v, want ErrKernelPanic", err)
	}
	if got := HTTPStatus(err); got != http.StatusInternalServerError {
		t.Errorf("HTTPStatus = %d, want 500", got)
	}
	if pub := PublicErrorMessage(err); strings.Contains(pub, "goroutine") || strings.Contains(pub, "injected") {
		t.Errorf("public message leaks diagnostics: %q", pub)
	}
	disarm()

	// The pool keeps serving, results stay oracle-identical on the fresh
	// scratch the panicked worker re-acquired.
	for round := 0; round < 3; round++ {
		for _, algo := range AlgorithmNames() {
			res, err := srv.Do(context.Background(), Request{Graph: "kron", Algo: algo, Source: 3})
			if err != nil {
				t.Fatalf("post-fault %s: %v", algo, err)
			}
			if res.Payload.Checksum != oracle[algo] {
				t.Errorf("post-fault %s: checksum %x, oracle %x", algo, res.Payload.Checksum, oracle[algo])
			}
		}
	}

	waitFor(t, "parked workers to return to baseline", func() bool {
		return par.ParkedWorkers() == base
	})
	snap := srv.Metrics().Snapshot()
	if snap.Algorithms["bfs"].Panics != 1 {
		t.Errorf("bfs panic count = %d, want 1", snap.Algorithms["bfs"].Panics)
	}
	// The faulted query's record carries only the public message.
	for _, q := range srv.Queries() {
		if strings.Contains(q.Status, "goroutine") || strings.Contains(q.Status, "injected") {
			t.Errorf("query %d status leaks diagnostics: %q", q.ID, q.Status)
		}
	}
}

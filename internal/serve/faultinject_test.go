//go:build faultinject

package serve

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"

	"pushpull/graphblas"
	"pushpull/internal/faultinject"
	"pushpull/internal/par"
)

// TestPoolSurvivesKernelPanic injects a kernel panic into one query's
// matvec and pins the serving contract around it: the query fails with
// ErrKernelPanic (HTTP 500, stack kept out of the public message), the
// worker drops its tainted pinned workspace, and the pool keeps serving —
// subsequent queries on every algorithm return oracle-identical checksums
// with no stranded parallel workers.
func TestPoolSurvivesKernelPanic(t *testing.T) {
	g := kronGraph(t, 8)
	srv, err := New(Config{Workers: 2}, g)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Oracle checksums before any fault.
	oracle := make(map[string]uint64)
	for _, algo := range AlgorithmNames() {
		res, err := srv.Do(context.Background(), Request{Graph: "kron", Algo: algo, Source: 3})
		if err != nil {
			t.Fatalf("pre-fault %s: %v", algo, err)
		}
		oracle[algo] = res.Payload.Checksum
	}
	base := par.ParkedWorkers()

	disarm := faultinject.Arm(faultinject.SiteMxVKernel, 2, func() {
		panic("injected serve fault")
	})
	defer disarm()
	_, err = srv.Do(context.Background(), Request{Graph: "kron", Algo: "bfs", Source: 3})
	if !errors.Is(err, graphblas.ErrKernelPanic) {
		t.Fatalf("faulted query: %v, want ErrKernelPanic", err)
	}
	if got := HTTPStatus(err); got != http.StatusInternalServerError {
		t.Errorf("HTTPStatus = %d, want 500", got)
	}
	if pub := PublicErrorMessage(err); strings.Contains(pub, "goroutine") || strings.Contains(pub, "injected") {
		t.Errorf("public message leaks diagnostics: %q", pub)
	}
	disarm()

	// The pool keeps serving, results stay oracle-identical on the fresh
	// scratch the panicked worker re-acquired.
	for round := 0; round < 3; round++ {
		for _, algo := range AlgorithmNames() {
			res, err := srv.Do(context.Background(), Request{Graph: "kron", Algo: algo, Source: 3})
			if err != nil {
				t.Fatalf("post-fault %s: %v", algo, err)
			}
			if res.Payload.Checksum != oracle[algo] {
				t.Errorf("post-fault %s: checksum %x, oracle %x", algo, res.Payload.Checksum, oracle[algo])
			}
		}
	}

	waitFor(t, "parked workers to return to baseline", func() bool {
		return par.ParkedWorkers() == base
	})
	snap := srv.Metrics().Snapshot()
	if snap.Algorithms["bfs"].Panics != 1 {
		t.Errorf("bfs panic count = %d, want 1", snap.Algorithms["bfs"].Panics)
	}
	// The faulted query's record carries only the public message.
	for _, q := range srv.Queries() {
		if strings.Contains(q.Status, "goroutine") || strings.Contains(q.Status, "injected") {
			t.Errorf("query %d status leaks diagnostics: %q", q.ID, q.Status)
		}
	}
}

// faultQuery runs one query with a kernel panic armed for it and asserts
// it died to the fault.
func faultQuery(t *testing.T, srv *Server, req Request) {
	t.Helper()
	disarm := faultinject.Arm(faultinject.SiteMxVKernel, 1, func() {
		panic("injected streak fault")
	})
	defer disarm()
	if _, err := srv.Do(context.Background(), req); !errors.Is(err, graphblas.ErrKernelPanic) {
		t.Fatalf("armed query: %v, want ErrKernelPanic", err)
	}
}

// TestWorkerSelfHealing: FaultStreakLimit consecutive kernel faults retire
// the worker — the pool replaces it with a fresh goroutine (new worker id,
// same slot), counts the retirement in /metrics, and keeps serving
// oracle-identical results. A success between faults resets the streak, so
// scattered faults never trip the limit.
func TestWorkerSelfHealing(t *testing.T) {
	srv, err := New(Config{Workers: 1, FaultStreakLimit: 3}, kronGraph(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	req := Request{Graph: "kron", Algo: "bfs", Source: 3}

	oracleRes, err := srv.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	oracle := oracleRes.Payload.Checksum
	initialID := srv.workerIDs()[0]

	// Two faults, a success, two faults: streak never reaches 3.
	faultQuery(t, srv, req)
	faultQuery(t, srv, req)
	if res, err := srv.Do(context.Background(), req); err != nil || res.Payload.Checksum != oracle {
		t.Fatalf("streak-resetting query: %v (checksum %x, oracle %x)", err, res.Payload.Checksum, oracle)
	}
	faultQuery(t, srv, req)
	faultQuery(t, srv, req)
	snap := srv.Metrics().Snapshot()
	if snap.Lifecycle.WorkerRetirements != 0 {
		t.Fatalf("scattered faults retired a worker (retirements = %d)", snap.Lifecycle.WorkerRetirements)
	}
	if snap.Lifecycle.FaultStreakHighWater != 2 {
		t.Errorf("fault streak high water = %d, want 2", snap.Lifecycle.FaultStreakHighWater)
	}

	// A third consecutive fault trips the limit.
	faultQuery(t, srv, req)
	waitFor(t, "worker to be replaced", func() bool {
		return srv.workerIDs()[0] != initialID
	})
	snap = srv.Metrics().Snapshot()
	if snap.Lifecycle.WorkerRetirements != 1 {
		t.Errorf("worker retirements = %d, want 1", snap.Lifecycle.WorkerRetirements)
	}
	if snap.Lifecycle.FaultStreakHighWater != 3 {
		t.Errorf("fault streak high water = %d, want 3", snap.Lifecycle.FaultStreakHighWater)
	}

	// The replacement worker serves correctly on fresh scratch.
	for i := 0; i < 3; i++ {
		res, err := srv.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("post-replacement query %d: %v", i, err)
		}
		if res.Payload.Checksum != oracle {
			t.Errorf("post-replacement query %d: checksum %x, oracle %x", i, res.Payload.Checksum, oracle)
		}
	}
}

// TestReloadFaultSites: panics injected into the lifecycle's load and
// validate paths surface as reload rollbacks — the old snapshot keeps
// serving, the failure is counted and recorded — never as a process death.
func TestReloadFaultSites(t *testing.T) {
	srv, err := New(Config{Workers: 1}, kronGraph(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	req := Request{Graph: "kron", Algo: "bfs"}
	before, err := srv.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	for i, site := range []string{faultinject.SiteServeLoad, faultinject.SiteServeValidate} {
		disarm := faultinject.Arm(site, 1, func() { panic("injected lifecycle fault") })
		rep := srv.Reload(context.Background())
		disarm()
		if rep.Failed != 1 || rep.OK != 0 {
			t.Fatalf("%s: reload report %+v, want rollback", site, rep)
		}
		if !strings.Contains(rep.Results[0].Error, "panicked") {
			t.Errorf("%s: rollback reason %q does not say the stage panicked", site, rep.Results[0].Error)
		}
		res, err := srv.Do(context.Background(), req)
		if err != nil || res.Payload.Checksum != before.Payload.Checksum {
			t.Fatalf("%s: post-rollback query: %v (checksum %x, want %x)", site, err, res.Payload.Checksum, before.Payload.Checksum)
		}
		if res.Gen != 1 {
			t.Errorf("%s: post-rollback query ran on gen %d, want 1", site, res.Gen)
		}
		if lc := srv.Metrics().Snapshot().Lifecycle; lc.ReloadFailures != uint64(i+1) {
			t.Errorf("%s: reload failures = %d, want %d", site, lc.ReloadFailures, i+1)
		}
	}

	// With nothing armed the next reload goes through.
	if rep := srv.Reload(context.Background()); rep.OK != 1 || rep.Results[0].Gen != 2 {
		t.Fatalf("clean reload after injected faults: %+v", rep)
	}
}

package serve

import (
	"sync"
	"time"
)

// Query classes. Interactive queries are claimed before batch queries;
// batch queries ride an anti-starvation aging bound so a steady
// interactive stream cannot park them forever.
const (
	ClassInteractive = "interactive"
	ClassBatch       = "batch"
)

const (
	classInteractive = iota
	classBatch
	numClasses
)

// classIndex maps the request's class field to its queue index. The empty
// string is interactive — a client that says nothing gets the latency
// tier, matching the pre-class behaviour where every query competed
// equally.
func classIndex(class string) (int, bool) {
	switch class {
	case "", ClassInteractive:
		return classInteractive, true
	case ClassBatch:
		return classBatch, true
	default:
		return 0, false
	}
}

func className(class int) string {
	if class == classBatch {
		return ClassBatch
	}
	return ClassInteractive
}

// scheduler is the admission queue: a mutex+condvar pair of
// earliest-deadline-first heaps, one per class, replacing the FIFO
// channel the pool started with. The mutex closes the Do-vs-Close race
// the channel had (a send racing a close panics; push racing close just
// returns ErrShuttingDown), and the heaps give the claim policy:
//
//   - within a class, the earliest deadline is claimed first (EDF), ties
//     broken by admission order;
//   - interactive is claimed before batch, except that batch is
//     guaranteed one claim per agingBound whenever it has work — the
//     anti-starvation bound that keeps a saturating interactive stream
//     from parking batch forever;
//   - after close, pop drains the remaining admitted tasks (each still
//     bounded by its own deadline) before reporting empty.
//
// The scheduler also carries the admission-time backlog estimate: the sum
// of queued tasks' predicted nanoseconds per class, which the
// deadline-feasibility check divides by the worker count to price the
// queue wait a new query would inherit.
type scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cap    int
	closed bool
	q      [numClasses]taskHeap
	seq    uint64

	// backlogNs sums the predicted run time of the queued tasks per class
	// (tasks without a prediction contribute zero — the estimate is a
	// floor, never an excuse to admit blindly past it).
	backlogNs [numClasses]float64

	// lastBatchClaim is the last time a batch task was claimed while
	// interactive work was also waiting; pop serves batch when
	// now-lastBatchClaim ≥ agingBound, bounding batch starvation to one
	// aging window plus one interactive service time.
	agingBound     time.Duration
	lastBatchClaim time.Time
	agedClaims     uint64
}

func newScheduler(capacity int, agingBound time.Duration) *scheduler {
	s := &scheduler{cap: capacity, agingBound: agingBound, lastBatchClaim: time.Now()}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// push admits a task or fails fast: ErrShuttingDown after close,
// ErrQueueFull when the shared capacity is reached. Never blocks.
func (s *scheduler) push(t *task) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrShuttingDown
	}
	if s.q[classInteractive].len()+s.q[classBatch].len() >= s.cap {
		return ErrQueueFull
	}
	t.seq = s.seq
	s.seq++
	s.q[t.class].push(t)
	s.backlogNs[t.class] += t.predictedNs
	s.cond.Signal()
	return nil
}

// pop blocks until a task is claimable, returning false only when the
// scheduler is closed and fully drained.
func (s *scheduler) pop() (*task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if t := s.claimLocked(time.Now()); t != nil {
			return t, true
		}
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
}

// claimLocked applies the class policy and pops the chosen heap's EDF
// minimum. Expired-in-queue tasks are claimed like any other — the worker
// sheds them on the spot (a dead context never reaches a kernel) — so
// their Do callers still receive an outcome.
func (s *scheduler) claimLocked(now time.Time) *task {
	ni, nb := s.q[classInteractive].len(), s.q[classBatch].len()
	if ni == 0 && nb == 0 {
		return nil
	}
	class := classInteractive
	if nb > 0 {
		if ni == 0 {
			class = classBatch
		} else if now.Sub(s.lastBatchClaim) >= s.agingBound {
			class = classBatch
			s.agedClaims++
		}
	}
	if class == classBatch {
		s.lastBatchClaim = now
	}
	t := s.q[class].pop()
	s.backlogNs[class] -= t.predictedNs
	if s.backlogNs[class] < 0 {
		s.backlogNs[class] = 0
	}
	return t
}

// close stops admission and wakes every waiting worker; already-admitted
// tasks drain through pop.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// depth is the total queued population (the /metrics queue_depth).
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q[classInteractive].len() + s.q[classBatch].len()
}

// classDepths reports the per-class populations and the aged-claim count.
func (s *scheduler) classDepths() (interactive, batch int, aged uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q[classInteractive].len(), s.q[classBatch].len(), s.agedClaims
}

// drainNs estimates the backlog a newly admitted query of the given class
// would wait behind, in predicted nanoseconds of queued work: interactive
// queries jump batch, so they only inherit the interactive backlog; batch
// queries wait behind everything.
func (s *scheduler) drainNs(class int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if class == classBatch {
		return s.backlogNs[classInteractive] + s.backlogNs[classBatch]
	}
	return s.backlogNs[classInteractive]
}

// taskHeap is a binary min-heap ordered by (deadline, admission seq) — the
// EDF order within one class. Methods are unexported and unlocked; the
// scheduler's mutex covers them.
type taskHeap struct {
	items []*task
}

func (h *taskHeap) len() int { return len(h.items) }

func (h *taskHeap) less(i, j int) bool {
	ti, tj := h.items[i], h.items[j]
	if !ti.deadline.Equal(tj.deadline) {
		return ti.deadline.Before(tj.deadline)
	}
	return ti.seq < tj.seq
}

func (h *taskHeap) push(t *task) {
	h.items = append(h.items, t)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *taskHeap) pop() *task {
	n := len(h.items)
	t := h.items[0]
	h.items[0] = h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	h.siftDown(0)
	return t
}

func (h *taskHeap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(l, min) {
			min = l
		}
		if r < n && h.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
}

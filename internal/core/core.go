// Package core implements the paper's primary contribution: the four
// sparse matrix-vector multiply variants of Table 1 — row-based and
// column-based matvec, each in masked and unmasked form — over generalized
// semirings, together with the early-exit, structure-only and
// direction-switching machinery that makes push-pull expressible as a
// single GraphBLAS mxv.
//
// Orientation convention: every kernel computes w = G·u for a traversal
// matrix G. The row kernels take CSR(G) and iterate output rows (the pull
// direction); the column kernels take CSC(G) — represented as a CSR whose
// row i holds column i of G — and fetch columns for the nonzeroes of u
// (the push direction). For BFS, G = Aᵀ, so CSR(G) is the CSC of the
// adjacency matrix and CSC(G) its CSR; the matrix layer stores both.
//
// The public graphblas package wraps these kernels in the GraphBLAS object
// model; algorithms build on that. Only tests and the experiment harness
// call core directly.
package core

import "pushpull/internal/par"

// SR is a generalized semiring (D, ⊗, ⊕, I) in the paper's Section 3.2
// sense, plus the two extra elements the optimizations need:
//
//   - Terminal: an annihilator z of the additive monoid (z ⊕ x = z for all
//     x). When present, a row accumulation may stop the moment the
//     accumulator reaches z — the paper's Optimization 3 (early-exit),
//     legal exactly because further ⊕ terms cannot change the result. For
//     the Boolean semiring ({0,1}, AND, OR, 0), z = 1 ("true").
//   - One: the multiplicative identity, used as the pattern value by the
//     structure-only mode (Optimization 5), which treats every stored
//     matrix entry as One and never touches the value arrays.
type SR[T comparable] struct {
	Add      func(T, T) T
	Id       T
	Terminal *T
	Mul      func(T, T) T
	One      T
}

// Saturated reports whether v equals the additive terminal, meaning
// accumulation can stop.
func (s SR[T]) Saturated(v T) bool { return s.Terminal != nil && v == *s.Terminal }

// MergeKind selects how the column (push) kernel solves the multiway-merge
// problem of Section 3.1.
type MergeKind int

const (
	// MergeRadix concatenates gathered lists and radix-sorts them — the
	// paper's GPU strategy (Algorithm 3): O(nnz(m⁺f)·logM) with better
	// constants on wide machines.
	MergeRadix MergeKind = iota
	// MergeHeap is the textbook k-way merge: O(nnz(m⁺f)·log nnz(f)),
	// matching the Table 1 cost expression literally.
	MergeHeap
	// MergeSPA scatters into a dense sparse-accumulator and compacts:
	// O(nnz(m⁺f)) plus a sort of the output; the classic CPU SpMSpV choice.
	MergeSPA
)

// Opts toggles the paper's separable optimizations on a per-call basis so
// the harness can measure each one's contribution (Table 2).
type Opts struct {
	// StructureOnly makes kernels ignore matrix and input values and
	// produce SR.One for every discovered output (Optimization 5). Only
	// sound for semirings where ⊕ is idempotent over {One}, e.g. Boolean
	// OR; in the push phase it downgrades the key-value sort to key-only.
	StructureOnly bool
	// EarlyExit permits the row kernels to stop a row once the accumulator
	// is saturated (Optimization 3). Ignored unless the semiring has a
	// Terminal.
	EarlyExit bool
	// Merge picks the push-phase multiway-merge implementation.
	Merge MergeKind
	// Sequential forces single-threaded execution (used by instrumented
	// runs and tiny inputs).
	Sequential bool
	// Ws is the kernel scratch workspace. Iterative algorithms pin one
	// across their whole run so the steady state allocates nothing; when
	// nil, each kernel call auto-acquires a workspace from the
	// dimension-keyed pool and releases it on return (push-kernel outputs
	// are then copied out of workspace storage before the release, so the
	// no-workspace contract — caller-owned results — is preserved).
	Ws *Workspace
	// Cancel is the cooperative cancellation token the parallel kernels
	// check at chunk-claim boundaries (and the sequential scatter paths
	// check periodically). When it trips mid-kernel the kernel stops
	// scheduling work and returns with partial output; the caller owns the
	// post-call token/context check that decides whether to trust the
	// result. nil never cancels and costs one branch per check.
	Cancel *par.Token
}

// MaskView is the kernel-level mask: a dense presence layout — byte
// bitmap or word-packed bitset — plus the structural-complement flag (the
// paper's scmp), and optionally a precomputed list of rows the effective
// mask allows. Maintaining that list across BFS iterations is how the
// paper amortizes the O(M) cost of locating mask zeroes (Section 3.2's
// SPA-like structure). Exactly one of Bits/Words is set for a non-empty
// mask; Words is the preferred layout (sparse masks materialize into
// pooled word buffers, bitset-format mask vectors hand their words out
// zero-copy) and lets the masked row loop and the structural complement
// operate 64 rows per word.
type MaskView struct {
	// Bits[i] reports whether the mask vector stores a nonzero at i
	// (bitmap/dense-backed masks, zero-copy presence arrays).
	Bits []bool
	// Words is the word-packed equivalent: bit i of Words[i/64]. When
	// non-nil it takes precedence over Bits.
	Words []uint64
	// Scmp complements the test: when true, rows with Bits[i]==false pass.
	Scmp bool
	// List, when non-nil, enumerates exactly the rows that pass the
	// effective test, sorted ascending. Kernels then skip the bitmap scan.
	List []uint32
	// KnownEmpty asserts the mask vector stores no entries (every Bits[i]
	// is false), which the vector layer knows for free from its nvals
	// bookkeeping. Kernels use it for two degenerate-mask fast paths: an
	// empty complemented mask allows everything, so the push kernel skips
	// its post-merge filter entirely (and the pull kernel runs unmasked);
	// an empty uncomplemented mask allows nothing, so the output is empty
	// without touching the matrix.
	KnownEmpty bool
}

// Allows reports whether the effective mask passes row i, probing a single
// bit for word-packed masks.
func (m MaskView) Allows(i int) bool {
	if m.Words != nil {
		return BitsetGet(m.Words, i) != m.Scmp
	}
	return m.Bits[i] != m.Scmp
}

// EffectiveWord returns the 64-row allow pattern at word index wi of a
// word-packed mask, with the structural complement already applied
// (complementing flips the whole word at once). tail must be the
// BitsetTailMask of the output dimension for the last word and ^0
// otherwise, so complemented bits past the end never pass.
func (m MaskView) EffectiveWord(wi int, tail uint64) uint64 {
	w := m.Words[wi]
	if m.Scmp {
		w = ^w
	}
	return w & tail
}

// Counter accumulates the RAM-model cost the paper's Table 1 is stated in:
// random accesses into the matrix, plus bookkeeping for the merge. The
// instrumented (sequential) kernels fill it; parallel kernels do not count.
type Counter struct {
	// MatrixAccesses counts loads of matrix index/value entries.
	MatrixAccesses int64
	// VectorAccesses counts loads of input-vector entries.
	VectorAccesses int64
	// MaskAccesses counts mask-bitmap probes.
	MaskAccesses int64
	// MergeOps counts comparisons/moves spent merging in the push phase.
	MergeOps int64
}

// Add accumulates other into c.
func (c *Counter) Add(other Counter) {
	c.MatrixAccesses += other.MatrixAccesses
	c.VectorAccesses += other.VectorAccesses
	c.MaskAccesses += other.MaskAccesses
	c.MergeOps += other.MergeOps
}

// Total returns the summed access count — the y-axis of the Table 1
// validation experiment.
func (c Counter) Total() int64 {
	return c.MatrixAccesses + c.VectorAccesses + c.MaskAccesses + c.MergeOps
}

package core

import (
	"pushpull/internal/par"
	"pushpull/internal/sparse"
)

// rowGrain is the chunk size for parallelizing over matrix rows. Power-law
// rows are wildly uneven, so chunks stay small and are balanced dynamically
// by par.For.
const rowGrain = 256

// RowMxv computes the unmasked row-based matvec w = G·u (the paper's SpMV):
// for every row i, w(i) = ⊕_j G(i,j) ⊗ u(j). The input u is dense
// (uVal/uPresent); absent entries contribute nothing. Outputs are written
// into caller-allocated w/wPresent (length G.Rows); rows with no
// contributing terms are marked absent.
//
// Cost (Table 1 row 1): every stored entry of G is examined regardless of
// input or output sparsity — O(d·M).
func RowMxv[T comparable](w []T, wPresent []bool, g *sparse.CSR[T], uVal []T, uPresent []bool, sr SR[T], opts Opts) {
	run := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rowAccumulate(w, wPresent, g, i, uVal, uPresent, sr, opts)
		}
	}
	if opts.Sequential {
		run(0, g.Rows)
		return
	}
	par.For(g.Rows, rowGrain, run)
}

// RowMaskedMxv computes the masked row-based matvec w = (G·u) .⊙ m
// (Algorithm 2): only rows the effective mask allows are accumulated, the
// rest are absent. With mask.List supplied the kernel touches exactly
// nnz(effective mask) rows, realizing the O(d·nnz(m)) cost of Table 1 row 2
// with no O(M) scan — which also means rows outside the list are never
// written, so the caller must hand in wPresent already cleared (the vector
// layer reuses one zeroed bitmap across iterations).
func RowMaskedMxv[T comparable](w []T, wPresent []bool, g *sparse.CSR[T], uVal []T, uPresent []bool, mask MaskView, sr SR[T], opts Opts) {
	if mask.List != nil {
		run := func(lo, hi int) {
			for k := lo; k < hi; k++ {
				i := int(mask.List[k])
				wPresent[i] = false
				rowAccumulate(w, wPresent, g, i, uVal, uPresent, sr, opts)
			}
		}
		if opts.Sequential {
			run(0, len(mask.List))
			return
		}
		par.For(len(mask.List), rowGrain, run)
		return
	}
	run := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			wPresent[i] = false
			if !mask.Allows(i) {
				continue
			}
			rowAccumulate(w, wPresent, g, i, uVal, uPresent, sr, opts)
		}
	}
	if opts.Sequential {
		run(0, g.Rows)
		return
	}
	par.For(g.Rows, rowGrain, run)
}

// rowAccumulate folds row i of G against u into w[i]. It implements the
// inner loop of Algorithm 2, including the optional early-exit break and
// the structure-only value bypass.
func rowAccumulate[T comparable](w []T, wPresent []bool, g *sparse.CSR[T], i int, uVal []T, uPresent []bool, sr SR[T], opts Opts) {
	lo, hi := g.Ptr[i], g.Ptr[i+1]
	earlyExit := opts.EarlyExit && sr.Terminal != nil
	if opts.StructureOnly && earlyExit {
		// Pure existence scan — the exact BFS pull inner loop: stop at the
		// first present parent (Algorithm 2 Line 8).
		for k := lo; k < hi; k++ {
			if uPresent[g.Ind[k]] {
				w[i] = *sr.Terminal
				wPresent[i] = true
				return
			}
		}
		return
	}
	acc := sr.Id
	any := false
	for k := lo; k < hi; k++ {
		j := g.Ind[k]
		if !uPresent[j] {
			continue
		}
		if opts.StructureOnly {
			acc = sr.Add(acc, sr.One)
		} else {
			acc = sr.Add(acc, sr.Mul(g.Val[k], uVal[j]))
		}
		any = true
		if earlyExit && acc == *sr.Terminal {
			break
		}
	}
	if any {
		w[i] = acc
		wPresent[i] = true
	} else {
		wPresent[i] = false
	}
}

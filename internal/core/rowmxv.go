package core

import (
	"pushpull/internal/par"
	"pushpull/internal/sparse"
)

// rowGrain is the chunk size for parallelizing over matrix rows. Power-law
// rows are wildly uneven, so chunks stay small and are balanced dynamically
// by par.For.
const rowGrain = 256

// RowMxv computes the unmasked row-based matvec w = G·u (the paper's SpMV):
// for every row i, w(i) = ⊕_j G(i,j) ⊗ u(j). The input is a format-agnostic
// view: bitmap views are probed through their presence bits, dense views
// skip the presence probe entirely (every position is stored), and sparse
// views are materialized into workspace scratch first. Outputs are written
// into caller-allocated w/wPresent (length G.Rows); rows with no
// contributing terms are marked absent. Returns the number of present
// outputs, so callers never rescan the presence bitmap to recount.
//
// Cost (Table 1 row 1): every stored entry of G is examined regardless of
// input or output sparsity — O(d·M).
func RowMxv[T comparable](w []T, wPresent []bool, g *sparse.CSR[T], u VecView[T], sr SR[T], opts Opts) int {
	ws, transient := kernelWorkspace(opts.Ws, g.Rows, g.Cols)
	a := arenaFor[T](ws)
	uVal, uPresent, uWords := pullOperands(a, u)
	rl := &a.row
	rl.ensure()
	rl.stage(w, wPresent, g, uVal, uPresent, uWords, MaskView{}, sr, opts)
	if opts.Sequential {
		rl.run(0, g.Rows)
	} else {
		par.ForCancel(opts.Cancel, g.Rows, rowGrain, rl.run)
	}
	nvals := int(rl.nvals.Load())
	rl.clear()
	if u.Kind == KindSparse {
		scrubPull(a)
	}
	if transient {
		ws.Release()
	}
	return nvals
}

// RowMaskedMxv computes the masked row-based matvec w = (G·u) .⊙ m
// (Algorithm 2): only rows the effective mask allows are accumulated, the
// rest are absent. With mask.List supplied the kernel touches exactly
// nnz(effective mask) rows, realizing the O(d·nnz(m)) cost of Table 1 row 2
// with no O(M) scan — which also means rows outside the list are never
// written, so the caller must hand in wPresent already cleared (the vector
// layer reuses one zeroed bitmap across iterations). Returns the number of
// present outputs.
func RowMaskedMxv[T comparable](w []T, wPresent []bool, g *sparse.CSR[T], u VecView[T], mask MaskView, sr SR[T], opts Opts) int {
	if mask.KnownEmpty && mask.List == nil {
		if !mask.Scmp {
			// Empty mask allows nothing: clear the output and stop.
			for i := range wPresent {
				wPresent[i] = false
			}
			return 0
		}
		// Empty complement allows everything: identical write pattern to
		// the unmasked kernel, without the per-row bitmap probe.
		return RowMxv(w, wPresent, g, u, sr, opts)
	}
	ws, transient := kernelWorkspace(opts.Ws, g.Rows, g.Cols)
	a := arenaFor[T](ws)
	uVal, uPresent, uWords := pullOperands(a, u)
	rl := &a.row
	rl.ensure()
	rl.stage(w, wPresent, g, uVal, uPresent, uWords, mask, sr, opts)
	switch {
	case mask.List != nil:
		if opts.Sequential {
			rl.runList(0, len(mask.List))
		} else {
			par.ForCancel(opts.Cancel, len(mask.List), rowGrain, rl.runList)
		}
	case mask.Words != nil:
		// Word-packed mask: the scan tests (and, under scmp, complements)
		// 64 rows per word instead of one element at a time.
		if opts.Sequential {
			rl.runMaskWords(0, g.Rows)
		} else {
			par.ForCancel(opts.Cancel, g.Rows, rowGrain, rl.runMaskWords)
		}
	default:
		if opts.Sequential {
			rl.runMask(0, g.Rows)
		} else {
			par.ForCancel(opts.Cancel, g.Rows, rowGrain, rl.runMask)
		}
	}
	nvals := int(rl.nvals.Load())
	rl.clear()
	if u.Kind == KindSparse {
		scrubPull(a)
	}
	if transient {
		ws.Release()
	}
	return nvals
}

// kernelWorkspace resolves the workspace a kernel call runs against:
// the caller's pinned one, or a transient auto-acquired from the
// dimension-keyed pool (returned flag tells the kernel to release it).
func kernelWorkspace(ws *Workspace, rows, cols int) (*Workspace, bool) {
	if ws != nil {
		return ws, false
	}
	return AcquireWorkspace(rows, cols), true
}

// rowAccumulate folds row i of G against u into w[i]. It implements the
// inner loop of Algorithm 2, including the optional early-exit break, the
// structure-only value bypass, and the dense-input fast path (uPresent and
// uWords both nil means every position is stored, so the presence probe
// disappears). A non-nil uWords selects single-bit probes into the
// word-packed presence bitset — the 8×-smaller visited-set layout the
// masked pull's complemented probe runs against. It reports whether w[i]
// was written present, so chunk bodies can count output nonzeroes as they
// go.
func rowAccumulate[T comparable](w []T, wPresent []bool, g *sparse.CSR[T], i int, uVal []T, uPresent []bool, uWords []uint64, sr SR[T], opts Opts) bool {
	lo, hi := g.Ptr[i], g.Ptr[i+1]
	earlyExit := opts.EarlyExit && sr.Terminal != nil
	if uWords != nil {
		if opts.StructureOnly && earlyExit {
			// Pure existence scan over packed bits — the BFS pull inner
			// loop against a bitset visited set: stop at the first present
			// parent.
			for k := lo; k < hi; k++ {
				if BitsetGet(uWords, int(g.Ind[k])) {
					w[i] = *sr.Terminal
					wPresent[i] = true
					return true
				}
			}
			return false
		}
		acc := sr.Id
		any := false
		for k := lo; k < hi; k++ {
			j := g.Ind[k]
			if !BitsetGet(uWords, int(j)) {
				continue
			}
			if opts.StructureOnly {
				acc = sr.Add(acc, sr.One)
			} else {
				acc = sr.Add(acc, sr.Mul(g.Val[k], uVal[j]))
			}
			any = true
			if earlyExit && acc == *sr.Terminal {
				break
			}
		}
		if any {
			w[i] = acc
			wPresent[i] = true
		} else {
			wPresent[i] = false
		}
		return any
	}
	if uPresent == nil {
		// Dense input: no presence probes, and any nonempty row produces an
		// output.
		if hi == lo {
			wPresent[i] = false
			return false
		}
		if opts.StructureOnly && earlyExit {
			w[i] = *sr.Terminal
			wPresent[i] = true
			return true
		}
		acc := sr.Id
		for k := lo; k < hi; k++ {
			if opts.StructureOnly {
				acc = sr.Add(acc, sr.One)
			} else {
				acc = sr.Add(acc, sr.Mul(g.Val[k], uVal[g.Ind[k]]))
			}
			if earlyExit && acc == *sr.Terminal {
				break
			}
		}
		w[i] = acc
		wPresent[i] = true
		return true
	}
	if opts.StructureOnly && earlyExit {
		// Pure existence scan — the exact BFS pull inner loop: stop at the
		// first present parent (Algorithm 2 Line 8).
		for k := lo; k < hi; k++ {
			if uPresent[g.Ind[k]] {
				w[i] = *sr.Terminal
				wPresent[i] = true
				return true
			}
		}
		return false
	}
	acc := sr.Id
	any := false
	for k := lo; k < hi; k++ {
		j := g.Ind[k]
		if !uPresent[j] {
			continue
		}
		if opts.StructureOnly {
			acc = sr.Add(acc, sr.One)
		} else {
			acc = sr.Add(acc, sr.Mul(g.Val[k], uVal[j]))
		}
		any = true
		if earlyExit && acc == *sr.Terminal {
			break
		}
	}
	if any {
		w[i] = acc
		wPresent[i] = true
	} else {
		wPresent[i] = false
	}
	return any
}

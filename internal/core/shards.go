package core

import "math"

// This file implements range sharding of a matvec's output index space:
// contiguous, edge-balanced destination ranges, each of which gets its own
// push/pull direction decision. The motivation is the paper's own density
// argument turned local — on skewed graphs a mid-traversal frontier is
// dense around the hubs and sparse in the tail, so one whole-operation
// direction is wrong for part of every such frontier. Shards make the
// decision per destination range: pull the hub shards (their rows are
// cheap to scan and mostly allowed), push the tail (few frontier edges
// land there), concurrently, in one operation.
//
// Geometry. Boundaries come off the pull-side CSR's Ptr prefix sums, so
// every shard holds roughly the same number of *in-edges* (edges whose
// destination lies in the shard) — the quantity both kernels' work scales
// with. Pull shards simply scan their row range. Push shards need the
// transposed view: for a destination-sharded scatter, shard s must gather,
// for each frontier column j, exactly the CSC entries of row j whose
// destination falls in [Bounds[s], Bounds[s+1]). CSC rows store
// destinations sorted ascending, so that subset is a contiguous subrange
// of the row, and one flat array of precomputed cut offsets (Cuts) locates
// it in O(1) per (shard, column) — no storage is rebuilt, the shards share
// the matrix's CSC.

// ShardBounds splits the vertex range [0, n) into at most want contiguous
// shards of roughly equal edge count, where ptr is the CSR row-pointer
// prefix-sum array (len n+1; ptr[v] = edges before vertex v). The returned
// bounds are strictly increasing with bounds[0] = 0 and bounds[len-1] = n:
// shard s owns [bounds[s], bounds[s+1]). want is clamped to [1, n] (every
// shard owns at least one vertex), so n < want degrades to n singleton
// shards; an all-zero ptr (empty graph) degrades to equal vertex counts.
func ShardBounds(ptr []int, n, want int) []int {
	if n < 0 {
		n = 0
	}
	if want > n {
		want = n
	}
	if want < 1 {
		want = 1
	}
	bounds := make([]int, want+1)
	if n == 0 {
		return bounds // [0, 0]: one empty shard
	}
	total := ptr[n]
	for k := 1; k < want; k++ {
		// Smallest v with ptr[v] >= k/want of the edges, then clamped so
		// bounds stay strictly increasing and every remaining shard keeps
		// at least one vertex.
		v := lowerBoundInt(ptr[:n+1], total/want*k+total%want*k/want)
		if v < bounds[k-1]+1 {
			v = bounds[k-1] + 1
		}
		if hi := n - (want - k); v > hi {
			v = hi
		}
		bounds[k] = v
	}
	bounds[want] = n
	return bounds
}

// ShardSet is the per-(matrix, shard count) geometry the sharded matvec
// runs against: the destination-range boundaries, the per-shard in-edge
// totals, and the CSC cut offsets that make each shard's scatter
// range-local. Built once per matrix orientation and cached (the
// graphblas.Matrix layer owns the cache); immutable afterwards, so
// concurrent operations may share one.
type ShardSet struct {
	// Bounds holds the destination-range boundaries (see ShardBounds);
	// shard s owns output rows [Bounds[s], Bounds[s+1]).
	Bounds []int
	// InEdges[s] is the number of matrix entries whose destination lies in
	// shard s — the pull side's exact work term, read off the row Ptr.
	InEdges []int
	// Cuts is the flat inDim×(Shards()+1) cut-offset table, stored
	// column-major: entry j*(Shards()+1)+s is the offset into the CSC's Ind
	// of the first entry of CSC row j with destination ≥ Bounds[s]. Entry
	// s=0 reproduces cscPtr[j], entry s=Shards() reproduces cscPtr[j+1];
	// shard s's slice of column j is Ind[cut(j,s):cut(j,s+1)]. The
	// column-major layout is a locality decision: both the per-shard planner
	// (summing a shard run's frontier edges) and the push kernel (bounding a
	// column's gather) read several consecutive s entries of one column per
	// frontier index, and packing a column's Shards()+1 offsets onto one or
	// two cache lines turns what would be per-(shard, column) random misses
	// into one miss per column. Offsets are int32, so a ShardSet exists only
	// for matrices with nnz ≤ MaxInt32 (BuildShardSet returns nil past
	// that; callers fall back to the unsharded kernel).
	Cuts []int32

	inDim int
}

// Shards returns the number of shards.
func (ss *ShardSet) Shards() int { return len(ss.Bounds) - 1 }

// InDim returns the input dimension the cut table was built for.
func (ss *ShardSet) InDim() int { return ss.inDim }

// cutSpan returns the CSC Ind offsets bounding column j's entries whose
// destinations fall in shards [s0, s1): the contiguous gather subrange is
// Ind[lo:hi]. One call costs one or two adjacent loads (see Cuts).
func (ss *ShardSet) cutSpan(j, s0, s1 int) (lo, hi int32) {
	base := j * len(ss.Bounds)
	return ss.Cuts[base+s0], ss.Cuts[base+s1]
}

// BuildShardSet builds the shard geometry for one matrix orientation:
// rowPtr is the pull-side CSR's pointer array (len outDim+1), cscPtr and
// cscInd the push-side CSC's pointers and (destination-sorted) indices,
// and want the requested shard count. Returns nil when the output
// dimension is zero or nnz exceeds MaxInt32 (the int32 cut table cannot
// address it) — callers treat nil as "run unsharded".
func BuildShardSet(rowPtr []int, cscPtr []int, cscInd []uint32, want int) *ShardSet {
	outDim := len(rowPtr) - 1
	inDim := len(cscPtr) - 1
	if outDim <= 0 || len(cscInd) > math.MaxInt32 {
		return nil
	}
	bounds := ShardBounds(rowPtr, outDim, want)
	S := len(bounds) - 1
	ss := &ShardSet{Bounds: bounds, inDim: inDim}
	ss.InEdges = make([]int, S)
	for s := 0; s < S; s++ {
		ss.InEdges[s] = rowPtr[bounds[s+1]] - rowPtr[bounds[s]]
	}
	// One pass per CSC row: its destinations are sorted ascending, so
	// walking them against the ascending bounds yields every cut in
	// O(nnz + S·inDim) total.
	ss.Cuts = make([]int32, inDim*(S+1))
	for j := 0; j < inDim; j++ {
		base := j * (S + 1)
		e, hi := cscPtr[j], cscPtr[j+1]
		ss.Cuts[base] = int32(e)
		for s := 1; s <= S; s++ {
			b := uint32(bounds[s])
			for e < hi && cscInd[e] < b {
				e++
			}
			ss.Cuts[base+s] = int32(e)
		}
	}
	return ss
}

// shardFlipMargin is the multiplicative hysteresis on per-shard direction
// flips: a challenger direction's corrected cost must undercut the
// incumbent's by this factor before the shard switches. Wide enough that
// estimate noise and the corrector's exploration decay cannot make a
// near-tied shard oscillate (each oscillation pays the slower direction's
// real cost), narrow enough that a genuinely mispriced incumbent — a cold
// first measurement, a frontier regime change — is overturned within a few
// corrector updates.
const shardFlipMargin = 1.1

// ShardPlan is one shard's direction decision plus its evidence and, after
// the kernel ran, its measured time — the per-shard analogue of Plan,
// surfaced through Plan.Shards. The backing array is workspace-owned and
// overwritten by the next sharded operation; copy entries to retain them.
type ShardPlan struct {
	// Lo, Hi delimit the shard's destination range [Lo, Hi).
	Lo, Hi int
	// Dir is the shard's chosen kernel orientation.
	Dir Direction
	// PushCost and PullCost are the model's estimates for this shard alone
	// (same currency as Plan.PushCost: edge touches under the unit model,
	// nanoseconds under a calibrated one, both including the per-shard
	// stitch overhead when calibrated).
	PushCost, PullCost float64
	// PredictedNs is the chosen direction's uncorrected ns estimate plus
	// the stitch overhead (zero under the unit model); MeasuredNs is the
	// shard body's measured wall-clock, filled in by the kernel on timed
	// runs.
	PredictedNs, MeasuredNs float64
	// Edges is the shard-local frontier edge count the push estimate used:
	// exact (summed off the cut table) for sparse frontiers, the
	// density-scaled estimate otherwise.
	Edges float64
	// MaskAllowFrac is the shard-local effective mask density the pull
	// estimate was discounted by.
	MaskAllowFrac float64
	// InKind is the frontier storage kind the decision priced pull probes
	// by (the whole operation's input kind — shards share one frontier).
	InKind VecKind
	// Rule names the per-shard decision path (forced, switchpoint,
	// cost-model).
	Rule string
}

// PlanShards runs one direction decision per shard, refining the
// whole-operation PlanInput with shard-local evidence: the shard's row
// count and in-edge degree sum, its exact frontier edge count (summed off
// the cut table when frontier lists the sparse input's indices; estimated
// from the global frontier density otherwise), and its local mask density
// (popcounted over word masks, bisected over allow-lists, the global
// fraction otherwise). Each shard's estimate is corrected by its own
// corrector key (Corrector.Shard), so a pushed shard's feedback never
// contaminates a pulled shard's estimate. Decisions carry flip hysteresis
// against the previous entry in plans (see shardFlipMargin): callers that
// reuse the plans scratch across iterations — the workspace-pinned steady
// state — get sticky per-shard directions; callers passing fresh scratch
// get stateless decisions. Results are written into plans, which must have
// length ss.Shards().
func PlanShards(in PlanInput, ss *ShardSet, frontier []uint32, mask MaskView, masked bool, plans []ShardPlan) {
	density := 0.0
	if in.N > 0 {
		density = float64(in.NNZ) / float64(in.N)
	}
	stitch := 0.0
	if in.Model.Calibrated() {
		stitch = in.Model.StitchNs
	}
	if frontier != nil {
		// Exact per-shard frontier edge counts in one pass over the frontier:
		// each column's Shards()+1 cut offsets are contiguous (see Cuts), so
		// the whole column differences out of one or two cache lines instead
		// of one random probe pair per (shard, column). Accumulated into the
		// plan entries' Edges fields, which double as the scratch here.
		S := len(plans)
		stride := S + 1
		for s := range plans {
			plans[s].Edges = 0
		}
		for _, j := range frontier {
			base := int(j) * stride
			prev := ss.Cuts[base]
			for s := 0; s < S; s++ {
				next := ss.Cuts[base+s+1]
				plans[s].Edges += float64(next - prev)
				prev = next
			}
		}
	}
	for s := range plans {
		lo, hi := ss.Bounds[s], ss.Bounds[s+1]
		rows := hi - lo
		sub := in
		sub.OutRows = rows
		if rows > 0 {
			sub.AvgDeg = float64(ss.InEdges[s]) / float64(rows)
		} else {
			sub.AvgDeg = 0
		}
		if frontier != nil {
			sub.PushEdges = plans[s].Edges
		} else {
			sub.PushEdges = density * float64(ss.InEdges[s])
		}
		if masked {
			sub.MaskAllowFrac = shardAllowFrac(mask, lo, hi, in.MaskAllowFrac)
		}
		sub.Correct = in.Correct.Shard(s)
		p := DecideDirection(sub, nil)
		// Flip hysteresis against the previous call's decision for this
		// shard, read out of the workspace-persisted plan entry (validated
		// by geometry so a scratch slice reused across shard counts or
		// matrices never fakes an incumbent). The corrector's decay makes
		// a banned direction's corrected cost creep back toward its raw
		// estimate; without a flip margin, two directions priced within
		// noise of each other would alternate every few calls, paying the
		// worse one's real cost half the time. The margin turns the creep
		// into a bounded experiment: a challenger must undercut the
		// incumbent decisively, so near-ties stick with whatever the shard
		// last measured.
		if in.Force == nil && plans[s].Rule != "" && plans[s].Lo == lo && plans[s].Hi == hi &&
			p.Dir != plans[s].Dir {
			chal, inc := p.PushCost, p.PullCost
			if p.Dir == Pull {
				chal, inc = p.PullCost, p.PushCost
			}
			if chal*shardFlipMargin > inc {
				prev := plans[s].Dir
				p.Dir = prev
				p.Rule = RuleSticky
				if in.Model.Calibrated() {
					// PredictedNs must describe the direction actually run,
					// as a raw (uncorrected) estimate — divide the shard
					// corrector's scale back out so Observe's feedback ratio
					// measures the model, not the correction.
					if prev == Push {
						p.PredictedNs = p.PushCost / sub.Correct.Scale(Push)
					} else {
						p.PredictedNs = p.PullCost / sub.Correct.Scale(Pull)
					}
				}
			}
		}
		plans[s] = ShardPlan{
			Lo: lo, Hi: hi,
			Dir:           p.Dir,
			PushCost:      p.PushCost + stitch,
			PullCost:      p.PullCost + stitch,
			PredictedNs:   p.PredictedNs,
			MeasuredNs:    0,
			Edges:         sub.PushEdges,
			MaskAllowFrac: p.MaskAllowFrac,
			InKind:        in.InKind,
			Rule:          p.Rule,
		}
		if p.PredictedNs > 0 {
			plans[s].PredictedNs += stitch
		}
	}
}

// shardAllowFrac returns the effective mask density over output rows
// [lo, hi): exact for allow-lists (two bisections) and word masks (a
// range popcount), the global fraction for byte bitmaps (an O(rows) scan
// per shard would cost more than the decision is worth).
func shardAllowFrac(mask MaskView, lo, hi int, global float64) float64 {
	rows := hi - lo
	if rows <= 0 {
		return global
	}
	switch {
	case mask.List != nil:
		k0 := lowerBoundU32(mask.List, uint32(lo))
		k1 := lowerBoundU32(mask.List, uint32(hi))
		return float64(k1-k0) / float64(rows)
	case mask.Words != nil:
		f := float64(BitsetCountRange(mask.Words, lo, hi)) / float64(rows)
		if mask.Scmp {
			f = 1 - f
		}
		return f
	default:
		return global
	}
}

// lowerBoundU32 returns the smallest index k with a[k] >= x (len(a) when
// none), for sorted a. Hand-rolled so planning stays closure-free.
func lowerBoundU32(a []uint32, x uint32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBoundInt is lowerBoundU32 over a sorted []int.
func lowerBoundInt(a []int, x int) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

package core

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"pushpull/internal/merge"
	"pushpull/internal/pool"
	"pushpull/internal/sparse"
)

// Workspace is the kernels' reusable scratch arena — the subsystem that
// makes the push/pull matvec stack allocation-free in steady state. It owns
// every transient the four Table 1 kernel variants need: the push kernel's
// lengths/keys/vals gather buffers, the radix sort's ping-pong buffers and
// per-worker histograms (via merge.Scratch), the SPA accumulator arrays,
// the heap-merge output buffers, the fused-BFS per-worker frontier lists,
// and — crucially for the parallel paths — the *pinned loop bodies*: func
// values created once and re-aimed at each call's operands, so dispatching
// through par never allocates a closure.
//
// The handle itself is type-erased; per-element-type state lives in arenas
// keyed by the element type's zero value, so one Workspace serves a BFS
// (bool), a PageRank (float64) and a parent BFS (uint32) alike.
//
// Lifecycle: either pin one for a whole algorithm run
// (AcquireWorkspace/Release around the iteration loop — the pattern every
// algorithm in pushpull/algorithms follows), or pass Opts.Ws == nil and let
// each kernel call auto-acquire from the dimension-keyed sync.Pool. Pooled
// reuse means steady-state calls hit warm buffers either way; pinning
// additionally keeps results stable across the pool (kernel outputs may
// alias workspace storage — see ColMxv) and skips the per-call pool
// round-trip.
//
// A Workspace is not safe for concurrent use: it serves one kernel call at
// a time. Concurrent algorithm runs should each pin their own.
type Workspace struct {
	rows, cols int
	tainted    bool
	arenas     map[any]any // zero value of T → *arena[T]
}

// Taint marks the workspace as abandoned mid-kernel — a panic unwound
// through it, so arena invariants (the SPA's all-false presence array, the
// touched lists, staged loop operands) may be violated. A tainted workspace
// is dropped on Release instead of returning to the pool: losing one warm
// arena is the price of guaranteeing no poisoned scratch resurfaces under a
// later, innocent call.
func (w *Workspace) Taint() {
	if w != nil {
		w.tainted = true
	}
}

// Dims reports the matrix dimensions the workspace was sized for.
func (w *Workspace) Dims() (rows, cols int) { return w.rows, w.cols }

// NewWorkspace returns an unpooled workspace for a rows×cols operator.
// Buffers are grown lazily to the high-water mark of the calls they serve.
func NewWorkspace(rows, cols int) *Workspace {
	return &Workspace{rows: rows, cols: cols}
}

// wsPool keys workspaces by operator shape (see internal/pool).
var wsPool = pool.NewDim(NewWorkspace)

// AcquireWorkspace takes a workspace for a rows×cols operator from the
// dimension-keyed pool, creating one if the pool is dry. Pair with Release.
func AcquireWorkspace(rows, cols int) *Workspace {
	return wsPool.Acquire(rows, cols)
}

// Release returns the workspace to its dimension pool (workspaces created
// with NewWorkspace donate their warm buffers the same way). The caller
// must not use it — or any kernel output that aliased its storage —
// afterwards. A tainted workspace (see Taint) is discarded rather than
// pooled.
func (w *Workspace) Release() {
	if w == nil || w.tainted {
		return
	}
	wsPool.Put(w.rows, w.cols, w)
}

// arenaFor returns ws's arena for element type T, creating it on first use.
// The map key is T's zero value boxed as any; for the small scalar types
// the kernels run over, boxing a zero hits the runtime's static cache and
// does not allocate.
func arenaFor[T comparable](ws *Workspace) *arena[T] {
	if ws == nil {
		return nil
	}
	var zero T
	key := any(zero)
	if a, ok := ws.arenas[key]; ok {
		return a.(*arena[T])
	}
	a := &arena[T]{}
	if ws.arenas == nil {
		ws.arenas = make(map[any]any, 2)
	}
	ws.arenas[key] = a
	return a
}

// arena is the per-element-type scratch block. Buffer fields persist and
// grow to the high-water mark; the embedded loop-state structs additionally
// pin the par loop bodies so parallel dispatch is closure-allocation-free.
type arena[T comparable] struct {
	ms merge.Scratch[T] // radix ping-pong buffers + histograms + pass bodies

	lengths []int    // push: per-column lengths, then exclusive-scanned offsets
	keys    []uint32 // push: gathered key concatenation (radix-sorted in place)
	vals    []T      // push: gathered value concatenation
	outInd  []uint32 // heap merge / SPA output indices
	outVal  []T      // heap merge / SPA / structure-only output values

	acc     []T      // SPA accumulator (cols-sized)
	seen    []bool   // SPA presence (cols-sized, kept all-false between calls)
	touched []uint32 // SPA touched-index list

	// View-materialization scratch: a sparse view handed to a pull kernel
	// scatters into pullVal/pullPresent (scrubbed via pullTouched); a
	// bitmap/dense view handed to a push kernel compacts into
	// pushInd/pushVal.
	pullVal     []T
	pullPresent []bool
	pullTouched []uint32
	pushInd     []uint32
	pushVal     []T

	row   rowLoop[T]
	col   colLoop[T]
	fused fusedLoop[T]
	shard shardLoop[T]

	spaCols int        // dimension the mxm scratch pool was built for
	spaPool *sync.Pool // per-worker SpGEMM accumulators, persistent across calls
}

// grow returns buf resized to n, reallocating only past the high-water
// mark.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// rowLoop pins the row (pull) kernels' parallel bodies. Operands are staged
// in the struct before dispatch and cleared after, so the pooled workspace
// never retains caller memory between calls.
type rowLoop[T comparable] struct {
	w        []T
	wPresent []bool
	g        *sparse.CSR[T]
	uVal     []T
	uPresent []bool
	uWords   []uint64
	mask     MaskView
	sr       SR[T]
	opts     Opts
	nvals    atomic.Int64

	run          func(lo, hi int) // unmasked: every row
	runMask      func(lo, hi int) // masked: bitmap scan
	runMaskWords func(lo, hi int) // masked: word-packed bitset scan
	runList      func(lo, hi int) // masked: amortized allow-list
}

func (rl *rowLoop[T]) stage(w []T, wPresent []bool, g *sparse.CSR[T], uVal []T, uPresent []bool, uWords []uint64, mask MaskView, sr SR[T], opts Opts) {
	rl.w, rl.wPresent, rl.g = w, wPresent, g
	rl.uVal, rl.uPresent, rl.uWords = uVal, uPresent, uWords
	rl.mask, rl.sr, rl.opts = mask, sr, opts
	rl.nvals.Store(0)
}

func (rl *rowLoop[T]) clear() {
	rl.w, rl.wPresent, rl.g = nil, nil, nil
	rl.uVal, rl.uPresent, rl.uWords = nil, nil, nil
	rl.mask = MaskView{}
	rl.sr = SR[T]{}
}

func (rl *rowLoop[T]) ensure() {
	if rl.run != nil {
		return
	}
	// Each body hoists the staged operands into locals once per chunk so
	// the per-row loop runs on registers, not through the struct pointer.
	rl.run = func(lo, hi int) {
		w, wPresent, g := rl.w, rl.wPresent, rl.g
		uVal, uPresent, uWords, sr, opts := rl.uVal, rl.uPresent, rl.uWords, rl.sr, rl.opts
		c := 0
		for i := lo; i < hi; i++ {
			if rowAccumulate(w, wPresent, g, i, uVal, uPresent, uWords, sr, opts) {
				c++
			}
		}
		rl.nvals.Add(int64(c))
	}
	rl.runMask = func(lo, hi int) {
		w, wPresent, g := rl.w, rl.wPresent, rl.g
		uVal, uPresent, uWords, sr, opts := rl.uVal, rl.uPresent, rl.uWords, rl.sr, rl.opts
		mask := rl.mask
		c := 0
		for i := lo; i < hi; i++ {
			wPresent[i] = false
			if !mask.Allows(i) {
				continue
			}
			if rowAccumulate(w, wPresent, g, i, uVal, uPresent, uWords, sr, opts) {
				c++
			}
		}
		rl.nvals.Add(int64(c))
	}
	rl.runMaskWords = func(lo, hi int) {
		w, wPresent, g := rl.w, rl.wPresent, rl.g
		uVal, uPresent, uWords, sr, opts := rl.uVal, rl.uPresent, rl.uWords, rl.sr, rl.opts
		words, scmp := rl.mask.Words, rl.mask.Scmp
		for i := lo; i < hi; i++ {
			wPresent[i] = false
		}
		c := 0
		// One mask word covers 64 rows: the structural complement flips the
		// whole word, allowed rows fall out by trailing-zero enumeration,
		// and a fully disallowed word skips 64 rows on one load.
		for base := lo &^ 63; base < hi; base += 64 {
			mw := words[base>>6]
			if scmp {
				mw = ^mw
			}
			if base < lo {
				mw &^= (1 << uint(lo-base)) - 1 // rows below this chunk
			}
			if base+64 > hi {
				mw &= (1 << uint(hi-base)) - 1 // rows past this chunk (and past n)
			}
			for mw != 0 {
				i := base + bits.TrailingZeros64(mw)
				mw &= mw - 1
				if rowAccumulate(w, wPresent, g, i, uVal, uPresent, uWords, sr, opts) {
					c++
				}
			}
		}
		rl.nvals.Add(int64(c))
	}
	rl.runList = func(lo, hi int) {
		w, wPresent, g := rl.w, rl.wPresent, rl.g
		uVal, uPresent, uWords, sr, opts := rl.uVal, rl.uPresent, rl.uWords, rl.sr, rl.opts
		list := rl.mask.List
		c := 0
		for k := lo; k < hi; k++ {
			i := int(list[k])
			wPresent[i] = false
			if rowAccumulate(w, wPresent, g, i, uVal, uPresent, uWords, sr, opts) {
				c++
			}
		}
		rl.nvals.Add(int64(c))
	}
}

// colLoop pins the column (push) kernel's size and gather bodies.
type colLoop[T comparable] struct {
	lengths []int
	cscG    *sparse.CSR[T]
	uInd    []uint32
	uVal    []T
	keys    []uint32
	vals    []T
	sr      SR[T]

	size        func(lo, hi int)
	gatherKeys  func(lo, hi int)
	gatherPairs func(lo, hi int)
}

func (cl *colLoop[T]) clear() {
	cl.cscG, cl.uInd, cl.uVal = nil, nil, nil
	cl.keys, cl.vals, cl.lengths = nil, nil, nil
	cl.sr = SR[T]{}
}

func (cl *colLoop[T]) ensure() {
	if cl.size != nil {
		return
	}
	cl.size = func(lo, hi int) {
		lengths, cscG, uInd := cl.lengths, cl.cscG, cl.uInd
		for i := lo; i < hi; i++ {
			lengths[i] = cscG.RowLen(int(uInd[i]))
		}
	}
	cl.gatherKeys = func(lo, hi int) {
		lengths, cscG, uInd, keys := cl.lengths, cl.cscG, cl.uInd, cl.keys
		for i := lo; i < hi; i++ {
			ind, _ := cscG.RowSpan(int(uInd[i]))
			copy(keys[lengths[i]:], ind)
		}
	}
	cl.gatherPairs = func(lo, hi int) {
		lengths, cscG, uInd, keys := cl.lengths, cl.cscG, cl.uInd, cl.keys
		uVal, vals, mul := cl.uVal, cl.vals, cl.sr.Mul
		for i := lo; i < hi; i++ {
			ind, val := cscG.RowSpan(int(uInd[i]))
			off := lengths[i]
			x := uVal[i]
			for j := range ind {
				keys[off+j] = ind[j]
				vals[off+j] = mul(val[j], x)
			}
		}
	}
}

// fusedLoop pins the fused pull step's span body and owns the fused BFS's
// per-worker output/keep lists plus the ping-pong frontier buffers (two, so
// a step may read the previous frontier while building the next).
type fusedLoop[T comparable] struct {
	g         *sparse.CSR[T]
	visited   []uint64
	unvisited []uint32
	depths    []int32
	depth     int32
	outs      [][]uint32
	keeps     [][]uint32

	body func(w, lo, hi int)

	frontA, frontB []uint32
	useB           bool
}

func (fl *fusedLoop[T]) clear() {
	fl.g, fl.visited, fl.unvisited, fl.depths = nil, nil, nil, nil
}

// nextFront returns the frontier buffer to fill this step, alternating so
// the previous step's returned frontier stays intact.
func (fl *fusedLoop[T]) nextFront() []uint32 {
	fl.useB = !fl.useB
	if fl.useB {
		return fl.frontB[:0]
	}
	return fl.frontA[:0]
}

func (fl *fusedLoop[T]) storeFront(f []uint32) {
	if fl.useB {
		fl.frontB = f
	} else {
		fl.frontA = f
	}
}

func (fl *fusedLoop[T]) ensure() {
	if fl.body != nil {
		return
	}
	fl.body = func(w, lo, hi int) {
		g, visited, unvisited, depths, depth := fl.g, fl.visited, fl.unvisited, fl.depths, fl.depth
		out := fl.outs[w][:0]
		keep := fl.keeps[w][:0]
		for i := lo; i < hi; i++ {
			v := unvisited[i]
			if BitsetGet(visited, int(v)) {
				continue // stale entry left by a skipped push-side compaction
			}
			ind := g.Ind[g.Ptr[v]:g.Ptr[v+1]]
			found := false
			for _, u := range ind {
				if BitsetGet(visited, int(u)) {
					found = true
					break // early exit: first parent suffices
				}
			}
			if found {
				depths[v] = depth
				out = append(out, v)
			} else {
				keep = append(keep, v)
			}
		}
		fl.outs[w] = out
		fl.keeps[w] = keep
	}
}

// spaScratchPool returns the arena's persistent pool of per-worker SpGEMM
// accumulators for a cols-wide output, rebuilding it if the shape changed.
func (a *arena[T]) spaScratchPool(cols int) *sync.Pool {
	if a.spaPool == nil || a.spaCols != cols {
		a.spaCols = cols
		a.spaPool = &sync.Pool{New: func() any {
			return &spaScratch[T]{
				acc:     make([]T, cols),
				allowed: make([]bool, cols),
				hit:     make([]bool, cols),
			}
		}}
	}
	return a.spaPool
}

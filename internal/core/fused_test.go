package core

import (
	"math/rand"
	"testing"

	"pushpull/internal/sparse"
)

// fusedRef runs a plain queue BFS on the CSR for comparison.
func fusedRef(g *sparse.CSR[bool], source int) []int32 {
	depths := make([]int32, g.Rows)
	for i := range depths {
		depths[i] = -1
	}
	depths[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		ind, _ := g.RowSpan(u)
		for _, v := range ind {
			if depths[v] < 0 {
				depths[v] = depths[u] + 1
				queue = append(queue, int(v))
			}
		}
	}
	return depths
}

func randSymCSR(rng *rand.Rand, n int, p float64) *sparse.CSR[bool] {
	var r, c []uint32
	var v []bool
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				r = append(r, uint32(i), uint32(j))
				c = append(c, uint32(j), uint32(i))
				v = append(v, true, true)
			}
		}
	}
	g, err := sparse.FromCOO(n, n, r, c, v, func(a, b bool) bool { return a })
	if err != nil {
		panic(err)
	}
	return g
}

func TestFusedStepsBuildCorrectBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(100)
		g := randSymCSR(rng, n, 0.06)
		src := rng.Intn(n)
		want := fusedRef(g, src)

		// Alternate push and pull levels to exercise both kernels.
		depths := make([]int32, n)
		for i := range depths {
			depths[i] = -1
		}
		depths[src] = 0
		visited := make([]uint64, BitsetWords(n))
		BitsetSet(visited, src)
		unvisited := make([]uint32, 0, n-1)
		for v := 0; v < n; v++ {
			if v != src {
				unvisited = append(unvisited, uint32(v))
			}
		}
		frontier := []uint32{uint32(src)}
		for depth := int32(1); len(frontier) > 0; depth++ {
			if depth%2 == 1 {
				frontier = FusedPushStep(g, visited, frontier, depths, depth, nil)
				// Compact the unvisited list so the next pull is exact.
				w := 0
				for _, v := range unvisited {
					if !BitsetGet(visited, int(v)) {
						unvisited[w] = v
						w++
					}
				}
				unvisited = unvisited[:w]
			} else {
				frontier, unvisited = FusedPullStep(g, visited, unvisited, depths, depth, nil)
			}
		}
		for v := range want {
			if depths[v] != want[v] {
				t.Fatalf("trial %d: depth[%d]=%d want %d", trial, v, depths[v], want[v])
			}
		}
	}
}

func TestFusedPullStepSkipsStaleEntries(t *testing.T) {
	g := randSymCSR(rand.New(rand.NewSource(121)), 20, 0.3)
	visited := make([]uint64, BitsetWords(20))
	depths := make([]int32, 20)
	for i := range depths {
		depths[i] = -1
	}
	BitsetSet(visited, 0)
	depths[0] = 0
	BitsetSet(visited, 5)
	depths[5] = 1 // already visited but still on the stale list
	unvisited := []uint32{5}
	for v := 1; v < 20; v++ {
		if v != 5 {
			unvisited = append(unvisited, uint32(v))
		}
	}
	_, _ = FusedPullStep(g, visited, unvisited, depths, 2, nil)
	if depths[5] != 1 {
		t.Fatalf("stale entry overwritten: depth[5]=%d", depths[5])
	}
}

func TestSequentialColumnKernelsMatchParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	sr := SR[float64]{
		Add: func(a, b float64) float64 { return a + b },
		Id:  0,
		Mul: func(a, b float64) float64 { return a * b },
		One: 1,
	}
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(60)
		gb := randSymCSR(rng, n, 0.15)
		g := sparse.Scale(gb, func(bool) float64 { return 1.5 })
		var uInd []uint32
		var uVal []float64
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				uInd = append(uInd, uint32(i))
				uVal = append(uVal, rng.Float64())
			}
		}
		for _, mk := range []MergeKind{MergeRadix, MergeHeap, MergeSPA} {
			pi, pv := ColMxv(g, SparseVec(n, uInd, uVal), sr, Opts{Merge: mk})
			si, sv := ColMxv(g, SparseVec(n, uInd, uVal), sr, Opts{Merge: mk, Sequential: true})
			if len(pi) != len(si) {
				t.Fatalf("trial %d merge %d: nnz %d vs %d", trial, mk, len(pi), len(si))
			}
			for k := range pi {
				if pi[k] != si[k] || pv[k] != sv[k] {
					t.Fatalf("trial %d merge %d: entry %d differs", trial, mk, k)
				}
			}
		}
		// Structure-only sequential path too.
		for _, mk := range []MergeKind{MergeRadix, MergeHeap, MergeSPA} {
			pi, _ := ColMxv(g, SparseVec(n, uInd, uVal), sr, Opts{Merge: mk, StructureOnly: true})
			si, _ := ColMxv(g, SparseVec(n, uInd, uVal), sr, Opts{Merge: mk, StructureOnly: true, Sequential: true})
			if len(pi) != len(si) {
				t.Fatalf("trial %d merge %d structure-only: nnz differs", trial, mk)
			}
			for k := range pi {
				if pi[k] != si[k] {
					t.Fatalf("trial %d merge %d structure-only: index %d differs", trial, mk, k)
				}
			}
		}
	}
}

package core

// This file defines the format-agnostic vector view the kernels consume.
// The public graphblas layer stores vectors in one of four formats —
// sparse list, bitset (presence words + values), bitmap (presence bytes +
// values), dense (every position stored) — and lowers whichever one a
// vector currently holds into a VecView without copying. Kernels dispatch
// on the view's kind: the pull side gets an O(1)-probe layout
// (materializing one into workspace scratch if handed a sparse view), the
// push side gets an index list (compacting one from presence bits if
// needed), and dense views let the pull inner loop skip the presence probe
// entirely. Bitset views probe presence as single bits of packed words —
// an 8× smaller footprint than bitmap — and compact to index lists by
// trailing-zero enumeration.

// VecKind names the storage layout a VecView describes.
type VecKind uint8

const (
	// KindSparse is a sorted unique (index, value) pair list.
	KindSparse VecKind = iota
	// KindBitmap is a value array plus a presence bitmap: O(1) random
	// access, nvals may be far below n.
	KindBitmap
	// KindDense is a value array with every position stored: the presence
	// probe disappears from kernel inner loops.
	KindDense
	// KindBitset is a value array plus a word-packed presence bitset
	// ([]uint64, 64 positions per word): O(1) bit probes at 1/8 the
	// bitmap's footprint, popcount density, word-wise pattern algebra.
	KindBitset
)

// String returns "sparse", "bitmap", "dense" or "bitset".
func (k VecKind) String() string {
	switch k {
	case KindSparse:
		return "sparse"
	case KindBitmap:
		return "bitmap"
	case KindBitset:
		return "bitset"
	default:
		return "dense"
	}
}

// VecView is a zero-copy, read-only window onto a vector's storage in
// whatever format it currently holds. Exactly the fields implied by Kind
// are valid: Ind/Val for sparse, Dval/Present for bitmap, Dval/Words for
// bitset, Dval alone for dense (Present and Words are nil and every
// position is stored).
type VecView[T comparable] struct {
	Kind VecKind
	// N is the vector length.
	N int
	// NVals is the stored-element count (len(Ind) for sparse, N for dense).
	NVals int

	// Sparse: parallel slices, Ind sorted ascending and unique.
	Ind []uint32
	Val []T

	// Bitmap/bitset/dense: value array of length N. Present is the bitmap
	// format's presence bytes, Words the bitset format's packed presence
	// bits (BitsetWords(N) long, tail bits zero); both are nil for dense.
	Dval    []T
	Present []bool
	Words   []uint64
}

// SparseVec builds a sparse view over sorted unique (ind, val) pairs.
func SparseVec[T comparable](n int, ind []uint32, val []T) VecView[T] {
	return VecView[T]{Kind: KindSparse, N: n, NVals: len(ind), Ind: ind, Val: val}
}

// BitmapVec builds a bitmap view over value/presence arrays of equal
// length. nvals is the number of true presence bits; pass a recount if the
// caller does not track it.
func BitmapVec[T comparable](dval []T, present []bool, nvals int) VecView[T] {
	return VecView[T]{Kind: KindBitmap, N: len(dval), NVals: nvals, Dval: dval, Present: present}
}

// DenseVec builds a dense view: every position of dval is a stored element.
func DenseVec[T comparable](dval []T) VecView[T] {
	return VecView[T]{Kind: KindDense, N: len(dval), NVals: len(dval), Dval: dval}
}

// BitsetVec builds a bitset view over a value array and a word-packed
// presence bitset (BitsetWords(len(dval)) words, tail bits zero). nvals is
// the number of set bits; pass BitsetCount(words) if the caller does not
// track it.
func BitsetVec[T comparable](dval []T, words []uint64, nvals int) VecView[T] {
	return VecView[T]{Kind: KindBitset, N: len(dval), NVals: nvals, Dval: dval, Words: words}
}

// pullOperands lowers the view into the (values, present, words) triple
// the row kernels probe, materializing a sparse view into arena scratch
// (scrubbed before reuse via the touched list, so repeated calls stay
// allocation-free past the high-water mark). Exactly one presence layout
// is non-nil for bitmap/bitset views; both nil means every position is
// stored.
func pullOperands[T comparable](a *arena[T], u VecView[T]) (val []T, present []bool, words []uint64) {
	switch u.Kind {
	case KindDense:
		return u.Dval, nil, nil
	case KindBitmap:
		return u.Dval, u.Present, nil
	case KindBitset:
		return u.Dval, nil, u.Words
	default:
		a.pullVal = grow(a.pullVal, u.N)
		a.pullPresent = growCleared(a.pullPresent, u.N)
		for k, idx := range u.Ind {
			a.pullVal[idx] = u.Val[k]
			a.pullPresent[idx] = true
		}
		a.pullTouched = append(a.pullTouched[:0], u.Ind...)
		return a.pullVal, a.pullPresent, nil
	}
}

// scrubPull restores the all-false invariant of the arena's pull-scratch
// presence bitmap after a materialized sparse view is done with it.
func scrubPull[T comparable](a *arena[T]) {
	for _, idx := range a.pullTouched {
		a.pullPresent[idx] = false
	}
	a.pullTouched = a.pullTouched[:0]
}

// pushOperands lowers the view into the (indices, values) pair the column
// kernels gather from, compacting bitmap/bitset/dense views into arena
// scratch. For dense views every index is listed; bitset views enumerate
// set bits by trailing-zero counts, so an empty word costs one load.
func pushOperands[T comparable](a *arena[T], u VecView[T]) (ind []uint32, val []T) {
	switch u.Kind {
	case KindSparse:
		return u.Ind, u.Val
	case KindDense:
		a.pushInd = grow(a.pushInd, u.N)
		for i := range a.pushInd {
			a.pushInd[i] = uint32(i)
		}
		return a.pushInd, u.Dval
	case KindBitset:
		a.pushInd = a.pushInd[:0]
		a.pushVal = a.pushVal[:0]
		BitsetForEach(u.Words, func(i int) {
			a.pushInd = append(a.pushInd, uint32(i))
			a.pushVal = append(a.pushVal, u.Dval[i])
		})
		return a.pushInd, a.pushVal
	default:
		a.pushInd = a.pushInd[:0]
		a.pushVal = a.pushVal[:0]
		for i, p := range u.Present {
			if p {
				a.pushInd = append(a.pushInd, uint32(i))
				a.pushVal = append(a.pushVal, u.Dval[i])
			}
		}
		return a.pushInd, a.pushVal
	}
}

// growCleared returns buf resized to n with every element false,
// reallocating only past the high-water mark. Unlike grow it guarantees the
// cleared invariant on first use; reuse relies on callers scrubbing.
func growCleared(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

package core

import (
	"fmt"
	"math"
)

// This file prices the planner's work terms in nanoseconds. The unit model
// of planner.go treats a gathered edge, a scanned row and a scattered
// output as equally expensive RAM accesses; on real hardware they differ by
// integer factors (pull's random probes into the input vector are
// latency-bound, push's sequential gather is bandwidth-bound, a bitset
// probe touches an eighth of the bytes a bitmap probe does), so the
// crossover the unit model finds is not the crossover the machine has. A
// CostModel carries per-term coefficients fitted by the internal/calibrate
// microbenchmarks, turning Plan.PushCost/PullCost into wall-clock-
// comparable ns estimates; a Corrector then nudges those estimates between
// iterations from measured kernel times, so a miscalibrated profile
// converges mid-traversal.

// CostModel holds per-term nanosecond coefficients for the direction
// planner. The zero value selects the unit RAM-cost model (every term
// weight 1), preserving the uncalibrated planner behaviour; a fitted model
// (internal/calibrate) makes DecideDirection produce ns estimates instead.
type CostModel struct {
	// GatherNs is the cost of one gathered edge on the push side: a
	// sequential column fetch plus the merge-list append.
	GatherNs float64 `json:"gather_ns"`
	// ProbeBoolNs, ProbeWordNs and ProbeDenseNs price one pull-side probe
	// of the input vector, by its storage kind: a byte load from a []bool
	// bitmap (sparse inputs materialize into one), a single-bit load from a
	// word-packed bitset, and the probe-free dense layout.
	ProbeBoolNs  float64 `json:"probe_bool_ns"`
	ProbeWordNs  float64 `json:"probe_word_ns"`
	ProbeDenseNs float64 `json:"probe_dense_ns"`
	// RowNs is the fixed cost of scanning one output row on the pull side:
	// the row-pointer load, the mask probe and the loop setup.
	RowNs float64 `json:"row_ns"`
	// ScatterNs is the cost of one scattered output write on the push
	// side's sort-free bitmap path (a random presence probe plus the
	// value write).
	ScatterNs float64 `json:"scatter_ns"`
	// ClearNs is the cost of clearing one output slot before a bitmap
	// scatter — the sort-free path pays an O(OutRows) sequential clear the
	// sorted path does not, and near the scatter threshold that clear is a
	// real fraction of the kernel.
	ClearNs float64 `json:"clear_ns"`
	// SortNs is the cost of one radix-sorted pair unit on the push side's
	// sparse-output path; it multiplies the log₂ nnz merge factor.
	SortNs float64 `json:"sort_ns"`
	// SetupNs is the per-operation fixed cost: dispatch, workspace and
	// view lowering.
	SetupNs float64 `json:"setup_ns"`
	// StitchNs is the per-shard fixed cost of range-sharded execution:
	// the shard's dispatch slot, its plan entry, the loop restart at the
	// range boundary and its share of stitching the per-range results
	// back into one output. The shard planner adds it to every shard's
	// estimate, so oversharding prices itself out. Fitted profiles from
	// before the coefficient existed load as zero — sharding then just
	// prices the stitch as free, which the per-shard corrector corrects.
	StitchNs float64 `json:"stitch_ns"`
}

// Calibrated reports whether the model carries fitted coefficients; the
// zero value means the unit RAM-cost model.
func (m CostModel) Calibrated() bool { return m != (CostModel{}) }

// Validate rejects a model that cannot price work: any non-finite or
// negative coefficient, or an all-zero model (that is the unit model, not
// a calibration result).
func (m CostModel) Validate() error {
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"gather_ns", m.GatherNs},
		{"probe_bool_ns", m.ProbeBoolNs},
		{"probe_word_ns", m.ProbeWordNs},
		{"probe_dense_ns", m.ProbeDenseNs},
		{"row_ns", m.RowNs},
		{"scatter_ns", m.ScatterNs},
		{"clear_ns", m.ClearNs},
		{"sort_ns", m.SortNs},
		{"setup_ns", m.SetupNs},
		{"stitch_ns", m.StitchNs},
	} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("core: cost model %s is not finite: %v", c.name, c.v)
		}
		if c.v < 0 {
			return fmt.Errorf("core: cost model %s is negative: %v", c.name, c.v)
		}
	}
	if !m.Calibrated() {
		return fmt.Errorf("core: cost model is all-zero (the unit model is the zero value, not a profile)")
	}
	return nil
}

// ProbeNs returns the per-edge pull probe cost for an input of the given
// storage kind. Sparse inputs materialize into a workspace bitmap before
// the pull, so they probe at the bitmap rate.
func (m CostModel) ProbeNs(kind VecKind) float64 {
	switch kind {
	case KindDense:
		return m.ProbeDenseNs
	case KindBitset:
		return m.ProbeWordNs
	default:
		return m.ProbeBoolNs
	}
}

// correctorAlpha is the EWMA weight of one new measured/predicted ratio:
// high enough that a badly-fitted profile converges within a few BFS
// levels, low enough that one noisy kernel timing cannot flip the planner.
const correctorAlpha = 0.25

// correctorClamp bounds a single observed ratio so a degenerate timing
// (first-call page faults, a descheduled worker) cannot poison the EWMA.
const correctorClamp = 16.0

// correctorDecay relaxes the scale of the direction that was NOT run
// toward 1 on every observation of the one that was. A direction the
// planner stops choosing receives no fresh measurements, so without decay
// a single degenerate timing — a cold first iteration inflating pull by
// 10× — bans that direction permanently: its stale corrected cost never
// crosses back under the chosen one's. Decay makes the ban provisional:
// after ~20 one-sided observations the banned direction's scale has
// relaxed enough to be retried, and the retry either re-earns the penalty
// from a warm measurement or wins the shard back. The chosen direction's
// own scale is refreshed every iteration and never decays.
const correctorDecay = 0.9

// Corrector is the online feedback loop between the planner and the
// kernels it schedules: the execute path times each kernel invocation and
// feeds (predicted ns, measured ns) back here; the planner multiplies its
// next estimates by the exponentially-weighted measured/predicted ratio
// per direction. The zero value is unprimed (scale 1) and ready to use.
// A Corrector is per-traversal state, like PlanState: do not share one
// across concurrent operations.
type Corrector struct {
	scale [2]float64 // EWMA of measured/predicted per Direction; 0 = unprimed
	n     [2]int

	// shards holds the per-shard sub-correctors handed out by Shard: one
	// feedback key per destination range, so a pushed shard's timing
	// never bends a pulled shard's estimate (hub shards and tail shards
	// have systematically different locality, so their model errors
	// differ too). Grown lazily to the highest shard index observed.
	shards []Corrector

	// parent, set on sub-correctors by Shard, is the pooled fallback: a
	// shard that has never measured a direction reads the parent's scale
	// for it instead of the optimistic unprimed 1. The model's error is
	// mostly machine-level (every shard's push runs ~the same factor off
	// the fitted coefficients), so the pool is a far better prior than
	// neutrality — without it, every cold direction looks cheaper than
	// the measured incumbent by exactly the model's bias, and the shard
	// flip-flops on first contact. The parent is only written by explicit
	// Observe calls (the sharded pipeline folds per-direction shard sums
	// into it); Shard-keyed observations never leak upward on their own.
	parent *Corrector
}

// Observe folds one timed kernel invocation into the per-direction scale.
// Non-positive predictions (the unit model sets none) and measurements are
// ignored, so the corrector is inert until a calibrated model primes it.
func (c *Corrector) Observe(dir Direction, predictedNs, measuredNs float64) {
	if c == nil || predictedNs <= 0 || measuredNs <= 0 {
		return
	}
	r := measuredNs / predictedNs
	if r > correctorClamp {
		r = correctorClamp
	} else if r < 1/correctorClamp {
		r = 1 / correctorClamp
	}
	s := &c.scale[dir]
	if *s == 0 {
		*s = r
	} else {
		*s += correctorAlpha * (r - *s)
	}
	c.n[dir]++
	// Relax the unobserved direction's stale scale toward the pooled prior
	// (the parent's scale when one exists, neutral 1 otherwise — see
	// correctorDecay); an unprimed scale (0) stays unprimed.
	if o := &c.scale[1-dir]; *o != 0 {
		t := 1.0
		if c.parent != nil {
			t = c.parent.Scale(1 - dir)
		}
		*o = t + correctorDecay*(*o-t)
	}
}

// Scale returns the current multiplicative correction for a direction's
// cost estimate. Unprimed sub-correctors inherit the parent pool's scale;
// an unprimed top-level corrector returns neutral 1.
func (c *Corrector) Scale(dir Direction) float64 {
	if c == nil || c.scale[dir] == 0 {
		if c != nil && c.parent != nil {
			return c.parent.Scale(dir)
		}
		return 1
	}
	return c.scale[dir]
}

// Shard returns the sub-corrector keyed to shard s, growing the key space
// on first sight of a higher index (one allocation per growth, so a
// fixed-shard-count traversal allocates once and then never again). The
// sub-corrector is a full Corrector: the sharded pipeline observes each
// shard's (predicted, measured) pair into its own key, per direction.
// Nil-safe: a nil receiver or negative index returns nil, which Observe
// and Scale treat as inert.
func (c *Corrector) Shard(s int) *Corrector {
	if c == nil || s < 0 {
		return nil
	}
	if s >= len(c.shards) {
		grown := make([]Corrector, s+1)
		copy(grown, c.shards)
		c.shards = grown
	}
	sc := &c.shards[s]
	sc.parent = c
	return sc
}

// Observations reports how many timed invocations have been folded in for
// a direction (trace/debug surface).
func (c *Corrector) Observations(dir Direction) int {
	if c == nil {
		return 0
	}
	return c.n[dir]
}

// Reset clears the corrector for a new graph.
func (c *Corrector) Reset() { *c = Corrector{} }

package core

import (
	"math/bits"
	"sync/atomic"
	"time"

	"pushpull/internal/faultinject"
	"pushpull/internal/par"
	"pushpull/internal/sparse"
)

// ShardedMxv runs one matvec as a set of range-sharded kernels, each shard
// executing the direction its ShardPlan chose: pull shards scan their own
// output rows of rowG (the usual row kernel, restricted to [Lo, Hi)), push
// shards scatter through the destination-sharded CSC — for each frontier
// column j, the cut table locates the contiguous subrange of cscG's row j
// whose destinations fall inside the shard, so no scatter ever crosses a
// shard boundary. Every shard therefore owns a disjoint slice of the
// output bitmap (wVal/wPresent, length rowG.Rows, presence arriving
// cleared), which makes the concurrent push+pull mix race-free without
// atomics: writes from different shards never touch the same byte.
//
// The frontier is lowered both ways when the plan mix needs it — pull
// operands (probe layout) and push operands (index list) use distinct
// arena scratch, so one call may hold both. Execution merges runs of
// consecutive push shards into at most par.MaxWorkers() segments each:
// a push shard pays one cut-table probe per frontier column no matter how
// few of that column's edges it owns, so S separate push shards would scan
// the frontier S times over — the merged segment covers the run's whole
// contiguous destination range in a single pass with the run's outer cut
// bounds, restoring the unsharded push's per-edge cost while keeping one
// segment per worker for concurrency. Pull shards have no such
// amplification (each scans only its own rows) and stay unmerged. Segments
// are dispatched over the parked par workers (spans claimed dynamically,
// so an expensive hub segment does not strand the tail); timed calls stamp
// MeasuredNs into each plan entry — a merged segment's one measurement is
// apportioned over its shards by frontier edge share. Returns the number
// of present outputs.
//
// Cancellation is polled at shard granularity and every ~1k rows/columns
// inside a shard; a cancelled call leaves the output partially written,
// exactly like the unsharded kernels. A panic in a shard body (a semiring
// operator, or an armed faultinject site) is captured by par's chunk
// recovery and re-raised on the dispatching goroutine after the sibling
// shards drain, so the caller's captureFault sees one fault and no worker
// is stranded.
func ShardedMxv[T comparable](wVal []T, wPresent []bool, rowG, cscG *sparse.CSR[T], ss *ShardSet, plans []ShardPlan, u VecView[T], mask MaskView, masked bool, timed bool, sr SR[T], opts Opts) int {
	if masked && mask.KnownEmpty && mask.List == nil {
		if !mask.Scmp {
			return 0 // empty mask allows nothing; wPresent arrived cleared
		}
		masked = false // empty complement allows everything
		mask = MaskView{}
	}
	ws, transient := kernelWorkspace(opts.Ws, rowG.Rows, rowG.Cols)
	a := arenaFor[T](ws)
	sl := &a.shard
	sl.ensure()

	needPull, needPush := false, false
	for i := range plans {
		if plans[i].Dir == Pull {
			needPull = true
		} else {
			needPush = true
		}
	}
	var uVal []T
	var uPresent []bool
	var uWords []uint64
	var uInd []uint32
	var uPushVal []T
	if needPull {
		uVal, uPresent, uWords = pullOperands(a, u)
	}
	if needPush {
		uInd, uPushVal = pushOperands(a, u)
	}

	sl.stage(wVal, wPresent, rowG, cscG, ss, plans, uVal, uPresent, uWords, uInd, uPushVal, mask, masked, timed, sr, opts)
	nseg := sl.buildSegs(plans, opts)
	if opts.Sequential {
		sl.body(0, 0, nseg)
	} else {
		par.ForWorkerCancel(opts.Cancel, nseg, sl.body)
	}
	nvals := int(sl.nvals.Load())
	sl.clear()
	if needPull && u.Kind == KindSparse {
		scrubPull(a)
	}
	if transient {
		ws.Release()
	}
	return nvals
}

// shardSeg is one execution segment: the shard index range [lo, hi) it
// covers. Pull segments are always single-shard; push segments may merge a
// run of consecutive push shards (whose destination ranges are contiguous)
// into one frontier scan.
type shardSeg struct{ lo, hi int }

// shardLoop pins the sharded matvec's worker body and staged operands in
// the arena, so dispatching shards over par never allocates a closure.
type shardLoop[T comparable] struct {
	wVal     []T
	wPresent []bool
	rowG     *sparse.CSR[T]
	cscG     *sparse.CSR[T]
	ss       *ShardSet
	plans    []ShardPlan
	uVal     []T
	uPresent []bool
	uWords   []uint64
	uInd     []uint32
	uPushVal []T
	mask     MaskView
	masked   bool
	timed    bool
	sr       SR[T]
	opts     Opts
	nvals    atomic.Int64

	// segs is the call's execution segments (grow-once scratch; plain ints,
	// so it is deliberately not nilled by clear).
	segs []shardSeg

	body func(worker, lo, hi int)
}

// buildSegs plans the call's execution segments: every pull shard is its
// own segment, and each maximal run of consecutive push shards is split
// into at most par.MaxWorkers() edge-contiguous segments (one, when the
// kernel runs sequentially) — enough to keep every worker busy without
// paying the per-column cut probes more often than necessary.
func (sl *shardLoop[T]) buildSegs(plans []ShardPlan, opts Opts) int {
	sl.segs = sl.segs[:0]
	p := 1
	if !opts.Sequential {
		p = par.MaxWorkers()
	}
	i := 0
	for i < len(plans) {
		if plans[i].Dir == Pull {
			sl.segs = append(sl.segs, shardSeg{i, i + 1})
			i++
			continue
		}
		j := i
		for j < len(plans) && plans[j].Dir != Pull {
			j++
		}
		parts := j - i
		if parts > p {
			parts = p
		}
		for q := 0; q < parts; q++ {
			sl.segs = append(sl.segs, shardSeg{i + q*(j-i)/parts, i + (q+1)*(j-i)/parts})
		}
		i = j
	}
	return len(sl.segs)
}

func (sl *shardLoop[T]) stage(wVal []T, wPresent []bool, rowG, cscG *sparse.CSR[T], ss *ShardSet, plans []ShardPlan, uVal []T, uPresent []bool, uWords []uint64, uInd []uint32, uPushVal []T, mask MaskView, masked, timed bool, sr SR[T], opts Opts) {
	sl.wVal, sl.wPresent, sl.rowG, sl.cscG = wVal, wPresent, rowG, cscG
	sl.ss, sl.plans = ss, plans
	sl.uVal, sl.uPresent, sl.uWords = uVal, uPresent, uWords
	sl.uInd, sl.uPushVal = uInd, uPushVal
	sl.mask, sl.masked, sl.timed = mask, masked, timed
	sl.sr, sl.opts = sr, opts
	sl.nvals.Store(0)
}

func (sl *shardLoop[T]) clear() {
	sl.wVal, sl.wPresent, sl.rowG, sl.cscG = nil, nil, nil, nil
	sl.ss, sl.plans = nil, nil
	sl.uVal, sl.uPresent, sl.uWords = nil, nil, nil
	sl.uInd, sl.uPushVal = nil, nil
	sl.mask = MaskView{}
	sl.sr = SR[T]{}
}

func (sl *shardLoop[T]) ensure() {
	if sl.body != nil {
		return
	}
	sl.body = func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			if sl.opts.Cancel.Cancelled() {
				return
			}
			sl.runSeg(sl.segs[s])
		}
	}
}

// runSeg executes one segment in its planned direction, timing it when
// asked (the MeasuredNs writes are race-free — segments own disjoint plan
// entries). The fault site fires once per covered shard, so injection
// countdowns see the same schedule whether or not push runs merged.
func (sl *shardLoop[T]) runSeg(seg shardSeg) {
	for s := seg.lo; s < seg.hi; s++ {
		faultinject.Fire(faultinject.SiteShardKernel)
	}
	var start time.Time
	if sl.timed {
		start = time.Now()
	}
	plans := sl.plans
	var c int
	if plans[seg.lo].Dir == Pull {
		c = sl.pullRange(plans[seg.lo].Lo, plans[seg.lo].Hi)
	} else {
		c = sl.pushRange(seg.lo, seg.hi)
	}
	if c > 0 {
		sl.nvals.Add(int64(c))
	}
	if sl.timed {
		total := float64(time.Since(start).Nanoseconds())
		if seg.hi-seg.lo == 1 {
			plans[seg.lo].MeasuredNs = total
			return
		}
		// One measurement covers the merged scan; apportion it over the
		// run's shards by frontier edge share (+1 so empty shards still
		// record nonzero time for the corrector and trace).
		wsum := 0.0
		for s := seg.lo; s < seg.hi; s++ {
			wsum += plans[s].Edges + 1
		}
		for s := seg.lo; s < seg.hi; s++ {
			plans[s].MeasuredNs = total * (plans[s].Edges + 1) / wsum
		}
	}
}

// pullRange is the row kernel restricted to output rows [lo, hi),
// replicating rowLoop's unmasked, bitmap-mask, word-mask and allow-list
// bodies over the subrange. Rows outside the effective mask are simply
// skipped — the output presence arrived cleared, so no per-row false
// write is needed.
func (sl *shardLoop[T]) pullRange(lo, hi int) int {
	w, wPresent, g := sl.wVal, sl.wPresent, sl.rowG
	uVal, uPresent, uWords, sr, opts := sl.uVal, sl.uPresent, sl.uWords, sl.sr, sl.opts
	c := 0
	if !sl.masked {
		for i := lo; i < hi; i++ {
			if i&1023 == 1023 && opts.Cancel.Cancelled() {
				return c
			}
			if rowAccumulate(w, wPresent, g, i, uVal, uPresent, uWords, sr, opts) {
				c++
			}
		}
		return c
	}
	mask := sl.mask
	switch {
	case mask.List != nil:
		k1 := lowerBoundU32(mask.List, uint32(hi))
		for k := lowerBoundU32(mask.List, uint32(lo)); k < k1; k++ {
			if k&1023 == 1023 && opts.Cancel.Cancelled() {
				return c
			}
			if rowAccumulate(w, wPresent, g, int(mask.List[k]), uVal, uPresent, uWords, sr, opts) {
				c++
			}
		}
	case mask.Words != nil:
		words, scmp := mask.Words, mask.Scmp
		for base := lo &^ 63; base < hi; base += 64 {
			if base&65535 == 0 && opts.Cancel.Cancelled() {
				return c
			}
			mw := words[base>>6]
			if scmp {
				mw = ^mw
			}
			if base < lo {
				mw &^= (1 << uint(lo-base)) - 1
			}
			if base+64 > hi {
				mw &= (1 << uint(hi-base)) - 1
			}
			for mw != 0 {
				i := base + bits.TrailingZeros64(mw)
				mw &= mw - 1
				if rowAccumulate(w, wPresent, g, i, uVal, uPresent, uWords, sr, opts) {
					c++
				}
			}
		}
	default:
		for i := lo; i < hi; i++ {
			if i&1023 == 1023 && opts.Cancel.Cancelled() {
				return c
			}
			if !mask.Allows(i) {
				continue
			}
			if rowAccumulate(w, wPresent, g, i, uVal, uPresent, uWords, sr, opts) {
				c++
			}
		}
	}
	return c
}

// pushRange scatters the shard run [sLo, sHi)'s slice of every frontier
// column straight into the output bitmap, ColMxvBitmap's inner loop with
// the cut table bounding each column's gather to the run's contiguous
// destination range (destinations are sorted ascending within a CSC row,
// so consecutive shards' slices concatenate into one subrange — one probe
// pair per column regardless of how many shards merged). The mask is
// applied inline; duplicates combine with ⊕ on arrival.
func (sl *shardLoop[T]) pushRange(sLo, sHi int) int {
	w, wPresent, g := sl.wVal, sl.wPresent, sl.cscG
	// Column-major cut table: a column's lo/hi pair sits on one or two
	// adjacent cache lines, one miss per frontier column instead of two.
	cuts, stride := sl.ss.Cuts, len(sl.ss.Bounds)
	gInd, gVal := g.Ind, g.Val
	uInd, uVal := sl.uInd, sl.uPushVal
	mask, masked := sl.mask, sl.masked
	sr, opts := sl.sr, sl.opts
	c := 0
	for k, col := range uInd {
		if k&1023 == 1023 && opts.Cancel.Cancelled() {
			return c
		}
		base := int(col) * stride
		st, en := int(cuts[base+sLo]), int(cuts[base+sHi])
		if opts.StructureOnly {
			for e := st; e < en; e++ {
				out := gInd[e]
				if masked && !mask.Allows(int(out)) {
					continue
				}
				if !wPresent[out] {
					wPresent[out] = true
					w[out] = sr.One
					c++
				}
			}
			continue
		}
		x := uVal[k]
		for e := st; e < en; e++ {
			out := gInd[e]
			if masked && !mask.Allows(int(out)) {
				continue
			}
			product := sr.Mul(gVal[e], x)
			if wPresent[out] {
				w[out] = sr.Add(w[out], product)
			} else {
				wPresent[out] = true
				w[out] = sr.Add(sr.Id, product)
				c++
			}
		}
	}
	return c
}

package core

import "math"

// This file implements the standalone direction planner that replaces the
// "format follows conversion" coupling of the paper's Section 6.3: instead
// of letting the sparse↔dense switch of the input vector pick the kernel,
// the planner compares an *edge-based* estimate of each direction's work —
// the approach of GraphBLAST (Yang, Buluç, Owens) and the model of Besta et
// al., "To Push or To Pull", where the crossover depends on edges touched,
// not vertex counts — and storage format then follows the chosen direction.
//
//	push cost ≈ Σ_{i∈frontier} outdeg(i) · log₂ nnz(f)
//	pull cost ≈ rows · avg-degree, discounted by the effective mask density
//
// The push sum is read directly off CSC.Ptr in O(nnz(u)); the log factor is
// the multiway-merge term of Table 1 row 3. The pull product is Table 1
// rows 1–2: an unmasked pull scans every row, a masked pull only the rows
// the effective mask allows. Hysteresis is preserved from the legacy
// heuristic: a switch away from the current direction additionally requires
// the frontier to be moving the right way (growing to go pull, shrinking to
// go push), so a frontier hovering at the crossover does not flap — and
// with it, neither does the vector's storage format.
//
// The unit-weight estimates above assume a gathered edge, a scanned row
// and a scattered output all cost one RAM access. PlanInput.Model replaces
// those unit weights with per-machine nanosecond coefficients (costmodel.go,
// fitted by internal/calibrate), and PlanInput.Correct folds measured
// kernel times back into the estimates between iterations.

// Operation names recorded in Plan.Op by the unified pipeline.
const (
	OpMxV          = "mxv"
	OpEWiseMult    = "ewise-mult"
	OpEWiseAdd     = "ewise-add"
	OpApply        = "apply"
	OpSelect       = "select"
	OpAssign       = "assign"
	OpAssignScalar = "assign-scalar"
	OpExtract      = "extract"
)

// Plan rule names, recorded for traces so decision quality can be audited.
const (
	// RuleForced marks a plan pinned by ForcePush/ForcePull.
	RuleForced = "forced"
	// RuleSwitchPoint marks the legacy nnz/n ratio rule (explicit
	// switch-point override).
	RuleSwitchPoint = "switchpoint"
	// RuleCostModel marks the edge-based cost comparison.
	RuleCostModel = "cost-model"
	// RuleFormat marks format-follows-storage dispatch (NoAutoConvert).
	RuleFormat = "format"
	// RuleSharded marks a range-sharded operation whose direction was
	// decided per shard; the whole-op Dir is the shard majority and the
	// per-shard records (each carrying its own rule) hang off Plan.Shards.
	RuleSharded = "sharded"
	// RuleSticky marks a per-shard decision held by flip hysteresis: the
	// cost comparison favoured the other direction, but not by the margin
	// a flip requires (see shardFlipMargin).
	RuleSticky = "sticky"
)

// Plan is one direction decision plus the evidence it was made on. MxV
// surfaces it through Descriptor.Plan and BFS through IterStats, so the
// harness can plot estimated costs against measured runtimes. The unified
// operation pipeline records every op it runs here — not just matvec — so
// a trace shows which kernel family executed and what storage layout the
// output landed in.
type Plan struct {
	// Op names the operation the record describes: "mxv", "ewise-mult",
	// "ewise-add", "apply", "select", "assign", "assign-scalar", "extract".
	Op string
	// OutKind is the storage layout the output was produced in.
	OutKind VecKind
	// Dir is the chosen kernel orientation.
	Dir Direction
	// PushCost and PullCost are the model's work estimates. Under the unit
	// model (zero PlanInput.Model) they are edge touches — comparable to
	// each other, not to wall-clock; under a calibrated CostModel they are
	// nanosecond estimates, comparable to MeasuredNs.
	PushCost, PullCost float64
	// PredictedNs is the chosen direction's *uncorrected* model estimate in
	// nanoseconds — set only when the decision was priced by a calibrated
	// CostModel (zero under the unit model, whose costs are not
	// wall-clock). The corrector's scaling is deliberately excluded: the
	// feedback loop measures the raw model's error, so its EWMA converges
	// on the true measured/predicted ratio.
	PredictedNs float64
	// MeasuredNs is the kernel invocation's measured wall-clock, filled in
	// by the execute path after the kernel ran (zero when untimed). The
	// difference against PredictedNs is the prediction error the feedback
	// Corrector converges on.
	MeasuredNs float64
	// MaskAllowFrac is the effective-mask density the pull cost was
	// discounted by: exact (a popcount over the mask's packed words, or the
	// bitmap's tracked count) when the caller could read it off the storage,
	// an estimate otherwise; 1 with no mask.
	MaskAllowFrac float64
	// FrontierNNZ and N snapshot the input vector the plan was made for.
	FrontierNNZ, N int
	// Growing/Shrinking report the frontier trend since the previous plan
	// (both true when unprimed).
	Growing, Shrinking bool
	// PushOutBitmap advises the push kernel to scatter straight into a
	// bitmap output (no radix sort) because the estimated output is dense
	// enough that sorting would dominate.
	PushOutBitmap bool
	// Rule names the decision path: forced, switchpoint, cost-model,
	// format, sharded.
	Rule string
	// Shards holds the per-shard plan entries when the operation ran
	// range-sharded (Descriptor.Shards > 1): one direction decision,
	// cost pair and measured time per destination range. On sharded
	// plans Dir is the shard-majority direction, PushCost/PullCost are
	// summed over shards and PredictedNs sums the chosen per-shard
	// estimates. The backing array is workspace scratch overwritten by
	// the next sharded operation run with the same descriptor — copy the
	// entries to retain them across calls.
	Shards []ShardPlan
	// Hybrid reports that Shards mixes directions — some ranges pulled
	// while others pushed within the one operation.
	Hybrid bool
}

// PlanState is the between-call memory the planner's hysteresis needs: the
// previous decision and the previous frontier population. The zero value is
// unprimed (first decision is purely cost-based).
type PlanState struct {
	PrevDir Direction
	PrevNNZ int
	Primed  bool
}

// Reset clears the state (a new traversal starts).
func (s *PlanState) Reset() { *s = PlanState{} }

// PlanInput carries everything one direction decision needs.
type PlanInput struct {
	// NNZ and N describe the input vector (frontier).
	NNZ, N int
	// OutRows is the output dimension (rows the pull kernel would scan).
	OutRows int
	// PushEdges is Σ outdeg over the frontier, read off CSC.Ptr when the
	// frontier is sparse; pass a negative value to have the planner
	// estimate it as NNZ·AvgDeg.
	PushEdges float64
	// AvgDeg is the mean row population of the pull-side matrix.
	AvgDeg float64
	// MaskAllowFrac is the fraction of output rows the effective mask
	// allows: 1 with no mask, nnz(m)/OutRows for a plain mask,
	// 1−nnz(m)/OutRows under structural complement. The pull cost is
	// discounted by it.
	MaskAllowFrac float64
	// SwitchPoint, when positive, selects the legacy Section 6.3 ratio rule
	// with that crossover instead of the cost model (the Descriptor's
	// SwitchPoint override keeps its historical meaning).
	SwitchPoint float64
	// Force pins the direction (descriptor override); nil means decide.
	Force *Direction
	// InKind is the storage kind of the input vector. A calibrated model
	// prices pull's per-edge probe by it (bool probe for bitmap and for
	// sparse inputs, which materialize into a bitmap; single-bit probe for
	// bitset; probe-free for dense). Ignored by the unit model.
	InKind VecKind
	// Model prices the terms in nanoseconds when calibrated; the zero
	// value selects the unit RAM-cost model, preserving historical
	// behaviour.
	Model CostModel
	// Correct, when non-nil, multiplies each direction's estimate by the
	// corrector's measured/predicted EWMA before they are compared — the
	// online feedback loop. Inert until a calibrated model primes it.
	Correct *Corrector
}

// BitmapOutFraction is the estimated-output density above which the push
// kernel scatters into a bitmap instead of radix-sorting a sparse result:
// the scatter is O(edges) against the sort's O(edges·log M), so once the
// gathered edges approach a quarter of the output dimension the sort-free
// path wins even after paying the O(n) output clear. Callers that only
// need the scatter decision may stop summing frontier degrees once this
// fraction of OutRows is reached.
const BitmapOutFraction = 0.25

// Unit-model weights of the sort-free bitmap-scatter push variant, in the
// same RAM-access currency as the legacy estimates: each gathered edge
// costs a matrix fetch plus a random presence probe-and-write into the
// output bitmap, and the up-front clear touches every output presence
// byte once. These replace the log₂ merge factor when the plan itself
// selects the scatter path, so PushCost no longer charges a sort the
// kernel never runs.
const (
	unitScatterEdge  = 2.0
	unitScatterClear = 1.0
)

// DecideDirection runs the planner: overrides first, then the legacy ratio
// rule if an explicit switch-point is set, else the edge cost model. st is
// updated with this decision (pass nil for a stateless, hysteresis-free
// decision).
func DecideDirection(in PlanInput, st *PlanState) Plan {
	p := Plan{FrontierNNZ: in.NNZ, N: in.N, Growing: true, Shrinking: true}
	if st != nil && st.Primed {
		p.Growing = in.NNZ >= st.PrevNNZ
		p.Shrinking = in.NNZ <= st.PrevNNZ
	}

	// Cost estimates are always computed, even under an override, so traces
	// can grade forced and legacy decisions against the model.
	pushEdges := in.PushEdges
	if pushEdges < 0 {
		pushEdges = float64(in.NNZ) * in.AvgDeg
	}
	mergeFactor := math.Log2(float64(in.NNZ) + 2)
	allow := in.MaskAllowFrac
	if allow < 0 || allow > 1 {
		allow = 1
	}
	p.MaskAllowFrac = allow

	// Both push variants are costed and the cheaper one charged, but only
	// where the kernel would actually take the scatter path — the sort
	// estimate used to be charged unconditionally, inflating PushCost near
	// the crossover exactly where the decision is closest.
	wouldScatter := in.OutRows > 0 && pushEdges >= BitmapOutFraction*float64(in.OutRows)
	var sortCost, scatterCost float64
	if m := in.Model; m.Calibrated() {
		rows := float64(in.OutRows) * allow
		p.PullCost = m.SetupNs + rows*(m.RowNs+in.AvgDeg*m.ProbeNs(in.InKind))
		sortCost = m.SetupNs + pushEdges*(m.GatherNs+mergeFactor*m.SortNs)
		scatterCost = m.SetupNs + pushEdges*(m.GatherNs+m.ScatterNs) + float64(in.OutRows)*m.ClearNs
	} else {
		p.PullCost = float64(in.OutRows) * in.AvgDeg * allow
		sortCost = pushEdges * mergeFactor
		scatterCost = pushEdges*unitScatterEdge + float64(in.OutRows)*unitScatterClear
	}
	p.PushCost = sortCost
	if wouldScatter && scatterCost < sortCost {
		p.PushCost = scatterCost
	}
	// The corrector scales the costs the *decision* compares; the raw model
	// estimates are kept for PredictedNs so the feedback ratio is measured
	// against the uncorrected model. (Observing against the corrected
	// prediction would make the EWMA's fixed point the square root of the
	// true error instead of the error itself.)
	basePush, basePull := p.PushCost, p.PullCost
	if in.Correct != nil {
		p.PushCost *= in.Correct.Scale(Push)
		p.PullCost *= in.Correct.Scale(Pull)
	}

	switch {
	case in.Force != nil:
		p.Dir = *in.Force
		p.Rule = RuleForced
	case in.SwitchPoint > 0:
		p.Rule = RuleSwitchPoint
		p.Dir = legacyRatioRule(in, st, p)
	default:
		p.Rule = RuleCostModel
		p.Dir = costRule(st, p)
	}

	if p.Dir == Push {
		p.PushOutBitmap = wouldScatter
	}
	if in.Model.Calibrated() {
		if p.Dir == Push {
			p.PredictedNs = basePush
		} else {
			p.PredictedNs = basePull
		}
	}
	if st != nil {
		st.PrevDir = p.Dir
		st.PrevNNZ = in.NNZ
		st.Primed = true
	}
	return p
}

// costRule compares the edge estimates, sticky on the previous direction:
// switching additionally requires the frontier trend to point the same way
// the legacy hysteresis demanded.
func costRule(st *PlanState, p Plan) Direction {
	if st == nil || !st.Primed {
		if p.PushCost <= p.PullCost {
			return Push
		}
		return Pull
	}
	switch st.PrevDir {
	case Push:
		if p.PullCost < p.PushCost && p.Growing {
			return Pull
		}
		return Push
	default:
		if p.PushCost < p.PullCost && p.Shrinking {
			return Push
		}
		return Pull
	}
}

// legacyRatioRule is the paper's single-ratio heuristic (Section 6.3),
// kept verbatim for the explicit SwitchPoint override: r = nnz/n against
// the crossover, with the trend gate.
func legacyRatioRule(in PlanInput, st *PlanState, p Plan) Direction {
	current := Push
	if st != nil && st.Primed {
		current = st.PrevDir
	}
	if in.N == 0 {
		return current
	}
	r := float64(in.NNZ) / float64(in.N)
	switch current {
	case Push:
		if r > in.SwitchPoint && p.Growing {
			return Pull
		}
	case Pull:
		if r < in.SwitchPoint && p.Shrinking {
			return Push
		}
	}
	return current
}

// AvgRowDegree returns nnz/rows for a CSR, the d of the cost model.
func AvgRowDegree(nnz, rows int) float64 {
	if rows == 0 {
		return 0
	}
	return float64(nnz) / float64(rows)
}

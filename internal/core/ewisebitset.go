package core

import "math/bits"

// This file holds the bitset-out element-wise kernels: the word-packed
// siblings of the bitmap-out kernels in ewise.go. Output presence is
// written as packed words (wWords, cleared tail invariant maintained) and
// the output *pattern* is computed 64 positions at a time — intersection
// is a word AND, union a word OR, the mask one more AND (with the
// structural complement a word-NOT, never a per-element flip). Values are
// then filled by trailing-zero enumeration of the result word, so absent
// runs cost one load per 64 positions and no per-element presence branch
// ever executes.
//
// For Boolean operands there is a second level: BoolEWiseBitset and
// BoolApplyBitset evaluate the operator's truth table once (binary ops are
// pure value functions) and then synthesize the packed *value* words by
// word arithmetic — op itself runs O(1) times per call instead of once per
// element, which is what makes Boolean dense∘dense eWise a genuine 64-way
// operation.

// presenceWord returns view v's 64-position presence pattern at word index
// wi. tail must be BitsetTailMask(v.N) for the last word and ^0 otherwise;
// bitset views rely on their tail-zero invariant, dense views are all-tail,
// bitmap views pack 64 presence bytes.
func presenceWord[T comparable](v VecView[T], wi int, tail uint64) uint64 {
	if v.Words != nil {
		return v.Words[wi]
	}
	if v.Present == nil {
		return tail
	}
	return packBoolWord(v.Present, wi<<6, v.N)
}

// maskAllowWord returns the 64-position allow pattern of the effective
// mask at word index wi: tail (everything) with no mask, the complemented
// word for word-packed masks, a 64-byte pack for bitmap-backed ones.
func maskAllowWord(useMask bool, mv MaskView, wi, n int, tail uint64) uint64 {
	if !useMask {
		return tail
	}
	if mv.Words != nil {
		return mv.EffectiveWord(wi, tail)
	}
	w := packBoolWord(mv.Bits, wi<<6, n)
	if mv.Scmp {
		w = ^w
	}
	return w & tail
}

// EWiseMultBitsetOut computes the masked intersection u .⊗ v into bitset
// buffers (wWords need not arrive cleared; every word is overwritten).
// Both operands must be O(1)-probe (bitset, bitmap or dense). The output
// pattern is one AND per 64 positions; op runs only on surviving bits.
// Returns the output count.
func EWiseMultBitsetOut[T comparable](wVal []T, wWords []uint64, u, v VecView[T], useMask bool, mv MaskView, op func(a, b T) T) int {
	n := len(wVal)
	nw := len(wWords)
	c := 0
	for wi := 0; wi < nw; wi++ {
		tail := ^uint64(0)
		if wi == nw-1 {
			tail = BitsetTailMask(n)
		}
		w := presenceWord(u, wi, tail) & presenceWord(v, wi, tail) & maskAllowWord(useMask, mv, wi, n, tail)
		wWords[wi] = w
		c += bits.OnesCount64(w)
		base := wi << 6
		for t := w; t != 0; t &= t - 1 {
			i := base + bits.TrailingZeros64(t)
			wVal[i] = op(u.Dval[i], v.Dval[i])
		}
	}
	return c
}

// EWiseAddBitsetOut computes the masked union u ⊕ v into bitset buffers.
// Both operands must be O(1)-probe. The output pattern is one OR (plus the
// mask AND) per 64 positions; each surviving bit is classified
// both/u-only/v-only by bit tests on the already-loaded words. Returns the
// output count.
func EWiseAddBitsetOut[T comparable](wVal []T, wWords []uint64, u, v VecView[T], useMask bool, mv MaskView, op func(a, b T) T) int {
	n := len(wVal)
	nw := len(wWords)
	c := 0
	for wi := 0; wi < nw; wi++ {
		tail := ^uint64(0)
		if wi == nw-1 {
			tail = BitsetTailMask(n)
		}
		allow := maskAllowWord(useMask, mv, wi, n, tail)
		up := presenceWord(u, wi, tail) & allow
		vp := presenceWord(v, wi, tail) & allow
		w := up | vp
		wWords[wi] = w
		c += bits.OnesCount64(w)
		both := up & vp
		base := wi << 6
		for t := w; t != 0; t &= t - 1 {
			off := bits.TrailingZeros64(t)
			i := base + off
			bit := uint64(1) << uint(off)
			switch {
			case both&bit != 0:
				wVal[i] = op(u.Dval[i], v.Dval[i])
			case up&bit != 0:
				wVal[i] = u.Dval[i]
			default:
				wVal[i] = v.Dval[i]
			}
		}
	}
	return c
}

// ApplyBitsetOut computes w = f(i, u(i)) over an O(1)-probe u into bitset
// buffers: the output pattern is u's presence words ANDed with the mask, f
// runs per surviving bit. Returns the output count.
func ApplyBitsetOut[T comparable](wVal []T, wWords []uint64, u VecView[T], useMask bool, mv MaskView, f func(i int, x T) T) int {
	n := len(wVal)
	nw := len(wWords)
	c := 0
	for wi := 0; wi < nw; wi++ {
		tail := ^uint64(0)
		if wi == nw-1 {
			tail = BitsetTailMask(n)
		}
		w := presenceWord(u, wi, tail) & maskAllowWord(useMask, mv, wi, n, tail)
		wWords[wi] = w
		c += bits.OnesCount64(w)
		base := wi << 6
		for t := w; t != 0; t &= t - 1 {
			i := base + bits.TrailingZeros64(t)
			wVal[i] = f(i, u.Dval[i])
		}
	}
	return c
}

// SelectBitsetOut keeps the elements of an O(1)-probe u passing pred (and
// the mask) in bitset buffers: candidate words come from u's presence and
// the mask, failing bits are cleared. Returns the output count.
func SelectBitsetOut[T comparable](wVal []T, wWords []uint64, u VecView[T], useMask bool, mv MaskView, pred func(i int, x T) bool) int {
	n := len(wVal)
	nw := len(wWords)
	c := 0
	for wi := 0; wi < nw; wi++ {
		tail := ^uint64(0)
		if wi == nw-1 {
			tail = BitsetTailMask(n)
		}
		w := presenceWord(u, wi, tail) & maskAllowWord(useMask, mv, wi, n, tail)
		base := wi << 6
		for t := w; t != 0; t &= t - 1 {
			off := bits.TrailingZeros64(t)
			i := base + off
			if pred(i, u.Dval[i]) {
				wVal[i] = u.Dval[i]
			} else {
				w &^= 1 << uint(off)
			}
		}
		wWords[wi] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// b2u widens a bool to 0/1 without a branch (the compiler lowers the
// conditional over a loaded bool to a zero-extended byte move).
func b2u(b bool) uint64 {
	var x uint64
	if b {
		x = 1
	}
	return x
}

// packBoolWord packs 64 bools starting at base into a word (unconditional
// branch-free pack: bits at absent positions are garbage the caller masks
// off with presence words). Full interior words go through a fixed-count
// array loop so the compiler drops every bounds check and unrolls.
func packBoolWord(vals []bool, base, n int) uint64 {
	if base+wordBits <= n {
		return packBoolWordFast(vals, base)
	}
	var w uint64
	for i, k := base, uint(0); i < n; i, k = i+1, k+1 {
		w |= b2u(vals[i]) << k
	}
	return w
}

// unpackBoolWord spreads a packed value word over 64 bools starting at
// base — unconditional branch-free stores; positions outside the presence
// pattern receive meaningless values, exactly like the bitmap kernels
// leave stale bytes at absent positions.
func unpackBoolWord(vals []bool, base, n int, valw uint64) {
	if base+wordBits <= n {
		unpackBoolWordFast(vals, base, valw)
		return
	}
	for i, k := base, uint(0); i < n; i, k = i+1, k+1 {
		vals[i] = valw>>k&1 != 0
	}
}

// boolMask widens a bool into an all-ones/all-zeros word mask.
func boolMask(b bool) uint64 {
	if b {
		return ^uint64(0)
	}
	return 0
}

// BoolEWiseBitset is the Boolean specialization of the bitset eWise
// kernels: with both operands O(1)-probe and T == bool, the operator —
// required pure, like every GraphBLAS binary op — is evaluated once on
// each of its four input combinations and the packed output *value* words
// are synthesized from the operands' packed value words by that truth
// table:
//
//	t(a,b) = (t11∧a∧b) ∨ (t10∧a∧¬b) ∨ (t01∧¬a∧b) ∨ (t00∧¬(a∨b))
//
// so AND/OR/XOR-shaped ops literally become word AND/OR/XOR (the other
// terms vanish), 64 elements per step, with op called O(1) times per
// kernel instead of once per element. union selects eWiseAdd pattern
// semantics (single-operand positions copy through); otherwise eWiseMult.
// Returns the output count.
func BoolEWiseBitset(union bool, wVal []bool, wWords []uint64, u, v VecView[bool], useMask bool, mv MaskView, op func(a, b bool) bool) int {
	t00 := boolMask(op(false, false))
	t01 := boolMask(op(false, true))
	t10 := boolMask(op(true, false))
	t11 := boolMask(op(true, true))
	n := len(wVal)
	nw := len(wWords)
	c := 0
	for wi := 0; wi < nw; wi++ {
		tail := ^uint64(0)
		if wi == nw-1 {
			tail = BitsetTailMask(n)
		}
		allow := maskAllowWord(useMask, mv, wi, n, tail)
		up := presenceWord(u, wi, tail)
		vp := presenceWord(v, wi, tail)
		base := wi << 6
		uvw := packBoolWord(u.Dval, base, n)
		vvw := packBoolWord(v.Dval, base, n)
		both := up & vp
		tt := (t11 & uvw & vvw) | (t10 & uvw &^ vvw) | (t01 & vvw &^ uvw) | (t00 &^ (uvw | vvw))
		var pres, valw uint64
		if union {
			pres = (up | vp) & allow
			valw = (both & tt) | (up &^ vp & uvw) | (vp &^ up & vvw)
		} else {
			pres = both & allow
			valw = tt
		}
		valw &= pres
		wWords[wi] = pres
		c += bits.OnesCount64(pres)
		unpackBoolWord(wVal, base, n, valw)
	}
	return c
}

// BoolApplyBitset is the Boolean specialization of ApplyBitsetOut for
// index-free operators: f's two-entry truth table turns the value map into
// word arithmetic, 64 elements per step. Returns the output count.
func BoolApplyBitset(wVal []bool, wWords []uint64, u VecView[bool], useMask bool, mv MaskView, f func(x bool) bool) int {
	ff := boolMask(f(false))
	ft := boolMask(f(true))
	n := len(wVal)
	nw := len(wWords)
	c := 0
	for wi := 0; wi < nw; wi++ {
		tail := ^uint64(0)
		if wi == nw-1 {
			tail = BitsetTailMask(n)
		}
		pres := presenceWord(u, wi, tail) & maskAllowWord(useMask, mv, wi, n, tail)
		base := wi << 6
		uvw := packBoolWord(u.Dval, base, n)
		valw := ((ft & uvw) | (ff &^ uvw)) & pres
		wWords[wi] = pres
		c += bits.OnesCount64(pres)
		unpackBoolWord(wVal, base, n, valw)
	}
	return c
}

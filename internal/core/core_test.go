package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pushpull/internal/sparse"
)

// boolSR is the paper's Boolean semiring ({0,1}, AND, OR, 0) with terminal
// "true" — the BFS semiring.
func boolSR() SR[bool] {
	tr := true
	return SR[bool]{
		Add:      func(a, b bool) bool { return a || b },
		Id:       false,
		Terminal: &tr,
		Mul:      func(a, b bool) bool { return a && b },
		One:      true,
	}
}

// plusTimes is the standard arithmetic semiring; no terminal, so early-exit
// must be a no-op.
func plusTimes() SR[float64] {
	return SR[float64]{
		Add: func(a, b float64) float64 { return a + b },
		Id:  0,
		Mul: func(a, b float64) float64 { return a * b },
		One: 1,
	}
}

// minPlus is the tropical semiring used by SSSP.
func minPlus() SR[float64] {
	const inf = 1e300
	return SR[float64]{
		Add: func(a, b float64) float64 {
			if a < b {
				return a
			}
			return b
		},
		Id:  inf,
		Mul: func(a, b float64) float64 { return a + b },
		One: 0,
	}
}

func randCSR(rng *rand.Rand, rows, cols int, density float64) *sparse.CSR[float64] {
	var r, c []uint32
	var v []float64
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				r = append(r, uint32(i))
				c = append(c, uint32(j))
				v = append(v, 1+rng.Float64())
			}
		}
	}
	a, err := sparse.FromCOO(rows, cols, r, c, v, nil)
	if err != nil {
		panic(err)
	}
	return a
}

// denseMxv is the oracle: plain dense row-based multiply over the semiring.
func denseMxv(g *sparse.CSR[float64], uVal []float64, uPresent []bool, sr SR[float64]) ([]float64, []bool) {
	w := make([]float64, g.Rows)
	present := make([]bool, g.Rows)
	for i := 0; i < g.Rows; i++ {
		acc := sr.Id
		any := false
		ind, val := g.RowSpan(i)
		for k := range ind {
			if uPresent[ind[k]] {
				acc = sr.Add(acc, sr.Mul(val[k], uVal[ind[k]]))
				any = true
			}
		}
		if any {
			w[i] = acc
			present[i] = true
		}
	}
	return w, present
}

func sparseToDense(n int, ind []uint32, val []float64) ([]float64, []bool) {
	v := make([]float64, n)
	p := make([]bool, n)
	for i, idx := range ind {
		v[idx] = val[i]
		p[idx] = true
	}
	return v, p
}

func denseToSparse(val []float64, present []bool) ([]uint32, []float64) {
	var ind []uint32
	var out []float64
	for i := range val {
		if present[i] {
			ind = append(ind, uint32(i))
			out = append(out, val[i])
		}
	}
	return ind, out
}

func randVector(rng *rand.Rand, n int, density float64) ([]float64, []bool) {
	v := make([]float64, n)
	p := make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			v[i] = 1 + rng.Float64()
			p[i] = true
		}
	}
	return v, p
}

// bitmapView wraps raw value/presence arrays as a bitmap VecView,
// recounting the presence bits.
func bitmapView[T comparable](val []T, present []bool) VecView[T] {
	c := 0
	for _, p := range present {
		if p {
			c++
		}
	}
	return BitmapVec(val, present, c)
}

func TestRowMxvMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		g := randCSR(rng, n, n, 0.15)
		uVal, uPresent := randVector(rng, n, 0.4)
		uInd, uSparse := denseToSparse(uVal, uPresent)
		for _, sr := range []SR[float64]{plusTimes(), minPlus()} {
			wantV, wantP := denseMxv(g, uVal, uPresent, sr)
			// Bitmap view (the direct layout) and sparse view (kernel-side
			// materialization into workspace scratch) must agree.
			for _, uv := range []VecView[float64]{
				bitmapView(uVal, uPresent),
				SparseVec(n, uInd, uSparse),
			} {
				w := make([]float64, n)
				p := make([]bool, n)
				RowMxv(w, p, g, uv, sr, Opts{})
				for i := 0; i < n; i++ {
					if p[i] != wantP[i] {
						t.Fatalf("trial %d %v: presence[%d]=%v want %v", trial, uv.Kind, i, p[i], wantP[i])
					}
					if p[i] && !close(w[i], wantV[i]) {
						t.Fatalf("trial %d %v: w[%d]=%g want %g", trial, uv.Kind, i, w[i], wantV[i])
					}
				}
			}
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestColMxvAllMergeStrategiesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		g := randCSR(rng, n, n, 0.15)
		cscG := sparse.Transpose(g)
		uVal, uPresent := randVector(rng, n, 0.3)
		uInd, uSparse := denseToSparse(uVal, uPresent)
		sr := plusTimes()
		wantV, wantP := denseMxv(g, uVal, uPresent, sr)
		for _, mk := range []MergeKind{MergeRadix, MergeHeap, MergeSPA} {
			// Sparse view (direct gather) and bitmap view (kernel-side
			// compaction into an index list) must agree.
			for _, uv := range []VecView[float64]{
				SparseVec(n, uInd, uSparse),
				bitmapView(uVal, uPresent),
			} {
				wInd, wVal := ColMxv(cscG, uv, sr, Opts{Merge: mk})
				gotV, gotP := sparseToDense(n, wInd, wVal)
				for i := 0; i < n; i++ {
					if gotP[i] != wantP[i] {
						t.Fatalf("trial %d merge %d %v: presence[%d]=%v want %v", trial, mk, uv.Kind, i, gotP[i], wantP[i])
					}
					if gotP[i] && !close(gotV[i], wantV[i]) {
						t.Fatalf("trial %d merge %d %v: w[%d]=%g want %g", trial, mk, uv.Kind, i, gotV[i], wantV[i])
					}
				}
				for k := 1; k < len(wInd); k++ {
					if wInd[k-1] >= wInd[k] {
						t.Fatalf("trial %d merge %d %v: output indices unsorted", trial, mk, uv.Kind)
					}
				}
			}
		}
	}
}

func TestMaskedVariantsRespectMask(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		g := randCSR(rng, n, n, 0.2)
		cscG := sparse.Transpose(g)
		uVal, uPresent := randVector(rng, n, 0.5)
		uInd, uSparse := denseToSparse(uVal, uPresent)
		maskBits := make([]bool, n)
		for i := range maskBits {
			maskBits[i] = rng.Intn(2) == 0
		}
		for _, scmp := range []bool{false, true} {
			mask := MaskView{Bits: maskBits, Scmp: scmp}
			sr := plusTimes()
			wantV, wantP := denseMxv(g, uVal, uPresent, sr)
			for i := 0; i < n; i++ {
				if !mask.Allows(i) {
					wantP[i] = false
				}
			}
			// Row masked.
			w := make([]float64, n)
			p := make([]bool, n)
			RowMaskedMxv(w, p, g, bitmapView(uVal, uPresent), mask, sr, Opts{})
			for i := 0; i < n; i++ {
				if p[i] != wantP[i] || (p[i] && !close(w[i], wantV[i])) {
					t.Fatalf("trial %d scmp=%v row: mismatch at %d", trial, scmp, i)
				}
			}
			// Row masked via list.
			var list []uint32
			for i := 0; i < n; i++ {
				if mask.Allows(i) {
					list = append(list, uint32(i))
				}
			}
			w2 := make([]float64, n)
			p2 := make([]bool, n)
			RowMaskedMxv(w2, p2, g, bitmapView(uVal, uPresent), MaskView{Bits: maskBits, Scmp: scmp, List: list}, sr, Opts{})
			for i := 0; i < n; i++ {
				if p2[i] != wantP[i] || (p2[i] && !close(w2[i], wantV[i])) {
					t.Fatalf("trial %d scmp=%v row-list: mismatch at %d", trial, scmp, i)
				}
			}
			// Column masked.
			wInd, wVal := ColMaskedMxv(cscG, SparseVec(n, uInd, uSparse), mask, sr, Opts{})
			gotV, gotP := sparseToDense(n, wInd, wVal)
			for i := 0; i < n; i++ {
				if gotP[i] != wantP[i] || (gotP[i] && !close(gotV[i], wantV[i])) {
					t.Fatalf("trial %d scmp=%v col: mismatch at %d", trial, scmp, i)
				}
			}
		}
	}
}

func TestEarlyExitPreservesBooleanResults(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sr := boolSR()
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(50)
		gf := randCSR(rng, n, n, 0.2)
		g := sparse.Scale(gf, func(float64) bool { return true })
		uPresent := make([]bool, n)
		uVal := make([]bool, n)
		for i := range uPresent {
			if rng.Intn(3) == 0 {
				uPresent[i] = true
				uVal[i] = true
			}
		}
		maskBits := make([]bool, n)
		for i := range maskBits {
			maskBits[i] = rng.Intn(2) == 0
		}
		mask := MaskView{Bits: maskBits, Scmp: true}
		run := func(opts Opts) ([]bool, []bool) {
			w := make([]bool, n)
			p := make([]bool, n)
			RowMaskedMxv(w, p, g, bitmapView(uVal, uPresent), mask, sr, opts)
			return w, p
		}
		baseW, baseP := run(Opts{})
		for _, opts := range []Opts{
			{EarlyExit: true},
			{StructureOnly: true},
			{EarlyExit: true, StructureOnly: true},
			{EarlyExit: true, StructureOnly: true, Sequential: true},
		} {
			w, p := run(opts)
			for i := 0; i < n; i++ {
				if p[i] != baseP[i] || (p[i] && w[i] != baseW[i]) {
					t.Fatalf("trial %d opts %+v: diverges at %d", trial, opts, i)
				}
			}
		}
	}
}

func TestEarlyExitIgnoredWithoutTerminal(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	n := 30
	g := randCSR(rng, n, n, 0.3)
	uVal, uPresent := randVector(rng, n, 0.8)
	sr := plusTimes() // no terminal
	w1 := make([]float64, n)
	p1 := make([]bool, n)
	RowMxv(w1, p1, g, bitmapView(uVal, uPresent), sr, Opts{})
	w2 := make([]float64, n)
	p2 := make([]bool, n)
	RowMxv(w2, p2, g, bitmapView(uVal, uPresent), sr, Opts{EarlyExit: true})
	for i := 0; i < n; i++ {
		if p1[i] != p2[i] || (p1[i] && !close(w1[i], w2[i])) {
			t.Fatalf("early-exit changed plus-times result at %d", i)
		}
	}
}

func TestStructureOnlyColumnEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	sr := boolSR()
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		gf := randCSR(rng, n, n, 0.2)
		g := sparse.Scale(gf, func(float64) bool { return true })
		cscG := sparse.Transpose(g)
		var uInd []uint32
		var uVal []bool
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				uInd = append(uInd, uint32(i))
				uVal = append(uVal, true)
			}
		}
		for _, mk := range []MergeKind{MergeRadix, MergeHeap, MergeSPA} {
			aInd, aVal := ColMxv(cscG, SparseVec(n, uInd, uVal), sr, Opts{Merge: mk})
			bInd, bVal := ColMxv(cscG, SparseVec(n, uInd, uVal), sr, Opts{Merge: mk, StructureOnly: true})
			if len(aInd) != len(bInd) {
				t.Fatalf("trial %d merge %d: nnz %d vs %d", trial, mk, len(aInd), len(bInd))
			}
			for i := range aInd {
				if aInd[i] != bInd[i] || aVal[i] != bVal[i] {
					t.Fatalf("trial %d merge %d: entry %d differs", trial, mk, i)
				}
			}
		}
	}
}

func TestCountedKernelsMatchUncounted(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		g := randCSR(rng, n, n, 0.2)
		cscG := sparse.Transpose(g)
		uVal, uPresent := randVector(rng, n, 0.4)
		uInd, uSparse := denseToSparse(uVal, uPresent)
		sr := plusTimes()
		var c Counter

		w1 := make([]float64, n)
		p1 := make([]bool, n)
		RowMxv(w1, p1, g, bitmapView(uVal, uPresent), sr, Opts{})
		w2 := make([]float64, n)
		p2 := make([]bool, n)
		RowMxvCounted(w2, p2, g, uVal, uPresent, sr, Opts{}, &c)
		for i := range w1 {
			if p1[i] != p2[i] || (p1[i] && !close(w1[i], w2[i])) {
				t.Fatalf("trial %d: counted row kernel diverges at %d", trial, i)
			}
		}
		if c.MatrixAccesses == 0 && g.NNZ() > 0 {
			t.Fatal("counted kernel recorded no matrix accesses")
		}

		i1, v1 := ColMxv(cscG, SparseVec(n, uInd, uSparse), sr, Opts{Merge: MergeHeap})
		var c2 Counter
		i2, v2 := ColMxvCounted(cscG, uInd, uSparse, sr, Opts{}, &c2)
		if len(i1) != len(i2) {
			t.Fatalf("trial %d: counted col kernel nnz %d vs %d", trial, len(i2), len(i1))
		}
		for k := range i1 {
			if i1[k] != i2[k] || !close(v1[k], v2[k]) {
				t.Fatalf("trial %d: counted col kernel diverges at %d", trial, k)
			}
		}
	}
}

func TestCounterScaling(t *testing.T) {
	// The RAM-model counts must reproduce Table 1's shape: row unmasked
	// flat in nnz(f); row masked linear in nnz(m); column linear in nnz(f).
	rng := rand.New(rand.NewSource(27))
	n := 2000
	g := randCSR(rng, n, n, 0.01)
	cscG := sparse.Transpose(g)
	sr := plusTimes()

	countRow := func(density float64) int64 {
		uVal, uPresent := randVector(rng, n, density)
		var c Counter
		w := make([]float64, n)
		p := make([]bool, n)
		RowMxvCounted(w, p, g, uVal, uPresent, sr, Opts{}, &c)
		return c.MatrixAccesses
	}
	lo, hi := countRow(0.01), countRow(0.9)
	if lo != hi {
		t.Fatalf("row unmasked matrix accesses vary with input sparsity: %d vs %d", lo, hi)
	}

	countCol := func(density float64) int64 {
		uVal, uPresent := randVector(rng, n, density)
		uInd, uSparse := denseToSparse(uVal, uPresent)
		var c Counter
		ColMxvCounted(cscG, uInd, uSparse, sr, Opts{}, &c)
		return c.MatrixAccesses
	}
	if c1, c9 := countCol(0.1), countCol(0.9); c9 < 5*c1 {
		t.Fatalf("column accesses should scale with nnz(f): %d vs %d", c1, c9)
	}

	countMaskedRow := func(density float64) int64 {
		uVal, uPresent := randVector(rng, n, 1.0)
		maskBits := make([]bool, n)
		var list []uint32
		for i := range maskBits {
			if rng.Float64() < density {
				maskBits[i] = true
				list = append(list, uint32(i))
			}
		}
		var c Counter
		w := make([]float64, n)
		p := make([]bool, n)
		RowMaskedMxvCounted(w, p, g, uVal, uPresent, MaskView{Bits: maskBits, List: list}, sr, Opts{}, &c)
		return c.MatrixAccesses
	}
	if m1, m9 := countMaskedRow(0.1), countMaskedRow(0.9); m9 < 5*m1 {
		t.Fatalf("masked row accesses should scale with nnz(m): %d vs %d", m1, m9)
	}
}

func TestMxMMaskedTriangleOracle(t *testing.T) {
	// C⟨A⟩ = A·A over plus-times on a known graph: a 4-clique has 4
	// triangles; sum of C equals 6·#triangles for undirected A.
	var r, c []uint32
	var v []float64
	add := func(i, j uint32) { r = append(r, i, j); c = append(c, j, i); v = append(v, 1, 1) }
	add(0, 1)
	add(0, 2)
	add(0, 3)
	add(1, 2)
	add(1, 3)
	add(2, 3)
	a, err := sparse.FromCOO(4, 4, r, c, v, func(x, y float64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	sr := plusTimes()
	prod := MxMMasked(a, a, a.Ptr, a.Ind, sr, Opts{})
	sum := 0.0
	for _, x := range prod.Val {
		sum += x
	}
	if sum != 24 { // 6 × 4 triangles
		t.Fatalf("masked A·A sum = %g, want 24", sum)
	}
	// The output pattern must be a subset of the mask pattern.
	for i := 0; i < 4; i++ {
		mInd, _ := a.RowSpan(i)
		allowed := map[uint32]bool{}
		for _, j := range mInd {
			allowed[j] = true
		}
		pInd, _ := prod.RowSpan(i)
		for _, j := range pInd {
			if !allowed[j] {
				t.Fatalf("row %d: output column %d outside mask", i, j)
			}
		}
	}
}

func TestMxMMaskedMatchesDenseOracleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		a := randCSR(rng, n, n, 0.25)
		b := randCSR(rng, n, n, 0.25)
		m := randCSR(rng, n, n, 0.5)
		sr := plusTimes()
		got := MxMMasked(a, b, m.Ptr, m.Ind, sr, Opts{Sequential: seed%2 == 0})
		// Dense oracle.
		for i := 0; i < n; i++ {
			allowed := map[uint32]bool{}
			mi, _ := m.RowSpan(i)
			for _, j := range mi {
				allowed[j] = true
			}
			want := make([]float64, n)
			hit := make([]bool, n)
			ai, av := a.RowSpan(i)
			for t := range ai {
				bi, bv := b.RowSpan(int(ai[t]))
				for u := range bi {
					if allowed[bi[u]] {
						want[bi[u]] += av[t] * bv[u]
						hit[bi[u]] = true
					}
				}
			}
			gi, gv := got.RowSpan(i)
			cnt := 0
			for j := 0; j < n; j++ {
				if hit[j] {
					cnt++
				}
			}
			if len(gi) != cnt {
				return false
			}
			for k := range gi {
				if !hit[gi[k]] || !close(gv[k], want[gi[k]]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestColMxvEmptyInput(t *testing.T) {
	g := randCSR(rand.New(rand.NewSource(28)), 10, 10, 0.3)
	cscG := sparse.Transpose(g)
	for _, mk := range []MergeKind{MergeRadix, MergeHeap, MergeSPA} {
		ind, val := ColMxv(cscG, SparseVec[float64](10, nil, nil), plusTimes(), Opts{Merge: mk})
		if len(ind) != 0 || len(val) != 0 {
			t.Fatalf("merge %d: empty input produced output", mk)
		}
	}
}

func TestSRSaturated(t *testing.T) {
	sr := boolSR()
	if !sr.Saturated(true) || sr.Saturated(false) {
		t.Fatal("bool semiring saturation wrong")
	}
	pt := plusTimes()
	if pt.Saturated(1) {
		t.Fatal("plus-times has no terminal")
	}
}

func TestCounterAddTotal(t *testing.T) {
	a := Counter{MatrixAccesses: 1, VectorAccesses: 2, MaskAccesses: 3, MergeOps: 4}
	b := Counter{MatrixAccesses: 10, VectorAccesses: 20, MaskAccesses: 30, MergeOps: 40}
	a.Add(b)
	if a.Total() != 110 {
		t.Fatalf("Total=%d want 110", a.Total())
	}
}

func TestDirectionString(t *testing.T) {
	if Push.String() != "push" || Pull.String() != "pull" {
		t.Fatal("Direction.String mismatch")
	}
}

package core

import (
	"math/rand"
	"testing"
)

func TestBitsetHelpers(t *testing.T) {
	if BitsetWords(0) != 0 || BitsetWords(1) != 1 || BitsetWords(64) != 1 || BitsetWords(65) != 2 {
		t.Fatal("BitsetWords")
	}
	if BitsetTailMask(64) != ^uint64(0) || BitsetTailMask(1) != 1 || BitsetTailMask(67) != 7 {
		t.Fatal("BitsetTailMask")
	}
	n := 131
	words := make([]uint64, BitsetWords(n))
	for _, i := range []int{0, 1, 63, 64, 65, 130} {
		BitsetSet(words, i)
		if !BitsetGet(words, i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if BitsetCount(words) != 6 {
		t.Fatalf("count = %d", BitsetCount(words))
	}
	BitsetUnset(words, 64)
	if BitsetGet(words, 64) || BitsetCount(words) != 5 {
		t.Fatal("unset failed")
	}
	var got []int
	BitsetForEach(words, func(i int) { got = append(got, i) })
	want := []int{0, 1, 63, 65, 130}
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v", got)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("ForEach = %v, want %v", got, want)
		}
	}
	BitsetSetAll(words, n)
	if BitsetCount(words) != n {
		t.Fatalf("SetAll count = %d, want %d (tail must stay clear)", BitsetCount(words), n)
	}
	BitsetZero(words)
	if BitsetCount(words) != 0 {
		t.Fatal("Zero")
	}
}

func TestBitsetPackExpandRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 7, 63, 64, 65, 128, 200, 1024} {
		bools := make([]bool, n)
		for i := range bools {
			bools[i] = rng.Intn(2) == 1
		}
		words := make([]uint64, BitsetWords(n))
		c := BitsetFromBools(words, bools)
		wantC := 0
		for i, b := range bools {
			if b != BitsetGet(words, i) {
				t.Fatalf("n=%d bit %d mismatch", n, i)
			}
			if b {
				wantC++
			}
		}
		if c != wantC || BitsetCount(words) != wantC {
			t.Fatalf("n=%d count %d want %d", n, c, wantC)
		}
		// Tail invariant: no bits at positions ≥ n.
		if words[len(words)-1]&^BitsetTailMask(n) != 0 {
			t.Fatalf("n=%d tail bits set", n)
		}
		back := make([]bool, n)
		BitsetExpand(back, words)
		for i := range bools {
			if back[i] != bools[i] {
				t.Fatalf("n=%d expand bit %d", n, i)
			}
		}
	}
}

// TestBoolPackRoundTrip pins the unsafe movemask pack/unpack against the
// scalar oracle over random words, including the all-ones and alternating
// patterns that expose multiply-carry collisions.
func TestBoolPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	patterns := []uint64{0, ^uint64(0), 0xAAAAAAAAAAAAAAAA, 0x5555555555555555, 0x8000000000000001}
	for i := 0; i < 200; i++ {
		patterns = append(patterns, rng.Uint64())
	}
	vals := make([]bool, 64)
	for _, w := range patterns {
		unpackBoolWordFast(vals, 0, w)
		for k := 0; k < 64; k++ {
			if vals[k] != (w>>uint(k)&1 != 0) {
				t.Fatalf("unpack %x bit %d", w, k)
			}
		}
		if got := packBoolWordFast(vals, 0); got != w {
			t.Fatalf("pack(unpack(%x)) = %x", w, got)
		}
	}
}

// randomBoolViews builds the same logical vector in bitmap and bitset
// layouts for kernel cross-checks.
func randomBoolViews(rng *rand.Rand, n int, density float64) (bm, bs VecView[bool]) {
	val := make([]bool, n)
	present := make([]bool, n)
	words := make([]uint64, BitsetWords(n))
	nv := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			present[i] = true
			BitsetSet(words, i)
			val[i] = rng.Intn(2) == 1
			nv++
		}
	}
	return BitmapVec(val, present, nv), BitsetVec(val, words, nv)
}

// TestBitsetEWiseKernelsMatchBitmap cross-checks the bitset-out and
// Boolean truth-table kernels against the bitmap kernels over random
// operands, masks and operators.
func TestBitsetEWiseKernelsMatchBitmap(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ops := []func(a, b bool) bool{
		func(a, b bool) bool { return a && b },
		func(a, b bool) bool { return a || b },
		func(a, b bool) bool { return a != b },
		func(a, b bool) bool { return !a || b },
	}
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(200)
		uBM, uBS := randomBoolViews(rng, n, 0.2+rng.Float64()*0.8)
		vBM, vBS := randomBoolViews(rng, n, 0.2+rng.Float64()*0.8)
		op := ops[rng.Intn(len(ops))]

		// Optional word-packed mask with random complement.
		useMask := rng.Intn(2) == 1
		var mv MaskView
		if useMask {
			mw := make([]uint64, BitsetWords(n))
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 1 {
					BitsetSet(mw, i)
				}
			}
			mv = MaskView{Words: mw, Scmp: rng.Intn(2) == 1}
		}

		for _, union := range []bool{false, true} {
			wantVal := make([]bool, n)
			wantPresent := make([]bool, n)
			var wantC int
			if union {
				wantC = EWiseAddBitmap(wantVal, wantPresent, uBM, vBM, useMask, mv, op)
			} else {
				wantC = EWiseMultBitmap(wantVal, wantPresent, uBM, vBM, useMask, mv, op)
			}

			for name, run := range map[string]func(wVal []bool, wWords []uint64) int{
				"generic": func(wVal []bool, wWords []uint64) int {
					if union {
						return EWiseAddBitsetOut(wVal, wWords, uBS, vBS, useMask, mv, op)
					}
					return EWiseMultBitsetOut(wVal, wWords, uBS, vBS, useMask, mv, op)
				},
				"truth-table": func(wVal []bool, wWords []uint64) int {
					return BoolEWiseBitset(union, wVal, wWords, uBS, vBS, useMask, mv, op)
				},
			} {
				gotVal := make([]bool, n)
				gotWords := make([]uint64, BitsetWords(n))
				gotC := run(gotVal, gotWords)
				if gotC != wantC {
					t.Fatalf("trial %d %s union=%v: count %d want %d", trial, name, union, gotC, wantC)
				}
				for i := 0; i < n; i++ {
					if BitsetGet(gotWords, i) != wantPresent[i] {
						t.Fatalf("trial %d %s union=%v: presence %d", trial, name, union, i)
					}
					if wantPresent[i] && gotVal[i] != wantVal[i] {
						t.Fatalf("trial %d %s union=%v: value %d", trial, name, union, i)
					}
				}
				if gotWords[len(gotWords)-1]&^BitsetTailMask(n) != 0 {
					t.Fatalf("trial %d %s: tail bits set", trial, name)
				}
			}
		}

		// Apply: truth-table and generic against the bitmap kernel.
		not := func(x bool) bool { return !x }
		wantVal := make([]bool, n)
		wantPresent := make([]bool, n)
		wantC := ApplyBitmap(wantVal, wantPresent, uBM, useMask, mv, func(_ int, x bool) bool { return not(x) })
		gotVal := make([]bool, n)
		gotWords := make([]uint64, BitsetWords(n))
		if gotC := BoolApplyBitset(gotVal, gotWords, uBS, useMask, mv, not); gotC != wantC {
			t.Fatalf("trial %d apply: count %d want %d", trial, gotC, wantC)
		}
		for i := 0; i < n; i++ {
			if BitsetGet(gotWords, i) != wantPresent[i] || (wantPresent[i] && gotVal[i] != wantVal[i]) {
				t.Fatalf("trial %d apply: position %d", trial, i)
			}
		}
	}
}

// TestRowMxvBitsetInputMatchesBitmap pins the pull kernel's single-bit
// probe path against the byte-probe path.
func TestRowMxvBitsetInputMatchesBitmap(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	sr := SR[bool]{
		Add: func(a, b bool) bool { return a || b },
		Id:  false,
		Mul: func(a, b bool) bool { return a && b },
		One: true,
	}
	tr := true
	sr.Terminal = &tr
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(120)
		g := randSymCSR(rng, n, 0.1)
		uBM, uBS := randomBoolViews(rng, n, 0.4)
		// Mask in word-packed layout, complemented half the time.
		mw := make([]uint64, BitsetWords(n))
		for i := 0; i < n; i++ {
			if rng.Intn(3) != 0 {
				BitsetSet(mw, i)
			}
		}
		mask := MaskView{Words: mw, Scmp: rng.Intn(2) == 1}
		for _, opts := range []Opts{{}, {StructureOnly: true, EarlyExit: true}, {Sequential: true}} {
			wantV := make([]bool, n)
			wantP := make([]bool, n)
			gotV := make([]bool, n)
			gotP := make([]bool, n)
			wantN := RowMaskedMxv(wantV, wantP, g, uBM, mask, sr, opts)
			gotN := RowMaskedMxv(gotV, gotP, g, uBS, mask, sr, opts)
			if wantN != gotN {
				t.Fatalf("trial %d: nvals %d want %d", trial, gotN, wantN)
			}
			for i := 0; i < n; i++ {
				if wantP[i] != gotP[i] || (wantP[i] && wantV[i] != gotV[i]) {
					t.Fatalf("trial %d: row %d differs", trial, i)
				}
			}
		}
	}
}

// TestBitsetIndices pins the expansion used by the sharded planner to turn
// a word-packed frontier back into its exact index list: ascending order,
// capacity reuse, no phantom bits.
func TestBitsetIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		words := make([]uint64, BitsetWords(n))
		var want []uint32
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				BitsetSet(words, i)
				want = append(want, uint32(i))
			}
		}
		var buf []uint32
		buf = BitsetIndices(words, buf)
		if len(buf) != len(want) {
			t.Fatalf("trial %d: %d indices, want %d", trial, len(buf), len(want))
		}
		for k := range want {
			if buf[k] != want[k] {
				t.Fatalf("trial %d: index %d is %d, want %d", trial, k, buf[k], want[k])
			}
		}
		// Reuse must not allocate once grown: the returned slice shares the
		// original backing array when capacity suffices.
		again := BitsetIndices(words, buf)
		if cap(buf) > 0 && len(again) > 0 && &again[0] != &buf[:1][0] {
			t.Fatalf("trial %d: reuse reallocated despite sufficient capacity", trial)
		}
	}
}

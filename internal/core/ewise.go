package core

import "sort"

// This file implements the format-aware element-wise kernels the unified
// operation pipeline dispatches to: eWiseMult (pattern intersection),
// eWiseAdd (pattern union), apply (value map over one pattern), select
// (pattern filter) and extract (index gather). Like the matvec kernels they
// consume operands through VecView, honour a MaskView on the *output*
// positions, and come in two output layouts so the pipeline can preserve
// operand formats:
//
//   - sparse-out kernels append (index, value) pairs into caller-provided
//     slices (reusable vector storage — zero allocations past the
//     high-water mark) and return the grown slices;
//   - bitmap-out kernels write into caller-provided value/presence arrays
//     (cleared by the caller) and return the number of stored outputs, so
//     dense∘dense eWise loops run over the value arrays directly and a
//     bitmap operand never round-trips through a sparse list.
//
// The mult kernels require at least one O(1)-probe side or one sparse side
// as documented per function; the pipeline picks the kernel from the
// operand kinds so no combination ever materializes a converted copy.

// At returns the stored value at position i, probing in O(1) for bitmap,
// bitset and dense views and by binary search for sparse views.
func (v VecView[T]) At(i int) (T, bool) {
	switch v.Kind {
	case KindDense:
		return v.Dval[i], true
	case KindBitmap:
		if v.Present[i] {
			return v.Dval[i], true
		}
		var zero T
		return zero, false
	case KindBitset:
		if BitsetGet(v.Words, i) {
			return v.Dval[i], true
		}
		var zero T
		return zero, false
	default:
		pos := sort.Search(len(v.Ind), func(k int) bool { return v.Ind[k] >= uint32(i) })
		if pos < len(v.Ind) && v.Ind[pos] == uint32(i) {
			return v.Val[pos], true
		}
		var zero T
		return zero, false
	}
}

// allows reports whether the (possibly absent) mask passes output index i.
func allows(useMask bool, mv MaskView, i int) bool {
	return !useMask || mv.Allows(i)
}

// has reports presence at i for the O(1)-probe view kinds (bitmap, bitset,
// dense — never call it on a sparse view): a bit probe for bitset views, a
// byte probe for bitmap, unconditionally true for dense.
func (v VecView[T]) has(i int) bool {
	if v.Words != nil {
		return BitsetGet(v.Words, i)
	}
	return v.Present == nil || v.Present[i]
}

// EWiseMultSparse computes the masked intersection u .⊗ v into a sparse
// (ind, val) pair list. At least one operand must be sparse: two sparse
// operands run a two-pointer merge, a mixed pair iterates the sparse side
// and probes the other in O(1). Appends into the passed slices and returns
// them.
func EWiseMultSparse[T comparable](ind []uint32, val []T, u, v VecView[T], useMask bool, mv MaskView, op func(a, b T) T) ([]uint32, []T) {
	if u.Kind == KindSparse && v.Kind == KindSparse {
		i, j := 0, 0
		for i < len(u.Ind) && j < len(v.Ind) {
			switch {
			case u.Ind[i] < v.Ind[j]:
				i++
			case u.Ind[i] > v.Ind[j]:
				j++
			default:
				if allows(useMask, mv, int(u.Ind[i])) {
					ind = append(ind, u.Ind[i])
					val = append(val, op(u.Val[i], v.Val[j]))
				}
				i++
				j++
			}
		}
		return ind, val
	}
	// One sparse side drives; the other must be O(1)-probe.
	if u.Kind == KindSparse {
		for k, idx := range u.Ind {
			if !allows(useMask, mv, int(idx)) {
				continue
			}
			if x, ok := v.At(int(idx)); ok {
				ind = append(ind, idx)
				val = append(val, op(u.Val[k], x))
			}
		}
		return ind, val
	}
	for k, idx := range v.Ind {
		if !allows(useMask, mv, int(idx)) {
			continue
		}
		if x, ok := u.At(int(idx)); ok {
			ind = append(ind, idx)
			val = append(val, op(x, v.Val[k]))
		}
	}
	return ind, val
}

// EWiseMultBitmap computes the masked intersection u .⊗ v into bitmap
// buffers (wPresent all-false on entry). Both operands must be O(1)-probe
// (bitmap or dense); dense∘dense runs entirely over the value arrays with
// no presence probes at all. Returns the output count.
func EWiseMultBitmap[T comparable](wVal []T, wPresent []bool, u, v VecView[T], useMask bool, mv MaskView, op func(a, b T) T) int {
	n := len(wVal)
	c := 0
	if u.Kind == KindDense && v.Kind == KindDense && !useMask {
		uv, vv := u.Dval, v.Dval
		for i := 0; i < n; i++ {
			wVal[i] = op(uv[i], vv[i])
			wPresent[i] = true
		}
		return n
	}
	for i := 0; i < n; i++ {
		if !allows(useMask, mv, i) {
			continue
		}
		if !u.has(i) || !v.has(i) {
			continue
		}
		wVal[i] = op(u.Dval[i], v.Dval[i])
		wPresent[i] = true
		c++
	}
	return c
}

// EWiseAddSparse computes the masked union u ⊕ v into a sparse (ind, val)
// list. Both operands must be sparse (a union with a bitmap or dense
// operand is at least that dense, so the pipeline routes it to the bitmap
// kernel instead).
func EWiseAddSparse[T comparable](ind []uint32, val []T, u, v VecView[T], useMask bool, mv MaskView, op func(a, b T) T) ([]uint32, []T) {
	i, j := 0, 0
	for i < len(u.Ind) || j < len(v.Ind) {
		switch {
		case j >= len(v.Ind) || (i < len(u.Ind) && u.Ind[i] < v.Ind[j]):
			if allows(useMask, mv, int(u.Ind[i])) {
				ind = append(ind, u.Ind[i])
				val = append(val, u.Val[i])
			}
			i++
		case i >= len(u.Ind) || v.Ind[j] < u.Ind[i]:
			if allows(useMask, mv, int(v.Ind[j])) {
				ind = append(ind, v.Ind[j])
				val = append(val, v.Val[j])
			}
			j++
		default:
			if allows(useMask, mv, int(u.Ind[i])) {
				ind = append(ind, u.Ind[i])
				val = append(val, op(u.Val[i], v.Val[j]))
			}
			i++
			j++
		}
	}
	return ind, val
}

// EWiseAddBitmap computes the masked union u ⊕ v into bitmap buffers
// (wPresent all-false on entry), accepting any operand kind combination: a
// non-sparse side is copied in a single masked scan, a sparse side is
// scattered on top in O(nnz). Returns the output count.
func EWiseAddBitmap[T comparable](wVal []T, wPresent []bool, u, v VecView[T], useMask bool, mv MaskView, op func(a, b T) T) int {
	n := len(wVal)
	c := 0
	if u.Kind != KindSparse && v.Kind != KindSparse {
		if u.Kind == KindDense && v.Kind == KindDense && !useMask {
			uv, vv := u.Dval, v.Dval
			for i := 0; i < n; i++ {
				wVal[i] = op(uv[i], vv[i])
				wPresent[i] = true
			}
			return n
		}
		for i := 0; i < n; i++ {
			if !allows(useMask, mv, i) {
				continue
			}
			uHas := u.has(i)
			vHas := v.has(i)
			switch {
			case uHas && vHas:
				wVal[i] = op(u.Dval[i], v.Dval[i])
			case uHas:
				wVal[i] = u.Dval[i]
			case vHas:
				wVal[i] = v.Dval[i]
			default:
				continue
			}
			wPresent[i] = true
			c++
		}
		return c
	}
	// One side is sparse. Copy the denser side first, then fold the sparse
	// side in, keeping op's operand order (u first).
	base, scat := u, v
	scatIsV := true
	if u.Kind == KindSparse {
		base, scat = v, u
		scatIsV = false
	}
	for i := 0; i < n; i++ {
		if !allows(useMask, mv, i) {
			continue
		}
		if !base.has(i) {
			continue
		}
		wVal[i] = base.Dval[i]
		wPresent[i] = true
		c++
	}
	for k, idx := range scat.Ind {
		i := int(idx)
		if !allows(useMask, mv, i) {
			continue
		}
		x := scat.Val[k]
		if wPresent[i] {
			if scatIsV {
				wVal[i] = op(wVal[i], x)
			} else {
				wVal[i] = op(x, wVal[i])
			}
		} else {
			wVal[i] = x
			wPresent[i] = true
			c++
		}
	}
	return c
}

// ApplySparse computes w = f(i, u(i)) over a sparse u's pattern into a
// sparse (ind, val) list, honouring the output mask.
func ApplySparse[T comparable](ind []uint32, val []T, u VecView[T], useMask bool, mv MaskView, f func(i int, x T) T) ([]uint32, []T) {
	for k, idx := range u.Ind {
		if !allows(useMask, mv, int(idx)) {
			continue
		}
		ind = append(ind, idx)
		val = append(val, f(int(idx), u.Val[k]))
	}
	return ind, val
}

// ApplyBitmap computes w = f(i, u(i)) over a bitmap or dense u into bitmap
// buffers (wPresent all-false on entry); a dense input runs probe-free.
// Returns the output count.
func ApplyBitmap[T comparable](wVal []T, wPresent []bool, u VecView[T], useMask bool, mv MaskView, f func(i int, x T) T) int {
	n := len(wVal)
	if u.Kind == KindDense && !useMask {
		uv := u.Dval
		for i := 0; i < n; i++ {
			wVal[i] = f(i, uv[i])
			wPresent[i] = true
		}
		return n
	}
	c := 0
	for i := 0; i < n; i++ {
		if !allows(useMask, mv, i) {
			continue
		}
		if !u.has(i) {
			continue
		}
		wVal[i] = f(i, u.Dval[i])
		wPresent[i] = true
		c++
	}
	return c
}

// SelectSparse keeps the elements of a sparse u passing pred (and the
// output mask) in a sparse (ind, val) list.
func SelectSparse[T comparable](ind []uint32, val []T, u VecView[T], useMask bool, mv MaskView, pred func(i int, x T) bool) ([]uint32, []T) {
	for k, idx := range u.Ind {
		if !allows(useMask, mv, int(idx)) {
			continue
		}
		if pred(int(idx), u.Val[k]) {
			ind = append(ind, idx)
			val = append(val, u.Val[k])
		}
	}
	return ind, val
}

// SelectBitmap keeps the elements of a bitmap or dense u passing pred (and
// the output mask) in bitmap buffers (wPresent all-false on entry). Returns
// the output count.
func SelectBitmap[T comparable](wVal []T, wPresent []bool, u VecView[T], useMask bool, mv MaskView, pred func(i int, x T) bool) int {
	n := len(wVal)
	c := 0
	for i := 0; i < n; i++ {
		if !allows(useMask, mv, i) {
			continue
		}
		if !u.has(i) {
			continue
		}
		if pred(i, u.Dval[i]) {
			wVal[i] = u.Dval[i]
			wPresent[i] = true
			c++
		}
	}
	return c
}

// ExtractSparse gathers w(k) = u(indices[k]) where present into a sparse
// (ind, val) list; the mask applies to the *output* position k.
func ExtractSparse[T comparable](ind []uint32, val []T, u VecView[T], indices []uint32, useMask bool, mv MaskView) ([]uint32, []T) {
	for k, idx := range indices {
		if !allows(useMask, mv, k) {
			continue
		}
		if x, ok := u.At(int(idx)); ok {
			ind = append(ind, uint32(k))
			val = append(val, x)
		}
	}
	return ind, val
}

// ExtractBitmap gathers w(k) = u(indices[k]) from an O(1)-probe u into
// bitmap buffers (wPresent all-false on entry). Returns the output count.
func ExtractBitmap[T comparable](wVal []T, wPresent []bool, u VecView[T], indices []uint32, useMask bool, mv MaskView) int {
	c := 0
	for k, idx := range indices {
		if !allows(useMask, mv, k) {
			continue
		}
		if !u.has(int(idx)) {
			continue
		}
		wVal[k] = u.Dval[idx]
		wPresent[k] = true
		c++
	}
	return c
}

package core

import (
	"math"
	"testing"
)

// balancedModel is a plausible fitted model where the per-term weights are
// of the same order — decisions should roughly track the unit model's.
func balancedModel() CostModel {
	return CostModel{
		GatherNs: 2, ProbeBoolNs: 2, ProbeWordNs: 1, ProbeDenseNs: 0.5,
		RowNs: 3, ScatterNs: 2, SortNs: 2, SetupNs: 500,
	}
}

func TestCostModelValidate(t *testing.T) {
	if err := balancedModel().Validate(); err != nil {
		t.Fatalf("balanced model rejected: %v", err)
	}
	bad := balancedModel()
	bad.RowNs = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Fatal("NaN coefficient accepted")
	}
	bad = balancedModel()
	bad.GatherNs = math.Inf(1)
	if err := bad.Validate(); err == nil {
		t.Fatal("Inf coefficient accepted")
	}
	bad = balancedModel()
	bad.SortNs = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative coefficient accepted")
	}
	if err := (CostModel{}).Validate(); err == nil {
		t.Fatal("all-zero model accepted as a profile")
	}
	if (CostModel{}).Calibrated() {
		t.Fatal("zero model claims to be calibrated")
	}
}

// switchIndex sweeps a growing frontier through a stateful planner and
// returns the first sweep step that decided Pull (len(sweep) if none).
func switchIndex(t *testing.T, m CostModel, kind VecKind) int {
	t.Helper()
	const n, d = 100_000, 16.0
	var st PlanState
	for step := 0; step < 20; step++ {
		nnz := 1 << step
		if nnz > n {
			nnz = n
		}
		p := DecideDirection(PlanInput{
			NNZ: nnz, N: n, OutRows: n,
			PushEdges: float64(nnz) * d, AvgDeg: d, MaskAllowFrac: 1,
			Model: m, InKind: kind,
		}, &st)
		if p.Dir == Pull {
			return step
		}
	}
	return 20
}

// TestCalibratedDecisionMonotonicity pins the planner's response to
// extreme coefficient ratios: a host where pull's row scan is expensive
// must switch push→pull strictly later in a growing sweep than a host
// where push's gather is expensive, with a balanced model in between.
func TestCalibratedDecisionMonotonicity(t *testing.T) {
	pullExpensive := balancedModel()
	pullExpensive.RowNs, pullExpensive.ProbeBoolNs = 300, 100
	pushExpensive := balancedModel()
	pushExpensive.GatherNs, pushExpensive.SortNs = 300, 100

	early := switchIndex(t, pushExpensive, KindBitmap)
	mid := switchIndex(t, balancedModel(), KindBitmap)
	late := switchIndex(t, pullExpensive, KindBitmap)
	if !(early <= mid && mid < late) {
		t.Fatalf("switch points not monotone in coefficient ratio: push-expensive %d, balanced %d, pull-expensive %d",
			early, mid, late)
	}
}

// TestCalibratedProbeKindOrdering checks the input-kind pricing: with
// distinct probe coefficients, the pull estimate must be cheapest for
// dense inputs, then bitset, then bitmap (and sparse prices as bitmap,
// since it materializes into one).
func TestCalibratedProbeKindOrdering(t *testing.T) {
	m := balancedModel()
	in := PlanInput{NNZ: 1000, N: 10000, OutRows: 10000, PushEdges: 16000, AvgDeg: 16, MaskAllowFrac: 1, Model: m}

	cost := func(k VecKind) float64 {
		in.InKind = k
		return DecideDirection(in, nil).PullCost
	}
	dense, bitset, bitmap, sparse := cost(KindDense), cost(KindBitset), cost(KindBitmap), cost(KindSparse)
	if !(dense < bitset && bitset < bitmap) {
		t.Fatalf("probe pricing out of order: dense %g, bitset %g, bitmap %g", dense, bitset, bitmap)
	}
	if sparse != bitmap {
		t.Fatalf("sparse input should price as a materialized bitmap: %g vs %g", sparse, bitmap)
	}
}

// TestPushScatterCostReplacesSortTerm is the satellite fix: once the plan
// selects the sort-free bitmap scatter, PushCost must not charge the log₂
// multiway-merge factor — under both the unit model and a calibrated one.
func TestPushScatterCostReplacesSortTerm(t *testing.T) {
	// Dense-ish frontier well past BitmapOutFraction, big nnz so the merge
	// factor is large — sort-priced push would lose to pull, scatter-priced
	// push wins.
	in := PlanInput{NNZ: 4000, N: 10000, OutRows: 10000, PushEdges: 40000, AvgDeg: 10, MaskAllowFrac: 1}

	p := DecideDirection(in, nil)
	if p.Dir != Push || !p.PushOutBitmap {
		t.Fatalf("setup broken, want a bitmap-scatter push plan: %+v", p)
	}
	sortCost := in.PushEdges * math.Log2(float64(in.NNZ)+2)
	wantScatter := in.PushEdges*unitScatterEdge + float64(in.OutRows)*unitScatterClear
	if p.PushCost >= sortCost {
		t.Fatalf("unit PushCost %g still charges the sort (%g)", p.PushCost, sortCost)
	}
	if p.PushCost != wantScatter {
		t.Fatalf("unit scatter cost %g, want %g", p.PushCost, wantScatter)
	}

	m := balancedModel()
	in.Model = m
	p = DecideDirection(in, nil)
	if !p.PushOutBitmap {
		t.Fatalf("calibrated plan lost the scatter advice: %+v", p)
	}
	calSort := m.SetupNs + in.PushEdges*(m.GatherNs+math.Log2(float64(in.NNZ)+2)*m.SortNs)
	calScatter := m.SetupNs + in.PushEdges*(m.GatherNs+m.ScatterNs)
	if p.PushCost != calScatter || p.PushCost >= calSort {
		t.Fatalf("calibrated scatter cost %g, want %g (< sort %g)", p.PushCost, calScatter, calSort)
	}
	if p.PredictedNs != p.PushCost {
		t.Fatalf("PredictedNs %g should equal the chosen push cost %g", p.PredictedNs, p.PushCost)
	}

	// Below the scatter threshold the sort term is still charged.
	in.Model = CostModel{}
	in.PushEdges, in.NNZ = 100, 30
	p = DecideDirection(in, nil)
	if p.PushOutBitmap {
		t.Fatalf("sparse output should not advise scatter: %+v", p)
	}
	if want := in.PushEdges * math.Log2(float64(in.NNZ)+2); p.PushCost != want {
		t.Fatalf("sparse-output push cost %g, want sort estimate %g", p.PushCost, want)
	}
}

// TestUnitModelPredictsNoNs pins that the unit model never claims its
// costs are nanoseconds (PredictedNs drives the feedback corrector, which
// must stay inert without a calibrated profile).
func TestUnitModelPredictsNoNs(t *testing.T) {
	p := DecideDirection(PlanInput{NNZ: 10, N: 1000, OutRows: 1000, PushEdges: 100, AvgDeg: 10, MaskAllowFrac: 1}, nil)
	if p.PredictedNs != 0 {
		t.Fatalf("unit model set PredictedNs = %g", p.PredictedNs)
	}
}

func TestCorrectorConvergesAndClamps(t *testing.T) {
	var c Corrector
	if c.Scale(Push) != 1 || c.Scale(Pull) != 1 {
		t.Fatal("unprimed corrector should scale by 1")
	}
	// Kernel consistently 4× slower than predicted: the push scale must
	// converge toward 4 while pull stays untouched.
	for i := 0; i < 40; i++ {
		c.Observe(Push, 1000, 4000)
	}
	if s := c.Scale(Push); math.Abs(s-4) > 0.1 {
		t.Fatalf("push scale %g, want ≈4", s)
	}
	if c.Scale(Pull) != 1 {
		t.Fatalf("pull scale moved: %g", c.Scale(Pull))
	}
	if c.Observations(Push) != 40 || c.Observations(Pull) != 0 {
		t.Fatalf("observation counts: push %d pull %d", c.Observations(Push), c.Observations(Pull))
	}

	// A degenerate measurement is clamped, not absorbed verbatim.
	c.Reset()
	c.Observe(Pull, 1, 1e12)
	if s := c.Scale(Pull); s > correctorClamp {
		t.Fatalf("ratio clamp missing: %g", s)
	}
	// Non-positive predictions (unit model) are ignored entirely.
	c.Reset()
	c.Observe(Push, 0, 500)
	c.Observe(Push, -3, 500)
	c.Observe(Push, 100, 0)
	if c.Scale(Push) != 1 || c.Observations(Push) != 0 {
		t.Fatal("corrector absorbed an unpriced observation")
	}
	// Nil receiver is safe (unplanned paths pass no corrector).
	var nilC *Corrector
	nilC.Observe(Push, 1, 1)
	if nilC.Scale(Push) != 1 || nilC.Observations(Pull) != 0 {
		t.Fatal("nil corrector misbehaved")
	}
}

// TestCorrectorDecaysUnobservedDirection pins the explore/exploit contract:
// a direction the planner stops running receives no fresh timings, so its
// scale — possibly inflated by one degenerate cold measurement — must relax
// toward 1 as the other direction keeps being observed, instead of banning
// the direction forever.
func TestCorrectorDecaysUnobservedDirection(t *testing.T) {
	var c Corrector
	// One cold pull measurement 10× over prediction primes a heavy penalty.
	c.Observe(Pull, 1000, 10000)
	inflated := c.Scale(Pull)
	if inflated < 9 {
		t.Fatalf("pull scale %g, want ≈10 after the cold sample", inflated)
	}
	// Push-only observations thereafter: pull's stale scale must shrink
	// monotonically toward 1 while push's own converges normally.
	prev := inflated
	for i := 0; i < 60; i++ {
		c.Observe(Push, 1000, 1000)
		s := c.Scale(Pull)
		if s > prev {
			t.Fatalf("pull scale rose without a pull observation: %g -> %g", prev, s)
		}
		prev = s
	}
	if prev > 1.1 {
		t.Fatalf("pull scale %g after 60 one-sided observations, want ≈1", prev)
	}
	if s := c.Scale(Push); math.Abs(s-1) > 1e-9 {
		t.Fatalf("push scale %g, want 1", s)
	}
	// An unprimed direction stays unprimed: decay never invents a scale.
	c.Reset()
	c.Observe(Push, 1000, 2000)
	if c.Scale(Pull) != 1 {
		t.Fatalf("decay primed an unobserved direction: %g", c.Scale(Pull))
	}
}

// TestCorrectorFlipsDecision runs the whole feedback loop through the
// planner: a profile that badly underprices pull must, after a few
// observed (predicted, measured) pairs, stop choosing pull at a frontier
// where the measurements say push is faster.
func TestCorrectorFlipsDecision(t *testing.T) {
	m := balancedModel()
	m.RowNs, m.ProbeBoolNs = 0.2, 0.2 // pull looks ~4× cheaper than it is
	var corr Corrector
	in := PlanInput{
		NNZ: 2000, N: 10000, OutRows: 10000,
		PushEdges: 20000, AvgDeg: 10, MaskAllowFrac: 1,
		Model: m, InKind: KindBitmap, Correct: &corr,
	}
	p := DecideDirection(in, nil)
	if p.Dir != Pull {
		t.Fatalf("mispriced profile should start on pull: %+v", p)
	}
	// Reality: the machine's pull time is fixed at 50× the *raw* model
	// estimate. PredictedNs must stay the uncorrected estimate while the
	// corrector converges — if correction leaked into the prediction, the
	// observed ratio would shrink each round and the EWMA would stall at
	// the square root of the true error.
	machinePullNs := p.PredictedNs * 50
	raw := p.PredictedNs
	for i := 0; i < 12 && p.Dir == Pull; i++ {
		corr.Observe(Pull, p.PredictedNs, machinePullNs)
		p = DecideDirection(in, nil)
		if p.Dir == Pull && p.PredictedNs != raw {
			t.Fatalf("corrector leaked into PredictedNs: %g, raw estimate %g", p.PredictedNs, raw)
		}
	}
	if p.Dir != Push {
		t.Fatalf("corrector failed to overturn the mispriced pull: %+v (pull scale %g)", p, corr.Scale(Pull))
	}
}

// TestCorrectorShardPooledPrior pins the hierarchical fallback: a shard
// that has never measured a direction reads the parent pool's scale for
// it, its own measurements override the pool, and the exploration decay
// relaxes a stale shard scale toward the pool rather than optimistic 1.
func TestCorrectorShardPooledPrior(t *testing.T) {
	var c Corrector
	c.Observe(Push, 100, 300) // pool: push runs 3x the raw estimate
	if s := c.Shard(4).Scale(Push); s != 3 {
		t.Fatalf("cold shard push scale = %v, want pooled 3", s)
	}
	if s := c.Shard(4).Scale(Pull); s != 1 {
		t.Fatalf("cold shard pull scale = %v, want 1 (pool unprimed too)", s)
	}
	c.Shard(4).Observe(Push, 100, 600) // shard 4's own push: 6x
	if s := c.Shard(4).Scale(Push); s != 6 {
		t.Fatalf("primed shard push scale = %v, want own 6 over pooled 3", s)
	}
	if s := c.Shard(2).Scale(Push); s != 3 {
		t.Fatalf("sibling shard push scale = %v, want pooled 3 (no cross-shard leak)", s)
	}
	if s := c.Scale(Push); s != 3 {
		t.Fatalf("pool scale = %v, want 3 (shard observation must not leak up)", s)
	}

	// Decay target: shard 4's pull goes stale while push is re-observed;
	// it must relax toward the pooled pull scale, not toward 1.
	c.Observe(Pull, 100, 500) // pool: pull runs 5x
	c.Shard(4).Observe(Pull, 100, 900)
	for i := 0; i < 200; i++ {
		c.Shard(4).Observe(Push, 100, 600)
	}
	if s, pool := c.Shard(4).Scale(Pull), c.Scale(Pull); math.Abs(s-pool) > 0.01 {
		t.Fatalf("stale shard pull scale %v did not relax to pooled %v", s, pool)
	}
}

package core

import (
	"math/rand"
	"runtime/debug"
	"testing"

	"pushpull/internal/sparse"
)

// TestKernelsWithWorkspaceMatchFresh runs every kernel variant twice with a
// pinned, shared workspace and checks the results are bit-identical to the
// workspace-free path (Opts.Ws == nil). Running twice matters: the second
// call reuses every buffer the first call dirtied, so stale state (the SPA
// presence array, the mask bitmap, leftover gather contents) would surface
// as a mismatch.
func TestKernelsWithWorkspaceMatchFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sr := plusTimes()
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(50)
		g := randCSR(rng, n, n, 0.2)
		cscG := sparse.Transpose(g)
		uVal, uPresent := randVector(rng, n, 0.3)
		uInd, uSparse := denseToSparse(uVal, uPresent)
		maskBits := make([]bool, n)
		for i := range maskBits {
			maskBits[i] = rng.Intn(2) == 0
		}
		mask := MaskView{Bits: maskBits, Scmp: trial%2 == 0}

		ws := NewWorkspace(n, n)
		wsOpts := func(m MergeKind) Opts { return Opts{Merge: m, Ws: ws} }

		for rep := 0; rep < 2; rep++ {
			// Row unmasked.
			w1 := make([]float64, n)
			p1 := make([]bool, n)
			nv1 := RowMxv(w1, p1, g, bitmapView(uVal, uPresent), sr, wsOpts(MergeRadix))
			w2 := make([]float64, n)
			p2 := make([]bool, n)
			nv2 := RowMxv(w2, p2, g, bitmapView(uVal, uPresent), sr, Opts{})
			if nv1 != nv2 {
				t.Fatalf("trial %d rep %d: RowMxv nvals %d != %d", trial, rep, nv1, nv2)
			}
			compareDense(t, "RowMxv", w1, p1, w2, p2)

			// Row masked.
			m1 := make([]float64, n)
			q1 := make([]bool, n)
			mv1 := RowMaskedMxv(m1, q1, g, bitmapView(uVal, uPresent), mask, sr, wsOpts(MergeRadix))
			m2 := make([]float64, n)
			q2 := make([]bool, n)
			mv2 := RowMaskedMxv(m2, q2, g, bitmapView(uVal, uPresent), mask, sr, Opts{})
			if mv1 != mv2 {
				t.Fatalf("trial %d rep %d: RowMaskedMxv nvals %d != %d", trial, rep, mv1, mv2)
			}
			compareDense(t, "RowMaskedMxv", m1, q1, m2, q2)

			// Column unmasked + masked, every merge strategy.
			for _, mk := range []MergeKind{MergeRadix, MergeHeap, MergeSPA} {
				i1, v1 := ColMxv(cscG, SparseVec(n, uInd, uSparse), sr, wsOpts(mk))
				i2, v2 := ColMxv(cscG, SparseVec(n, uInd, uSparse), sr, Opts{Merge: mk})
				compareSparse(t, "ColMxv", i1, v1, i2, v2)

				j1, x1 := ColMaskedMxv(cscG, SparseVec(n, uInd, uSparse), mask, sr, wsOpts(mk))
				j2, x2 := ColMaskedMxv(cscG, SparseVec(n, uInd, uSparse), mask, sr, Opts{Merge: mk})
				compareSparse(t, "ColMaskedMxv", j1, x1, j2, x2)
			}
		}
	}
}

// clearBoolsTest resets a presence bitmap between ColMxvBitmap runs (the
// kernel contract wants it cleared on entry).
func clearBoolsTest(p []bool) {
	for i := range p {
		p[i] = false
	}
}

func compareDense(t *testing.T, name string, w1 []float64, p1 []bool, w2 []float64, p2 []bool) {
	t.Helper()
	for i := range w1 {
		if p1[i] != p2[i] {
			t.Fatalf("%s: presence mismatch at %d: %v vs %v", name, i, p1[i], p2[i])
		}
		if p1[i] && w1[i] != w2[i] {
			t.Fatalf("%s: value mismatch at %d: %v vs %v", name, i, w1[i], w2[i])
		}
	}
}

func compareSparse(t *testing.T, name string, i1 []uint32, v1 []float64, i2 []uint32, v2 []float64) {
	t.Helper()
	if len(i1) != len(i2) {
		t.Fatalf("%s: nnz mismatch %d vs %d", name, len(i1), len(i2))
	}
	for k := range i1 {
		if i1[k] != i2[k] || v1[k] != v2[k] {
			t.Fatalf("%s: entry %d mismatch (%d,%v) vs (%d,%v)", name, k, i1[k], v1[k], i2[k], v2[k])
		}
	}
}

// TestColMaskedMxvDegenerateMasks covers the empty-mask fast paths: an
// empty complemented mask allows everything (result must equal the unmasked
// product, filter skipped), an empty plain mask allows nothing.
func TestColMaskedMxvDegenerateMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sr := plusTimes()
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(40)
		g := randCSR(rng, n, n, 0.2)
		cscG := sparse.Transpose(g)
		uVal, uPresent := randVector(rng, n, 0.4)
		uInd, uSparse := denseToSparse(uVal, uPresent)
		empty := MaskView{Bits: make([]bool, n), KnownEmpty: true}

		wantInd, wantVal := ColMxv(cscG, SparseVec(n, uInd, uSparse), sr, Opts{})

		allowAll := empty
		allowAll.Scmp = true
		gotInd, gotVal := ColMaskedMxv(cscG, SparseVec(n, uInd, uSparse), allowAll, sr, Opts{})
		compareSparse(t, "empty-complement", gotInd, gotVal, wantInd, wantVal)

		noneInd, _ := ColMaskedMxv(cscG, SparseVec(n, uInd, uSparse), empty, sr, Opts{})
		if len(noneInd) != 0 {
			t.Fatalf("empty plain mask produced %d entries, want 0", len(noneInd))
		}

		// Same degenerate masks through the row kernels.
		w := make([]float64, n)
		p := make([]bool, n)
		RowMaskedMxv(w, p, g, bitmapView(uVal, uPresent), allowAll, sr, Opts{})
		w2 := make([]float64, n)
		p2 := make([]bool, n)
		RowMxv(w2, p2, g, bitmapView(uVal, uPresent), sr, Opts{})
		compareDense(t, "row empty-complement", w, p, w2, p2)

		nv := RowMaskedMxv(w, p, g, bitmapView(uVal, uPresent), empty, sr, Opts{})
		if nv != 0 {
			t.Fatalf("row empty plain mask reported %d outputs, want 0", nv)
		}
		for i := range p {
			if p[i] {
				t.Fatalf("row empty plain mask left output %d present", i)
			}
		}
	}
}

// TestWorkspacePoolRoundTrip checks acquire/release recycling and that a
// released workspace's buffers survive for the next acquirer of the shape.
func TestWorkspacePoolRoundTrip(t *testing.T) {
	ws := AcquireWorkspace(123, 45)
	if r, c := ws.Dims(); r != 123 || c != 45 {
		t.Fatalf("dims = %d×%d, want 123×45", r, c)
	}
	a := arenaFor[float64](ws)
	a.keys = grow(a.keys, 1000)
	ws.Release()
	ws2 := AcquireWorkspace(123, 45)
	if ws2 != ws {
		t.Skip("pool did not recycle (GC ran); nothing to assert")
	}
	if cap(arenaFor[float64](ws2).keys) < 1000 {
		t.Fatalf("recycled workspace lost its buffers")
	}
	ws2.Release()
}

// TestKernelSteadyStateAllocs is the zero-allocation regression guard for
// all four kernel variants: with a pinned workspace, a warmed-up kernel
// call must not allocate at all.
func TestKernelSteadyStateAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	rng := rand.New(rand.NewSource(3))
	n := 256
	g := randCSR(rng, n, n, 0.05)
	cscG := sparse.Transpose(g)
	uVal, uPresent := randVector(rng, n, 0.3)
	uInd, uSparse := denseToSparse(uVal, uPresent)
	maskBits := make([]bool, n)
	for i := range maskBits {
		maskBits[i] = i%3 == 0
	}
	mask := MaskView{Bits: maskBits, Scmp: true}
	sr := plusTimes()
	ws := NewWorkspace(n, n)
	opts := Opts{Ws: ws}
	w := make([]float64, n)
	p := make([]bool, n)

	cases := []struct {
		name string
		run  func()
	}{
		{"RowMxv", func() { RowMxv(w, p, g, BitmapVec(uVal, uPresent, 0), sr, opts) }},
		{"RowMxv-sparse-view", func() { RowMxv(w, p, g, SparseVec(n, uInd, uSparse), sr, opts) }},
		{"RowMaskedMxv", func() { RowMaskedMxv(w, p, g, BitmapVec(uVal, uPresent, 0), mask, sr, opts) }},
		{"ColMxv", func() { ColMxv(cscG, SparseVec(n, uInd, uSparse), sr, opts) }},
		{"ColMxv-bitmap-view", func() { ColMxv(cscG, BitmapVec(uVal, uPresent, 0), sr, opts) }},
		{"ColMaskedMxv", func() { ColMaskedMxv(cscG, SparseVec(n, uInd, uSparse), mask, sr, opts) }},
		{"ColMxvBitmap", func() {
			clearBoolsTest(p)
			ColMxvBitmap(w, p, cscG, SparseVec(n, uInd, uSparse), mask, true, sr, opts)
		}},
	}
	for _, tc := range cases {
		tc.run() // warm the workspace
		if avg := testing.AllocsPerRun(20, tc.run); avg != 0 {
			t.Errorf("%s: %v allocs per warmed call, want 0", tc.name, avg)
		}
	}
}

package core

import (
	"pushpull/internal/merge"
	"pushpull/internal/sparse"
)

// This file holds instrumented, sequential twins of the four Table 1
// kernels. They count accesses in the paper's RAM model instead of chasing
// throughput, and the Table 1 experiment fits their counts against the
// predicted complexities:
//
//	row unmasked    O(d·M)                   — flat in nnz(f), nnz(m)
//	row masked      O(d·nnz(m))              — linear in nnz(m)
//	column unmasked O(d·nnz(f)·log nnz(f))   — ~linear in nnz(f)
//	column masked   same as unmasked + filter
//
// Counting conventions: each load of a matrix index or value entry is one
// MatrixAccess; each input-vector probe is one VectorAccess; each mask
// probe is one MaskAccess; each heap push/pop during the multiway merge is
// one MergeOp (this is where the log factor lives).

// RowMxvCounted is RowMxv with access counting.
func RowMxvCounted[T comparable](w []T, wPresent []bool, g *sparse.CSR[T], uVal []T, uPresent []bool, sr SR[T], opts Opts, c *Counter) {
	for i := 0; i < g.Rows; i++ {
		rowAccumulateCounted(w, wPresent, g, i, uVal, uPresent, sr, opts, c)
	}
}

// RowMaskedMxvCounted is RowMaskedMxv with access counting. Without a
// mask.List, every bitmap probe is counted — exposing the O(M) term the
// paper's amortized zero-list avoids; with a list, only allowed rows cost.
func RowMaskedMxvCounted[T comparable](w []T, wPresent []bool, g *sparse.CSR[T], uVal []T, uPresent []bool, mask MaskView, sr SR[T], opts Opts, c *Counter) {
	if mask.List != nil {
		for _, i := range mask.List {
			wPresent[i] = false
			rowAccumulateCounted(w, wPresent, g, int(i), uVal, uPresent, sr, opts, c)
		}
		return
	}
	for i := 0; i < g.Rows; i++ {
		wPresent[i] = false
		c.MaskAccesses++
		if !mask.Allows(i) {
			continue
		}
		rowAccumulateCounted(w, wPresent, g, i, uVal, uPresent, sr, opts, c)
	}
}

func rowAccumulateCounted[T comparable](w []T, wPresent []bool, g *sparse.CSR[T], i int, uVal []T, uPresent []bool, sr SR[T], opts Opts, c *Counter) {
	lo, hi := g.Ptr[i], g.Ptr[i+1]
	earlyExit := opts.EarlyExit && sr.Terminal != nil
	acc := sr.Id
	any := false
	for k := lo; k < hi; k++ {
		c.MatrixAccesses++ // load of G.Ind[k] (and G.Val[k] in value mode)
		if !opts.StructureOnly {
			c.MatrixAccesses++
		}
		j := g.Ind[k]
		c.VectorAccesses++
		if !uPresent[j] {
			continue
		}
		if opts.StructureOnly {
			acc = sr.Add(acc, sr.One)
		} else {
			acc = sr.Add(acc, sr.Mul(g.Val[k], uVal[j]))
		}
		any = true
		if earlyExit && acc == *sr.Terminal {
			break
		}
	}
	if any {
		w[i] = acc
		wPresent[i] = true
	} else {
		wPresent[i] = false
	}
}

// ColMxvCounted is ColMxv with access counting, always using the heap
// merge so MergeOps reflects the n·log k term of the Section 3.1 analysis.
func ColMxvCounted[T comparable](cscG *sparse.CSR[T], uInd []uint32, uVal []T, sr SR[T], opts Opts, c *Counter) ([]uint32, []T) {
	return colMxvCounted(cscG, uInd, uVal, MaskView{}, false, sr, opts, c)
}

// ColMaskedMxvCounted is ColMaskedMxv with access counting. The post-merge
// mask filter adds one MaskAccess per merged output — visibly *not* a work
// reduction, matching Table 1 row 4.
func ColMaskedMxvCounted[T comparable](cscG *sparse.CSR[T], uInd []uint32, uVal []T, mask MaskView, sr SR[T], opts Opts, c *Counter) ([]uint32, []T) {
	return colMxvCounted(cscG, uInd, uVal, mask, true, sr, opts, c)
}

func colMxvCounted[T comparable](cscG *sparse.CSR[T], uInd []uint32, uVal []T, mask MaskView, masked bool, sr SR[T], opts Opts, c *Counter) ([]uint32, []T) {
	k := len(uInd)
	if k == 0 {
		return nil, nil
	}
	offsets := make([]int, k+1)
	for i, col := range uInd {
		offsets[i+1] = offsets[i] + cscG.RowLen(int(col))
	}
	total := offsets[k]
	keys := make([]uint32, total)
	vals := make([]T, total)
	for i, col := range uInd {
		ind, val := cscG.RowSpan(int(col))
		off := offsets[i]
		c.VectorAccesses++ // load of u(i)
		for j := range ind {
			c.MatrixAccesses++ // load of the column entry's index
			keys[off+j] = ind[j]
			if opts.StructureOnly {
				vals[off+j] = sr.One
			} else {
				c.MatrixAccesses++ // load of the column entry's value
				vals[off+j] = sr.Mul(val[j], uVal[i])
			}
		}
	}
	// Count heap traffic: each element is pushed and popped once against a
	// heap of ≤ k runs — 2·n·⌈log₂(k+1)⌉ merge operations.
	logK := int64(1)
	for 1<<logK < k+1 {
		logK++
	}
	c.MergeOps += 2 * int64(total) * logK
	wInd, wVal := merge.MultiwayMergePairs(keys, vals, offsets, sr.Add)
	if !masked {
		return wInd, wVal
	}
	out := 0
	for i, ind := range wInd {
		c.MaskAccesses++
		if mask.Allows(int(ind)) {
			wInd[out] = ind
			wVal[out] = wVal[i]
			out++
		}
	}
	return wInd[:out], wVal[:out]
}

package core

import (
	"sync"

	"pushpull/internal/par"
	"pushpull/internal/sparse"
)

// spaScratch is one worker's row-sized accumulator for the masked SpGEMM:
// acc holds partial sums, hit marks touched columns, allowed marks the
// current row's mask pattern.
type spaScratch[T any] struct {
	acc     []T
	allowed []bool
	hit     []bool
}

// MxMMasked computes the masked sparse matrix-matrix product C⟨M⟩ = A·B
// over the semiring sr, with the output pattern restricted a priori to the
// mask pattern (maskPtr/maskInd in CSR layout, one sorted run per row).
//
// This is the paper's Section 5.6 generalization of Optimization 2 beyond
// matvec: triangle counting and enumeration know the output pattern in
// advance (it is the adjacency pattern itself), so a masked Gustavson
// SpGEMM only ever accumulates into allowed positions and the asymptotic
// saving O(M/nnz(m)) carries over. Each worker keeps a row-sized sparse
// accumulator; rows are processed independently.
func MxMMasked[T comparable](a, b *sparse.CSR[T], maskPtr []int, maskInd []uint32, sr SR[T], opts Opts) *sparse.CSR[T] {
	if a.Cols != b.Rows {
		panic("core: MxMMasked dimension mismatch")
	}
	c := &sparse.CSR[T]{Rows: a.Rows, Cols: b.Cols, Ptr: make([]int, a.Rows+1)}
	rowInd := make([][]uint32, a.Rows)
	rowVal := make([][]T, a.Rows)

	// Per-worker accumulators come from the workspace when one is pinned,
	// so repeated masked products (e.g. triangle counting sweeps) reuse the
	// same row-sized scratch instead of reallocating it per call.
	var scratch *sync.Pool
	if ar := arenaFor[T](opts.Ws); ar != nil {
		scratch = ar.spaScratchPool(b.Cols)
	} else {
		scratch = &sync.Pool{New: func() any {
			return &spaScratch[T]{
				acc:     make([]T, b.Cols),
				allowed: make([]bool, b.Cols),
				hit:     make([]bool, b.Cols),
			}
		}}
	}

	process := func(lo, hi int) {
		s := scratch.Get().(*spaScratch[T])
		defer scratch.Put(s)
		for i := lo; i < hi; i++ {
			mLo, mHi := maskPtr[i], maskPtr[i+1]
			if mLo == mHi {
				continue
			}
			allowedCols := maskInd[mLo:mHi]
			for _, j := range allowedCols {
				s.allowed[j] = true
			}
			aInd, aVal := a.RowSpan(i)
			for t := range aInd {
				k := aInd[t]
				bInd, bVal := b.RowSpan(int(k))
				for u := range bInd {
					j := bInd[u]
					if !s.allowed[j] {
						continue
					}
					var product T
					if opts.StructureOnly {
						product = sr.One
					} else {
						product = sr.Mul(aVal[t], bVal[u])
					}
					if s.hit[j] {
						s.acc[j] = sr.Add(s.acc[j], product)
					} else {
						s.hit[j] = true
						s.acc[j] = product
					}
				}
			}
			var ind []uint32
			var val []T
			for _, j := range allowedCols {
				if s.hit[j] {
					ind = append(ind, j)
					val = append(val, s.acc[j])
					s.hit[j] = false
				}
				s.allowed[j] = false
			}
			rowInd[i] = ind
			rowVal[i] = val
		}
	}
	if opts.Sequential {
		process(0, a.Rows)
	} else {
		par.For(a.Rows, 64, process)
	}

	nnz := 0
	for i := 0; i < a.Rows; i++ {
		c.Ptr[i] = nnz
		nnz += len(rowInd[i])
	}
	c.Ptr[a.Rows] = nnz
	c.Ind = make([]uint32, 0, nnz)
	c.Val = make([]T, 0, nnz)
	for i := 0; i < a.Rows; i++ {
		c.Ind = append(c.Ind, rowInd[i]...)
		c.Val = append(c.Val, rowVal[i]...)
	}
	return c
}

package core

import "unsafe"

// This file holds the only unsafe code in the module: word-at-a-time
// transfer between []bool and packed bitset words. A Go bool is one byte
// holding exactly 0 or 1 (every value the language can produce), so eight
// of them load as a single uint64 whose low bit per byte is the value —
// and the classic movemask multiply gathers those eight bits into one
// byte, giving a 64-element pack in eight multiplies instead of 64
// byte-granular loads. The inverse spread writes eight bools per store.
// These are what make the Boolean truth-table eWise kernels genuinely
// word-parallel end to end; the scalar loops in ewisebitset.go remain as
// the boundary/tail path and as the oracle the unit tests check against.

// packMagic has one bit at position 56−7j for j = 0..7: multiplying a
// word of 0/1 bytes by it parks byte j's bit at position 56+j, so the top
// byte of the product is the eight values packed (no two terms collide,
// so no carries — see TestBoolPackRoundTrip for the exhaustive check).
const packMagic = 0x0102040810204080

// byteLowBits masks each byte of a word to its low bit.
const byteLowBits = 0x0101010101010101

// byteHighBits masks each byte of a word to its high bit.
const byteHighBits = 0x8080808080808080

// byteLow7Bits masks each byte of a word to its low seven bits.
const byteLow7Bits = 0x7f7f7f7f7f7f7f7f

// spreadMask keeps bit j of byte j: ANDing it against a byte replicated
// eight times isolates one distinct source bit per destination byte.
const spreadMask = 0x8040201008040201

// packBoolWordFast packs vals[base:base+64] (callers guarantee the full
// word is in range) into a bitset word: eight 8-byte loads, eight
// multiply-extracts.
func packBoolWordFast(vals []bool, base int) uint64 {
	p := unsafe.Pointer(&vals[base])
	var w uint64
	for k := 0; k < 8; k++ {
		x := *(*uint64)(unsafe.Add(p, k*8)) & byteLowBits
		w |= (x * packMagic) >> 56 << (8 * k)
	}
	return w
}

// unpackBoolWordFast spreads a bitset word over vals[base:base+64]
// (callers guarantee the full word is in range): per 8-bit group, the
// group byte is replicated across the word, spreadMask isolates one
// source bit per destination byte, and a carry-free SWAR "is nonzero"
// normalizes each byte to 0/1 — eight bool stores per word write.
func unpackBoolWordFast(vals []bool, base int, w uint64) {
	p := unsafe.Pointer(&vals[base])
	for k := 0; k < 8; k++ {
		b := w >> (8 * k) & 0xff
		y := (b * byteLowBits) & spreadMask
		spread := ((y + byteLow7Bits) | y) & byteHighBits >> 7
		*(*uint64)(unsafe.Add(p, k*8)) = spread
	}
}

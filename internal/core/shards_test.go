package core

import (
	"math/rand"
	"testing"
)

// randCSRPair builds a random n×n pattern and returns (rowPtr, cscPtr,
// cscInd) in the shapes BuildShardSet wants: the CSC is represented as the
// CSR of the transpose, destinations sorted ascending within each row.
func randCSRPair(rng *rand.Rand, n int, density float64) (rowPtr []int, cscPtr []int, cscInd []uint32) {
	rows := make([][]uint32, n) // rows[i] = sorted cols of row i
	cols := make([][]uint32, n) // cols[j] = sorted rows (destinations) of col j
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				rows[i] = append(rows[i], uint32(j))
				cols[j] = append(cols[j], uint32(i))
			}
		}
	}
	rowPtr = make([]int, n+1)
	cscPtr = make([]int, n+1)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = rowPtr[i] + len(rows[i])
		cscPtr[i+1] = cscPtr[i] + len(cols[i])
		cscInd = append(cscInd, cols[i]...)
	}
	return rowPtr, cscPtr, cscInd
}

func TestShardBoundsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		ptr := make([]int, n+1)
		for v := 0; v < n; v++ {
			deg := 0
			if rng.Intn(4) > 0 { // leave some zero-degree vertices
				deg = rng.Intn(20)
			}
			ptr[v+1] = ptr[v] + deg
		}
		for _, want := range []int{1, 2, 3, 7, n, n + 3, 64} {
			b := ShardBounds(ptr, n, want)
			if b[0] != 0 || b[len(b)-1] != n {
				t.Fatalf("n=%d want=%d: bounds %v do not cover [0,%d]", n, want, b, n)
			}
			if n == 0 {
				if len(b) != 2 {
					t.Fatalf("n=0 want=%d: expected [0 0], got %v", want, b)
				}
				continue
			}
			if got := len(b) - 1; got > want || got > n || got < 1 {
				t.Fatalf("n=%d want=%d: shard count %d out of range", n, want, got)
			}
			for s := 1; s < len(b); s++ {
				if b[s] <= b[s-1] {
					t.Fatalf("n=%d want=%d: bounds %v not strictly increasing", n, want, b)
				}
			}
		}
	}
}

func TestShardBoundsEdgeBalance(t *testing.T) {
	// A heavily skewed degree sequence: the balance target is that no
	// shard exceeds the ideal share by more than the largest single
	// vertex (a vertex is indivisible).
	n := 1000
	ptr := make([]int, n+1)
	maxDeg := 0
	rng := rand.New(rand.NewSource(11))
	for v := 0; v < n; v++ {
		deg := 1
		if v%97 == 0 {
			deg = 500 + rng.Intn(500) // hubs
		}
		if deg > maxDeg {
			maxDeg = deg
		}
		ptr[v+1] = ptr[v] + deg
	}
	total := ptr[n]
	for _, want := range []int{2, 4, 8, 16} {
		b := ShardBounds(ptr, n, want)
		ideal := total / want
		for s := 0; s+1 < len(b); s++ {
			edges := ptr[b[s+1]] - ptr[b[s]]
			if edges > ideal+maxDeg {
				t.Fatalf("want=%d shard %d has %d edges (ideal %d, maxdeg %d): %v", want, s, edges, ideal, maxDeg, b)
			}
		}
	}
}

func TestBuildShardSetCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		rowPtr, cscPtr, cscInd := randCSRPair(rng, n, 0.05+rng.Float64()*0.3)
		for _, want := range []int{1, 2, 5, n + 2} {
			ss := BuildShardSet(rowPtr, cscPtr, cscInd, want)
			if ss == nil {
				t.Fatalf("n=%d want=%d: unexpected nil shard set", n, want)
			}
			S := ss.Shards()
			for s := 0; s < S; s++ {
				if got := rowPtr[ss.Bounds[s+1]] - rowPtr[ss.Bounds[s]]; got != ss.InEdges[s] {
					t.Fatalf("InEdges[%d]=%d, want %d", s, ss.InEdges[s], got)
				}
			}
			for j := 0; j < n; j++ {
				if lo, _ := ss.cutSpan(j, 0, S); int(lo) != cscPtr[j] {
					t.Fatalf("cut 0 col %d: %d != ptr %d", j, lo, cscPtr[j])
				}
				if _, hi := ss.cutSpan(j, 0, S); int(hi) != cscPtr[j+1] {
					t.Fatalf("cut %d col %d: %d != ptr %d", S, j, hi, cscPtr[j+1])
				}
				for s := 0; s < S; s++ {
					lo, hi := ss.cutSpan(j, s, s+1)
					if lo > hi {
						t.Fatalf("shard %d col %d: cut range inverted", s, j)
					}
					for e := lo; e < hi; e++ {
						d := int(cscInd[e])
						if d < ss.Bounds[s] || d >= ss.Bounds[s+1] {
							t.Fatalf("shard %d col %d edge %d: dest %d outside [%d,%d)", s, j, e, d, ss.Bounds[s], ss.Bounds[s+1])
						}
					}
				}
			}
		}
	}
}

func TestBuildShardSetDegenerate(t *testing.T) {
	if ss := BuildShardSet([]int{0}, []int{0}, nil, 4); ss != nil {
		t.Fatalf("empty matrix: expected nil shard set, got %+v", ss)
	}
}

func TestBitsetCountRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 517 // deliberately not word-aligned
	words := make([]uint64, BitsetWords(n))
	set := make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			BitsetSet(words, i)
			set[i] = true
		}
	}
	for trial := 0; trial < 500; trial++ {
		lo := rng.Intn(n + 1)
		hi := lo + rng.Intn(n+1-lo)
		want := 0
		for i := lo; i < hi; i++ {
			if set[i] {
				want++
			}
		}
		if got := BitsetCountRange(words, lo, hi); got != want {
			t.Fatalf("count[%d,%d) = %d, want %d", lo, hi, got, want)
		}
	}
}

func TestCorrectorShardIsolation(t *testing.T) {
	var c Corrector
	c.Shard(2).Observe(Push, 100, 400) // shard 2 runs 4x slower than predicted
	if s := c.Shard(2).Scale(Push); s != 4 {
		t.Fatalf("shard 2 push scale = %v, want 4", s)
	}
	if s := c.Shard(0).Scale(Push); s != 1 {
		t.Fatalf("shard 0 push scale = %v, want unprimed 1", s)
	}
	if s := c.Shard(2).Scale(Pull); s != 1 {
		t.Fatalf("shard 2 pull scale = %v, want unprimed 1", s)
	}
	if s := c.Scale(Push); s != 1 {
		t.Fatalf("whole-op scale = %v, want unprimed 1 (shard feedback must not leak up)", s)
	}
	c.Reset()
	if s := c.Shard(2).Scale(Push); s != 1 {
		t.Fatalf("post-reset shard scale = %v, want 1", s)
	}
	var nilC *Corrector
	if nilC.Shard(3) != nil {
		t.Fatal("nil corrector must hand out nil shard correctors")
	}
	nilC.Shard(3).Observe(Push, 1, 1) // must not panic
}

func TestPlanShardsExactEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 60
	rowPtr, cscPtr, cscInd := randCSRPair(rng, n, 0.2)
	ss := BuildShardSet(rowPtr, cscPtr, cscInd, 4)
	var frontier []uint32
	for j := 0; j < n; j += 3 {
		frontier = append(frontier, uint32(j))
	}
	in := PlanInput{NNZ: len(frontier), N: n, OutRows: n, PushEdges: -1, AvgDeg: 2, MaskAllowFrac: 1, InKind: KindSparse}
	plans := make([]ShardPlan, ss.Shards())
	PlanShards(in, ss, frontier, MaskView{}, false, plans)
	for s := range plans {
		want := 0.0
		for _, j := range frontier {
			lo, hi := ss.cutSpan(int(j), s, s+1)
			want += float64(hi - lo)
		}
		if plans[s].Edges != want {
			t.Fatalf("shard %d: planner saw %v frontier edges, cut table says %v", s, plans[s].Edges, want)
		}
		if plans[s].Lo != ss.Bounds[s] || plans[s].Hi != ss.Bounds[s+1] {
			t.Fatalf("shard %d: range [%d,%d) != bounds [%d,%d)", s, plans[s].Lo, plans[s].Hi, ss.Bounds[s], ss.Bounds[s+1])
		}
	}
}

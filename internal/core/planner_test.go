package core

import (
	"math/rand"
	"testing"

	"pushpull/internal/sparse"
)

func TestPlannerCostModelBasics(t *testing.T) {
	// Tiny frontier on a big graph: push wins outright.
	p := DecideDirection(PlanInput{
		NNZ: 1, N: 10000, OutRows: 10000,
		PushEdges: 20, AvgDeg: 20, MaskAllowFrac: 1,
	}, nil)
	if p.Dir != Push || p.Rule != RuleCostModel {
		t.Fatalf("tiny frontier: %+v", p)
	}
	if p.PushCost >= p.PullCost {
		t.Fatalf("tiny frontier costs inverted: push %g pull %g", p.PushCost, p.PullCost)
	}

	// Near-full frontier: the merge's log factor makes pull cheaper.
	p = DecideDirection(PlanInput{
		NNZ: 9000, N: 10000, OutRows: 10000,
		PushEdges: 180000, AvgDeg: 20, MaskAllowFrac: 1,
	}, nil)
	if p.Dir != Pull {
		t.Fatalf("dense frontier should pull: %+v", p)
	}

	// The same dense frontier with a nearly-exhausted mask: pull's work
	// collapses with the allow fraction and push wins again.
	p = DecideDirection(PlanInput{
		NNZ: 9000, N: 10000, OutRows: 10000,
		PushEdges: 18000, AvgDeg: 20, MaskAllowFrac: 0.001,
	}, nil)
	if p.PullCost >= p.PushCost {
		t.Fatalf("mask discount missing: push %g pull %g", p.PushCost, p.PullCost)
	}
}

func TestPlannerEstimatesPushEdgesWhenUnknown(t *testing.T) {
	p := DecideDirection(PlanInput{
		NNZ: 100, N: 1000, OutRows: 1000,
		PushEdges: -1, AvgDeg: 8, MaskAllowFrac: 1,
	}, nil)
	if p.PushCost <= 0 {
		t.Fatalf("estimated push cost missing: %+v", p)
	}
}

func TestPlannerHysteresisTrendGate(t *testing.T) {
	var st PlanState
	in := PlanInput{N: 1000, OutRows: 1000, AvgDeg: 10, MaskAllowFrac: 1}

	// Prime at push with a small frontier.
	in.NNZ, in.PushEdges = 10, 100
	if p := DecideDirection(in, &st); p.Dir != Push {
		t.Fatalf("priming decision: %+v", p)
	}
	// A *shrinking* frontier must not switch push→pull even if pull's
	// estimate momentarily undercuts (growing gate).
	in.NNZ, in.PushEdges = 5, 2_000_000
	p := DecideDirection(in, &st)
	if p.Dir != Push {
		t.Fatalf("shrinking frontier flipped to pull: %+v", p)
	}
	if p.Growing || !p.Shrinking {
		t.Fatalf("trend flags wrong: %+v", p)
	}
	// Growing past the crossover switches.
	in.NNZ, in.PushEdges = 600, 6000*3
	p = DecideDirection(in, &st)
	if p.Dir != Pull || !p.Growing {
		t.Fatalf("growing frontier should pull: %+v", p)
	}
	// And a growing frontier must not bounce pull→push (shrinking gate).
	in.NNZ, in.PushEdges = 700, 70
	if p := DecideDirection(in, &st); p.Dir != Pull {
		t.Fatalf("growing frontier bounced back to push: %+v", p)
	}

	st.Reset()
	if st.Primed {
		t.Fatal("Reset left state primed")
	}
}

func TestPlannerLegacySwitchPointRule(t *testing.T) {
	var st PlanState
	in := PlanInput{N: 1000, OutRows: 1000, AvgDeg: 10, MaskAllowFrac: 1, SwitchPoint: 0.01}

	in.NNZ, in.PushEdges = 5, 50
	if p := DecideDirection(in, &st); p.Dir != Push || p.Rule != RuleSwitchPoint {
		t.Fatalf("ratio rule: %+v", p)
	}
	in.NNZ, in.PushEdges = 50, 500
	if p := DecideDirection(in, &st); p.Dir != Pull {
		t.Fatalf("5%% growing should pull under the ratio rule: %+v", p)
	}
	in.NNZ, in.PushEdges = 5, 50
	if p := DecideDirection(in, &st); p.Dir != Push {
		t.Fatalf("0.5%% shrinking should push under the ratio rule: %+v", p)
	}
}

func TestPlannerForcedRecordsCosts(t *testing.T) {
	f := Pull
	p := DecideDirection(PlanInput{
		NNZ: 1, N: 1000, OutRows: 1000, PushEdges: 3, AvgDeg: 10,
		MaskAllowFrac: 1, Force: &f,
	}, nil)
	if p.Dir != Pull || p.Rule != RuleForced {
		t.Fatalf("force ignored: %+v", p)
	}
	if p.PushCost <= 0 || p.PullCost <= 0 {
		t.Fatalf("forced plan lost its cost estimates: %+v", p)
	}
}

func TestPlannerBitmapOutputAdvice(t *testing.T) {
	// Gathered edges ≥ a quarter of the output rows → scatter, not sort.
	p := DecideDirection(PlanInput{
		NNZ: 100, N: 1000, OutRows: 1000, PushEdges: 400, AvgDeg: 4, MaskAllowFrac: 1,
	}, nil)
	if p.Dir == Push && !p.PushOutBitmap {
		t.Fatalf("dense push output should advise bitmap: %+v", p)
	}
	p = DecideDirection(PlanInput{
		NNZ: 3, N: 1000, OutRows: 1000, PushEdges: 12, AvgDeg: 4, MaskAllowFrac: 1,
	}, nil)
	if p.PushOutBitmap {
		t.Fatalf("sparse push output should stay a sorted list: %+v", p)
	}
}

// TestColMxvBitmapMatchesSparsePath cross-checks the sort-free scatter
// kernel against the radix pipeline for every view kind and mask shape.
func TestColMxvBitmapMatchesSparsePath(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sr := plusTimes()
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(50)
		g := randCSR(rng, n, n, 0.2)
		cscG := sparse.Transpose(g)
		uVal, uPresent := randVector(rng, n, 0.4)
		uInd, uSparse := denseToSparse(uVal, uPresent)
		maskBits := make([]bool, n)
		for i := range maskBits {
			maskBits[i] = rng.Intn(2) == 0
		}
		for _, masked := range []bool{false, true} {
			for _, scmp := range []bool{false, true} {
				mask := MaskView{Bits: maskBits, Scmp: scmp}
				for _, so := range []bool{false, true} {
					opts := Opts{StructureOnly: so}
					views := []VecView[float64]{
						SparseVec(n, uInd, uSparse),
						bitmapView(uVal, uPresent),
					}
					for _, uv := range views {
						var wantInd []uint32
						var wantVal []float64
						if masked {
							wantInd, wantVal = ColMaskedMxv(cscG, uv, mask, sr, opts)
						} else {
							wantInd, wantVal = ColMxv(cscG, uv, sr, opts)
						}
						wVal := make([]float64, n)
						wPresent := make([]bool, n)
						nvals := ColMxvBitmap(wVal, wPresent, cscG, uv, mask, masked, sr, opts)
						if nvals != len(wantInd) {
							t.Fatalf("trial %d masked=%v scmp=%v so=%v %v: nvals %d want %d",
								trial, masked, scmp, so, uv.Kind, nvals, len(wantInd))
						}
						gotCount := 0
						for i := range wPresent {
							if wPresent[i] {
								gotCount++
							}
						}
						if gotCount != nvals {
							t.Fatalf("trial %d: present bits %d disagree with nvals %d", trial, gotCount, nvals)
						}
						for k, idx := range wantInd {
							if !wPresent[idx] {
								t.Fatalf("trial %d %v: missing output at %d", trial, uv.Kind, idx)
							}
							if !close(wVal[idx], wantVal[k]) {
								t.Fatalf("trial %d %v: w[%d]=%g want %g", trial, uv.Kind, idx, wVal[idx], wantVal[k])
							}
						}
					}
				}
			}
		}
	}
}

func TestVecViewConstructors(t *testing.T) {
	sv := SparseVec(10, []uint32{1, 5}, []float64{2, 3})
	if sv.Kind != KindSparse || sv.NVals != 2 || sv.N != 10 {
		t.Fatalf("sparse view: %+v", sv)
	}
	bv := BitmapVec([]float64{0, 2}, []bool{false, true}, 1)
	if bv.Kind != KindBitmap || bv.N != 2 || bv.NVals != 1 {
		t.Fatalf("bitmap view: %+v", bv)
	}
	dv := DenseVec([]float64{1, 2, 3})
	if dv.Kind != KindDense || dv.NVals != 3 || dv.Present != nil {
		t.Fatalf("dense view: %+v", dv)
	}
	if KindSparse.String() != "sparse" || KindBitmap.String() != "bitmap" || KindDense.String() != "dense" {
		t.Fatal("VecKind.String mismatch")
	}
}

// TestRowMxvDenseViewMatchesBitmap pins the probe-free dense fast path
// against the bitmap path on a full input.
func TestRowMxvDenseViewMatchesBitmap(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(40)
		g := randCSR(rng, n, n, 0.2)
		uVal := make([]float64, n)
		uPresent := make([]bool, n)
		for i := range uVal {
			uVal[i] = rng.Float64()
			uPresent[i] = true
		}
		for _, sr := range []SR[float64]{plusTimes(), minPlus()} {
			w1 := make([]float64, n)
			p1 := make([]bool, n)
			nv1 := RowMxv(w1, p1, g, BitmapVec(uVal, uPresent, n), sr, Opts{})
			w2 := make([]float64, n)
			p2 := make([]bool, n)
			nv2 := RowMxv(w2, p2, g, DenseVec(uVal), sr, Opts{})
			if nv1 != nv2 {
				t.Fatalf("trial %d: nvals %d vs %d", trial, nv1, nv2)
			}
			compareDense(t, "dense-view", w1, p1, w2, p2)
		}
	}
}

package core

// This file keeps the direction vocabulary and the paper's Section 6.3
// switch-point constant. The single-ratio heuristic itself — nnz/n against
// the switch-point with trend hysteresis — lives in the planner
// (legacyRatioRule in planner.go), where it serves as the explicit
// SwitchPoint override of the default edge-based cost model.

// DefaultSwitchPoint is the paper's α = β = 0.01: "once we have visited 1%
// of vertices in the graph in a BFS, we are sure to have hit a supernode."
// The planner's legacy ratio rule compares nnz/n against it; the storage
// layer uses it as the bitmap→sparse settle threshold.
const DefaultSwitchPoint = 0.01

// Direction names the matvec orientation chosen for an operation.
type Direction int

const (
	// Push is the column-based (SpMSpV) direction, profitable for sparse
	// frontiers.
	Push Direction = iota
	// Pull is the row-based (SpMV) direction, profitable for dense
	// frontiers with a sparse output mask.
	Pull
)

// String returns "push" or "pull".
func (d Direction) String() string {
	if d == Push {
		return "push"
	}
	return "pull"
}

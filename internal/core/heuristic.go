package core

// This file implements the paper's Section 6.3 direction-optimization
// heuristic. Beamer's original DOBFS switches push→pull when
// nnz(m_f)/nnz(m_u) > α and pull→push when nnz(f)/M < β. The paper avoids
// computing m_f speculatively by observing nnz(m_f) ≈ d·nnz(f) and
// nnz(m_u) ≈ d·M near the switch, collapsing both tests to a single ratio
// r = nnz(f)/M compared against one switch-point (α = β, default 0.01),
// with hysteresis: r must be *increasing* to go dense (push→pull) and
// *decreasing* to go sparse (pull→push).

// DefaultSwitchPoint is the paper's α = β = 0.01: "once we have visited 1%
// of vertices in the graph in a BFS, we are sure to have hit a supernode."
const DefaultSwitchPoint = 0.01

// Direction names the matvec orientation chosen for an operation.
type Direction int

const (
	// Push is the column-based (SpMSpV) direction, profitable for sparse
	// frontiers.
	Push Direction = iota
	// Pull is the row-based (SpMV) direction, profitable for dense
	// frontiers with a sparse output mask.
	Pull
)

// String returns "push" or "pull".
func (d Direction) String() string {
	if d == Push {
		return "push"
	}
	return "pull"
}

// SwitchState carries the between-iteration memory the hysteresis needs:
// the previous nonzero count of the vector being converted.
type SwitchState struct {
	prevNNZ int
	primed  bool
}

// Decide returns the direction for a frontier with nnz nonzeroes out of n
// possible, given the current direction and the switch-point ratio
// (DefaultSwitchPoint if sp <= 0). It updates the hysteresis state.
func (s *SwitchState) Decide(nnz, n int, current Direction, sp float64) Direction {
	if sp <= 0 {
		sp = DefaultSwitchPoint
	}
	increasing := !s.primed || nnz >= s.prevNNZ
	decreasing := !s.primed || nnz <= s.prevNNZ
	s.prevNNZ = nnz
	s.primed = true
	if n == 0 {
		return current
	}
	r := float64(nnz) / float64(n)
	switch current {
	case Push:
		if r > sp && increasing {
			return Pull
		}
	case Pull:
		if r < sp && decreasing {
			return Push
		}
	}
	return current
}

// Reset clears the hysteresis state (used when a new traversal starts).
func (s *SwitchState) Reset() { *s = SwitchState{} }

package core

import "math/bits"

// This file is the word-packed bitset layer: presence patterns stored as
// []uint64 words, 64 positions per word, bit i of word i/64 reporting
// whether position i is stored. It is the representation GraphBLAST uses
// for its dense masks and the one the frontier literature (Grossman &
// Kozyrakis) shows is decisive for pull-side traversal: an 8× smaller
// visited mask than a []bool bitmap, Boolean pattern algebra as 64-way
// word ops, and NVals/density as a popcount instead of an O(n) scan.
//
// Invariant, everywhere bitsets appear: bits at positions ≥ n in the last
// word are zero. Every producer in this package maintains it (see
// BitsetTailMask), which is what makes BitsetCount an exact popcount and
// lets whole-word ops run without per-word boundary checks.

// wordBits is the bit width of one bitset word.
const wordBits = 64

// BitsetWords returns the number of uint64 words covering n positions.
func BitsetWords(n int) int { return (n + wordBits - 1) >> 6 }

// BitsetTailMask returns the mask of valid bits in the last word of an
// n-position bitset: all ones when n is a multiple of 64.
func BitsetTailMask(n int) uint64 {
	if r := uint(n) & (wordBits - 1); r != 0 {
		return (1 << r) - 1
	}
	return ^uint64(0)
}

// BitsetGet reports bit i.
func BitsetGet(words []uint64, i int) bool {
	return words[i>>6]>>(uint(i)&63)&1 != 0
}

// BitsetSet sets bit i.
func BitsetSet(words []uint64, i int) {
	words[i>>6] |= 1 << (uint(i) & 63)
}

// BitsetUnset clears bit i.
func BitsetUnset(words []uint64, i int) {
	words[i>>6] &^= 1 << (uint(i) & 63)
}

// BitsetZero clears every word.
func BitsetZero(words []uint64) {
	for i := range words {
		words[i] = 0
	}
}

// BitsetSetAll sets bits [0, n) and clears the tail, restoring the
// invariant.
func BitsetSetAll(words []uint64, n int) {
	for i := range words {
		words[i] = ^uint64(0)
	}
	if len(words) > 0 {
		words[len(words)-1] = BitsetTailMask(n)
	}
}

// BitsetCount returns the number of set bits — the popcount that replaces
// the bitmap format's O(n) presence rescan (math/bits.OnesCount64 compiles
// to a single POPCNT on amd64).
func BitsetCount(words []uint64) int {
	c := 0
	for _, w := range words {
		c += bits.OnesCount64(w)
	}
	return c
}

// BitsetFromBools packs a []bool presence bitmap into words (words must
// hold BitsetWords(len(bools))), returning the set-bit count. Full words
// pack eight bytes per load through the movemask multiply (boolpack.go).
func BitsetFromBools(words []uint64, bools []bool) int {
	n := len(bools)
	c := 0
	wi := 0
	for base := 0; base < n; base += wordBits {
		w := packBoolWord(bools, base, n)
		words[wi] = w
		c += bits.OnesCount64(w)
		wi++
	}
	for ; wi < len(words); wi++ {
		words[wi] = 0
	}
	return c
}

// BitsetExpand unpacks words into a []bool presence bitmap of n positions
// (len(bools) == n), overwriting every element — eight bools per store on
// full words.
func BitsetExpand(bools []bool, words []uint64) {
	n := len(bools)
	for base, wi := 0, 0; base < n; base, wi = base+wordBits, wi+1 {
		unpackBoolWord(bools, base, n, words[wi])
	}
}

// BitsetScatter sets the bits named by a sorted-or-not index list.
func BitsetScatter(words []uint64, ind []uint32) {
	for _, i := range ind {
		words[i>>6] |= 1 << (uint(i) & 63)
	}
}

// BitsetForEach calls fn for every set bit in ascending order, enumerating
// via trailing-zero counts so empty words cost one load and sparse words
// cost one TZCNT per set bit. Convenience for cold paths; hot kernels
// inline the same loop.
func BitsetForEach(words []uint64, fn func(i int)) {
	for wi, w := range words {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// BitsetIndices appends the index of every set bit, in ascending order, to
// buf (reusing its capacity — pass buf[:0] of a pooled slice for an
// allocation-free steady state once it has grown to demand) and returns the
// filled slice. The sharded planner uses it to expand a word-packed
// frontier back into the exact index list its cut-table edge counts need.
func BitsetIndices(words []uint64, buf []uint32) []uint32 {
	buf = buf[:0]
	for wi, w := range words {
		base := uint32(wi << 6)
		for w != 0 {
			buf = append(buf, base+uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return buf
}

// BitsetCountRange popcounts the bits in positions [lo, hi): a partial
// first word, full middle words, a partial last word. The per-shard
// planner uses it to read a word mask's shard-local density in
// O(range/64).
func BitsetCountRange(words []uint64, lo, hi int) int {
	if lo >= hi {
		return 0
	}
	loW, hiW := lo>>6, (hi-1)>>6
	w := words[loW] &^ ((1 << (uint(lo) & 63)) - 1)
	if loW == hiW {
		if tail := uint(hi) & 63; tail != 0 {
			w &= (1 << tail) - 1
		}
		return bits.OnesCount64(w)
	}
	c := bits.OnesCount64(w)
	for wi := loW + 1; wi < hiW; wi++ {
		c += bits.OnesCount64(words[wi])
	}
	w = words[hiW]
	if tail := uint(hi) & 63; tail != 0 {
		w &= (1 << tail) - 1
	}
	return c + bits.OnesCount64(w)
}

package core

import (
	"pushpull/internal/merge"
	"pushpull/internal/par"
	"pushpull/internal/sparse"
)

// ColMxv computes the unmasked column-based matvec w = G·u (the paper's
// SpMSpV): w = ⊕_{i : u(i)≠0} G(:,i) ⊗ u(i). cscG is the CSC of G — a CSR
// whose row i stores column i of G. The input is sparse (sorted unique
// indices uInd with values uVal); the output is sparse, sorted and
// duplicate-free.
//
// Cost (Table 1 row 3): only columns selected by the input frontier are
// touched — O(d·nnz(f)·log nnz(f)) with the heap merge, O(d·nnz(f)·logM)
// with the radix strategy the paper uses on the GPU.
func ColMxv[T comparable](cscG *sparse.CSR[T], uInd []uint32, uVal []T, sr SR[T], opts Opts) ([]uint32, []T) {
	return colMxv(cscG, uInd, uVal, MaskView{}, false, sr, opts)
}

// ColMaskedMxv computes the masked column-based matvec w = m .⊙ (G·u). As
// the paper observes (Section 3.2), the mask cannot reduce the work of the
// push phase — it is applied as a post-filter after the merge, so the cost
// matches the unmasked variant (Table 1 row 4).
func ColMaskedMxv[T comparable](cscG *sparse.CSR[T], uInd []uint32, uVal []T, mask MaskView, sr SR[T], opts Opts) ([]uint32, []T) {
	return colMxv(cscG, uInd, uVal, mask, true, sr, opts)
}

func colMxv[T comparable](cscG *sparse.CSR[T], uInd []uint32, uVal []T, mask MaskView, masked bool, sr SR[T], opts Opts) ([]uint32, []T) {
	var wInd []uint32
	var wVal []T
	switch opts.Merge {
	case MergeHeap:
		wInd, wVal = colMxvHeap(cscG, uInd, uVal, sr, opts)
	case MergeSPA:
		wInd, wVal = colMxvSPA(cscG, uInd, uVal, sr, opts)
	default:
		wInd, wVal = colMxvRadix(cscG, uInd, uVal, sr, opts)
	}
	if !masked {
		return wInd, wVal
	}
	// Post-filter by the effective mask (Algorithm 3 Lines 17-24).
	out := 0
	for k, ind := range wInd {
		if mask.Allows(int(ind)) {
			wInd[out] = ind
			wVal[out] = wVal[k]
			out++
		}
	}
	return wInd[:out], wVal[:out]
}

// colMxvRadix is the paper's GPU strategy (Algorithm 3) transplanted to the
// CPU worker pool: size each selected column, exclusive-scan the lengths,
// gather index/value pairs at their scanned offsets in parallel, radix-sort
// the concatenation, and segment-reduce equal keys. Structure-only mode
// gathers keys alone — the paper's halving of the sort traffic.
func colMxvRadix[T comparable](cscG *sparse.CSR[T], uInd []uint32, uVal []T, sr SR[T], opts Opts) ([]uint32, []T) {
	k := len(uInd)
	if k == 0 {
		return nil, nil
	}
	lengths := make([]int, k)
	sizeBody := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			lengths[i] = cscG.RowLen(int(uInd[i]))
		}
	}
	if opts.Sequential {
		sizeBody(0, k)
	} else {
		par.For(k, rowGrain, sizeBody)
	}
	total := par.ExclusiveScan(lengths)
	if total == 0 {
		return nil, nil
	}
	maxKey := uint32(cscG.Cols - 1)
	keys := make([]uint32, total)
	if opts.StructureOnly {
		gather := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ind, _ := cscG.RowSpan(int(uInd[i]))
				copy(keys[lengths[i]:], ind)
			}
		}
		if opts.Sequential {
			gather(0, k)
		} else {
			par.For(k, rowGrain, gather)
		}
		if opts.Sequential {
			merge.SortKeysSequential(keys, maxKey)
		} else {
			merge.SortKeys(keys, maxKey)
		}
		keys = merge.DedupeSortedKeys(keys)
		vals := make([]T, len(keys))
		for i := range vals {
			vals[i] = sr.One
		}
		return keys, vals
	}
	vals := make([]T, total)
	gather := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ind, val := cscG.RowSpan(int(uInd[i]))
			off := lengths[i]
			x := uVal[i]
			for j := range ind {
				keys[off+j] = ind[j]
				vals[off+j] = sr.Mul(val[j], x)
			}
		}
	}
	if opts.Sequential {
		gather(0, k)
	} else {
		par.For(k, rowGrain, gather)
	}
	if opts.Sequential {
		merge.SortPairsSequential(keys, vals, maxKey)
	} else {
		merge.SortPairs(keys, vals, maxKey)
	}
	return merge.SegmentedReducePairs(keys, vals, sr.Add)
}

// colMxvHeap gathers the selected columns and k-way merges them with a
// binary heap — the O(n log k) formulation the Section 3.1 analysis uses.
// It runs sequentially; its role is the cost-model validation and the
// merge-strategy ablation, not peak throughput.
func colMxvHeap[T comparable](cscG *sparse.CSR[T], uInd []uint32, uVal []T, sr SR[T], opts Opts) ([]uint32, []T) {
	k := len(uInd)
	if k == 0 {
		return nil, nil
	}
	offsets := make([]int, k+1)
	for i, col := range uInd {
		offsets[i+1] = offsets[i] + cscG.RowLen(int(col))
	}
	total := offsets[k]
	if total == 0 {
		return nil, nil
	}
	keys := make([]uint32, total)
	vals := make([]T, total)
	for i, col := range uInd {
		ind, val := cscG.RowSpan(int(col))
		off := offsets[i]
		copy(keys[off:], ind)
		if opts.StructureOnly {
			for j := range ind {
				vals[off+j] = sr.One
			}
		} else {
			x := uVal[i]
			for j := range ind {
				vals[off+j] = sr.Mul(val[j], x)
			}
		}
	}
	return merge.MultiwayMergePairs(keys, vals, offsets, sr.Add)
}

// colMxvSPA accumulates into a dense scratch (sparse accumulator) indexed
// by output position, then compacts and sorts the touched set. O(n) merge
// work at the price of an M-sized scratch per call.
func colMxvSPA[T comparable](cscG *sparse.CSR[T], uInd []uint32, uVal []T, sr SR[T], opts Opts) ([]uint32, []T) {
	if len(uInd) == 0 {
		return nil, nil
	}
	acc := make([]T, cscG.Cols)
	seen := make([]bool, cscG.Cols)
	touched := make([]uint32, 0, 64)
	for i, col := range uInd {
		ind, val := cscG.RowSpan(int(col))
		for j := range ind {
			out := ind[j]
			var product T
			if opts.StructureOnly {
				product = sr.One
			} else {
				product = sr.Mul(val[j], uVal[i])
			}
			if seen[out] {
				acc[out] = sr.Add(acc[out], product)
			} else {
				seen[out] = true
				acc[out] = sr.Add(sr.Id, product)
				touched = append(touched, out)
			}
		}
	}
	merge.SortKeys(touched, uint32(cscG.Cols-1))
	vals := make([]T, len(touched))
	for i, idx := range touched {
		vals[i] = acc[idx]
	}
	return touched, vals
}

package core

import (
	"pushpull/internal/merge"
	"pushpull/internal/par"
	"pushpull/internal/sparse"
)

// ColMxv computes the unmasked column-based matvec w = G·u (the paper's
// SpMSpV): w = ⊕_{i : u(i)≠0} G(:,i) ⊗ u(i). cscG is the CSC of G — a CSR
// whose row i stores column i of G. The input is a format-agnostic view:
// sparse views feed the gather directly, bitmap and dense views are
// compacted into an index list in workspace scratch first. The output is
// sparse, sorted and duplicate-free.
//
// With a pinned Opts.Ws the returned slices alias workspace storage and
// stay valid only until the workspace's next kernel call — the pattern
// iterative algorithms rely on, installing the result into a vector before
// the next matvec. Without a workspace the result is caller-owned.
//
// Cost (Table 1 row 3): only columns selected by the input frontier are
// touched — O(d·nnz(f)·log nnz(f)) with the heap merge, O(d·nnz(f)·logM)
// with the radix strategy the paper uses on the GPU.
func ColMxv[T comparable](cscG *sparse.CSR[T], u VecView[T], sr SR[T], opts Opts) ([]uint32, []T) {
	return colMxvView(cscG, u, MaskView{}, false, sr, opts)
}

// ColMaskedMxv computes the masked column-based matvec w = m .⊙ (G·u). As
// the paper observes (Section 3.2), the mask cannot reduce the work of the
// push phase — it is applied as a post-filter after the merge, so the cost
// matches the unmasked variant (Table 1 row 4). Two degenerate masks skip
// the filter: a known-empty complemented mask allows everything (the
// common first iterations of BFS, where ¬visited is almost everything),
// and a known-empty plain mask allows nothing.
func ColMaskedMxv[T comparable](cscG *sparse.CSR[T], u VecView[T], mask MaskView, sr SR[T], opts Opts) ([]uint32, []T) {
	return colMxvView(cscG, u, mask, true, sr, opts)
}

func colMxvView[T comparable](cscG *sparse.CSR[T], u VecView[T], mask MaskView, masked bool, sr SR[T], opts Opts) ([]uint32, []T) {
	ws, transient := kernelWorkspace(opts.Ws, cscG.Rows, cscG.Cols)
	a := arenaFor[T](ws)
	uInd, uVal := pushOperands(a, u)
	wInd, wVal := colMxv(cscG, uInd, uVal, mask, masked, sr, opts, a)
	if transient {
		// Auto-pooled call: hand the caller its own copy so releasing the
		// workspace (and its reuse by the next call) cannot clobber the
		// result.
		if len(wInd) > 0 {
			wInd = append([]uint32(nil), wInd...)
			wVal = append([]T(nil), wVal...)
		} else {
			wInd, wVal = nil, nil
		}
		ws.Release()
	}
	return wInd, wVal
}

func colMxv[T comparable](cscG *sparse.CSR[T], uInd []uint32, uVal []T, mask MaskView, masked bool, sr SR[T], opts Opts, a *arena[T]) ([]uint32, []T) {
	if masked && mask.KnownEmpty {
		if !mask.Scmp {
			return nil, nil // empty mask allows nothing
		}
		masked = false // empty complement allows everything: skip the filter
	}
	var wInd []uint32
	var wVal []T
	switch opts.Merge {
	case MergeHeap:
		wInd, wVal = colMxvHeap(cscG, uInd, uVal, sr, opts, a)
	case MergeSPA:
		wInd, wVal = colMxvSPA(cscG, uInd, uVal, sr, opts, a)
	default:
		wInd, wVal = colMxvRadix(cscG, uInd, uVal, sr, opts, a)
	}
	if masked {
		// Post-filter by the effective mask (Algorithm 3 Lines 17-24),
		// compacting in place over the workspace-owned merge output — no
		// fresh storage is involved.
		out := 0
		for k, ind := range wInd {
			if mask.Allows(int(ind)) {
				wInd[out] = ind
				wVal[out] = wVal[k]
				out++
			}
		}
		wInd, wVal = wInd[:out], wVal[:out]
	}
	return wInd, wVal
}

// ColMxvBitmap is the push kernel's sort-free output path: instead of
// gathering, radix-sorting and segment-reducing into a sparse list, it
// scatters each product directly into caller-provided bitmap storage
// (wVal/wPresent, length cscG.Cols), combining duplicates with ⊕ on
// arrival. The radix pass — "often the bottleneck" per Section 6.2 —
// disappears entirely; the direction planner selects this path when the
// estimated output density makes the sort dominate (Plan.PushOutBitmap).
// The mask is applied inline during the scatter, so masked-out positions
// are never written. wPresent must arrive cleared; the call returns the
// number of present outputs.
func ColMxvBitmap[T comparable](wVal []T, wPresent []bool, cscG *sparse.CSR[T], u VecView[T], mask MaskView, masked bool, sr SR[T], opts Opts) int {
	if masked && mask.KnownEmpty {
		if !mask.Scmp {
			return 0 // empty mask allows nothing; wPresent is already clear
		}
		masked = false // empty complement allows everything
	}
	ws, transient := kernelWorkspace(opts.Ws, cscG.Rows, cscG.Cols)
	a := arenaFor[T](ws)
	uInd, uVal := pushOperands(a, u)
	nvals := 0
	for i, col := range uInd {
		// The scatter runs on the caller's goroutine with no chunk
		// boundaries, so poll the token every 1024 columns: the partial
		// bitmap is discarded by the caller's post-call context check.
		if i&1023 == 1023 && opts.Cancel.Cancelled() {
			break
		}
		ind, val := cscG.RowSpan(int(col))
		if opts.StructureOnly {
			for _, out := range ind {
				if masked && !mask.Allows(int(out)) {
					continue
				}
				if !wPresent[out] {
					wPresent[out] = true
					wVal[out] = sr.One
					nvals++
				}
			}
			continue
		}
		x := uVal[i]
		for j, out := range ind {
			if masked && !mask.Allows(int(out)) {
				continue
			}
			product := sr.Mul(val[j], x)
			if wPresent[out] {
				wVal[out] = sr.Add(wVal[out], product)
			} else {
				wPresent[out] = true
				wVal[out] = sr.Add(sr.Id, product)
				nvals++
			}
		}
	}
	if transient {
		ws.Release()
	}
	return nvals
}

// colMxvRadix is the paper's GPU strategy (Algorithm 3) transplanted to the
// CPU worker pool: size each selected column, exclusive-scan the lengths,
// gather index/value pairs at their scanned offsets in parallel, radix-sort
// the concatenation, and segment-reduce equal keys. Structure-only mode
// gathers keys alone — the paper's halving of the sort traffic. All scratch
// (lengths, gather arrays, sort ping-pong buffers, histograms) and the
// parallel loop bodies come from the arena, so a warm workspace makes the
// whole pipeline allocation-free. The scan runs sequentially: it is
// O(nnz(f)) next to the gather/sort's O(d·nnz(f)·logM) and needs no
// scratch that way.
func colMxvRadix[T comparable](cscG *sparse.CSR[T], uInd []uint32, uVal []T, sr SR[T], opts Opts, a *arena[T]) ([]uint32, []T) {
	k := len(uInd)
	if k == 0 {
		return nil, nil
	}
	cl := &a.col
	cl.ensure()
	a.lengths = grow(a.lengths, k)
	cl.lengths, cl.cscG, cl.uInd, cl.uVal, cl.sr = a.lengths, cscG, uInd, uVal, sr
	if opts.Sequential {
		cl.size(0, k)
	} else {
		par.ForCancel(opts.Cancel, k, rowGrain, cl.size)
	}
	total := par.ExclusiveScanSequential(cl.lengths)
	if total == 0 {
		cl.clear()
		return nil, nil
	}
	maxKey := uint32(cscG.Cols - 1)
	a.keys = grow(a.keys, total)
	keys := a.keys
	cl.keys = keys
	if opts.StructureOnly {
		if opts.Sequential {
			cl.gatherKeys(0, k)
		} else {
			par.ForCancel(opts.Cancel, k, rowGrain, cl.gatherKeys)
		}
		if opts.Sequential {
			merge.SortKeysSequentialWith(keys, maxKey, &a.ms)
		} else {
			merge.SortKeysWith(keys, maxKey, &a.ms)
		}
		keys = merge.DedupeSortedKeys(keys)
		a.outVal = grow(a.outVal, len(keys))
		vals := a.outVal
		for i := range vals {
			vals[i] = sr.One
		}
		cl.clear()
		return keys, vals
	}
	a.vals = grow(a.vals, total)
	vals := a.vals
	cl.vals = vals
	if opts.Sequential {
		cl.gatherPairs(0, k)
	} else {
		par.ForCancel(opts.Cancel, k, rowGrain, cl.gatherPairs)
	}
	if opts.Sequential {
		merge.SortPairsSequentialWith(keys, vals, maxKey, &a.ms)
	} else {
		merge.SortPairsWith(keys, vals, maxKey, &a.ms)
	}
	cl.clear()
	return merge.SegmentedReducePairs(keys, vals, sr.Add)
}

// colMxvHeap gathers the selected columns and k-way merges them with a
// binary heap — the O(n log k) formulation the Section 3.1 analysis uses.
// It runs sequentially; its role is the cost-model validation and the
// merge-strategy ablation, not peak throughput. Gather and output storage
// come from the arena; only the transient run heap allocates.
func colMxvHeap[T comparable](cscG *sparse.CSR[T], uInd []uint32, uVal []T, sr SR[T], opts Opts, a *arena[T]) ([]uint32, []T) {
	k := len(uInd)
	if k == 0 {
		return nil, nil
	}
	a.lengths = grow(a.lengths, k+1)
	offsets := a.lengths
	offsets[0] = 0
	for i, col := range uInd {
		offsets[i+1] = offsets[i] + cscG.RowLen(int(col))
	}
	total := offsets[k]
	if total == 0 {
		return nil, nil
	}
	a.keys = grow(a.keys, total)
	a.vals = grow(a.vals, total)
	keys, vals := a.keys, a.vals
	for i, col := range uInd {
		ind, val := cscG.RowSpan(int(col))
		off := offsets[i]
		copy(keys[off:], ind)
		if opts.StructureOnly {
			for j := range ind {
				vals[off+j] = sr.One
			}
		} else {
			x := uVal[i]
			for j := range ind {
				vals[off+j] = sr.Mul(val[j], x)
			}
		}
	}
	a.outInd = grow(a.outInd, total)
	a.outVal = grow(a.outVal, total)
	return merge.MultiwayMergePairsInto(a.outInd[:0], a.outVal[:0], keys, vals, offsets[:k+1], sr.Add)
}

// colMxvSPA accumulates into a dense scratch (sparse accumulator) indexed
// by output position, then compacts and sorts the touched set. O(n) merge
// work at the price of an M-sized scratch — paid once per workspace, not
// per call: the presence array is scrubbed via the touched list on the way
// out, restoring the all-false invariant in O(nnz(w)).
func colMxvSPA[T comparable](cscG *sparse.CSR[T], uInd []uint32, uVal []T, sr SR[T], opts Opts, a *arena[T]) ([]uint32, []T) {
	if len(uInd) == 0 {
		return nil, nil
	}
	a.acc = grow(a.acc, cscG.Cols)
	a.seen = grow(a.seen, cscG.Cols)
	acc, seen := a.acc, a.seen
	touched := a.touched[:0]
	for i, col := range uInd {
		ind, val := cscG.RowSpan(int(col))
		for j := range ind {
			out := ind[j]
			var product T
			if opts.StructureOnly {
				product = sr.One
			} else {
				product = sr.Mul(val[j], uVal[i])
			}
			if seen[out] {
				acc[out] = sr.Add(acc[out], product)
			} else {
				seen[out] = true
				acc[out] = sr.Add(sr.Id, product)
				touched = append(touched, out)
			}
		}
	}
	a.touched = touched
	if opts.Sequential {
		merge.SortKeysSequentialWith(touched, uint32(cscG.Cols-1), &a.ms)
	} else {
		merge.SortKeysWith(touched, uint32(cscG.Cols-1), &a.ms)
	}
	a.outVal = grow(a.outVal, len(touched))
	vals := a.outVal
	for i, idx := range touched {
		vals[i] = acc[idx]
		seen[idx] = false // restore the all-false invariant for the next call
	}
	return touched, vals
}

package core

import (
	"pushpull/internal/par"
	"pushpull/internal/sparse"
)

// FusedPullStep is the kernel-fusion extension the paper's Section 7.3
// attributes to Gunrock and suggests for a non-blocking GraphBLAS: the
// masked pull matvec (Algorithm 1 Line 8) fused with the depth assign and
// visited update (Line 7). One pass over the unvisited list does the
// parent probe (with early exit), writes the depth, flips the visited
// bit, and compacts the unvisited list in place — no intermediate frontier
// vector is materialized.
//
// Inputs: g is CSR(Aᵀ); visited is the dense visited bitmap (read for the
// parent probe, updated in the sequential epilogue); unvisited is the
// amortized allow-list, compacted in place. Returns the new frontier's
// vertices and the shrunken unvisited list.
//
// Race discipline: workers read `visited` (bits set only in previous
// levels — the epilogue publishes this level's bits after the barrier) and
// write only depths[v] for v they own via the list partition.
func FusedPullStep[T comparable](g *sparse.CSR[T], visited []bool, unvisited []uint32, depths []int32, depth int32) ([]uint32, []uint32) {
	workers := par.MaxWorkers()
	outs := make([][]uint32, workers)
	keeps := make([][]uint32, workers)
	par.ForWorker(len(unvisited), func(w, lo, hi int) {
		var out, keep []uint32
		for i := lo; i < hi; i++ {
			v := unvisited[i]
			if visited[v] {
				continue // stale entry left by a skipped push-side compaction
			}
			ind := g.Ind[g.Ptr[v]:g.Ptr[v+1]]
			found := false
			for _, u := range ind {
				if visited[u] {
					found = true
					break // early exit: first parent suffices
				}
			}
			if found {
				depths[v] = depth
				out = append(out, v)
			} else {
				keep = append(keep, v)
			}
		}
		outs[w] = out
		keeps[w] = keep
	})
	var frontier []uint32
	compact := unvisited[:0]
	for w := 0; w < workers; w++ {
		frontier = append(frontier, outs[w]...)
		compact = append(compact, keeps[w]...)
	}
	for _, v := range frontier {
		visited[v] = true
	}
	return frontier, compact
}

// FusedPushStep is the push-side counterpart: expand the frontier through
// CSC(Aᵀ) columns, claim unvisited children directly in the visited
// bitmap, and write depths — no sort, no merge, no separate assign. The
// output frontier is unsorted (Gunrock's duplicate-tolerant frontier,
// Section 7.3), which is sound because discovery is idempotent.
//
// It runs sequentially over the frontier's adjacency (the claim test makes
// parallel writes racy without atomics; the fused path is for the ablation
// study, where the pull side dominates anyway).
func FusedPushStep[T comparable](cscG *sparse.CSR[T], visited []bool, frontier []uint32, depths []int32, depth int32) []uint32 {
	var next []uint32
	for _, u := range frontier {
		ind := cscG.Ind[cscG.Ptr[u]:cscG.Ptr[u+1]]
		for _, v := range ind {
			if !visited[v] {
				visited[v] = true
				depths[v] = depth
				next = append(next, v)
			}
		}
	}
	return next
}

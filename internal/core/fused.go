package core

import (
	"pushpull/internal/par"
	"pushpull/internal/sparse"
)

// FusedPullStep is the kernel-fusion extension the paper's Section 7.3
// attributes to Gunrock and suggests for a non-blocking GraphBLAS: the
// masked pull matvec (Algorithm 1 Line 8) fused with the depth assign and
// visited update (Line 7). One pass over the unvisited list does the
// parent probe (with early exit), writes the depth, flips the visited
// bit, and compacts the unvisited list in place — no intermediate frontier
// vector is materialized.
//
// Inputs: g is CSR(Aᵀ); visited is the word-packed visited bitset
// (BitsetWords(rows) words, read for the parent probe, updated in the
// sequential epilogue) — 8× smaller than the []bool bitmap it replaced,
// which is most of what the pull probe touches; unvisited is the
// amortized allow-list, compacted in place. Returns the new frontier's
// vertices and the shrunken unvisited list. With a pinned ws the frontier
// aliases one of the workspace's two ping-pong buffers and stays valid for
// exactly one further fused step — the fused BFS's consumption pattern;
// pass a nil ws for a caller-owned frontier.
//
// Race discipline: workers read `visited` (bits set only in previous
// levels — the epilogue publishes this level's bits after the barrier) and
// write only depths[v] for v they own via the list partition.
func FusedPullStep[T comparable](g *sparse.CSR[T], visited []uint64, unvisited []uint32, depths []int32, depth int32, ws *Workspace) ([]uint32, []uint32) {
	ws, transient := kernelWorkspace(ws, g.Rows, g.Cols)
	fl := &arenaFor[T](ws).fused
	fl.ensure()
	workers := par.MaxWorkers()
	if len(fl.outs) < workers {
		fl.outs = append(fl.outs, make([][]uint32, workers-len(fl.outs))...)
		fl.keeps = append(fl.keeps, make([][]uint32, workers-len(fl.keeps))...)
	}
	fl.g, fl.visited, fl.unvisited, fl.depths, fl.depth = g, visited, unvisited, depths, depth
	used := par.ForWorker(len(unvisited), fl.body)
	frontier := fl.nextFront()
	compact := unvisited[:0]
	for w := 0; w < used; w++ {
		frontier = append(frontier, fl.outs[w]...)
		compact = append(compact, fl.keeps[w]...)
	}
	fl.storeFront(frontier)
	for _, v := range frontier {
		BitsetSet(visited, int(v))
	}
	fl.clear()
	if transient {
		frontier = append([]uint32(nil), frontier...)
		ws.Release()
	}
	return frontier, compact
}

// FusedPushStep is the push-side counterpart: expand the frontier through
// CSC(Aᵀ) columns, claim unvisited children directly in the visited
// bitmap, and write depths — no sort, no merge, no separate assign. The
// output frontier is unsorted (Gunrock's duplicate-tolerant frontier,
// Section 7.3), which is sound because discovery is idempotent. As with
// the pull step, a pinned ws hands back a ping-pong buffer good for one
// further step; the input frontier may be the previous step's buffer.
//
// It runs sequentially over the frontier's adjacency (the claim test makes
// parallel writes racy without atomics; the fused path is for the ablation
// study, where the pull side dominates anyway).
func FusedPushStep[T comparable](cscG *sparse.CSR[T], visited []uint64, frontier []uint32, depths []int32, depth int32, ws *Workspace) []uint32 {
	ws, transient := kernelWorkspace(ws, cscG.Rows, cscG.Cols)
	fl := &arenaFor[T](ws).fused
	next := fl.nextFront()
	for _, u := range frontier {
		ind := cscG.Ind[cscG.Ptr[u]:cscG.Ptr[u+1]]
		for _, v := range ind {
			if !BitsetGet(visited, int(v)) {
				BitsetSet(visited, int(v))
				depths[v] = depth
				next = append(next, v)
			}
		}
	}
	fl.storeFront(next)
	if transient {
		next = append([]uint32(nil), next...)
		ws.Release()
	}
	return next
}

package core

import "testing"

// Benchmarks backing the acceptance criterion that Boolean dense∘dense
// eWise on bitset operands beats the []bool baseline at 2^20 elements.

const benchN = 1 << 20

func boolOperands() (uVal, vVal []bool, uWords, vWords []uint64, uPres, vPres []bool) {
	uVal = make([]bool, benchN)
	vVal = make([]bool, benchN)
	uPres = make([]bool, benchN)
	vPres = make([]bool, benchN)
	uWords = make([]uint64, BitsetWords(benchN))
	vWords = make([]uint64, BitsetWords(benchN))
	for i := 0; i < benchN; i++ {
		uVal[i] = i%2 == 0
		vVal[i] = i%3 == 0
		uPres[i] = true
		vPres[i] = true
	}
	BitsetSetAll(uWords, benchN)
	BitsetSetAll(vWords, benchN)
	return
}

func BenchmarkBoolEWiseDenseBaseline(b *testing.B) {
	uVal, vVal, _, _, _, _ := boolOperands()
	wVal := make([]bool, benchN)
	wPresent := make([]bool, benchN)
	u := DenseVec(uVal)
	v := DenseVec(vVal)
	and := func(a, b bool) bool { return a && b }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EWiseMultBitmap(wVal, wPresent, u, v, false, MaskView{}, and)
	}
}

func BenchmarkBoolEWiseBitsetWords(b *testing.B) {
	uVal, vVal, uWords, vWords, _, _ := boolOperands()
	wVal := make([]bool, benchN)
	wWords := make([]uint64, BitsetWords(benchN))
	u := BitsetVec(uVal, uWords, benchN)
	v := BitsetVec(vVal, vWords, benchN)
	and := func(a, b bool) bool { return a && b }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BoolEWiseBitset(false, wVal, wWords, u, v, false, MaskView{}, and)
	}
}

func BenchmarkBoolEWiseBitsetGenericPath(b *testing.B) {
	uVal, vVal, uWords, vWords, _, _ := boolOperands()
	wVal := make([]bool, benchN)
	wWords := make([]uint64, BitsetWords(benchN))
	u := BitsetVec(uVal, uWords, benchN)
	v := BitsetVec(vVal, vWords, benchN)
	and := func(a, b bool) bool { return a && b }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EWiseMultBitsetOut(wVal, wWords, u, v, false, MaskView{}, and)
	}
}

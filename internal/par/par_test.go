package par

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, DefaultGrain - 1, DefaultGrain, DefaultGrain + 1, 10 * DefaultGrain} {
		hits := make([]int32, n)
		For(n, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForSmallGrain(t *testing.T) {
	n := 1000
	var total atomic.Int64
	For(n, 3, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total.Add(int64(i))
		}
	})
	want := int64(n*(n-1)) / 2
	if got := total.Load(); got != want {
		t.Fatalf("sum over For chunks = %d, want %d", got, want)
	}
}

func TestForWorkerPartition(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 1 << 16} {
		hits := make([]int32, n)
		used := ForWorker(n, func(w, lo, hi int) {
			if lo >= hi {
				t.Errorf("n=%d worker %d: empty span [%d,%d)", n, w, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		if used < 1 || used > MaxWorkers() {
			t.Fatalf("n=%d: used=%d out of range", n, used)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestExclusiveScanMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 5, 1 << 14, 1<<14 + 13, 1 << 17} {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(100)
		}
		want := make([]int, n)
		sum := 0
		for i, x := range xs {
			want[i] = sum
			sum += x
		}
		total := ExclusiveScan(xs)
		if total != sum {
			t.Fatalf("n=%d: total=%d want %d", n, total, sum)
		}
		for i := range xs {
			if xs[i] != want[i] {
				t.Fatalf("n=%d: scan[%d]=%d want %d", n, i, xs[i], want[i])
			}
		}
	}
}

func TestExclusiveScanProperty(t *testing.T) {
	f := func(xs []uint8) bool {
		ints := make([]int, len(xs))
		for i, x := range xs {
			ints[i] = int(x)
		}
		want := make([]int, len(xs))
		sum := 0
		for i := range ints {
			want[i] = sum
			sum += ints[i]
		}
		got := ExclusiveScan(ints)
		if got != sum {
			return false
		}
		for i := range ints {
			if ints[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumAndCount(t *testing.T) {
	n := 1 << 16
	xs := make([]int, n)
	want := 0
	for i := range xs {
		xs[i] = i % 7
		want += xs[i]
	}
	if got := Sum(xs); got != want {
		t.Fatalf("Sum=%d want %d", got, want)
	}
	evens := Count(n, func(i int) bool { return i%2 == 0 })
	if evens != n/2 {
		t.Fatalf("Count=%d want %d", evens, n/2)
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	if MaxWorkers() != 1 {
		t.Fatalf("MaxWorkers=%d want 1", MaxWorkers())
	}
	// Everything must still be correct single-threaded.
	xs := []int{3, 1, 4, 1, 5}
	if total := ExclusiveScan(xs); total != 14 {
		t.Fatalf("total=%d want 14", total)
	}
	if xs[4] != 9 {
		t.Fatalf("scan tail=%d want 9", xs[4])
	}
	if SetMaxWorkers(0) != 1 {
		t.Fatal("SetMaxWorkers should return previous value")
	}
}

func BenchmarkExclusiveScan(b *testing.B) {
	xs := make([]int, 1<<20)
	for i := range xs {
		xs[i] = i & 15
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExclusiveScan(xs)
	}
}

func BenchmarkParallelFor(b *testing.B) {
	n := 1 << 20
	dst := make([]float64, n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(n, 0, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				dst[j] = float64(j) * 1.5
			}
		})
	}
}

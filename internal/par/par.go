// Package par provides the parallel-execution substrate used by the matvec
// kernels: a bounded worker model, chunked parallel-for, parallel prefix
// sums, and parallel reductions.
//
// The paper's implementation targets an NVIDIA K40c GPU; this package is the
// CPU substitute. Kernels written against par preserve the paper's
// scan-gather-sort structure (Algorithm 3): par.ExclusiveScan plays the role
// of the device-wide prefix sum and par.For the role of a grid-stride loop.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps concurrency for all helpers in this package. It defaults
// to GOMAXPROCS and can be lowered (e.g. to 1 for deterministic profiling)
// with SetMaxWorkers.
var maxWorkers atomic.Int64

func init() { maxWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetMaxWorkers bounds the number of concurrent workers used by For, Scan
// and friends. n < 1 is treated as 1. It returns the previous value.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxWorkers.Swap(int64(n)))
}

// MaxWorkers reports the current worker bound.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// DefaultGrain is the minimum chunk size For assigns to a worker when the
// caller passes grain <= 0. It is sized so per-chunk goroutine overhead is
// negligible against even the cheapest per-element loop bodies.
const DefaultGrain = 2048

// For executes body over [0, n) in parallel chunks of at least grain
// elements. body receives half-open ranges [lo, hi). Chunks are distributed
// dynamically (atomic counter) so irregular per-element costs — the norm for
// power-law graph rows — balance across workers. For n below grain, or with
// a single worker, body runs inline on the caller's goroutine.
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	workers := MaxWorkers()
	if workers == 1 || n <= grain {
		body(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if workers > chunks {
		workers = chunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForWorker statically partitions [0, n) into one contiguous span per
// worker and runs body(worker, lo, hi) on each. Unlike For, the worker
// index is stable, which lets bodies accumulate into per-worker scratch
// (histograms, partial sums) without atomics. It returns the number of
// workers actually used; spans are empty-free (every worker gets >= 1
// element) so callers may size scratch by the return value.
func ForWorker(n int, body func(worker, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	workers := MaxWorkers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		body(0, 0, n)
		return 1
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * n / workers
			hi := (w + 1) * n / workers
			body(w, lo, hi)
		}(w)
	}
	wg.Wait()
	return workers
}

// ExclusiveScan replaces xs with its exclusive prefix sum and returns the
// total. It is the device-wide scan of Algorithm 3 Line 5: feeding it the
// per-vertex neighbour-list lengths yields each list's offset in the
// concatenated gather output.
//
// The parallel path is a standard two-pass blocked scan: per-block sums,
// sequential scan of the (small) block-sum array, then per-block local
// scans seeded with the block offsets.
func ExclusiveScan(xs []int) int {
	n := len(xs)
	if n == 0 {
		return 0
	}
	workers := MaxWorkers()
	const minParallelScan = 1 << 14
	if workers == 1 || n < minParallelScan {
		sum := 0
		for i, x := range xs {
			xs[i] = sum
			sum += x
		}
		return sum
	}
	blockSums := make([]int, workers)
	used := ForWorker(n, func(w, lo, hi int) {
		s := 0
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		blockSums[w] = s
	})
	total := 0
	for w := 0; w < used; w++ {
		blockSums[w], total = total, total+blockSums[w]
	}
	ForWorker(n, func(w, lo, hi int) {
		s := blockSums[w]
		for i := lo; i < hi; i++ {
			xs[i], s = s, s+xs[i]
		}
	})
	return total
}

// Sum returns the sum of xs, computed in parallel for large inputs.
func Sum(xs []int) int {
	n := len(xs)
	workers := MaxWorkers()
	const minParallelSum = 1 << 15
	if workers == 1 || n < minParallelSum {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}
	partial := make([]int, workers)
	used := ForWorker(n, func(w, lo, hi int) {
		s := 0
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		partial[w] = s
	})
	total := 0
	for w := 0; w < used; w++ {
		total += partial[w]
	}
	return total
}

// Count returns the number of indices i in [0, n) for which pred(i) is
// true, evaluated in parallel.
func Count(n int, pred func(i int) bool) int {
	if n <= 0 {
		return 0
	}
	workers := MaxWorkers()
	if workers == 1 || n < DefaultGrain {
		c := 0
		for i := 0; i < n; i++ {
			if pred(i) {
				c++
			}
		}
		return c
	}
	partial := make([]int, workers)
	used := ForWorker(n, func(w, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i) {
				c++
			}
		}
		partial[w] = c
	})
	total := 0
	for w := 0; w < used; w++ {
		total += partial[w]
	}
	return total
}

// Package par provides the parallel-execution substrate used by the matvec
// kernels: a bounded worker model, chunked parallel-for, parallel prefix
// sums, and parallel reductions.
//
// The paper's implementation targets an NVIDIA K40c GPU; this package is the
// CPU substitute. Kernels written against par preserve the paper's
// scan-gather-sort structure (Algorithm 3): par.ExclusiveScan plays the role
// of the device-wide prefix sum and par.For the role of a grid-stride loop.
//
// Dispatch is allocation-free in steady state: work is described by pooled
// job records and executed by a set of persistent parked workers, so a
// kernel invoked millions of times (the BFS/PageRank inner loop) never pays
// a per-call goroutine spawn or closure allocation inside par itself.
// Callers that also want zero allocations must pass long-lived func values
// (see internal/core's Workspace, which pins its loop bodies), because a
// func literal handed to For escapes into the job record.
//
// Faults and cancellation: a panic in a loop body never kills a parked
// worker or deadlocks a dispatcher. The first panic (value + stack) is
// captured into the job record, remaining chunks drain as no-ops, and the
// fault is re-raised on the *dispatching* goroutine as a *PanicError once
// every chunk is accounted for. Cancellation is cooperative: ForCancel and
// ForWorkerCancel stop claiming new chunks once their Token trips; chunks
// already running finish, and the call returns normally with the loop only
// partially executed — the caller owns the post-loop token check.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"pushpull/internal/faultinject"
)

// maxWorkers caps concurrency for all helpers in this package. It defaults
// to GOMAXPROCS and can be lowered (e.g. to 1 for deterministic profiling)
// with SetMaxWorkers.
var maxWorkers atomic.Int64

func init() { maxWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetMaxWorkers bounds the number of concurrent workers used by For, Scan
// and friends. n < 1 is treated as 1. It returns the previous value.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxWorkers.Swap(int64(n)))
}

// MaxWorkers reports the current worker bound.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// DefaultGrain is the minimum chunk size For assigns to a worker when the
// caller passes grain <= 0. It is sized so per-chunk dispatch overhead is
// negligible against even the cheapest per-element loop bodies.
const DefaultGrain = 2048

// PanicError is the fault a dispatching goroutine re-raises when a loop body
// panicked during parallel execution: the first panic value captured, plus
// the stack of the goroutine it happened on (captured at recover time, so it
// points into the failing body, not into the dispatcher).
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: loop body panicked: %v", e.Value)
}

// Token is a cooperative cancellation signal checked at chunk-claim
// boundaries. It can be tripped directly (Trip) or bound to a context, in
// which case the first Cancelled call that observes the context done latches
// the trip so later checks are a single atomic load. The zero check path
// never allocates. A nil *Token is valid and never cancels.
//
// A Token is safe for concurrent Cancelled/Trip calls, but like a Workspace
// it is owned by one logical operation at a time: do not share one token
// across unrelated dispatches that should cancel independently.
type Token struct {
	tripped atomic.Bool
	ctx     context.Context
}

// NewToken returns a token that reports cancelled once ctx is done (or Trip
// is called). ctx may be nil for a purely manual token.
func NewToken(ctx context.Context) *Token { return &Token{ctx: ctx} }

// Trip cancels the token directly. nil-safe.
func (t *Token) Trip() {
	if t != nil {
		t.tripped.Store(true)
	}
}

// Cancelled reports whether the token has tripped or its context is done.
// nil-safe and allocation-free — it is called on every chunk claim.
func (t *Token) Cancelled() bool {
	if t == nil {
		return false
	}
	if t.tripped.Load() {
		return true
	}
	if t.ctx != nil && t.ctx.Err() != nil {
		t.tripped.Store(true)
		return true
	}
	return false
}

// Context returns the context the token was built over (nil for a manual or
// nil token).
func (t *Token) Context() context.Context {
	if t == nil {
		return nil
	}
	return t.ctx
}

// job describes one parallel loop. Exactly one of body (dynamic chunks,
// For) and wbody (static spans, ForWorker) is set. Jobs are pooled and
// reference-counted: the dispatching goroutine holds one reference and each
// queue entry holds one, so a job is recycled only after every parked
// worker that received it has let go — which is what makes the pool safe
// against stale queue entries without generation counters.
type job struct {
	refs   atomic.Int64
	next   atomic.Int64               // next chunk/span to claim
	fault  atomic.Pointer[PanicError] // first body panic, CAS-claimed
	tok    *Token                     // optional cooperative cancellation
	wg     sync.WaitGroup             // counts *chunks*, not workers: Wait returns when the loop is done even if queued entries were never picked up
	body   func(lo, hi int)
	wbody  func(worker, lo, hi int)
	n      int
	grain  int
	chunks int
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

// jobs is the parked workers' shared queue. Buffered generously so
// dispatchers never block on send: an entry is only a wake-up hint — the
// dispatching goroutine claims chunks itself, so a hint that is never
// serviced costs nothing but its reference.
var (
	jobs        chan *job
	workersOnce sync.Once
	spawned     atomic.Int64
)

// maxParked bounds the number of persistent worker goroutines.
const maxParked = 256

// ParkedWorkers reports how many persistent worker goroutines have been
// spawned so far. Workers are never retired, so a stable value across a
// stress run is the no-goroutine-leak invariant the fault-injection suite
// asserts.
func ParkedWorkers() int { return int(spawned.Load()) }

func ensureWorkers(want int) {
	workersOnce.Do(func() { jobs = make(chan *job, 4*maxParked) })
	if want > maxParked {
		want = maxParked
	}
	for int(spawned.Load()) < want {
		if n := spawned.Add(1); int(n) <= want {
			go parkedWorker()
		} else {
			spawned.Add(-1)
			break
		}
	}
}

func parkedWorker() {
	for j := range jobs {
		runChunks(j)
		releaseJob(j)
	}
}

// runChunks claims and executes chunks of j until none remain. Both the
// dispatcher and any parked worker that received a queue entry run this, so
// the loop completes even when every parked worker is busy elsewhere. Once a
// fault is recorded or the job's token trips, remaining chunks drain as
// no-ops — each still claimed and Done'd, so the chunk accounting (and with
// it dispatch's Wait) always closes out.
func runChunks(j *job) {
	for {
		c := int(j.next.Add(1)) - 1
		if c >= j.chunks {
			return
		}
		if j.fault.Load() != nil || j.tok.Cancelled() {
			j.wg.Done()
			continue
		}
		j.runChunk(c)
	}
}

// runChunk executes one claimed chunk. A body panic is recovered here — on
// whichever goroutine ran the chunk — and CAS-published as the job's first
// fault; the deferred Done runs either way, so a panicking body can neither
// kill a parked worker nor strand the dispatcher in Wait.
func (j *job) runChunk(c int) {
	defer func() {
		if r := recover(); r != nil {
			j.fault.CompareAndSwap(nil, &PanicError{Value: r, Stack: debug.Stack()})
		}
		j.wg.Done()
	}()
	faultinject.Fire(faultinject.SiteParChunk)
	if j.body != nil {
		lo := c * j.grain
		hi := lo + j.grain
		if hi > j.n {
			hi = j.n
		}
		j.body(lo, hi)
	} else {
		lo := c * j.n / j.chunks
		hi := (c + 1) * j.n / j.chunks
		j.wbody(c, lo, hi)
	}
}

func releaseJob(j *job) {
	if j.refs.Add(-1) == 0 {
		j.body, j.wbody, j.tok = nil, nil, nil
		j.fault.Store(nil)
		jobPool.Put(j)
	}
}

// dispatch runs a prepared job: the caller participates in chunk-stealing
// and queue entries wake up to `helpers` parked workers. It returns after
// every chunk has executed (or drained). If any chunk body panicked, the
// captured first fault is re-raised here, on the dispatching goroutine —
// the parked workers have already recovered and moved on.
func dispatch(j *job, helpers int) {
	ensureWorkers(helpers)
	j.wg.Add(j.chunks)
	j.refs.Store(1)
	j.next.Store(0)
	for i := 0; i < helpers; i++ {
		j.refs.Add(1)
		select {
		case jobs <- j:
		default:
			// Queue full: the caller and already-woken workers will
			// finish the loop on their own.
			j.refs.Add(-1)
			i = helpers
		}
	}
	runChunks(j)
	j.wg.Wait()
	fault := j.fault.Load()
	releaseJob(j)
	if fault != nil {
		panic(fault)
	}
}

// For executes body over [0, n) in parallel chunks of at least grain
// elements. body receives half-open ranges [lo, hi). Chunks are distributed
// dynamically (atomic counter) so irregular per-element costs — the norm for
// power-law graph rows — balance across workers. For n below grain, or with
// a single worker, body runs inline on the caller's goroutine. The caller
// always participates in execution, so For completes even if every parked
// worker is busy.
//
// If body panics on a parked worker, For panics on the calling goroutine
// with a *PanicError wrapping the first panic value and its stack; the
// inline single-worker path lets the original panic value through
// unwrapped. Either way the substrate stays usable.
func For(n, grain int, body func(lo, hi int)) {
	ForCancel(nil, n, grain, body)
}

// ForCancel is For with a cooperative cancellation token: once tok trips (or
// its bound context is done), no further chunks are claimed; chunks already
// running finish. Cancellation is quiet — ForCancel returns normally with
// the loop only partially executed, so the caller must check tok (or its
// context) after the loop before trusting the output. A nil tok never
// cancels.
func ForCancel(tok *Token, n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	workers := MaxWorkers()
	if workers == 1 || n <= grain {
		if !tok.Cancelled() {
			body(0, n)
		}
		return
	}
	chunks := (n + grain - 1) / grain
	if workers > chunks {
		workers = chunks
	}
	j := jobPool.Get().(*job)
	j.body, j.wbody, j.tok = body, nil, tok
	j.n, j.grain, j.chunks = n, grain, chunks
	dispatch(j, workers-1)
}

// ForWorker statically partitions [0, n) into one contiguous span per
// worker and runs body(worker, lo, hi) on each. Unlike For, the worker
// index is stable and unique per span, which lets bodies accumulate into
// per-worker scratch (histograms, partial sums) without atomics. It returns
// the number of spans used; spans are empty-free (every span gets >= 1
// element) so callers may size scratch by the return value.
//
// Spans are claimed dynamically from the same queue as For's chunks: the
// index identifies the *span* (and its scratch slot), not the OS thread, so
// correctness does not depend on a particular number of goroutines being
// free. Panics propagate like For's.
func ForWorker(n int, body func(worker, lo, hi int)) int {
	return ForWorkerCancel(nil, n, body)
}

// ForWorkerCancel is ForWorker with a cooperative cancellation token; spans
// not yet claimed when tok trips never run (their scratch slots are left
// untouched), so the span count it returns only bounds the slots that *may*
// have been written. A nil tok never cancels.
func ForWorkerCancel(tok *Token, n int, body func(worker, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	workers := MaxWorkers()
	if workers > n {
		workers = n
	}
	forSpans(tok, n, workers, body)
	return workers
}

// forSpans runs body over exactly `spans` static spans. The span count is
// fixed by the caller rather than re-read from MaxWorkers, so multi-phase
// span algorithms (ExclusiveScan's sum-then-rescan) stay consistent even if
// SetMaxWorkers moves between phases.
func forSpans(tok *Token, n, spans int, body func(worker, lo, hi int)) {
	if spans <= 1 {
		if !tok.Cancelled() {
			body(0, 0, n)
		}
		return
	}
	j := jobPool.Get().(*job)
	j.body, j.wbody, j.tok = nil, body, tok
	j.n, j.grain, j.chunks = n, 0, spans
	dispatch(j, spans-1)
}

// redScratch is the pooled state for the parallel reductions: the per-span
// partials plus *pinned* span bodies, created once per pooled object and
// re-aimed at each call's operands — so Sum/Count/ExclusiveScan are
// allocation-free in steady state (they used to pay a make([]int, workers)
// plus two closure allocations per call).
type redScratch struct {
	xs      []int
	pred    func(i int) bool
	partial []int

	sumBody   func(w, lo, hi int) // partial[w] = Σ xs[span]
	scanBody  func(w, lo, hi int) // local exclusive scan seeded from partial[w]
	countBody func(w, lo, hi int) // partial[w] = |{i in span : pred(i)}|
}

var redPool = sync.Pool{New: func() any {
	rs := &redScratch{}
	rs.sumBody = func(w, lo, hi int) {
		xs := rs.xs
		s := 0
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		rs.partial[w] = s
	}
	rs.scanBody = func(w, lo, hi int) {
		xs := rs.xs
		s := rs.partial[w]
		for i := lo; i < hi; i++ {
			xs[i], s = s, s+xs[i]
		}
	}
	rs.countBody = func(w, lo, hi int) {
		pred := rs.pred
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i) {
				c++
			}
		}
		rs.partial[w] = c
	}
	return rs
}}

func acquireRed(spans int) *redScratch {
	rs := redPool.Get().(*redScratch)
	if cap(rs.partial) < spans {
		rs.partial = make([]int, spans)
	}
	rs.partial = rs.partial[:spans]
	return rs
}

func (rs *redScratch) release() {
	rs.xs, rs.pred = nil, nil
	redPool.Put(rs)
}

// ExclusiveScan replaces xs with its exclusive prefix sum and returns the
// total. It is the device-wide scan of Algorithm 3 Line 5: feeding it the
// per-vertex neighbour-list lengths yields each list's offset in the
// concatenated gather output.
//
// The parallel path is a standard two-pass blocked scan: per-block sums,
// sequential scan of the (small) block-sum array, then per-block local
// scans seeded with the block offsets. Both passes run over the same fixed
// span partition, so the scan stays correct even if SetMaxWorkers changes
// concurrently.
func ExclusiveScan(xs []int) int {
	n := len(xs)
	if n == 0 {
		return 0
	}
	workers := MaxWorkers()
	const minParallelScan = 1 << 14
	if workers == 1 || n < minParallelScan {
		return ExclusiveScanSequential(xs)
	}
	spans := workers
	if spans > n {
		spans = n
	}
	rs := acquireRed(spans)
	rs.xs = xs
	forSpans(nil, n, spans, rs.sumBody)
	total := 0
	for w := 0; w < spans; w++ {
		rs.partial[w], total = total, total+rs.partial[w]
	}
	forSpans(nil, n, spans, rs.scanBody)
	rs.release()
	return total
}

// ExclusiveScanSequential is the single-threaded scan. Workspace-backed
// kernels use it directly: the scan is O(nnz(f)) against the gather/sort
// work's O(d·nnz(f)·logM), and the sequential form needs no scratch.
func ExclusiveScanSequential(xs []int) int {
	sum := 0
	for i, x := range xs {
		xs[i] = sum
		sum += x
	}
	return sum
}

// Sum returns the sum of xs, computed in parallel for large inputs.
func Sum(xs []int) int {
	n := len(xs)
	workers := MaxWorkers()
	const minParallelSum = 1 << 15
	if workers == 1 || n < minParallelSum {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}
	spans := workers
	if spans > n {
		spans = n
	}
	rs := acquireRed(spans)
	rs.xs = xs
	forSpans(nil, n, spans, rs.sumBody)
	total := 0
	for w := 0; w < spans; w++ {
		total += rs.partial[w]
	}
	rs.release()
	return total
}

// Count returns the number of indices i in [0, n) for which pred(i) is
// true, evaluated in parallel.
func Count(n int, pred func(i int) bool) int {
	if n <= 0 {
		return 0
	}
	workers := MaxWorkers()
	if workers == 1 || n < DefaultGrain {
		c := 0
		for i := 0; i < n; i++ {
			if pred(i) {
				c++
			}
		}
		return c
	}
	spans := workers
	if spans > n {
		spans = n
	}
	rs := acquireRed(spans)
	rs.pred = pred
	forSpans(nil, n, spans, rs.countBody)
	total := 0
	for w := 0; w < spans; w++ {
		total += rs.partial[w]
	}
	rs.release()
	return total
}

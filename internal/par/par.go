// Package par provides the parallel-execution substrate used by the matvec
// kernels: a bounded worker model, chunked parallel-for, parallel prefix
// sums, and parallel reductions.
//
// The paper's implementation targets an NVIDIA K40c GPU; this package is the
// CPU substitute. Kernels written against par preserve the paper's
// scan-gather-sort structure (Algorithm 3): par.ExclusiveScan plays the role
// of the device-wide prefix sum and par.For the role of a grid-stride loop.
//
// Dispatch is allocation-free in steady state: work is described by pooled
// job records and executed by a set of persistent parked workers, so a
// kernel invoked millions of times (the BFS/PageRank inner loop) never pays
// a per-call goroutine spawn or closure allocation inside par itself.
// Callers that also want zero allocations must pass long-lived func values
// (see internal/core's Workspace, which pins its loop bodies), because a
// func literal handed to For escapes into the job record.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps concurrency for all helpers in this package. It defaults
// to GOMAXPROCS and can be lowered (e.g. to 1 for deterministic profiling)
// with SetMaxWorkers.
var maxWorkers atomic.Int64

func init() { maxWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetMaxWorkers bounds the number of concurrent workers used by For, Scan
// and friends. n < 1 is treated as 1. It returns the previous value.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxWorkers.Swap(int64(n)))
}

// MaxWorkers reports the current worker bound.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// DefaultGrain is the minimum chunk size For assigns to a worker when the
// caller passes grain <= 0. It is sized so per-chunk dispatch overhead is
// negligible against even the cheapest per-element loop bodies.
const DefaultGrain = 2048

// job describes one parallel loop. Exactly one of body (dynamic chunks,
// For) and wbody (static spans, ForWorker) is set. Jobs are pooled and
// reference-counted: the dispatching goroutine holds one reference and each
// queue entry holds one, so a job is recycled only after every parked
// worker that received it has let go — which is what makes the pool safe
// against stale queue entries without generation counters.
type job struct {
	refs   atomic.Int64
	next   atomic.Int64   // next chunk/span to claim
	wg     sync.WaitGroup // counts *chunks*, not workers: Wait returns when the loop is done even if queued entries were never picked up
	body   func(lo, hi int)
	wbody  func(worker, lo, hi int)
	n      int
	grain  int
	chunks int
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

// jobs is the parked workers' shared queue. Buffered generously so
// dispatchers never block on send: an entry is only a wake-up hint — the
// dispatching goroutine claims chunks itself, so a hint that is never
// serviced costs nothing but its reference.
var (
	jobs        chan *job
	workersOnce sync.Once
	spawned     atomic.Int64
)

// maxParked bounds the number of persistent worker goroutines.
const maxParked = 256

func ensureWorkers(want int) {
	workersOnce.Do(func() { jobs = make(chan *job, 4*maxParked) })
	if want > maxParked {
		want = maxParked
	}
	for int(spawned.Load()) < want {
		if n := spawned.Add(1); int(n) <= want {
			go parkedWorker()
		} else {
			spawned.Add(-1)
			break
		}
	}
}

func parkedWorker() {
	for j := range jobs {
		runChunks(j)
		releaseJob(j)
	}
}

// runChunks claims and executes chunks of j until none remain. Both the
// dispatcher and any parked worker that received a queue entry run this, so
// the loop completes even when every parked worker is busy elsewhere.
func runChunks(j *job) {
	for {
		c := int(j.next.Add(1)) - 1
		if c >= j.chunks {
			return
		}
		if j.body != nil {
			lo := c * j.grain
			hi := lo + j.grain
			if hi > j.n {
				hi = j.n
			}
			j.body(lo, hi)
		} else {
			lo := c * j.n / j.chunks
			hi := (c + 1) * j.n / j.chunks
			j.wbody(c, lo, hi)
		}
		j.wg.Done()
	}
}

func releaseJob(j *job) {
	if j.refs.Add(-1) == 0 {
		j.body, j.wbody = nil, nil
		jobPool.Put(j)
	}
}

// dispatch runs a prepared job: the caller participates in chunk-stealing
// and queue entries wake up to `helpers` parked workers. It returns after
// every chunk has executed.
func dispatch(j *job, helpers int) {
	ensureWorkers(helpers)
	j.wg.Add(j.chunks)
	j.refs.Store(1)
	j.next.Store(0)
	for i := 0; i < helpers; i++ {
		j.refs.Add(1)
		select {
		case jobs <- j:
		default:
			// Queue full: the caller and already-woken workers will
			// finish the loop on their own.
			j.refs.Add(-1)
			i = helpers
		}
	}
	runChunks(j)
	j.wg.Wait()
	releaseJob(j)
}

// For executes body over [0, n) in parallel chunks of at least grain
// elements. body receives half-open ranges [lo, hi). Chunks are distributed
// dynamically (atomic counter) so irregular per-element costs — the norm for
// power-law graph rows — balance across workers. For n below grain, or with
// a single worker, body runs inline on the caller's goroutine. The caller
// always participates in execution, so For completes even if every parked
// worker is busy.
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	workers := MaxWorkers()
	if workers == 1 || n <= grain {
		body(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if workers > chunks {
		workers = chunks
	}
	j := jobPool.Get().(*job)
	j.body, j.wbody = body, nil
	j.n, j.grain, j.chunks = n, grain, chunks
	dispatch(j, workers-1)
}

// ForWorker statically partitions [0, n) into one contiguous span per
// worker and runs body(worker, lo, hi) on each. Unlike For, the worker
// index is stable and unique per span, which lets bodies accumulate into
// per-worker scratch (histograms, partial sums) without atomics. It returns
// the number of spans used; spans are empty-free (every span gets >= 1
// element) so callers may size scratch by the return value.
//
// Spans are claimed dynamically from the same queue as For's chunks: the
// index identifies the *span* (and its scratch slot), not the OS thread, so
// correctness does not depend on a particular number of goroutines being
// free.
func ForWorker(n int, body func(worker, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	workers := MaxWorkers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		body(0, 0, n)
		return 1
	}
	j := jobPool.Get().(*job)
	j.body, j.wbody = nil, body
	j.n, j.grain, j.chunks = n, 0, workers
	dispatch(j, workers-1)
	return workers
}

// ExclusiveScan replaces xs with its exclusive prefix sum and returns the
// total. It is the device-wide scan of Algorithm 3 Line 5: feeding it the
// per-vertex neighbour-list lengths yields each list's offset in the
// concatenated gather output.
//
// The parallel path is a standard two-pass blocked scan: per-block sums,
// sequential scan of the (small) block-sum array, then per-block local
// scans seeded with the block offsets.
func ExclusiveScan(xs []int) int {
	n := len(xs)
	if n == 0 {
		return 0
	}
	workers := MaxWorkers()
	const minParallelScan = 1 << 14
	if workers == 1 || n < minParallelScan {
		return ExclusiveScanSequential(xs)
	}
	blockSums := make([]int, workers)
	used := ForWorker(n, func(w, lo, hi int) {
		s := 0
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		blockSums[w] = s
	})
	total := 0
	for w := 0; w < used; w++ {
		blockSums[w], total = total, total+blockSums[w]
	}
	ForWorker(n, func(w, lo, hi int) {
		s := blockSums[w]
		for i := lo; i < hi; i++ {
			xs[i], s = s, s+xs[i]
		}
	})
	return total
}

// ExclusiveScanSequential is the single-threaded scan. Workspace-backed
// kernels use it directly: the scan is O(nnz(f)) against the gather/sort
// work's O(d·nnz(f)·logM), and the sequential form needs no scratch.
func ExclusiveScanSequential(xs []int) int {
	sum := 0
	for i, x := range xs {
		xs[i] = sum
		sum += x
	}
	return sum
}

// Sum returns the sum of xs, computed in parallel for large inputs.
func Sum(xs []int) int {
	n := len(xs)
	workers := MaxWorkers()
	const minParallelSum = 1 << 15
	if workers == 1 || n < minParallelSum {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}
	partial := make([]int, workers)
	used := ForWorker(n, func(w, lo, hi int) {
		s := 0
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		partial[w] = s
	})
	total := 0
	for w := 0; w < used; w++ {
		total += partial[w]
	}
	return total
}

// Count returns the number of indices i in [0, n) for which pred(i) is
// true, evaluated in parallel.
func Count(n int, pred func(i int) bool) int {
	if n <= 0 {
		return 0
	}
	workers := MaxWorkers()
	if workers == 1 || n < DefaultGrain {
		c := 0
		for i := 0; i < n; i++ {
			if pred(i) {
				c++
			}
		}
		return c
	}
	partial := make([]int, workers)
	used := ForWorker(n, func(w, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i) {
				c++
			}
		}
		partial[w] = c
	})
	total := 0
	for w := 0; w < used; w++ {
		total += partial[w]
	}
	return total
}

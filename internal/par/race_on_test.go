//go:build race

package par

// raceEnabled reports that this test binary was built with the race
// detector, under which sync.Pool deliberately drops a fraction of Puts —
// making zero-allocation guarantees through pools unmeasurable.
const raceEnabled = true

//go:build !race

package par

// raceEnabled: see race_on_test.go.
const raceEnabled = false

package par

import (
	"context"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForPanicPropagatesAsPanicError: a body panic on the chunked dispatch
// path must re-raise on the calling goroutine as a *PanicError carrying the
// first panic value and the failing goroutine's stack.
func TestForPanicPropagatesAsPanicError(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PanicError", r, r)
		}
		if pe.Value != "boom" {
			t.Fatalf("PanicError.Value = %v, want boom", pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatal("PanicError.Stack is empty")
		}
		if !strings.Contains(pe.Error(), "boom") {
			t.Fatalf("PanicError.Error() = %q, want it to mention the value", pe.Error())
		}
	}()
	For(1000, 4, func(lo, hi int) { panic("boom") })
	t.Fatal("For returned instead of panicking")
}

// TestForPanicInlineUnwrapped: the single-worker inline path lets the
// original panic value through without wrapping.
func TestForPanicInlineUnwrapped(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	defer func() {
		if r := recover(); r != "raw" {
			t.Fatalf("recovered %v, want raw panic value", r)
		}
	}()
	For(10, 0, func(lo, hi int) { panic("raw") })
}

// TestSubstrateSurvivesPanics: repeated body panics must neither kill
// parked workers nor corrupt the job pool — later loops run correctly and
// the worker count stays flat (no leak, no respawn).
func TestSubstrateSurvivesPanics(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	// Warm the worker set so the baseline is stable.
	For(4*DefaultGrain, 0, func(lo, hi int) {})
	base := ParkedWorkers()
	for round := 0; round < 20; round++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("panicking loop did not propagate")
				}
			}()
			For(1000, 4, func(lo, hi int) { panic(round) })
		}()
		n := 3000 + round
		hits := make([]int32, n)
		For(n, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("round %d: index %d visited %d times after panic", round, i, h)
			}
		}
	}
	if got := ParkedWorkers(); got != base {
		t.Fatalf("ParkedWorkers = %d after panics, was %d (leak or worker death)", got, base)
	}
}

// TestForWorkerPanicPropagates covers the span-mode dispatch path.
func TestForWorkerPanicPropagates(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	defer func() {
		if _, ok := recover().(*PanicError); !ok {
			t.Fatal("ForWorker panic not wrapped as *PanicError")
		}
	}()
	ForWorker(1<<12, func(w, lo, hi int) { panic("span boom") })
}

// TestForCancelPreTripped: a token tripped before the call means no body
// runs at all, on both the inline and the dispatch path.
func TestForCancelPreTripped(t *testing.T) {
	for _, workers := range []int{1, 4} {
		prev := SetMaxWorkers(workers)
		tok := NewToken(nil)
		tok.Trip()
		var ran atomic.Int64
		ForCancel(tok, 10000, 8, func(lo, hi int) { ran.Add(int64(hi - lo)) })
		used := ForWorkerCancel(tok, 10000, func(w, lo, hi int) { ran.Add(int64(hi - lo)) })
		SetMaxWorkers(prev)
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d elements ran under a pre-tripped token", workers, ran.Load())
		}
		if used < 0 || used > 10000 {
			t.Fatalf("workers=%d: span count %d out of range", workers, used)
		}
	}
}

// TestForCancelMidLoop: tripping the token from inside the first chunk must
// stop further chunk claims — the loop returns normally, partially executed.
func TestForCancelMidLoop(t *testing.T) {
	prev := SetMaxWorkers(2)
	defer SetMaxWorkers(prev)
	tok := NewToken(nil)
	var ran atomic.Int64
	n := 100000
	ForCancel(tok, n, 10, func(lo, hi int) {
		tok.Trip()
		ran.Add(int64(hi - lo))
	})
	if got := ran.Load(); got == 0 || got >= int64(n) {
		t.Fatalf("cancelled loop ran %d of %d elements, want partial", got, n)
	}
	if !tok.Cancelled() {
		t.Fatal("token not cancelled after Trip")
	}
}

// TestTokenContextLatch: a context-bound token latches the first done
// observation; nil tokens are inert and safe.
func TestTokenContextLatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tok := NewToken(ctx)
	if tok.Cancelled() {
		t.Fatal("fresh token reports cancelled")
	}
	if tok.Context() != ctx {
		t.Fatal("Context() does not round-trip")
	}
	cancel()
	if !tok.Cancelled() {
		t.Fatal("token did not observe context cancellation")
	}
	if !tok.tripped.Load() {
		t.Fatal("context observation did not latch")
	}

	var nilTok *Token
	nilTok.Trip() // must not panic
	if nilTok.Cancelled() {
		t.Fatal("nil token reports cancelled")
	}
	if nilTok.Context() != nil {
		t.Fatal("nil token has a context")
	}
}

// TestConcurrentSetMaxWorkers hammers the worker bound while loops, scans
// and reductions are in flight: every result must stay exact regardless of
// where the bound moves mid-call (the two-pass scan runs both phases over
// one fixed span partition).
func TestConcurrentSetMaxWorkers(t *testing.T) {
	prev := MaxWorkers()
	defer SetMaxWorkers(prev)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			w = w%8 + 1
			SetMaxWorkers(w)
			runtime.Gosched()
		}
	}()

	n := 1 << 15
	xs := make([]int, n)
	wantSum := 0
	for i := range xs {
		xs[i] = i & 7
		wantSum += xs[i]
	}
	scanBuf := make([]int, n)
	for round := 0; round < 50; round++ {
		var covered atomic.Int64
		For(n, 16, func(lo, hi int) { covered.Add(int64(hi - lo)) })
		if covered.Load() != int64(n) {
			t.Fatalf("round %d: For covered %d of %d", round, covered.Load(), n)
		}
		if got := Sum(xs); got != wantSum {
			t.Fatalf("round %d: Sum=%d want %d", round, got, wantSum)
		}
		copy(scanBuf, xs)
		if got := ExclusiveScan(scanBuf); got != wantSum {
			t.Fatalf("round %d: scan total=%d want %d", round, got, wantSum)
		}
		if scanBuf[1] != xs[0] || scanBuf[n-1] != wantSum-xs[n-1] {
			t.Fatalf("round %d: scan output corrupted", round)
		}
		if got := Count(n, func(i int) bool { return xs[i] == 0 }); got != n/8 {
			t.Fatalf("round %d: Count=%d want %d", round, got, n/8)
		}
	}
	close(stop)
	wg.Wait()
}

// TestDispatchQueueFullFallback (white-box): with every parked worker
// blocked and the job queue stuffed full, dispatch's non-blocking send must
// hit its default branch and the calling goroutine must complete the whole
// loop alone.
func TestDispatchQueueFullFallback(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	// Ensure the queue exists and some workers are parked.
	For(4*DefaultGrain, 0, func(lo, hi int) {})
	nw := int(spawned.Load())
	if nw == 0 {
		t.Fatal("no parked workers spawned")
	}

	// Block every parked worker: one blocking chunk per worker, claimed as
	// soon as the worker wakes, held until release closes.
	release := make(chan struct{})
	var blocked atomic.Int64
	blocker := jobPool.Get().(*job)
	blocker.body = func(lo, hi int) {
		blocked.Add(1)
		<-release
	}
	blocker.wbody, blocker.tok = nil, nil
	blocker.n, blocker.grain, blocker.chunks = nw, 1, nw
	blocker.next.Store(0)
	blocker.wg.Add(nw)
	blocker.refs.Store(int64(nw) + 1) // nw queue entries + our handle
	for i := 0; i < nw; i++ {
		jobs <- blocker
	}
	for int(blocked.Load()) < nw {
		runtime.Gosched()
	}

	// Stuff the queue with an inert job (zero chunks: workers that ever
	// drain it do no work). All consumers are blocked, so the refs store
	// after counting the sends is race-free.
	filler := jobPool.Get().(*job)
	filler.body = func(lo, hi int) {}
	filler.wbody, filler.tok = nil, nil
	filler.n, filler.grain, filler.chunks = 0, 1, 0
	filler.next.Store(0)
	sent := 0
fill:
	for {
		select {
		case jobs <- filler:
			sent++
		default:
			break fill
		}
	}
	if sent == 0 || len(jobs) != cap(jobs) {
		t.Fatalf("queue not full after %d sends (len %d, cap %d)", sent, len(jobs), cap(jobs))
	}
	filler.refs.Store(int64(sent) + 1)

	// The queue is full and every worker is blocked: this For must take the
	// caller-only fallback and still cover the range exactly.
	n := 5 * DefaultGrain
	var covered atomic.Int64
	For(n, 0, func(lo, hi int) { covered.Add(int64(hi - lo)) })
	if covered.Load() != int64(n) {
		t.Fatalf("queue-full For covered %d of %d", covered.Load(), n)
	}

	// Unblock and drain: workers finish the blocker, then consume the
	// filler entries as no-ops; refcounts return both jobs to the pool.
	close(release)
	blocker.wg.Wait()
	releaseJob(blocker)
	for len(jobs) > 0 {
		runtime.Gosched()
	}
	releaseJob(filler)

	// The substrate must be fully serviceable again.
	hits := make([]int32, 3*DefaultGrain)
	For(len(hits), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("post-drain index %d visited %d times", i, h)
		}
	}
}

// TestReductionsAllocFree: ExclusiveScan, Sum and Count must be
// allocation-free in steady state on the parallel path (pooled per-span
// scratch with pinned bodies — the fix for the per-call make+closures).
func TestReductionsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; alloc guard is meaningless")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	n := 1 << 16 // above both minParallelScan and minParallelSum
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i & 3
	}
	pred := func(i int) bool { return i&1 == 0 }
	if avg := testing.AllocsPerRun(10, func() { Sum(xs) }); avg != 0 {
		t.Errorf("Sum: %v allocs/op in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(10, func() { ExclusiveScan(xs) }); avg != 0 {
		t.Errorf("ExclusiveScan: %v allocs/op in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(10, func() { Count(n, pred) }); avg != 0 {
		t.Errorf("Count: %v allocs/op in steady state, want 0", avg)
	}
}

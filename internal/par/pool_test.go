package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestForManyWorkersStress hammers the persistent-worker dispatch with a
// worker bound well above the machine's core count, checking every index is
// visited exactly once across many jobs back to back (exercises job-record
// recycling and stale queue entries).
func TestForManyWorkersStress(t *testing.T) {
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)
	for round := 0; round < 200; round++ {
		n := 1 + (round*37)%5000
		hits := make([]int32, n)
		For(n, 16, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("round %d n=%d: index %d visited %d times", round, n, i, h)
			}
		}
	}
}

// TestForWorkerManyWorkersStress is the span-mode analogue: every span must
// run exactly once with a unique span index even when queue entries go
// stale or are serviced by the dispatcher itself.
func TestForWorkerManyWorkersStress(t *testing.T) {
	prev := SetMaxWorkers(6)
	defer SetMaxWorkers(prev)
	for round := 0; round < 200; round++ {
		n := 1 + (round*53)%4000
		var spanSeen [6]int32
		hits := make([]int32, n)
		used := ForWorker(n, func(w, lo, hi int) {
			atomic.AddInt32(&spanSeen[w], 1)
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for w := 0; w < used; w++ {
			if spanSeen[w] != 1 {
				t.Fatalf("round %d: span %d ran %d times", round, w, spanSeen[w])
			}
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("round %d n=%d: index %d visited %d times", round, n, i, h)
			}
		}
	}
}

// TestConcurrentDispatchers runs many goroutines dispatching For/ForWorker
// loops simultaneously: the shared queue, job pool and reference counts
// must keep each job's chunks isolated.
func TestConcurrentDispatchers(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				n := 100 + g*97 + round
				var sum atomic.Int64
				For(n, 8, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						sum.Add(int64(i))
					}
				})
				if want := int64(n*(n-1)) / 2; sum.Load() != want {
					t.Errorf("goroutine %d round %d: sum %d want %d", g, round, sum.Load(), want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestNestedDispatch nests a For inside a For body. The dispatcher always
// participates in its own job, so nesting must complete even with every
// parked worker busy.
func TestNestedDispatch(t *testing.T) {
	prev := SetMaxWorkers(3)
	defer SetMaxWorkers(prev)
	var total atomic.Int64
	For(64, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			inner := 32 + i
			var s atomic.Int64
			For(inner, 4, func(l, h int) {
				for j := l; j < h; j++ {
					s.Add(1)
				}
			})
			if int(s.Load()) != inner {
				t.Errorf("inner loop at %d covered %d of %d", i, s.Load(), inner)
			}
			total.Add(1)
		}
	})
	if total.Load() != 64 {
		t.Fatalf("outer loop covered %d of 64", total.Load())
	}
}

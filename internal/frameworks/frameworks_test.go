package frameworks

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pushpull/generate"
	"pushpull/graphblas"
)

// refBFS is the queue-based oracle.
func refBFS(g *Graph, source int) []int32 {
	depths := newDepths(g.N, source)
	queue := []int{source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		ind, _ := g.Out.RowSpan(u)
		for _, v := range ind {
			if depths[v] < 0 {
				depths[v] = depths[u] + 1
				queue = append(queue, int(v))
			}
		}
	}
	return depths
}

func testGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	out := map[string]*Graph{}
	rmat, err := generate.RMAT(generate.RMATConfig{Scale: 10, EdgeFactor: 8, Undirected: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out["rmat"] = FromMatrix(rmat)
	grid, err := generate.Grid2D(20, 25)
	if err != nil {
		t.Fatal(err)
	}
	out["grid"] = FromMatrix(grid)
	path, err := generate.Path(200)
	if err != nil {
		t.Fatal(err)
	}
	out["path"] = FromMatrix(path)
	star, err := generate.Star(300)
	if err != nil {
		t.Fatal(err)
	}
	out["star"] = FromMatrix(star)
	// Disconnected graph.
	disc, err := graphblas.NewMatrixFromCOO(8, 8,
		[]uint32{0, 1, 4, 5}, []uint32{1, 0, 5, 4}, []bool{true, true, true, true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out["disconnected"] = FromMatrix(disc)
	return out
}

func TestAllFrameworksMatchReference(t *testing.T) {
	for gname, g := range testGraphs(t) {
		sources := []int{0}
		if g.N > 10 {
			sources = append(sources, g.N/2, g.N-1)
		}
		for _, src := range sources {
			want := refBFS(g, src)
			for _, r := range All() {
				got := r.BFS(g, src)
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("%s on %s src=%d: depth[%d]=%d want %d",
							r.Name, gname, src, v, got[v], want[v])
					}
				}
			}
		}
	}
}

func TestFrameworksPropertyRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(150)
		p := 0.01 + rng.Float64()*0.1
		m, err := generate.ErdosRenyi(n, p, seed)
		if err != nil {
			return false
		}
		g := FromMatrix(m)
		src := rng.Intn(n)
		want := refBFS(g, src)
		for _, r := range All() {
			got := r.BFS(g, src)
			for v := range want {
				if got[v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicBitset(t *testing.T) {
	b := newAtomicBitset(100)
	if b.get(37) {
		t.Fatal("fresh bit set")
	}
	if !b.testAndSet(37) {
		t.Fatal("first testAndSet should win")
	}
	if b.testAndSet(37) {
		t.Fatal("second testAndSet should lose")
	}
	if !b.get(37) {
		t.Fatal("bit lost")
	}
	b.set(99)
	if !b.get(99) {
		t.Fatal("set(99) lost")
	}
	if b.get(98) {
		t.Fatal("neighbour bit contaminated")
	}
}

func TestBuildShards(t *testing.T) {
	m, err := generate.RMAT(generate.RMATConfig{Scale: 9, EdgeFactor: 8, Undirected: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := FromMatrix(m)
	bounds := buildShards(g, 16)
	if bounds[0] != 0 || bounds[len(bounds)-1] != g.N {
		t.Fatalf("shard bounds don't cover: %v", bounds[:3])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatal("shard bounds not increasing")
		}
	}
	// One-shard degenerate case.
	single := buildShards(g, 0)
	if single[len(single)-1] != g.N {
		t.Fatal("single shard must cover all vertices")
	}
}

func TestFrameworkNames(t *testing.T) {
	names := map[string]bool{}
	for _, r := range All() {
		if r.Name == "" || r.BFS == nil {
			t.Fatal("incomplete runner")
		}
		if names[r.Name] {
			t.Fatalf("duplicate name %s", r.Name)
		}
		names[r.Name] = true
	}
	if len(names) != 5 {
		t.Fatalf("want 5 frameworks, got %d", len(names))
	}
}

package frameworks

import (
	"sync/atomic"

	"pushpull/internal/core"
	"pushpull/internal/par"
)

// CuShaBFS follows CuSha's gather-apply-scatter model over G-Shards: edges
// are partitioned by destination into shards, and *every* iteration sweeps
// *all* edges, updating destinations whose source was discovered last
// level. Shards own disjoint destination ranges, so shard-parallel updates
// race-free. The defining cost — Θ(iterations × E) regardless of frontier
// size — is what makes the strategy competitive on low-diameter scale-free
// graphs but catastrophic on meshes (the paper's i04 row: 17609 ms).
func CuShaBFS(g *Graph, source int) []int32 {
	depths := newDepths(g.N, source)
	// Shards: contiguous destination ranges of roughly equal edge count,
	// built from the in-edge CSR (edges grouped by destination).
	const targetShards = 64
	shardBounds := buildShards(g, targetShards)

	for depth := int32(0); ; depth++ {
		var changed int32
		par.ForWorker(len(shardBounds)-1, func(_, lo, hi int) {
			local := int32(0)
			for s := lo; s < hi; s++ {
				vLo, vHi := shardBounds[s], shardBounds[s+1]
				for v := vLo; v < vHi; v++ {
					if depths[v] >= 0 {
						continue
					}
					parents, _ := g.In.RowSpan(v)
					for _, u := range parents {
						// Cross-shard reads race with owned writes; CuSha
						// double-buffers vertex values, which an atomic
						// load models (the only concurrent transition is
						// -1 → depth+1, never == depth, so a stale read
						// is harmless).
						if atomic.LoadInt32(&depths[u]) == depth {
							atomic.StoreInt32(&depths[v], depth+1)
							local++
							break
						}
					}
				}
			}
			if local > 0 {
				atomic.AddInt32(&changed, local)
			}
		})
		if changed == 0 {
			break
		}
	}
	return depths
}

// buildShards splits vertices into contiguous ranges with roughly equal
// in-edge populations, mirroring CuSha's shard construction. The boundary
// math lives in core.ShardBounds — the same edge-balanced splitter the
// range-sharded MxV uses — so both callers share one implementation.
func buildShards(g *Graph, want int) []int {
	return core.ShardBounds(g.In.Ptr, g.N, want)
}

package frameworks

import "pushpull/internal/merge"

// SuiteSparseBFS mimics the 2017-era SuiteSparse:GraphBLAS BFS the paper
// measured: a *single-threaded* CPU implementation that "performs matvecs
// with the column-based algorithm" and "executes in only the forward
// (push) direction". The multiway merge is the textbook heap merge, the
// complement mask is applied after the merge, and no structure-only or
// early-exit shortcuts apply. Its large slowdowns in Figure 7 come from
// exactly these properties, not from implementation sloppiness.
func SuiteSparseBFS(g *Graph, source int) []int32 {
	depths := newDepths(g.N, source)
	visited := make([]bool, g.N)
	visited[source] = true
	frontier := []uint32{uint32(source)}
	for depth := int32(1); len(frontier) > 0; depth++ {
		// Gather the frontier's neighbour lists sequentially.
		offsets := make([]int, len(frontier)+1)
		for i, v := range frontier {
			offsets[i+1] = offsets[i] + g.Out.RowLen(int(v))
		}
		total := offsets[len(frontier)]
		if total == 0 {
			break
		}
		keys := make([]uint32, total)
		vals := make([]uint32, total)
		for i, v := range frontier {
			ind, _ := g.Out.RowSpan(int(v))
			copy(keys[offsets[i]:], ind)
			for j := range ind {
				vals[offsets[i]+j] = v
			}
		}
		// k-way heap merge (O(n log k)), single-threaded.
		mergedK, _ := merge.MultiwayMergePairs(keys, vals, offsets, func(a, _ uint32) uint32 { return a })
		// Complement-mask applied post hoc.
		next := mergedK[:0]
		for _, v := range mergedK {
			if !visited[v] {
				visited[v] = true
				depths[v] = depth
				next = append(next, v)
			}
		}
		frontier = next
	}
	return depths
}

package frameworks

import (
	"pushpull/internal/merge"
	"pushpull/internal/par"
)

// BaselineBFS is the Yang-2015 push-only linear-algebra BFS the paper uses
// as its baseline: every iteration expands the frontier column-wise
// (scan-gather), key-VALUE radix sorts the concatenation (no
// structure-only optimization), segment-merges duplicates, and only then
// filters out already-visited vertices (no fused mask). No direction
// optimization, no early exit. This is Table 2's "Baseline" row.
func BaselineBFS(g *Graph, source int) []int32 {
	depths := newDepths(g.N, source)
	frontier := []uint32{uint32(source)}
	visited := make([]bool, g.N)
	visited[source] = true
	maxKey := uint32(g.N - 1)
	for depth := int32(1); len(frontier) > 0; depth++ {
		// Scan: per-vertex expansion sizes → offsets.
		lengths := make([]int, len(frontier))
		par.For(len(frontier), 512, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				lengths[i] = g.Out.RowLen(int(frontier[i]))
			}
		})
		total := par.ExclusiveScan(lengths)
		if total == 0 {
			break
		}
		// Gather: concatenate neighbour lists, carrying a (dummy) value to
		// stay faithful to the baseline's key-value sort cost.
		keys := make([]uint32, total)
		vals := make([]uint32, total)
		par.For(len(frontier), 512, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ind, _ := g.Out.RowSpan(int(frontier[i]))
				off := lengths[i]
				copy(keys[off:], ind)
				for j := range ind {
					vals[off+j] = frontier[i]
				}
			}
		})
		// Sort + merge (the multiway merge as radix sort).
		merge.SortPairs(keys, vals, maxKey)
		keys, _ = merge.SegmentedReducePairs(keys, vals, func(a, _ uint32) uint32 { return a })
		// Post-filter: drop visited vertices (separate pass — no masking).
		next := keys[:0]
		for _, v := range keys {
			if !visited[v] {
				visited[v] = true
				depths[v] = depth
				next = append(next, v)
			}
		}
		frontier = next
	}
	return depths
}

// Package frameworks re-implements the BFS *strategies* of the graph
// systems the paper compares against (Figure 7): the Yang-2015 push-only
// linear-algebra baseline, single-threaded SuiteSparse-style GraphBLAS,
// CuSha-style gather-apply-scatter over shards, Ligra-style edgeMap with
// Beamer switching, and Gunrock-style frontier-centric traversal with
// local culling and operand reuse. All run on the same CSR substrate and
// worker pool as this work's kernels, so the comparison isolates the
// strategy rather than unrelated engineering.
//
// Each framework exposes BFS(g, source) -> depths; correctness is
// cross-checked against a reference queue BFS in tests, and the harness
// times them for the comparison table.
package frameworks

import (
	"sync/atomic"

	"pushpull/graphblas"
	"pushpull/internal/sparse"
)

// Graph is the shared input: out-edge and in-edge CSR views (aliased for
// undirected graphs), plus the vertex count.
type Graph struct {
	// Out is the CSR of A: Out.RowSpan(u) lists u's children.
	Out *sparse.CSR[bool]
	// In is the CSR of Aᵀ: In.RowSpan(v) lists v's parents.
	In *sparse.CSR[bool]
	// N is the vertex count.
	N int
}

// FromMatrix adapts a graphblas matrix to the frameworks' input form.
func FromMatrix(a *graphblas.Matrix[bool]) *Graph {
	return &Graph{Out: a.CSR(), In: a.CSC(), N: a.NRows()}
}

// Runner is one framework's BFS entry point.
type Runner struct {
	// Name is the label used in the comparison table.
	Name string
	// BFS returns per-vertex depths (-1 = unreached).
	BFS func(g *Graph, source int) []int32
}

// All returns the five comparator frameworks in the paper's column order.
// "This work" is not included — the harness calls algorithms.BFS directly.
func All() []Runner {
	return []Runner{
		{Name: "SuiteSparse", BFS: SuiteSparseBFS},
		{Name: "CuSha", BFS: CuShaBFS},
		{Name: "Baseline", BFS: BaselineBFS},
		{Name: "Ligra", BFS: LigraBFS},
		{Name: "Gunrock", BFS: GunrockBFS},
	}
}

// newDepths allocates a depth array initialized to -1 except the source.
func newDepths(n, source int) []int32 {
	d := make([]int32, n)
	for i := range d {
		d[i] = -1
	}
	d[source] = 0
	return d
}

// atomicBitset is a concurrent bitmap with test-and-set semantics, the
// global-bitmask structure Gunrock's filter and Ligra's push phase use to
// claim vertices.
type atomicBitset struct {
	words []uint32
}

func newAtomicBitset(n int) *atomicBitset {
	return &atomicBitset{words: make([]uint32, (n+31)/32)}
}

// testAndSet atomically sets bit i, reporting whether this call was the
// one that set it (false if it was already set).
func (b *atomicBitset) testAndSet(i int) bool {
	w := &b.words[i>>5]
	mask := uint32(1) << (i & 31)
	for {
		old := atomic.LoadUint32(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint32(w, old, old|mask) {
			return true
		}
	}
}

// get reports bit i without synchronization stronger than an atomic load.
func (b *atomicBitset) get(i int) bool {
	return atomic.LoadUint32(&b.words[i>>5])&(uint32(1)<<(i&31)) != 0
}

// set sets bit i non-atomically (single-threaded phases).
func (b *atomicBitset) set(i int) {
	b.words[i>>5] |= uint32(1) << (i & 31)
}

package frameworks

import (
	"pushpull/internal/par"
)

// GunrockBFS follows Gunrock's frontier-centric strategy, the fastest
// single-GPU BFS in the paper's comparison. Its four distinguishing
// techniques (Section 7.3) are modelled directly:
//
//  1. Local culling: pushed vertices pass a cheap per-worker recent-
//     duplicate hash and a global atomic bitmask instead of a sort — the
//     output frontier is unsorted and may retain a few duplicates.
//  2. Unsorted, duplicate-tolerant frontiers: BFS is idempotent, so
//     duplicates percolate through instead of being merged away.
//  3. Operand reuse in the pull phase: the visited bitmap stands in for
//     the frontier (AᵀV .* ¬v), so no sparse→dense conversion happens.
//  4. Direction optimization with the same ratio heuristic as this work.
//
// What it shares with this work: masking (the ¬v test), early exit in the
// pull loop, structure-only traversal.
func GunrockBFS(g *Graph, source int) []int32 {
	depths := newDepths(g.N, source)
	visited := newAtomicBitset(g.N)
	visited.set(source)
	frontier := []uint32{uint32(source)}
	unvisited := make([]uint32, 0, g.N-1)
	for v := 0; v < g.N; v++ {
		if v != source {
			unvisited = append(unvisited, uint32(v))
		}
	}
	const switchPoint = 0.01
	pull := false
	prevNNZ := 1

	for depth := int32(1); len(frontier) > 0 || pull; depth++ {
		nnz := len(frontier)
		r := float64(nnz) / float64(g.N)
		if !pull && r > switchPoint && nnz >= prevNNZ {
			pull = true
		} else if pull && r < switchPoint && nnz <= prevNNZ {
			pull = false
		}
		prevNNZ = nnz

		if pull {
			// Pull with operand reuse: parents are tested against the
			// visited bitmap, not the frontier list. The unvisited list is
			// compacted in place (kernel-fusion-style single pass).
			next := pullStep(g, visited, depths, depth, &unvisited)
			frontier = next
			if len(unvisited) == 0 || len(next) == 0 {
				// Everything reachable is found, or the level stalled.
				if len(next) == 0 {
					break
				}
			}
			continue
		}

		// Push with local culling.
		workers := par.MaxWorkers()
		outs := make([][]uint32, workers)
		par.ForWorker(len(frontier), func(w, lo, hi int) {
			var out []uint32
			var recent [64]uint32 // warp-hashtable stand-in: recent-dup ring
			for i := lo; i < hi; i++ {
				ind, _ := g.Out.RowSpan(int(frontier[i]))
				for _, v := range ind {
					slot := v & 63
					if recent[slot] == v+1 {
						continue // culled by the cheap local filter
					}
					recent[slot] = v + 1
					if visited.testAndSet(int(v)) {
						depths[v] = depth
						out = append(out, v)
					}
				}
			}
			outs[w] = out
		})
		total := 0
		for _, o := range outs {
			total += len(o)
		}
		frontier = make([]uint32, 0, total)
		for _, o := range outs {
			frontier = append(frontier, o...)
		}
		// Keep the unvisited list roughly current so a later pull is
		// cheap — but only once the frontier is big enough that a pull
		// could plausibly trigger; high-diameter graphs with tiny
		// frontiers (road networks) must not pay an O(N) pass per level.
		// pullStep tolerates the staleness this leaves behind.
		if len(frontier) > g.N/256 {
			w := 0
			for _, v := range unvisited {
				if !visited.get(int(v)) {
					unvisited[w] = v
					w++
				}
			}
			unvisited = unvisited[:w]
		}
	}
	return depths
}

// pullStep scans the unvisited list, claiming vertices with a discovered
// parent (early exit at the first hit), compacting the list as it goes.
// Returns the newly discovered vertices.
func pullStep(g *Graph, visited *atomicBitset, depths []int32, depth int32, unvisited *[]uint32) []uint32 {
	list := *unvisited
	workers := par.MaxWorkers()
	outs := make([][]uint32, workers)
	keeps := make([][]uint32, workers)
	par.ForWorker(len(list), func(w, lo, hi int) {
		var out, keep []uint32
		for i := lo; i < hi; i++ {
			v := list[i]
			if visited.get(int(v)) {
				continue // stale entry left by a skipped compaction
			}
			parents, _ := g.In.RowSpan(int(v))
			found := false
			for _, u := range parents {
				if visited.get(int(u)) && depths[u] < depth {
					found = true
					break
				}
			}
			if found {
				depths[v] = depth
				out = append(out, v)
			} else {
				keep = append(keep, v)
			}
		}
		outs[w] = out
		keeps[w] = keep
	})
	var next []uint32
	compact := list[:0]
	for w := 0; w < len(outs); w++ {
		next = append(next, outs[w]...)
		compact = append(compact, keeps[w]...)
	}
	for _, v := range next {
		visited.set(int(v))
	}
	*unvisited = compact
	return next
}

package frameworks

import (
	"math/rand"
	"testing"

	"pushpull/graphblas"
	"pushpull/internal/par"
)

func randDirectedGraph(rng *rand.Rand, n int, p float64) *Graph {
	var r, c []uint32
	var v []bool
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				r = append(r, uint32(i))
				c = append(c, uint32(j))
				v = append(v, true)
			}
		}
	}
	m, err := graphblas.NewMatrixFromCOO(n, n, r, c, v, nil)
	if err != nil {
		panic(err)
	}
	return FromMatrix(m)
}

func TestAllFrameworksDirected(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(120)
		g := randDirectedGraph(rng, n, 0.05)
		src := rng.Intn(n)
		want := refBFS(g, src)
		for _, r := range All() {
			got := r.BFS(g, src)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("trial %d %s: depth[%d]=%d want %d", trial, r.Name, v, got[v], want[v])
				}
			}
		}
	}
}

func TestFrameworksDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	g := randDirectedGraph(rng, 200, 0.04)
	for _, r := range All() {
		prev := par.SetMaxWorkers(1)
		one := r.BFS(g, 0)
		par.SetMaxWorkers(8)
		many := r.BFS(g, 0)
		par.SetMaxWorkers(prev)
		for v := range one {
			if one[v] != many[v] {
				t.Fatalf("%s: depth[%d] differs across worker counts: %d vs %d", r.Name, v, one[v], many[v])
			}
		}
	}
}

package frameworks

import (
	"pushpull/internal/par"
)

// LigraBFS follows Ligra's edgeMap/vertexMap model (Shun & Blelloch): the
// frontier is a vertex subset that edgeMap expands either sparsely (push:
// per-source scatter with atomic claims, output as an unsorted vertex
// list) or densely (pull: scan all vertices, check parents, early break),
// switching on Beamer's |frontier edges| > |E|/20 threshold. Multithreaded
// on the shared worker pool. Unlike this work, the pull phase scans *all*
// vertices testing the visited bit — Ligra keeps no amortized unvisited
// list — and the frontier is vertex-centric rather than a semiring vector.
func LigraBFS(g *Graph, source int) []int32 {
	depths := newDepths(g.N, source)
	visited := newAtomicBitset(g.N)
	visited.set(source)
	frontier := []uint32{uint32(source)}
	frontierIsDense := false
	var denseFrontier []bool
	threshold := g.Out.NNZ() / 20
	if threshold < 1 {
		threshold = 1
	}

	for depth := int32(1); ; depth++ {
		// Frontier size in edges decides the representation (edgeMap's
		// sparse→dense switch).
		var frontierEdges int
		if frontierIsDense {
			frontierEdges = threshold + 1 // stay dense until the frontier shrinks
			count := 0
			for v := 0; v < g.N; v++ {
				if denseFrontier[v] {
					count++
				}
			}
			if count == 0 {
				break
			}
			if count*8 < g.N { // shrunk: fall back to sparse
				frontier = frontier[:0]
				for v := 0; v < g.N; v++ {
					if denseFrontier[v] {
						frontier = append(frontier, uint32(v))
					}
				}
				frontierIsDense = false
			}
		}
		if !frontierIsDense {
			if len(frontier) == 0 {
				break
			}
			frontierEdges = 0
			for _, v := range frontier {
				frontierEdges += g.Out.RowLen(int(v))
			}
		}

		if frontierEdges > threshold {
			// Dense edgeMap (pull): every vertex checks its parents.
			if denseFrontier == nil {
				denseFrontier = make([]bool, g.N)
			}
			cur := make([]bool, g.N)
			if frontierIsDense {
				copy(cur, denseFrontier)
			} else {
				for _, v := range frontier {
					cur[v] = true
				}
			}
			next := make([]bool, g.N)
			par.For(g.N, 1024, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					if visited.get(v) {
						continue
					}
					parents, _ := g.In.RowSpan(v)
					for _, u := range parents {
						if cur[u] {
							next[v] = true
							depths[v] = depth
							visited.set(v) // safe: only this worker owns v
							break
						}
					}
				}
			})
			denseFrontier = next
			frontierIsDense = true
			continue
		}

		// Sparse edgeMap (push): scatter with atomic claims; per-worker
		// output buffers concatenated, unsorted, duplicate-free by claim.
		workers := par.MaxWorkers()
		outs := make([][]uint32, workers)
		par.ForWorker(len(frontier), func(w, lo, hi int) {
			var out []uint32
			for i := lo; i < hi; i++ {
				ind, _ := g.Out.RowSpan(int(frontier[i]))
				for _, v := range ind {
					if visited.testAndSet(int(v)) {
						depths[v] = depth
						out = append(out, v)
					}
				}
			}
			outs[w] = out
		})
		frontier = frontier[:0]
		for _, out := range outs {
			frontier = append(frontier, out...)
		}
		frontierIsDense = false
	}
	return depths
}

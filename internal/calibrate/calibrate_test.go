package calibrate

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pushpull/internal/core"
)

func testModel() core.CostModel {
	return core.CostModel{
		GatherNs: 2.5, ProbeBoolNs: 1.5, ProbeWordNs: 0.75, ProbeDenseNs: 0.25,
		RowNs: 3, ScatterNs: 1.25, ClearNs: 0.1, SortNs: 2, SetupNs: 800,
	}
}

func TestProfileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, DefaultName())
	p := NewProfile(testModel())
	p.Scale = 12
	p.Observations = 48
	p.ResidualFrac = 0.17
	if err := Save(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *p {
		t.Fatalf("round trip changed the profile:\n  wrote %+v\n  read  %+v", *p, *got)
	}
	if !strings.HasPrefix(filepath.Base(path), "PPTUNE_") {
		t.Fatalf("default name not host-keyed: %s", path)
	}
}

func TestLoadRejectsBadProfiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name, content string
	}{
		{"malformed.json", `{"version": 1, "model": {`},
		{"wrong-version.json", `{"version": 99, "model": {"row_ns": 1, "gather_ns": 1}}`},
		{"negative.json", `{"version": 1, "model": {"row_ns": -3, "gather_ns": 1}}`},
		{"all-zero.json", `{"version": 1, "model": {}}`},
		{"nan-residual.json", `{"version": 1, "residual_frac": 1e999, "model": {"row_ns": 1}}`},
	}
	for _, tc := range cases {
		if _, err := Load(write(tc.name, tc.content)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	// Save refuses to persist an invalid profile at all.
	bad := NewProfile(core.CostModel{RowNs: math.NaN()})
	if err := Save(filepath.Join(dir, "nan.json"), bad); err == nil {
		t.Error("Save wrote a NaN model")
	}
}

// TestFitRecoversKnownModel builds synthetic observations from a known
// coefficient set (no timing involved) and checks the least-squares fit
// recovers it: the fit machinery itself must be exact on noiseless data
// and close under multiplicative noise.
func TestFitRecoversKnownModel(t *testing.T) {
	want := testModel()
	rng := rand.New(rand.NewSource(3))
	synth := func(noise float64) []Observation {
		var obs []Observation
		// Two degree regimes at two sizes and several densities,
		// mirroring Collect's shape (the size split is what makes the
		// O(n) clear term separable from the per-op setup constant).
		for _, regime := range []struct{ d, n float64 }{{6, 2048}, {16, 4096}} {
			d, n := regime.d, regime.n
			for _, frac := range []float64{1.0 / 128, 1.0 / 32, 1.0 / 8, 1.0 / 4, 1.0 / 2} {
				k := frac * n
				edges := k * d
				merge := math.Log2(k + 2)
				allow := n - k
				rows := []Observation{
					{Feats: featVec(map[int]float64{termSetup: 1, termRow: n, termProbeDense: n * d})},
					{Feats: featVec(map[int]float64{termSetup: 1, termRow: n, termProbeBool: n * d})},
					{Feats: featVec(map[int]float64{termSetup: 1, termRow: allow, termProbeWord: allow * d})},
					{Feats: featVec(map[int]float64{termSetup: 1, termRow: allow, termProbeBool: allow * d})},
					{Feats: featVec(map[int]float64{termSetup: 1, termGather: edges, termSort: edges * merge})},
					{Feats: featVec(map[int]float64{termSetup: 1, termGather: edges, termScatter: edges, termClear: n})},
				}
				for i := range rows {
					ns := want.SetupNs*rows[i].Feats[termSetup] +
						want.RowNs*rows[i].Feats[termRow] +
						want.ProbeBoolNs*rows[i].Feats[termProbeBool] +
						want.ProbeWordNs*rows[i].Feats[termProbeWord] +
						want.ProbeDenseNs*rows[i].Feats[termProbeDense] +
						want.GatherNs*rows[i].Feats[termGather] +
						want.SortNs*rows[i].Feats[termSort] +
						want.ScatterNs*rows[i].Feats[termScatter] +
						want.ClearNs*rows[i].Feats[termClear]
					rows[i].Ns = ns * (1 + noise*(2*rng.Float64()-1))
					obs = append(obs, rows[i])
				}
			}
		}
		return obs
	}

	got, residual := Fit(synth(0))
	checkClose := func(name string, g, w, tol float64) {
		t.Helper()
		if w == 0 && g == 0 {
			return
		}
		if math.Abs(g-w) > tol*w {
			t.Errorf("%s: fitted %g, want %g", name, g, w)
		}
	}
	for _, c := range []struct {
		name string
		g, w float64
	}{
		{"gather", got.GatherNs, want.GatherNs},
		{"probe-bool", got.ProbeBoolNs, want.ProbeBoolNs},
		{"probe-word", got.ProbeWordNs, want.ProbeWordNs},
		{"probe-dense", got.ProbeDenseNs, want.ProbeDenseNs},
		{"row", got.RowNs, want.RowNs},
		{"scatter", got.ScatterNs, want.ScatterNs},
		{"clear", got.ClearNs, want.ClearNs},
		{"sort", got.SortNs, want.SortNs},
		{"setup", got.SetupNs, want.SetupNs},
	} {
		checkClose(c.name, c.g, c.w, 0.02)
	}
	// The ridge term biases the solution a hair off the exact solve, so
	// "zero" residual means "well under a percent".
	if residual > 1e-2 {
		t.Errorf("noiseless fit residual %g, want ~0", residual)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("fitted model invalid: %v", err)
	}

	// 10% multiplicative noise: coefficients stay non-negative and the
	// dominant ones stay in the neighbourhood.
	noisy, residual := Fit(synth(0.10))
	if err := noisy.Validate(); err != nil {
		t.Fatalf("noisy fit invalid: %v", err)
	}
	// Least squares minimizes absolute error, so the *relative* residual
	// is dominated by the smallest observations; it just has to stay the
	// same order as the injected noise.
	if residual > 0.5 {
		t.Errorf("noisy fit residual %g implausibly large", residual)
	}
	// Gather is only weakly separated from sort/scatter (they share the
	// same observations), so it gets the widest band.
	checkClose("noisy gather", noisy.GatherNs, want.GatherNs, 1.0)
	checkClose("noisy row", noisy.RowNs, want.RowNs, 0.5)
}

func featVec(m map[int]float64) [numTerms]float64 {
	var f [numTerms]float64
	for t, v := range m {
		f[t] = v
	}
	return f
}

// TestFitClampsUnidentifiedTerms feeds observations where one term's
// weight is effectively negative in the unconstrained solution and checks
// the active-set clamp zeroes it instead.
func TestFitClampsUnidentifiedTerms(t *testing.T) {
	// Construct pull observations where ns *decreases* with the probe
	// count at fixed rows — an unconstrained fit would price probes
	// negative.
	obs := []Observation{
		{Feats: featVec(map[int]float64{termRow: 1000, termProbeBool: 4000}), Ns: 5000},
		{Feats: featVec(map[int]float64{termRow: 1000, termProbeBool: 16000}), Ns: 4000},
		{Feats: featVec(map[int]float64{termRow: 2000, termProbeBool: 8000}), Ns: 10000},
	}
	m, _ := Fit(obs)
	if m.ProbeBoolNs < 0 || m.RowNs < 0 {
		t.Fatalf("negative coefficient escaped the clamp: %+v", m)
	}
	if m.ProbeBoolNs != 0 {
		t.Fatalf("inverted probe term should clamp to 0, got %g", m.ProbeBoolNs)
	}
	if m.RowNs <= 0 {
		t.Fatalf("row term should carry the cost, got %g", m.RowNs)
	}
	// Degenerate inputs do not panic and produce the zero model.
	if m, _ := Fit(nil); m.Calibrated() {
		t.Fatal("empty observation set produced a calibrated model")
	}
}

// TestCollectAndRunSmoke runs the real microbenchmarks at a tiny scale:
// the observations must cover all six variants and both graphs, and the
// fitted profile must validate and round-trip.
func TestCollectAndRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing benchmarks in -short")
	}
	opt := Options{Scale: 8, Quick: true}
	obs, err := Collect(opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 4 * 6; len(obs) != want {
		t.Fatalf("got %d observations, want %d", len(obs), want)
	}
	seen := map[string]bool{}
	for _, o := range obs {
		if o.Ns <= 0 {
			t.Fatalf("unmeasured observation: %+v", o)
		}
		parts := strings.Split(o.Bench, "/")
		seen[parts[0]] = true
		seen[parts[len(parts)-1]] = true
	}
	for _, name := range []string{"rmat", "uniform", "pull-dense", "pull-bitmap",
		"pull-masked-word", "pull-masked-bitmap-in", "push-sort", "push-scatter"} {
		if !seen[name] {
			t.Fatalf("missing benchmark %q in observations", name)
		}
	}

	prof, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.Validate(); err != nil {
		t.Fatal(err)
	}
	if prof.Observations != len(obs) || prof.Scale != 8 {
		t.Fatalf("profile metadata wrong: %+v", prof)
	}
	path := filepath.Join(t.TempDir(), DefaultName())
	if err := Save(path, prof); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
}

// TestMeasureStitch: the per-shard overhead measurement must be
// non-negative and finite (negative or NaN slopes are clamped to zero so
// an uncalibratable host never poisons the planner).
func TestMeasureStitch(t *testing.T) {
	if testing.Short() {
		t.Skip("timing benchmarks in -short")
	}
	stitch := measureStitch(Options{Scale: 8, Quick: true})
	if math.IsNaN(stitch) || math.IsInf(stitch, 0) || stitch < 0 {
		t.Fatalf("measureStitch = %v, want finite and >= 0", stitch)
	}
}

// Package calibrate fits the direction planner's per-machine cost
// coefficients (core.CostModel) from short microbenchmarks. The planner's
// unit model charges one RAM access for every gathered edge, scanned row
// and scattered output; this package measures what each term actually
// costs on the host — pull scans over dense, bitmap and word-packed
// inputs, masked pulls under word masks, push gather with the radix sort
// and with the sort-free bitmap scatter — across synthetic R-MAT-ish and
// uniform graphs at several frontier densities, and least-squares-fits the
// per-term nanosecond coefficients to the measured wall-clocks. The fitted
// model round-trips through a host-keyed JSON profile (PPTUNE_<os>_<arch>
// .json) that `ppbench -tune` loads for every experiment.
package calibrate

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pushpull/generate"
	"pushpull/internal/core"
	"pushpull/internal/perf"
	"pushpull/internal/sparse"
)

// Options configures a calibration run.
type Options struct {
	// Scale is log₂ of the calibration graphs' vertex count (default 12).
	// Bigger graphs push the working set past cache and the coefficients
	// toward their memory-bound values; smaller runs finish faster.
	Scale int
	// Quick trades fit quality for speed: fewer frontier densities and
	// timing repetitions (the CI smoke configuration).
	Quick bool
	// Seed fixes the synthetic graphs and frontiers (default 1).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 12
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Term indices of an observation's feature vector, one per CostModel
// coefficient.
const (
	termSetup = iota
	termRow
	termProbeBool
	termProbeWord
	termProbeDense
	termGather
	termSort
	termScatter
	termClear
	numTerms
)

// Observation is one timed kernel invocation: the model's work-term
// counts and the measured nanoseconds. Exported so tests can fit
// synthetic observation sets without timing anything.
type Observation struct {
	// Bench names the kernel variant (trace/debug surface).
	Bench string
	// Feats holds the work-term counts in term-index order.
	Feats [numTerms]float64
	// Ns is the measured wall-clock in nanoseconds.
	Ns float64
}

// Run executes the microbenchmark suite and fits a cost model, returning
// the host-stamped profile. The fit's observations are returned inside
// the profile's metadata (count and relative residual), not raw.
func Run(opt Options) (*Profile, error) {
	opt = opt.withDefaults()
	obs, err := Collect(opt)
	if err != nil {
		return nil, err
	}
	model, residual := Fit(obs)
	// The stitch term is measured directly rather than fitted: it only
	// appears in sharded runs, where it is a pure per-shard delta the
	// S=16-vs-S=1 subtraction isolates far better than a regression term
	// that would be collinear with SetupNs everywhere else.
	model.StitchNs = measureStitch(opt)
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("calibrate: fit produced an invalid model: %w", err)
	}
	p := NewProfile(model)
	p.Scale = opt.Scale
	p.Observations = len(obs)
	p.ResidualFrac = residual
	return p, nil
}

// Collect runs the microbenchmarks and returns the raw observations.
func Collect(opt Options) ([]Observation, error) {
	opt = opt.withDefaults()
	fracs := []float64{1.0 / 128, 1.0 / 32, 1.0 / 8, 1.0 / 4, 1.0 / 2}
	runs := 4
	if opt.Quick {
		fracs = []float64{1.0 / 64, 1.0 / 16, 1.0 / 4, 1.0 / 2}
		runs = 3
	}

	// Two degree regimes so the row and per-edge-probe terms separate in
	// the fit (within one graph rows·d̄ is proportional to rows): a skewed
	// R-MAT at edge factor 16 and a uniform Erdős–Rényi at average degree
	// ~6. The uniform graph is half the size, so the O(OutRows) terms
	// (bitmap-scatter clear) vary independently of the per-op setup
	// constant and stay identifiable.
	rmat, err := generate.RMAT(generate.RMATConfig{
		Scale: opt.Scale, EdgeFactor: 16, Undirected: true, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	un := 1 << (opt.Scale - 1)
	uniform, err := generate.ErdosRenyi(un, 6/float64(un), opt.Seed+1)
	if err != nil {
		return nil, err
	}

	var obs []Observation
	rng := rand.New(rand.NewSource(opt.Seed + 2))
	for _, g := range []struct {
		name string
		m    generate.PatternMatrix
	}{{"rmat", rmat}, {"uniform", uniform}} {
		for _, frac := range fracs {
			obs = append(obs, benchGraph(g.name, g.m.CSR(), frac, runs, rng)...)
		}
	}
	return obs, nil
}

// orAndSR is the Boolean traversal semiring the benchmarks run under —
// the same structure-only, early-exiting configuration BFS uses, so the
// fitted coefficients describe the traversal workload the planner
// actually schedules.
func orAndSR() core.SR[bool] {
	terminal := true
	return core.SR[bool]{
		Add:      func(a, b bool) bool { return a || b },
		Id:       false,
		Terminal: &terminal,
		Mul:      func(a, b bool) bool { return a && b },
		One:      true,
	}
}

// benchGraph times the six kernel variants on one graph at one frontier
// density and returns their observations.
func benchGraph(name string, csr *sparse.CSR[bool], frac float64, runs int, rng *rand.Rand) []Observation {
	n := csr.Rows
	d := core.AvgRowDegree(csr.NNZ(), n)
	k := int(frac * float64(n))
	if k < 1 {
		k = 1
	}
	sr := orAndSR()
	opts := core.Opts{StructureOnly: true, EarlyExit: true, Ws: core.AcquireWorkspace(n, n)}
	defer opts.Ws.Release()

	// A visited-like pattern with k set bits, in every layout the kernels
	// probe: sorted index list, []bool bitmap, packed words.
	ind := pickIndices(rng, n, k)
	val := make([]bool, k)
	for i := range val {
		val[i] = true
	}
	bitmapVal := make([]bool, n)
	present := make([]bool, n)
	words := make([]uint64, core.BitsetWords(n))
	for _, idx := range ind {
		bitmapVal[idx] = true
		present[idx] = true
	}
	core.BitsetScatter(words, ind)
	denseVal := make([]bool, n)
	for i := range denseVal {
		denseVal[i] = true
	}

	// Push-side work counts, exactly as the planner computes them: Σ
	// out-degree over the frontier off the CSC pointer array (symmetric
	// generators make CSR and CSC interchangeable here).
	edgesF := 0.0
	for _, i := range ind {
		edgesF += float64(csr.RowLen(int(i)))
	}
	mergeFactor := math.Log2(float64(k) + 2)
	// Pull-side counts under the ¬visited word mask: the planner prices
	// allowed rows times average degree.
	allowRows := float64(n - k)
	mask := core.MaskView{Words: words, Scmp: true}

	wVal := make([]bool, n)
	wPresent := make([]bool, n)

	type bench struct {
		name  string
		feats map[int]float64
		run   func()
	}
	benches := []bench{
		{"pull-dense", map[int]float64{
			termSetup: 1, termRow: float64(n), termProbeDense: float64(n) * d,
		}, func() {
			core.RowMxv(wVal, wPresent, csr, core.DenseVec(denseVal), sr, opts)
		}},
		{"pull-bitmap", map[int]float64{
			termSetup: 1, termRow: float64(n), termProbeBool: float64(n) * d,
		}, func() {
			core.RowMxv(wVal, wPresent, csr, core.BitmapVec(bitmapVal, present, k), sr, opts)
		}},
		{"pull-masked-word", map[int]float64{
			termSetup: 1, termRow: allowRows, termProbeWord: allowRows * d,
		}, func() {
			core.RowMaskedMxv(wVal, wPresent, csr, core.BitsetVec(bitmapVal, words, k), mask, sr, opts)
		}},
		{"pull-masked-bitmap-in", map[int]float64{
			termSetup: 1, termRow: allowRows, termProbeBool: allowRows * d,
		}, func() {
			core.RowMaskedMxv(wVal, wPresent, csr, core.BitmapVec(bitmapVal, present, k), mask, sr, opts)
		}},
		{"push-sort", map[int]float64{
			termSetup: 1, termGather: edgesF, termSort: edgesF * mergeFactor,
		}, func() {
			core.ColMxv(csr, core.SparseVec(n, ind, val), sr, opts)
		}},
		{"push-scatter", map[int]float64{
			termSetup: 1, termGather: edgesF, termScatter: edgesF, termClear: float64(n),
		}, func() {
			// The kernel expects a cleared output (the pipeline's
			// ensureDenseBuffers pays this O(n) clear on every scatter op),
			// so the clear belongs inside the timed region — it is exactly
			// the ClearNs term, and without it repeated runs would measure
			// a warm output whose stale presence suppresses the writes.
			for i := range wPresent {
				wPresent[i] = false
			}
			core.ColMxvBitmap(wVal, wPresent, csr, core.SparseVec(n, ind, val), core.MaskView{}, false, sr, opts)
		}},
	}

	out := make([]Observation, 0, len(benches))
	for _, b := range benches {
		o := Observation{Bench: fmt.Sprintf("%s/%.3g/%s", name, frac, b.name)}
		for t, v := range b.feats {
			o.Feats[t] = v
		}
		o.Ns = float64(perf.TimeN(1, runs, b.run).Nanoseconds())
		out = append(out, o)
	}
	return out
}

// measureStitch measures the per-shard fixed cost of range-sharded
// execution (CostModel.StitchNs): the same all-push sharded matvec is run
// single-threaded at 1 shard and at 16, and the per-shard delta is
// (t₁₆ − t₁)/15 — dispatch slot, plan entry, loop restart and the
// result-stitch share, with every per-edge and per-row term cancelling in
// the subtraction. Sequential execution is essential: run in parallel, 16
// shards finish *faster* than 1 and the slope comes out negative.
func measureStitch(opt Options) float64 {
	opt = opt.withDefaults()
	n := 1 << (opt.Scale - 1)
	g, err := generate.ErdosRenyi(n, 6/float64(n), opt.Seed+3)
	if err != nil {
		return 0
	}
	csr := g.CSR()
	rng := rand.New(rand.NewSource(opt.Seed + 4))
	k := n / 8
	if k < 1 {
		k = 1
	}
	ind := pickIndices(rng, n, k)
	val := make([]bool, k)
	for i := range val {
		val[i] = true
	}
	u := core.SparseVec(n, ind, val)
	sr := orAndSR()
	// Sequential so the shard count changes only overhead, not parallelism.
	opts := core.Opts{StructureOnly: true, EarlyExit: true, Sequential: true, Ws: core.AcquireWorkspace(n, n)}
	defer opts.Ws.Release()

	wVal := make([]bool, n)
	wPresent := make([]bool, n)
	runs := 6
	if opt.Quick {
		runs = 3
	}
	time1 := func(shards int) float64 {
		ss := core.BuildShardSet(csr.Ptr, csr.Ptr, csr.Ind, shards)
		if ss == nil {
			return 0
		}
		plans := make([]core.ShardPlan, ss.Shards())
		for s := range plans {
			plans[s] = core.ShardPlan{Lo: ss.Bounds[s], Hi: ss.Bounds[s+1], Dir: core.Push}
		}
		return float64(perf.TimeN(1, runs, func() {
			// The pipeline clears presence before every scatter; both shard
			// counts pay the identical O(n) clear, so it cancels.
			for i := range wPresent {
				wPresent[i] = false
			}
			core.ShardedMxv(wVal, wPresent, csr, csr, ss, plans, u, core.MaskView{}, false, false, sr, opts)
		}).Nanoseconds())
	}
	t1 := time1(1)
	t16 := time1(16)
	stitch := (t16 - t1) / 15
	if stitch < 0 || math.IsNaN(stitch) || math.IsInf(stitch, 0) {
		return 0
	}
	return stitch
}

// pickIndices returns k distinct sorted indices in [0, n).
func pickIndices(rng *rand.Rand, n, k int) []uint32 {
	perm := rng.Perm(n)[:k]
	sort.Ints(perm)
	ind := make([]uint32, k)
	for i, v := range perm {
		ind[i] = uint32(v)
	}
	return ind
}

// Fit least-squares-fits the cost model to the observations under a
// non-negativity constraint, returning the model and the root-mean-square
// relative residual (0 = perfect fit). The normal equations get a small
// ridge term for numerical stability; negative coefficients are handled
// active-set style — clamped to zero and the system re-solved without
// them — so a weakly identified term degrades to "free" instead of going
// negative and poisoning the crossover.
func Fit(obs []Observation) (core.CostModel, float64) {
	if len(obs) == 0 {
		return core.CostModel{}, 0
	}
	active := [numTerms]bool{}
	for i := range active {
		active[i] = true
	}
	var coef [numTerms]float64
	for pass := 0; pass < numTerms; pass++ {
		coef = solveNormal(obs, active)
		clamped := false
		for t, c := range coef {
			if active[t] && c < 0 {
				active[t] = false
				clamped = true
			}
		}
		if !clamped {
			break
		}
	}
	for t := range coef {
		if !active[t] || coef[t] < 0 {
			coef[t] = 0
		}
	}

	m := core.CostModel{
		SetupNs:      coef[termSetup],
		RowNs:        coef[termRow],
		ProbeBoolNs:  coef[termProbeBool],
		ProbeWordNs:  coef[termProbeWord],
		ProbeDenseNs: coef[termProbeDense],
		GatherNs:     coef[termGather],
		SortNs:       coef[termSort],
		ScatterNs:    coef[termScatter],
		ClearNs:      coef[termClear],
	}

	// RMS relative residual over observations the model prices.
	sum, cnt := 0.0, 0
	for _, o := range obs {
		pred := 0.0
		for t, f := range o.Feats {
			pred += coef[t] * f
		}
		if o.Ns > 0 {
			r := (pred - o.Ns) / o.Ns
			sum += r * r
			cnt++
		}
	}
	residual := 0.0
	if cnt > 0 {
		residual = math.Sqrt(sum / float64(cnt))
	}
	return m, residual
}

// solveNormal solves the ridge-regularized normal equations over the
// active terms by Gaussian elimination with partial pivoting.
func solveNormal(obs []Observation, active [numTerms]bool) [numTerms]float64 {
	var idx []int
	for t := 0; t < numTerms; t++ {
		if active[t] {
			idx = append(idx, t)
		}
	}
	k := len(idx)
	var out [numTerms]float64
	if k == 0 {
		return out
	}
	// A = XᵀX + λ·diag, b = Xᵀy. The ridge λ is scaled per column so
	// wildly different feature magnitudes (1 vs millions of edges) get
	// comparable damping.
	a := make([][]float64, k)
	b := make([]float64, k)
	for i := range a {
		a[i] = make([]float64, k)
	}
	for _, o := range obs {
		if o.Ns <= 0 {
			continue
		}
		// Each row is scaled by 1/Ns, so the solve minimizes *relative*
		// error: the planner compares costs at every magnitude, and an
		// absolute fit would let the big observations drown the small ones
		// it decides the early-BFS iterations with.
		w := 1 / (o.Ns * o.Ns)
		for i, ti := range idx {
			fi := o.Feats[ti]
			if fi == 0 {
				continue
			}
			b[i] += w * fi * o.Ns
			for j, tj := range idx {
				a[i][j] += w * fi * o.Feats[tj]
			}
		}
	}
	// Proportional ridge: scale-free, so the 1/Ns² row weighting cannot
	// let an absolute damping term swamp the (tiny) weighted moments.
	const lambda = 1e-6
	for i := range a {
		a[i][i] *= 1 + lambda
	}

	// Gaussian elimination with partial pivoting.
	for col := 0; col < k; col++ {
		piv := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		if a[col][col] == 0 {
			continue
		}
		for r := col + 1; r < k; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < k; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for r := k - 1; r >= 0; r-- {
		if a[r][r] == 0 {
			continue
		}
		v := b[r]
		for c := r + 1; c < k; c++ {
			v -= a[r][c] * b[c]
		}
		b[r] = v / a[r][r]
	}
	for i, t := range idx {
		out[t] = b[i]
	}
	return out
}

package calibrate

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"

	"pushpull/internal/core"
)

// profileVersion guards the JSON schema: a profile written by a different
// coefficient set is rejected instead of silently mis-pricing the planner.
const profileVersion = 1

// Profile is a fitted cost model plus the host and fit metadata it was
// measured under. Profiles are host-specific — coefficients fitted on one
// machine describe that machine's memory system — so the on-disk name is
// keyed by OS and architecture (DefaultName) and loading checks nothing
// beyond structural validity: a borrowed profile is legal, just probably
// mis-fitted, and the online corrector will bend it toward the truth.
type Profile struct {
	Version int    `json:"version"`
	OS      string `json:"os"`
	Arch    string `json:"arch"`
	CPUs    int    `json:"cpus"`
	// Scale is the calibration graphs' log₂ vertex count.
	Scale int `json:"scale"`
	// Observations is how many timed kernel invocations the fit saw.
	Observations int `json:"observations"`
	// ResidualFrac is the fit's RMS relative residual (0 = exact).
	ResidualFrac float64        `json:"residual_frac"`
	Model        core.CostModel `json:"model"`
}

// NewProfile stamps a model with the current host.
func NewProfile(m core.CostModel) *Profile {
	return &Profile{
		Version: profileVersion,
		OS:      runtime.GOOS,
		Arch:    runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Model:   m,
	}
}

// Validate rejects profiles that cannot price work: wrong schema version,
// non-finite metadata, or an invalid model (NaN/Inf/negative/all-zero
// coefficients — see core.CostModel.Validate).
func (p *Profile) Validate() error {
	if p == nil {
		return fmt.Errorf("calibrate: nil profile")
	}
	if p.Version != profileVersion {
		return fmt.Errorf("calibrate: profile version %d, want %d", p.Version, profileVersion)
	}
	if math.IsNaN(p.ResidualFrac) || math.IsInf(p.ResidualFrac, 0) || p.ResidualFrac < 0 {
		return fmt.Errorf("calibrate: profile residual %v invalid", p.ResidualFrac)
	}
	if err := p.Model.Validate(); err != nil {
		return err
	}
	return nil
}

// DefaultName is the host-keyed profile filename, PPTUNE_<os>_<arch>.json
// — one per runner family, uploaded next to the BENCH_*.json artifacts in
// CI.
func DefaultName() string {
	return fmt.Sprintf("PPTUNE_%s_%s.json", runtime.GOOS, runtime.GOARCH)
}

// Save writes the profile as indented JSON.
func Save(path string, p *Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadLenient reads a profile like Load but degrades instead of failing: a
// missing, malformed, schema-drifted (stale version) or invalid profile
// logs one line through logf and returns nil, which callers treat as "run
// untuned" — the planner's zero-value unit cost model, always safe. Use it
// wherever a tuned run is an optimization rather than a requirement, so a
// corrupted PPTUNE file degrades a benchmark run instead of aborting it.
// logf may be nil to drop the diagnostic.
func LoadLenient(path string, logf func(format string, args ...any)) *Profile {
	p, err := Load(path)
	if err != nil {
		if logf != nil {
			logf("ignoring cost-model profile: %v (running untuned)", err)
		}
		return nil
	}
	return p
}

// Load reads and validates a profile; malformed JSON, schema drift and
// NaN/negative coefficients are all load errors, so a bad profile can
// never reach the planner.
func Load(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("calibrate: %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("calibrate: %s: %w", path, err)
	}
	return &p, nil
}

package calibrate

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadLenient: every failure mode — missing file, corrupted JSON, stale
// schema version — degrades to nil with one diagnostic line, and a valid
// profile loads normally.
func TestLoadLenient(t *testing.T) {
	dir := t.TempDir()
	var logged []string
	logf := func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}

	// Missing file.
	if p := LoadLenient(filepath.Join(dir, "nope.json"), logf); p != nil {
		t.Fatalf("missing file: got %+v, want nil", p)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "running untuned") {
		t.Fatalf("missing file not logged: %v", logged)
	}

	// Corrupted JSON.
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte(`{"version": 1, "model": {`), 0o644); err != nil {
		t.Fatal(err)
	}
	logged = nil
	if p := LoadLenient(corrupt, logf); p != nil {
		t.Fatal("corrupted JSON: got a profile, want nil")
	}
	if len(logged) != 1 {
		t.Fatalf("corrupted JSON logged %d lines, want 1", len(logged))
	}

	// Stale schema version: valid JSON, wrong version.
	stale := filepath.Join(dir, "stale.json")
	good := NewProfile(testModel())
	if err := Save(filepath.Join(dir, "good.json"), good); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "good.json"))
	if err != nil {
		t.Fatal(err)
	}
	staleData := strings.Replace(string(data), `"version": 1`, `"version": 99`, 1)
	if staleData == string(data) {
		t.Fatal("test fixture: version field not found to rewrite")
	}
	if err := os.WriteFile(stale, []byte(staleData), 0o644); err != nil {
		t.Fatal(err)
	}
	logged = nil
	if p := LoadLenient(stale, logf); p != nil {
		t.Fatal("stale version: got a profile, want nil")
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "version") {
		t.Fatalf("stale version diagnostic missing: %v", logged)
	}

	// nil logf must be safe.
	if p := LoadLenient(stale, nil); p != nil {
		t.Fatal("nil logf: got a profile, want nil")
	}

	// A valid profile loads exactly as Load would.
	p := LoadLenient(filepath.Join(dir, "good.json"), logf)
	if p == nil {
		t.Fatal("valid profile rejected")
	}
	if *p != *good {
		t.Fatalf("lenient load changed the profile:\n  wrote %+v\n  read  %+v", *good, *p)
	}
}

// Package perf provides the small measurement utilities shared by the
// experiment harness and the benchmarks: repeated timing with warmup,
// simple statistics, and the MTEPS metric the paper reports.
package perf

import (
	"math"
	"time"
)

// MTEPS converts an edge count and duration to millions of traversed
// edges per second, the throughput metric of the paper's comparison table.
func MTEPS(edges int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(edges) / d.Seconds() / 1e6
}

// GTEPS is MTEPS/1000, the unit of Table 2.
func GTEPS(edges int64, d time.Duration) float64 {
	return MTEPS(edges, d) / 1e3
}

// Time runs fn once and returns its wall-clock duration.
func Time(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// TimeN runs fn `warmup` unmeasured times, then `runs` measured times, and
// returns the mean measured duration. The paper averages 10 BFS runs; the
// harness defaults follow suit at full scale and shrink for quick runs.
func TimeN(warmup, runs int, fn func()) time.Duration {
	for i := 0; i < warmup; i++ {
		fn()
	}
	if runs < 1 {
		runs = 1
	}
	var total time.Duration
	for i := 0; i < runs; i++ {
		total += Time(fn)
	}
	return total / time.Duration(runs)
}

// MeanDuration averages a slice of durations (0 for empty input).
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total / time.Duration(len(ds))
}

// GeoMean returns the geometric mean of positive values (0 if any value
// is non-positive or the slice is empty) — the aggregate the paper's
// Section 7.3 speedup claims use.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

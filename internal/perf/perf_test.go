package perf

import (
	"math"
	"testing"
	"time"
)

func TestMTEPSAndGTEPS(t *testing.T) {
	if got := MTEPS(2_000_000, time.Second); got != 2 {
		t.Fatalf("MTEPS=%g want 2", got)
	}
	if got := GTEPS(2_000_000_000, time.Second); got != 2 {
		t.Fatalf("GTEPS=%g want 2", got)
	}
	if MTEPS(100, 0) != 0 || MTEPS(100, -time.Second) != 0 {
		t.Fatal("non-positive duration should yield 0")
	}
}

func TestTimeAndTimeN(t *testing.T) {
	calls := 0
	d := Time(func() { calls++ })
	if calls != 1 || d < 0 {
		t.Fatalf("Time ran %d times, d=%v", calls, d)
	}
	calls = 0
	TimeN(2, 3, func() { calls++ })
	if calls != 5 {
		t.Fatalf("TimeN(2,3) ran %d times, want 5", calls)
	}
	calls = 0
	TimeN(0, 0, func() { calls++ }) // runs clamps to 1
	if calls != 1 {
		t.Fatalf("TimeN(0,0) ran %d times, want 1", calls)
	}
}

func TestMeanDuration(t *testing.T) {
	if MeanDuration(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	got := MeanDuration([]time.Duration{time.Second, 3 * time.Second})
	if got != 2*time.Second {
		t.Fatalf("mean=%v want 2s", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
	if GeoMean([]float64{2, 8}) != 4 {
		t.Fatalf("geomean(2,8)=%g want 4", GeoMean([]float64{2, 8}))
	}
	if GeoMean([]float64{1, -2}) != 0 {
		t.Fatal("non-positive input should yield 0")
	}
	got := GeoMean([]float64{3, 3, 3})
	if math.Abs(got-3) > 1e-12 {
		t.Fatalf("geomean(3,3,3)=%g", got)
	}
}

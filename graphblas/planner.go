package graphblas

import (
	"pushpull/internal/core"
	"pushpull/internal/sparse"
)

// Planner is the algorithm-facing handle on the direction planner: bind it
// to a matrix (and orientation) once, then ask it for a Plan each
// iteration. Algorithms that orchestrate their own traversal — BFS needs
// the direction *before* the matvec to pick operand reuse and the
// amortized allow-list — use a Planner and then pin the decision through
// Descriptor.Direction; plain MxV callers get the same machinery
// implicitly under Direction == Auto.
//
// A zero SwitchPoint selects the edge-based cost model (push cost = Σ
// frontier out-degrees × merge log factor, pull cost = rows × average
// degree × effective-mask density); a positive SwitchPoint selects the
// paper's legacy nnz/n ratio rule at that crossover. Hysteresis lives in
// the Planner, one traversal per Planner (call Reset between traversals).
type Planner[T comparable] struct {
	rowG, colG  *sparse.CSR[T]
	outDim      int
	avgDeg      float64
	switchPoint float64
	state       core.PlanState
}

// NewPlanner builds a planner for products against a (or aᵀ when transpose
// is set, the BFS orientation). switchPoint == 0 selects the cost model.
func NewPlanner[T comparable](a *Matrix[T], transpose bool, switchPoint float64) *Planner[T] {
	rowG, colG := a.CSR(), a.CSC()
	if transpose {
		rowG, colG = colG, rowG
	}
	return &Planner[T]{
		rowG:        rowG,
		colG:        colG,
		outDim:      rowG.Rows,
		avgDeg:      core.AvgRowDegree(rowG.NNZ(), rowG.Rows),
		switchPoint: switchPoint,
	}
}

// Plan decides the direction for a frontier with nnz stored elements.
// frontierInd, when non-nil, is the frontier's sparse index list: push
// cost is then the exact Σ outdeg read off the push-side CSR in O(nnz);
// pass nil (bitmap/dense frontiers) for the nnz·d̄ estimate. maskAllowed is
// the number of output rows the effective mask lets through (BFS:
// unvisited count), or a negative value for an unmasked product.
func (p *Planner[T]) Plan(frontierInd []uint32, nnz, maskAllowed int) core.Plan {
	in := core.PlanInput{
		NNZ:           nnz,
		N:             p.colG.Rows,
		OutRows:       p.outDim,
		PushEdges:     -1,
		AvgDeg:        p.avgDeg,
		MaskAllowFrac: 1,
		SwitchPoint:   p.switchPoint,
	}
	if frontierInd != nil {
		edges := 0
		for _, i := range frontierInd {
			edges += p.colG.RowLen(int(i))
		}
		in.PushEdges = float64(edges)
	}
	if maskAllowed >= 0 && p.outDim > 0 {
		in.MaskAllowFrac = float64(maskAllowed) / float64(p.outDim)
	}
	return core.DecideDirection(in, &p.state)
}

// Reset clears the hysteresis state so the planner can serve a fresh
// traversal.
func (p *Planner[T]) Reset() { p.state.Reset() }

package graphblas

import (
	"time"

	"pushpull/internal/core"
	"pushpull/internal/sparse"
)

// Planner is the algorithm-facing handle on the direction planner: bind it
// to a matrix (and orientation) once, then ask it for a Plan each
// iteration. Algorithms that orchestrate their own traversal — BFS needs
// the direction *before* the matvec to pick operand reuse and the
// amortized allow-list — use a Planner and then pin the decision through
// Descriptor.Direction; plain MxV callers get the same machinery
// implicitly under Direction == Auto.
//
// A zero SwitchPoint selects the edge-based cost model (push cost = Σ
// frontier out-degrees × merge log factor, pull cost = rows × average
// degree × effective-mask density); a positive SwitchPoint selects the
// paper's legacy nnz/n ratio rule at that crossover. Hysteresis lives in
// the Planner, one traversal per Planner (call Reset between traversals).
type Planner[T comparable] struct {
	rowG, colG  *sparse.CSR[T]
	outDim      int
	avgDeg      float64
	switchPoint float64
	state       core.PlanState
	model       core.CostModel
	corr        core.Corrector
	pullKind    core.VecKind
}

// NewPlanner builds a planner for products against a (or aᵀ when transpose
// is set, the BFS orientation). switchPoint == 0 selects the cost model.
func NewPlanner[T comparable](a *Matrix[T], transpose bool, switchPoint float64) *Planner[T] {
	rowG, colG := a.CSR(), a.CSC()
	if transpose {
		rowG, colG = colG, rowG
	}
	return &Planner[T]{
		rowG:        rowG,
		colG:        colG,
		outDim:      rowG.Rows,
		avgDeg:      core.AvgRowDegree(rowG.NNZ(), rowG.Rows),
		switchPoint: switchPoint,
		pullKind:    core.KindBitmap,
	}
}

// WithModel installs a calibrated cost model (nil is a no-op, keeping the
// unit model), returning the planner for chaining. With a model installed,
// Plan records PredictedNs and the feedback corrector — primed by Observe —
// scales subsequent estimates by the measured/predicted ratio.
func (p *Planner[T]) WithModel(m *core.CostModel) *Planner[T] {
	if m != nil {
		p.model = *m
	}
	return p
}

// SetPullProbeKind tells a calibrated model which storage kind the pull
// kernel would probe as its input — KindBitset when the algorithm reuses a
// word-packed visited set as the pull operand (BFS Optimization 4),
// KindBitmap (the default) otherwise.
func (p *Planner[T]) SetPullProbeKind(k core.VecKind) { p.pullKind = k }

// Observe feeds one timed kernel invocation back into the planner's
// corrector: plan must be the record the decision was made on and d the
// kernel's measured wall-clock. Unpriced plans (unit model, forced
// directions) are ignored, so callers can report every iteration
// unconditionally.
func (p *Planner[T]) Observe(plan core.Plan, d time.Duration) {
	p.corr.Observe(plan.Dir, plan.PredictedNs, float64(d.Nanoseconds()))
}

// Corrector exposes the planner's feedback state (trace/debug surface).
func (p *Planner[T]) Corrector() *core.Corrector { return &p.corr }

// Plan decides the direction for a frontier with nnz stored elements.
// frontierInd, when non-nil, is the frontier's sparse index list: push
// cost is then the exact Σ outdeg read off the push-side CSR in O(nnz);
// pass nil (bitmap/dense frontiers) for the nnz·d̄ estimate. maskAllowed is
// the number of output rows the effective mask lets through (BFS:
// unvisited count), or a negative value for an unmasked product.
func (p *Planner[T]) Plan(frontierInd []uint32, nnz, maskAllowed int) core.Plan {
	in := core.PlanInput{
		NNZ:           nnz,
		N:             p.colG.Rows,
		OutRows:       p.outDim,
		PushEdges:     -1,
		AvgDeg:        p.avgDeg,
		MaskAllowFrac: 1,
		SwitchPoint:   p.switchPoint,
		InKind:        p.pullKind,
		Model:         p.model,
	}
	if p.model.Calibrated() {
		in.Correct = &p.corr
	}
	if frontierInd != nil {
		edges := 0
		for _, i := range frontierInd {
			edges += p.colG.RowLen(int(i))
		}
		in.PushEdges = float64(edges)
	}
	if maskAllowed >= 0 && p.outDim > 0 {
		in.MaskAllowFrac = float64(maskAllowed) / float64(p.outDim)
	}
	return core.DecideDirection(in, &p.state)
}

// Reset clears the hysteresis state so the planner can serve a fresh
// traversal.
func (p *Planner[T]) Reset() { p.state.Reset() }

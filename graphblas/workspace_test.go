package graphblas

import (
	"math/rand"
	"runtime/debug"
	"testing"

	"pushpull/internal/core"
)

func randBoolMatrix(rng *rand.Rand, n int, p float64) *Matrix[bool] {
	var r, c []uint32
	var v []bool
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < p {
				r = append(r, uint32(i))
				c = append(c, uint32(j))
				v = append(v, true)
			}
		}
	}
	m, err := NewMatrixFromCOO(n, n, r, c, v, nil)
	if err != nil {
		panic(err)
	}
	return m
}

func vectorsEqual[T comparable](t *testing.T, name string, a, b *Vector[T]) {
	t.Helper()
	if a.NVals() != b.NVals() {
		t.Fatalf("%s: nvals %d vs %d", name, a.NVals(), b.NVals())
	}
	av, ap := a.Dup().DenseView()
	bv, bp := b.Dup().DenseView()
	for i := range av {
		if ap[i] != bp[i] || (ap[i] && av[i] != bv[i]) {
			t.Fatalf("%s: mismatch at %d: (%v,%v) vs (%v,%v)", name, i, ap[i], av[i], bp[i], bv[i])
		}
	}
}

// TestMxVPinnedWorkspaceMatchesUnpinned iterates MxV under a pinned
// workspace and under per-call auto-pooling, in both directions with and
// without masks, asserting bit-identical outputs each iteration. The
// repeated iterations exercise exactly the buffer-reuse the workspace is
// for.
func TestMxVPinnedWorkspaceMatchesUnpinned(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 60
	a := randBoolMatrix(rng, n, 0.1)
	sr := OrAndBool()
	ws := NewWorkspace(n, n)

	for _, dir := range []Direction{ForcePush, ForcePull} {
		for _, masked := range []bool{false, true} {
			u := NewVector[bool](n)
			for i := 0; i < n; i += 3 {
				_ = u.SetElement(i, true)
			}
			var mask *Vector[bool]
			if masked {
				mask = NewVector[bool](n)
				for i := 0; i < n; i += 2 {
					_ = mask.SetElement(i, true)
				}
				mask.ToDense()
			}
			pinned := &Descriptor{Transpose: true, Direction: dir, NoAutoConvert: true, Workspace: ws}
			plain := &Descriptor{Transpose: true, Direction: dir, NoAutoConvert: true}
			if dir == ForcePull {
				u.ToDense()
			}
			w1 := NewVector[bool](n)
			w2 := NewVector[bool](n)
			for iter := 0; iter < 4; iter++ {
				if _, err := MxV(w1, mask, nil, sr, a, u, pinned); err != nil {
					t.Fatal(err)
				}
				if _, err := MxV(w2, mask, nil, sr, a, u, plain); err != nil {
					t.Fatal(err)
				}
				vectorsEqual(t, "pinned vs plain", w1, w2)
			}
		}
	}
}

// TestMxVAliasedOperands covers w aliasing the input and w aliasing the
// mask, in both directions, under a pinned workspace — the configurations
// where the workspace's scratch vector bounce and storage swap engage.
func TestMxVAliasedOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 50
	a := randBoolMatrix(rng, n, 0.12)
	sr := OrAndBool()
	ws := NewWorkspace(n, n)

	for _, dir := range []Direction{ForcePush, ForcePull} {
		desc := &Descriptor{Transpose: true, Direction: dir, NoAutoConvert: true, Workspace: ws}

		// w aliases u: w ← Aᵀw, twice, against an unaliased oracle.
		w := NewVector[bool](n)
		oracle := NewVector[bool](n)
		uRef := NewVector[bool](n)
		for i := 0; i < n; i += 4 {
			_ = w.SetElement(i, true)
			_ = uRef.SetElement(i, true)
		}
		if dir == ForcePull {
			w.ToDense()
			uRef.ToDense()
		}
		for iter := 0; iter < 2; iter++ {
			if _, err := MxV(oracle, (*Vector[bool])(nil), nil, sr, a, uRef, desc); err != nil {
				t.Fatal(err)
			}
			if _, err := MxV(w, (*Vector[bool])(nil), nil, sr, a, w, desc); err != nil {
				t.Fatal(err)
			}
			vectorsEqual(t, "w aliases u", w, oracle)
			// Feed the oracle's output back as its next input.
			uRef = oracle.Dup()
			if dir == ForcePull {
				uRef.ToDense()
			} else {
				uRef.ToSparse()
			}
		}

		// w aliases the mask: w⟨¬w⟩ ← Aᵀu.
		wm := NewVector[bool](n)
		for i := 0; i < n; i += 5 {
			_ = wm.SetElement(i, true)
		}
		wm.ToDense() // mask bitmaps are handed out zero-copy from dense vectors
		maskCopy := wm.Dup()
		u := NewVector[bool](n)
		for i := 1; i < n; i += 3 {
			_ = u.SetElement(i, true)
		}
		if dir == ForcePull {
			u.ToDense()
		}
		scmp := &Descriptor{Transpose: true, Direction: dir, NoAutoConvert: true, StructuralComplement: true, Workspace: ws}
		want := NewVector[bool](n)
		if _, err := MxV(want, maskCopy, nil, sr, a, u, scmp); err != nil {
			t.Fatal(err)
		}
		if _, err := MxV(wm, wm, nil, sr, a, u, scmp); err != nil {
			t.Fatal(err)
		}
		vectorsEqual(t, "w aliases mask", wm, want)
	}
}

// TestMxVSteadyStateAllocs asserts the headline property: with a pinned
// workspace, a warmed-up MxV allocates nothing in any of the four kernel
// configurations, including with a sparse mask (which materializes into the
// workspace bitmap).
func TestMxVSteadyStateAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	rng := rand.New(rand.NewSource(5))
	n := 200
	a := randBoolMatrix(rng, n, 0.05)
	sr := OrAndBool()
	ws := NewWorkspace(n, n)

	u := NewVector[bool](n)
	for i := 0; i < n; i += 6 {
		_ = u.SetElement(i, true)
	}
	denseU := u.Dup()
	denseU.ToDense()
	mask := NewVector[bool](n)
	for i := 0; i < n; i += 4 {
		_ = mask.SetElement(i, true)
	}
	denseMask := mask.Dup()
	denseMask.ToDense()
	w := NewVector[bool](n)
	accumW := NewVector[bool](n)

	cases := []struct {
		name string
		run  func() error
	}{
		{"row-nomask", func() error {
			desc := descFor(ForcePull, ws)
			_, err := MxV(w, (*Vector[bool])(nil), nil, sr, a, denseU, desc)
			return err
		}},
		{"row-mask", func() error {
			desc := descFor(ForcePull, ws)
			_, err := MxV(w, denseMask, nil, sr, a, denseU, desc)
			return err
		}},
		{"col-nomask", func() error {
			desc := descFor(ForcePush, ws)
			_, err := MxV(w, (*Vector[bool])(nil), nil, sr, a, u, desc)
			return err
		}},
		{"col-mask", func() error {
			desc := descFor(ForcePush, ws)
			_, err := MxV(w, denseMask, nil, sr, a, u, desc)
			return err
		}},
		{"col-sparse-mask", func() error {
			desc := descFor(ForcePush, ws)
			_, err := MxV(w, mask, nil, sr, a, u, desc)
			return err
		}},
		{"col-bitmap-output", func() error {
			// Forced push without NoAutoConvert: the planner's sort-free
			// bitmap scatter engages (the frontier's edges exceed n/4).
			bitmapOutDesc.Workspace = ws
			_, err := MxV(w, (*Vector[bool])(nil), nil, sr, a, u, bitmapOutDesc)
			return err
		}},
		{"masked-assign-scmp-sparse-mask", func() error {
			// The masked element-wise assign with a sparse complemented
			// mask: the bitmap must come from the workspace, not a fresh
			// O(n) allocation.
			scmpDesc.Workspace = ws
			return AssignScalar(w, mask, true, scmpDesc)
		}},
		{"accum-sparse-target", func() error {
			// Accumulate into a sparse destination: the format-preserving
			// merge must run in workspace scratch.
			desc := descFor(ForcePush, ws)
			_, err := MxV(accumW, (*Vector[bool])(nil), orOp, sr, a, u, desc)
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); err != nil { // warm the workspace
			t.Fatal(err)
		}
		if avg := testing.AllocsPerRun(20, func() {
			if err := tc.run(); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("%s: %v allocs per warmed MxV, want 0", tc.name, avg)
		}
	}
}

// Descriptors and operands for the extra steady-state cases, built outside
// the measured region.
var (
	bitmapOutDesc = &Descriptor{Transpose: true, Direction: ForcePush}
	scmpDesc      = &Descriptor{StructuralComplement: true}
	orOp          = func(a, b bool) bool { return a || b }
)

// TestTimedPlannerSteadyStateAllocs pins the feedback path's cost: a
// masked MxV running under a calibrated cost model, with the kernel-timing
// clock, a Plan sink and the online corrector all engaged, must still
// allocate nothing once the workspace is warm — the monotonic-clock reads
// and the EWMA update are allocation-free by construction.
func TestTimedPlannerSteadyStateAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	rng := rand.New(rand.NewSource(7))
	n := 200
	a := randBoolMatrix(rng, n, 0.05)
	sr := OrAndBool()
	ws := NewWorkspace(n, n)

	u := NewVector[bool](n)
	for i := 0; i < n; i += 5 {
		_ = u.SetElement(i, true)
	}
	mask := NewVector[bool](n)
	for i := 0; i < n; i++ {
		if i%3 != 0 {
			_ = mask.SetElement(i, true)
		}
	}
	mask.ToBitset()
	w := NewVector[bool](n)

	model := &core.CostModel{
		GatherNs: 2, ProbeBoolNs: 2, ProbeWordNs: 1, ProbeDenseNs: 0.5,
		RowNs: 3, ScatterNs: 2, SortNs: 2, SetupNs: 400,
	}
	var plan core.Plan
	var corr core.Corrector
	desc := &Descriptor{
		Transpose:            true,
		StructuralComplement: true,
		Workspace:            ws,
		CostModel:            model,
		Corrector:            &corr,
		Plan:                 &plan,
	}
	run := func() {
		if _, err := MxV(w, mask, nil, sr, a, u, desc); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the workspace and the corrector
	if avg := testing.AllocsPerRun(20, run); avg != 0 {
		t.Errorf("timed+corrected masked MxV: %v allocs per warmed call, want 0", avg)
	}
	if plan.MeasuredNs <= 0 {
		t.Fatalf("kernel timing missing from the plan sink: %+v", plan)
	}
	if plan.PredictedNs <= 0 {
		t.Fatalf("calibrated prediction missing from the plan sink: %+v", plan)
	}
	if corr.Observations(plan.Dir) == 0 {
		t.Fatal("corrector never observed the timed kernel")
	}
}

// Operators for the eWise/apply steady-state cases, package-level so the
// measured region never constructs a closure.
var (
	plusOp   = func(a, b float64) float64 { return a + b }
	minOpVar = MinPlusFloat64().Add.Op
	triple   = func(x float64) float64 { return 3 * x }
	stampIdx = func(i int, _ float64) float64 { return float64(i) }
	posPred  = func(_ int, x float64) bool { return x > 0 }
)

// TestOpsSteadyStateAllocs extends the zero-alloc guarantee to the whole
// pipeline: masked and accumulating eWise, apply, select, assign and
// extract calls with a pinned workspace must allocate nothing once warm,
// in both the sparse-out and bitmap-out kernel configurations.
func TestOpsSteadyStateAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	rng := rand.New(rand.NewSource(12))
	n := 200
	ws := NewWorkspace(n, n)
	desc := &Descriptor{Workspace: ws}
	scmpWsDesc := &Descriptor{StructuralComplement: true, Workspace: ws}

	newSparse := func(stride, off int) *Vector[float64] {
		v := NewVector[float64](n)
		for i := off; i < n; i += stride {
			_ = v.SetElement(i, float64(i+1))
		}
		return v
	}
	uS, vS := newSparse(3, 0), newSparse(4, 1)
	uB, vB := newSparse(3, 0), newSparse(2, 0)
	uB.ToBitmap()
	vB.ToBitmap()
	uD := NewVector[float64](n)
	uD.Fill(2)
	sparseMask := newSparse(5, 0)
	bitmapMask := newSparse(2, 1)
	bitmapMask.ToBitmap()
	indices := make([]uint32, n)
	for k := range indices {
		indices[k] = uint32((k * 7) % n)
	}

	w := NewVector[float64](n)
	accumW := NewVector[float64](n)
	accumW.Fill(100)

	cases := []struct {
		name string
		run  func() error
	}{
		{"ewise-mult-sparse-masked", func() error {
			return Into(w).Mask(sparseMask).With(desc).EWiseMult(plusOp, uS, vS)
		}},
		{"ewise-mult-bitmap-masked-scmp", func() error {
			return Into(w).Mask(sparseMask).With(scmpWsDesc).EWiseMult(plusOp, uB, vB)
		}},
		{"ewise-add-sparse-masked", func() error {
			return Into(w).Mask(bitmapMask).With(desc).EWiseAdd(plusOp, uS, vS)
		}},
		{"ewise-add-dense-accum", func() error {
			return Into(accumW).Accum(minOpVar).With(desc).EWiseAdd(plusOp, uD, uB)
		}},
		{"apply-masked-sparse", func() error {
			return Into(w).Mask(sparseMask).With(desc).Apply(triple, uS)
		}},
		{"apply-masked-bitmap-accum", func() error {
			return Into(accumW).Mask(bitmapMask).Accum(minOpVar).With(desc).Apply(triple, uB)
		}},
		{"apply-indexed-inplace", func() error {
			return Into(uB).With(desc).ApplyIndexed(stampIdx, uB)
		}},
		{"apply-aliased-masked", func() error {
			return Into(uB).Mask(bitmapMask).With(desc).Apply(triple, uB)
		}},
		{"select-masked", func() error {
			return Into(w).Mask(sparseMask).With(desc).Select(posPred, uS)
		}},
		{"assign-vector-masked", func() error {
			return Into(accumW).Mask(bitmapMask).With(desc).AssignVector(uB)
		}},
		{"assign-scalar-accum", func() error {
			return Into(accumW).Mask(sparseMask).Accum(minOpVar).With(desc).AssignScalar(7)
		}},
		{"extract-masked", func() error {
			return Into(w).Mask(sparseMask).With(desc).Extract(uB, indices)
		}},
	}
	_ = rng
	for _, tc := range cases {
		if err := tc.run(); err != nil { // warm the workspace
			t.Fatal(err)
		}
		if avg := testing.AllocsPerRun(20, func() {
			if err := tc.run(); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("%s: %v allocs per warmed op, want 0", tc.name, avg)
		}
	}
}

// TestMxVDenseMaskStaleNVals guards the KnownEmpty derivation: a dense
// mask whose presence bitmap was written raw through DenseView (no
// RecountDense — so NVals() is a stale 0) must still mask by its bitmap,
// not be treated as empty. Covers both the plain ("allows nothing" would
// wrongly empty the output) and complemented ("allows everything" would
// wrongly skip the filter) fast paths, in both directions.
func TestMxVDenseMaskStaleNVals(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 40
	a := randBoolMatrix(rng, n, 0.15)
	sr := OrAndBool()
	u := NewVector[bool](n)
	for i := 0; i < n; i += 3 {
		_ = u.SetElement(i, true)
	}
	denseU := u.Dup()
	denseU.ToDense()

	stale := NewVector[bool](n)
	stale.ToDense()
	_, bits := stale.DenseView()
	honest := NewVector[bool](n)
	for i := 0; i < n; i += 4 {
		bits[i] = true // bypasses nvals bookkeeping on purpose
		_ = honest.SetElement(i, true)
	}
	honest.ToDense()
	if stale.NVals() != 0 {
		t.Fatalf("test setup: expected stale nvals 0, got %d", stale.NVals())
	}

	for _, dir := range []Direction{ForcePush, ForcePull} {
		for _, scmp := range []bool{false, true} {
			desc := &Descriptor{Transpose: true, Direction: dir, NoAutoConvert: true, StructuralComplement: scmp}
			in := u
			if dir == ForcePull {
				in = denseU
			}
			got := NewVector[bool](n)
			want := NewVector[bool](n)
			if _, err := MxV(got, stale, nil, sr, a, in, desc); err != nil {
				t.Fatal(err)
			}
			if _, err := MxV(want, honest, nil, sr, a, in, desc); err != nil {
				t.Fatal(err)
			}
			vectorsEqual(t, "stale-nvals dense mask", got, want)
		}
	}
}

// descFor builds the descriptors outside the measured region; the structs
// themselves live on the stack, so constructing them per call is free.
var descCache = map[Direction]*Descriptor{}

func descFor(dir Direction, ws *Workspace) *Descriptor {
	d, ok := descCache[dir]
	if !ok {
		d = &Descriptor{Transpose: true, NoAutoConvert: true, Direction: dir}
		descCache[dir] = d
	}
	d.Workspace = ws
	return d
}

package graphblas

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Algebraic identities the library must satisfy — property tests over
// random matrices and vectors.

// TestMxVIdentityVector: multiplying the all-ones vector by a 0/1 matrix
// over plus-times yields each row's degree.
func TestMxVIdentityVector(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		var r, c []uint32
		var v []float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.2 {
					r = append(r, uint32(i))
					c = append(c, uint32(j))
					v = append(v, 1)
				}
			}
		}
		a, err := NewMatrixFromCOO(n, n, r, c, v, nil)
		if err != nil {
			return false
		}
		ones := NewVector[float64](n)
		for i := 0; i < n; i++ {
			_ = ones.SetElement(i, 1)
		}
		w := NewVector[float64](n)
		if _, err := MxV(w, (*Vector[bool])(nil), nil, PlusTimesFloat64(), a, ones, nil); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			ind, _ := a.RowView(i)
			deg := float64(len(ind))
			x, err := w.ExtractElement(i)
			if len(ind) == 0 {
				if err == nil {
					return false
				}
				continue
			}
			if err != nil || x != deg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMxVLinearity: A(x ⊕ y) == Ax ⊕ Ay for plus-times when x and y have
// disjoint support (so eWiseAdd is exact concatenation).
func TestMxVLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		a := randMatrix(rng, n, n, 0.25)
		x := NewVector[float64](n)
		y := NewVector[float64](n)
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				_ = x.SetElement(i, rng.Float64())
			case 1:
				_ = y.SetElement(i, rng.Float64())
			}
		}
		s := PlusTimesFloat64()
		add := s.Add.Op
		sum := NewVector[float64](n)
		if EWiseAdd(sum, add, x, y) != nil {
			return false
		}
		lhs := NewVector[float64](n)
		if _, err := MxV(lhs, (*Vector[bool])(nil), nil, s, a, sum, nil); err != nil {
			return false
		}
		ax := NewVector[float64](n)
		ay := NewVector[float64](n)
		if _, err := MxV(ax, (*Vector[bool])(nil), nil, s, a, x, nil); err != nil {
			return false
		}
		if _, err := MxV(ay, (*Vector[bool])(nil), nil, s, a, y, nil); err != nil {
			return false
		}
		rhs := NewVector[float64](n)
		if EWiseAdd(rhs, add, ax, ay) != nil {
			return false
		}
		if lhs.NVals() != rhs.NVals() {
			return false
		}
		ok := true
		lhs.Iterate(func(i int, v float64) bool {
			u, err := rhs.ExtractElement(i)
			if err != nil || !approx(u, v) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestTransposeInvolutionAndMxVDuality: (Aᵀ)ᵀ = A, and MxV(Aᵀ, x) equals
// MxV with the Transpose descriptor.
func TestTransposeInvolutionAndMxVDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		nr, nc := 1+rng.Intn(20), 1+rng.Intn(20)
		a := randMatrix(rng, nr, nc, 0.3)
		at := Transpose(a)
		att := Transpose(at)
		if att.NRows() != a.NRows() || att.NVals() != a.NVals() {
			t.Fatal("double transpose changed shape")
		}
		x := randVec(rng, nr, 0.5)
		s := PlusTimesFloat64()
		w1 := NewVector[float64](nc)
		if _, err := MxV(w1, (*Vector[bool])(nil), nil, s, at, x.Dup(), nil); err != nil {
			t.Fatal(err)
		}
		w2 := NewVector[float64](nc)
		if _, err := MxV(w2, (*Vector[bool])(nil), nil, s, a, x.Dup(), &Descriptor{Transpose: true}); err != nil {
			t.Fatal(err)
		}
		if w1.NVals() != w2.NVals() {
			t.Fatalf("trial %d: transpose duality nnz %d vs %d", trial, w1.NVals(), w2.NVals())
		}
		w1.Iterate(func(i int, v float64) bool {
			u, err := w2.ExtractElement(i)
			if err != nil || !approx(u, v) {
				t.Fatalf("trial %d: duality mismatch at %d", trial, i)
			}
			return true
		})
	}
	// Symmetric matrices transpose to themselves.
	sym, err := NewMatrixFromCOO(2, 2, []uint32{0, 1}, []uint32{1, 0}, []float64{3, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Transpose(sym) != sym {
		t.Fatal("symmetric transpose should be identity")
	}
}

// TestMaskDeMorgan: the structural complement partitions the output — the
// masked result and the complement-masked result are disjoint and their
// union is the unmasked result.
func TestMaskDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		a := randMatrix(rng, n, n, 0.25)
		u := randVec(rng, n, 0.5)
		mask := NewVector[bool](n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				_ = mask.SetElement(i, true)
			}
		}
		s := PlusTimesFloat64()
		full := NewVector[float64](n)
		pos := NewVector[float64](n)
		neg := NewVector[float64](n)
		if _, err := MxV(full, (*Vector[bool])(nil), nil, s, a, u.Dup(), nil); err != nil {
			return false
		}
		if _, err := MxV(pos, mask, nil, s, a, u.Dup(), nil); err != nil {
			return false
		}
		if _, err := MxV(neg, mask, nil, s, a, u.Dup(), &Descriptor{StructuralComplement: true}); err != nil {
			return false
		}
		if pos.NVals()+neg.NVals() != full.NVals() {
			return false
		}
		ok := true
		full.Iterate(func(i int, v float64) bool {
			p, perr := pos.ExtractElement(i)
			q, qerr := neg.ExtractElement(i)
			if (perr == nil) == (qerr == nil) { // exactly one side must hold i
				ok = false
				return false
			}
			got := p
			if perr != nil {
				got = q
			}
			if !approx(got, v) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExtract(t *testing.T) {
	u := NewVector[float64](6)
	_ = u.SetElement(1, 10)
	_ = u.SetElement(4, 40)
	w := NewVector[float64](3)
	if err := Extract(w, u, []uint32{4, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if w.NVals() != 2 {
		t.Fatalf("NVals=%d want 2", w.NVals())
	}
	if x, _ := w.ExtractElement(0); x != 40 {
		t.Fatalf("w[0]=%g want 40", x)
	}
	if x, _ := w.ExtractElement(2); x != 10 {
		t.Fatalf("w[2]=%g want 10", x)
	}
	if _, err := w.ExtractElement(1); err == nil {
		t.Fatal("empty slot extracted")
	}
	if err := Extract(w, u, []uint32{0, 1}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := Extract(w, u, []uint32{0, 1, 99}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := Extract(nil, u, nil); err == nil {
		t.Fatal("nil output accepted")
	}
}

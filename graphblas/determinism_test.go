package graphblas

import (
	"math/rand"
	"testing"

	"pushpull/internal/par"
)

// Parallel kernels must be bitwise-deterministic for order-insensitive
// semirings and independent of the worker count: results with 1 worker
// and with the full pool have to match exactly.

func TestMxVDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	n := 300
	a := randMatrix(rng, n, n, 0.05)
	u := randVec(rng, n, 0.3)
	mask := NewVector[bool](n)
	for i := 0; i < n; i += 3 {
		_ = mask.SetElement(i, true)
	}
	mask.ToDense()
	s := PlusTimesFloat64()

	type result struct {
		ind []uint32
		val []float64
	}
	capture := func(v *Vector[float64]) result {
		ind, val := v.SparseView()
		return result{append([]uint32(nil), ind...), append([]float64(nil), val...)}
	}
	run := func(workers int, dir Direction, masked bool) result {
		prev := par.SetMaxWorkers(workers)
		defer par.SetMaxWorkers(prev)
		w := NewVector[float64](n)
		desc := &Descriptor{Direction: dir, StructuralComplement: true}
		var err error
		if masked {
			_, err = MxV(w, mask, nil, s, a, u.Dup(), desc)
		} else {
			_, err = MxV(w, (*Vector[bool])(nil), nil, s, a, u.Dup(), desc)
		}
		if err != nil {
			t.Fatal(err)
		}
		return capture(w)
	}
	for _, dir := range []Direction{ForcePush, ForcePull} {
		for _, masked := range []bool{false, true} {
			one := run(1, dir, masked)
			many := run(8, dir, masked)
			if len(one.ind) != len(many.ind) {
				t.Fatalf("dir=%v masked=%v: nnz %d vs %d", dir, masked, len(one.ind), len(many.ind))
			}
			for i := range one.ind {
				if one.ind[i] != many.ind[i] || one.val[i] != many.val[i] {
					t.Fatalf("dir=%v masked=%v: entry %d differs", dir, masked, i)
				}
			}
		}
	}
}

func TestMxMDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	n := 60
	a := randMatrix(rng, n, n, 0.15)
	b := randMatrix(rng, n, n, 0.15)
	s := PlusTimesFloat64()
	run := func(workers int) *Matrix[float64] {
		prev := par.SetMaxWorkers(workers)
		defer par.SetMaxWorkers(prev)
		out, err := MxM(a, s, a, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	one := run(1).CSR()
	many := run(8).CSR()
	if len(one.Ind) != len(many.Ind) {
		t.Fatalf("nnz %d vs %d", len(one.Ind), len(many.Ind))
	}
	for i := range one.Ind {
		if one.Ind[i] != many.Ind[i] || one.Val[i] != many.Val[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

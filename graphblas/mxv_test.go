package graphblas

import (
	"errors"
	"math/rand"
	"testing"

	"pushpull/internal/core"
)

// randMatrix builds a random nr×nc float64 matrix with the given density.
func randMatrix(rng *rand.Rand, nr, nc int, density float64) *Matrix[float64] {
	var r, c []uint32
	var v []float64
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			if rng.Float64() < density {
				r = append(r, uint32(i))
				c = append(c, uint32(j))
				v = append(v, 1+rng.Float64())
			}
		}
	}
	m, err := NewMatrixFromCOO(nr, nc, r, c, v, nil)
	if err != nil {
		panic(err)
	}
	return m
}

func randVec(rng *rand.Rand, n int, density float64) *Vector[float64] {
	v := NewVector[float64](n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			_ = v.SetElement(i, 1+rng.Float64())
		}
	}
	return v
}

// oracleMxV computes (A·u).⊙mask densely, honouring transpose and scmp.
func oracleMxV(a *Matrix[float64], u *Vector[float64], mask *Vector[bool], scmp, transpose bool, s Semiring[float64]) map[int]float64 {
	nr, nc := a.NRows(), a.NCols()
	if transpose {
		nr, nc = nc, nr
	}
	get := func(i, j int) (float64, bool) {
		if transpose {
			i, j = j, i
		}
		x, err := a.ExtractElement(i, j)
		return x, err == nil
	}
	out := map[int]float64{}
	for i := 0; i < nr; i++ {
		if mask != nil {
			_, err := mask.ExtractElement(i)
			present := err == nil
			if present == scmp {
				continue
			}
		}
		acc := s.Add.Identity
		any := false
		for j := 0; j < nc; j++ {
			aij, ok := get(i, j)
			if !ok {
				continue
			}
			uj, err := u.ExtractElement(j)
			if err != nil {
				continue
			}
			acc = s.Add.Op(acc, s.Mul(aij, uj))
			any = true
		}
		if any {
			out[i] = acc
		}
	}
	return out
}

func vecEquals(t *testing.T, ctx string, got *Vector[float64], want map[int]float64) {
	t.Helper()
	if got.NVals() != len(want) {
		t.Fatalf("%s: nvals=%d want %d", ctx, got.NVals(), len(want))
	}
	got.Iterate(func(i int, x float64) bool {
		w, ok := want[i]
		if !ok {
			t.Fatalf("%s: spurious element at %d", ctx, i)
		}
		if d := x - w; d > 1e-9 || d < -1e-9 {
			t.Fatalf("%s: w[%d]=%g want %g", ctx, i, x, w)
		}
		return true
	})
}

func TestMxVAgainstOracleAllDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	s := PlusTimesFloat64()
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(30)
		a := randMatrix(rng, n, n, 0.2)
		u := randVec(rng, n, 0.4)
		want := oracleMxV(a, u, nil, false, false, s)
		for _, dir := range []Direction{ForcePush, ForcePull, Auto} {
			w := NewVector[float64](n)
			uc := u.Dup()
			if _, err := MxV(w, (*Vector[bool])(nil), nil, s, a, uc, &Descriptor{Direction: dir}); err != nil {
				t.Fatalf("trial %d dir %v: %v", trial, dir, err)
			}
			vecEquals(t, "unmasked", w, want)
		}
	}
}

func TestMxVMaskedWithComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := PlusTimesFloat64()
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(30)
		a := randMatrix(rng, n, n, 0.25)
		u := randVec(rng, n, 0.5)
		mask := NewVector[bool](n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				_ = mask.SetElement(i, true)
			}
		}
		for _, scmp := range []bool{false, true} {
			for _, dir := range []Direction{ForcePush, ForcePull} {
				want := oracleMxV(a, u, mask, scmp, false, s)
				w := NewVector[float64](n)
				desc := &Descriptor{Direction: dir, StructuralComplement: scmp}
				if _, err := MxV(w, mask, nil, s, a, u.Dup(), desc); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				vecEquals(t, "masked", w, want)
			}
		}
	}
}

func TestMxVTransposeAndVxM(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := PlusTimesFloat64()
	for trial := 0; trial < 15; trial++ {
		nr, nc := 1+rng.Intn(20), 1+rng.Intn(20)
		a := randMatrix(rng, nr, nc, 0.3)
		u := randVec(rng, nr, 0.5) // multiplies Aᵀ so length nr
		want := oracleMxV(a, u, nil, false, true, s)
		w := NewVector[float64](nc)
		if _, err := MxV(w, (*Vector[bool])(nil), nil, s, a, u.Dup(), &Descriptor{Transpose: true}); err != nil {
			t.Fatalf("transpose: %v", err)
		}
		vecEquals(t, "transpose", w, want)
		// VxM(u, A) == MxV with transpose.
		w2 := NewVector[float64](nc)
		if _, err := VxM(w2, (*Vector[bool])(nil), nil, s, u.Dup(), a, nil); err != nil {
			t.Fatalf("vxm: %v", err)
		}
		vecEquals(t, "vxm", w2, want)
	}
}

func TestMxVAliasedOutput(t *testing.T) {
	// f ← Aᵀ·f — the BFS shape — must work for both kernels.
	rng := rand.New(rand.NewSource(43))
	s := PlusTimesFloat64()
	for _, dir := range []Direction{ForcePush, ForcePull} {
		n := 20
		a := randMatrix(rng, n, n, 0.3)
		f := randVec(rng, n, 0.3)
		want := oracleMxV(a, f, nil, false, false, s)
		if _, err := MxV(f, (*Vector[bool])(nil), nil, s, a, f, &Descriptor{Direction: dir}); err != nil {
			t.Fatalf("dir %v: %v", dir, err)
		}
		vecEquals(t, "aliased", f, want)
	}
}

func TestMxVAliasedMask(t *testing.T) {
	// w ← (A·u)⟨¬w⟩ with the mask aliasing the output (dense mask path).
	rng := rand.New(rand.NewSource(44))
	s := PlusTimesFloat64()
	n := 25
	a := randMatrix(rng, n, n, 0.3)
	u := randVec(rng, n, 0.5)
	w := randVec(rng, n, 0.3)
	w.ToDense()
	maskSnapshot := w.Dup()
	want := oracleMxV(a, u, boolPattern(maskSnapshot), true, false, s)
	if _, err := MxV(w, w, nil, s, a, u, &Descriptor{StructuralComplement: true, Direction: ForcePull}); err != nil {
		t.Fatal(err)
	}
	vecEquals(t, "aliased mask", w, want)
}

// boolPattern converts a float vector to a bool vector with the same
// pattern (oracle helper).
func boolPattern(v *Vector[float64]) *Vector[bool] {
	out := NewVector[bool](v.Size())
	v.Iterate(func(i int, _ float64) bool {
		_ = out.SetElement(i, true)
		return true
	})
	return out
}

func TestMxVAccum(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	s := MinPlusFloat64()
	n := 15
	a := randMatrix(rng, n, n, 0.3)
	u := randVec(rng, n, 0.5)
	w := randVec(rng, n, 0.5)
	wBefore := map[int]float64{}
	w.Iterate(func(i int, x float64) bool { wBefore[i] = x; return true })
	product := oracleMxV(a, u, nil, false, false, s)
	want := map[int]float64{}
	for i, x := range wBefore {
		want[i] = x
	}
	for i, x := range product {
		if old, ok := want[i]; ok {
			if x < old {
				want[i] = x
			}
		} else {
			want[i] = x
		}
	}
	if _, err := MxV(w, (*Vector[bool])(nil), s.Add.Op, s, a, u, nil); err != nil {
		t.Fatal(err)
	}
	vecEquals(t, "accum", w, want)
}

func TestMxVDimensionErrors(t *testing.T) {
	s := PlusTimesFloat64()
	a := randMatrix(rand.New(rand.NewSource(46)), 4, 6, 0.5)
	w4, w6 := NewVector[float64](4), NewVector[float64](6)
	u4, u6 := NewVector[float64](4), NewVector[float64](6)
	mask6 := NewVector[bool](6)
	if _, err := MxV(w4, (*Vector[bool])(nil), nil, s, a, u4, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("bad input dim: %v", err)
	}
	if _, err := MxV(w6, (*Vector[bool])(nil), nil, s, a, u6, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("bad output dim: %v", err)
	}
	if _, err := MxV(w4, mask6, nil, s, a, u6, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("bad mask dim: %v", err)
	}
	if _, err := MxV[float64, bool](nil, nil, nil, s, a, u6, nil); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("nil output: %v", err)
	}
	// Transposed dims flip.
	if _, err := MxV(w6, (*Vector[bool])(nil), nil, s, a, u4, &Descriptor{Transpose: true}); err != nil {
		t.Fatalf("transposed dims should conform: %v", err)
	}
}

func TestMxVAutoSwitchesDirection(t *testing.T) {
	// A growing frontier on a dense-ish graph must trigger push→pull; the
	// returned directions witness Optimization 1 happening.
	rng := rand.New(rand.NewSource(47))
	n := 500
	a := randMatrix(rng, n, n, 0.05)
	s := PlusTimesFloat64()
	f := NewVector[float64](n)
	_ = f.SetElement(rng.Intn(n), 1)
	dirs := []core.Direction{}
	for it := 0; it < 4; it++ {
		w := NewVector[float64](n)
		d, err := MxV(w, (*Vector[bool])(nil), nil, s, a, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, d)
		f = w
	}
	if dirs[0] != core.Push {
		t.Fatalf("first iteration should push, got %v", dirs)
	}
	sawPull := false
	for _, d := range dirs {
		if d == core.Pull {
			sawPull = true
		}
	}
	if !sawPull {
		t.Fatalf("frontier grew to %d/%d but never pulled: %v", f.NVals(), n, dirs)
	}
}

func TestMxVStructureOnlyBoolean(t *testing.T) {
	// Structure-only must give identical results for the Boolean semiring.
	rng := rand.New(rand.NewSource(48))
	n := 40
	var r, c []uint32
	var v []bool
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.2 {
				r = append(r, uint32(i))
				c = append(c, uint32(j))
				v = append(v, true)
			}
		}
	}
	a, err := NewMatrixFromCOO(n, n, r, c, v, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := NewVector[bool](n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			_ = u.SetElement(i, true)
		}
	}
	s := OrAndBool()
	for _, dir := range []Direction{ForcePush, ForcePull} {
		w1 := NewVector[bool](n)
		w2 := NewVector[bool](n)
		if _, err := MxV(w1, (*Vector[bool])(nil), nil, s, a, u.Dup(), &Descriptor{Direction: dir}); err != nil {
			t.Fatal(err)
		}
		if _, err := MxV(w2, (*Vector[bool])(nil), nil, s, a, u.Dup(), &Descriptor{Direction: dir, StructureOnly: true}); err != nil {
			t.Fatal(err)
		}
		if w1.NVals() != w2.NVals() {
			t.Fatalf("dir %v: structure-only changed pattern: %d vs %d", dir, w1.NVals(), w2.NVals())
		}
		w1.Iterate(func(i int, x bool) bool {
			y, err := w2.ExtractElement(i)
			if err != nil || x != y {
				t.Fatalf("dir %v: mismatch at %d", dir, i)
			}
			return true
		})
	}
}

func TestMxVMaskAllowList(t *testing.T) {
	// The amortized unvisited-list must give identical results to the
	// bitmap scan.
	rng := rand.New(rand.NewSource(49))
	s := PlusTimesFloat64()
	n := 60
	a := randMatrix(rng, n, n, 0.2)
	u := randVec(rng, n, 0.9)
	mask := NewVector[bool](n)
	var allow []uint32
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			_ = mask.SetElement(i, true)
		} else {
			allow = append(allow, uint32(i)) // complement
		}
	}
	mask.ToDense()
	w1 := NewVector[float64](n)
	if _, err := MxV(w1, mask, nil, s, a, u.Dup(), &Descriptor{StructuralComplement: true, Direction: ForcePull}); err != nil {
		t.Fatal(err)
	}
	w2 := NewVector[float64](n)
	desc := &Descriptor{StructuralComplement: true, Direction: ForcePull, MaskAllowList: allow}
	if _, err := MxV(w2, mask, nil, s, a, u.Dup(), desc); err != nil {
		t.Fatal(err)
	}
	if w1.NVals() != w2.NVals() {
		t.Fatalf("allow-list changed pattern: %d vs %d", w1.NVals(), w2.NVals())
	}
	w1.Iterate(func(i int, x float64) bool {
		y, err := w2.ExtractElement(i)
		if err != nil || x != y {
			t.Fatalf("allow-list mismatch at %d", i)
		}
		return true
	})
}

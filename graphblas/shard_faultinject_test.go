//go:build faultinject

package graphblas

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"pushpull/internal/faultinject"
	"pushpull/internal/par"
)

// TestInjectedShardPanic arms a panic on the second shard body dispatched
// by the range-sharded matvec: the fault fires on a par worker while
// sibling shards are still in flight. Contract: the panic surfaces on the
// calling goroutine as ErrKernelPanic carrying the injected value, the
// pinned workspace is tainted (treated as absent afterwards), no worker is
// stranded, and the next sharded call on fresh scratch is correct.
func TestInjectedShardPanic(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			panic("watchdog: TestInjectedShardPanic wedged\n" + string(buf[:n]))
		}
	}()

	rng := rand.New(rand.NewSource(59))
	n := 500
	a := randMatrix(rng, n, n, 0.02)
	u := randVec(rng, n, 0.3)
	s := MinPlusFloat64()
	want := oracleMxV(a, u, nil, false, false, s)

	base := par.ParkedWorkers()
	ws := AcquireWorkspace(n, n)
	desc := &Descriptor{Shards: 8, Workspace: ws}
	w := NewVector[float64](n)

	disarm := faultinject.Arm(faultinject.SiteShardKernel, 2, func() {
		panic("injected shard fault")
	})
	defer disarm()
	_, err := MxV(w, (*Vector[bool])(nil), nil, s, a, u, desc)
	if !errors.Is(err, ErrKernelPanic) {
		t.Fatalf("err = %v, want ErrKernelPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "injected shard fault" {
		t.Fatalf("wrong panic payload: %v", err)
	}
	disarm()

	if !ws.tainted {
		t.Fatal("pinned workspace not tainted by the shard panic")
	}
	if desc.workspace() != nil {
		t.Fatal("tainted workspace still handed out by the descriptor")
	}
	ws.Release() // tainted: dropped, not pooled

	if got := par.ParkedWorkers(); got != base {
		t.Fatalf("ParkedWorkers = %d after injected shard panic, was %d", got, base)
	}

	// The same descriptor (its workspace now absent) must produce a correct
	// sharded result on pooled scratch.
	w2 := NewVector[float64](n)
	if _, err := MxV(w2, (*Vector[bool])(nil), nil, s, a, u, desc); err != nil {
		t.Fatalf("sharded MxV after fault: %v", err)
	}
	vecEquals(t, "post-fault sharded", w2, want)
}

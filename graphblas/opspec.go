package graphblas

import (
	"context"

	"pushpull/internal/core"
)

// This file defines OpSpec, the declarative builder every vector operation
// runs through. An OpSpec names the four things GraphBLAS attaches to any
// operation besides its operands — output, mask, accumulator, descriptor —
// and the op methods hand it to one internal execute path (execute.go), so
// masks, accumulators, workspaces and format-aware kernel selection behave
// identically across MxV, the eWise ops, apply, select, assign and
// extract.
//
// Usage:
//
//	graphblas.Into(w).Mask(m).Accum(op).With(desc).EWiseAdd(plus, u, v)
//
// Builder calls may appear in any order and all are optional: Into(w).Op(...)
// alone is the unmasked, non-accumulating, default-descriptor form.
//
// Semantics, uniform across every op:
//
//   - Mask restricts the *computed output pattern*: only positions the
//     effective mask allows are produced. Descriptor.StructuralComplement
//     flips the test (¬m) and Descriptor.MaskAllowList can enumerate the
//     allowed rows for the masked pull. Masks are structural — only the
//     mask's stored pattern matters, never its values — so any element
//     type works as a mask (a float64 frontier can mask a bool op).
//   - Without an accumulator the operation *replaces* w with the masked
//     result (positions outside the mask are not retained). With Accum(op)
//     the masked result t is merged into the existing w:
//     w(i) = op(w(i), t(i)) where both are present, w(i) = t(i) where only
//     t is, and w keeps its other elements — the GrB_accum merge, applied
//     through the same format-preserving machinery MxV uses.
//   - Assign and AssignScalar are the exception to "replace": they are
//     merges by definition (replace=false semantics), so without an accum
//     they overwrite only the positions they touch.
//
// The output storage format follows the operands (see execute.go): dense
// operands produce dense outputs, bitmap operands bitmap outputs, sparse
// operands sparse outputs — an Apply over a PageRank-dense vector never
// round-trips through a sparse copy.

// MaskVector is the polymorphic mask argument of OpSpec.Mask: any *Vector
// regardless of element type. Masks are structural (pattern-only), so the
// mask's element type is irrelevant to the operation's. The interface is
// sealed — only *Vector[M] implements it.
//
// Masks lower to one of two kernel layouts: packed words (bitset-format
// masks zero-copy, sparse masks materialized through the workspace's
// pooled word buffer) or presence bytes (bitmap/dense masks zero-copy).
type MaskVector interface {
	// Size returns the mask vector's length.
	Size() int
	// NVals returns the mask's stored-element count.
	NVals() int

	maskIsNil() bool
	maskLowerWS(ws *Workspace) (words []uint64, bits []bool)
	maskKnownEmpty() bool
	maskSparseIndices() ([]uint32, bool)
	maskNVals() int
}

// maskIsNil reports whether the typed pointer inside the interface is nil,
// so a (*Vector[bool])(nil) passed as a mask means "no mask" instead of a
// panic.
func (v *Vector[T]) maskIsNil() bool { return v == nil }

// maskLowerWS lowers the mask to the kernel layout — packed words or
// presence bytes, exactly one non-nil — through the workspace (see
// maskLowerFor).
func (v *Vector[T]) maskLowerWS(ws *Workspace) ([]uint64, []bool) { return maskLowerFor(ws, v) }

// maskNVals reports the mask's stored-element count as planner evidence:
// bitset-backed masks popcount their words (exact even after raw writes
// through BitsetView), sparse masks count their list; bitmap/dense counts
// trust the tracked nvals, which a raw DenseView writer may have left
// stale until RecountDense.
func (v *Vector[T]) maskNVals() int {
	switch v.format {
	case Bitset:
		return core.BitsetCount(v.dwords)
	case Sparse:
		return len(v.ind)
	default:
		return v.nvals
	}
}

// maskKnownEmpty reports that the mask certainly stores no elements.
func (v *Vector[T]) maskKnownEmpty() bool { return v.knownEmpty() }

// maskSparseIndices exposes a sparse mask's index list without conversion.
func (v *Vector[T]) maskSparseIndices() ([]uint32, bool) {
	if v == nil || v.format != Sparse {
		return nil, false
	}
	return v.ind, true
}

// OpSpec is the declarative operation description: output vector, optional
// mask, optional accumulator, optional descriptor. It is a small value —
// build one per call with Into and the fluent modifiers; there is nothing
// to reuse or pool.
type OpSpec[T comparable] struct {
	w     *Vector[T]
	mask  MaskVector
	accum BinaryOp[T]
	desc  *Descriptor
	ctx   context.Context
}

// Into starts an operation specification writing into w.
func Into[T comparable](w *Vector[T]) OpSpec[T] { return OpSpec[T]{w: w} }

// Mask sets the output mask. Any vector works regardless of element type
// (masks are structural); a nil — typed or untyped — clears the mask.
func (s OpSpec[T]) Mask(m MaskVector) OpSpec[T] {
	if m != nil && m.maskIsNil() {
		m = nil
	}
	s.mask = m
	return s
}

// Accum sets the accumulator: the result is merged into the existing w by
// w(i) = op(w(i), t(i)) instead of replacing it.
func (s OpSpec[T]) Accum(op BinaryOp[T]) OpSpec[T] { s.accum = op; return s }

// With sets the descriptor (mask complement, transpose, direction override,
// pinned workspace, plan sink, ...).
func (s OpSpec[T]) With(desc *Descriptor) OpSpec[T] { s.desc = desc; return s }

// WithShards range-shards this one operation into n edge-balanced
// destination ranges with per-shard direction decisions (see
// Descriptor.Shards). It copies the effective descriptor, so it allocates;
// iterative callers chasing the zero-allocation steady state should set
// Shards on a long-lived Descriptor instead.
func (s OpSpec[T]) WithShards(n int) OpSpec[T] {
	d := Descriptor{}
	if s.desc != nil {
		d = *s.desc
		d.tok = nil // the copy must re-bridge its own context token
	}
	d.Shards = n
	s.desc = &d
	return s
}

// WithContext makes this one operation abortable: the op checks ctx between
// kernel phases and returns a wrapped ErrCancelled once it is done. It
// overrides Descriptor.Context for the call. For chunk-level cancellation
// *inside* the parallel kernels as well, set Descriptor.Context instead —
// the descriptor caches the allocation-free token the kernels poll at chunk
// claims.
func (s OpSpec[T]) WithContext(ctx context.Context) OpSpec[T] { s.ctx = ctx; return s }

// context returns the operation's effective context: the per-call override,
// else the descriptor's. May be nil (never cancelled).
func (s OpSpec[T]) context() context.Context {
	if s.ctx != nil {
		return s.ctx
	}
	return s.desc.context()
}

// ctxErr is CheckContext over the operation's effective context: nil while
// live, a wrapped ErrCancelled once done. Allocation-free on the live path.
func (s OpSpec[T]) ctxErr() error { return CheckContext(s.context()) }

// VxM computes w⟨mask⟩ = uᵀ·A (GrB_vxm), which equals Aᵀ·u: a pure
// descriptor-transposed view over the MxV pipeline entry point — it flips
// the descriptor's transpose flag and delegates, duplicating no planning or
// dispatch code.
func (s OpSpec[T]) VxM(sr Semiring[T], u *Vector[T], a *Matrix[T]) (TraversalDirection, error) {
	var flipped Descriptor
	if s.desc != nil {
		flipped = *s.desc
	}
	flipped.Transpose = !flipped.Transpose
	s.desc = &flipped
	return s.MxV(sr, a, u)
}

// EWiseMult computes w⟨mask⟩ = u .⊗ v on the *intersection* of the operand
// patterns (GrB_eWiseMult).
func (s OpSpec[T]) EWiseMult(op BinaryOp[T], u, v *Vector[T]) error {
	return s.ewise(false, op, u, v)
}

// EWiseAdd computes w⟨mask⟩ = u ⊕ v on the *union* of the operand patterns
// (GrB_eWiseAdd): positions present in only one operand pass through.
func (s OpSpec[T]) EWiseAdd(op BinaryOp[T], u, v *Vector[T]) error {
	return s.ewise(true, op, u, v)
}

// Apply computes w⟨mask⟩ = f(u) elementwise over u's pattern (GrB_apply).
// w may alias u; the unmasked, non-accumulating aliased form runs in
// place. Because f is index-free, Boolean bitset operands run it as word
// arithmetic (truth-tabled once, 64 elements per step).
func (s OpSpec[T]) Apply(f func(T) T, u *Vector[T]) error {
	return s.applyIndexed(f, func(_ int, x T) T { return f(x) }, u)
}

// ApplyIndexed computes w⟨mask⟩ = f(i, u(i)) over u's pattern, the
// index-aware variant of Apply (GrB_apply with an index-unary operator).
// w may alias u.
func (s OpSpec[T]) ApplyIndexed(f func(i int, x T) T, u *Vector[T]) error {
	return s.applyIndexed(nil, f, u)
}

// Select keeps the elements of u for which pred(i, value) is true
// (GxB_select), restricted to the mask. w may alias u.
func (s OpSpec[T]) Select(pred func(i int, value T) bool, u *Vector[T]) error {
	return s.selectOp(pred, u)
}

// AssignVector merges u's stored elements into w where the mask allows:
// w(i) = u(i) — or accum(w(i), u(i)) with an accumulator — wherever u has
// an element, leaving the rest of w intact (GrB_assign with a vector,
// replace=false).
func (s OpSpec[T]) AssignVector(u *Vector[T]) error {
	return s.assignVector(u)
}

// AssignScalar sets w(i) = value — or accum(w(i), value) — at every index
// the effective mask allows, keeping all other positions (GrB_assign with
// a scalar, replace=false). A nil mask assigns everywhere.
func (s OpSpec[T]) AssignScalar(value T) error {
	return s.assignScalar(value)
}

// Extract copies the elements of u at the given indices into w, compacted:
// w(k) = u(indices[k]) where present and the mask allows position k
// (GrB_extract with an index list). Indices must be in range; duplicates
// are allowed.
func (s OpSpec[T]) Extract(u *Vector[T], indices []uint32) error {
	return s.extract(u, indices)
}

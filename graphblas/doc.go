// Package graphblas is a GraphBLAS-style sparse linear algebra library
// whose matrix-vector multiply implements the push-pull (direction-
// optimized) technique of Yang, Buluç and Owens, "Implementing Push-Pull
// Efficiently in GraphBLAS" (ICPP 2018).
//
// The key idea: push and pull graph traversals are the same mathematical
// operation, w⟨¬v⟩ = Aᵀ·u over a semiring, differing only in how the
// multiply is scheduled. A sparse input vector favours the column-based
// kernel (push, SpMSpV); a dense input with a sparse output mask favours
// the row-based kernel (pull, masked SpMV). MxV plans the direction from
// an edge-based cost model and the input vector's storage format follows
// the decision, so a BFS written as a plain loop of MxV calls
// direction-optimizes automatically.
//
// # Storage formats and the direction planner
//
// A Vector stores its elements in one of four formats, forming a lattice
// ordered by how much structure is materialized:
//
//	Sparse  sorted (index, value) pairs — the push input and the sparse
//	        push output (radix merge pipeline)
//	Bitset  value array + word-packed presence ([]uint64, 64 positions
//	        per word, tail bits zero) — O(1) single-bit probes at 1/8 the
//	        bitmap footprint, NVals by popcount, zero-copy word-packed
//	        kernel masks, and word-parallel Boolean pattern algebra; the
//	        representation for visited sets and reusable masks (ToBitset /
//	        BitsetView)
//	Bitmap  value array + presence bytes — O(1) probes for the pull
//	        input, zero-copy kernel masks, and the sort-free push output
//	Dense   value array with every position stored — the presence probe
//	        vanishes from pull inner loops (PageRank-style vectors)
//
// Conversion rules: Sparse↔{Bitset, Bitmap} moves follow the planned
// direction (pull requires O(1) probes, so a pulled sparse vector packs
// into the bitset; a pushed bitset or bitmap vector sparsifies once it
// has shrunk below the switch-point while shrinking — the hysteresis that
// keeps a frontier at the crossover from flapping). Bitmap promotes to
// Dense for free the moment its pattern fills (nvals == n) and demotes
// the moment an element is removed; a full Bitset stays Bitset, its words
// remaining the pattern authority. Promotion never invents elements — use
// Fill for the explicit pattern-changing densification. Kernels consume
// all four formats through format-agnostic views (internal/core.VecView),
// so a mismatch between storage and kernel never copies more than
// workspace scratch.
//
// Masks lower to one of two kernel layouts: packed words — bitset masks
// zero-copy, sparse masks materialized into the workspace's pooled word
// buffer — or presence bytes (bitmap/dense masks zero-copy). Word-packed
// masks are what the paper's headline kernel wants: the masked pull scans
// the ¬visited test 64 rows per word (the structural complement flips
// whole words, and a fully disallowed word skips 64 rows on one load),
// and the planner reads the mask's exact density by popcount instead of
// trusting a possibly stale count — recorded in Plan.MaskAllowFrac and
// BFS IterStats.MaskDensity. Boolean eWiseMult/Add and index-free Apply
// over bitset operands go further: the operator's truth table is
// evaluated once and both pattern and values are synthesized as word
// arithmetic (AND/OR/XOR-shaped ops literally become word AND/OR/XOR),
// 64 elements per step with no per-element branch or call.
//
// Direction choice is a standalone planner, not a side effect of
// conversion. Under Descriptor.Direction == Auto it compares
//
//	push cost ≈ Σ_{i∈frontier} outdeg(i) · log₂ nnz(f)   (read off CSC.Ptr)
//	pull cost ≈ rows · avg-degree · effective-mask density
//
// with hysteresis on the frontier trend (grow to switch into pull, shrink
// to switch back). When the plan estimates a push output dense enough that
// the radix sort would dominate, the push kernel scatters straight into
// bitmap storage instead (Plan.PushOutBitmap — no sort at all). Overrides:
// ForcePush/ForcePull pin the kernel, a positive Descriptor.SwitchPoint
// selects the paper's legacy nnz/n ratio rule at that crossover, and
// NoAutoConvert freezes formats on both sides of the call. Set
// Descriptor.Plan to capture the full decision record (costs, trend,
// rule), or use Planner directly when an algorithm needs the direction
// before issuing the operation (operand reuse, allow-list maintenance).
//
// When to force a format: keep a vector Bitmap (ToBitmap) when it is
// reused as a mask every iteration; Fill a value-complete vector so pull
// consumes it probe-free; leave frontiers alone — the planner settles
// them.
//
// # The calibrated cost model and feedback corrector
//
// The estimates above weigh every term equally — one RAM access per
// gathered edge, scanned row or scattered output. Real machines disagree
// by integer factors, so the crossover the unit model finds is not the
// crossover the hardware has. Three pieces close that gap:
//
//	Calibration  `ppbench calibrate` microbenchmarks the four kernel
//	             families (pull scans over dense/bitmap/bitset inputs,
//	             masked pulls under word masks, push gather with radix
//	             sort and with the sort-free bitmap scatter) on synthetic
//	             R-MAT-ish and uniform graphs at several frontier
//	             densities, least-squares-fits per-term nanosecond
//	             coefficients (core.CostModel) and writes the host-keyed
//	             profile PPTUNE_<os>_<arch>.json.
//	Planning     load the profile with `ppbench -tune <profile>`, or set
//	             Descriptor.CostModel / Planner.WithModel /
//	             algorithms' Model options directly. Plan.PushCost and
//	             Plan.PullCost become wall-clock-comparable nanosecond
//	             estimates and Plan.PredictedNs records the chosen
//	             kernel's forecast. The zero model keeps historical unit
//	             behaviour everywhere.
//	Feedback     every planned MxV is timed around the kernel itself
//	             (monotonic clock, no allocations; Plan.MeasuredNs). With
//	             Descriptor.Corrector — or automatically inside Planner
//	             and the tuned algorithms — the measured/predicted ratio
//	             feeds a per-direction EWMA that scales the next
//	             decision's estimates, so a mis-fitted or borrowed
//	             profile converges toward the machine mid-traversal.
//
// `ppbench bench` grades the result: its decision-quality table reruns
// both kernels at every BFS level and reports the fraction of iterations
// each model scheduled on the measured-faster kernel.
//
// # Range-sharded hybrid execution
//
// Frontier density is not uniform across a skewed graph: mid-traversal, a
// hub-heavy destination range can be dense enough to pull while the tail
// is still sparse enough to push, so any single whole-operation direction
// is wrong for part of the index space. Descriptor.Shards > 1 splits one
// MxV into that many contiguous destination ranges and gives each its own
// direction decision:
//
//	Boundaries  edge-balanced over the in-edge prefix sums (CSR Ptr), so
//	            a hub shard covers few rows and a tail shard many; built
//	            once per matrix (with a destination-sharded CSC cut table
//	            for the push side) and cached on the Matrix.
//	Decisions   core.DecideDirection per shard, priced by the calibrated
//	            model over shard-local evidence: exact frontier edge
//	            counts off the cut table (sparse frontiers directly;
//	            bitset/bitmap frontiers below ⅛ density are expanded into
//	            workspace scratch so packed frontiers plan exactly too)
//	            and the shard's own mask density.
//	Execution   pull shards scan their own output rows; push shards
//	            scatter through the cut table, which bounds every
//	            frontier column's gather to the shard's destination
//	            range. Each shard writes a disjoint slice of one bitmap
//	            output, so a concurrent push+pull mix needs no atomics.
//	            Consecutive push shards merge into at most one segment
//	            per worker, restoring the unsharded push's per-edge cost
//	            (a push shard pays one cut probe per frontier column no
//	            matter how few edges it owns). The input's storage format
//	            settles toward the shard majority, exactly as unsharded
//	            planning settles it toward the whole-operation decision.
//	Feedback    Descriptor.Corrector becomes shard-keyed: each shard's
//	            (predicted, measured) pair feeds its own EWMA key, so a
//	            hub shard's timing never bends a tail shard's estimate,
//	            while per-direction sums feed the parent corrector as the
//	            pooled prior a shard reads for a direction it has never
//	            run. Per-shard flips carry multiplicative hysteresis: a
//	            challenger direction must undercut the incumbent's
//	            corrected cost decisively, so near-tied shards stick
//	            (Rule "sticky" in the trace) instead of oscillating.
//	Tracing     Descriptor.Plan records the whole-operation summary (Rule
//	            "sharded", Hybrid when the mix is real) plus one
//	            ShardPlan per range — direction, rule, exact edges, costs,
//	            predicted and measured ns; BFS IterStats carries the same
//	            per-iteration record.
//
// The sharded pipeline preserves the 0 allocs/op steady state (shard
// plans, frontier expansion and both operand lowerings live in workspace
// scratch), polls cancellation at shard and sub-shard granularity, and
// taints the workspace on a shard panic exactly like the unsharded path —
// sibling shards drain before the one captured fault surfaces as
// ErrKernelPanic. Shards = 1, NoAutoConvert, or a degenerate output falls
// back to whole-operation planning; `ppbench bench`'s shard-sweep tables
// track the hybrid-vs-uniform speedup and the per-shard decision record.
//
// The paper's five optimizations map onto the API as follows.
//
//	Change of direction — automatic in MxV; force with Descriptor.Direction.
//	Masking            — the mask argument of MxV/AssignScalar, with
//	                     Descriptor.StructuralComplement for ¬m; the
//	                     amortized unvisited-list of Section 3.2 plugs in
//	                     through Descriptor.MaskAllowList.
//	Early-exit         — automatic whenever the semiring's additive monoid
//	                     declares a Terminal (e.g. Boolean OR saturates at
//	                     true); disable with Descriptor.NoEarlyExit.
//	Operand reuse      — an algorithm-level choice (pass the visited vector
//	                     as the input); see algorithms.BFS.
//	Structure-only     — Descriptor.StructureOnly treats the matrix as a
//	                     pattern, halving push-phase sort traffic.
//
// Types are generic over the stored element type. Semirings are ordinary
// values (see OrAndBool, PlusTimesFloat64, MinPlusFloat64, ...), so users
// can express BFS, SSSP, PageRank and friends by choosing (⊕, ⊗, I) — the
// generalized-semiring mechanism of the GraphBLAS C API.
//
// # The OpSpec operation pipeline
//
// Every vector operation runs through one declarative builder, so masks,
// accumulators, descriptors and workspaces behave identically across the
// whole surface:
//
//	graphblas.Into(w).Mask(m).Accum(op).With(desc).MxV(sr, a, u)
//	graphblas.Into(w).Mask(m).With(desc).EWiseAdd(plus, u, v)
//	graphblas.Into(dist).Accum(min).AssignVector(improved)   // dist min= improved
//
// Builder modifiers are optional and order-free. The uniform semantics:
//
//	mask    restricts the computed output pattern: only positions the
//	        effective mask allows are produced. StructuralComplement
//	        flips the test (¬m). Masks are structural (pattern-only), so
//	        any element type masks any op — a float64 frontier can mask a
//	        Boolean visited update (MaskVector).
//	accum   merges the masked result t into the existing w instead of
//	        replacing it: w(i) = accum(w(i), t(i)) where both present,
//	        w(i) = t(i) where only t is, w keeps the rest. Without an
//	        accumulator the op replaces w with the masked result.
//	assign  Assign/AssignScalar are merges by definition (replace=false):
//	        they touch only the positions the mask and operand pattern
//	        select, with or without an accumulator.
//	desc    carries complement/transpose/direction/plan/workspace exactly
//	        as for MxV; Descriptor.Plan records the op name and output
//	        storage kind for every pipeline op, not just matvec.
//
// The pipeline is format-aware end to end: kernels consume operands
// through the same core.VecView seam as matvec, and the *output* format
// follows the operand lattice — an eWise intersection lands in the sparser
// operand's format, a union in the denser one's, apply and select follow
// their input — so a dense PageRank vector never round-trips through a
// sparse copy and dense∘dense eWise loops run probe-free over the value
// arrays. Steady-state calls with a pinned Workspace allocate nothing:
// sparse results build in the destination's own reusable buffers, bitmap
// results in its value/presence arrays, and aliased outputs bounce through
// the workspace scratch vector with a constant-time storage swap.
//
// Migration from the positional signatures (which remain as thin
// deprecated wrappers over the pipeline):
//
//	MxV(w, m, acc, s, a, u, d)   →  Into(w).Mask(m).Accum(acc).With(d).MxV(s, a, u)
//	VxM(w, m, acc, s, u, a, d)   →  Into(w).Mask(m).Accum(acc).With(d).VxM(s, u, a)
//	EWiseMult(w, op, u, v)       →  Into(w).EWiseMult(op, u, v)
//	EWiseAdd(w, op, u, v)        →  Into(w).EWiseAdd(op, u, v)
//	Apply(w, f, u)               →  Into(w).Apply(f, u)
//	ApplyIndexed(w, f, u)        →  Into(w).ApplyIndexed(f, u)
//	Select(w, pred, u)           →  Into(w).Select(pred, u)
//	AssignVector(w, u)           →  Into(w).AssignVector(u)
//	AssignScalar(w, m, x, d)     →  Into(w).Mask(m).With(d).AssignScalar(x)
//	Extract(w, u, idx)           →  Into(w).Extract(u, idx)
//
// The positional forms accept no mask/accum (except AssignScalar's mask);
// the builder forms accept all modifiers on every op. VxM is a pure
// descriptor-transposed view over the MxV pipeline entry — it flips
// Descriptor.Transpose and delegates, sharing all planning and dispatch.
//
// # Workspace lifecycle
//
// Iterative programs — the library's whole reason to exist — reach a
// zero-allocation steady state through the Workspace: a reusable scratch
// arena holding every transient the operation stack needs (the push
// kernel's gather buffers, the radix sort's ping-pong arrays and
// histograms, the SPA accumulator, the sparse-mask word buffer, the
// accumulate target, the aliased-output bounce vector, and the pinned
// parallel loop bodies that keep goroutine dispatch closure-free).
//
// Pin one across an algorithm's iterations:
//
//	ws := graphblas.AcquireWorkspace(a.NRows(), a.NCols())
//	defer ws.Release()
//	desc := &graphblas.Descriptor{Workspace: ws, ...}
//	for frontierNotEmpty {
//		graphblas.MxV(f, visited, nil, sr, a, f, desc) // 0 allocs once warm
//	}
//
// Acquire/Release round-trips a pool keyed by the matrix dimensions, so
// consecutive runs over the same graph shape share warm buffers. When a
// descriptor carries no Workspace (auto-pooling), each operation acquires
// a pooled workspace itself and releases it before returning — callers
// still skip the large allocations, paying only the pool round-trip, and
// results are always safe because operations copy kernel output out of
// workspace storage into the destination vector's own reusable arrays.
//
// A workspace serves one operation at a time: do not share one (or a
// descriptor holding one) between concurrent operations — concurrent runs
// should each acquire their own. Buffers grow to the high-water mark of
// the calls they serve and stay there until the pool's contents are
// collected.
//
// # Concurrency contract
//
// Goroutine-safe (share freely once built):
//
//	Matrix and its CSR/CSC views   immutable after construction
//	Semiring, BinaryOp, Monoid     plain values, never mutated by ops
//	core.CostModel                 read-only coefficients
//
// Per-goroutine (one owner at a time, never shared by concurrent calls):
//
//	Vector        all formats; even read-only use can convert storage
//	Workspace     scratch arena, one operation at a time
//	Descriptor    *when* it carries mutable per-call state: a pinned
//	              Workspace, a Corrector, a Plan sink, or a Context (the
//	              cached cancellation token). A descriptor with none of
//	              those fields is plain data and may be shared.
//	core.Corrector  per-traversal EWMA state
//
// Concurrent algorithm runs should each build their own vectors,
// descriptors and workspaces; the package-level pools behind
// AcquireWorkspace and the parallel runtime's worker set are themselves
// goroutine-safe.
//
// The audited serving rule is therefore: one Descriptor per goroutine,
// one Matrix for everyone. Any number of concurrent traversals may read
// the same Matrix — including sharded ones: the shard-set cache the
// Matrix builds lazily on first sharded call is guarded by a mutex and
// immutable once published. The direction planner's hysteresis rides on
// the input Vector (per-traversal by construction) and the Corrector's
// EWMAs on the Descriptor, so concurrent queries cannot bend each
// other's direction decisions. graphblas/concurrency_test.go pins this
// contract under the race detector.
//
// # Fault aftermath
//
// Two failure modes can interrupt an operation, and they leave different
// state behind:
//
// Cancellation (ErrCancelled): when Descriptor.Context or
// OpSpec.WithContext is done, the op returns an error wrapping
// ErrCancelled (and the context's cause) at the next phase boundary, and
// the parallel kernels stop claiming work at chunk granularity. Everything
// is left clean: workspaces — pinned or pooled — remain valid and
// poolable, kernel epilogues still restore arena invariants, and no
// partial product is merged into an accumulated output. The destination
// vector of a non-accumulating op may hold a structurally valid partial
// result; callers that observe ErrCancelled should discard or ignore it.
// The live-path context check is allocation-free, so an abortable loop
// keeps its zero-allocation steady state.
//
// Kernel panic (ErrKernelPanic): a panic inside a kernel or user operator
// is captured on the dispatching goroutine — never another worker — and
// returned as a *PanicError wrapping ErrKernelPanic, carrying the
// panicking value and stack. The workspace the kernel was running on is
// tainted: it is dropped on Release instead of pooled, and a descriptor
// still pinning it treats it as absent (subsequent calls fall back to
// fresh pooled scratch), so corrupted scratch never resurfaces. The
// destination vector is structurally valid but its contents are
// unspecified; rebuild it before trusting it. The worker pool itself is
// unaffected — parked workers survive panics and later operations run
// normally.
//
// # Serving
//
// The concurrency contract and the fault aftermath together are what make
// the library servable: cmd/ppserve (package internal/serve) keeps a
// fixed pool of worker goroutines over graphs loaded once, each worker
// pinning one Workspace per graph shape so repeat queries run the
// allocation-free kernel path, with per-query deadline contexts tearing
// down overdue traversals mid-flight and kernel panics costing one
// tainted arena instead of the process.
//
// Graphs themselves live behind refcounted snapshots: a query acquires
// its graph's current snapshot at admission and releases it at
// completion, and a hot reload (SIGHUP or POST /admin/reload) builds the
// replacement off to the side — load, then a validation gate of
// dimension and CSR/CSC parity checks plus a push-vs-pull smoke
// traversal — before atomically swapping it in. A snapshot that fails
// the gate rolls back to the old one; a retired snapshot frees (its
// Matrix shard caches purged via PurgeShardCache, workers' pinned arenas
// for dead shapes pruned) only after its last in-flight query releases
// it, so a traversal never observes a torn or freed graph. Because a
// Matrix is immutable after construction, the swap is just a pointer:
// nothing in this package needs locking to make reload safe. Workers
// self-heal on top — a streak of consecutive kernel faults retires the
// worker and its arenas for a fresh replacement — and a graph that fails
// to load degrades the process (failed graph answers 503, the rest keep
// serving) instead of killing it.
//
// Overload is handled at the door, not in the queue. The serving tier
// extends the paper's per-iteration cost model one level up into a
// whole-query predictor: the calibrated model prices a full-sweep bound
// per (graph, algorithm) before any query has run, and an EWMA over
// measured run times refines it from live traffic. Admission prices
// every query against that estimate — a query whose deadline the
// predicted backlog already makes unmeetable is shed immediately with an
// honest Retry-After instead of being admitted to time out in line — and
// a class-aware earliest-deadline-first scheduler (interactive before
// batch, with an anti-starvation aging bound) replaces FIFO claiming.
// Per-query execution budgets ride the same Descriptor.Context seam the
// deadlines use: the budget is a deadline on the run context with
// ErrBudgetExceeded as its cancellation cause, so a tripped query tears
// down at the next phase boundary like any cancellation, surfaces
// distinguishably from both deadline expiry and client abandonment, and
// still returns the algorithm's coherent partial progress. See the
// internal/serve package docs for the lifecycle and admission design and
// the README for the HTTP quickstart.
package graphblas

// Package graphblas is a GraphBLAS-style sparse linear algebra library
// whose matrix-vector multiply implements the push-pull (direction-
// optimized) technique of Yang, Buluç and Owens, "Implementing Push-Pull
// Efficiently in GraphBLAS" (ICPP 2018).
//
// The key idea: push and pull graph traversals are the same mathematical
// operation, w⟨¬v⟩ = Aᵀ·u over a semiring, differing only in how the
// multiply is scheduled. A sparse input vector favours the column-based
// kernel (push, SpMSpV); a dense input with a sparse output mask favours
// the row-based kernel (pull, masked SpMV). MxV dispatches on the input
// vector's storage format, and Vector conversion follows the paper's
// switch-point heuristic with hysteresis, so a BFS written as a plain loop
// of MxV calls direction-optimizes automatically.
//
// The paper's five optimizations map onto the API as follows.
//
//	Change of direction — automatic in MxV; force with Descriptor.Direction.
//	Masking            — the mask argument of MxV/AssignScalar, with
//	                     Descriptor.StructuralComplement for ¬m; the
//	                     amortized unvisited-list of Section 3.2 plugs in
//	                     through Descriptor.MaskAllowList.
//	Early-exit         — automatic whenever the semiring's additive monoid
//	                     declares a Terminal (e.g. Boolean OR saturates at
//	                     true); disable with Descriptor.NoEarlyExit.
//	Operand reuse      — an algorithm-level choice (pass the visited vector
//	                     as the input); see algorithms.BFS.
//	Structure-only     — Descriptor.StructureOnly treats the matrix as a
//	                     pattern, halving push-phase sort traffic.
//
// Types are generic over the stored element type. Semirings are ordinary
// values (see OrAndBool, PlusTimesFloat64, MinPlusFloat64, ...), so users
// can express BFS, SSSP, PageRank and friends by choosing (⊕, ⊗, I) — the
// generalized-semiring mechanism of the GraphBLAS C API.
//
// # Workspace lifecycle
//
// Iterative programs — the library's whole reason to exist — reach a
// zero-allocation steady state through the Workspace: a reusable scratch
// arena holding every transient the operation stack needs (the push
// kernel's gather buffers, the radix sort's ping-pong arrays and
// histograms, the SPA accumulator, the sparse-mask bitmap, the accumulate
// target, the aliased-output bounce vector, and the pinned parallel loop
// bodies that keep goroutine dispatch closure-free).
//
// Pin one across an algorithm's iterations:
//
//	ws := graphblas.AcquireWorkspace(a.NRows(), a.NCols())
//	defer ws.Release()
//	desc := &graphblas.Descriptor{Workspace: ws, ...}
//	for frontierNotEmpty {
//		graphblas.MxV(f, visited, nil, sr, a, f, desc) // 0 allocs once warm
//	}
//
// Acquire/Release round-trips a pool keyed by the matrix dimensions, so
// consecutive runs over the same graph shape share warm buffers. When a
// descriptor carries no Workspace (auto-pooling), each operation acquires
// a pooled workspace itself and releases it before returning — callers
// still skip the large allocations, paying only the pool round-trip, and
// results are always safe because operations copy kernel output out of
// workspace storage into the destination vector's own reusable arrays.
//
// A workspace serves one operation at a time: do not share one (or a
// descriptor holding one) between concurrent operations — concurrent runs
// should each acquire their own. Buffers grow to the high-water mark of
// the calls they serve and stay there until the pool's contents are
// collected.
package graphblas

// Package graphblas is a GraphBLAS-style sparse linear algebra library
// whose matrix-vector multiply implements the push-pull (direction-
// optimized) technique of Yang, Buluç and Owens, "Implementing Push-Pull
// Efficiently in GraphBLAS" (ICPP 2018).
//
// The key idea: push and pull graph traversals are the same mathematical
// operation, w⟨¬v⟩ = Aᵀ·u over a semiring, differing only in how the
// multiply is scheduled. A sparse input vector favours the column-based
// kernel (push, SpMSpV); a dense input with a sparse output mask favours
// the row-based kernel (pull, masked SpMV). MxV dispatches on the input
// vector's storage format, and Vector conversion follows the paper's
// switch-point heuristic with hysteresis, so a BFS written as a plain loop
// of MxV calls direction-optimizes automatically.
//
// The paper's five optimizations map onto the API as follows.
//
//	Change of direction — automatic in MxV; force with Descriptor.Direction.
//	Masking            — the mask argument of MxV/AssignScalar, with
//	                     Descriptor.StructuralComplement for ¬m; the
//	                     amortized unvisited-list of Section 3.2 plugs in
//	                     through Descriptor.MaskAllowList.
//	Early-exit         — automatic whenever the semiring's additive monoid
//	                     declares a Terminal (e.g. Boolean OR saturates at
//	                     true); disable with Descriptor.NoEarlyExit.
//	Operand reuse      — an algorithm-level choice (pass the visited vector
//	                     as the input); see algorithms.BFS.
//	Structure-only     — Descriptor.StructureOnly treats the matrix as a
//	                     pattern, halving push-phase sort traffic.
//
// Types are generic over the stored element type. Semirings are ordinary
// values (see OrAndBool, PlusTimesFloat64, MinPlusFloat64, ...), so users
// can express BFS, SSSP, PageRank and friends by choosing (⊕, ⊗, I) — the
// generalized-semiring mechanism of the GraphBLAS C API.
package graphblas

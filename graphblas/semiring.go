package graphblas

import "math"

// BinaryOp is a binary operator on the element domain, the ⊗ (or accum) of
// a GraphBLAS call.
type BinaryOp[T any] func(T, T) T

// Monoid is an associative BinaryOp with identity, the ⊕ of a semiring.
//
// Terminal, when non-nil, declares an annihilator: Op(*Terminal, x) ==
// *Terminal for every x. Kernels use it for the paper's early-exit
// optimization — once an accumulation reaches the terminal no further
// terms can change it, so the row scan may stop. Boolean OR's terminal is
// true; MIN's is the domain minimum; PLUS has none.
type Monoid[T any] struct {
	Op       BinaryOp[T]
	Identity T
	Terminal *T
}

// Reduce folds xs with the monoid.
func (m Monoid[T]) Reduce(xs []T) T {
	acc := m.Identity
	for _, x := range xs {
		acc = m.Op(acc, x)
	}
	return acc
}

// Semiring is the generalized (D, ⊗, ⊕, I) of the GraphBLAS spec: Add is
// the additive monoid, Mul the multiplicative operator, and One the
// multiplicative identity (the value structure-only mode substitutes for
// stored entries).
type Semiring[T any] struct {
	Add Monoid[T]
	Mul BinaryOp[T]
	One T
}

// Standard semirings. Each is a constructor rather than a variable so
// callers cannot alias and mutate shared state.

// OrAndBool returns the Boolean semiring ({false,true}, AND, OR, false)
// used by BFS and reachability. Its additive terminal (true) enables
// early-exit, and idempotence makes it safe for structure-only mode.
func OrAndBool() Semiring[bool] {
	t := true
	return Semiring[bool]{
		Add: Monoid[bool]{
			Op:       func(a, b bool) bool { return a || b },
			Identity: false,
			Terminal: &t,
		},
		Mul: func(a, b bool) bool { return a && b },
		One: true,
	}
}

// PlusTimesFloat64 returns the conventional arithmetic semiring, used by
// PageRank and triangle counting.
func PlusTimesFloat64() Semiring[float64] {
	return Semiring[float64]{
		Add: Monoid[float64]{
			Op:       func(a, b float64) float64 { return a + b },
			Identity: 0,
		},
		Mul: func(a, b float64) float64 { return a * b },
		One: 1,
	}
}

// PlusTimesInt64 is the integer arithmetic semiring.
func PlusTimesInt64() Semiring[int64] {
	return Semiring[int64]{
		Add: Monoid[int64]{
			Op:       func(a, b int64) int64 { return a + b },
			Identity: 0,
		},
		Mul: func(a, b int64) int64 { return a * b },
		One: 1,
	}
}

// MinPlusFloat64 returns the tropical semiring (min, +) with identity +∞,
// used by SSSP (Bellman-Ford). Its terminal is -∞; since edge relaxations
// never produce -∞ the early-exit path stays dormant, matching the paper's
// observation that early-exit is specific to Boolean-like semirings.
func MinPlusFloat64() Semiring[float64] {
	neg := math.Inf(-1)
	return Semiring[float64]{
		Add: Monoid[float64]{
			Op:       math.Min,
			Identity: math.Inf(1),
			Terminal: &neg,
		},
		Mul: func(a, b float64) float64 { return a + b },
		One: 0,
	}
}

// MinSecondUint32 returns the (min, second) semiring over vertex ids used
// by parent-tracking BFS: the product of A(i,j) and u(j) is the *parent
// id* carried by u(j) (the "second" operand), and min picks a
// deterministic winner among candidate parents.
func MinSecondUint32() Semiring[uint32] {
	return Semiring[uint32]{
		Add: Monoid[uint32]{
			Op: func(a, b uint32) uint32 {
				if a < b {
					return a
				}
				return b
			},
			Identity: ^uint32(0),
		},
		Mul: func(a, b uint32) uint32 { return b },
		One: ^uint32(0),
	}
}

// MaxTimesFloat64 returns the (max, ×) semiring, used e.g. for widest-path
// style propagation and as an extra semiring for property tests.
func MaxTimesFloat64() Semiring[float64] {
	return Semiring[float64]{
		Add: Monoid[float64]{
			Op:       math.Max,
			Identity: math.Inf(-1),
		},
		Mul: func(a, b float64) float64 { return a * b },
		One: 1,
	}
}

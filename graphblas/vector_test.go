package graphblas

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pushpull/internal/core"
)

func TestVectorBasicOps(t *testing.T) {
	v := NewVector[float64](10)
	if v.Size() != 10 || v.NVals() != 0 || v.Format() != Sparse {
		t.Fatal("fresh vector state wrong")
	}
	if err := v.SetElement(3, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := v.SetElement(7, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := v.SetElement(3, 9.5); err != nil {
		t.Fatal(err)
	}
	if v.NVals() != 2 {
		t.Fatalf("NVals=%d want 2", v.NVals())
	}
	got, err := v.ExtractElement(3)
	if err != nil || got != 9.5 {
		t.Fatalf("ExtractElement(3)=%g,%v", got, err)
	}
	if _, err := v.ExtractElement(4); !errors.Is(err, ErrNoValue) {
		t.Fatalf("missing element: %v", err)
	}
	if err := v.RemoveElement(3); err != nil {
		t.Fatal(err)
	}
	if v.NVals() != 1 {
		t.Fatalf("NVals after remove=%d", v.NVals())
	}
	if err := v.SetElement(10, 1); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("out of bounds set: %v", err)
	}
	if _, err := v.ExtractElement(-1); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("out of bounds extract: %v", err)
	}
}

func TestVectorBitmapOps(t *testing.T) {
	v := NewVector[int64](5)
	v.ToBitmap()
	if v.Format() != Bitmap {
		t.Fatal("ToBitmap did not switch format")
	}
	// ToDense never invents elements: a partial vector stays bitmap.
	v.ToDense()
	if v.Format() != Bitmap {
		t.Fatal("ToDense promoted a partial vector")
	}
	if err := v.SetElement(2, 42); err != nil {
		t.Fatal(err)
	}
	if v.NVals() != 1 {
		t.Fatalf("bitmap NVals=%d", v.NVals())
	}
	got, err := v.ExtractElement(2)
	if err != nil || got != 42 {
		t.Fatalf("bitmap extract=%d,%v", got, err)
	}
	if err := v.RemoveElement(2); err != nil || v.NVals() != 0 {
		t.Fatal("bitmap remove failed")
	}
	// Removing an absent element is fine.
	if err := v.RemoveElement(2); err != nil {
		t.Fatal(err)
	}
}

func TestVectorDensePromotionLattice(t *testing.T) {
	// Filling a bitmap vector's pattern promotes it to Dense for free;
	// removing an element demotes it back to Bitmap.
	n := 4
	v := NewVector[int64](n)
	v.ToBitmap()
	for i := 0; i < n; i++ {
		if err := v.SetElement(i, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if v.Format() != Dense {
		t.Fatalf("full bitmap should promote to dense, got %v", v.Format())
	}
	if v.NVals() != n {
		t.Fatalf("dense NVals=%d want %d", v.NVals(), n)
	}
	if err := v.RemoveElement(1); err != nil {
		t.Fatal(err)
	}
	if v.Format() != Bitmap || v.NVals() != n-1 {
		t.Fatalf("remove should demote to bitmap: %v nvals=%d", v.Format(), v.NVals())
	}
	if _, err := v.ExtractElement(1); !errors.Is(err, ErrNoValue) {
		t.Fatal("removed element still present after demotion")
	}

	// Fill is the explicit pattern-changing densification.
	f := NewVector[float64](3)
	_ = f.SetElement(1, 9)
	f.Fill(0.5)
	if f.Format() != Dense || f.NVals() != 3 {
		t.Fatalf("Fill: format=%v nvals=%d", f.Format(), f.NVals())
	}
	if x, _ := f.ExtractElement(1); x != 0.5 {
		t.Fatalf("Fill overwrote to %g, want 0.5", x)
	}

	// Dense demotes to bitmap in O(1) via ToBitmap and sparsifies cleanly.
	f.ToBitmap()
	if f.Format() != Bitmap || f.NVals() != 3 {
		t.Fatalf("dense→bitmap demotion: %v nvals=%d", f.Format(), f.NVals())
	}
	f.ToSparse()
	if f.Format() != Sparse || f.NVals() != 3 {
		t.Fatalf("bitmap→sparse: %v nvals=%d", f.Format(), f.NVals())
	}
}

func TestVectorBuild(t *testing.T) {
	v := NewVector[int64](8)
	err := v.Build([]uint32{5, 1, 5, 3}, []int64{10, 20, 30, 40}, func(a, b int64) int64 { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if v.NVals() != 3 {
		t.Fatalf("NVals=%d want 3", v.NVals())
	}
	if x, _ := v.ExtractElement(5); x != 40 {
		t.Fatalf("dup fold=%d want 40", x)
	}
	// Last write wins without dup.
	v2 := NewVector[int64](8)
	if err := v2.Build([]uint32{5, 5}, []int64{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	if x, _ := v2.ExtractElement(5); x != 2 {
		t.Fatalf("last write=%d want 2", x)
	}
	if err := v2.Build([]uint32{9}, []int64{1}, nil); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("bad index: %v", err)
	}
	if err := v2.Build([]uint32{1, 2}, []int64{1}, nil); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("len mismatch: %v", err)
	}
}

func TestVectorConversionRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		v := NewVector[float64](n)
		ref := map[int]float64{}
		for k := 0; k < rng.Intn(60); k++ {
			i := rng.Intn(n)
			x := rng.Float64()
			ref[i] = x
			if v.SetElement(i, x) != nil {
				return false
			}
		}
		check := func() bool {
			if v.NVals() != len(ref) {
				return false
			}
			ok := true
			v.Iterate(func(i int, x float64) bool {
				if ref[i] != x {
					ok = false
					return false
				}
				return true
			})
			return ok
		}
		v.ToDense()
		if !check() {
			return false
		}
		v.ToSparse()
		if !check() {
			return false
		}
		v.ToDense()
		v.ToDense() // idempotent
		return check()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorIterateOrderAndEarlyStop(t *testing.T) {
	v := NewVector[int64](10)
	for _, i := range []int{7, 2, 5} {
		if err := v.SetElement(i, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var seen []int
	v.Iterate(func(i int, _ int64) bool {
		seen = append(seen, i)
		return true
	})
	if len(seen) != 3 || seen[0] != 2 || seen[1] != 5 || seen[2] != 7 {
		t.Fatalf("iterate order = %v", seen)
	}
	count := 0
	v.Iterate(func(int, int64) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
	// Dense iteration hits the same elements.
	v.ToDense()
	seen = seen[:0]
	v.Iterate(func(i int, _ int64) bool {
		seen = append(seen, i)
		return true
	})
	if len(seen) != 3 || seen[0] != 2 {
		t.Fatalf("dense iterate = %v", seen)
	}
}

func TestVectorDup(t *testing.T) {
	v := NewVector[float64](6)
	_ = v.SetElement(1, 1.5)
	v.ToDense()
	d := v.Dup()
	_ = d.SetElement(2, 2.5)
	if v.NVals() != 1 || d.NVals() != 2 {
		t.Fatal("Dup is not independent")
	}
	if d.Format() != Bitmap {
		t.Fatal("Dup lost format")
	}
}

func TestVectorClear(t *testing.T) {
	v := NewVector[bool](4)
	_ = v.SetElement(0, true)
	v.ToDense()
	v.Clear()
	if v.NVals() != 0 || v.Format() != Sparse {
		t.Fatal("Clear did not reset")
	}
	if _, err := v.ExtractElement(0); !errors.Is(err, ErrNoValue) {
		t.Fatal("element survived Clear")
	}
}

func TestSettleFormatFollowsPlannedDirection(t *testing.T) {
	// Format follows the planned direction, with the plan's trend as the
	// hysteresis gate.
	n := 1000
	v := NewVector[bool](n)
	for i := 0; i < 5; i++ {
		_ = v.SetElement(i, true)
	}

	// A pull plan needs O(1) probes: sparse converts to the word-packed
	// bitset (single-bit probes at 1/8 the bitmap footprint).
	v.settleFormat(core.Plan{Dir: core.Pull}, 0.01)
	if v.Format() != Bitset {
		t.Fatalf("pull plan left format %v", v.Format())
	}

	// A push plan on a bitset above the switch-point keeps the bitset
	// (the kernel compacts a view; no storage churn at the crossover).
	for i := 5; i < 50; i++ {
		_ = v.SetElement(i, true)
	}
	v.settleFormat(core.Plan{Dir: core.Push, Shrinking: true}, 0.01)
	if v.Format() != Bitset {
		t.Fatal("push plan above switch-point must not sparsify")
	}

	// Below the switch-point but *growing*: the trend gate holds the
	// bitset (this is the anti-flap hysteresis).
	for i := 2; i < 50; i++ {
		_ = v.RemoveElement(i)
	}
	v.settleFormat(core.Plan{Dir: core.Push, Growing: true}, 0.01)
	if v.Format() != Bitset {
		t.Fatal("growing frontier must not sparsify")
	}

	// Below the switch-point and shrinking: back to the sparse list.
	v.settleFormat(core.Plan{Dir: core.Push, Shrinking: true}, 0.01)
	if v.Format() != Sparse {
		t.Fatal("shrinking below switch-point should sparsify")
	}
}

func TestFormatString(t *testing.T) {
	if Sparse.String() != "sparse" || Bitmap.String() != "bitmap" || Dense.String() != "dense" || Bitset.String() != "bitset" {
		t.Fatal("Format.String mismatch")
	}
}

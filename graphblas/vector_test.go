package graphblas

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorBasicOps(t *testing.T) {
	v := NewVector[float64](10)
	if v.Size() != 10 || v.NVals() != 0 || v.Format() != Sparse {
		t.Fatal("fresh vector state wrong")
	}
	if err := v.SetElement(3, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := v.SetElement(7, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := v.SetElement(3, 9.5); err != nil {
		t.Fatal(err)
	}
	if v.NVals() != 2 {
		t.Fatalf("NVals=%d want 2", v.NVals())
	}
	got, err := v.ExtractElement(3)
	if err != nil || got != 9.5 {
		t.Fatalf("ExtractElement(3)=%g,%v", got, err)
	}
	if _, err := v.ExtractElement(4); !errors.Is(err, ErrNoValue) {
		t.Fatalf("missing element: %v", err)
	}
	if err := v.RemoveElement(3); err != nil {
		t.Fatal(err)
	}
	if v.NVals() != 1 {
		t.Fatalf("NVals after remove=%d", v.NVals())
	}
	if err := v.SetElement(10, 1); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("out of bounds set: %v", err)
	}
	if _, err := v.ExtractElement(-1); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("out of bounds extract: %v", err)
	}
}

func TestVectorDenseOps(t *testing.T) {
	v := NewVector[int64](5)
	v.ToDense()
	if v.Format() != Dense {
		t.Fatal("ToDense did not switch format")
	}
	if err := v.SetElement(2, 42); err != nil {
		t.Fatal(err)
	}
	if v.NVals() != 1 {
		t.Fatalf("dense NVals=%d", v.NVals())
	}
	got, err := v.ExtractElement(2)
	if err != nil || got != 42 {
		t.Fatalf("dense extract=%d,%v", got, err)
	}
	if err := v.RemoveElement(2); err != nil || v.NVals() != 0 {
		t.Fatal("dense remove failed")
	}
	// Removing an absent element is fine.
	if err := v.RemoveElement(2); err != nil {
		t.Fatal(err)
	}
}

func TestVectorBuild(t *testing.T) {
	v := NewVector[int64](8)
	err := v.Build([]uint32{5, 1, 5, 3}, []int64{10, 20, 30, 40}, func(a, b int64) int64 { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if v.NVals() != 3 {
		t.Fatalf("NVals=%d want 3", v.NVals())
	}
	if x, _ := v.ExtractElement(5); x != 40 {
		t.Fatalf("dup fold=%d want 40", x)
	}
	// Last write wins without dup.
	v2 := NewVector[int64](8)
	if err := v2.Build([]uint32{5, 5}, []int64{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	if x, _ := v2.ExtractElement(5); x != 2 {
		t.Fatalf("last write=%d want 2", x)
	}
	if err := v2.Build([]uint32{9}, []int64{1}, nil); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("bad index: %v", err)
	}
	if err := v2.Build([]uint32{1, 2}, []int64{1}, nil); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("len mismatch: %v", err)
	}
}

func TestVectorConversionRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		v := NewVector[float64](n)
		ref := map[int]float64{}
		for k := 0; k < rng.Intn(60); k++ {
			i := rng.Intn(n)
			x := rng.Float64()
			ref[i] = x
			if v.SetElement(i, x) != nil {
				return false
			}
		}
		check := func() bool {
			if v.NVals() != len(ref) {
				return false
			}
			ok := true
			v.Iterate(func(i int, x float64) bool {
				if ref[i] != x {
					ok = false
					return false
				}
				return true
			})
			return ok
		}
		v.ToDense()
		if !check() {
			return false
		}
		v.ToSparse()
		if !check() {
			return false
		}
		v.ToDense()
		v.ToDense() // idempotent
		return check()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorIterateOrderAndEarlyStop(t *testing.T) {
	v := NewVector[int64](10)
	for _, i := range []int{7, 2, 5} {
		if err := v.SetElement(i, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var seen []int
	v.Iterate(func(i int, _ int64) bool {
		seen = append(seen, i)
		return true
	})
	if len(seen) != 3 || seen[0] != 2 || seen[1] != 5 || seen[2] != 7 {
		t.Fatalf("iterate order = %v", seen)
	}
	count := 0
	v.Iterate(func(int, int64) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
	// Dense iteration hits the same elements.
	v.ToDense()
	seen = seen[:0]
	v.Iterate(func(i int, _ int64) bool {
		seen = append(seen, i)
		return true
	})
	if len(seen) != 3 || seen[0] != 2 {
		t.Fatalf("dense iterate = %v", seen)
	}
}

func TestVectorDup(t *testing.T) {
	v := NewVector[float64](6)
	_ = v.SetElement(1, 1.5)
	v.ToDense()
	d := v.Dup()
	_ = d.SetElement(2, 2.5)
	if v.NVals() != 1 || d.NVals() != 2 {
		t.Fatal("Dup is not independent")
	}
	if d.Format() != Dense {
		t.Fatal("Dup lost format")
	}
}

func TestVectorClear(t *testing.T) {
	v := NewVector[bool](4)
	_ = v.SetElement(0, true)
	v.ToDense()
	v.Clear()
	if v.NVals() != 0 || v.Format() != Sparse {
		t.Fatal("Clear did not reset")
	}
	if _, err := v.ExtractElement(0); !errors.Is(err, ErrNoValue) {
		t.Fatal("element survived Clear")
	}
}

func TestConvertAutoHysteresis(t *testing.T) {
	// Mirrors the Section 6.3 heuristic: densify only past the
	// switch-point while growing; sparsify only below it while shrinking.
	n := 1000
	v := NewVector[bool](n)
	fill := func(k int) {
		v.Clear()
		for i := 0; i < k; i++ {
			_ = v.SetElement(i, true)
		}
	}
	fill(5)
	if v.convertAuto(0.01) != Sparse {
		t.Fatal("0.5% full should stay sparse")
	}
	// Grow past 1%: densify (nnz increased).
	for i := 5; i < 50; i++ {
		_ = v.SetElement(i, true)
	}
	if v.convertAuto(0.01) != Dense {
		t.Fatal("5% full and growing should densify")
	}
	// Shrink below 1%: sparsify (nnz decreased).
	for i := 2; i < 50; i++ {
		_ = v.RemoveElement(i)
	}
	if v.convertAuto(0.01) != Sparse {
		t.Fatal("0.2% full and shrinking should sparsify")
	}
	// Growing but still below the switch-point: stay sparse.
	_ = v.SetElement(2, true)
	if v.convertAuto(0.01) != Sparse {
		t.Fatal("growing below switch-point must stay sparse")
	}
	// A dense vector that *grows* above the point stays dense even if a
	// later check sees it shrinking while still above the point.
	v.ToDense()
	for i := 0; i < 500; i++ {
		_ = v.SetElement(i, true)
	}
	_ = v.convertAuto(0.01)
	for i := 400; i < 500; i++ {
		_ = v.RemoveElement(i)
	}
	if v.convertAuto(0.01) != Dense {
		t.Fatal("shrinking but above switch-point must stay dense")
	}
}

func TestFormatString(t *testing.T) {
	if Sparse.String() != "sparse" || Dense.String() != "dense" {
		t.Fatal("Format.String mismatch")
	}
}

package graphblas

import (
	"context"
	"fmt"
	"runtime/debug"

	"pushpull/internal/par"
)

// This file is the operation layer's fault boundary. Two failure modes cross
// it:
//
//   - Cancellation: an operation built with OpSpec.WithContext (or run under
//     a Descriptor.Context) checks the context between kernel phases and
//     returns a wrapped ErrCancelled; parallel kernels additionally stop
//     claiming chunks once the descriptor's cancellation token trips. The
//     output vector is left structurally valid but with unspecified partial
//     contents; workspaces stay clean and poolable.
//   - Kernel panic: a panic in a kernel body or user-supplied operator —
//     recovered by par on whichever worker ran the chunk and re-raised on
//     the dispatching goroutine — is converted here into a *PanicError
//     (matching ErrKernelPanic) instead of unwinding into the caller. The
//     workspace the call ran on is tainted so its scratch, whose internal
//     invariants may be mid-mutation, is dropped rather than returned to a
//     sync.Pool.

// PanicError is the error operations return when a kernel body or
// user-supplied operator panicked. It matches ErrKernelPanic under
// errors.Is; retrieve it with errors.As to inspect the panic value and the
// stack of the goroutine the panic happened on.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // stack captured at recover time, inside the failing body
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("graphblas: kernel panic: %v\n%s", e.Value, e.Stack)
}

// Is reports target == ErrKernelPanic, so errors.Is works without exposing
// the concrete type.
func (e *PanicError) Is(target error) bool { return target == ErrKernelPanic }

// NewPanicError converts a recovered panic value into a *PanicError,
// unwrapping par's chunk-level capture so the stack points into the failing
// loop body rather than the dispatcher that re-raised it. Exported for
// algorithm layers that drive core kernels directly and recover their own
// faults.
func NewPanicError(r any) *PanicError {
	if pe, ok := r.(*par.PanicError); ok {
		return &PanicError{Value: pe.Value, Stack: pe.Stack}
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}

// CheckContext returns nil while ctx is live and a wrapped ErrCancelled
// (also matching the context's cancel cause under errors.Is) once it is
// done. The cause is context.Cause, not ctx.Err(): a context cancelled
// with an explicit cause — a serving layer's ErrBudgetExceeded, for
// example — surfaces that cause through the wrap, while plain timeouts and
// cancellations keep returning context.DeadlineExceeded / Canceled
// (Cause falls back to Err when none was set). A nil ctx always passes.
// The live path is allocation-free — it is called on zero-alloc
// steady-state hot paths — and only the cancelled path builds an error.
func CheckContext(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if ctx.Err() != nil {
		return fmt.Errorf("%w: %w", ErrCancelled, context.Cause(ctx))
	}
	return nil
}

// captureFault is deferred around kernel execution: it recovers a panic
// (re-raised by par's dispatcher, or raw from an inline body or user
// operator), taints ws so no possibly-corrupted scratch returns to a pool,
// and stores the fault into *errp as a *PanicError. ws may be nil when the
// call never acquired one.
func captureFault(ws *Workspace, errp *error) {
	r := recover()
	if r == nil {
		return
	}
	ws.taint()
	*errp = NewPanicError(r)
}

// captureFault is the exec-pipeline form: it taints whatever workspace the
// call ended up acquiring (possibly none).
func (e *exec[T]) captureFault(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	e.ws.taint()
	*errp = NewPanicError(r)
}

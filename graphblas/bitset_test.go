package graphblas

import (
	"errors"
	"math/rand"
	"testing"

	"pushpull/internal/core"
)

// TestBitsetObjectModel exercises the element-level API against a
// bitset-format vector.
func TestBitsetObjectModel(t *testing.T) {
	n := 131 // forces a partial tail word
	v := NewVector[int64](n)
	for _, i := range []int{0, 63, 64, 130} {
		if err := v.SetElement(i, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	v.ToBitset()
	if v.Format() != Bitset || v.NVals() != 4 {
		t.Fatalf("format %v nvals %d", v.Format(), v.NVals())
	}
	if x, err := v.ExtractElement(64); err != nil || x != 64 {
		t.Fatalf("extract: %v %d", err, x)
	}
	if _, err := v.ExtractElement(65); !errors.Is(err, ErrNoValue) {
		t.Fatal("absent element not reported")
	}
	// In-place set and overwrite stay bitset.
	if err := v.SetElement(65, -1); err != nil {
		t.Fatal(err)
	}
	if err := v.SetElement(65, 65); err != nil {
		t.Fatal(err)
	}
	if v.Format() != Bitset || v.NVals() != 5 {
		t.Fatalf("after set: format %v nvals %d", v.Format(), v.NVals())
	}
	if err := v.RemoveElement(63); err != nil {
		t.Fatal(err)
	}
	if v.NVals() != 4 {
		t.Fatalf("after remove: nvals %d", v.NVals())
	}
	var got []int
	v.Iterate(func(i int, x int64) bool {
		if int64(i) != x {
			t.Fatalf("iterate: %d -> %d", i, x)
		}
		got = append(got, i)
		return true
	})
	want := []int{0, 64, 65, 130}
	if len(got) != len(want) {
		t.Fatalf("iterate order %v", got)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("iterate order %v want %v", got, want)
		}
	}
	// Early-stop iteration.
	count := 0
	v.Iterate(func(int, int64) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop ran %d", count)
	}
	// Dup is deep.
	d := v.Dup()
	_ = d.RemoveElement(0)
	if v.NVals() != 4 || d.NVals() != 3 {
		t.Fatal("Dup shares storage")
	}
	// Clear resets to sparse and scrubs the words.
	v.Clear()
	if v.Format() != Sparse || v.NVals() != 0 {
		t.Fatal("Clear")
	}
	v.ToBitset()
	if v.NVals() != 0 {
		t.Fatal("stale bits survived Clear")
	}
}

// TestBitsetLatticeRoundTrips pins the conversion lattice through the
// fourth format: sparse→bitset→dense→bitset preserves values, and every
// pairwise conversion agrees with the original contents.
func TestBitsetLatticeRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(150)
		want := map[int]float64{}
		v := NewVector[float64](n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.4 {
				x := rng.NormFloat64()
				want[i] = x
				_ = v.SetElement(i, x)
			}
		}
		check := func(stage string, v *Vector[float64]) {
			if v.NVals() != len(want) {
				t.Fatalf("trial %d %s: nvals %d want %d", trial, stage, v.NVals(), len(want))
			}
			seen := 0
			v.Iterate(func(i int, x float64) bool {
				if wx, ok := want[i]; !ok || wx != x {
					t.Fatalf("trial %d %s: element %d = %v", trial, stage, i, x)
				}
				seen++
				return true
			})
			if seen != len(want) {
				t.Fatalf("trial %d %s: iterated %d", trial, stage, seen)
			}
		}
		v.ToBitset()
		check("sparse→bitset", v)
		// The issue's round-trip pin: bitset → dense-side → bitset.
		v.ToDense()
		check("bitset→dense", v)
		v.ToBitset()
		check("dense→bitset", v)
		v.ToBitmap()
		check("bitset→bitmap", v)
		v.ToBitset()
		check("bitmap→bitset", v)
		v.ToSparse()
		check("bitset→sparse", v)
	}
}

// TestBitsetViewRecount pins BitsetView raw-write + RecountDense (the
// popcount path) and the full-pattern Fill interaction.
func TestBitsetViewRecount(t *testing.T) {
	n := 100
	v := NewVector[bool](n)
	v.ToBitset()
	_, words := v.BitsetView()
	for i := 0; i < n; i += 2 {
		core.BitsetSet(words, i)
	}
	v.RecountDense()
	if v.NVals() != 50 {
		t.Fatalf("popcount recount = %d", v.NVals())
	}
	vals, _ := v.BitsetView()
	for i := 0; i < n; i += 2 {
		vals[i] = true
	}
	if x, err := v.ExtractElement(4); err != nil || x != true {
		t.Fatalf("extract after raw writes: %v %v", err, x)
	}
	// Fill densifies; converting back packs the all-true pattern.
	v.Fill(true)
	if v.Format() != Dense || v.NVals() != n {
		t.Fatalf("Fill: %v %d", v.Format(), v.NVals())
	}
	v.ToBitset()
	if v.Format() != Bitset || v.NVals() != n {
		t.Fatalf("dense→bitset: %v %d", v.Format(), v.NVals())
	}
}

// Package-level operands for the steady-state guards, so the measured
// closures capture only warm state.
var (
	bsAndOp = func(a, b bool) bool { return a && b }
	bsOrOp  = func(a, b bool) bool { return a || b }
	bsNotOp = func(x bool) bool { return !x }
)

// TestBitsetZeroAllocSteadyState is the satellite guard: bitset
// promote/demote cycles, bitset-masked MxV (pull with scmp word mask and
// push post-filter), word-wise Boolean eWise/apply, the bitset-destination
// assigns — all 0 allocs/op once warm.
func TestBitsetZeroAllocSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard")
	}
	rng := rand.New(rand.NewSource(31))
	n := 512
	ab := randBoolMatrix(rng, n, 0.05)
	sr := OrAndBool()

	ws := NewWorkspace(n, n)

	frontier := NewVector[bool](n)
	for i := 0; i < n; i += 7 {
		_ = frontier.SetElement(i, true)
	}
	visited := NewVector[bool](n)
	for i := 0; i < n; i++ {
		if i%3 != 0 {
			_ = visited.SetElement(i, true)
		}
	}
	visited.ToBitset()
	u := NewVector[bool](n)
	for i := 0; i < n; i += 2 {
		_ = u.SetElement(i, true)
	}
	uBitset := u.Dup()
	uBitset.ToBitset()
	vBitset := visited.Dup()
	out := NewVector[bool](n)
	w := NewVector[bool](n)

	pullDesc := &Descriptor{NoAutoConvert: true, Direction: ForcePull, StructuralComplement: true,
		StructureOnly: true, Workspace: ws}
	pushDesc := &Descriptor{NoAutoConvert: true, Direction: ForcePush, Workspace: ws}
	ewDesc := &Descriptor{Workspace: ws}

	convert := NewVector[float64](n)
	for i := 0; i < n; i += 3 {
		_ = convert.SetElement(i, float64(i))
	}

	scalarTarget := visited.Dup()

	cases := []struct {
		name string
		run  func() error
	}{
		{"bitset-promote-demote", func() error {
			// The settle cycle a frontier rides at the push/pull crossover.
			convert.ToBitset()
			convert.ToSparse()
			return nil
		}},
		{"row-mask-bitset-scmp", func() error {
			// Masked pull under ¬visited with visited word-packed: the
			// word-masked row loop plus bitset-input bit probes.
			_, err := MxV(w, visited, nil, sr, ab, vBitset, pullDesc)
			return err
		}},
		{"col-mask-bitset", func() error {
			// Push with the bitset mask as post-merge filter.
			_, err := MxV(w, visited, nil, sr, ab, frontier, pushDesc)
			return err
		}},
		{"ewise-bool-bitset-and", func() error {
			return Into(out).With(ewDesc).EWiseMult(bsAndOp, uBitset, vBitset)
		}},
		{"ewise-bool-bitset-or", func() error {
			return Into(out).With(ewDesc).EWiseAdd(bsOrOp, uBitset, vBitset)
		}},
		{"apply-bool-bitset", func() error {
			return Into(out).With(ewDesc).Apply(bsNotOp, uBitset)
		}},
		{"assign-scalar-bitset-dest", func() error {
			// ParentBFS's visited⟨f⟩ = true with a sparse frontier mask and
			// a bitset destination.
			return Into(scalarTarget).Mask(frontier).With(ewDesc).AssignScalar(true)
		}},
		{"assign-vector-into-bitset", func() error {
			// BFS's visited update: sparse result merged into the bitset
			// visited set, bits flipped in place.
			return Into(scalarTarget).With(ewDesc).AssignVector(frontier)
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); err != nil { // warm
			t.Fatal(err)
		}
		if avg := testing.AllocsPerRun(20, func() {
			if err := tc.run(); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("%s: %v allocs per warmed op, want 0", tc.name, avg)
		}
	}
}
